module Broker = Dm_market.Broker
module Snapshots = Dm_store.Snapshots
module Store = Dm_store.Store

let mk_event t =
  { Broker.t; x = [| 1.0; 2.0 |]; reserve = 0.5; kind = Broker.Exploratory;
    price_index = 0.3; lower = 0.1; upper = 0.9; posted = Some 0.4;
    accepted = true; payment = 0.4 }

let () =
  let dir = "/tmp/repro_store2" in
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end;
  let ell = Dm_market.Ellipsoid.make ~center:[| 0.; 0. |]
      ~shape:(Dm_linalg.Mat.init 2 2 (fun i j -> if i = j then 10. else 0.)) in
  let mech = Dm_market.Mechanism.create
      (Dm_market.Mechanism.config ~variant:{ Dm_market.Mechanism.use_reserve = false; delta = 0.01 }
         ~epsilon:0.5 ()) ell in
  (* Tiny segments to force rotation; snapshot every 20 rounds. *)
  let store = Store.create ~segment_bytes:4096 ~snapshot_every:20 ~dir ~start:0 () in
  for t = 0 to 99 do Store.sink store ~mech (mk_event t) done;
  Store.close store;
  (* Corrupt the NEWEST snapshot (flip a payload byte). *)
  let rounds = Snapshots.rounds ~dir in
  let newest = List.fold_left max 0 rounds in
  let snap = Filename.concat dir (Printf.sprintf "snap-%012d.dms" newest) in
  let fd = Unix.openfile snap [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 20 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
  Unix.close fd;
  Printf.printf "corrupted newest snapshot round=%d\n" newest;
  (* Sanity: recovery before compaction falls back to an older snapshot. *)
  (match Store.recover ~dir () with
   | Ok r -> Printf.printf "recover-before-compact ok: snap@%d next=%d\n"
               r.Store.snapshot_round r.Store.next_round
   | Error m -> Printf.printf "recover-before-compact ERROR: %s\n" m);
  let deleted = Store.compact ~dir in
  Printf.printf "compact deleted %d segments\n" deleted;
  (match Store.recover ~dir () with
   | Ok r -> Printf.printf "recover-after-compact ok: snap@%d next=%d\n"
               r.Store.snapshot_round r.Store.next_round
   | Error m -> Printf.printf "recover-after-compact ERROR: %s\n" m)
