(* Command-line driver regenerating every table and figure of the
   paper's evaluation section (plus the appendix analyses and extra
   ablations).  `experiments all` reproduces everything at full scale;
   each artifact is also an individual subcommand.  See EXPERIMENTS.md
   for the paper-vs-measured record. *)

open Cmdliner

let ppf = Format.std_formatter

let scale_arg =
  let doc =
    "Multiply every horizon by $(docv) in (0, 1]; 1 is the paper's full scale."
  in
  Arg.(value & opt float 1. & info [ "scale" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Base random seed; every experiment is deterministic given it." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Run independent experiment cells on $(docv) domains (default 1).  The \
     output is byte-identical whatever the value; only the wall clock \
     changes."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let check_scale scale =
  if scale <= 0. || scale > 1. then
    `Error (false, "scale must be in (0, 1]")
  else `Ok scale

(* Clamped to the physical core count: domains beyond it only contend
   for the same cores (rendered bytes are jobs-independent either
   way, so the clamp is pure wall-clock hygiene). *)
let check_jobs jobs =
  if jobs < 1 then `Error (false, "jobs must be at least 1")
  else begin
    let cores = Domain.recommended_domain_count () in
    if jobs > cores then
      Printf.eprintf
        "experiments: clamping --jobs %d to the %d available core(s)\n%!" jobs
        cores;
    `Ok (min jobs cores)
  end

(* One pool for the whole invocation, installed as the process default
   so the large-n Mat kernels accelerate inside a single cell, and
   passed explicitly to the drivers that fan grid cells out. *)
let with_pool jobs f =
  if jobs = 1 then f None
  else
    Dm_linalg.Pool.with_pool ~jobs (fun pool ->
        Dm_linalg.Pool.set_default (Some pool);
        Fun.protect
          ~finally:(fun () -> Dm_linalg.Pool.set_default None)
          (fun () -> f (Some pool)))

let simple name doc f =
  let run scale seed jobs =
    match (check_scale scale, check_jobs jobs) with
    | (`Error _ as e), _ | _, (`Error _ as e) -> e
    | `Ok scale, `Ok jobs ->
        with_pool jobs (fun pool -> f ~pool ~scale ~seed ~jobs);
        `Ok ()
  in
  Cmd.v
    (Cmd.info name ~doc)
    Term.(ret (const run $ scale_arg $ seed_arg $ jobs_arg))

let fig4_cmd =
  simple "fig4" "Fig. 4(a)-(f): cumulative regrets, noisy linear query"
    (fun ~pool ~scale ~seed ~jobs -> Dm_experiments.App1.fig4 ?pool ~scale ~seed ~jobs ppf)

let table1_cmd =
  simple "table1" "Table I: per-round statistics, noisy linear query"
    (fun ~pool:_ ~scale ~seed ~jobs:_ -> Dm_experiments.App1.table1 ~scale ~seed ppf)

let fig5a_cmd =
  simple "fig5a" "Fig. 5(a): regret ratios at n = 100"
    (fun ~pool:_ ~scale ~seed ~jobs:_ -> Dm_experiments.App1.fig5a ~scale ~seed ppf)

let fig5b_cmd =
  simple "fig5b" "Fig. 5(b): regret ratios, accommodation rental"
    (fun ~pool:_ ~scale ~seed ~jobs:_ -> Dm_experiments.App2.fig5b ~scale ~seed ppf)

let fig5c_full_arg =
  let doc = "Run n = 1024 at the paper's full 10^5-round horizon." in
  Arg.(value & flag & info [ "full" ] ~doc)

let fig5c_cmd =
  let run scale seed full jobs =
    match (check_scale scale, check_jobs jobs) with
    | (`Error _ as e), _ | _, (`Error _ as e) -> e
    | `Ok scale, `Ok jobs ->
        (* fig5c has one serial cell; [jobs] still helps because the
           default pool accelerates the n = 1024 kernels inside it. *)
        with_pool jobs (fun _pool ->
            Dm_experiments.App3.fig5c ~scale ~seed ~full ppf);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "fig5c" ~doc:"Fig. 5(c): regret ratios, impression pricing")
    Term.(ret (const run $ scale_arg $ seed_arg $ fig5c_full_arg $ jobs_arg))

let fig5c_hd_cmd =
  simple "fig5c_hd"
    "Fig. 5(c) extension: rank-k projected ellipsoid pricing at n up to 16384"
    (fun ~pool ~scale ~seed ~jobs ->
      Dm_experiments.Hd.fig5c_hd ?pool ~scale ~seed ~jobs ppf)

let coldstart_cmd =
  simple "coldstart" "Cold-start regret reductions (Sec. V-A and V-B claims)"
    (fun ~pool ~scale ~seed ~jobs ->
      Dm_experiments.App1.coldstart ?pool ~scale ~seed ~jobs ppf;
      Dm_experiments.App2.coldstart ?pool ~scale ~seed ~jobs ppf)

let fig1_cmd =
  simple "fig1" "Fig. 1: single-round regret function"
    (fun ~pool:_ ~scale:_ ~seed:_ ~jobs:_ -> Dm_experiments.Analysis.fig1 ppf)

let lemma8_cmd =
  simple "lemma8" "Lemma 8 / Fig. 6: the conservative-cut adversary"
    (fun ~pool:_ ~scale:_ ~seed:_ ~jobs:_ -> Dm_experiments.Analysis.lemma8 ppf)

let theorem3_cmd =
  simple "theorem3" "Theorem 3: O(log T) regret in one dimension"
    (fun ~pool:_ ~scale:_ ~seed ~jobs:_ -> Dm_experiments.Analysis.theorem3 ~seed ppf)

let lemma2_cmd =
  simple "lemma2" "Lemma 2: empirical volume-ratio bound check"
    (fun ~pool:_ ~scale:_ ~seed ~jobs:_ -> Dm_experiments.Analysis.lemma2_check ~seed ppf)

let lemma45_cmd =
  simple "lemma45" "Lemmas 4-5: smallest-eigenvalue floor check"
    (fun ~pool:_ ~scale:_ ~seed ~jobs:_ -> Dm_experiments.Analysis.lemma45_check ~seed ppf)

let theorem2_cmd =
  simple "theorem2" "Theorem 2: the four non-linear market-value models"
    (fun ~pool:_ ~scale ~seed ~jobs:_ -> Dm_experiments.Analysis.theorem2 ~scale ~seed ppf)

let overhead_cmd =
  simple "overhead" "Sec. V-D: online latency and memory overhead"
    (fun ~pool:_ ~scale:_ ~seed:_ ~jobs:_ -> Dm_experiments.Overhead.report ppf)

let ablation_cmd =
  simple "ablation"
    "Extra ablations: epsilon, delta, aggregation granularity, feature \
     pipeline, parameter distribution"
    (fun ~pool ~scale:_ ~seed ~jobs ->
      Dm_experiments.Ablation.epsilon_sweep ?pool ~seed ~jobs ppf;
      Dm_experiments.Ablation.delta_sweep ?pool ~seed ~jobs ppf;
      Dm_experiments.Ablation.aggregation_sweep ?pool ~seed ~jobs ppf;
      Dm_experiments.Ablation.feature_pipeline ~seed ppf;
      Dm_experiments.Ablation.param_dist_sweep ?pool ~seed ~jobs ppf;
      Dm_experiments.Ablation.ctr_trainer ppf)

let rank_cmd =
  simple "rank" "Feature-stream effective-rank diagnostics"
    (fun ~pool:_ ~scale:_ ~seed ~jobs:_ -> Dm_experiments.Diagnostics.report ~seed ppf)

let longrun_cmd =
  simple "longrun"
    "Long-horizon sharded broker: 10^6-round stream, exact merge verified \
     against the sequential reference"
    (fun ~pool ~scale ~seed ~jobs ->
      Dm_experiments.Longrun.report ?pool ~scale ~seed ~jobs ppf)

let recover_cmd =
  simple "recover"
    "Crash recovery: journaled run killed mid-stream, recovered from \
     snapshot + journal tail, resumed bit-identically"
    (fun ~pool ~scale ~seed ~jobs ->
      Dm_experiments.Recover.report ?pool ~scale ~seed ~jobs ppf)

let fleet_cmd =
  simple "fleet"
    "Multi-tenant broker fleet: ~10^3 concurrent markets on one shared \
     group-commit journal, each bit-identical to its solo run, live and \
     after kill/recover/resume"
    (fun ~pool ~scale ~seed ~jobs ->
      Dm_experiments.Fleet.report ?pool ~scale ~seed ~jobs ppf)

let serve_cmd =
  simple "serve"
    "Batched fleet serving: fused cross-tenant decide kernels and \
     group-commit-aligned batching vs unbatched rounds, bit-identity \
     checked against B=1"
    (fun ~pool ~scale ~seed ~jobs ->
      Dm_experiments.Serve.report ?pool ~scale ~seed ~jobs ppf)

let stress_cmd =
  simple "stress"
    "Adversarial valuation streams: regret degradation of Algorithm 2 vs \
     the misspecification-robust variant under drift, regime switches, \
     heavy tails and strategic responses"
    (fun ~pool ~scale ~seed ~jobs ->
      Dm_experiments.Stress.degradation ?pool ~scale ~seed ~jobs ppf)

let auction_cmd =
  simple "auction"
    "Auction front-end: eager second-price clearing with learned \
     personalized reserves (EW, FTPL, full-info and bandit) vs the wrapped \
     ellipsoid mechanism and the hindsight OPT reserve vector"
    (fun ~pool ~scale ~seed ~jobs ->
      Dm_experiments.Auction.revenue_vs_opt ?pool ~scale ~seed ~jobs ppf)

let baselines_cmd =
  simple "baselines" "Ellipsoid vs SGD (Amin et al.) vs risk-averse"
    (fun ~pool ~scale ~seed ~jobs -> Dm_experiments.Baselines.compare ?pool ~scale ~seed ~jobs ppf)

let robustness_cmd =
  simple "robustness" "Headline orderings across independent market seeds"
    (fun ~pool ~scale ~seed ~jobs ->
      Dm_experiments.Baselines.seed_robustness ?pool ~scale ~seed ~jobs ppf)

let all_cmd =
  let run scale seed full jobs =
    match (check_scale scale, check_jobs jobs) with
    | (`Error _ as e), _ | _, (`Error _ as e) -> e
    | `Ok scale, `Ok jobs ->
        with_pool jobs (fun pool ->
            Dm_experiments.Analysis.fig1 ppf;
            Dm_experiments.App1.fig4 ?pool ~scale ~seed ~jobs ppf;
            Dm_experiments.App1.table1 ~scale ~seed ppf;
            Dm_experiments.App1.fig5a ~scale ~seed ppf;
            Dm_experiments.App2.fig5b ~scale ~seed:7 ppf;
            Dm_experiments.App3.fig5c ~scale ~seed:3 ~full ppf;
            Dm_experiments.Hd.fig5c_hd ?pool ~scale ~seed ~jobs ppf;
            Dm_experiments.App1.coldstart ?pool ~scale ~seed ~jobs ppf;
            Dm_experiments.App2.coldstart ?pool ~scale ~seed:7 ~jobs ppf;
            Dm_experiments.Analysis.lemma8 ppf;
            Dm_experiments.Analysis.theorem3 ~seed ppf;
            Dm_experiments.Analysis.theorem2 ~scale ~seed ppf;
            Dm_experiments.Analysis.lemma2_check ~seed ppf;
            Dm_experiments.Analysis.lemma45_check ~seed ppf;
            Dm_experiments.Ablation.epsilon_sweep ?pool ~seed ~jobs ppf;
            Dm_experiments.Ablation.delta_sweep ?pool ~seed ~jobs ppf;
            Dm_experiments.Ablation.aggregation_sweep ?pool ~seed ~jobs ppf;
            Dm_experiments.Ablation.feature_pipeline ~seed ppf;
            Dm_experiments.Ablation.param_dist_sweep ?pool ~seed ~jobs ppf;
            Dm_experiments.Ablation.ctr_trainer ppf;
            Dm_experiments.Baselines.compare ?pool ~scale ~seed ~jobs ppf;
            Dm_experiments.Baselines.seed_robustness ?pool ~scale ~seed ~jobs ppf;
            Dm_experiments.Stress.degradation ?pool ~scale ~seed ~jobs ppf;
            Dm_experiments.Auction.revenue_vs_opt ?pool ~scale ~seed ~jobs ppf;
            Dm_experiments.Longrun.report ?pool ~scale ~seed ~jobs ppf;
            Dm_experiments.Recover.report ?pool ~scale ~seed ~jobs ppf;
            Dm_experiments.Fleet.report ?pool ~scale ~seed ~jobs ppf;
            Dm_experiments.Serve.report ?pool ~scale ~seed ~jobs ppf;
            Dm_experiments.Diagnostics.report ~seed ppf;
            Dm_experiments.Overhead.report ppf);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table and figure")
    Term.(ret (const run $ scale_arg $ seed_arg $ fig5c_full_arg $ jobs_arg))

let () =
  let info =
    Cmd.info "experiments" ~version:"1.0"
      ~doc:
        "Reproduce the evaluation of 'Online Pricing with Reserve Price \
         Constraint for Personal Data Markets' (ICDE 2020)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig1_cmd; fig4_cmd; table1_cmd; fig5a_cmd; fig5b_cmd; fig5c_cmd;
            fig5c_hd_cmd;
            coldstart_cmd; lemma8_cmd; theorem3_cmd; theorem2_cmd; lemma2_cmd;
            lemma45_cmd; overhead_cmd; ablation_cmd; baselines_cmd;
            robustness_cmd; stress_cmd; auction_cmd; longrun_cmd; recover_cmd;
            fleet_cmd;
            serve_cmd; rank_cmd;
            all_cmd;
          ]))
