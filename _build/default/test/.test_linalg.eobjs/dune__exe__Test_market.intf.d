test/test_market.mli:
