test/test_apps.ml: Alcotest Array Dm_apps Dm_linalg Dm_market Dm_prob Lazy
