test/test_experiments.ml: Alcotest Array Buffer Dm_experiments Dm_linalg Format Fun List String
