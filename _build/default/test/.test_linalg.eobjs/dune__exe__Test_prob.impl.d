test/test_prob.ml: Alcotest Array Dm_linalg Dm_prob Float List Printf QCheck QCheck_alcotest
