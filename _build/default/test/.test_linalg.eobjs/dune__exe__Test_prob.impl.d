test/test_prob.ml: Alcotest Array Dm_linalg Dm_prob Float Format List Printf QCheck QCheck_alcotest
