test/test_privacy.mli:
