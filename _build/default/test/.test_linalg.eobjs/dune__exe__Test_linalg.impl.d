test/test_linalg.ml: Alcotest Array Dm_linalg Float Format Gen Print QCheck QCheck_alcotest
