test/test_synth.ml: Alcotest Array Dm_linalg Dm_ml Dm_privacy Dm_prob Dm_synth Float Lazy List QCheck QCheck_alcotest
