test/test_market.ml: Alcotest Array Dm_linalg Dm_market Dm_ml Dm_prob Float Gen List Print Printf QCheck QCheck_alcotest String
