test/test_privacy.ml: Alcotest Array Dm_linalg Dm_privacy Dm_prob List QCheck QCheck_alcotest
