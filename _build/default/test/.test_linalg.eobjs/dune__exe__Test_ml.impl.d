test/test_ml.ml: Alcotest Array Dm_linalg Dm_ml Dm_prob Float List Option Printf QCheck QCheck_alcotest
