lib/prob/subgaussian.mli:
