lib/prob/subgaussian.ml: Float
