lib/prob/dist.mli: Dm_linalg Rng
