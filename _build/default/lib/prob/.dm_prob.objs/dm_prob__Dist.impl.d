lib/prob/dist.ml: Array Dm_linalg Float Rng
