lib/prob/rng.mli:
