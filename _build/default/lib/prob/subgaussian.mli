(** The paper's sub-Gaussian uncertainty buffer (Section III-B).

    If the market-value noise δ_t satisfies the tail bound
    [Pr(|δ_t| > z) ≤ C·exp(−z²/2σ²)] (Eq. 4), then setting
    [δ = √(2 log C)·σ·log T] gives [Pr(|δ_t| > δ) ≤ T^{−log T}]
    (Eq. 5), and a union bound over all T ≥ 8 rounds leaves the whole
    horizon inside the buffer with probability ≥ 1 − 1/T (Eq. 6).
    Algorithm 2 then treats every posted price as if it had been
    [p ± δ] when cutting the ellipsoid. *)

val buffer : ?c:float -> sigma:float -> horizon:int -> unit -> float
(** [buffer ~sigma ~horizon ()] is the paper's δ for noise level
    [sigma] over [horizon] rounds, with tail constant [c] (default 2,
    the Gaussian case).  Requires [sigma ≥ 0], [horizon ≥ 1], and
    [c > 1]. *)

val sigma_for_buffer : ?c:float -> delta:float -> horizon:int -> unit -> float
(** Inverse of {!buffer}: the σ whose buffer equals [delta] — the
    evaluation fixes δ = 0.01 and derives σ = δ/(√(2 log 2)·log T). *)

val tail_bound : ?c:float -> sigma:float -> z:float -> unit -> float
(** The right-hand side of Eq. 4: [min 1 (C·exp(−z²/2σ²))].  With
    [sigma = 0] this is 0 for every [z > 0]. *)

val union_miss_probability : horizon:int -> float
(** The Eq. 6 bound [T^{1−log T}] on the probability that any round's
    noise escapes the buffer (≤ 1/T for T ≥ 8). *)

val low_uncertainty_delta : dim:int -> horizon:int -> float
(** The regime of Theorem 1: δ = n/T ("low uncertainty"), under which
    the worst-case regret is O(max(n² log(T/n), n³ log(T/n)/T)). *)

val default_threshold : dim:int -> horizon:int -> float
(** The exploration threshold ε the analysis pairs with the low-δ
    regime: [log₂T / T] in one dimension (Theorem 3) and [n²/T]
    otherwise (Theorem 1), floored at [4·n·δ] so the precondition
    ε ≥ 4nδ of Lemmas 4–7 holds. *)
