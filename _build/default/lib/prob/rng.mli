(** Deterministic, splittable pseudo-random number generation.

    Every experiment in this repository must replay bit-for-bit from a
    seed, so randomness never goes through the global [Random] state.
    The generator is xoshiro256++ seeded through SplitMix64 — the
    combination recommended by the xoshiro authors, with 256 bits of
    state and a 2^256−1 period, ample for the 10⁵–10⁶ draws per
    experiment here.

    [split] derives an independent child stream, letting each
    subsystem (workload generation, market noise, dataset synthesis)
    consume randomness without perturbing the others. *)

type t

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** An independent duplicate that replays the same future stream. *)

val split : t -> t
(** [split t] draws from [t] to seed a statistically independent child
    generator; [t] advances. *)

val bits64 : t -> int64
(** The next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1) with 53 bits of precision. *)

val uniform : t -> float -> float -> float
(** [uniform t a b] is uniform in [a, b).  Raises [Invalid_argument]
    if [a > b]. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1] for [n ≥ 1] (rejection-free
    modulo with negligible bias for the n used here is avoided: we use
    rejection sampling for exactness). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
