type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 — only used to expand a seed into xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let st = ref seed64 in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ step. *)
let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let u = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 u;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let float t =
  (* Top 53 bits → [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let uniform t a b =
  if a > b then invalid_arg "Rng.uniform: empty interval";
  a +. ((b -. a) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits for exact uniformity. *)
  let nl = Int64.of_int n in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    (* r uniform in [0, 2^63). *)
    let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int nl) in
    if r >= limit then draw () else Int64.to_int (Int64.rem r nl)
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
