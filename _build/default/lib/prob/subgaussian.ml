let check_c c = if c <= 1. then invalid_arg "Subgaussian: C must exceed 1"

let buffer ?(c = 2.) ~sigma ~horizon () =
  check_c c;
  if sigma < 0. then invalid_arg "Subgaussian.buffer: negative sigma";
  if horizon < 1 then invalid_arg "Subgaussian.buffer: horizon must be >= 1";
  sqrt (2. *. log c) *. sigma *. log (float_of_int horizon)

let sigma_for_buffer ?(c = 2.) ~delta ~horizon () =
  check_c c;
  if delta < 0. then invalid_arg "Subgaussian.sigma_for_buffer: negative delta";
  if horizon < 2 then
    invalid_arg "Subgaussian.sigma_for_buffer: horizon must be >= 2";
  delta /. (sqrt (2. *. log c) *. log (float_of_int horizon))

let tail_bound ?(c = 2.) ~sigma ~z () =
  check_c c;
  if z < 0. then invalid_arg "Subgaussian.tail_bound: negative z";
  if sigma = 0. then (if z > 0. then 0. else 1.)
  else Float.min 1. (c *. exp (-.(z *. z) /. (2. *. sigma *. sigma)))

let union_miss_probability ~horizon =
  if horizon < 1 then invalid_arg "Subgaussian.union_miss_probability";
  let t = float_of_int horizon in
  Float.min 1. (t ** (1. -. log t))

let low_uncertainty_delta ~dim ~horizon =
  if dim < 1 || horizon < 1 then invalid_arg "Subgaussian.low_uncertainty_delta";
  float_of_int dim /. float_of_int horizon

let default_threshold ~dim ~horizon =
  if dim < 1 || horizon < 1 then invalid_arg "Subgaussian.default_threshold";
  let t = float_of_int horizon in
  let base =
    if dim = 1 then log t /. log 2. /. t
    else float_of_int (dim * dim) /. t
  in
  let delta = low_uncertainty_delta ~dim ~horizon in
  Float.max base (4. *. float_of_int dim *. delta)
