module Vec = Dm_linalg.Vec

type t =
  | Linear of { rate : float }
  | Tanh of { cap : float; steepness : float }

let linear ~rate =
  if rate < 0. then invalid_arg "Compensation.linear: negative rate";
  Linear { rate }

let tanh_contract ~cap ~steepness =
  if cap < 0. then invalid_arg "Compensation.tanh_contract: negative cap";
  if steepness < 0. then
    invalid_arg "Compensation.tanh_contract: negative steepness";
  Tanh { cap; steepness }

let amount c eps =
  if eps < 0. then invalid_arg "Compensation.amount: negative leakage";
  match c with
  | Linear { rate } -> rate *. eps
  | Tanh { cap; steepness } -> cap *. tanh (steepness *. eps)

let cap = function
  | Linear { rate } -> if rate = 0. then 0. else infinity
  | Tanh { cap; _ } -> cap

let per_owner ~contracts ~leakages =
  if Array.length contracts <> Vec.dim leakages then
    invalid_arg "Compensation.per_owner: length mismatch";
  Vec.init (Vec.dim leakages) (fun i -> amount contracts.(i) leakages.(i))

let total ~contracts ~leakages = Vec.sum (per_owner ~contracts ~leakages)
