module Vec = Dm_linalg.Vec

type query = { weights : Vec.t; noise_scale : float }

let make_query ~weights ~noise_scale =
  if Vec.dim weights = 0 then invalid_arg "Dp.make_query: no owners";
  if noise_scale <= 0. then
    invalid_arg "Dp.make_query: noise scale must be positive";
  { weights; noise_scale }

let variance_to_scale v =
  if v <= 0. then invalid_arg "Dp.variance_to_scale: variance must be positive";
  sqrt (v /. 2.)

let owner_count q = Vec.dim q.weights

let leakage q ~data_ranges =
  if Vec.dim data_ranges <> Vec.dim q.weights then
    invalid_arg "Dp.leakage: dimension mismatch";
  Vec.map2
    (fun w range ->
      if range < 0. then invalid_arg "Dp.leakage: negative data range";
      abs_float w *. range /. q.noise_scale)
    q.weights data_ranges

let true_answer q ~data = Vec.dot q.weights data

let noisy_answer rng q ~data =
  true_answer q ~data +. Dm_prob.Dist.laplace rng ~scale:q.noise_scale

let total_epsilon q ~data_ranges = Vec.sum (leakage q ~data_ranges)
