lib/privacy/dp.mli: Dm_linalg Dm_prob
