lib/privacy/composition.mli:
