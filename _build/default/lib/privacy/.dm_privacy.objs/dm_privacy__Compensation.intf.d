lib/privacy/compensation.mli: Dm_linalg
