lib/privacy/compensation.ml: Array Dm_linalg
