lib/privacy/composition.ml: Array Float List
