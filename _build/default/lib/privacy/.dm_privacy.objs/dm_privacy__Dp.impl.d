lib/privacy/dp.ml: Dm_linalg Dm_prob
