(** Differential-privacy composition accounting and budgets.

    A data broker answers *sequences* of queries over the same owners
    (Fig. 2 of the paper), so each owner's cumulative leakage must be
    tracked across rounds.  This module provides the standard
    composition calculus (Dwork–Roth, "The Algorithmic Foundations of
    Differential Privacy") and a per-owner budget accountant the
    broker can consult before answering a query.

    Leakage levels are (ε, δ) pairs; pure ε-DP is δ = 0. *)

type level = { eps : float; del : float }
(** An (ε, δ) differential-privacy level; both components ≥ 0. *)

val pure : float -> level
(** [pure e] is (e, 0).  Raises [Invalid_argument] on negative ε. *)

val approx : eps:float -> del:float -> level

val basic : level list -> level
(** Sequential (basic) composition: ε and δ add. *)

val advanced : k:int -> slack:float -> level -> level
(** Advanced composition (Dwork–Roth Thm 3.20): [k]-fold composition
    of one level (ε, δ) is
    [(√(2k·ln(1/slack))·ε + k·ε·(eᵉᵖˢ − 1), k·δ + slack)]-DP for any
    [slack > 0].  Requires [k ≥ 1]. *)

val best_of : k:int -> slack:float -> level -> level
(** The tighter of {!basic} (k copies) and {!advanced} — advanced only
    wins for small ε and large k. *)

val gaussian_scale : sensitivity:float -> level -> float
(** The Gaussian-mechanism noise σ achieving an (ε, δ) level with
    δ > 0 for the given L2 [sensitivity]:
    [σ = Δ·√(2·ln(1.25/δ))/ε].  Requires ε ∈ (0, 1] (the classical
    bound's validity range) and δ ∈ (0, 1). *)

type accountant
(** Mutable per-owner budget tracker. *)

val accountant : owners:int -> budget:level -> accountant
(** Every owner starts with the same (ε, δ) budget. *)

val spend : accountant -> owner:int -> level -> bool
(** [spend a ~owner l] records a leakage under basic composition and
    returns whether the owner is still within budget {e after} the
    spend.  Spending never fails — the market records over-budget
    owners rather than halting — but the return value and {!exhausted}
    let the broker refuse further queries. *)

val spent : accountant -> owner:int -> level

val remaining : accountant -> owner:int -> level
(** Componentwise budget minus spend, floored at 0. *)

val exhausted : accountant -> int list
(** Owners whose ε- or δ-spend strictly exceeds the budget, in
    increasing order. *)
