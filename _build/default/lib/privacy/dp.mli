(** Differential-privacy accounting for noisy linear queries.

    App 1 of the paper trades noisy linear queries in the framework of
    Li et al., "A theory of pricing private data" (CACM'17): a data
    consumer specifies per-owner weights [w] and a tolerable noise
    variance; the broker answers [Σᵢ wᵢ·dᵢ + Laplace(λ)] and charges
    according to the privacy each owner leaks.

    For the Laplace mechanism on a linear query, owner [i]'s leakage is
    the per-owner differential-privacy level
    [εᵢ = |wᵢ|·Δᵢ / λ], where [Δᵢ] bounds how much the answer can move
    when owner [i]'s value changes (her data range).  Larger weights or
    less noise leak more. *)

type query = {
  weights : Dm_linalg.Vec.t;  (** one weight per data owner *)
  noise_scale : float;  (** Laplace diversity λ > 0 chosen by the consumer *)
}

val make_query : weights:Dm_linalg.Vec.t -> noise_scale:float -> query
(** Validates [noise_scale > 0] and a non-empty weight vector. *)

val variance_to_scale : float -> float
(** The Laplace scale λ achieving a requested noise variance v > 0:
    [λ = √(v/2)] (Laplace(λ) has variance 2λ²).  The paper's consumers
    pick variances from {10^k, |k| ≤ 4}. *)

val owner_count : query -> int

val leakage : query -> data_ranges:Dm_linalg.Vec.t -> Dm_linalg.Vec.t
(** [leakage q ~data_ranges] is the per-owner ε vector
    [εᵢ = |wᵢ|·Δᵢ/λ].  Raises [Invalid_argument] on dimension mismatch
    or a negative range. *)

val true_answer : query -> data:Dm_linalg.Vec.t -> float
(** The unperturbed answer [Σᵢ wᵢ·dᵢ]. *)

val noisy_answer : Dm_prob.Rng.t -> query -> data:Dm_linalg.Vec.t -> float
(** The Laplace-perturbed answer actually sold to the consumer. *)

val total_epsilon : query -> data_ranges:Dm_linalg.Vec.t -> float
(** Sum of per-owner leakages — the query's overall privacy cost. *)
