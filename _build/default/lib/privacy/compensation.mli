(** Privacy-compensation contracts between data owners and the broker.

    Each owner signs a contract mapping her per-query privacy leakage
    ε to money.  The paper (following Li et al.) uses tanh-based
    contracts, [π(ε) = ρ·tanh(s·ε)]: approximately linear for small
    leakages (rate ρ·s per unit ε) and saturating at a cap ρ — an
    owner will not accept unbounded leakage for unbounded pay.

    The sum of compensations under a query is the query's *reserve
    price*: the posted price may never fall below it, or the broker
    would trade at a loss (Section II-A). *)

type t =
  | Linear of { rate : float }
      (** [π(ε) = rate·ε]; [rate ≥ 0]. *)
  | Tanh of { cap : float; steepness : float }
      (** [π(ε) = cap·tanh(steepness·ε)]; both parameters ≥ 0. *)

val linear : rate:float -> t
(** Validates [rate ≥ 0]. *)

val tanh_contract : cap:float -> steepness:float -> t
(** Validates [cap ≥ 0] and [steepness ≥ 0]. *)

val amount : t -> float -> float
(** [amount c eps] is the payment owed for leakage [eps ≥ 0].  Raises
    [Invalid_argument] on negative leakage.  Always non-negative,
    non-decreasing in [eps], and zero at zero. *)

val cap : t -> float
(** The supremum of [amount c]; [infinity] for linear contracts with a
    positive rate. *)

val per_owner :
  contracts:t array -> leakages:Dm_linalg.Vec.t -> Dm_linalg.Vec.t
(** Componentwise application; raises [Invalid_argument] on length
    mismatch. *)

val total : contracts:t array -> leakages:Dm_linalg.Vec.t -> float
(** The query's reserve price [Σᵢ πᵢ(εᵢ)]. *)
