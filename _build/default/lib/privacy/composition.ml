type level = { eps : float; del : float }

let check_level { eps; del } =
  if eps < 0. || del < 0. then invalid_arg "Composition: negative level"

let pure eps =
  let l = { eps; del = 0. } in
  check_level l;
  l

let approx ~eps ~del =
  let l = { eps; del } in
  check_level l;
  l

let basic levels =
  List.iter check_level levels;
  List.fold_left
    (fun acc l -> { eps = acc.eps +. l.eps; del = acc.del +. l.del })
    { eps = 0.; del = 0. }
    levels

let advanced ~k ~slack l =
  check_level l;
  if k < 1 then invalid_arg "Composition.advanced: k must be >= 1";
  if slack <= 0. || slack >= 1. then
    invalid_arg "Composition.advanced: slack must be in (0, 1)";
  let kf = float_of_int k in
  {
    eps =
      (sqrt (2. *. kf *. log (1. /. slack)) *. l.eps)
      +. (kf *. l.eps *. (exp l.eps -. 1.));
    del = (kf *. l.del) +. slack;
  }

let best_of ~k ~slack l =
  let b = basic (List.init k (fun _ -> l)) in
  let a = advanced ~k ~slack l in
  if a.eps < b.eps then a else b

let gaussian_scale ~sensitivity l =
  if sensitivity <= 0. then
    invalid_arg "Composition.gaussian_scale: sensitivity must be > 0";
  if l.eps <= 0. || l.eps > 1. then
    invalid_arg "Composition.gaussian_scale: eps must be in (0, 1]";
  if l.del <= 0. || l.del >= 1. then
    invalid_arg "Composition.gaussian_scale: delta must be in (0, 1)";
  sensitivity *. sqrt (2. *. log (1.25 /. l.del)) /. l.eps

type accountant = { budget : level; spends : level array }

let accountant ~owners ~budget =
  if owners < 1 then invalid_arg "Composition.accountant: need owners";
  check_level budget;
  { budget; spends = Array.make owners { eps = 0.; del = 0. } }

let check_owner a owner =
  if owner < 0 || owner >= Array.length a.spends then
    invalid_arg "Composition: owner out of range"

let within budget spend_ =
  spend_.eps <= budget.eps +. 1e-12 && spend_.del <= budget.del +. 1e-12

let spend a ~owner l =
  check_owner a owner;
  check_level l;
  let now = basic [ a.spends.(owner); l ] in
  a.spends.(owner) <- now;
  within a.budget now

let spent a ~owner =
  check_owner a owner;
  a.spends.(owner)

let remaining a ~owner =
  check_owner a owner;
  let s = a.spends.(owner) in
  {
    eps = Float.max 0. (a.budget.eps -. s.eps);
    del = Float.max 0. (a.budget.del -. s.del);
  }

let exhausted a =
  let out = ref [] in
  for i = Array.length a.spends - 1 downto 0 do
    if not (within a.budget a.spends.(i)) then out := i :: !out
  done;
  !out
