module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Avazu = Dm_synth.Avazu
module Hashing = Dm_ml.Hashing
module Ftrl = Dm_ml.Ftrl
module Model = Dm_market.Model
module Mechanism = Dm_market.Mechanism
module Ellipsoid = Dm_market.Ellipsoid
module Broker = Dm_market.Broker

type case = Sparse | Dense

type t = {
  hash_dim : int;
  rounds : int;
  theta_nonzeros : int;
  train_log_loss : float;
  sparse_model : Model.t;
  dense_model : Model.t;
  dense_dim : int;
  sparse_stream : Vec.t array;
  dense_stream : Vec.t array;
  feature_bound : float;
}

let make ?(train_rounds = 200_000) ?ftrl_l1 ~seed ~dim ~rounds () =
  (* The L1 threshold competes with z-accumulator random walks that
     grow like √N over the training stream; scaling it accordingly
     recovers the paper's ≈21–23 non-zero weights at either n. *)
  let ftrl_l1 =
    match ftrl_l1 with
    | Some l1 -> l1
    | None -> 0.8 *. sqrt (float_of_int train_rounds)
  in
  if dim < 2 then invalid_arg "Impression.make: dim must be >= 2";
  if rounds < 1 then invalid_arg "Impression.make: need at least one round";
  let root = Rng.create seed in
  let train_rng = Rng.split root in
  let price_rng = Rng.split root in
  (* Learn θ* on a training stream, exactly the paper's FTRL-Proximal
     step (per-coordinate rates, L1/L2). *)
  let train = Avazu.generate train_rng ~rounds:train_rounds in
  let examples =
    Array.map (fun imp -> (Avazu.encode ~dim imp, imp.Avazu.clicked)) train
  in
  let ftrl =
    Ftrl.create
      ~params:{ Ftrl.alpha = 0.1; beta = 1.; l1 = ftrl_l1; l2 = 1. }
      ~dim ()
  in
  Ftrl.train ftrl examples ~epochs:2;
  let theta = Ftrl.weights ftrl in
  let train_log_loss = Ftrl.log_loss ftrl examples in
  (* Support of the fitted model: the dense case keeps only these. *)
  let support =
    Array.of_list
      (List.filter (fun i -> theta.(i) <> 0.)
         (List.init dim (fun i -> i)))
  in
  let support = if Array.length support = 0 then [| 0 |] else support in
  let dense_dim = Array.length support in
  let theta_dense = Array.map (fun i -> theta.(i)) support in
  (* The pricing stream: fresh impressions from the same market. *)
  let pricing = Avazu.generate price_rng ~rounds in
  let sparse_stream =
    Array.map
      (fun imp -> Hashing.to_dense ~dim (Avazu.encode ~dim imp))
      pricing
  in
  let dense_stream =
    Array.map
      (fun x -> Vec.init dense_dim (fun k -> x.(support.(k))))
      sparse_stream
  in
  let feature_bound =
    Array.fold_left (fun acc x -> Float.max acc (Vec.norm2 x)) 0. sparse_stream
  in
  {
    hash_dim = dim;
    rounds;
    theta_nonzeros = Ftrl.nonzeros ftrl;
    train_log_loss;
    sparse_model = Model.logistic ~theta;
    dense_model = Model.logistic ~theta:theta_dense;
    dense_dim;
    sparse_stream;
    dense_stream;
    feature_bound;
  }

let model t = function Sparse -> t.sparse_model | Dense -> t.dense_model

let dim t = function Sparse -> t.hash_dim | Dense -> t.dense_dim

let workload t case =
  let stream =
    match case with Sparse -> t.sparse_stream | Dense -> t.dense_stream
  in
  fun i -> (stream.(i), 0.)

let default_epsilon t case =
  let n = dim t case in
  float_of_int (n * n) /. float_of_int t.rounds

let mechanism ?epsilon t case variant =
  let epsilon =
    match epsilon with Some e -> e | None -> default_epsilon t case
  in
  let n = dim t case in
  let theta = (model t case).Model.theta in
  let radius = 1.2 *. Float.max 1. (Vec.norm2 theta) in
  Mechanism.create
    (Mechanism.config ~variant ~epsilon ())
    (Ellipsoid.ball ~dim:n ~radius)

let run ?checkpoints ?epsilon t case variant =
  Broker.run ?checkpoints
    ~policy:(Broker.Ellipsoid_pricing (mechanism ?epsilon t case variant))
    ~model:(model t case)
    ~noise:(fun _ -> 0.)
    ~workload:(workload t case) ~rounds:t.rounds ()
