module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Rng = Dm_prob.Rng
module Airbnb = Dm_synth.Airbnb
module Linreg = Dm_ml.Linreg
module Split = Dm_ml.Split
module Model = Dm_market.Model
module Mechanism = Dm_market.Mechanism
module Ellipsoid = Dm_market.Ellipsoid
module Broker = Dm_market.Broker

type t = {
  dim : int;
  rounds : int;
  model : Model.t;
  radius : float;
  epsilon : float;
  test_mse : float;
  feature_bound : float;
  features : Mat.t;
}

let make ?(rows = 74_111) ~seed () =
  if rows < 10 then invalid_arg "Rental.make: need at least 10 rows";
  let root = Rng.create seed in
  let data_rng = Rng.split root in
  let split_rng = Rng.split root in
  let records = Airbnb.generate data_rng ~rows in
  let encoder = Airbnb.fit_encoder records in
  (* 80/20 split for the regression fit; the pricing stream then runs
     over the full corpus in arrival order, as the paper's T equals the
     corpus size. *)
  let { Split.train; test } = Split.random split_rng ~test_fraction:0.2 records in
  (* The staircase amenity block is strongly collinear; a ridge
     proportional to the sample count keeps the recovered weights
     small (the minimum-norm solution among near-equivalent fits),
     which in turn keeps the initial knowledge ball R = 2‖θ̂‖ tight. *)
  let ridge = 1e-3 *. float_of_int (Array.length train) in
  let fitted =
    Linreg.fit ~ridge ~intercept:false
      (Airbnb.design_matrix encoder train)
      (Airbnb.targets train)
  in
  let test_mse =
    Linreg.mse fitted (Airbnb.design_matrix encoder test) (Airbnb.targets test)
  in
  (* Normalize the log-price scale to [0, 1] over the training range.
     The paper's risk-averse baseline percentages (23.40 / 17.00 /
     9.33% at log-ratios 0.4 / 0.6 / 0.8) are only consistent with
     log prices on a unit scale, so their preprocessing must have
     normalized the regression target; we reproduce that by rescaling
     the fitted weights (exact, because feature 0 is the constant
     bias): zθ' = (zθ̂ − lo)/(hi − lo).  See EXPERIMENTS.md. *)
  let train_targets = Airbnb.targets train in
  let lo = Vec.min_elt train_targets in
  let hi = Vec.max_elt train_targets in
  let span = hi -. lo in
  let theta =
    Vec.init (Vec.dim fitted.Linreg.weights) (fun j ->
        let w = fitted.Linreg.weights.(j) /. span in
        if j = 0 then w -. (lo /. span) else w)
  in
  let model = Model.log_linear ~theta in
  let radius = 1.5 *. Float.max 0.75 (Vec.norm2 theta) in
  let epsilon = float_of_int (Airbnb.feature_dim * Airbnb.feature_dim) /. float_of_int rows in
  let features = Airbnb.design_matrix encoder records in
  {
    dim = Airbnb.feature_dim;
    rounds = rows;
    model;
    radius;
    epsilon;
    test_mse;
    feature_bound = Airbnb.max_feature_norm encoder records;
    features;
  }

let workload t ~ratio =
  if ratio < 0. || ratio >= 1. then
    invalid_arg "Rental.workload: ratio must be in [0, 1)";
  fun i ->
    let x = Mat.row t.features i in
    let log_v = Model.index t.model x in
    (x, exp (ratio *. log_v))

let mechanism t variant =
  Mechanism.create
    (Mechanism.config ~variant ~epsilon:t.epsilon ())
    (Ellipsoid.ball ~dim:t.dim ~radius:t.radius)

let run ?checkpoints ?(ratio = 0.6) t variant =
  Broker.run ?checkpoints
    ~policy:(Broker.Ellipsoid_pricing (mechanism t variant))
    ~model:t.model
    ~noise:(fun _ -> 0.)
    ~workload:(workload t ~ratio) ~rounds:t.rounds ()

let run_baseline ?checkpoints ~ratio t =
  Broker.run ?checkpoints ~policy:Broker.Risk_averse ~model:t.model
    ~noise:(fun _ -> 0.)
    ~workload:(workload t ~ratio) ~rounds:t.rounds ()
