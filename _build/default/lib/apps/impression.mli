(** App 3: pricing ad impressions under the logistic model (Sec. V-C).

    Pipeline, mirroring the paper: generate an Avazu-style click
    stream, one-hot-hash the categorical fields into n buckets, learn
    θ* with FTRL-Proximal logistic regression (the fitted vector is
    sparse — the paper reports 21 non-zeros at n = 128 and 23 at
    n = 1024), then price a fresh impression stream under
    [v = σ(xᵀθ)] (hidden θ) with the pure mechanism (no reserve, as in the
    paper's Fig. 5(c)).

    Two cases probe sparsity handling:
    - {e sparse}: feature vectors keep all n hashed coordinates;
    - {e dense}: coordinates whose fitted weight is zero are dropped,
      shrinking the ellipsoid dimension to the number of non-zeros. *)

type case = Sparse | Dense

type t = {
  hash_dim : int;  (** n, the hashing modulus *)
  rounds : int;
  theta_nonzeros : int;  (** sparsity of the fitted θ* *)
  train_log_loss : float;
  sparse_model : Dm_market.Model.t;  (** logistic over all n coordinates *)
  dense_model : Dm_market.Model.t;  (** logistic over the non-zero support *)
  dense_dim : int;
  sparse_stream : Dm_linalg.Vec.t array;  (** pricing features, n-dim *)
  dense_stream : Dm_linalg.Vec.t array;  (** same rounds, support only *)
  feature_bound : float;  (** max ‖x‖ over the sparse stream *)
}

val make :
  ?train_rounds:int ->
  ?ftrl_l1:float ->
  seed:int ->
  dim:int ->
  rounds:int ->
  unit ->
  t
(** [dim] is the hashing modulus n; [rounds] the pricing horizon;
    [train_rounds] (default 200,000) the FTRL training volume — the
    real corpus has 404M rows, scaled down per DESIGN.md §3. *)

val model : t -> case -> Dm_market.Model.t

val dim : t -> case -> int

val workload : t -> case -> (int -> Dm_linalg.Vec.t * float)
(** Reserve prices are 0 (unused: App 3 runs the pure variant). *)

val mechanism :
  ?epsilon:float -> t -> case -> Dm_market.Mechanism.variant -> Dm_market.Mechanism.t
(** [epsilon] defaults to n²/T computed in the case's dimension. *)

val run :
  ?checkpoints:int array ->
  ?epsilon:float ->
  t ->
  case ->
  Dm_market.Mechanism.variant ->
  Dm_market.Broker.result
