(** App 2: pricing accommodation rentals under the log-linear model
    (Sec. V-B).

    Pipeline, mirroring the paper: generate an Airbnb-style corpus,
    encode each record to n = 55 features (categoricals as dense
    codes, interaction block), fit θ* by OLS on the log price over an
    80% training split (the paper's test MSE is 0.226; the synthetic
    corpus is tuned to a comparable residual), then price the whole
    corpus sequentially under [log v = xᵀθ*].  The reserve price is
    controlled by the ratio between the natural logarithms of reserve
    and market value: [log q = ratio·log v].

    Regret ratios are computed on real prices (after exp), exactly as
    Section V-B prescribes. *)

type t = {
  dim : int;  (** 55 *)
  rounds : int;  (** corpus size; the paper's is 74,111 *)
  model : Dm_market.Model.t;  (** log-linear with the OLS θ̂ as θ* *)
  radius : float;  (** knowledge-ball radius, comfortably over ‖θ̂‖ *)
  epsilon : float;  (** n²/T *)
  test_mse : float;  (** held-out MSE of the fitted regression *)
  feature_bound : float;  (** max ‖x‖ over the corpus (the S/U bound) *)
  features : Dm_linalg.Mat.t;  (** encoded pricing stream, row per round *)
}

val make : ?rows:int -> seed:int -> unit -> t
(** Defaults to the paper's 74,111 records. *)

val workload : t -> ratio:float -> (int -> Dm_linalg.Vec.t * float)
(** Round [i] prices record [i] with reserve [exp(ratio·xᵢᵀθ)];
    [ratio = 0] makes the reserve 1 (log-reserve 0) and is only
    meaningful for reserve-free variants. *)

val mechanism : t -> Dm_market.Mechanism.variant -> Dm_market.Mechanism.t

val run :
  ?checkpoints:int array ->
  ?ratio:float ->
  t ->
  Dm_market.Mechanism.variant ->
  Dm_market.Broker.result
(** [ratio] defaults to 0.6, the paper's headline setting. *)

val run_baseline :
  ?checkpoints:int array -> ratio:float -> t -> Dm_market.Broker.result
