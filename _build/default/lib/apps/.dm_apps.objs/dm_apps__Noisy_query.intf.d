lib/apps/noisy_query.mli: Dm_linalg Dm_market Dm_synth Lazy
