lib/apps/impression.mli: Dm_linalg Dm_market
