lib/apps/rental.mli: Dm_linalg Dm_market
