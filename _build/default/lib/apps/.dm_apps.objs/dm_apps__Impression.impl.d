lib/apps/impression.ml: Array Dm_linalg Dm_market Dm_ml Dm_prob Dm_synth Float List
