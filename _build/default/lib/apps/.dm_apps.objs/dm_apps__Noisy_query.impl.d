lib/apps/noisy_query.ml: Array Dm_linalg Dm_market Dm_privacy Dm_prob Dm_synth Float Lazy
