lib/core/feature.ml: Array Dm_linalg
