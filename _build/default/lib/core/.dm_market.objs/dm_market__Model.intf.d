lib/core/model.mli: Dm_linalg Dm_ml
