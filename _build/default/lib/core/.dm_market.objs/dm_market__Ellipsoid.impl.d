lib/core/ellipsoid.ml: Array Buffer Dm_linalg Float Format List Option Printf String
