lib/core/broker.mli: Dm_linalg Dm_prob Mechanism Model
