lib/core/sgd_pricing.mli: Broker Dm_linalg
