lib/core/sgd_pricing.ml: Array Broker Dm_linalg Float
