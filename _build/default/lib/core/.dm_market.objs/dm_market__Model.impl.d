lib/core/model.ml: Dm_linalg Dm_ml Fun
