lib/core/arbitrage.ml: Array Float List
