lib/core/feature.mli: Dm_linalg
