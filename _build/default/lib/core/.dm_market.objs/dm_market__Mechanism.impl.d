lib/core/mechanism.ml: Array Ellipsoid Float Printf Scanf String
