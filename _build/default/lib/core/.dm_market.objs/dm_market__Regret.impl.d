lib/core/regret.ml: Dm_linalg
