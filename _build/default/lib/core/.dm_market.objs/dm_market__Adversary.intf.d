lib/core/adversary.mli: Broker
