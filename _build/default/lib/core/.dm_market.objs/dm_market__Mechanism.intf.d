lib/core/mechanism.mli: Dm_linalg Ellipsoid
