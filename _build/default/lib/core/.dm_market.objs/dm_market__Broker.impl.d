lib/core/broker.ml: Array Dm_linalg Dm_prob Float List Mechanism Model Option Regret
