lib/core/regret.mli: Dm_linalg
