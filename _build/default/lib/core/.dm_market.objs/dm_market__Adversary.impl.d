lib/core/adversary.ml: Array Broker Dm_linalg Ellipsoid Mechanism Model
