lib/core/ellipsoid.mli: Dm_linalg Format
