lib/core/arbitrage.mli:
