module Vec = Dm_linalg.Vec
module Stats = Dm_prob.Stats

type custom_policy = {
  policy_name : string;
  decide : x:Vec.t -> reserve:float -> float option;
  learn : x:Vec.t -> price:float -> accepted:bool -> unit;
  uses_reserve : bool;
}

type policy =
  | Ellipsoid_pricing of Mechanism.t
  | Risk_averse
  | Custom of custom_policy

type kind = Exploratory | Conservative | Skipped | Baseline

type round = {
  index : int;
  reserve : float;
  market_value : float;
  posted : float option;
  kind : kind;
  accepted : bool;
  revenue : float;
  regret : float;
}

type series = {
  checkpoints : int array;
  cumulative_regret : float array;
  cumulative_value : float array;
  regret_ratio : float array;
}

type result = {
  rounds : int;
  total_regret : float;
  total_value : float;
  total_revenue : float;
  regret_ratio : float;
  series : series;
  market_value_stats : Stats.summary;
  reserve_stats : Stats.summary;
  posted_stats : Stats.summary;
  regret_stats : Stats.summary;
  exploratory : int;
  conservative : int;
  skipped : int;
  accepted_rounds : int;
  logs : round array option;
}

let default_checkpoints ~rounds =
  if rounds < 1 then invalid_arg "Broker.default_checkpoints: empty horizon";
  let target = 200 in
  let ratio = (float_of_int rounds) ** (1. /. float_of_int target) in
  let rec collect acc last x =
    if last >= rounds then List.rev acc
    else
      let next = max (last + 1) (int_of_float (Float.round x)) in
      let next = min next rounds in
      collect (next :: acc) next (x *. ratio)
  in
  Array.of_list (collect [ 1 ] 1 ratio)

let uses_reserve = function
  | Risk_averse -> true
  | Ellipsoid_pricing m -> (Mechanism.config_of m).Mechanism.variant.use_reserve
  | Custom c -> c.uses_reserve

let run ?checkpoints ?(record_rounds = false) ~policy ~model ~noise ~workload
    ~rounds () =
  if rounds < 1 then invalid_arg "Broker.run: need at least one round";
  let checkpoints =
    match checkpoints with
    | Some c ->
        (* The consumption loop below assumes strictly increasing
           1-based rounds; a malformed array would silently drop
           checkpoints and leave zeroed series entries. *)
        Array.iteri
          (fun i cp ->
            if cp < 1 || cp > rounds then
              invalid_arg "Broker.run: checkpoint outside [1, rounds]";
            if i > 0 && cp <= c.(i - 1) then
              invalid_arg "Broker.run: checkpoints must be strictly increasing")
          c;
        c
    | None -> default_checkpoints ~rounds
  in
  let n_checks = Array.length checkpoints in
  let cum_regret_at = Array.make n_checks 0. in
  let cum_value_at = Array.make n_checks 0. in
  let ratio_at = Array.make n_checks 0. in
  let next_check = ref 0 in
  let mv_stats = Stats.online_create () in
  let rs_stats = Stats.online_create () in
  let post_stats = Stats.online_create () in
  let regret_stats = Stats.online_create () in
  let cum_regret = ref 0. in
  let cum_value = ref 0. in
  let cum_revenue = ref 0. in
  let exploratory = ref 0 in
  let conservative = ref 0 in
  let skipped = ref 0 in
  let accepted_rounds = ref 0 in
  let logs = if record_rounds then Some (ref []) else None in
  let with_reserve = uses_reserve policy in
  let theta = model.Model.theta in
  let link = model.Model.link in
  for t = 0 to rounds - 1 do
    let x_raw, q_value = workload t in
    let phi = Model.feature_map model x_raw in
    let delta_t = noise t in
    let market_index = Vec.dot phi theta +. delta_t in
    let market_value = link.Model.g market_index in
    let posted, kind, accepted =
      match policy with
      | Risk_averse ->
          (Some q_value, Baseline, q_value <= market_value)
      | Custom c -> (
          let reserve_index = link.Model.g_inv q_value in
          match c.decide ~x:phi ~reserve:reserve_index with
          | None -> (None, Skipped, false)
          | Some price ->
              let accepted = price <= market_index in
              c.learn ~x:phi ~price ~accepted;
              (Some (link.Model.g price), Baseline, accepted))
      | Ellipsoid_pricing mech ->
          let reserve_index = link.Model.g_inv q_value in
          let decision = Mechanism.decide mech ~x:phi ~reserve:reserve_index in
          let accepted =
            match decision with
            | Mechanism.Skip -> false
            | Mechanism.Post { price; _ } -> price <= market_index
          in
          Mechanism.observe mech ~x:phi decision ~accepted;
          let posted, kind =
            match decision with
            | Mechanism.Skip -> (None, Skipped)
            | Mechanism.Post { price; kind = Mechanism.Exploratory; _ } ->
                (Some (link.Model.g price), Exploratory)
            | Mechanism.Post { price; kind = Mechanism.Conservative; _ } ->
                (Some (link.Model.g price), Conservative)
          in
          (posted, kind, accepted)
    in
    let regret =
      match posted with
      | None -> Regret.skipped ~reserve:q_value ~market_value
      | Some p ->
          if with_reserve then
            Regret.posted ~reserve:q_value ~market_value ~price:p ()
          else Regret.posted ~market_value ~price:p ()
    in
    let revenue =
      match posted with
      | Some p when accepted -> p
      | Some _ | None -> 0.
    in
    (match kind with
    | Exploratory -> incr exploratory
    | Conservative -> incr conservative
    | Skipped -> incr skipped
    | Baseline -> ());
    if accepted then incr accepted_rounds;
    cum_regret := !cum_regret +. regret;
    cum_value := !cum_value +. market_value;
    cum_revenue := !cum_revenue +. revenue;
    Stats.online_add mv_stats market_value;
    Stats.online_add rs_stats q_value;
    (match posted with Some p -> Stats.online_add post_stats p | None -> ());
    Stats.online_add regret_stats regret;
    (match logs with
    | Some cell ->
        cell :=
          {
            index = t;
            reserve = q_value;
            market_value;
            posted;
            kind;
            accepted;
            revenue;
            regret;
          }
          :: !cell
    | None -> ());
    while !next_check < n_checks && checkpoints.(!next_check) = t + 1 do
      cum_regret_at.(!next_check) <- !cum_regret;
      cum_value_at.(!next_check) <- !cum_value;
      ratio_at.(!next_check) <-
        (if !cum_value > 0. then !cum_regret /. !cum_value else 0.);
      incr next_check
    done
  done;
  {
    rounds;
    total_regret = !cum_regret;
    total_value = !cum_value;
    total_revenue = !cum_revenue;
    regret_ratio =
      (if !cum_value > 0. then !cum_regret /. !cum_value else 0.);
    series =
      {
        checkpoints;
        cumulative_regret = cum_regret_at;
        cumulative_value = cum_value_at;
        regret_ratio = ratio_at;
      };
    market_value_stats = Stats.summarize mv_stats;
    reserve_stats = Stats.summarize rs_stats;
    posted_stats = Stats.summarize post_stats;
    regret_stats = Stats.summarize regret_stats;
    exploratory = !exploratory;
    conservative = !conservative;
    skipped = !skipped;
    accepted_rounds = !accepted_rounds;
    logs = Option.map (fun cell -> Array.of_list (List.rev !cell)) logs;
  }
