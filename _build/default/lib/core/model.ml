module Vec = Dm_linalg.Vec

type link = { name : string; g : float -> float; g_inv : float -> float }

let identity_link = { name = "identity"; g = Fun.id; g_inv = Fun.id }

let exp_link =
  {
    name = "exp";
    g = exp;
    g_inv = (fun y -> if y <= 0. then neg_infinity else log y);
  }

let sigmoid g_z =
  if g_z >= 0. then 1. /. (1. +. exp (-.g_z))
  else
    let e = exp g_z in
    e /. (1. +. e)

let sigmoid_link =
  {
    name = "sigmoid";
    g = sigmoid;
    g_inv =
      (fun y ->
        if y <= 0. then neg_infinity
        else if y >= 1. then infinity
        else log (y /. (1. -. y)));
  }

type t = {
  name : string;
  link : link;
  phi : Vec.t -> Vec.t;
  theta : Vec.t;
}

let check_theta name theta =
  if Vec.dim theta = 0 then invalid_arg (name ^ ": empty weight vector")

let linear ~theta =
  check_theta "Model.linear" theta;
  { name = "linear"; link = identity_link; phi = Fun.id; theta }

let log_linear ~theta =
  check_theta "Model.log_linear" theta;
  { name = "log-linear"; link = exp_link; phi = Fun.id; theta }

let log_log ~theta =
  check_theta "Model.log_log" theta;
  let phi x =
    Vec.map
      (fun xi ->
        if xi <= 0. then invalid_arg "Model.log_log: non-positive feature"
        else log xi)
      x
  in
  { name = "log-log"; link = exp_link; phi; theta }

let logistic ~theta =
  check_theta "Model.logistic" theta;
  { name = "logistic"; link = sigmoid_link; phi = Fun.id; theta }

let kernelized ~map ~theta =
  check_theta "Model.kernelized" theta;
  if Vec.dim theta <> Dm_ml.Kernel.landmark_dim map then
    invalid_arg "Model.kernelized: one weight per landmark required";
  {
    name = "kernelized";
    link = identity_link;
    phi = Dm_ml.Kernel.apply map;
    theta;
  }

let custom ~name ~link ~phi ~theta =
  check_theta ("Model.custom(" ^ name ^ ")") theta;
  { name; link; phi; theta }

let index_dim t = Vec.dim t.theta

let feature_map t x = t.phi x

let index t x =
  let fx = t.phi x in
  if Vec.dim fx <> Vec.dim t.theta then
    invalid_arg "Model.index: feature map dimension mismatch";
  Vec.dot fx t.theta

let value ?(noise = 0.) t x = t.link.g (index t x +. noise)

let price_of_index t z = t.link.g z

let index_of_price t p = t.link.g_inv p
