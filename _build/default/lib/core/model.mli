(** Market-value models: linear and the Section IV-A non-linear class.

    Every supported model has the form [v = g(φ(x)ᵀθ* + δ)] with a
    public non-decreasing continuous link [g], a public feature map
    [φ], and a hidden weight vector θ* (the paper's Eq. 27; the
    uncertainty δ acts in index space, which coincides with additive
    value-space noise when [g] is the identity).

    The pricing mechanism explores in *index space* — the scalar
    [z = φ(x)ᵀθ] — and only converts to money through [g] at the
    posting boundary; the reserve price is pulled into index space
    through [g⁻¹].  Hence every link here is strictly increasing and
    invertible on the relevant range.

    Note: the paper prints the logistic link as [1/(1+exp(z))], which
    is decreasing and contradicts its own monotonicity requirement;
    we use the standard sigmoid [1/(1+exp(−z))] (see DESIGN.md §3). *)

type link = {
  name : string;
  g : float -> float;
  g_inv : float -> float;
      (** inverse on the link's range; values outside the range clamp
          to ±∞, which the reserve-price max handles gracefully *)
}

val identity_link : link

val exp_link : link
(** [g = exp], [g⁻¹ = log] (log-linear and log-log models);
    [g⁻¹ q = −∞] for q ≤ 0. *)

val sigmoid_link : link
(** [g = σ], [g⁻¹ = logit]; quantities outside (0, 1) clamp to ±∞. *)

type t = private {
  name : string;
  link : link;
  phi : Dm_linalg.Vec.t -> Dm_linalg.Vec.t;  (** public feature map *)
  theta : Dm_linalg.Vec.t;  (** hidden weights over φ(x) *)
}

val linear : theta:Dm_linalg.Vec.t -> t
(** [v = xᵀθ* + δ] — the fundamental model of Section III. *)

val log_linear : theta:Dm_linalg.Vec.t -> t
(** [log v = xᵀθ*] — App 2's accommodation-rental model. *)

val log_log : theta:Dm_linalg.Vec.t -> t
(** [log v = Σᵢ log(xᵢ)·θᵢ*] — hedonic pricing; features must be
    positive where the weight is non-zero. *)

val logistic : theta:Dm_linalg.Vec.t -> t
(** [v = σ(xᵀθ)] with hidden θ — App 3's impression/CTR model. *)

val kernelized : map:Dm_ml.Kernel.landmark_map -> theta:Dm_linalg.Vec.t -> t
(** [v = φ(x)ᵀθ*] with [φ(x) = (K(x,l₁),…,K(x,l_m))] — the fixed-
    landmark realization of the paper's kernelized model (DESIGN.md
    §3).  [theta] must have one weight per landmark. *)

val custom :
  name:string ->
  link:link ->
  phi:(Dm_linalg.Vec.t -> Dm_linalg.Vec.t) ->
  theta:Dm_linalg.Vec.t ->
  t
(** Escape hatch for models outside the four canned ones. *)

val index_dim : t -> int
(** Dimension of φ(x) — the dimension the ellipsoid lives in. *)

val feature_map : t -> Dm_linalg.Vec.t -> Dm_linalg.Vec.t

val index : t -> Dm_linalg.Vec.t -> float
(** The noiseless index [φ(x)ᵀθ*]. *)

val value : ?noise:float -> t -> Dm_linalg.Vec.t -> float
(** The market value [g(φ(x)ᵀθ* + noise)] (noise defaults to 0). *)

val price_of_index : t -> float -> float
(** [g] applied to an index-space price — what the buyer is shown. *)

val index_of_price : t -> float -> float
(** [g⁻¹] applied to a value-space amount (e.g. a reserve price). *)
