module Vec = Dm_linalg.Vec

type t = {
  theta : Vec.t;
  radius : float;
  learning_rate : float;
  margin : float;
  use_reserve : bool;
  mutable t : int;
}

let create ?(learning_rate = 5.) ?(margin = 0.3) ?(use_reserve = true) ~dim
    ~radius () =
  if dim < 1 then invalid_arg "Sgd_pricing.create: dim must be >= 1";
  if radius <= 0. then invalid_arg "Sgd_pricing.create: radius must be > 0";
  if learning_rate <= 0. then
    invalid_arg "Sgd_pricing.create: learning rate must be > 0";
  if margin < 0. then invalid_arg "Sgd_pricing.create: negative margin";
  { theta = Vec.zeros dim; radius; learning_rate; margin; use_reserve; t = 0 }

let estimate s = Vec.copy s.theta

let rounds_seen s = s.t

let project s =
  let norm = Vec.norm2 s.theta in
  if norm > s.radius then begin
    let f = s.radius /. norm in
    for i = 0 to Vec.dim s.theta - 1 do
      s.theta.(i) <- f *. s.theta.(i)
    done
  end

let decide s ~x ~reserve =
  s.t <- s.t + 1;
  let tf = float_of_int s.t in
  let estimate = Vec.dot x s.theta in
  (* Price below the estimate by a shrinking margin: early rounds
     under-price to keep acceptance (and learning signal) frequent. *)
  let discount = s.margin *. (tf ** (-1. /. 3.)) *. s.radius in
  let price = estimate -. discount in
  let price = if s.use_reserve then Float.max reserve price else price in
  Some price

let learn s ~x ~price ~accepted =
  (* Subgradient of the hinge surrogate: move only when the estimate
     disagrees with the observed comparison. *)
  let estimate = Vec.dot x s.theta in
  let direction =
    if accepted && estimate < price then 1.
    else if (not accepted) && estimate > price then -1.
    else 0.
  in
  if direction <> 0. then begin
    let eta = s.learning_rate /. sqrt (float_of_int (max 1 s.t)) in
    Vec.axpy (direction *. eta) x s.theta;
    project s
  end

let policy s =
  {
    Broker.policy_name = "sgd (Amin et al. style)";
    decide = (fun ~x ~reserve -> decide s ~x ~reserve);
    learn = (fun ~x ~price ~accepted -> learn s ~x ~price ~accepted);
    uses_reserve = s.use_reserve;
  }
