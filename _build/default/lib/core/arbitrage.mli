(** Arbitrage-freeness of variance-indexed query prices.

    The database line of work the paper builds on (Li et al., CACM'17;
    Koutris et al., PODS'12 — Sec. VI-A) prices a noisy linear query
    by the noise variance [v] the consumer tolerates: the same query
    answered more precisely costs more.  A consumer can cheat a badly
    chosen tariff: averaging independent answers with variances [v₁]
    and [v₂] synthesizes an answer with variance
    [1/(1/v₁ + 1/v₂)] (inverse variances add for the optimal linear
    combination), so an *arbitrage-free* price function must charge
    any achievable variance no more than the cost of synthesizing it:

    {v  1/v ≤ Σᵢ 1/vᵢ   ⇒   p(v) ≤ Σᵢ p(vᵢ)  v}

    which, for continuous tariffs, is equivalent to [p(1/w)] being
    non-negative, non-decreasing and subadditive in the precision
    [w = 1/v].  Li et al.'s canonical example [p(v) = c/v] is
    arbitrage-free; [p(v) = c/v²] is not.

    This module supplies those canonical tariffs and checkers the
    broker (or tests) can run against any candidate tariff. *)

type tariff = float -> float
(** A price as a function of the answer variance [v > 0]. *)

val inverse_variance : c:float -> tariff
(** [p(v) = c/v] — arbitrage-free for [c ≥ 0]. *)

val inverse_variance_squared : c:float -> tariff
(** [p(v) = c/v²] — the classical {e arbitrage-prone} example. *)

val capped : cap:float -> tariff -> tariff
(** [min cap (p v)]: capping preserves subadditivity and monotonicity
    (hence arbitrage-freeness). *)

val violates :
  tariff -> target:float -> components:float list -> bool
(** Whether buying [components] (variances) and averaging undercuts
    buying [target] directly, i.e. the components synthesize at least
    the target's precision strictly cheaper.  Raises
    [Invalid_argument] on non-positive variances or an empty list. *)

val find_violation :
  ?grid:float array -> ?pairs_only:bool -> tariff -> (float * float list) option
(** Search a variance grid (default 1e-3..1e3 log-spaced) for an
    arbitrage opportunity using pairs (and triples unless
    [pairs_only]).  [None] means no violation on the grid — evidence,
    not proof, of arbitrage-freeness. *)

val is_arbitrage_free_on : grid:float array -> tariff -> bool
(** [find_violation ~grid t = None]. *)
