(** Query feature vectors from privacy compensations (Section II-B).

    The paper represents a query by the *state of the privacy
    compensations* it induces — cost-plus pricing: the market value of
    a query is its cost (total compensation) plus a markup that the
    pricing mechanism discovers.  With many data owners the raw
    compensation vector is too high-dimensional, so it is aggregated:
    "we can sort the privacy compensations, and evenly divide them
    into n partitions.  We sum the privacy compensations falling into
    a certain partition, and thus obtain a feature."

    [dim = 1] degenerates to the single total-compensation feature and
    [dim = owner count] keeps every individual compensation, the two
    extremes the paper calls out. *)

val aggregate : dim:int -> Dm_linalg.Vec.t -> Dm_linalg.Vec.t
(** [aggregate ~dim comps] sorts [comps] increasingly, splits the
    sorted sequence into [dim] contiguous partitions of (near-)equal
    cardinality, and sums each partition.  The feature sum equals the
    total compensation exactly.  Requires [1 ≤ dim ≤ Vec.dim comps]
    and non-negative compensations. *)

val unit_normalize : Dm_linalg.Vec.t -> Dm_linalg.Vec.t
(** Scale to unit L2 norm, as the App-1 setup does (‖x_t‖ = 1, so the
    feature bound is S = 1).  The zero vector is returned unchanged
    (a query that compensates nobody carries no signal). *)

val of_compensations : dim:int -> Dm_linalg.Vec.t -> Dm_linalg.Vec.t * float
(** The full App-1 pipeline: aggregate, normalize, and return the
    normalized feature vector together with the matching reserve price
    [q = Σᵢ xᵢ] (the total compensation expressed on the normalized
    scale, exactly the paper's [q_t = Σ x_{t,i}]). *)
