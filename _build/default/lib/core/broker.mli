(** The data broker's trading loop (Fig. 2 of the paper).

    [run] plays [rounds] rounds of posted-price trading between a
    pricing policy and a stream of buyers whose willingness to pay
    follows a {!Model.t} with per-round uncertainty: in round [t] the
    workload yields a query feature vector and a (value-space) reserve
    price, the policy posts a price (or skips), the buyer accepts iff
    the price does not exceed the realized market value, and the
    broker accounts revenue and regret (Eq. 1/7).

    Two policies are built in: the paper's ellipsoid mechanism (all
    four variants) and the risk-averse baseline of Section V that
    posts the reserve price every round. *)

type custom_policy = {
  policy_name : string;
  decide : x:Dm_linalg.Vec.t -> reserve:float -> float option;
      (** index-space price to post, or [None] to skip the round *)
  learn : x:Dm_linalg.Vec.t -> price:float -> accepted:bool -> unit;
      (** feedback after a posted round (never called on skips) *)
  uses_reserve : bool;
      (** whether regret should honour the reserve (Eq. 1 vs Eq. 7) *)
}
(** A pluggable pricing policy — how comparison baselines (e.g. the
    SGD pricer of {!Sgd_pricing}) enter the same trading loop. *)

type policy =
  | Ellipsoid_pricing of Mechanism.t
  | Risk_averse
      (** post the reserve price itself each round — sells whenever a
          sale is possible at all, never learns *)
  | Custom of custom_policy

type kind = Exploratory | Conservative | Skipped | Baseline

type round = {
  index : int;  (** 0-based round number *)
  reserve : float;  (** value space *)
  market_value : float;  (** realized, value space *)
  posted : float option;  (** value space; [None] for skips *)
  kind : kind;
  accepted : bool;
  revenue : float;
  regret : float;
}

type series = {
  checkpoints : int array;  (** 1-based round counts, increasing *)
  cumulative_regret : float array;
  cumulative_value : float array;
  regret_ratio : float array;
      (** Σregret / Σmarket-value at each checkpoint — the paper's
          headline metric *)
}

type result = {
  rounds : int;
  total_regret : float;
  total_value : float;
  total_revenue : float;
  regret_ratio : float;
  series : series;
  market_value_stats : Dm_prob.Stats.summary;
  reserve_stats : Dm_prob.Stats.summary;
  posted_stats : Dm_prob.Stats.summary;  (** over posted rounds only *)
  regret_stats : Dm_prob.Stats.summary;  (** per-round, all rounds *)
  exploratory : int;
  conservative : int;
  skipped : int;
  accepted_rounds : int;
  logs : round array option;  (** present iff [record_rounds] *)
}

val default_checkpoints : rounds:int -> int array
(** ≈200 geometrically spaced checkpoints ending at [rounds]. *)

val run :
  ?checkpoints:int array ->
  ?record_rounds:bool ->
  policy:policy ->
  model:Model.t ->
  noise:(int -> float) ->
  workload:(int -> Dm_linalg.Vec.t * float) ->
  rounds:int ->
  unit ->
  result
(** [workload t] returns the round-[t] raw feature vector (before the
    model's φ) and the value-space reserve price.  [noise t] is the
    index-space uncertainty δ_t.  Regret uses Eq. 1 when the policy
    honours reserve prices (reserve variants and the baseline) and
    Eq. 7 otherwise.  [record_rounds] (default false) materializes
    per-round logs — leave it off for 10⁵-round sweeps.
    [checkpoints], when given, must be strictly increasing 1-based
    round counts within [1, rounds]; anything else raises
    [Invalid_argument] rather than silently dropping entries. *)
