type tariff = float -> float

let inverse_variance ~c =
  if c < 0. then invalid_arg "Arbitrage.inverse_variance: negative rate";
  fun v -> c /. v

let inverse_variance_squared ~c =
  if c < 0. then invalid_arg "Arbitrage.inverse_variance_squared: negative rate";
  fun v -> c /. (v *. v)

let capped ~cap t =
  if cap < 0. then invalid_arg "Arbitrage.capped: negative cap";
  fun v -> Float.min cap (t v)

let check_variance v =
  if v <= 0. then invalid_arg "Arbitrage: variances must be positive"

let violates t ~target ~components =
  check_variance target;
  if components = [] then invalid_arg "Arbitrage.violates: no components";
  List.iter check_variance components;
  let precision = List.fold_left (fun acc v -> acc +. (1. /. v)) 0. components in
  let cost = List.fold_left (fun acc v -> acc +. t v) 0. components in
  precision >= (1. /. target) -. 1e-12 && cost < t target -. 1e-9

let default_grid =
  Array.init 25 (fun i -> 10. ** ((float_of_int i /. 4.) -. 3.))

let find_violation ?(grid = default_grid) ?(pairs_only = false) t =
  let n = Array.length grid in
  let found = ref None in
  (try
     for a = 0 to n - 1 do
       for b = a to n - 1 do
         for target = 0 to n - 1 do
           let components = [ grid.(a); grid.(b) ] in
           if violates t ~target:grid.(target) ~components then begin
             found := Some (grid.(target), components);
             raise Exit
           end
         done;
         if not pairs_only then
           for c = b to n - 1 do
             for target = 0 to n - 1 do
               let components = [ grid.(a); grid.(b); grid.(c) ] in
               if violates t ~target:grid.(target) ~components then begin
                 found := Some (grid.(target), components);
                 raise Exit
               end
             done
           done
       done
     done
   with Exit -> ());
  !found

let is_arbitrage_free_on ~grid t = find_violation ~grid t = None
