(** A stochastic-gradient-descent pricing baseline.

    The paper's related work (Sec. VI-B) credits Amin, Rostamizadeh
    and Syed (NIPS'14) with the first contextual posted-price learner:
    an SGD scheme that attains O(T^{2/3}) strategic regret — markedly
    worse than the ellipsoid family's logarithmic guarantees, which is
    precisely the comparison this module makes reproducible.

    The implementation performs online subgradient descent on the
    one-bit surrogate hinge loss

    {v  ℓ_t(θ) = 1(accepted)·(p_t − xᵀθ)₊ + 1(rejected)·(xᵀθ − p_t)₊  v}

    whose minimizers are consistent with every observed comparison
    (acceptance proves the value is at least the price, rejection that
    it is below).  The posted price is the current estimate minus a
    decaying exploration margin [margin₀·t^{−1/3}] (the t^{−1/3}
    schedule mirrors Amin et al.'s exploration rate and yields the
    characteristic T^{2/3} regret envelope), floored at the reserve
    when one applies.

    The estimate is projected back onto the radius-R ball after each
    step, matching the prior knowledge the ellipsoid mechanism gets. *)

type t

val create :
  ?learning_rate:float ->
  ?margin:float ->
  ?use_reserve:bool ->
  dim:int ->
  radius:float ->
  unit ->
  t
(** [create ~dim ~radius ()] starts from the zero estimate.
    [learning_rate] (default 5, tuned on the App-1 market so the
    baseline is not a strawman) scales the [η₀/√t] step;
    [margin] (default 0.3) scales the [t^{−1/3}] exploration discount;
    [use_reserve] (default true) floors posted prices at the reserve. *)

val estimate : t -> Dm_linalg.Vec.t
(** The current weight estimate (a copy). *)

val rounds_seen : t -> int

val policy : t -> Broker.custom_policy
(** Wrap as a {!Broker.Custom} policy sharing this state. *)
