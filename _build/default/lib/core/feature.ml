module Vec = Dm_linalg.Vec

let aggregate ~dim comps =
  let m = Vec.dim comps in
  if dim < 1 || dim > m then
    invalid_arg "Feature.aggregate: dim must be within [1, owner count]";
  Array.iter
    (fun c ->
      if c < 0. then invalid_arg "Feature.aggregate: negative compensation")
    comps;
  let sorted = Vec.sorted comps in
  let out = Vec.zeros dim in
  (* Partition boundaries ⌊k·m/dim⌋ make the parts as even as
     possible; every element lands in exactly one part. *)
  for k = 0 to dim - 1 do
    let start = k * m / dim in
    let stop = (k + 1) * m / dim in
    let acc = ref 0. in
    for i = start to stop - 1 do
      acc := !acc +. sorted.(i)
    done;
    out.(k) <- !acc
  done;
  out

let unit_normalize v =
  let n = Vec.norm2 v in
  if n <= 0. then v else Vec.scale (1. /. n) v

let of_compensations ~dim comps =
  let features = unit_normalize (aggregate ~dim comps) in
  (features, Vec.sum features)
