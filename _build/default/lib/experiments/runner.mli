(** Deterministic fork/join execution of independent experiment cells
    over OCaml 5 domains.

    The experiment grid — (figure × dimension × variant × seed) — is
    embarrassingly parallel: every cell derives its randomness from its
    own integer seed (or an {!Dm_prob.Rng} stream split off {e before}
    dispatch), touches no state outside its closure, and renders into
    its own buffer.  The pool therefore guarantees that results merge
    in submission order, so the output is byte-identical whatever the
    worker count — [~jobs:1] and [~jobs:8] produce the same bytes.

    Cells must be self-contained: no shared mutable state (including
    unforced [Lazy.t] values — force them before dispatch) may cross
    domains. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [Array.map f xs] computed by a pool of at most
    [jobs] domains (default 1: plain sequential [Array.map], no domain
    spawned).  Results are returned in submission order regardless of
    completion order.  If any application of [f] raises, the exception
    of the lowest-index failing cell is re-raised after every worker
    has been joined.  Raises [Invalid_argument] if [jobs < 1]. *)

val render :
  ?jobs:int -> Format.formatter -> (Format.formatter -> unit) array -> unit
(** [render ~jobs ppf cells] runs every cell against its own
    [Buffer]-backed formatter via {!map}, then flushes the buffers to
    [ppf] in submission order — the parallel replacement for
    [Array.iter (fun cell -> cell ppf) cells]. *)
