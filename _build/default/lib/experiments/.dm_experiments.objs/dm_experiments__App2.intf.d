lib/experiments/app2.mli: Format
