lib/experiments/diagnostics.ml: Array Dm_apps Dm_linalg Dm_ml List Printf Table
