lib/experiments/overhead.mli: Format
