lib/experiments/app3.mli: Format
