lib/experiments/analysis.mli: Format
