lib/experiments/app1.mli: Format
