lib/experiments/baselines.ml: App1 Array Dm_apps Dm_market Dm_prob Format Fun List Printf Runner Table
