lib/experiments/app2.ml: App1 Array Dm_apps Dm_market Format Fun Hashtbl List Printf Runner Table
