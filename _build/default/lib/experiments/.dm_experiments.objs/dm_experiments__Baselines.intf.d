lib/experiments/baselines.mli: Format
