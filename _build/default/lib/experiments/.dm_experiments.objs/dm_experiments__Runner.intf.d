lib/experiments/runner.mli: Format
