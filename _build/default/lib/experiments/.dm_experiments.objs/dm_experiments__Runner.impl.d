lib/experiments/runner.ml: Array Atomic Buffer Domain Format
