lib/experiments/app3.ml: App1 Array Dm_apps Dm_market Format List Printf Table
