lib/experiments/overhead.ml: Array Dm_apps Dm_linalg Dm_market Gc List Printf Sys Table Unix
