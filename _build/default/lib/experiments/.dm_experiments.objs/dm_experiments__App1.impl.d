lib/experiments/app1.ml: Array Dm_apps Dm_market Dm_prob Float Format Fun List Printf Runner Table
