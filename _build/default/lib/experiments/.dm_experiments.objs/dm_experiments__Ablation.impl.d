lib/experiments/ablation.ml: Array Dm_apps Dm_linalg Dm_market Dm_ml Dm_privacy Dm_prob Dm_synth Float Printf Runner Table
