lib/experiments/diagnostics.mli: Dm_linalg Format
