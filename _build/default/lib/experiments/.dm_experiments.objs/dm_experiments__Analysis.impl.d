lib/experiments/analysis.ml: Array Dm_linalg Dm_market Dm_ml Dm_prob Float List Printf Table
