(** Experiment driver for App 3 (impression pricing; Sec. V-C):
    Fig. 5(c).

    The full paper setting (n = 1024, T = 10⁵) prices through a
    1024-dimensional ellipsoid — ~10¹¹ floating-point operations — so
    the default horizon for n = 1024 is reduced; pass [full:true] to
    run the paper's exact scale. *)

val fig5c :
  ?scale:float -> ?seed:int -> ?full:bool -> Format.formatter -> unit
(** Regret ratios for the pure version over sparse and dense cases at
    n ∈ {128, 1024} (paper finals at t = 10⁵: 2.02% / 0.41% at n = 128
    and 8.04% / 0.89% at n = 1024 for sparse / dense). *)
