let map ?(jobs = 1) f xs =
  if jobs < 1 then invalid_arg "Runner.map: jobs must be positive";
  let n = Array.length xs in
  if jobs = 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Work-stealing by atomic counter: each worker claims the next
       unclaimed index until the grid is exhausted.  [results] is
       race-free because index [i] is written by exactly one worker
       and only read after every domain has been joined. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             (match f xs.(i) with
             | y -> Some (Ok y)
             | exception e -> Some (Error e)));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok y) -> y
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let render ?(jobs = 1) ppf cells =
  let chunks =
    map ~jobs
      (fun cell ->
        let buf = Buffer.create 4096 in
        let bppf = Format.formatter_of_buffer buf in
        cell bppf;
        Format.pp_print_flush bppf ();
        Buffer.contents buf)
      cells
  in
  (* Strings pass through the formatter as atomic tokens (no break
     hints are emitted between them), so the merged output is the
     exact concatenation of the per-cell buffers. *)
  Array.iter (Format.pp_print_string ppf) chunks;
  Format.pp_print_flush ppf ()
