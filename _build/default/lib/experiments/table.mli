(** Plain-text table rendering for the experiment reports. *)

val print :
  Format.formatter -> title:string -> header:string list -> string list list -> unit
(** [print ppf ~title ~header rows] renders a right-aligned monospace
    table with a title rule.  Column widths adapt to content. *)

val fmt_pct : float -> string
(** Percentage with two decimals, e.g. [7.77%]. *)

val fmt_g : float -> string
(** Compact float (4 significant digits). *)

val sparkline : float array -> string
(** A unicode block-character miniature of a series (min–max scaled);
    the experiment drivers print one under each figure so trends read
    at a glance in a terminal.  Empty input gives the empty string;
    non-finite values render as spaces. *)
