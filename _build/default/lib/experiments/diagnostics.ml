module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Pca = Dm_ml.Pca
module Noisy_query = Dm_apps.Noisy_query
module Rental = Dm_apps.Rental
module Impression = Dm_apps.Impression

let effective_rank ?(threshold = 0.99) sample =
  if threshold <= 0. || threshold > 1. then
    invalid_arg "Diagnostics.effective_rank: threshold in (0, 1]";
  let pca = Pca.fit sample in
  let ev = pca.Pca.explained_variance in
  let total = Vec.sum ev in
  if total <= 0. then 0
  else begin
    let acc = ref 0. and k = ref 0 in
    (try
       Array.iter
         (fun v ->
           acc := !acc +. v;
           incr k;
           if !acc >= threshold *. total then raise Exit)
         ev
     with Exit -> ());
    !k
  end

let matrix_of_stream stream ~rows =
  let n = min rows (Array.length stream) in
  let dim = Vec.dim stream.(0) in
  Mat.init n dim (fun i j -> stream.(i).(j))

let report ?(seed = 42) ?(sample = 2_000) ppf =
  let rows = ref [] in
  let add name dim stream =
    let m = matrix_of_stream stream ~rows:sample in
    rows :=
      [
        name;
        string_of_int dim;
        string_of_int (effective_rank ~threshold:0.95 m);
        string_of_int (effective_rank ~threshold:0.99 m);
      ]
      :: !rows
  in
  List.iter
    (fun dim ->
      let nq = Noisy_query.make ~seed ~dim ~rounds:sample () in
      let w = Noisy_query.workload nq in
      add
        (Printf.sprintf "app 1: aggregated compensations (n = %d)" dim)
        dim
        (Array.init sample (fun t -> fst (w t))))
    [ 20; 100 ];
  let rental = Rental.make ~rows:(max sample 4_000) ~seed:7 () in
  add "app 2: encoded listings (n = 55)" 55
    (Array.init sample (fun i -> Mat.row rental.Rental.features i));
  let imp =
    Impression.make ~train_rounds:30_000 ~seed:3 ~dim:128 ~rounds:sample ()
  in
  add "app 3: hashed impressions (n = 128, sparse)" 128
    imp.Impression.sparse_stream;
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Feature-stream effective rank over %d rounds (components for 95%% / \
          99%% of variance) — the driver of exploration cost"
         sample)
    ~header:[ "stream"; "n"; "rank @95%"; "rank @99%" ]
    (List.rev !rows)
