module Broker = Dm_market.Broker
module Mechanism = Dm_market.Mechanism
module Impression = Dm_apps.Impression

let fig5c ?(scale = 1.) ?(seed = 3) ?(full = false) ppf =
  let horizon base = max 2_000 (int_of_float (scale *. float_of_int base)) in
  let settings =
    [ (128, horizon 100_000); (1024, horizon (if full then 100_000 else 20_000)) ]
  in
  List.iter
    (fun (dim, rounds) ->
      let train_rounds = min 200_000 (max 30_000 (2 * rounds)) in
      let setup = Impression.make ~train_rounds ~seed ~dim ~rounds () in
      Format.fprintf ppf
        "App 3 setup: n = %d, T = %d, FTRL non-zeros %d (paper: 21 at n=128, \
         23 at n=1024), train log-loss %.3f@.@."
        dim rounds setup.Impression.theta_nonzeros
        setup.Impression.train_log_loss;
      let cps = App1.checkpoints ~rounds ~count:8 in
      let runs =
        [
          ( "sparse",
            Impression.run ~checkpoints:cps setup Impression.Sparse
              Mechanism.pure );
          ( "dense",
            Impression.run ~checkpoints:cps setup Impression.Dense
              Mechanism.pure );
        ]
      in
      let header = "t" :: List.map fst runs in
      let rows =
        Array.to_list
          (Array.mapi
             (fun i t ->
               string_of_int t
               :: List.map
                    (fun (_, r) ->
                      Table.fmt_pct r.Broker.series.Broker.regret_ratio.(i))
                    runs)
             cps)
      in
      Table.print ppf
        ~title:
          (Printf.sprintf
             "Fig. 5(c) (n = %d, T = %d): regret ratios, impression pricing \
              (logistic model, pure version)"
             dim rounds)
        ~header rows;
      List.iter
        (fun (name, r) ->
          Format.fprintf ppf "%-8s %s@." name
            (Table.sparkline r.Broker.series.Broker.regret_ratio))
        runs;
      Format.fprintf ppf "@.")
    settings;
  Format.fprintf ppf
    "Paper finals at t = 10⁵ — n=128: sparse 2.02%%, dense 0.41%%; n=1024: \
     sparse 8.04%%, dense 0.89%%.@.@."
