let print ppf ~title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let total = Array.fold_left ( + ) 0 widths + (2 * (cols - 1)) in
  let line = String.make (max total (String.length title)) '-' in
  Format.fprintf ppf "%s@.%s@." title line;
  let render row =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.fprintf ppf "  ";
        Format.fprintf ppf "%*s" widths.(i) cell)
      row;
    Format.fprintf ppf "@."
  in
  render header;
  Format.fprintf ppf "%s@." line;
  List.iter render rows;
  Format.fprintf ppf "@."

let fmt_pct x = Printf.sprintf "%.2f%%" (100. *. x)

let fmt_g x = Printf.sprintf "%.4g" x

let sparkline series =
  let blocks = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |] in
  let finite = Array.of_list (List.filter Float.is_finite (Array.to_list series)) in
  if Array.length finite = 0 then ""
  else begin
    let lo = Array.fold_left Float.min infinity finite in
    let hi = Array.fold_left Float.max neg_infinity finite in
    let span = if hi > lo then hi -. lo else 1. in
    let buf = Buffer.create (Array.length series * 3) in
    Array.iter
      (fun x ->
        if Float.is_finite x then begin
          let level =
            int_of_float (Float.round ((x -. lo) /. span *. 7.))
          in
          Buffer.add_string buf blocks.(max 0 (min 7 level))
        end
        else Buffer.add_char buf ' ')
      series;
    Buffer.contents buf
  end
