(** Dense real vectors backed by unboxed [float array]s.

    All functions are total unless documented otherwise; dimension
    mismatches raise [Invalid_argument].  Vectors are mutable arrays:
    functions suffixed [_inplace] mutate their first argument, all
    others allocate fresh results. *)

type t = float array

val create : int -> float -> t
(** [create n x] is the [n]-vector with every component equal to [x]. *)

val zeros : int -> t
(** [zeros n] is the [n]-dimensional zero vector. *)

val ones : int -> t
(** [ones n] is the [n]-dimensional all-ones vector. *)

val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of R^n
    (zero-indexed).  Raises [Invalid_argument] if [i] is out of
    range. *)

val init : int -> (int -> float) -> t
(** [init n f] is the vector [(f 0, ..., f (n-1))]. *)

val dim : t -> int
(** [dim v] is the number of components of [v]. *)

val copy : t -> t
(** [copy v] is a fresh vector equal to [v]. *)

val of_list : float list -> t

val to_list : t -> float list

val get : t -> int -> float

val set : t -> int -> float -> unit

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** [map2 f u v] is the componentwise image [(f u_i v_i)_i]. *)

val iteri : (int -> float -> unit) -> t -> unit

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val dot : t -> t -> float
(** [dot u v] is the Euclidean inner product [Σ_i u_i v_i]. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t
(** [scale a v] is [a · v]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y := a·x + y] in place. *)

val neg : t -> t

val sum : t -> float

val mean : t -> float
(** Arithmetic mean.  Raises [Invalid_argument] on the empty vector. *)

val norm2 : t -> float
(** Euclidean (L2) norm. *)

val norm1 : t -> float
(** L1 norm. *)

val norm_inf : t -> float
(** Maximum absolute component; [0.] on the empty vector. *)

val normalize : t -> t
(** [normalize v] is [v / ‖v‖₂].  Raises [Invalid_argument] on the
    zero vector (its direction is undefined). *)

val dist2 : t -> t -> float
(** Euclidean distance [‖u − v‖₂]. *)

val max_elt : t -> float
(** Largest component.  Raises [Invalid_argument] on the empty
    vector. *)

val min_elt : t -> float

val argmax : t -> int

val argmin : t -> int

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance [tol]
    (default [1e-9]).  Vectors of different dimension are never
    approximately equal. *)

val concat : t -> t -> t

val slice : t -> pos:int -> len:int -> t

val sorted : t -> t
(** A fresh copy sorted in increasing order. *)

val pp : Format.formatter -> t -> unit
(** Prints as [[v0; v1; ...]] with 6 significant digits. *)
