exception Singular of int

type t = {
  lu : Mat.t;  (* L below the diagonal (unit diag implicit), U on and above *)
  perm : int array;  (* row permutation *)
  sign : float;  (* determinant sign of the permutation *)
}

let factorize a =
  let n, c = Mat.dims a in
  if n <> c then invalid_arg "Lu.factorize: not square";
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining |entry| of
       column k to the diagonal. *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if abs_float (Mat.get lu i k) > abs_float (Mat.get lu !pivot_row k) then
        pivot_row := i
    done;
    if abs_float (Mat.get lu !pivot_row k) < 1e-300 then raise (Singular k);
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !pivot_row j);
        Mat.set lu !pivot_row j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      for j = k + 1 to n - 1 do
        Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
      done
    done
  done;
  { lu; perm; sign = !sign }

let solve { lu; perm; _ } b =
  let n = Mat.rows lu in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  (* Forward substitution on P·b with unit-lower L. *)
  let y = Array.init n (fun i -> b.(perm.(i))) in
  for i = 0 to n - 1 do
    for k = 0 to i - 1 do
      y.(i) <- y.(i) -. (Mat.get lu i k *. y.(k))
    done
  done;
  (* Back substitution with U. *)
  let x = y in
  for i = n - 1 downto 0 do
    for k = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (Mat.get lu i k *. x.(k))
    done;
    x.(i) <- x.(i) /. Mat.get lu i i
  done;
  x

let solve_matrix a b = solve (factorize a) b

let determinant a =
  match factorize a with
  | { lu; sign; _ } ->
      let n = Mat.rows lu in
      let acc = ref sign in
      for i = 0 to n - 1 do
        acc := !acc *. Mat.get lu i i
      done;
      !acc
  | exception Singular _ -> 0.

let inverse a =
  let n = Mat.rows a in
  let f = factorize a in
  let out = Mat.zeros n n in
  for j = 0 to n - 1 do
    let col = solve f (Vec.basis n j) in
    for i = 0 to n - 1 do
      Mat.set out i j col.(i)
    done
  done;
  out
