(** Cholesky factorization and positive-definite linear solves.

    A symmetric positive definite [A] factors as [A = L·Lᵀ] with [L]
    lower triangular.  This powers the ordinary-least-squares fit used
    to learn the Airbnb market-value weights (App 2) and the positive
    definiteness checks on ellipsoid shape matrices. *)

exception Not_positive_definite of int
(** Raised with the offending pivot index when a pivot is not strictly
    positive. *)

val factorize : Mat.t -> Mat.t
(** [factorize a] is the lower-triangular Cholesky factor [L] of the
    symmetric positive definite matrix [a] (only the lower triangle of
    [a] is read).  Raises [Not_positive_definite] otherwise and
    [Invalid_argument] if [a] is not square. *)

val solve_lower : Mat.t -> Vec.t -> Vec.t
(** [solve_lower l b] solves [L·y = b] by forward substitution for a
    lower-triangular [l] with non-zero diagonal. *)

val solve_upper_t : Mat.t -> Vec.t -> Vec.t
(** [solve_upper_t l y] solves [Lᵀ·x = y] by back substitution, reading
    [l] as its transpose. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] solves [A·x = b] for symmetric positive definite [A]
    via one factorization and two triangular solves. *)

val solve_regularized : ?ridge:float -> Mat.t -> Vec.t -> Vec.t
(** [solve_regularized ~ridge a b] solves [(A + ridge·I)·x = b],
    retrying with geometrically increasing ridge (up to a factor 10⁸)
    if [A + ridge·I] is numerically indefinite.  Default [ridge] is
    [1e-10].  This is the pragmatic normal-equations path used by the
    OLS fitter on (near-)collinear designs. *)

val is_positive_definite : Mat.t -> bool
(** Whether the symmetric matrix factorizes with strictly positive
    pivots. *)

val log_det : Mat.t -> float
(** [log_det a] is [log det A] for symmetric positive definite [A],
    computed stably as [2·Σ log L_ii].  The ellipsoid-volume
    bookkeeping in the regret experiments uses log-volumes to avoid
    under/overflow at n = 100. *)
