type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.

let scaled_identity n a =
  let m = zeros n n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- a
  done;
  m

let identity n = scaled_identity n 1.

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Mat.of_arrays: no rows";
  let cols = Array.length a.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows")
    a;
  init rows cols (fun i j -> a.(i).(j))

let to_arrays m =
  Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

let diag_of_vec v =
  let n = Array.length v in
  let m = zeros n n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- v.(i)
  done;
  m

let rows m = m.rows

let cols m = m.cols

let dims m = (m.rows, m.cols)

let get m i j = m.data.((i * m.cols) + j)

let set m i j x = m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }

let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> get m i j)

let diag m =
  let n = min m.rows m.cols in
  Array.init n (fun i -> get m i i)

let trace m =
  if m.rows <> m.cols then invalid_arg "Mat.trace: not square";
  let acc = ref 0. in
  for i = 0 to m.rows - 1 do
    acc := !acc +. get m i i
  done;
  !acc

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let elementwise name f a b =
  check_same name a b;
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = elementwise "add" ( +. ) a b

let sub a b = elementwise "sub" ( -. ) a b

let scale a m = { m with data = Array.map (fun x -> a *. x) m.data }

let scale_inplace a m =
  let data = m.data in
  for k = 0 to Array.length data - 1 do
    Array.unsafe_set data k (a *. Array.unsafe_get data k)
  done

(* The kernels below use unsafe accesses: dimensions are validated up
   front and every index is a product/sum of loop bounds derived from
   them.  They are the pricing hot path (Sec. III-C1's O(n²) budget)
   and run 10⁵ times per experiment at n up to 1024. *)

let matvec m x =
  if Array.length x <> m.cols then
    invalid_arg "Mat.matvec: dimension mismatch";
  let data = m.data in
  let y = Array.make m.rows 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0. in
    for j = 0 to m.cols - 1 do
      acc :=
        !acc +. (Array.unsafe_get data (base + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set y i !acc
  done;
  y

let matvec_t m x =
  if Array.length x <> m.rows then
    invalid_arg "Mat.matvec_t: dimension mismatch";
  let y = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let xi = x.(i) in
    if xi <> 0. then
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (m.data.(base + j) *. xi)
      done
  done;
  y

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: dimension mismatch";
  let c = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    let abase = i * a.cols in
    let cbase = i * b.cols in
    for k = 0 to a.cols - 1 do
      let aik = a.data.(abase + k) in
      if aik <> 0. then begin
        let bbase = k * b.cols in
        for j = 0 to b.cols - 1 do
          c.data.(cbase + j) <- c.data.(cbase + j) +. (aik *. b.data.(bbase + j))
        done
      end
    done
  done;
  c

let outer u v =
  init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))

let rank_one_update m beta b =
  if m.rows <> m.cols || Array.length b <> m.rows then
    invalid_arg "Mat.rank_one_update: dimension mismatch";
  let n = m.rows in
  let data = m.data in
  for i = 0 to n - 1 do
    let bi = beta *. Array.unsafe_get b i in
    if bi <> 0. then begin
      let base = i * n in
      for j = 0 to n - 1 do
        Array.unsafe_set data (base + j)
          (Array.unsafe_get data (base + j) +. (bi *. Array.unsafe_get b j))
      done
    end
  done

let quad m x =
  if m.rows <> m.cols || Array.length x <> m.rows then
    invalid_arg "Mat.quad: dimension mismatch";
  let n = m.rows in
  let data = m.data in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let xi = Array.unsafe_get x i in
    if xi <> 0. then begin
      let base = i * n in
      let rowacc = ref 0. in
      for j = 0 to n - 1 do
        rowacc :=
          !rowacc +. (Array.unsafe_get data (base + j) *. Array.unsafe_get x j)
      done;
      acc := !acc +. (xi *. !rowacc)
    end
  done;
  !acc

let symmetrize_inplace m =
  if m.rows <> m.cols then invalid_arg "Mat.symmetrize_inplace: not square";
  let n = m.rows in
  let data = m.data in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ij = (i * n) + j and ji = (j * n) + i in
      let avg =
        0.5 *. (Array.unsafe_get data ij +. Array.unsafe_get data ji)
      in
      Array.unsafe_set data ij avg;
      Array.unsafe_set data ji avg
    done
  done

let is_symmetric ?(tol = 1e-9) m =
  m.rows = m.cols
  &&
  let n = m.rows in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if abs_float (m.data.((i * n) + j) -. m.data.((j * n) + i)) > tol then
        ok := false
    done
  done;
  !ok

let max_abs m =
  Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0. m.data

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for k = 0 to Array.length a.data - 1 do
    if abs_float (a.data.(k) -. b.data.(k)) > tol then ok := false
  done;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "|@[<hov>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf "@ ";
      Format.fprintf ppf "%10.4g" (get m i j)
    done;
    Format.fprintf ppf "@]|"
  done;
  Format.fprintf ppf "@]"
