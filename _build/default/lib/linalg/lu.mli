(** LU decomposition with partial pivoting, for general (not
    necessarily definite) square systems.

    Cholesky covers the symmetric positive definite matrices the
    pricing hot path produces; LU covers everything else — explicit
    inverses for cross-checking the ellipsoidal norm computations in
    the test-suite, determinants of general matrices, and solving the
    occasional non-symmetric system in analysis code. *)

exception Singular of int
(** Raised with the offending column when no non-zero pivot exists. *)

type t
(** A factorization [P·A = L·U] (pivots stored implicitly). *)

val factorize : Mat.t -> t
(** Raises [Invalid_argument] on non-square input and {!Singular} on
    (numerically) singular input. *)

val solve : t -> Vec.t -> Vec.t
(** Solve [A·x = b] using the factorization. *)

val solve_matrix : Mat.t -> Vec.t -> Vec.t
(** One-shot [factorize] + [solve]. *)

val determinant : Mat.t -> float
(** Via the pivoted factorization ([0.] for singular input). *)

val inverse : Mat.t -> Mat.t
(** Column-by-column solve against the identity.  O(n³); intended for
    tests and analysis, never the pricing loop. *)
