(** Symmetric eigendecomposition by the cyclic Jacobi method.

    Jacobi is O(n³) per sweep but unconditionally stable and dependency
    free, which fits this repository: eigenvalues are only needed off
    the pricing hot path — for the ellipsoid volume formula
    [V = Vₙ·√(Π γᵢ(A))] (Eq. 3 of the paper), the smallest-eigenvalue
    tracking of Lemmas 4–5, PCA, and tests. *)

type decomposition = {
  eigenvalues : Vec.t;  (** sorted in decreasing order *)
  eigenvectors : Mat.t;
      (** orthogonal; column [i] pairs with [eigenvalues.(i)] *)
}

val decompose : ?tol:float -> ?max_sweeps:int -> Mat.t -> decomposition
(** [decompose a] diagonalizes the symmetric matrix [a] so that
    [a = V·diag(λ)·Vᵀ].  Iterates Jacobi sweeps until the largest
    off-diagonal magnitude falls below [tol] (default [1e-12] scaled by
    the largest diagonal magnitude) or [max_sweeps] (default 100)
    sweeps have run.  Raises [Invalid_argument] if [a] is not square or
    not symmetric to a loose tolerance. *)

val eigenvalues : ?tol:float -> Mat.t -> Vec.t
(** Just the sorted eigenvalues. *)

val smallest_eigenvalue : Mat.t -> float

val largest_eigenvalue : Mat.t -> float

val condition_number : Mat.t -> float
(** [λ_max / λ_min] for positive definite input; [infinity] when the
    smallest eigenvalue is not strictly positive. *)

val log_volume_factor : Mat.t -> float
(** [log √(Π γᵢ(A))] = [½·Σ log γᵢ(A)] — the shape-dependent part of
    the ellipsoid volume in log space (the unit-ball constant [Vₙ]
    cancels in every ratio the experiments report).  Requires positive
    definite input. *)
