exception Not_positive_definite of int

let factorize a =
  let n, c = Mat.dims a in
  if n <> c then invalid_arg "Chol.factorize: not square";
  let l = Mat.zeros n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get l i k *. Mat.get l j k)
      done;
      if i = j then begin
        if !acc <= 0. then raise (Not_positive_definite i);
        Mat.set l i i (sqrt !acc)
      end
      else Mat.set l i j (!acc /. Mat.get l j j)
    done
  done;
  l

let solve_lower l b =
  let n = Mat.rows l in
  if Array.length b <> n then invalid_arg "Chol.solve_lower: dimension mismatch";
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (Mat.get l i k *. y.(k))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  y

let solve_upper_t l y =
  let n = Mat.rows l in
  if Array.length y <> n then
    invalid_arg "Chol.solve_upper_t: dimension mismatch";
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (Mat.get l k i *. x.(k))
    done;
    x.(i) <- !acc /. Mat.get l i i
  done;
  x

let solve a b =
  let l = factorize a in
  solve_upper_t l (solve_lower l b)

let solve_regularized ?(ridge = 1e-10) a b =
  let n = Mat.rows a in
  let rec attempt r tries =
    let reg = Mat.copy a in
    for i = 0 to n - 1 do
      Mat.set reg i i (Mat.get reg i i +. r)
    done;
    match solve reg b with
    | x -> x
    | exception Not_positive_definite _ when tries > 0 ->
        attempt (r *. 100.) (tries - 1)
  in
  attempt ridge 4

let is_positive_definite a =
  match factorize a with
  | _ -> true
  | exception Not_positive_definite _ -> false
  | exception Invalid_argument _ -> false

let log_det a =
  let l = factorize a in
  let n = Mat.rows l in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.get l i i)
  done;
  2. *. !acc
