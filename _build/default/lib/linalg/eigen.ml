type decomposition = { eigenvalues : Vec.t; eigenvectors : Mat.t }

(* One cyclic Jacobi sweep: annihilate each off-diagonal (p,q) in turn
   with a Givens rotation, accumulating the rotations into [v]. *)
let sweep a v n =
  for p = 0 to n - 2 do
    for q = p + 1 to n - 1 do
      let apq = Mat.get a p q in
      if apq <> 0. then begin
        let app = Mat.get a p p and aqq = Mat.get a q q in
        let theta = (aqq -. app) /. (2. *. apq) in
        (* t = sign(theta)/(|theta| + sqrt(theta²+1)) is the smaller
           root, which keeps rotations small and the method stable. *)
        let t =
          let s = if theta >= 0. then 1. else -1. in
          s /. ((s *. theta) +. sqrt ((theta *. theta) +. 1.))
        in
        let c = 1. /. sqrt ((t *. t) +. 1.) in
        let s = t *. c in
        for k = 0 to n - 1 do
          let akp = Mat.get a k p and akq = Mat.get a k q in
          Mat.set a k p ((c *. akp) -. (s *. akq));
          Mat.set a k q ((s *. akp) +. (c *. akq))
        done;
        for k = 0 to n - 1 do
          let apk = Mat.get a p k and aqk = Mat.get a q k in
          Mat.set a p k ((c *. apk) -. (s *. aqk));
          Mat.set a q k ((s *. apk) +. (c *. aqk))
        done;
        for k = 0 to n - 1 do
          let vkp = Mat.get v k p and vkq = Mat.get v k q in
          Mat.set v k p ((c *. vkp) -. (s *. vkq));
          Mat.set v k q ((s *. vkp) +. (c *. vkq))
        done
      end
    done
  done

let off_diag_max a n =
  let m = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      m := Float.max !m (abs_float (Mat.get a i j))
    done
  done;
  !m

let decompose ?(tol = 1e-12) ?(max_sweeps = 100) a0 =
  let n, c = Mat.dims a0 in
  if n <> c then invalid_arg "Eigen.decompose: not square";
  if not (Mat.is_symmetric ~tol:(1e-6 *. (1. +. Mat.max_abs a0)) a0) then
    invalid_arg "Eigen.decompose: not symmetric";
  let a = Mat.copy a0 in
  let v = Mat.identity n in
  let scale = Float.max 1. (Mat.max_abs a0) in
  let threshold = tol *. scale in
  let rec loop s =
    if s < max_sweeps && off_diag_max a n > threshold then begin
      sweep a v n;
      loop (s + 1)
    end
  in
  loop 0;
  (* Sort eigenpairs by decreasing eigenvalue. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare (Mat.get a j j) (Mat.get a i i)) order;
  let eigenvalues = Array.map (fun i -> Mat.get a i i) order in
  let eigenvectors = Mat.init n n (fun i j -> Mat.get v i order.(j)) in
  { eigenvalues; eigenvectors }

let eigenvalues ?tol a = (decompose ?tol a).eigenvalues

let smallest_eigenvalue a =
  let ev = eigenvalues a in
  ev.(Array.length ev - 1)

let largest_eigenvalue a = (eigenvalues a).(0)

let condition_number a =
  let ev = eigenvalues a in
  let lmin = ev.(Array.length ev - 1) in
  if lmin <= 0. then infinity else ev.(0) /. lmin

let log_volume_factor a =
  let ev = eigenvalues a in
  let acc = ref 0. in
  Array.iter
    (fun l ->
      if l <= 0. then
        invalid_arg "Eigen.log_volume_factor: not positive definite";
      acc := !acc +. log l)
    ev;
  0.5 *. !acc
