module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Hashing = Dm_ml.Hashing

type impression = { fields : (string * string) list; clicked : bool }

let field_names =
  [|
    "banner_pos"; "site_id"; "site_category"; "app_id"; "app_category";
    "device_model"; "device_type"; "device_conn_type"; "hour_band";
  |]

(* Ground-truth log-odds contributions.  Only a handful of raw values
   carry signal, so the fitted model is sparse. *)
let latent_weight field value =
  match (field, value) with
  | "banner_pos", "1" -> 0.5
  | "banner_pos", "3" -> 0.9
  | "site_category", "cat_02" -> 0.45
  | "site_category", "cat_04" -> -0.55
  | "app_category", "cat_01" -> 0.4
  | "app_category", "cat_05" -> -0.35
  | "device_type", "1" -> 0.3
  | "device_type", "4" -> -0.6
  | "device_conn_type", "2" -> -0.5
  | "hour_band", "evening" -> 0.25
  | "hour_band", "night" -> -0.3
  | "site_id", "site_0001" -> 0.35
  | "app_id", "app_0002" -> -0.4
  | _ -> 0.

let base_log_odds = -1.7 (* σ(−1.7) ≈ 0.154, near the real ≈17% CTR *)

let sigmoid z = 1. /. (1. +. exp (-.z))

let log_odds fields =
  List.fold_left
    (fun acc (f, v) -> acc +. latent_weight f v)
    base_log_odds fields

let true_ctr imp = sigmoid (log_odds imp.fields)

(* Field vocabularies.  Ad streams are dominated by a small head of
   sites/apps/models (the paper's Avazu slice behaves the same after
   hashing); the aggregated ids keep the stream's effective rank at
   the level a 10⁵-round pricing horizon can actually learn. *)
let hour_bands =
  [| "night"; "morning"; "noon"; "afternoon"; "evening"; "late" |]

let draw_fields rng =
  let pad4 i = Printf.sprintf "%04d" i in
  [
    ("banner_pos", string_of_int (Dist.zipf rng ~n:4 ~s:1.2));
    ("site_id", "site_" ^ pad4 (1 + Dist.zipf rng ~n:12 ~s:1.3));
    ("site_category", Printf.sprintf "cat_%02d" (Dist.zipf rng ~n:6 ~s:1.2));
    ("app_id", "app_" ^ pad4 (1 + Dist.zipf rng ~n:10 ~s:1.3));
    ("app_category", Printf.sprintf "cat_%02d" (Dist.zipf rng ~n:6 ~s:1.2));
    ("device_model", "model_" ^ pad4 (Dist.zipf rng ~n:15 ~s:1.2));
    ( "device_type",
      string_of_int
        (Dist.categorical rng ~weights:[| 0.55; 0.25; 0.1; 0.06; 0.04 |]) );
    ("device_conn_type", string_of_int (Dist.zipf rng ~n:4 ~s:0.8));
    ("hour_band", hour_bands.(Dist.zipf rng ~n:6 ~s:0.4));
  ]

let generate rng ~rounds =
  if rounds < 1 then invalid_arg "Avazu.generate: need at least one round";
  Array.init rounds (fun _ ->
      let fields = draw_fields rng in
      let p = sigmoid (log_odds fields) in
      { fields; clicked = Dist.bernoulli rng ~p })

(* A constant bias feature lets FTRL park the base click rate in one
   bucket instead of smearing it over every frequent field value —
   without it the fitted model can never be sparse. *)
let encode ~dim imp = Hashing.encode ~dim (("bias", "1") :: imp.fields)
