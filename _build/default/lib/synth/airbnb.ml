module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Categorical = Dm_ml.Categorical

type record = {
  city : string;
  property_type : string;
  room_type : string;
  bed_type : string;
  cancellation_policy : string;
  accommodates : int;
  bathrooms : float;
  bedrooms : int;
  beds : int;
  review_score : float;
  number_of_reviews : int;
  host_response_rate : float;
  cleaning_fee : bool;
  instant_bookable : bool;
  lat_offset : float;
  lng_offset : float;
  amenities : bool array;
  log_price : float;
}

let cities = [| "NYC"; "LA"; "SF"; "DC"; "Chicago"; "Boston" |]

let property_types =
  [| "Apartment"; "House"; "Condominium"; "Townhouse"; "Loft"; "Other" |]

let room_types = [| "Entire home/apt"; "Private room"; "Shared room" |]

let bed_types = [| "Real Bed"; "Futon"; "Pull-out Sofa"; "Airbed"; "Couch" |]

let cancellation_policies =
  [| "flexible"; "moderate"; "strict"; "super_strict_30"; "super_strict_60" |]

let amenity_names =
  [|
    "TV"; "Internet"; "Wireless Internet"; "Air conditioning"; "Kitchen";
    "Heating"; "Family/kid friendly"; "Essentials"; "Hair dryer"; "Iron";
    "Smoke detector"; "Shampoo"; "Hangers"; "Fire extinguisher";
    "Laptop friendly workspace"; "First aid kit"; "Carbon monoxide detector";
    "Dryer"; "Washer"; "Free parking on premises"; "Gym"; "Pool"; "Elevator";
    "Hot tub";
  |]

let feature_dim = 55

(* Ground-truth hedonic effects on log price. *)

let city_premium = function
  | "SF" -> 0.45
  | "NYC" -> 0.40
  | "Boston" -> 0.20
  | "DC" -> 0.15
  | "LA" -> 0.12
  | _ -> 0. (* Chicago baseline *)

let room_premium = function
  | "Entire home/apt" -> 0.55
  | "Private room" -> 0.05
  | _ -> -0.25 (* shared *)

let property_premium = function
  | "Loft" -> 0.15
  | "House" -> 0.12
  | "Condominium" -> 0.10
  | "Townhouse" -> 0.08
  | "Apartment" -> 0.05
  | _ -> 0.

let clamp lo hi x = Float.min hi (Float.max lo x)

let draw_record rng =
  (* A latent quality tier drives amenities, reviews and upkeep
     jointly.  Real listing corpora concentrate near a low-dimensional
     manifold (premium listings have pools AND high reviews AND fast
     hosts); independent per-field draws would make every feature
     direction novel and blow the effective rank far past the real
     data's. *)
  let tier = Rng.float rng in
  (* One shared per-listing jitter perturbs every tier-driven field,
     so the quality block varies along a two-parameter family rather
     than 30 independent noise dimensions — matching the strong
     collinearity of real listing features. *)
  let jitter = Rng.uniform rng (-1.) 1. in
  let city = cities.(Dist.zipf rng ~n:(Array.length cities) ~s:0.6) in
  let property_type =
    property_types.(Dist.zipf rng ~n:(Array.length property_types) ~s:0.8)
  in
  let room_type =
    room_types.(Dist.categorical rng ~weights:[| 0.58; 0.36; 0.06 |])
  in
  let bed_type =
    bed_types.(Dist.categorical rng ~weights:[| 0.92; 0.03; 0.02; 0.02; 0.01 |])
  in
  let cancellation_policy =
    cancellation_policies.(Dist.categorical rng
                             ~weights:[| 0.35; 0.30; 0.30; 0.03; 0.02 |])
  in
  let accommodates = 1 + Dist.zipf rng ~n:16 ~s:0.9 in
  let bedrooms = min 10 (Dist.zipf rng ~n:8 ~s:1.2) in
  let beds = max 1 (min 16 (bedrooms + Dist.zipf rng ~n:4 ~s:1.)) in
  (* Bathrooms track bedrooms affinely, as they overwhelmingly do in
     real listings (a strong collinearity of the Kaggle corpus). *)
  let bathrooms = 0.5 +. (0.5 *. float_of_int bedrooms) in
  (* Quality is quantized to the coarse bands a listing page actually
     exposes (star buckets, response-time bands). *)
  let quality =
    let q = clamp 0. 1. (tier +. (0.15 *. jitter)) in
    Float.round (q *. 3.) /. 3.
  in
  let review_score = clamp 20. 100. (86. +. (10. *. quality)) in
  let number_of_reviews =
    (* Bucketed review counts: 0, 2, 5, 12, 30, 75, 180, 450. *)
    let buckets = [| 0; 2; 5; 12; 30; 75; 180; 450 |] in
    buckets.(min 7 (Dist.zipf rng ~n:8 ~s:0.8))
  in
  let host_response_rate = clamp 0. 1. (0.8 +. (0.2 *. quality)) in
  let cleaning_fee = quality > 0.45 in
  let instant_bookable = Dist.bernoulli rng ~p:0.25 in
  (* City-block location grid rather than a continuum. *)
  let grid rng = (float_of_int (Rng.int rng 5) /. 2.) -. 1. in
  let lat_offset = grid rng in
  let lng_offset = grid rng in
  let amenities =
    Array.init (Array.length amenity_names) (fun i ->
        (* The first dozen amenities (TV, internet, heating, …) are
           effectively universal and the last few (pool, elevator, hot
           tub) effectively absent; the middle band is a staircase in
           the quality latent — the bundles real hosts offer. *)
        if i < 12 then true
        else if i >= 20 then false
        else quality >= 0.12 *. float_of_int (i - 11))
  in
  let amenity_count =
    Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 amenities
  in
  (* Hedonic ground truth: size, quality, location and amenity effects
     plus Gaussian noise comparable to the paper's residual (their OLS
     test MSE is 0.226, i.e. residual std ≈ 0.48). *)
  let log_price =
    3.55 +. city_premium city +. room_premium room_type
    +. property_premium property_type
    +. (0.45 *. tier)
    +. (0.085 *. float_of_int accommodates)
    +. (0.12 *. float_of_int bedrooms)
    +. (0.08 *. bathrooms)
    +. (0.015 *. float_of_int amenity_count)
    +. (0.004 *. (review_score -. 92.))
    +. (0.03 *. log (1. +. float_of_int number_of_reviews))
    +. (if cleaning_fee then 0.05 else 0.)
    +. (if instant_bookable then -0.02 else 0.)
    -. (0.08 *. ((lat_offset *. lat_offset) +. (lng_offset *. lng_offset)))
    +. Dist.normal rng ~mean:0. ~std:0.42
  in
  {
    city;
    property_type;
    room_type;
    bed_type;
    cancellation_policy;
    accommodates;
    bathrooms;
    bedrooms;
    beds;
    review_score;
    number_of_reviews;
    host_response_rate;
    cleaning_fee;
    instant_bookable;
    lat_offset;
    lng_offset;
    amenities;
    log_price;
  }

let generate rng ~rows =
  if rows < 1 then invalid_arg "Airbnb.generate: need at least one row";
  Array.init rows (fun _ -> draw_record rng)

type encoder = {
  city_enc : Categorical.t;
  property_enc : Categorical.t;
  room_enc : Categorical.t;
  bed_enc : Categorical.t;
  cancel_enc : Categorical.t;
}

let fit_encoder records =
  let column f = Array.map (fun r -> Some (f r)) records in
  {
    city_enc = Categorical.fit (column (fun r -> r.city));
    property_enc = Categorical.fit (column (fun r -> r.property_type));
    room_enc = Categorical.fit (column (fun r -> r.room_type));
    bed_enc = Categorical.fit (column (fun r -> r.bed_type));
    cancel_enc = Categorical.fit (column (fun r -> r.cancellation_policy));
  }

(* A categorical code scaled into [0,1] (unseen/missing map to 0, like
   a most-frequent-category imputation). *)
let scaled_code enc value =
  let c = Categorical.code enc (Some value) in
  if c < 0 then 0.
  else float_of_int c /. float_of_int (max 1 (Categorical.cardinality enc - 1))

let encode e r =
  let x = Vec.zeros feature_dim in
  let city = scaled_code e.city_enc r.city in
  let property = scaled_code e.property_enc r.property_type in
  let room = scaled_code e.room_enc r.room_type in
  let bed = scaled_code e.bed_enc r.bed_type in
  let cancel = scaled_code e.cancel_enc r.cancellation_policy in
  let accommodates = float_of_int r.accommodates /. 16. in
  let bathrooms = r.bathrooms /. 8. in
  let bedrooms = float_of_int r.bedrooms /. 10. in
  let beds = float_of_int r.beds /. 16. in
  let review = r.review_score /. 100. in
  let reviews = log (1. +. float_of_int r.number_of_reviews) /. log 501. in
  let response = r.host_response_rate in
  let cleaning = if r.cleaning_fee then 1. else 0. in
  let instant = if r.instant_bookable then 1. else 0. in
  let amenity_count =
    Array.fold_left (fun acc a -> if a then acc +. 1. else acc) 0. r.amenities
    /. float_of_int (Array.length amenity_names)
  in
  (* 0: bias *)
  x.(0) <- 1.;
  (* 1–5: categorical codes *)
  x.(1) <- city;
  x.(2) <- property;
  x.(3) <- room;
  x.(4) <- bed;
  x.(5) <- cancel;
  (* 6–16: numerics *)
  x.(6) <- accommodates;
  x.(7) <- bathrooms;
  x.(8) <- bedrooms;
  x.(9) <- beds;
  x.(10) <- review;
  x.(11) <- reviews;
  x.(12) <- response;
  x.(13) <- cleaning;
  x.(14) <- instant;
  x.(15) <- r.lat_offset;
  x.(16) <- r.lng_offset;
  (* 17–40: amenity flags *)
  Array.iteri
    (fun i a -> if a then x.(17 + i) <- 1.)
    r.amenities;
  (* 41–54: interaction features "to enhance model capacity".  Chosen
     as the size/quality/location crosses a hedonic model would use;
     several are (deliberately) in the affine span of their factors,
     matching the heavy collinearity of the real encoded corpus. *)
  x.(41) <- accommodates *. bedrooms;
  x.(42) <- accommodates *. bathrooms;
  x.(43) <- bedrooms *. beds;
  x.(44) <- accommodates *. room;
  x.(45) <- review *. reviews;
  x.(46) <- review *. response;
  x.(47) <- city *. room;
  x.(48) <- amenity_count *. accommodates;
  x.(49) <- review *. cleaning;
  x.(50) <- amenity_count *. review;
  x.(51) <- cleaning *. accommodates;
  x.(52) <- response *. amenity_count;
  x.(53) <- r.lat_offset *. r.lng_offset;
  x.(54) <- amenity_count *. reviews;
  x

let design_matrix e records =
  let rows = Array.length records in
  let m = Mat.zeros rows feature_dim in
  Array.iteri
    (fun i r ->
      let x = encode e r in
      for j = 0 to feature_dim - 1 do
        Mat.set m i j x.(j)
      done)
    records;
  m

let targets records = Array.map (fun r -> r.log_price) records

let max_feature_norm e records =
  Array.fold_left
    (fun acc r -> Float.max acc (Vec.norm2 (encode e r)))
    0. records
