module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Comp = Dm_privacy.Compensation

type owner = {
  id : int;
  mean_rating : float;
  num_ratings : int;
  contract : Comp.t;
}

type corpus = { owners : owner array; rating_lo : float; rating_hi : float }

let clamp lo hi x = Float.min hi (Float.max lo x)

let generate ?(rating_lo = 0.5) ?(rating_hi = 5.0) rng ~owners =
  if owners < 1 then invalid_arg "Movielens.generate: need at least one owner";
  if rating_lo >= rating_hi then
    invalid_arg "Movielens.generate: empty rating scale";
  let mid = 0.5 *. (rating_lo +. rating_hi) in
  let make id =
    (* Per-user bias around a generous global mean, like real rating
       corpora (MovieLens ratings average ≈ 3.5). *)
    let mean_rating =
      clamp rating_lo rating_hi
        (mid +. 0.6 +. Dist.normal rng ~mean:0. ~std:0.7)
    in
    (* Heavy-tailed activity: most users rate little, a few rate a lot. *)
    let num_ratings = 5 + Dist.zipf rng ~n:2000 ~s:1.1 in
    (* Heterogeneous privacy attitudes: cap is the price of saturating
       an owner's privacy; steepness is how fast small leakages are
       charged.  Both follow the tanh contracts of Li et al.  The caps
       are log-normal — privacy valuations in the wild span orders of
       magnitude — which gives the sorted compensation profiles the
       skew that separates market values from reserve prices. *)
    let cap = abs_float (Dist.normal rng ~mean:1. ~std:0.3) +. 0.1 in
    let steepness = Rng.uniform rng 0.5 2.0 in
    let contract = Comp.tanh_contract ~cap ~steepness in
    { id; mean_rating; num_ratings; contract }
  in
  { owners = Array.init owners make; rating_lo; rating_hi }

let owner_count c = Array.length c.owners

let data_vector c = Array.map (fun o -> o.mean_rating) c.owners

let data_ranges c =
  Array.map (fun _ -> c.rating_hi -. c.rating_lo) c.owners

let contracts c = Array.map (fun o -> o.contract) c.owners
