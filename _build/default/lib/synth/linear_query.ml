module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Dp = Dm_privacy.Dp

type param_dist = Gaussian | Uniform | Mixed

let noise_variance_grid = Array.init 9 (fun i -> 10. ** float_of_int (i - 4))

let draw rng ~dist ~owners =
  if owners < 1 then invalid_arg "Linear_query.draw: need at least one owner";
  let gaussian () = Dist.normal_vec rng ~dim:owners in
  let uniform () = Dist.uniform_vec rng ~dim:owners ~lo:(-1.) ~hi:1. in
  let weights =
    match dist with
    | Gaussian -> gaussian ()
    | Uniform -> uniform ()
    | Mixed -> if Rng.bool rng then gaussian () else uniform ()
  in
  let variance =
    noise_variance_grid.(Rng.int rng (Array.length noise_variance_grid))
  in
  Dp.make_query ~weights ~noise_scale:(Dp.variance_to_scale variance)

let stream rng ~dist ~owners ~rounds =
  if rounds < 0 then invalid_arg "Linear_query.stream: negative rounds";
  Array.init rounds (fun _ -> draw rng ~dist ~owners)
