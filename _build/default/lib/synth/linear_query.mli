(** Workload generator for App 1's noisy linear queries.

    Section V-A: "the parameters of each linear query are randomly
    drawn from either a multivariate normal distribution with zero
    mean vector and identity covariance matrix or a uniform
    distribution within the interval [−1, 1], while the variance of
    Laplace noise added to the true answer is randomly selected from
    {10^k | k ∈ Z, |k| ≤ 4}". *)

type param_dist =
  | Gaussian  (** weights ~ N(0, I) *)
  | Uniform  (** weights ~ U[−1, 1]ⁿ *)
  | Mixed  (** each round picks Gaussian or Uniform with equal odds —
               the adaptivity check of the paper's setup *)

val noise_variance_grid : float array
(** [{10^k | −4 ≤ k ≤ 4}], ascending. *)

val draw : Dm_prob.Rng.t -> dist:param_dist -> owners:int -> Dm_privacy.Dp.query
(** One random query over [owners] data owners. *)

val stream :
  Dm_prob.Rng.t ->
  dist:param_dist ->
  owners:int ->
  rounds:int ->
  Dm_privacy.Dp.query array
(** [rounds] independent queries (materialized; the largest experiment
    holds 10⁵ of them comfortably). *)
