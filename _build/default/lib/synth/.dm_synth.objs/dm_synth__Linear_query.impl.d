lib/synth/linear_query.ml: Array Dm_privacy Dm_prob
