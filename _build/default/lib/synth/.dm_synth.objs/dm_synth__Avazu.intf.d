lib/synth/avazu.mli: Dm_ml Dm_prob
