lib/synth/airbnb.mli: Dm_linalg Dm_prob
