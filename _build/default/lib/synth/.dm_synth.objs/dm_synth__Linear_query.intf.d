lib/synth/linear_query.mli: Dm_privacy Dm_prob
