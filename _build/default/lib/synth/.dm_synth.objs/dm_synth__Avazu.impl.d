lib/synth/avazu.ml: Array Dm_ml Dm_prob List Printf
