lib/synth/movielens.ml: Array Dm_privacy Dm_prob Float
