lib/synth/airbnb.ml: Array Dm_linalg Dm_ml Dm_prob Float
