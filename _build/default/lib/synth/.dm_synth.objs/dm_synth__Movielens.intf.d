lib/synth/movielens.mli: Dm_linalg Dm_privacy Dm_prob
