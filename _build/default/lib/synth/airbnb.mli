(** Synthetic Airbnb-style listing corpus (App 2).

    The paper prices accommodation rentals over 74,111 Kaggle booking
    records from 6 U.S. cities under the log-linear model, encoding
    categorical columns with pandas categoricals, adding interaction
    features for a final dimension n = 55, and learning θ* by linear
    regression on the logarithmic lodging price (test MSE 0.226).

    This generator produces records with the same schema shape —
    city / property / room / bed / cancellation categoricals, numeric
    listing attributes, 24 amenity flags — whose log prices follow a
    ground-truth hedonic model with Gaussian noise, so that the same
    OLS pipeline yields a comparable fit (see DESIGN.md §3). *)

type record = {
  city : string;
  property_type : string;
  room_type : string;
  bed_type : string;
  cancellation_policy : string;
  accommodates : int;  (** 1–16 guests *)
  bathrooms : float;  (** 0.5–8.0 in half steps *)
  bedrooms : int;  (** 0–10 *)
  beds : int;  (** 1–16 *)
  review_score : float;  (** 20–100 *)
  number_of_reviews : int;
  host_response_rate : float;  (** 0–1 *)
  cleaning_fee : bool;
  instant_bookable : bool;
  lat_offset : float;  (** normalized distance from city center, −1–1 *)
  lng_offset : float;
  amenities : bool array;  (** flags for {!amenity_names} *)
  log_price : float;  (** natural log of the nightly price *)
}

val cities : string array
(** The paper's 6 cities. *)

val amenity_names : string array
(** 24 amenity flags. *)

val feature_dim : int
(** 55 — bias + 5 categorical codes + 11 numerics + 24 amenities + 14
    interactions, matching the paper's n. *)

val generate : Dm_prob.Rng.t -> rows:int -> record array
(** [rows] independent listings with ground-truth hedonic log prices
    (the paper's corpus has 74,111). *)

type encoder

val fit_encoder : record array -> encoder
(** Learn the categorical codings from a training corpus. *)

val encode : encoder -> record -> Dm_linalg.Vec.t
(** The 55-dimensional feature vector.  Component 0 is a constant 1
    (bias), categoricals are dense codes scaled to [0, 1], numerics
    are scaled to ≈[0, 1], and the trailing block holds the
    interaction features. *)

val design_matrix : encoder -> record array -> Dm_linalg.Mat.t

val targets : record array -> Dm_linalg.Vec.t
(** The log prices. *)

val max_feature_norm : encoder -> record array -> float
(** max ‖encode r‖₂ over the corpus — the S/U bound the pricing
    mechanism needs. *)
