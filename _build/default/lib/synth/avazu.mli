(** Synthetic Avazu-style mobile-ad click stream (App 3).

    The paper prices ad impressions under the logistic model over the
    Avazu CTR dataset (404M samples), one-hot encoding the categorical
    fields with the hashing trick and learning θ* with FTRL-Proximal.
    The pricing dynamics only depend on the fitted sparse logistic
    model and the hashed feature stream, which this generator
    reproduces at a tractable volume (DESIGN.md §3):

    - 9 categorical fields (banner position, site, site category, app,
      app category, device model, device type, connection type, hour)
      with Zipf-distributed value popularity;
    - a sparse ground-truth CTR model: a handful of field values carry
      strong positive or negative log-odds, everything else is noise —
      so FTRL recovers a θ* with few non-zeros, as the paper reports
      (21 at n = 128, 23 at n = 1024);
    - a global click-through base rate of ≈17%, like the real logs. *)

type impression = {
  fields : (string * string) list;  (** (field, value) pairs *)
  clicked : bool;
}

val field_names : string array

val generate : Dm_prob.Rng.t -> rounds:int -> impression array
(** [rounds] labelled impressions (the real dataset has 404M; the
    experiments here train on a few hundred thousand). *)

val encode : dim:int -> impression -> Dm_ml.Hashing.feature list
(** One-hot hashing of every field into [dim] buckets — the paper's
    "n serves as the modulus after hashing". *)

val true_ctr : impression -> float
(** The generator's ground-truth click probability for an impression —
    exposed for calibration tests only; the pricing experiments use
    the FTRL-fitted model exactly as the paper does. *)
