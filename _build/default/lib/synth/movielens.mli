(** Synthetic MovieLens-style rating corpus.

    App 1 of the paper prices noisy linear queries over the MovieLens
    20M ratings; the sealed build environment cannot ship that
    dataset, so this module generates a corpus with the properties the
    pricing pipeline actually consumes (see DESIGN.md §3):

    - each data owner has a rating profile on a shared 0.5–5.0 star
      scale, with per-user mean and variance heterogeneity (some users
      rate high, some low, some erratically);
    - each owner's scalar data value for linear queries is her mean
      rating, whose data range (sensitivity bound) is the width of the
      rating scale;
    - each owner signs a tanh compensation contract with a
      heterogeneous rate, mirroring the tanh-based compensation
      functions the paper adopts from Li et al. *)

type owner = {
  id : int;
  mean_rating : float;  (** within the rating scale *)
  num_ratings : int;
  contract : Dm_privacy.Compensation.t;
}

type corpus = {
  owners : owner array;
  rating_lo : float;
  rating_hi : float;
}

val generate : ?rating_lo:float -> ?rating_hi:float -> Dm_prob.Rng.t -> owners:int -> corpus
(** [generate rng ~owners] draws a corpus of [owners] data owners.
    Default rating scale is the MovieLens 0.5–5.0.  Requires
    [owners ≥ 1] and [rating_lo < rating_hi]. *)

val owner_count : corpus -> int

val data_vector : corpus -> Dm_linalg.Vec.t
(** Per-owner data values (mean ratings) — the [d] of a linear query
    [Σᵢ wᵢ·dᵢ]. *)

val data_ranges : corpus -> Dm_linalg.Vec.t
(** Per-owner sensitivity bounds [Δᵢ], all equal to the scale width. *)

val contracts : corpus -> Dm_privacy.Compensation.t array
