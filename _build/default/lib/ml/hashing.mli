(** One-hot encoding with the hashing trick.

    The paper's App 3 turns Avazu's high-cardinality categorical fields
    into an n-dimensional feature vector by hashing ["field=value"]
    strings modulo n (Section V-C) — n is literally "the modulus after
    hashing".  We use the 64-bit FNV-1a hash: deterministic across
    runs and platforms, so experiments replay exactly.

    Features are produced in sparse form (sorted unique indices with
    accumulated values) and can be densified on demand. *)

type feature = { index : int; value : float }

val fnv1a64 : string -> int64
(** The raw FNV-1a hash, exposed for tests. *)

val bucket : dim:int -> string -> int
(** [bucket ~dim key] is the hash bucket of [key] in [0, dim-1].
    Requires [dim ≥ 1]. *)

val encode : dim:int -> (string * string) list -> feature list
(** [encode ~dim fields] hashes each [(field, value)] pair as
    ["field=value"] and adds 1.0 into its bucket.  Collisions
    accumulate.  The result is sorted by index with unique indices. *)

val to_dense : dim:int -> feature list -> Dm_linalg.Vec.t

val normalize : feature list -> feature list
(** Scale a sparse vector to unit L2 norm; the empty vector is
    returned unchanged. *)

val dot_dense : feature list -> Dm_linalg.Vec.t -> float
(** Sparse·dense inner product — the hot path of FTRL prediction. *)
