module Vec = Dm_linalg.Vec

let check name preds targets =
  let n = Vec.dim preds in
  if n = 0 then invalid_arg ("Metrics." ^ name ^ ": empty input");
  if n <> Vec.dim targets then
    invalid_arg ("Metrics." ^ name ^ ": length mismatch");
  n

let mse preds targets =
  let n = check "mse" preds targets in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let e = preds.(i) -. targets.(i) in
    acc := !acc +. (e *. e)
  done;
  !acc /. float_of_int n

let mae preds targets =
  let n = check "mae" preds targets in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. abs_float (preds.(i) -. targets.(i))
  done;
  !acc /. float_of_int n

let rmse preds targets = sqrt (mse preds targets)

let check_labels name probs labels =
  let n = Vec.dim probs in
  if n = 0 then invalid_arg ("Metrics." ^ name ^ ": empty input");
  if n <> Array.length labels then
    invalid_arg ("Metrics." ^ name ^ ": length mismatch");
  n

let log_loss ~probs ~labels =
  let n = check_labels "log_loss" probs labels in
  let eps = 1e-12 in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let p = Float.min (1. -. eps) (Float.max eps probs.(i)) in
    acc := !acc -. if labels.(i) then log p else log (1. -. p)
  done;
  !acc /. float_of_int n

let accuracy ?(threshold = 0.5) ~probs ~labels () =
  let n = check_labels "accuracy" probs labels in
  let hits = ref 0 in
  for i = 0 to n - 1 do
    if probs.(i) >= threshold = labels.(i) then incr hits
  done;
  float_of_int !hits /. float_of_int n
