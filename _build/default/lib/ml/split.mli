(** Deterministic train/test splitting.

    App 2 holds out 20% of the Airbnb records to measure the
    regression fit (MSE 0.226 in the paper); App 3 tests on the last
    two days of click logs.  Both patterns are covered: a shuffled
    fractional split and a suffix (most-recent) split. *)

type 'a split = { train : 'a array; test : 'a array }

val random : Dm_prob.Rng.t -> test_fraction:float -> 'a array -> 'a split
(** Shuffle (seeded) then cut; [test_fraction] ∈ [0, 1].  Both parts
    together are a permutation of the input. *)

val suffix : test_fraction:float -> 'a array -> 'a split
(** Keep order; the final fraction becomes the test set (the "last two
    days" pattern). *)
