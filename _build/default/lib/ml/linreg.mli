(** Ordinary least squares, optionally ridge-regularized.

    App 2 learns the Airbnb market-value weights θ* by regressing the
    logarithmic lodging price on the 55 encoded features and reports a
    test-set MSE of 0.226; this module reproduces that fit.  The
    normal equations [XᵀX·θ = Xᵀy] are solved by Cholesky with an
    escalating ridge when the design is collinear. *)

type model = { weights : Dm_linalg.Vec.t; intercept : float }

val fit :
  ?ridge:float ->
  ?intercept:bool ->
  Dm_linalg.Mat.t ->
  Dm_linalg.Vec.t ->
  model
(** [fit x y] regresses the rows of [x] on targets [y].  [ridge]
    (default 1e-8) is added to the normal-equation diagonal (never to
    the intercept).  With [intercept] (default true) a constant column
    is handled internally.  Raises [Invalid_argument] when the number
    of rows of [x] differs from [dim y] or there are no rows. *)

val predict : model -> Dm_linalg.Vec.t -> float

val predict_all : model -> Dm_linalg.Mat.t -> Dm_linalg.Vec.t

val mse : model -> Dm_linalg.Mat.t -> Dm_linalg.Vec.t -> float
(** Mean squared prediction error on a labelled set. *)

val r2 : model -> Dm_linalg.Mat.t -> Dm_linalg.Vec.t -> float
(** Coefficient of determination; 1 is a perfect fit, 0 matches the
    mean predictor. *)
