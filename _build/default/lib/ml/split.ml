type 'a split = { train : 'a array; test : 'a array }

let check_fraction f =
  if f < 0. || f > 1. then invalid_arg "Split: test_fraction outside [0,1]"

let cut data n_test =
  let n = Array.length data in
  let n_train = n - n_test in
  { train = Array.sub data 0 n_train; test = Array.sub data n_train n_test }

let random rng ~test_fraction data =
  check_fraction test_fraction;
  let shuffled = Array.copy data in
  Dm_prob.Rng.shuffle rng shuffled;
  let n_test =
    int_of_float (Float.round (test_fraction *. float_of_int (Array.length data)))
  in
  cut shuffled n_test

let suffix ~test_fraction data =
  check_fraction test_fraction;
  let n_test =
    int_of_float (Float.round (test_fraction *. float_of_int (Array.length data)))
  in
  cut data n_test
