module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat

type params = { learning_rate : float; l2 : float; iterations : int }

let default_params = { learning_rate = 0.5; l2 = 1e-4; iterations = 200 }

type model = { weights : Vec.t; bias : float }

let sigmoid z =
  if z >= 0. then 1. /. (1. +. exp (-.z))
  else
    let e = exp z in
    e /. (1. +. e)

let fit ?(params = default_params) x labels =
  let rows, cols = Mat.dims x in
  if rows = 0 then invalid_arg "Logreg.fit: no rows";
  if rows <> Array.length labels then invalid_arg "Logreg.fit: shape mismatch";
  if params.learning_rate <= 0. then
    invalid_arg "Logreg.fit: learning rate must be > 0";
  if params.l2 < 0. then invalid_arg "Logreg.fit: negative l2";
  if params.iterations < 1 then invalid_arg "Logreg.fit: need iterations";
  let w = Vec.zeros cols in
  let b = ref 0. in
  let grad_w = Vec.zeros cols in
  let inv_rows = 1. /. float_of_int rows in
  for _ = 1 to params.iterations do
    Array.fill grad_w 0 cols 0.;
    let grad_b = ref 0. in
    for i = 0 to rows - 1 do
      let xi = Mat.row x i in
      let err = sigmoid (Vec.dot w xi +. !b) -. (if labels.(i) then 1. else 0.) in
      Vec.axpy (err *. inv_rows) xi grad_w;
      grad_b := !grad_b +. (err *. inv_rows)
    done;
    (* L2 on the weights only. *)
    Vec.axpy params.l2 w grad_w;
    Vec.axpy (-.params.learning_rate) grad_w w;
    b := !b -. (params.learning_rate *. !grad_b)
  done;
  { weights = w; bias = !b }

let predict m x = sigmoid (Vec.dot m.weights x +. m.bias)

let log_loss m x labels =
  let rows = Mat.rows x in
  if rows = 0 || rows <> Array.length labels then
    invalid_arg "Logreg.log_loss: shape mismatch";
  let eps = 1e-12 in
  let acc = ref 0. in
  for i = 0 to rows - 1 do
    let p = Float.min (1. -. eps) (Float.max eps (predict m (Mat.row x i))) in
    acc := !acc -. if labels.(i) then log p else log (1. -. p)
  done;
  !acc /. float_of_int rows

let nonzeros ?(tol = 1e-9) m =
  Array.fold_left (fun acc w -> if abs_float w > tol then acc + 1 else acc) 0
    m.weights
