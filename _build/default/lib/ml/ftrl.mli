(** FTRL-Proximal logistic regression (McMahan et al., KDD 2013).

    This is the algorithm the paper names for learning the Avazu
    click-through weights θ* (Section V-C): online logistic regression
    with per-coordinate learning rates and L1/L2 regularization, which
    "can preserve excellent performance and sparsity".  The learnt
    weight vector is sparse (the paper reports 21–23 non-zeros at
    n = 128/1024), and the pricing experiments rely on exactly that
    sparsity structure.

    Training examples are sparse feature lists ({!Hashing.feature})
    with boolean click labels.  The model keeps the standard FTRL
    state: per-coordinate [z] (gradient sums shifted by the proximal
    term) and [n] (squared-gradient sums). *)

type params = {
  alpha : float;  (** learning-rate numerator, > 0 *)
  beta : float;  (** learning-rate smoothing, ≥ 0 *)
  l1 : float;  (** L1 strength, ≥ 0 — drives sparsity *)
  l2 : float;  (** L2 strength, ≥ 0 *)
}

val default_params : params
(** α = 0.1, β = 1, λ₁ = 1, λ₂ = 1 — the McMahan et al. starting
    point, adequate for the synthetic Avazu corpus. *)

type t

val create : ?params:params -> dim:int -> unit -> t
(** Fresh model over [dim] hashed buckets. *)

val dim : t -> int

val weight : t -> int -> float
(** The current (lazily materialized) weight of a coordinate — 0 when
    the L1 penalty has clipped it. *)

val weights : t -> Dm_linalg.Vec.t
(** Dense snapshot of all weights. *)

val nonzeros : t -> int
(** Number of non-zero weights — the sparsity the paper reports. *)

val predict : t -> Hashing.feature list -> float
(** Predicted click probability σ(w·x) ∈ (0, 1). *)

val learn : t -> Hashing.feature list -> bool -> float
(** [learn t x clicked] performs one FTRL-Proximal step and returns
    the pre-update prediction (handy for progressive validation). *)

val train :
  t -> (Hashing.feature list * bool) array -> epochs:int -> unit
(** Multiple passes over a labelled set, in the given order. *)

val log_loss : t -> (Hashing.feature list * bool) array -> float
(** Mean logistic loss on a labelled set; clamped away from 0/1 for
    numerical safety.  Raises [Invalid_argument] on an empty set. *)
