type params = { alpha : float; beta : float; l1 : float; l2 : float }

let default_params = { alpha = 0.1; beta = 1.; l1 = 1.; l2 = 1. }

type t = {
  params : params;
  z : float array;  (* shifted gradient sums *)
  n : float array;  (* squared gradient sums *)
  dim : int;
}

let create ?(params = default_params) ~dim () =
  if dim < 1 then invalid_arg "Ftrl.create: dim must be >= 1";
  if params.alpha <= 0. then invalid_arg "Ftrl.create: alpha must be > 0";
  if params.beta < 0. || params.l1 < 0. || params.l2 < 0. then
    invalid_arg "Ftrl.create: negative regularization";
  { params; z = Array.make dim 0.; n = Array.make dim 0.; dim }

let dim t = t.dim

(* The FTRL-Proximal closed-form weight for one coordinate. *)
let weight t i =
  let { alpha; beta; l1; l2 } = t.params in
  let zi = t.z.(i) in
  if abs_float zi <= l1 then 0.
  else
    let sign = if zi >= 0. then 1. else -1. in
    -.(zi -. (sign *. l1))
    /. (((beta +. sqrt t.n.(i)) /. alpha) +. l2)

let weights t = Array.init t.dim (weight t)

let nonzeros t =
  let count = ref 0 in
  for i = 0 to t.dim - 1 do
    if weight t i <> 0. then incr count
  done;
  !count

let sigmoid z =
  if z >= 0. then 1. /. (1. +. exp (-.z))
  else
    let e = exp z in
    e /. (1. +. e)

let raw_score t (features : Hashing.feature list) =
  List.fold_left
    (fun acc { Hashing.index; value } -> acc +. (weight t index *. value))
    0. features

let predict t features = sigmoid (raw_score t features)

let learn t features clicked =
  let p = predict t features in
  let y = if clicked then 1. else 0. in
  let g0 = p -. y in
  let { alpha; _ } = t.params in
  List.iter
    (fun { Hashing.index = i; value } ->
      let g = g0 *. value in
      let sigma = (sqrt (t.n.(i) +. (g *. g)) -. sqrt t.n.(i)) /. alpha in
      t.z.(i) <- t.z.(i) +. g -. (sigma *. weight t i);
      t.n.(i) <- t.n.(i) +. (g *. g))
    features;
  p

let train t examples ~epochs =
  if epochs < 0 then invalid_arg "Ftrl.train: negative epochs";
  for _ = 1 to epochs do
    Array.iter (fun (x, y) -> ignore (learn t x y)) examples
  done

let log_loss t examples =
  let m = Array.length examples in
  if m = 0 then invalid_arg "Ftrl.log_loss: empty set";
  let eps = 1e-12 in
  let acc = ref 0. in
  Array.iter
    (fun (x, clicked) ->
      let p = Float.min (1. -. eps) (Float.max eps (predict t x)) in
      acc := !acc -. if clicked then log p else log (1. -. p))
    examples;
  !acc /. float_of_int m
