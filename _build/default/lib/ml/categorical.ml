type t = { categories : string array; index : (string, int) Hashtbl.t }

let fit column =
  let index = Hashtbl.create 16 in
  let rev = ref [] in
  let next = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some v ->
          if not (Hashtbl.mem index v) then begin
            Hashtbl.add index v !next;
            rev := v :: !rev;
            incr next
          end)
    column;
  { categories = Array.of_list (List.rev !rev); index }

let categories t = Array.copy t.categories

let cardinality t = Array.length t.categories

let code t = function
  | None -> -1
  | Some v -> ( match Hashtbl.find_opt t.index v with Some c -> c | None -> -1)

let transform t column = Array.map (code t) column

let code_float t cell = float_of_int (code t cell)

let one_hot t cell =
  let v = Dm_linalg.Vec.zeros (cardinality t) in
  let c = code t cell in
  if c >= 0 then Dm_linalg.Vec.set v c 1.;
  v
