(** Principal Components Analysis.

    Section II-B names PCA as the celebrated dimensionality-reduction
    option when the raw privacy-compensation vector (one entry per
    data owner) is prohibitively high-dimensional.  The fit
    diagonalizes the sample covariance with the Jacobi eigensolver. *)

type t = {
  mean : Dm_linalg.Vec.t;
  components : Dm_linalg.Mat.t;
      (** [k × d]; row [i] is the i-th principal direction *)
  explained_variance : Dm_linalg.Vec.t;  (** descending eigenvalues, length k *)
  total_variance : float;  (** trace of the sample covariance *)
}

val fit : ?components:int -> Dm_linalg.Mat.t -> t
(** [fit ~components:k x] learns the top-[k] directions of the rows of
    [x] (default: all).  Requires at least 2 rows; [k] is clamped to
    the feature dimension. *)

val transform : t -> Dm_linalg.Vec.t -> Dm_linalg.Vec.t
(** Project a (centered internally) sample onto the components. *)

val transform_all : t -> Dm_linalg.Mat.t -> Dm_linalg.Mat.t

val reconstruct : t -> Dm_linalg.Vec.t -> Dm_linalg.Vec.t
(** Map a projection back to the original space (lossy if k < d). *)

val explained_ratio : t -> float
(** Fraction of total variance captured by the kept components, in
    [0, 1].  Meaningful only when the fit kept fewer than all
    components of a full-rank covariance. *)
