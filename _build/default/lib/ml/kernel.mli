(** Mercer kernels and landmark feature maps.

    Section IV-A lists the kernelized market-value model
    [v_t = Σ_{k<t} K(x_t, x_k)·θ*_k] (Amin et al., NIPS'14).  Its
    feature dimension grows with the round index, which no
    fixed-dimension ellipsoid can track; we realize the same extension
    point with a fixed set of m landmark points,
    [φ(x) = (K(x, l₁), …, K(x, l_m))], as documented in DESIGN.md. *)

type t =
  | Linear
  | Polynomial of { degree : int; offset : float }
      (** [(xᵀy + offset)^degree], [degree ≥ 1], [offset ≥ 0] *)
  | Rbf of { gamma : float }  (** [exp(−γ‖x−y‖²)], [γ > 0] *)

val eval : t -> Dm_linalg.Vec.t -> Dm_linalg.Vec.t -> float
(** Kernel value; raises [Invalid_argument] on dimension mismatch or
    ill-formed parameters. *)

val gram : t -> Dm_linalg.Vec.t array -> Dm_linalg.Mat.t
(** The (symmetric) Gram matrix of a point set. *)

val is_psd_sample : t -> Dm_linalg.Vec.t array -> bool
(** Whether the Gram matrix of the given points is positive
    semidefinite (up to −1e-8 eigenvalue tolerance) — a spot check of
    the Mercer property used by the test suite. *)

type landmark_map

val landmark_map : t -> landmarks:Dm_linalg.Vec.t array -> landmark_map
(** Fix the landmarks of a feature map.  Requires at least one
    landmark. *)

val landmark_dim : landmark_map -> int

val apply : landmark_map -> Dm_linalg.Vec.t -> Dm_linalg.Vec.t
(** [apply m x] is [(K(x, l₁), …, K(x, l_m))]. *)
