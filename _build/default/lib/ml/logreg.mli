(** Batch logistic regression by gradient descent.

    The conventional (non-sparsifying) alternative to {!Ftrl}: full
    gradient steps with L2 shrinkage over dense feature vectors.
    Exists to quantify, in the App-3 ablation, what the paper gains by
    naming FTRL-Proximal — an L2-only batch fit matches the log-loss
    but returns a dense weight vector, so the "dense case" of
    Fig. 5(c) loses its dimension reduction entirely. *)

type params = {
  learning_rate : float;  (** > 0 *)
  l2 : float;  (** ≥ 0 *)
  iterations : int;  (** ≥ 1 full-batch steps *)
}

val default_params : params
(** learning rate 0.5, L2 = 1e-4, 200 iterations. *)

type model = { weights : Dm_linalg.Vec.t; bias : float }

val fit :
  ?params:params ->
  Dm_linalg.Mat.t ->
  bool array ->
  model
(** [fit x labels] minimizes the L2-regularized logistic loss of the
    rows of [x] against [labels] (the bias is unregularized).  Raises
    [Invalid_argument] on shape mismatch or empty input. *)

val predict : model -> Dm_linalg.Vec.t -> float
(** σ(w·x + b) ∈ (0, 1). *)

val log_loss : model -> Dm_linalg.Mat.t -> bool array -> float

val nonzeros : ?tol:float -> model -> int
(** Weights with |wⱼ| > [tol] (default 1e-9) — for the sparsity
    comparison against FTRL. *)
