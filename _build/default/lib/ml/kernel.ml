module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Eigen = Dm_linalg.Eigen

type t =
  | Linear
  | Polynomial of { degree : int; offset : float }
  | Rbf of { gamma : float }

let eval k x y =
  if Vec.dim x <> Vec.dim y then invalid_arg "Kernel.eval: dimension mismatch";
  match k with
  | Linear -> Vec.dot x y
  | Polynomial { degree; offset } ->
      if degree < 1 then invalid_arg "Kernel.eval: degree must be >= 1";
      if offset < 0. then invalid_arg "Kernel.eval: negative offset";
      (Vec.dot x y +. offset) ** float_of_int degree
  | Rbf { gamma } ->
      if gamma <= 0. then invalid_arg "Kernel.eval: gamma must be > 0";
      let d = Vec.dist2 x y in
      exp (-.gamma *. d *. d)

let gram k points =
  let n = Array.length points in
  let g = Mat.zeros n n in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let v = eval k points.(i) points.(j) in
      Mat.set g i j v;
      Mat.set g j i v
    done
  done;
  g

let is_psd_sample k points =
  match Array.length points with
  | 0 -> true
  | _ ->
      let g = gram k points in
      Eigen.smallest_eigenvalue g >= -1e-8

type landmark_map = { kernel : t; landmarks : Vec.t array }

let landmark_map kernel ~landmarks =
  if Array.length landmarks = 0 then
    invalid_arg "Kernel.landmark_map: need at least one landmark";
  { kernel; landmarks }

let landmark_dim m = Array.length m.landmarks

let apply m x =
  Vec.init (Array.length m.landmarks) (fun i -> eval m.kernel x m.landmarks.(i))
