(** Integer coding of categorical columns, mirroring the pandas
    "categoricals" dtype the paper uses to preprocess the Airbnb
    dataset (Section V-B): distinct values map to dense integer codes
    in first-seen order and missing values map to code −1, exactly as
    [pandas.Categorical.codes] reports them.

    An encoder is fitted once (on training data) and then applied to
    arbitrary columns; unseen values behave like missing ones. *)

type t

val fit : string option array -> t
(** Learn the category set of a column.  [None] cells are missing. *)

val categories : t -> string array
(** Distinct categories in first-seen order; codes index this array. *)

val cardinality : t -> int

val code : t -> string option -> int
(** [code t cell] is the dense code of [cell], −1 for missing or
    unseen values. *)

val transform : t -> string option array -> int array

val code_float : t -> string option -> float
(** The code as a float feature, the way the paper feeds categoricals
    straight into the linear model. *)

val one_hot : t -> string option -> Dm_linalg.Vec.t
(** Dense one-hot vector of length [cardinality]; all-zero for missing
    or unseen values. *)
