type feature = { index : int; value : float }

let fnv1a64 s =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun ch ->
      h := logxor !h (of_int (Char.code ch));
      h := mul !h 0x100000001B3L)
    s;
  !h

let bucket ~dim key =
  if dim < 1 then invalid_arg "Hashing.bucket: dim must be >= 1";
  let h = fnv1a64 key in
  let positive = Int64.shift_right_logical h 1 in
  Int64.to_int (Int64.rem positive (Int64.of_int dim))

let encode ~dim fields =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (field, value) ->
      let b = bucket ~dim (field ^ "=" ^ value) in
      let prev = match Hashtbl.find_opt tbl b with Some v -> v | None -> 0. in
      Hashtbl.replace tbl b (prev +. 1.))
    fields;
  Hashtbl.fold (fun index value acc -> { index; value } :: acc) tbl []
  |> List.sort (fun a b -> compare a.index b.index)

let to_dense ~dim features =
  let v = Dm_linalg.Vec.zeros dim in
  List.iter
    (fun { index; value } ->
      if index < 0 || index >= dim then
        invalid_arg "Hashing.to_dense: index out of range";
      Dm_linalg.Vec.set v index value)
    features;
  v

let normalize features =
  let norm =
    sqrt (List.fold_left (fun acc f -> acc +. (f.value *. f.value)) 0. features)
  in
  if norm <= 0. then features
  else List.map (fun f -> { f with value = f.value /. norm }) features

let dot_dense features dense =
  List.fold_left
    (fun acc { index; value } -> acc +. (value *. dense.(index)))
    0. features
