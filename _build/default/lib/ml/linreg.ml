module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Chol = Dm_linalg.Chol

type model = { weights : Vec.t; intercept : float }

let fit ?(ridge = 1e-8) ?(intercept = true) x y =
  let rows, cols = Mat.dims x in
  if rows = 0 then invalid_arg "Linreg.fit: no rows";
  if rows <> Vec.dim y then invalid_arg "Linreg.fit: row/target mismatch";
  let d = if intercept then cols + 1 else cols in
  (* Augmented design: an implicit trailing 1-column for the intercept. *)
  let feature i j = if j < cols then Mat.get x i j else 1. in
  let gram = Mat.zeros d d in
  let xty = Vec.zeros d in
  for i = 0 to rows - 1 do
    for j = 0 to d - 1 do
      let fij = feature i j in
      if fij <> 0. then begin
        xty.(j) <- xty.(j) +. (fij *. y.(i));
        for k = j to d - 1 do
          Mat.set gram j k (Mat.get gram j k +. (fij *. feature i k))
        done
      end
    done
  done;
  (* Mirror the upper triangle computed above. *)
  for j = 0 to d - 1 do
    for k = j + 1 to d - 1 do
      Mat.set gram k j (Mat.get gram j k)
    done
  done;
  (* Ridge on the non-intercept diagonal only. *)
  for j = 0 to cols - 1 do
    Mat.set gram j j (Mat.get gram j j +. ridge)
  done;
  let theta = Chol.solve_regularized ~ridge:1e-10 gram xty in
  if intercept then
    { weights = Vec.slice theta ~pos:0 ~len:cols; intercept = theta.(cols) }
  else { weights = theta; intercept = 0. }

let predict m x = Vec.dot m.weights x +. m.intercept

let predict_all m x =
  Vec.init (Mat.rows x) (fun i -> predict m (Mat.row x i))

let mse m x y =
  let rows = Mat.rows x in
  if rows = 0 || rows <> Vec.dim y then invalid_arg "Linreg.mse: bad shapes";
  let acc = ref 0. in
  for i = 0 to rows - 1 do
    let e = predict m (Mat.row x i) -. y.(i) in
    acc := !acc +. (e *. e)
  done;
  !acc /. float_of_int rows

let r2 m x y =
  let rows = Mat.rows x in
  if rows = 0 || rows <> Vec.dim y then invalid_arg "Linreg.r2: bad shapes";
  let ybar = Vec.mean y in
  let ss_res = ref 0. and ss_tot = ref 0. in
  for i = 0 to rows - 1 do
    let e = predict m (Mat.row x i) -. y.(i) in
    ss_res := !ss_res +. (e *. e);
    let d = y.(i) -. ybar in
    ss_tot := !ss_tot +. (d *. d)
  done;
  if !ss_tot = 0. then if !ss_res = 0. then 1. else 0.
  else 1. -. (!ss_res /. !ss_tot)
