lib/ml/hashing.ml: Array Char Dm_linalg Hashtbl Int64 List String
