lib/ml/kernel.ml: Array Dm_linalg
