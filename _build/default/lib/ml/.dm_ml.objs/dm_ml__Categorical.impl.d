lib/ml/categorical.ml: Array Dm_linalg Hashtbl List
