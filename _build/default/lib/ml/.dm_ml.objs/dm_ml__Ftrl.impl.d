lib/ml/ftrl.ml: Array Float Hashing List
