lib/ml/split.mli: Dm_prob
