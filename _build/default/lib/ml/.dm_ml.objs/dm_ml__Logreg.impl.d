lib/ml/logreg.ml: Array Dm_linalg Float
