lib/ml/linreg.ml: Array Dm_linalg
