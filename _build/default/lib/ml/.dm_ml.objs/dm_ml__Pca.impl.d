lib/ml/pca.ml: Array Dm_linalg Float
