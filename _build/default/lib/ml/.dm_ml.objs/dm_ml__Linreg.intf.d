lib/ml/linreg.mli: Dm_linalg
