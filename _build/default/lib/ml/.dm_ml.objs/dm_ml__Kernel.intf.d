lib/ml/kernel.mli: Dm_linalg
