lib/ml/hashing.mli: Dm_linalg
