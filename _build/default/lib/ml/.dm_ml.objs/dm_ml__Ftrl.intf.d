lib/ml/ftrl.mli: Dm_linalg Hashing
