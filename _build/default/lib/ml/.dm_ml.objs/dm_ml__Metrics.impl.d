lib/ml/metrics.ml: Array Dm_linalg Float
