lib/ml/categorical.mli: Dm_linalg
