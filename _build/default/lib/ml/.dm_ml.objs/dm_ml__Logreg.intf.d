lib/ml/logreg.mli: Dm_linalg
