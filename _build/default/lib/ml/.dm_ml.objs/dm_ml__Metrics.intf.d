lib/ml/metrics.mli: Dm_linalg
