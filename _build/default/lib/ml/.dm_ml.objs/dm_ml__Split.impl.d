lib/ml/split.ml: Array Dm_prob Float
