lib/ml/pca.mli: Dm_linalg
