(** Evaluation metrics for the fitted market-value models. *)

val mse : Dm_linalg.Vec.t -> Dm_linalg.Vec.t -> float
(** Mean squared error between predictions and targets.  Raises
    [Invalid_argument] on length mismatch or empty input. *)

val mae : Dm_linalg.Vec.t -> Dm_linalg.Vec.t -> float

val rmse : Dm_linalg.Vec.t -> Dm_linalg.Vec.t -> float

val log_loss : probs:Dm_linalg.Vec.t -> labels:bool array -> float
(** Mean logistic loss, probabilities clamped to [1e-12, 1−1e-12]. *)

val accuracy :
  ?threshold:float -> probs:Dm_linalg.Vec.t -> labels:bool array -> unit -> float
(** Fraction of correct classifications at [threshold] (default 0.5). *)
