(* Accommodation rental pricing (App 2 of the paper, scaled down).

   A booking platform prices listings under the log-linear hedonic
   model: encode each listing into 55 features, learn the market-value
   weights by OLS on historical log prices, then post prices online
   with the host's minimum price as the reserve.  Run with:

     dune exec examples/accommodation.exe
*)

module Mechanism = Dm_market.Mechanism
module Broker = Dm_market.Broker
module Rental = Dm_apps.Rental

let () =
  (* The full corpus size of the paper; exploration amortizes over the
     whole horizon, which is what lets the learner beat the
     risk-averse host at every reserve level. *)
  let rows = 74_111 in
  let setup = Rental.make ~rows ~seed:31 () in

  Format.printf "=== accommodation rental: %d listings, n = %d ===@." rows
    setup.Rental.dim;
  Format.printf
    "OLS fit of log prices: held-out MSE %.3f (paper reports 0.226)@."
    setup.Rental.test_mse;
  Format.printf "knowledge ball radius %.2f, feature bound %.2f, ε = %.4f@.@."
    setup.Rental.radius setup.Rental.feature_bound setup.Rental.epsilon;

  let report name (r : Broker.result) =
    Format.printf "%-30s regret ratio %5.2f%%  (%d exploratory, %d sales)@."
      name
      (100. *. r.Broker.regret_ratio)
      r.Broker.exploratory r.Broker.accepted_rounds
  in
  report "pure version" (Rental.run ~ratio:0.0 setup Mechanism.pure);
  List.iter
    (fun ratio ->
      report
        (Format.asprintf "with reserve (log ratio %.1f)" ratio)
        (Rental.run ~ratio setup Mechanism.with_reserve);
      report
        (Format.asprintf "risk-averse (log ratio %.1f)" ratio)
        (Rental.run_baseline ~ratio setup))
    [ 0.4; 0.6; 0.8 ];
  Format.printf
    "@.As the host's reserve approaches the market value (0.4 → 0.8), the@.";
  Format.printf
    "risk-averse strategy improves, but the learning broker still wins.@."
