(* Personal data market (App 1 of the paper, scaled down).

   A data broker sells noisy linear queries over a MovieLens-style
   corpus of data owners.  Each query leaks privacy; owners are paid
   through tanh compensation contracts; the total compensation is the
   query's reserve price; and the broker prices the query stream with
   the ellipsoid mechanism.  Run with:

     dune exec examples/data_market.exe
*)

module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Dp = Dm_privacy.Dp
module Comp = Dm_privacy.Compensation
module Movielens = Dm_synth.Movielens
module Linear_query = Dm_synth.Linear_query
module Mechanism = Dm_market.Mechanism
module Broker = Dm_market.Broker
module Noisy_query = Dm_apps.Noisy_query

let () =
  let dim = 20 and rounds = 5000 in
  let setup = Noisy_query.make ~owners:300 ~seed:99 ~dim ~rounds () in

  Format.printf "=== personal data market: %d owners, %d rounds, n = %d ===@."
    setup.Noisy_query.owners rounds dim;

  (* Show one round of the privacy pipeline in detail. *)
  let rng = Rng.create 1 in
  let corpus = setup.Noisy_query.corpus in
  let query = Linear_query.draw rng ~dist:Linear_query.Mixed ~owners:300 in
  let leakages = Dp.leakage query ~data_ranges:(Movielens.data_ranges corpus) in
  let compensations =
    Comp.per_owner ~contracts:(Movielens.contracts corpus) ~leakages
  in
  Format.printf
    "sample query: Laplace scale %.3g, total privacy leakage %.3f ε,@."
    query.Dp.noise_scale (Vec.sum leakages);
  Format.printf
    "              total compensation (reserve price before scaling) %.3f@."
    (Vec.sum compensations);
  let answer =
    Dp.noisy_answer rng query ~data:(Movielens.data_vector corpus)
  in
  Format.printf "              noisy answer the consumer would receive: %.3f@."
    answer;

  (* Price the stream under all four variants plus the baseline. *)
  let delta = setup.Noisy_query.delta in
  let report name (r : Broker.result) =
    Format.printf
      "%-34s regret %8.1f  ratio %5.2f%%  (%d exploratory, %d sales)@." name
      r.Broker.total_regret
      (100. *. r.Broker.regret_ratio)
      r.Broker.exploratory r.Broker.accepted_rounds
  in
  report "pure version" (Noisy_query.run setup Mechanism.pure);
  report "with uncertainty"
    (Noisy_query.run setup (Mechanism.with_uncertainty ~delta));
  report "with reserve price" (Noisy_query.run setup Mechanism.with_reserve);
  report "with reserve price and uncertainty"
    (Noisy_query.run setup (Mechanism.with_reserve_and_uncertainty ~delta));
  report "risk-averse baseline" (Noisy_query.run_baseline setup)
