(* A data market with per-owner privacy budgets.

   The paper's broker compensates leakage per query; over a long query
   stream each owner's cumulative differential-privacy loss composes.
   This example couples the pricing loop with a (ε, δ) budget
   accountant: once an owner's budget is exhausted, the broker removes
   her from the sellable population (her query weight is zeroed), so
   late queries earn less — privacy is a finite resource the market
   gradually consumes.  Run with:

     dune exec examples/budgeted_market.exe
*)

module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Dp = Dm_privacy.Dp
module Comp = Dm_privacy.Compensation
module Compo = Dm_privacy.Composition
module Movielens = Dm_synth.Movielens
module Ellipsoid = Dm_market.Ellipsoid
module Mechanism = Dm_market.Mechanism
module Model = Dm_market.Model
module Feature = Dm_market.Feature
module Broker = Dm_market.Broker
module Dist = Dm_prob.Dist

let () =
  let owners = 200 and dim = 10 and rounds = 3000 in
  let rng = Rng.create 4 in
  let corpus = Movielens.generate (Rng.split rng) ~owners in
  let contracts = Movielens.contracts corpus in
  let data_ranges = Movielens.data_ranges corpus in
  (* Each owner grants a lifetime ε budget of 150 (the per-query
     leakages here are O(1), so budgets bite mid-stream). *)
  let accountant = Compo.accountant ~owners ~budget:(Compo.pure 150.) in
  let theta =
    let markup = Vec.map abs_float (Dist.normal_vec (Rng.split rng) ~dim) in
    Vec.scale
      (sqrt (2. *. float_of_int dim))
      (Vec.normalize (Vec.init dim (fun i -> 1. +. (3. *. markup.(i)))))
  in
  let model = Model.linear ~theta in
  let mech =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.with_reserve
         ~epsilon:(float_of_int (dim * dim) /. float_of_int rounds)
         ())
      (Ellipsoid.ball ~dim ~radius:(2. *. sqrt (float_of_int dim)))
  in
  let query_rng = Rng.split rng in
  let alive = Array.make owners true in
  let retired_at = ref [] in
  let workload t =
    (* Privacy-conscious consumers only: high-noise queries (Laplace
       scale 7–70) leak ~0.25 ε per owner per query, so a 150-ε budget
       lasts a few hundred queries rather than evaporating at once. *)
    let weights = Dist.normal_vec query_rng ~dim:owners in
    let query =
      Dp.make_query ~weights ~noise_scale:(Rng.uniform query_rng 7. 70.)
    in
    (* Zero out the weights of owners whose budget is gone: their data
       can no longer be sold. *)
    let weights =
      Vec.init owners (fun i -> if alive.(i) then query.Dp.weights.(i) else 0.)
    in
    let query = Dp.make_query ~weights ~noise_scale:query.Dp.noise_scale in
    let leakages = Dp.leakage query ~data_ranges in
    Array.iteri
      (fun i eps ->
        if alive.(i) && eps > 0. then
          if not (Compo.spend accountant ~owner:i (Compo.pure eps)) then begin
            alive.(i) <- false;
            retired_at := (i, t) :: !retired_at
          end)
      leakages;
    let compensations = Comp.per_owner ~contracts ~leakages in
    Feature.of_compensations ~dim compensations
  in
  let result =
    Broker.run
      ~policy:(Broker.Ellipsoid_pricing mech)
      ~model
      ~noise:(fun _ -> 0.)
      ~workload ~rounds ()
  in
  let retired = List.length !retired_at in
  Format.printf "=== budgeted data market: %d owners, %d rounds ===@." owners
    rounds;
  Format.printf "owners whose privacy budget ran out: %d of %d@." retired owners;
  (match List.rev !retired_at with
  | (i, t) :: _ ->
      Format.printf "first retirement: owner %d at round %d@." i t
  | [] -> ());
  Format.printf "revenue %.1f, regret ratio %.2f%%@." result.Broker.total_revenue
    (100. *. result.Broker.regret_ratio);
  Format.printf
    "market value drifts down as sellable owners disappear: early mean %.3f, \
     late mean %.3f@."
    result.Broker.market_value_stats.Dm_prob.Stats.max
    result.Broker.market_value_stats.Dm_prob.Stats.min
