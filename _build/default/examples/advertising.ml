(* Impression pricing for online advertising (App 3, scaled down).

   A web publisher sells impressions at posted prices (instead of an
   auction).  The market value of an impression is its click-through
   rate under a logistic model whose weights are learnt from click
   logs with FTRL-Proximal.  Run with:

     dune exec examples/advertising.exe
*)

module Mechanism = Dm_market.Mechanism
module Broker = Dm_market.Broker
module Impression = Dm_apps.Impression

let () =
  let dim = 64 and rounds = 15_000 in
  let setup = Impression.make ~train_rounds:60_000 ~seed:77 ~dim ~rounds () in

  Format.printf "=== impression pricing: n = %d hash buckets, %d rounds ===@."
    dim rounds;
  Format.printf
    "FTRL-Proximal fit: %d non-zero weights (training log-loss %.3f)@."
    setup.Impression.theta_nonzeros setup.Impression.train_log_loss;
  Format.printf "dense case keeps only the %d-coordinate support@.@."
    setup.Impression.dense_dim;

  let report name (r : Broker.result) =
    Format.printf "%-14s regret ratio %5.2f%%  (%d exploratory, %d sales)@."
      name
      (100. *. r.Broker.regret_ratio)
      r.Broker.exploratory r.Broker.accepted_rounds
  in
  report "sparse case" (Impression.run setup Impression.Sparse Mechanism.pure);
  report "dense case" (Impression.run setup Impression.Dense Mechanism.pure);
  Format.printf
    "@.The sparse case spends its early rounds discovering which hash@.";
  Format.printf
    "buckets carry zero weight, so its regret ratio decreases more slowly@.";
  Format.printf "— exactly the effect in Fig. 5(c) of the paper.@."
