(* Play the data consumer against the ellipsoid broker.

   Each round the broker quotes a price for a random product whose
   true worth follows a hidden linear model.  Type y/n to accept or
   reject; the broker learns from every answer and its quotes tighten
   toward your willingness to pay.  Run with:

     dune exec examples/interactive_broker.exe            # interactive
     dune exec examples/interactive_broker.exe -- --auto  # scripted buyer

   In --auto mode a rational buyer (accepts iff price ≤ worth) plays
   20 rounds, so the demo also works in CI. *)

module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Ellipsoid = Dm_market.Ellipsoid
module Mechanism = Dm_market.Mechanism
module Model = Dm_market.Model

let () =
  let auto = Array.exists (( = ) "--auto") Sys.argv in
  let rounds =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then if auto then 20 else 10
      else if Sys.argv.(i) = "--rounds" then int_of_string Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let dim = 4 in
  let rng = Rng.create 2020 in
  let theta =
    Vec.scale 10. (Vec.normalize (Vec.map abs_float (Dist.normal_vec rng ~dim)))
  in
  let model = Model.linear ~theta in
  let mech =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.with_reserve ~epsilon:0.5 ())
      (Ellipsoid.ball ~dim ~radius:10.)
  in
  Format.printf
    "You are a data consumer with a hidden taste for 4 product features.@.";
  Format.printf
    "A product is worth (to you) the dot product of its features and your@.";
  Format.printf "taste vector%s.@.@."
    (if auto then Format.asprintf " %a" Vec.pp theta else " (kept secret)");
  let revenue = ref 0. and worth_sum = ref 0. in
  for t = 1 to rounds do
    let x = Vec.normalize (Vec.map abs_float (Dist.normal_vec rng ~dim)) in
    let worth = Model.value model x in
    let reserve = 0.4 *. worth in
    let decision = Mechanism.decide mech ~x ~reserve in
    match decision with
    | Mechanism.Skip ->
        Format.printf "round %2d: no offer (reserve exceeds any possible value)@." t
    | Mechanism.Post { price; kind; _ } ->
        let kind_str =
          match kind with
          | Mechanism.Exploratory -> "exploring"
          | Mechanism.Conservative -> "exploiting"
        in
        Format.printf "round %2d: features %a@." t Vec.pp x;
        Format.printf "          quoted price %.2f (%s)%s@." price kind_str
          (if auto then Format.asprintf " — worth to you: %.2f" worth else "");
        let accepted =
          if auto then price <= worth
          else begin
            Format.printf "          buy? [y/n] %!";
            match input_line stdin with
            | "y" | "Y" | "yes" -> true
            | _ -> false
            | exception End_of_file -> false
          end
        in
        Mechanism.observe mech ~x decision ~accepted;
        if accepted then revenue := !revenue +. price;
        worth_sum := !worth_sum +. worth;
        Format.printf "          %s@."
          (if accepted then "sold." else "no deal.")
  done;
  Format.printf "@.broker revenue %.2f of %.2f total worth (%d exploratory, %d \
                 conservative rounds)@."
    !revenue !worth_sum
    (Mechanism.exploratory_rounds mech)
    (Mechanism.conservative_rounds mech);
  Format.printf "final estimate of your taste: %a@." Vec.pp
    (Mechanism.ellipsoid mech).Ellipsoid.center
