(* Quickstart: price a stream of differentiated products with the
   ellipsoid posted-price mechanism.

   A seller faces buyers whose willingness to pay is linear in the
   product's features, v = xᵀθ*, with θ* unknown.  Each round the
   seller posts a price, observes accept/reject, and refines an
   ellipsoidal knowledge set over θ*.  Run with:

     dune exec examples/quickstart.exe
*)

module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Ellipsoid = Dm_market.Ellipsoid
module Mechanism = Dm_market.Mechanism
module Model = Dm_market.Model
module Broker = Dm_market.Broker

let () =
  let dim = 5 in
  let rounds = 2000 in
  let rng = Rng.create 2024 in

  (* The hidden market-value model: buyers pay v = xᵀθ*.  Features are
     non-negative (quality scores), so non-negative weights keep every
     market value positive. *)
  let theta =
    Vec.scale 2. (Vec.normalize (Vec.map abs_float (Dist.normal_vec rng ~dim)))
  in
  let model = Model.linear ~theta in

  (* The seller only knows ‖θ*‖ ≤ 2, so her initial knowledge set is
     the ball of radius 2; she explores while the value window along a
     query exceeds ε and exploits (posts the window's bottom) after. *)
  let mechanism =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.with_reserve ~epsilon:0.05 ())
      (Ellipsoid.ball ~dim ~radius:2.)
  in

  (* Products arrive with non-negative unit feature vectors; each has
     a reserve price (e.g. its production cost). *)
  let product_rng = Rng.create 7 in
  let workload _round =
    let x = Vec.normalize (Vec.map abs_float (Dist.normal_vec product_rng ~dim)) in
    let cost = 0.5 *. Vec.dot x theta in
    (x, cost)
  in

  let result =
    Broker.run
      ~policy:(Broker.Ellipsoid_pricing mechanism)
      ~model
      ~noise:(fun _ -> 0.)
      ~workload ~rounds ()
  in

  Format.printf "=== quickstart: contextual pricing in %d rounds ===@." rounds;
  Format.printf "hidden weights        : %a@." Vec.pp theta;
  Format.printf "final knowledge center: %a@." Vec.pp
    (Mechanism.ellipsoid mechanism).Ellipsoid.center;
  Format.printf "revenue               : %.2f (of %.2f available)@."
    result.Broker.total_revenue result.Broker.total_value;
  Format.printf "cumulative regret     : %.2f (ratio %.2f%%)@."
    result.Broker.total_regret
    (100. *. result.Broker.regret_ratio);
  Format.printf "rounds: %d exploratory, %d conservative, %d skipped, %d sales@."
    result.Broker.exploratory result.Broker.conservative result.Broker.skipped
    result.Broker.accepted_rounds;
  let final_error = Vec.dist2 (Mechanism.ellipsoid mechanism).Ellipsoid.center theta in
  Format.printf "‖center − θ*‖         : %.4f@." final_error
