examples/loan_application.mli:
