examples/accommodation.mli:
