examples/advertising.ml: Dm_apps Dm_market Format
