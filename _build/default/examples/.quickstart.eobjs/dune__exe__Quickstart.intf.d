examples/quickstart.mli:
