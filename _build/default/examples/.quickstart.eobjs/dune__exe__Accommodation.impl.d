examples/accommodation.ml: Dm_apps Dm_market Format List
