examples/budgeted_market.mli:
