examples/data_market.mli:
