examples/data_market.ml: Dm_apps Dm_linalg Dm_market Dm_privacy Dm_prob Dm_synth Format
