examples/quickstart.ml: Dm_linalg Dm_market Dm_prob Format
