examples/advertising.mli:
