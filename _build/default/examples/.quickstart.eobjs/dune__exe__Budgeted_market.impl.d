examples/budgeted_market.ml: Array Dm_linalg Dm_market Dm_privacy Dm_prob Dm_synth Format List
