examples/interactive_broker.mli:
