examples/loan_application.ml: Array Dm_linalg Dm_market Dm_ml Dm_prob Float Format
