examples/interactive_broker.ml: Array Dm_linalg Dm_market Dm_prob Format Sys
