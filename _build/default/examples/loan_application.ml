(* Loan-rate posting (Section IV-B's third scenario).

   A financial institution posts interest rates to sequential loan
   applicants.  The acceptable rate is modelled log-log in the
   borrower's features (credit score, income, loan size, tenure), and
   the institution's funding cost acts as the reserve.  This example
   also demonstrates the kernelized model via landmark feature maps.
   Run with:

     dune exec examples/loan_application.exe
*)

module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Kernel = Dm_ml.Kernel
module Ellipsoid = Dm_market.Ellipsoid
module Mechanism = Dm_market.Mechanism
module Model = Dm_market.Model
module Broker = Dm_market.Broker

let run_model name model ~dim_index ~radius ~workload ~rounds =
  let mechanism =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.with_reserve ~epsilon:0.02 ())
      (Ellipsoid.ball ~dim:dim_index ~radius)
  in
  let r =
    Broker.run
      ~policy:(Broker.Ellipsoid_pricing mechanism)
      ~model
      ~noise:(fun _ -> 0.)
      ~workload ~rounds ()
  in
  Format.printf "%-22s regret ratio %5.2f%%  (%d exploratory, %d accepted)@."
    name
    (100. *. r.Broker.regret_ratio)
    r.Broker.exploratory r.Broker.accepted_rounds

let () =
  let rounds = 4000 in
  Format.printf "=== loan applications: %d borrowers ===@." rounds;

  (* Borrower features: credit score (300–850), annual income (k$),
     loan amount (k$), employment tenure (years) — all positive, as
     the log-log model requires. *)
  let borrower rng =
    [|
      Rng.uniform rng 300. 850.;
      exp (Dist.normal rng ~mean:4.2 ~std:0.5);
      exp (Dist.normal rng ~mean:3.0 ~std:0.8);
      1. +. (19. *. Rng.float rng);
    |]
  in

  (* Log-log ground truth: log rate = θ·log features.  Better credit
     and income lower the acceptable rate; bigger loans raise it. *)
  let theta = [| -0.35; -0.10; 0.08; -0.03 |] in
  let model = Model.log_log ~theta in
  let workload_rng = Rng.create 11 in
  let workload _ =
    let x = borrower workload_rng in
    (* Funding cost: 60% of the acceptable rate. *)
    let v = Model.value model x in
    (x, 0.6 *. v)
  in
  run_model "log-log rate model" model ~dim_index:4 ~radius:1. ~workload
    ~rounds;

  (* The same market priced with a kernelized model over landmark
     borrowers (an RBF similarity basis). *)
  let rng = Rng.create 5 in
  let landmarks =
    Array.init 6 (fun _ -> Vec.map log (borrower rng))
  in
  let map = Kernel.landmark_map (Kernel.Rbf { gamma = 0.5 }) ~landmarks in
  let ktheta =
    Vec.scale 0.3 (Vec.normalize (Vec.map abs_float (Dist.normal_vec rng ~dim:6)))
  in
  let kmodel = Model.kernelized ~map ~theta:ktheta in
  let kworkload_rng = Rng.create 12 in
  let kworkload _ =
    let x = Vec.map log (borrower kworkload_rng) in
    let v = Model.value kmodel x in
    (x, 0.6 *. Float.max 0.01 v)
  in
  run_model "kernelized (landmarks)" kmodel ~dim_index:6 ~radius:0.5
    ~workload:kworkload ~rounds;

  Format.printf
    "@.Both non-linear models reuse the identical ellipsoid machinery:@.";
  Format.printf
    "only the link g and the feature map φ change (Section IV-A).@."
