module Table = Dm_experiments.Table

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json_exn src =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub src !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'u' ->
              (* Our emitter only writes \u00XX control escapes. *)
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub src (!pos + 1) 4) in
              Buffer.add_char buf (Char.chr (code land 0xff));
              pos := !pos + 4
          | _ -> fail "bad escape");
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_json src =
  match parse_json_exn src with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

type record = {
  stamp : string;
  stage1 : (string * float) list;
  stage2 : (string * float option) list;
}

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let of_string ?(path = "<string>") src =
  match parse_json src with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok root -> (
      match member "schema" root with
      | Some (Str "dm-bench/1") ->
          let stamp =
            match member "stamp" root with Some (Str s) -> s | _ -> "?"
          in
          let entries key name_field value_of =
            match member key root with
            | Some (Arr items) ->
                List.filter_map
                  (fun item ->
                    match (member name_field item, value_of item) with
                    | Some (Str name), Some v -> Some (name, v)
                    | _ -> None)
                  items
            | _ -> []
          in
          Ok
            {
              stamp;
              stage1 =
                entries "stage1_wall_clock_s" "artifact" (fun item ->
                    match member "seconds" item with
                    | Some (Num f) -> Some f
                    | _ -> None);
              stage2 =
                entries "stage2_ns_per_call" "benchmark" (fun item ->
                    match member "ns" item with
                    | Some (Num f) -> Some (Some f)
                    | Some Null -> Some None
                    | _ -> None);
            }
      | _ -> Error (Printf.sprintf "%s: not a dm-bench/1 record" path))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> of_string ~path src
  | exception Sys_error msg -> Error msg

(* Metric keys whose disappearance from a newer record is itself a
   regression: the perf-sensitive kernels a refactor is most likely to
   silently drop from the bench matrix. *)
let critical_prefixes =
  [
    "pricing/sparse_cut"; "journal/"; "journal/fleet"; "hd/"; "stress/";
    "serve/"; "gc/"; "auction/";
  ]

let is_critical name =
  List.exists
    (fun p ->
      String.length name >= String.length p
      && String.sub name 0 (String.length p) = p)
    critical_prefixes

let compare_section ppf ~title ~unit ~threshold ?(critical = fun _ -> false)
    old_entries new_entries =
  let regressions = ref 0 in
  (* One-sided keys (absent on one record, or measured as null) render a
     stable "n/a" in every affected column, so diffs of diffs stay
     greppable and a null measurement is never mistaken for a zero. *)
  let fmt_value = function
    | Some v -> Printf.sprintf "%.4g %s" v unit
    | None -> "n/a"
  in
  let rows =
    List.map
      (fun (name, nv) ->
        let ov = List.assoc_opt name old_entries in
        let delta, verdict =
          match (ov, nv) with
          | Some (Some o), Some nv' when o > 0. ->
              let d = (nv' -. o) /. o in
              let verdict =
                if d > threshold then begin
                  incr regressions;
                  "REGRESSION"
                end
                else if d < -.threshold then "improved"
                else "ok"
              in
              (Printf.sprintf "%+.1f%%" (100. *. d), verdict)
          | None, _ -> ("n/a", "new")
          | Some _, _ -> ("n/a", "n/a")
        in
        [ name; fmt_value (Option.join ov); fmt_value nv; delta; verdict ])
      new_entries
  in
  let removed =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name new_entries then None
        else begin
          let verdict =
            if critical name then begin
              incr regressions;
              "REGRESSION (removed)"
            end
            else "removed"
          in
          Some
            [
              name;
              fmt_value (List.assoc_opt name old_entries |> Option.join);
              "n/a"; "n/a"; verdict;
            ]
        end)
      old_entries
  in
  Table.print ppf ~title ~header:[ "benchmark"; "old"; "new"; "delta"; "" ]
    (rows @ removed);
  !regressions

let compare_records ppf ~threshold old_rec new_rec =
  Format.fprintf ppf "comparing %s (old) vs %s (new), threshold %+.0f%%@."
    old_rec.stamp new_rec.stamp
    (100. *. threshold);
  let r1 =
    compare_section ppf ~title:"stage 1: experiment wall-clock" ~unit:"s"
      ~threshold
      (List.map (fun (n, v) -> (n, Some v)) old_rec.stage1)
      (List.map (fun (n, v) -> (n, Some v)) new_rec.stage1)
  in
  let r2 =
    compare_section ppf ~title:"stage 2: kernel ns/call" ~unit:"ns" ~threshold
      ~critical:is_critical old_rec.stage2 new_rec.stage2
  in
  r1 + r2
