(* Compare two BENCH_<stamp>.json perf records (schema dm-bench/1,
   written by bench/main.exe) and flag regressions.

     dune exec bench/compare.exe -- OLD.json NEW.json [--threshold F]

   Prints per-benchmark deltas for both sections (stage-1 wall-clock
   and stage-2 ns/call) and exits non-zero if any benchmark got slower
   by more than the threshold fraction (default 0.25, i.e. +25%).
   Entries present in only one record are listed but never flagged —
   adding or retiring a benchmark is not a regression.  All the parsing
   and delta logic lives in Dm_bench_record.Record so the test suite
   can exercise it on fixture records. *)

module Record = Dm_bench_record.Record

let fatal fmt =
  Printf.ksprintf (fun s -> prerr_endline ("compare: " ^ s); exit 2) fmt

let () =
  let threshold = ref 0.25 in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0. -> threshold := f
        | _ -> fatal "--threshold expects a positive number, got %s" v);
        parse_args rest
    | arg :: rest ->
        paths := arg :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !paths with
    | [ a; b ] -> (a, b)
    | _ -> fatal "usage: compare OLD.json NEW.json [--threshold F]"
  in
  let load path =
    match Record.load path with Ok r -> r | Error msg -> fatal "%s" msg
  in
  let old_rec = load old_path and new_rec = load new_path in
  let ppf = Format.std_formatter in
  let total = Record.compare_records ppf ~threshold:!threshold old_rec new_rec in
  if total > 0 then begin
    Format.fprintf ppf "@.%d benchmark(s) regressed past the threshold@." total;
    exit 1
  end
  else Format.fprintf ppf "@.no regressions@."
