(* Benchmark harness.

   Two stages:

   1. Regenerate every table and figure of the paper at a reduced,
      shape-preserving scale (BENCH_SCALE environment variable,
      default 0.05 of the paper's horizons; set BENCH_SCALE=1 for the
      full evaluation — several minutes).

   2. Run Bechamel micro-benchmarks: one Test.make per table/figure,
      timing the per-round unit of work that experiment repeats 10⁴–10⁵
      times, plus substrate kernels.  These are the Sec. V-D latency
      numbers in steady state.

   Both stages feed a BENCH_<stamp>.json file (stage-1 wall-clock per
   artifact, stage-2 ns-per-call medians) so successive runs accumulate
   a perf trajectory; BENCH_JOBS sets the domain fan-out of the
   stage-1 drivers that support it (the rendered tables are identical
   whatever the value). *)

module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Chol = Dm_linalg.Chol
module Eigen = Dm_linalg.Eigen
module Pool = Dm_linalg.Pool
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Ellipsoid = Dm_market.Ellipsoid
module Mechanism = Dm_market.Mechanism
module Model = Dm_market.Model
module Regret = Dm_market.Regret
module Noisy_query = Dm_apps.Noisy_query
module Rental = Dm_apps.Rental
module Impression = Dm_apps.Impression
module Ftrl = Dm_ml.Ftrl
module Hashing = Dm_ml.Hashing

let ppf = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Stage 1: table/figure regeneration                                  *)
(* ------------------------------------------------------------------ *)

let scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0. && f <= 1. -> f
      | _ -> failwith "BENCH_SCALE must be a float in (0, 1]")
  | None -> 0.05

(* Requested jobs are clamped to the physical core count: domains
   beyond that only contend for the same cores and inflate every
   latency figure (output bytes are jobs-independent either way). *)
let jobs_requested =
  match Sys.getenv_opt "BENCH_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 -> j
      | _ -> failwith "BENCH_JOBS must be a positive integer")
  | None -> 1

let jobs = min jobs_requested (Domain.recommended_domain_count ())

let () =
  if jobs < jobs_requested then
    Printf.eprintf "bench: clamping BENCH_JOBS %d to the %d available core(s)\n%!"
      jobs_requested jobs

(* One pool for the whole run, installed as the process default: the
   stage-1 drivers reach it through [Runner], and the large-n kernels
   inside single cells (fig5c's n = 1024 rounds, stage 2's kernel
   benchmarks) pick it up implicitly. *)
let pool =
  if jobs > 1 then begin
    let p = Pool.create ~jobs in
    Pool.set_default (Some p);
    Some p
  end
  else None

(* Every stage-1 artifact as a named thunk, so the harness can time
   each one individually for the BENCH_*.json trajectory. *)
let stage1_artifacts =
  [
    ("fig1", fun ppf -> Dm_experiments.Analysis.fig1 ppf);
    ("fig4", fun ppf -> Dm_experiments.App1.fig4 ~scale ~jobs ppf);
    ("table1", fun ppf -> Dm_experiments.App1.table1 ~scale ppf);
    ("fig5a", fun ppf -> Dm_experiments.App1.fig5a ~scale ppf);
    ("fig5b", fun ppf -> Dm_experiments.App2.fig5b ~scale ppf);
    ("fig5c", fun ppf -> Dm_experiments.App3.fig5c ~scale ppf);
    ("fig5c_hd", fun ppf -> Dm_experiments.Hd.fig5c_hd ~scale ~jobs ppf);
    ( "coldstart_app1",
      fun ppf -> Dm_experiments.App1.coldstart ~scale ~seeds:3 ~jobs ppf );
    ( "coldstart_app2",
      fun ppf -> Dm_experiments.App2.coldstart ~scale ~seeds:3 ~jobs ppf );
    ("lemma8", fun ppf -> Dm_experiments.Analysis.lemma8 ppf);
    ("theorem3", fun ppf -> Dm_experiments.Analysis.theorem3 ppf);
    ("theorem2", fun ppf -> Dm_experiments.Analysis.theorem2 ~scale ppf);
    ("lemma2", fun ppf -> Dm_experiments.Analysis.lemma2_check ppf);
    ("lemma45", fun ppf -> Dm_experiments.Analysis.lemma45_check ppf);
    ( "ablation_epsilon",
      fun ppf -> Dm_experiments.Ablation.epsilon_sweep ~rounds:5_000 ~jobs ppf );
    ( "ablation_delta",
      fun ppf -> Dm_experiments.Ablation.delta_sweep ~rounds:5_000 ~jobs ppf );
    ( "ablation_aggregation",
      fun ppf ->
        Dm_experiments.Ablation.aggregation_sweep ~rounds:5_000 ~jobs ppf );
    ( "ablation_feature_pipeline",
      fun ppf -> Dm_experiments.Ablation.feature_pipeline ~rounds:5_000 ppf );
    ( "ablation_param_dist",
      fun ppf ->
        Dm_experiments.Ablation.param_dist_sweep ~rounds:5_000 ~jobs ppf );
    ("baselines", fun ppf -> Dm_experiments.Baselines.compare ~scale ~jobs ppf);
    ("stress", fun ppf -> Dm_experiments.Stress.degradation ~scale ~jobs ppf);
    ( "auction",
      fun ppf -> Dm_experiments.Auction.revenue_vs_opt ~scale ~jobs ppf );
    ("longrun", fun ppf -> Dm_experiments.Longrun.report ~scale ~jobs ppf);
    ("recover", fun ppf -> Dm_experiments.Recover.report ~scale ~jobs ppf);
    ("fleet", fun ppf -> Dm_experiments.Fleet.report ~scale ~jobs ppf);
    ("serve", fun ppf -> Dm_experiments.Serve.report ~scale ~jobs ppf);
    ("rank", fun ppf -> Dm_experiments.Diagnostics.report ~sample:1_000 ppf);
    ("overhead", fun ppf -> Dm_experiments.Overhead.report ppf);
  ]

let stage1 () =
  Format.fprintf ppf
    "==================================================================@.";
  Format.fprintf ppf
    "Stage 1: paper tables and figures at scale %.2f (BENCH_SCALE), %d \
     domain(s) (BENCH_JOBS)@."
    scale jobs;
  Format.fprintf ppf
    "==================================================================@.@.";
  let timings =
    List.map
      (fun (name, artifact) ->
        let t0 = Unix.gettimeofday () in
        artifact ppf;
        (name, Unix.gettimeofday () -. t0))
      stage1_artifacts
  in
  Dm_experiments.Table.print ppf ~title:"Stage 1 wall clock"
    ~header:[ "artifact"; "seconds" ]
    (List.map (fun (n, s) -> [ n; Printf.sprintf "%.3f" s ]) timings);
  timings

(* ------------------------------------------------------------------ *)
(* Stage 2: Bechamel micro-benchmarks                                  *)
(* ------------------------------------------------------------------ *)

(* A self-cycling pricing-round closure: replays a fixed stream
   against a persistent mechanism (steady-state mix of exploratory and
   conservative rounds, like the long experiments). *)
let pricing_round ~dim ~radius ~epsilon ~variant ~model ~stream ~reserves =
  let mech =
    Mechanism.create
      (Mechanism.config ~variant ~epsilon ())
      (Ellipsoid.ball ~dim ~radius)
  in
  let n = Array.length stream in
  let theta = model.Model.theta in
  let t = ref 0 in
  fun () ->
    let i = !t mod n in
    incr t;
    let x = stream.(i) in
    ignore
      (Mechanism.step mech ~x ~reserve:reserves.(i)
         ~market_index:(Vec.dot x theta))

let make_tests () =
  let open Bechamel in
  (* Fig. 4 / Table I / Fig. 5(a): App 1 rounds at n = 20 and n = 100. *)
  let nq_round dim =
    let setup = Noisy_query.make ~seed:42 ~dim ~rounds:2_000 () in
    let w = Noisy_query.workload setup in
    let stream = Array.init 512 (fun t -> fst (w t)) in
    let reserves = Array.init 512 (fun t -> snd (w t)) in
    pricing_round ~dim ~radius:setup.Noisy_query.radius
      ~epsilon:setup.Noisy_query.epsilon ~variant:Mechanism.with_reserve
      ~model:setup.Noisy_query.model ~stream ~reserves
  in
  (* Fig. 5(b): App 2 round. *)
  let rental_round () =
    let setup = Rental.make ~rows:4_000 ~seed:7 () in
    let w = Rental.workload setup ~ratio:0.6 in
    let stream = Array.init 512 (fun t -> fst (w t)) in
    let reserves =
      Array.init 512 (fun t ->
          Model.index_of_price setup.Rental.model (snd (w t)))
    in
    pricing_round ~dim:setup.Rental.dim ~radius:setup.Rental.radius
      ~epsilon:setup.Rental.epsilon ~variant:Mechanism.with_reserve
      ~model:setup.Rental.model ~stream ~reserves
  in
  (* Fig. 5(c): App 3 rounds, sparse n = 1024 and its dense support. *)
  let impression =
    lazy (Impression.make ~train_rounds:30_000 ~seed:3 ~dim:1024 ~rounds:512 ())
  in
  let impression_round case =
    let setup = Lazy.force impression in
    let stream =
      match case with
      | Impression.Sparse -> setup.Impression.sparse_stream
      | Impression.Dense -> setup.Impression.dense_stream
    in
    let reserves = Array.make (Array.length stream) neg_infinity in
    pricing_round
      ~dim:(Impression.dim setup case)
      ~radius:4. ~epsilon:1. ~variant:Mechanism.pure
      ~model:(Impression.model setup case)
      ~stream ~reserves
  in
  (* Scalar-scaled sparse cut kernel in isolation: the fig5c sparse
     path's per-round shape update — an n-dim ellipsoid cut along
     ~23-nonzero directions with in-place mutation permitted, so the
     O(nnz·n + nnz²) path (plus its amortized fold-ins) is what gets
     timed. *)
  let sparse_cut_round dim =
    let rng = Rng.create 23 in
    let dirs =
      Array.init 64 (fun _ ->
          let x = Vec.zeros dim in
          for _ = 1 to 23 do
            x.(Rng.int rng dim) <- Dist.normal rng ~mean:0. ~std:1.
          done;
          x)
    in
    let ell = ref (Ellipsoid.ball ~dim ~radius:4.) in
    let t = ref 0 in
    fun () ->
      let x = dirs.(!t mod 64) in
      incr t;
      let b = Ellipsoid.bounds !ell ~x in
      match
        Ellipsoid.cut_below ~mutate:true !ell ~x ~price:b.Ellipsoid.mid
      with
      | Ellipsoid.Cut e -> ell := e
      | Ellipsoid.Too_shallow | Ellipsoid.Empty ->
          ell := Ellipsoid.ball ~dim ~radius:4.
  in
  (* Fig. 1: single-round regret curve. *)
  let fig1_curve =
    let prices = Vec.init 101 (fun i -> float_of_int i /. 10.) in
    fun () ->
      ignore (Regret.single_round_curve ~reserve:2. ~market_value:6. ~prices)
  in
  (* Lemma 8: one adversarial round (dim 2, cuts allowed). *)
  let lemma8_round =
    let theta = [| 0.; 0.4 |] in
    let model = Model.linear ~theta in
    let mech =
      Mechanism.create
        (Mechanism.config ~allow_conservative_cuts:true
           ~variant:Mechanism.with_reserve ~epsilon:1e-3 ())
        (Ellipsoid.ball ~dim:2 ~radius:1.)
    in
    let e1 = Vec.basis 2 0 in
    fun () ->
      let b = Ellipsoid.bounds (Mechanism.ellipsoid mech) ~x:e1 in
      ignore
        (Mechanism.step mech ~x:e1 ~reserve:b.Ellipsoid.mid
           ~market_index:(Vec.dot e1 model.Model.theta))
  in
  (* Theorem 3: a 1-D pricing round. *)
  let theorem3_round =
    let model = Model.linear ~theta:[| 1.2 |] in
    pricing_round ~dim:1 ~radius:2. ~epsilon:1e-4 ~variant:Mechanism.pure
      ~model
      ~stream:(Array.make 1 [| 1. |])
      ~reserves:(Array.make 1 0.)
  in
  (* Substrate kernels. *)
  let rng = Rng.create 5 in
  let a100 = Mat.scaled_identity 100 4. in
  let x100 = Dist.normal_vec rng ~dim:100 in
  let ell100 = Ellipsoid.ball ~dim:100 ~radius:2. in
  let spd20 =
    let m = Mat.init 20 20 (fun _ _ -> Dist.normal rng ~mean:0. ~std:1.) in
    let a = Mat.matmul m (Mat.transpose m) in
    for i = 0 to 19 do
      Mat.set a i i (Mat.get a i i +. 1.)
    done;
    a
  in
  let ftrl_model = Ftrl.create ~dim:1024 () in
  let ftrl_example =
    [ { Hashing.index = 3; value = 1. }; { Hashing.index = 700; value = 1. } ]
  in
  (* Tiled/pooled kernels above the n ≥ 512 threshold, and the two
     volume paths (incremental O(1) vs full Cholesky). *)
  let rng_k = Rng.create 11 in
  let a1024 = Mat.scaled_identity 1024 4. in
  let x1024 = Dist.normal_vec rng_k ~dim:1024 in
  let b1024 = Dist.normal_vec rng_k ~dim:1024 in
  let into1024 = Mat.zeros 1024 1024 in
  let m128 =
    Mat.init 128 128 (fun _ _ -> Dist.normal rng_k ~mean:0. ~std:1.)
  in
  (* fig5c_hd kernels (the "hd/" keys are critical in
     [Dm_bench.Record.critical_prefixes]): the pooled tall-skinny
     projection alone at n = 4096, and the k = 64 pricing round on
     pre-projected features from an n = 16384 market — the per-round
     cut cost the projected mechanism pays after its projection memo
     hit (same k-dim ellipsoid ops, same δ = err widening). *)
  let rng_hd = Rng.create 29 in
  let gauss_rows rng k n =
    let rows =
      Array.init k (fun _ -> Vec.normalize (Dist.normal_vec rng ~dim:n))
    in
    Mat.init k n (fun i j -> rows.(i).(j))
  in
  let p4096 = gauss_rows rng_hd 64 4_096 in
  let x4096 = Vec.normalize (Dist.normal_vec rng_hd ~dim:4_096) in
  let into64 = Vec.zeros 64 in
  let hd_cut_round =
    let n = 16_384 and k = 64 in
    let p = gauss_rows rng_hd k n in
    let theta =
      let t = Mat.project_t p (Dist.normal_vec rng_hd ~dim:k) in
      Vec.scale (1.8 /. Vec.norm2 t) t
    in
    let stream =
      Array.init 64 (fun _ ->
          Mat.project p (Vec.normalize (Dist.normal_vec rng_hd ~dim:n)))
    in
    let err = 2e-3 in
    pricing_round ~dim:k ~radius:2.
      ~epsilon:(Float.max 0.1 (2.5 *. float_of_int k *. err))
      ~variant:(Mechanism.with_uncertainty ~delta:err)
      ~model:(Model.linear ~theta:(Mat.project p theta))
      ~stream
      ~reserves:(Array.make 64 neg_infinity)
  in
  let hd_group =
    Test.make_grouped ~name:"hd"
      [
        Test.make ~name:"project n4096 k64"
          (Staged.stage (fun () ->
               ignore (Mat.project ~into:into64 p4096 x4096)));
        Test.make ~name:"cut n16384 k64" (Staged.stage hd_cut_round);
      ]
  in
  let pricing_group =
  Test.make_grouped ~name:"pricing"
    [
      Test.make ~name:"fig4+table1 round n20 reserve"
        (Staged.stage (nq_round 20));
      Test.make ~name:"fig4+fig5a round n100 reserve"
        (Staged.stage (nq_round 100));
      Test.make ~name:"fig5b round n55 log-linear"
        (Staged.stage (rental_round ()));
      Test.make ~name:"fig5c round n1024 sparse"
        (Staged.stage (impression_round Impression.Sparse));
      Test.make ~name:"fig5c round dense support"
        (Staged.stage (impression_round Impression.Dense));
      Test.make ~name:"sparse_cut n128 nnz23"
        (Staged.stage (sparse_cut_round 128));
      Test.make ~name:"sparse_cut n1024 nnz23"
        (Staged.stage (sparse_cut_round 1024));
      Test.make ~name:"fig1 regret curve" (Staged.stage fig1_curve);
      Test.make ~name:"lemma8 adversarial round" (Staged.stage lemma8_round);
      Test.make ~name:"theorem3 1d round" (Staged.stage theorem3_round);
      Test.make ~name:"kernel quad n100"
        (Staged.stage (fun () -> ignore (Mat.quad a100 x100)));
      Test.make ~name:"kernel ellipsoid cut n100"
        (Staged.stage (fun () ->
             ignore (Ellipsoid.cut_below ell100 ~x:x100 ~price:0.)));
      Test.make ~name:"kernel jacobi eigen n20"
        (Staged.stage (fun () -> ignore (Eigen.eigenvalues spd20)));
      Test.make ~name:"kernel matvec n1024 dense"
        (Staged.stage (fun () -> ignore (Mat.matvec a1024 x1024)));
      Test.make ~name:"kernel matvec_t n1024 dense"
        (Staged.stage (fun () -> ignore (Mat.matvec_t a1024 x1024)));
      Test.make ~name:"kernel matmul n128"
        (Staged.stage (fun () -> ignore (Mat.matmul m128 m128)));
      Test.make ~name:"kernel fused cut rescale n1024"
        (Staged.stage (fun () ->
             ignore
               (Mat.rank_one_rescale ~into:into1024 a1024 ~beta:(-0.001)
                  ~b:b1024 ~factor:1.0001)));
      Test.make ~name:"volume incremental cut+read n100"
        (Staged.stage (fun () ->
             match Ellipsoid.cut_below ell100 ~x:x100 ~price:0. with
             | Ellipsoid.Cut e -> ignore (Ellipsoid.log_volume_factor e)
             | Ellipsoid.Too_shallow | Ellipsoid.Empty -> ()));
      Test.make ~name:"volume cholesky log_det n100"
        (Staged.stage (fun () -> ignore (0.5 *. Chol.log_det a100)));
      Test.make ~name:"kernel ftrl learn step"
        (Staged.stage (fun () ->
             ignore (Ftrl.learn ftrl_model ftrl_example true)));
      Test.make ~name:"baselines sgd round n20"
        (Staged.stage
           (let sgd = Dm_market.Sgd_pricing.create ~dim:20 ~radius:4. () in
            let p = Dm_market.Sgd_pricing.policy sgd in
            let rng = Rng.create 77 in
            let xs =
              Array.init 64 (fun _ ->
                  Vec.normalize (Vec.map abs_float (Dist.normal_vec rng ~dim:20)))
            in
            let t = ref 0 in
            fun () ->
              let x = xs.(!t mod 64) in
              incr t;
              match p.Dm_market.Broker.decide ~x ~reserve:0.5 with
              | Some price ->
                  p.Dm_market.Broker.learn ~x ~price ~accepted:(price <= 1.)
              | None -> ()));
      Test.make ~name:"arbitrage grid check"
        (Staged.stage
           (let grid = Array.init 8 (fun i -> 0.1 *. (2. ** float_of_int i)) in
            let tariff = Dm_market.Arbitrage.inverse_variance ~c:2. in
            fun () ->
              ignore (Dm_market.Arbitrage.is_arbitrage_free_on ~grid tariff)));
    ]
  in
  (* The misspecification-robust hot path: a full decide/observe round
     carrying the drift detector, shading update and probe logic on
     top of the vanilla ellipsoid work ("stress/" keys are critical in
     [Dm_bench.Record.critical_prefixes]). *)
  let stress_group =
    Test.make_grouped ~name:"stress"
      [
        Test.make ~name:"robust round n20"
          (Staged.stage
             (let cfg =
                Mechanism.config
                  ~variant:(Mechanism.with_reserve_and_uncertainty ~delta:0.01)
                  ~epsilon:0.1 ()
              in
              let mech =
                Mechanism.create_robust
                  (Mechanism.robust_config ~explore_every:32
                     ~reinflate_radius:4. ())
                  cfg
                  (Ellipsoid.ball ~dim:20 ~radius:2.)
              in
              let rng = Rng.create 91 in
              let xs =
                Array.init 64 (fun _ ->
                    Vec.normalize
                      (Vec.map abs_float (Dist.normal_vec rng ~dim:20)))
              in
              let t = ref 0 in
              fun () ->
                let x = xs.(!t mod 64) in
                incr t;
                ignore (Mechanism.step mech ~x ~reserve:0.3 ~market_index:1.)));
        Test.make ~name:"robust snapshot n20"
          (Staged.stage
             (let cfg =
                Mechanism.config
                  ~variant:(Mechanism.with_reserve_and_uncertainty ~delta:0.01)
                  ~epsilon:0.1 ()
              in
              let mech =
                Mechanism.create_robust
                  (Mechanism.robust_config ~explore_every:32
                     ~reinflate_radius:4. ())
                  cfg
                  (Ellipsoid.ball ~dim:20 ~radius:2.)
              in
              fun () -> ignore (Mechanism.snapshot_binary mech)));
      ]
  in
  (* The auction front-end's hot kernel: one eager second-price
     clearing scan over the round's bid vector ("auction/" keys are
     critical in [Dm_bench.Record.critical_prefixes]).  Counterfactual
     full-information feedback calls this bidders x arms times per
     round, so its per-call cost is what bounds the learner drivers. *)
  let auction_group =
    let clear_round m =
      let stream =
        Dm_synth.Bids.make ~seed:61 ~dim:4 ~bidders:m ~rounds:64
          ~noise:(Dm_synth.Bids.Gaussian 0.3) ()
      in
      let reserves =
        Array.init 64 (fun t ->
            let f = Dm_synth.Bids.floor stream t in
            Array.make m (2. *. f))
      in
      let t = ref 0 in
      fun () ->
        let i = !t mod 64 in
        incr t;
        ignore
          (Dm_auction.Auction.clear
             ~bids:(Dm_synth.Bids.bids stream i)
             ~reserves:reserves.(i))
    in
    Test.make_grouped ~name:"auction"
      [
        Test.make ~name:"clear m8" (Staged.stage (clear_round 8));
        Test.make ~name:"clear m64" (Staged.stage (clear_round 64));
      ]
  in
  Test.make_grouped ~name:"" ~fmt:"%s%s"
    [ pricing_group; hd_group; stress_group; auction_group ]

let stage2 () =
  let open Bechamel in
  let open Toolkit in
  Format.fprintf ppf
    "==================================================================@.";
  Format.fprintf ppf "Stage 2: Bechamel micro-benchmarks (ns per call)@.";
  Format.fprintf ppf
    "==================================================================@.@.";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (make_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Some est
          | _ -> None
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Dm_experiments.Table.print ppf ~title:"per-call latency"
    ~header:[ "benchmark"; "ns/call" ]
    (List.map
       (fun (name, ns) ->
         [
           name;
           (match ns with Some est -> Printf.sprintf "%.1f" est | None -> "n/a");
         ])
       estimates);
  estimates

(* ------------------------------------------------------------------ *)
(* Journal-overhead stage                                              *)
(* ------------------------------------------------------------------ *)

(* Rounds/s of the longrun market with the dm_store journal off, on
   without per-record fsync, and fsync-every-record, then the
   multi-tenant fleet with its group-commit journal.  The entries join
   the stage-2 JSON under the "journal/" prefix that
   [Dm_bench.Record.critical_prefixes] watches, so a regression in the
   journal hot path flags `bench/compare.exe`. *)
let journal_stage () =
  Format.fprintf ppf
    "==================================================================@.";
  Format.fprintf ppf "Journal overhead: longrun market, dm_store sink@.";
  Format.fprintf ppf
    "==================================================================@.@.";
  let rounds = Dm_experiments.Longrun.scaled_rounds scale 400_000 in
  let entries = Dm_experiments.Recover.journal_overhead ~rounds () in
  let ns name = List.assoc name entries in
  let off = ns "journal/longrun_off" in
  let row name ns =
    [
      name;
      Printf.sprintf "%.1f" ns;
      Printf.sprintf "%.0f" (1e9 /. ns);
      (if ns <= off then "-" else Printf.sprintf "+%.1f%%" ((ns -. off) /. off *. 100.));
    ]
  in
  Dm_experiments.Table.print ppf
    ~title:
      (Printf.sprintf
         "journal overhead at %d rounds (n = %d, best of 3 interleaved passes)"
         rounds Dm_experiments.Longrun.default_dim)
    ~header:[ "mode"; "ns/round"; "rounds/s"; "vs off" ]
    (List.map (fun (name, v) -> row name v) entries);
  (* Group-commit amortization: every tenant-round is fully durable
     (like fsync-every-record above), but one group fsync covers a
     whole cross-tenant batch, so fsyncs-per-round must come out
     orders of magnitude below the solo fsync mode's 1.0. *)
  let fleet_rounds = Dm_experiments.Longrun.scaled_rounds scale 2_000 in
  let fleet_entries =
    Dm_experiments.Fleet.journal_amortization ~rounds:fleet_rounds ()
  in
  let fleet_ns = List.assoc "journal/fleet_group" fleet_entries in
  let fleet_rate =
    List.assoc "journal/fleet_fsyncs_per_kround" fleet_entries /. 1000.
  in
  let fsync_ns = ns "journal/longrun_fsync" in
  Dm_experiments.Table.print ppf
    ~title:
      (Printf.sprintf
         "fleet group commit: 64 tenants x %d rounds (n = %d), every round \
          durable"
         fleet_rounds 4)
    ~header:[ "mode"; "ns/round"; "fsyncs/round"; "vs solo fsync ns" ]
    [
      [
        "journal/longrun_fsync"; Printf.sprintf "%.1f" fsync_ns; "1.0"; "1.00x";
      ];
      [
        "journal/fleet_group";
        Printf.sprintf "%.1f" fleet_ns;
        Printf.sprintf "%.2e" fleet_rate;
        Printf.sprintf "%.0fx" (fsync_ns /. fleet_ns);
      ];
    ];
  entries @ fleet_entries

(* ------------------------------------------------------------------ *)
(* Batched-serving stage                                               *)
(* ------------------------------------------------------------------ *)

(* One B = 64 batched serving run: decide ns/round plus the two
   steady-state minor-words-per-round counters.  The keys land under
   the "serve/" and "gc/" prefixes of
   [Dm_bench.Record.critical_prefixes], so a regression in the fused
   decide kernel or an allocation leak in the round loop flags
   `bench/compare.exe`. *)
let serve_stage () =
  Format.fprintf ppf
    "==================================================================@.";
  Format.fprintf ppf "Batched serving: fused decide kernel, round-loop GC@.";
  Format.fprintf ppf
    "==================================================================@.@.";
  let entries = Dm_experiments.Serve.microbench ~scale () in
  Dm_experiments.Table.print ppf ~title:"batched serving (B = 64, 64 tenants)"
    ~header:[ "benchmark"; "value" ]
    (List.map (fun (name, v) -> [ name; Printf.sprintf "%.1f" v ]) entries);
  entries

(* ------------------------------------------------------------------ *)
(* JSON trajectory file                                                *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled emitter — the measurement record is flat enough that a
   JSON library would be pure dependency weight. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let write_json ~stamp ~stage1_timings ~stage2_estimates =
  let path = Printf.sprintf "BENCH_%s.json" stamp in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"dm-bench/1\",\n";
  out "  \"stamp\": \"%s\",\n" (json_escape stamp);
  out "  \"scale\": %s,\n" (json_float scale);
  out "  \"jobs\": %d,\n" jobs;
  out "  \"jobs_requested\": %d,\n" jobs_requested;
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"stage1_wall_clock_s\": [\n";
  List.iteri
    (fun i (name, seconds) ->
      out "    { \"artifact\": \"%s\", \"seconds\": %s }%s\n" (json_escape name)
        (json_float seconds)
        (if i < List.length stage1_timings - 1 then "," else ""))
    stage1_timings;
  out "  ],\n";
  out "  \"stage2_ns_per_call\": [\n";
  List.iteri
    (fun i (name, ns) ->
      out "    { \"benchmark\": \"%s\", \"ns\": %s }%s\n" (json_escape name)
        (match ns with Some est -> json_float est | None -> "null")
        (if i < List.length stage2_estimates - 1 then "," else ""))
    stage2_estimates;
  out "  ]\n";
  out "}\n";
  close_out oc;
  path

let () =
  let stamp =
    let t = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ" (t.Unix.tm_year + 1900)
      (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
      t.Unix.tm_sec
  in
  let stage1_timings = stage1 () in
  let stage2_estimates = stage2 () in
  let journal_estimates =
    List.map (fun (name, ns) -> (name, Some ns)) (journal_stage ())
  in
  let serve_estimates =
    List.map (fun (name, v) -> (name, Some v)) (serve_stage ())
  in
  let path =
    write_json ~stamp ~stage1_timings
      ~stage2_estimates:(stage2_estimates @ journal_estimates @ serve_estimates)
  in
  (match pool with
  | Some p ->
      Pool.set_default None;
      Pool.shutdown p
  | None -> ());
  Format.fprintf ppf "@.wrote %s@." path
