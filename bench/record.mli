(** BENCH_<stamp>.json perf-record parsing and comparison (schema
    dm-bench/1, written by [bench/main.exe]) — the library behind
    [bench/compare.exe], split out so the regression-threshold logic is
    unit-testable on fixture records. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** Minimal reader for the flat records our own emitter writes;
    [Error] carries a message with the failing byte offset. *)

type record = {
  stamp : string;
  stage1 : (string * float) list;  (** artifact, wall-clock seconds *)
  stage2 : (string * float option) list;
      (** benchmark, ns/call; [None] when the estimator yielded none *)
}

val of_string : ?path:string -> string -> (record, string) result
(** Parse a record from JSON source; [path] only decorates error
    messages.  Rejects anything whose [schema] is not ["dm-bench/1"]. *)

val load : string -> (record, string) result
(** [of_string] over a file's contents; I/O errors become [Error]. *)

val critical_prefixes : string list
(** Benchmark-name prefixes whose disappearance from a newer record
    counts as a regression (currently the [pricing/sparse_cut] kernels,
    the [journal/] overhead entries, the [hd/] projected-pricing
    kernels, the [stress/] degradation entries and the batched-serving
    [serve/] / [gc/] counters) — a refactor that silently
    drops a perf-sensitive kernel from the bench matrix should fail
    the compare, not pass it by vacuity. *)

val is_critical : string -> bool
(** Whether a stage-2 benchmark name matches {!critical_prefixes}. *)

val compare_section :
  Format.formatter ->
  title:string ->
  unit:string ->
  threshold:float ->
  ?critical:(string -> bool) ->
  (string * float option) list ->
  (string * float option) list ->
  int
(** [compare_section ppf ~title ~unit ~threshold old new] prints the
    per-benchmark delta table and returns how many entries got slower
    by more than the [threshold] fraction.  Entries present in only
    one record are listed as new/removed; removed entries are flagged
    as regressions iff [critical] (default: never) accepts their
    name.  Every column that has no measurement to show — a one-sided
    key, or a null estimate on either record — renders a stable
    ["n/a"], never a number. *)

val compare_records :
  Format.formatter -> threshold:float -> record -> record -> int
(** Both sections of two records plus the header line; returns the
    total regression count (the exit status of [compare.exe] is
    non-zero iff it is positive). *)
