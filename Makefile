# Convenience targets; dune is the real build system.

.PHONY: all build test dev bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# Pre-commit loop: full build, all eight test suites, then a 2-domain
# smoke run of two fast artifacts to catch runner regressions.
dev: build test
	dune exec bin/experiments.exe -- fig1 --jobs 2
	dune exec bin/experiments.exe -- lemma8 --jobs 2

bench:
	dune exec bench/main.exe

clean:
	dune clean
