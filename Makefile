# Convenience targets; dune is the real build system.

.PHONY: all build test dev bench ci clean

all: build

build:
	dune build @all

test:
	dune runtest

# Pre-commit loop: full build, all eleven test suites, then a 2-domain
# smoke run of two fast artifacts to catch runner regressions.
dev: build test
	dune exec bin/experiments.exe -- fig1 --jobs 2
	dune exec bin/experiments.exe -- lemma8 --jobs 2

bench:
	dune exec bench/main.exe

# What .github/workflows/ci.yml runs: build with warnings as errors,
# every test suite twice — serial and with a 4-domain default pool
# (Test_env reads BENCH_JOBS), so the byte-determinism properties are
# exercised on both code paths — then a crash-recovery smoke (kill a
# journaled run, recover, resume; all four variants must come back
# bit-identical), a fleet smoke (concurrent tenants on one shared
# group-commit journal; every tenant must match its solo run live and
# after kill/recover/resume), an adversarial stress smoke (the
# misspecification-robust mechanism must beat vanilla on every
# misspecified family and hold the stated paper-stream margin — the
# "stress summary: ... OK" line), an auction smoke (the
# full-information reserve learners must end within 5% of the
# hindsight OPT vector on every bidder panel — the "auction summary:
# ... OK" line), a fig5c_hd smoke (rank-k projected
# pricing at n up to 16384 must report finite regret and a populated
# projection-error column), a batched-serving smoke (every batched
# config bit-identical to its B = 1 reference and every
# recover+replay round-trip state-preserving — the "serve summary:
# ... OK" line) and a tiny 2-domain bench smoke that
# also writes a BENCH_*.json record exercising the perf-trajectory
# pipeline.  When a previous BENCH_*.json exists, the smoke record is
# compared against it and a flagged regression fails the target; the
# threshold is loose (+150%) because the 0.01-scale smoke timings are
# noisy — the compare mainly guards the critical sparse_cut keys
# against silent removal and catches order-of-magnitude slowdowns.
ci: build
	BENCH_JOBS=1 dune runtest --force
	BENCH_JOBS=4 dune runtest --force
	@echo "crash-recovery smoke:"; \
	dune exec bin/experiments.exe -- recover --scale 0.01 \
	  | tee /dev/stderr \
	  | grep -q "4/4 variants bit-identical" \
	  || { echo "crash-recovery smoke FAILED"; exit 1; }
	@echo "fleet group-commit smoke:"; \
	dune exec bin/experiments.exe -- fleet --scale 0.01 \
	  | tee /dev/stderr \
	  | grep -q "10/10 tenants bit-identical" \
	  || { echo "fleet smoke FAILED"; exit 1; }
	@echo "stress smoke:"; \
	dune exec bin/experiments.exe -- stress --scale 0.05 \
	  | tee /dev/stderr \
	  | grep -q "stress summary: .* OK" \
	  || { echo "stress smoke FAILED"; exit 1; }
	@echo "auction smoke:"; \
	dune exec bin/experiments.exe -- auction --scale 0.25 \
	  | tee /dev/stderr \
	  | grep -q "auction summary: .* OK" \
	  || { echo "auction smoke FAILED"; exit 1; }
	@echo "fig5c_hd smoke:"; \
	dune exec bin/experiments.exe -- fig5c_hd --scale 0.01 \
	  | tee /dev/stderr \
	  | grep -q "all regret finite and projection-error column populated" \
	  || { echo "fig5c_hd smoke FAILED"; exit 1; }
	@echo "batched-serving smoke:"; \
	dune exec bin/experiments.exe -- serve --scale 0.01 \
	  | tee /dev/stderr \
	  | grep -q "serve summary: .* OK" \
	  || { echo "serve smoke FAILED"; exit 1; }
	@prev=$$(ls -1 BENCH_*.json 2>/dev/null | tail -1); \
	BENCH_SCALE=0.01 BENCH_JOBS=2 dune exec bench/main.exe || exit $$?; \
	new=$$(ls -1 BENCH_*.json 2>/dev/null | tail -1); \
	if [ -n "$$prev" ] && [ "$$prev" != "$$new" ]; then \
	  dune exec bench/compare.exe -- --threshold 1.5 "$$prev" "$$new"; \
	else \
	  echo "no previous BENCH record; skipping perf compare"; \
	fi

clean:
	dune clean
