(** Seeded multi-bidder bid streams for the auction front-end.

    The paper's broker faces one buyer per round; the auction workload
    clears demand from [bidders] competing buyers whose valuations are
    correlated through the same hidden weight vector θ* that drives
    the posted-price experiments.  Per round [t] the stream draws a
    unit non-negative feature vector [x_t] and sets the common value
    [v_t = ⟨x_t, θ*⟩]; bidder [i]'s valuation is

    [max 0 (a_i·v_t + ξ_{i,t})]

    where [a_i] is a per-bidder static affinity drawn once from
    [1 ± affinity_spread] (how much bidder [i] structurally values
    data products) and [ξ_{i,t}] idiosyncratic noise — Gaussian, or
    the heavy-tailed Student-t law of {!Adversarial}'s stress tables.
    Bidders bid their valuations (truthful bidding is dominant in a
    second-price auction with personalized reserves).  The owners'
    compensation floor is [floor_ratio·v_t], mirroring
    {!Adversarial}'s reserve stream.

    Every table is materialized in {!make} from child streams of a
    single seed ([Dm_prob.Rng.split] in a fixed order — θ*, features,
    affinities, then one child per bidder for the noise), so a stream
    replays bit-for-bit, accessors are pure, and adding bidders never
    perturbs the tables of existing ones. *)

type noise =
  | Gaussian of float  (** i.i.d. N(0, σ²) idiosyncrasies; σ ≥ 0 *)
  | Student_t of { dof : float; scale : float }
      (** heavy-tailed idiosyncrasies via {!Dm_prob.Dist.student_t} —
          infinite variance at [dof ≤ 2] *)

type t

val make :
  ?theta_norm:float ->
  ?floor_ratio:float ->
  ?affinity_spread:float ->
  seed:int ->
  dim:int ->
  bidders:int ->
  rounds:int ->
  noise:noise ->
  unit ->
  t
(** Materialize a stream.  [theta_norm] (default √(2·dim)) scales the
    hidden non-negative anchor; [floor_ratio] (default 0.3) sets the
    owners' compensation floor to [ratio·v_t]; [affinity_spread]
    (default 0.2) bounds the per-bidder affinities to
    [1 ± spread].  Raises [Invalid_argument] unless [dim ≥ 1],
    [bidders ≥ 1], [rounds ≥ 1], [theta_norm] is finite and positive,
    [floor_ratio] is finite and ≥ 0, [affinity_spread] lies in
    [0, 1), and the noise parameters are valid ([σ ≥ 0];
    [dof > 0], [scale ≥ 0]). *)

val dim : t -> int
val bidders : t -> int
val rounds : t -> int

val theta : t -> Dm_linalg.Vec.t
(** The hidden weight vector (do not mutate). *)

val feature : t -> int -> Dm_linalg.Vec.t
(** The round's unit non-negative feature vector (do not mutate). *)

val common_value : t -> int -> float
(** [⟨feature t i, theta t⟩] — the θ*-driven component every bidder
    shares. *)

val floor : t -> int -> float
(** The owners' compensation floor at a round — the reserve no
    auction policy may undercut. *)

val bids : t -> int -> float array
(** The round's bid vector, one entry per bidder (do not mutate). *)

val affinity : t -> int -> float
(** Bidder [i]'s static affinity [a_i]. *)

val payoff_bound : t -> float
(** The largest bid anywhere in the stream — the payoff bound [h] the
    reserve learners need (auction revenue never exceeds the winning
    bid).  At least [1e-9], so it is always a valid
    {!Dm_ml.Exp_weights} bound. *)
