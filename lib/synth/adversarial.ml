module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist

type theta_path =
  | Static
  | Drift of { speed : float }
  | Switches of { boundaries : int array }

type noise =
  | Subgaussian of Dist.subgaussian
  | Student_t of { dof : float; scale : float }
  | Pareto of { alpha : float; scale : float }

type buyer = Truthful | Strategic of { margin : float; flip_prob : float }

type t = {
  dim : int;
  rounds : int;
  path : theta_path;
  buyer : buyer;
  nominal_sigma : float;
  thetas : Vec.t array;
  features : Vec.t array;
  noises : float array;
  haggles : float array;
  reserves : float array;
  values : float array;
}

let validate ~theta_norm ~reserve_ratio ~dim ~rounds ~path ~buyer =
  if dim < 1 then invalid_arg "Adversarial.make: dim must be >= 1";
  if rounds < 2 then invalid_arg "Adversarial.make: rounds must be >= 2";
  if not (Float.is_finite theta_norm) || theta_norm <= 0. then
    invalid_arg "Adversarial.make: theta_norm must be finite and positive";
  if not (Float.is_finite reserve_ratio) || reserve_ratio < 0. then
    invalid_arg "Adversarial.make: reserve_ratio must be finite and >= 0";
  (match path with
  | Static -> ()
  | Drift { speed } ->
      if not (Float.is_finite speed) || speed < 0. then
        invalid_arg "Adversarial.make: drift speed must be finite and >= 0"
  | Switches { boundaries } ->
      Array.iteri
        (fun i b ->
          if b <= 0 || b >= rounds then
            invalid_arg "Adversarial.make: switch boundary outside (0, rounds)";
          if i > 0 && boundaries.(i - 1) >= b then
            invalid_arg
              "Adversarial.make: switch boundaries must be strictly increasing")
        boundaries);
  match buyer with
  | Truthful -> ()
  | Strategic { margin; flip_prob } ->
      if not (Float.is_finite margin) || margin < 0. then
        invalid_arg "Adversarial.make: margin must be finite and >= 0";
      if
        not (Float.is_finite flip_prob) || flip_prob < 0. || flip_prob > 1.
      then invalid_arg "Adversarial.make: flip_prob outside [0,1]"

(* A random non-negative direction of norm [theta_norm] — the App 1
   tilt that keeps ⟨x, θ⟩ positive against non-negative features. *)
let anchor rng ~dim ~theta_norm =
  let rec draw () =
    let v = Vec.map Float.abs (Dist.normal_vec rng ~dim) in
    if Vec.norm2 v > 1e-12 then v else draw ()
  in
  Vec.scale theta_norm (Vec.normalize (draw ()))

let theta_table rng ~dim ~rounds ~theta_norm = function
  | Static ->
      let a = anchor rng ~dim ~theta_norm in
      Array.make rounds a
  | Drift { speed } ->
      let a = anchor rng ~dim ~theta_norm in
      let b = anchor rng ~dim ~theta_norm in
      let horizon = float_of_int (rounds - 1) in
      Array.init rounds (fun t ->
          let u = Float.min 1. (speed *. float_of_int t /. horizon) in
          let v = Vec.init dim (fun j -> ((1. -. u) *. a.(j)) +. (u *. b.(j))) in
          Vec.scale (theta_norm /. Vec.norm2 v) v)
  | Switches { boundaries } ->
      let anchors =
        Array.init
          (Array.length boundaries + 1)
          (fun _ -> anchor rng ~dim ~theta_norm)
      in
      let regime = ref 0 in
      Array.init rounds (fun t ->
          if
            !regime < Array.length boundaries && t >= boundaries.(!regime)
          then incr regime;
          anchors.(!regime))

let noise_table rng ~rounds spec =
  Array.init rounds (fun _ ->
      match spec with
      | Subgaussian sg -> Dist.subgaussian_sample rng sg
      | Student_t { dof; scale } -> Dist.student_t rng ~dof ~scale
      | Pareto { alpha; scale } -> -.Dist.pareto rng ~alpha ~scale)

let make ?theta_norm ?(reserve_ratio = 0.3) ~seed ~dim ~rounds ~path ~noise
    ~buyer () =
  let theta_norm =
    match theta_norm with
    | Some r -> r
    | None -> sqrt (2. *. float_of_int dim)
  in
  validate ~theta_norm ~reserve_ratio ~dim ~rounds ~path ~buyer;
  let root = Rng.create seed in
  (* Child streams split in a fixed order so changing one table's law
     (e.g. the noise family) never perturbs the others. *)
  let theta_rng = Rng.split root in
  let feat_rng = Rng.split root in
  let noise_rng = Rng.split root in
  let haggle_rng = Rng.split root in
  let thetas = theta_table theta_rng ~dim ~rounds ~theta_norm path in
  let features =
    Array.init rounds (fun _ ->
        let rec draw () =
          let v = Vec.map Float.abs (Dist.normal_vec feat_rng ~dim) in
          if Vec.norm2 v > 1e-12 then v else draw ()
        in
        Vec.normalize (draw ()))
  in
  let noises = noise_table noise_rng ~rounds noise in
  (* Haggle draws are materialized even for a truthful buyer, so the
     strategic and truthful variants of one seed share every other
     table bit-for-bit. *)
  let haggles = Array.init rounds (fun _ -> Rng.float haggle_rng) in
  let theta0 = thetas.(0) in
  let reserves =
    Array.init rounds (fun t -> reserve_ratio *. Vec.dot features.(t) theta0)
  in
  let values =
    Array.init rounds (fun t -> Vec.dot features.(t) thetas.(t) +. noises.(t))
  in
  let nominal_sigma =
    match noise with
    | Subgaussian sg -> Dist.subgaussian_sigma sg
    | Student_t { scale; _ } | Pareto { scale; _ } -> scale
  in
  {
    dim;
    rounds;
    path;
    buyer;
    nominal_sigma;
    thetas;
    features;
    noises;
    haggles;
    reserves;
    values;
  }

let dim t = t.dim
let rounds t = t.rounds

let check t i who =
  if i < 0 || i >= t.rounds then
    invalid_arg (Printf.sprintf "Adversarial.%s: round index out of range" who)

let theta t i =
  check t i "theta";
  t.thetas.(i)

let feature t i =
  check t i "feature";
  t.features.(i)

let reserve t i =
  check t i "reserve";
  t.reserves.(i)

let noise_term t i =
  check t i "noise_term";
  t.noises.(i)

let market_value t i =
  check t i "market_value";
  t.values.(i)

let truthful_accept t ~round ~price =
  check t round "truthful_accept";
  price <= t.values.(round)

let respond t ~round ~price =
  check t round "respond";
  let v = t.values.(round) in
  let honest = price <= v in
  match t.buyer with
  | Truthful -> honest
  | Strategic { margin; flip_prob } ->
      if Float.abs (v -. price) <= margin && t.haggles.(round) < flip_prob
      then not honest
      else honest

let nominal_sigma t = t.nominal_sigma

let switch_boundaries t =
  match t.path with
  | Switches { boundaries } -> Array.copy boundaries
  | Static | Drift _ -> [||]
