(** Adversarial valuation streams that break the paper's model.

    Every workload so far draws market values from the Eq. 4
    sub-Gaussian model around a fixed weight vector.  Following Luo,
    Sun & Liu ("Distribution-free Contextual Dynamic Pricing",
    PAPERS.md), this generator produces streams that violate each
    assumption separately: a shifting hidden vector (smooth drift or
    abrupt regime switches), heavy-tailed valuation noise (Student-t /
    Pareto in place of the sub-Gaussian draw), and a strategic buyer
    that misreports accept/reject when the posted price lands within a
    haggling margin of the true value.

    All tables are materialized in {!make} from child streams of a
    single seed ([Dm_prob.Rng.split] in a fixed order), so a stream
    replays bit-for-bit and every accessor is pure — two mechanisms
    can price the same stream without perturbing each other's draws. *)

type theta_path =
  | Static  (** one hidden vector for the whole horizon *)
  | Drift of { speed : float }
      (** the hidden vector rotates from one random non-negative
          anchor towards another: at round t it is the renormalized
          interpolation at position [min 1 (speed·t/(rounds−1))], so
          [speed = 1.] sweeps the full arc over the horizon and
          [speed = 0.] degenerates to [Static].  Requires a finite
          [speed ≥ 0]. *)
  | Switches of { boundaries : int array }
      (** piecewise-constant regimes: a fresh anchor is drawn for each
          regime and round t uses the anchor of the regime containing
          it, so the hidden vector changes exactly at each boundary
          round and nowhere else (rounds inside one regime share the
          anchor physically).  Boundaries must be strictly increasing
          and lie in (0, rounds). *)

type noise =
  | Subgaussian of Dm_prob.Dist.subgaussian
      (** the paper's own model — the control arm *)
  | Student_t of { dof : float; scale : float }
      (** symmetric heavy tails: infinite variance at [dof ≤ 2] *)
  | Pareto of { alpha : float; scale : float }
      (** skewed heavy tails: a one-sided Pareto {e shortfall}
          (minus {!Dm_prob.Dist.pareto}, so every draw pulls the
          value at least [scale] {e below} the model line — buyers
          discounting with heavy-tailed severity).  The mean is
          misspecified along with the tail, in the direction a
          posted-price floor is most exposed to; infinite variance
          at [alpha ≤ 2] *)

type buyer =
  | Truthful  (** accepts iff price ≤ market value *)
  | Strategic of { margin : float; flip_prob : float }
      (** when the posted price lands within [margin] of the true
          value, the buyer lies about the accept/reject decision with
          probability [flip_prob] (per-round haggle draws are
          materialized up front, so the lie is a deterministic
          function of (stream, round, price)); outside the margin the
          response is always truthful.  Requires a finite
          [margin ≥ 0] and [flip_prob ∈ \[0, 1\]]. *)

type t

val make :
  ?theta_norm:float ->
  ?reserve_ratio:float ->
  seed:int ->
  dim:int ->
  rounds:int ->
  path:theta_path ->
  noise:noise ->
  buyer:buyer ->
  unit ->
  t
(** Materialize a stream.  [theta_norm] (default √(2·dim), the
    paper's ‖θ‖) scales every hidden anchor; anchors and features are
    non-negative directions (the App 1 tilt) so values stay positive
    under zero noise.  [reserve_ratio] (default 0.3) sets the data
    owner's reserve to [ratio·⟨x_t, θ₀⟩] against the {e initial}
    anchor, so the reserve stream does not leak the drift.  Requires
    [dim ≥ 1], [rounds ≥ 2], a finite [theta_norm > 0] and a finite
    [reserve_ratio ≥ 0]. *)

val dim : t -> int
val rounds : t -> int

val theta : t -> int -> Dm_linalg.Vec.t
(** The hidden vector at a round (do not mutate; rounds in one regime
    share the array physically). *)

val feature : t -> int -> Dm_linalg.Vec.t
(** The buyer's unit feature vector at a round (do not mutate). *)

val reserve : t -> int -> float
(** The data owner's reserve price at a round. *)

val noise_term : t -> int -> float
(** The valuation-noise draw δ_t at a round. *)

val market_value : t -> int -> float
(** [⟨feature t i, theta t i⟩ + noise_term t i]. *)

val truthful_accept : t -> round:int -> price:float -> bool
(** Ground truth: would a truthful buyer accept this price?  (Always
    [price ≤ market_value], whatever the configured buyer.) *)

val respond : t -> round:int -> price:float -> bool
(** The buyer's {e reported} decision — equal to {!truthful_accept}
    except for a [Strategic] buyer's in-margin lies. *)

val nominal_sigma : t -> float
(** The σ a broker calibrated to the paper's model would assume: the
    sub-Gaussian σ for [Subgaussian], and the [scale] parameter for
    the heavy-tailed laws — which is exactly the misspecification the
    robust mechanism must survive. *)

val switch_boundaries : t -> int array
(** The configured regime boundaries ([[||]] for [Static]/[Drift]);
    a fresh copy. *)
