module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist

type noise = Gaussian of float | Student_t of { dof : float; scale : float }

type t = {
  dim : int;
  bidders : int;
  rounds : int;
  theta : Vec.t;
  features : Vec.t array;
  affinities : float array;
  values : float array;  (* common value per round *)
  floors : float array;
  bid_table : float array array;  (* rounds x bidders *)
  payoff_bound : float;
}

let validate ~theta_norm ~floor_ratio ~affinity_spread ~dim ~bidders ~rounds
    ~noise =
  if dim < 1 then invalid_arg "Bids.make: dim must be >= 1";
  if bidders < 1 then invalid_arg "Bids.make: bidders must be >= 1";
  if rounds < 1 then invalid_arg "Bids.make: rounds must be >= 1";
  if not (Float.is_finite theta_norm) || theta_norm <= 0. then
    invalid_arg "Bids.make: theta_norm must be finite and positive";
  if not (Float.is_finite floor_ratio) || floor_ratio < 0. then
    invalid_arg "Bids.make: floor_ratio must be finite and >= 0";
  if
    not (Float.is_finite affinity_spread)
    || affinity_spread < 0. || affinity_spread >= 1.
  then invalid_arg "Bids.make: affinity_spread outside [0, 1)";
  match noise with
  | Gaussian sigma ->
      if not (Float.is_finite sigma) || sigma < 0. then
        invalid_arg "Bids.make: Gaussian sigma must be finite and >= 0"
  | Student_t { dof; scale } ->
      if not (Float.is_finite dof) || dof <= 0. then
        invalid_arg "Bids.make: Student_t dof must be finite and positive";
      if not (Float.is_finite scale) || scale < 0. then
        invalid_arg "Bids.make: Student_t scale must be finite and >= 0"

(* The App 1 tilt shared with [Adversarial]: a random non-negative
   direction, so values stay positive against non-negative features. *)
let positive_direction rng ~dim =
  let rec draw () =
    let v = Vec.map Float.abs (Dist.normal_vec rng ~dim) in
    if Vec.norm2 v > 1e-12 then v else draw ()
  in
  Vec.normalize (draw ())

let make ?theta_norm ?(floor_ratio = 0.3) ?(affinity_spread = 0.2) ~seed ~dim
    ~bidders ~rounds ~noise () =
  let theta_norm =
    match theta_norm with
    | Some r -> r
    | None -> sqrt (2. *. float_of_int dim)
  in
  validate ~theta_norm ~floor_ratio ~affinity_spread ~dim ~bidders ~rounds
    ~noise;
  let root = Rng.create seed in
  (* Fixed split order: θ*, features, affinities, then one noise child
     per bidder — so a different bidder count reuses every earlier
     table bit-for-bit. *)
  let theta_rng = Rng.split root in
  let feat_rng = Rng.split root in
  let affinity_rng = Rng.split root in
  let noise_root = Rng.split root in
  let theta = Vec.scale theta_norm (positive_direction theta_rng ~dim) in
  let features =
    Array.init rounds (fun _ -> positive_direction feat_rng ~dim)
  in
  let affinities =
    Array.init bidders (fun _ ->
        1. +. (affinity_spread *. ((2. *. Rng.float affinity_rng) -. 1.)))
  in
  let noise_columns =
    Array.init bidders (fun _ ->
        let rng = Rng.split noise_root in
        Array.init rounds (fun _ ->
            match noise with
            | Gaussian sigma -> Dist.normal rng ~mean:0. ~std:sigma
            | Student_t { dof; scale } -> Dist.student_t rng ~dof ~scale))
  in
  let values = Array.map (fun x -> Vec.dot x theta) features in
  let floors = Array.map (fun v -> floor_ratio *. v) values in
  let bid_table =
    Array.init rounds (fun t ->
        Array.init bidders (fun i ->
            Float.max 0.
              ((affinities.(i) *. values.(t)) +. noise_columns.(i).(t))))
  in
  let payoff_bound =
    Array.fold_left
      (fun acc row -> Array.fold_left Float.max acc row)
      1e-9 bid_table
  in
  {
    dim;
    bidders;
    rounds;
    theta;
    features;
    affinities;
    values;
    floors;
    bid_table;
    payoff_bound;
  }

let dim t = t.dim
let bidders t = t.bidders
let rounds t = t.rounds
let theta t = t.theta

let check t i who =
  if i < 0 || i >= t.rounds then
    invalid_arg (Printf.sprintf "Bids.%s: round index out of range" who)

let feature t i =
  check t i "feature";
  t.features.(i)

let common_value t i =
  check t i "common_value";
  t.values.(i)

let floor t i =
  check t i "floor";
  t.floors.(i)

let bids t i =
  check t i "bids";
  t.bid_table.(i)

let affinity t i =
  if i < 0 || i >= t.bidders then
    invalid_arg "Bids.affinity: bidder index out of range";
  t.affinities.(i)

let payoff_bound t = t.payoff_bound
