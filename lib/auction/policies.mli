(** Reserve policies for the eager second-price engine.

    Three families compete on identical bid streams:

    - {!ew} / {!ftpl} — online learners over a discretized reserve
      grid, one {!Dm_ml.Exp_weights} (resp. {!Dm_ml.Ftpl}) table per
      bidder.  Under {e full information} the broker scores every grid
      point against the revealed bids each round — the counterfactual
      revenue of replacing just that bidder's reserve, all others
      fixed at their played values — and feeds whole payoff vectors to
      the learners.  Under {e bandit} feedback only the realized
      revenue is observed and each learner gets the importance-weighted
      single-arm update.
    - {!ellipsoid} — the paper's posted-price mechanism as a reserve
      policy: the index-space price it would post becomes a uniform
      reserve across bidders, and the auction's sell/no-sell outcome
      is translated back into the accept/reject bit the ellipsoid cuts
      on.  This is the bridge that puts Algorithms 1/2 on the same
      revenue axis as the reserve learners.

    All policies are deterministic given their [rng]: learners draw in
    bidder order, so a trajectory replays bit-for-bit from a seed. *)

val ew :
  ?bandit:bool ->
  ?rate:float ->
  grid:float array ->
  bidders:int ->
  payoff_bound:float ->
  horizon:int ->
  rng:Dm_prob.Rng.t ->
  unit ->
  Auction.policy
(** Per-bidder exponential-weights over [grid] (named ["ew"], or
    ["ew-bandit"] with [~bandit:true]).  [payoff_bound] must dominate
    every per-round revenue (use {!Dm_synth.Bids.payoff_bound});
    [horizon] tunes the default learning rate
    ({!Dm_ml.Exp_weights.default_rate}) and, in bandit mode, the EXP3
    uniform-mix floor.  [rate] overrides the default: the worst-case
    rate is far too timid when [payoff_bound] dwarfs the per-round
    gaps between neighbouring grid reserves, which is the normal
    regime on stochastic bid streams.  Each round consumes exactly
    [bidders] draws from [rng].  Raises [Invalid_argument] on an empty
    grid, a negative grid entry, or [bidders < 1] — learner-parameter
    errors surface from {!Dm_ml.Exp_weights.create}. *)

val ftpl :
  ?bandit:bool ->
  ?rate:float ->
  ?resamples:int ->
  grid:float array ->
  bidders:int ->
  payoff_bound:float ->
  horizon:int ->
  rng:Dm_prob.Rng.t ->
  unit ->
  Auction.policy
(** Per-bidder follow-the-perturbed-leader over [grid] (named
    ["ftpl"], or ["ftpl-bandit"]).  Full-information mode freezes one
    exponential hallucination per arm at creation and plays the
    perturbed leader deterministically; bandit mode redraws the
    perturbations every round and estimates the played arm's
    probability by Monte-Carlo over [resamples] (default 32) redraws,
    as {!Dm_ml.Ftpl.update_bandit} requires.  Validation as {!ew},
    with learner-parameter errors from {!Dm_ml.Ftpl.create}. *)

val ellipsoid :
  ?name:string ->
  bidders:int ->
  mechanism:Dm_market.Mechanism.t ->
  unit ->
  Auction.policy
(** Wrap a posted-price mechanism (default name ["ellipsoid"]): each
    round {!Dm_market.Mechanism.decide} prices the feature vector with
    the round's compensation floor as its reserve; a [Post] becomes
    the uniform reserve vector (the engine still clamps it to the
    floor), a [Skip] excludes every bidder ([+∞]).  After clearing,
    the mechanism observes [accepted = (max bid ≥ posted price)] —
    the demand signal a posted price would have received from the
    highest bidder.  Stateful and strictly alternating: raises
    [Invalid_argument] if [observe] fires without a matching [decide]
    for the same round, and on [bidders < 1]. *)
