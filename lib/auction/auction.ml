type outcome =
  | No_sale
  | Sale of { winner : int; price : float; runner_up : float option }

let clear ~bids ~reserves =
  let m = Array.length bids in
  if m = 0 then invalid_arg "Auction.clear: empty bid vector";
  if Array.length reserves <> m then
    invalid_arg "Auction.clear: bids/reserves length mismatch";
  let best = ref (-1) in
  let best_bid = ref neg_infinity in
  let second = ref neg_infinity in
  for i = 0 to m - 1 do
    let b = Array.unsafe_get bids i in
    if not (Float.is_finite b) || b < 0. then
      invalid_arg "Auction.clear: bid must be finite and non-negative";
    let r = Array.unsafe_get reserves i in
    if Float.is_nan r || r < 0. then
      invalid_arg "Auction.clear: reserve must be non-negative";
    if b >= r then
      if b > !best_bid then begin
        second := !best_bid;
        best := i;
        best_bid := b
      end
      else if b > !second then second := b
  done;
  if !best < 0 then No_sale
  else
    let runner_up =
      if Float.is_finite !second then Some !second else None
    in
    let floor_price = reserves.(!best) in
    let price =
      match runner_up with
      | Some r -> Float.max floor_price r
      | None -> floor_price
    in
    Sale { winner = !best; price; runner_up }

let revenue = function No_sale -> 0. | Sale { price; _ } -> price

let welfare ~bids = function
  | No_sale -> 0.
  | Sale { winner; _ } -> bids.(winner)

let grid ~lo ~hi ~arms =
  if arms < 1 then invalid_arg "Auction.grid: arms must be >= 1";
  if not (Float.is_finite lo && Float.is_finite hi) || lo > hi then
    invalid_arg "Auction.grid: need finite lo <= hi";
  if arms = 1 then [| lo |]
  else
    let step = (hi -. lo) /. float_of_int (arms - 1) in
    Array.init arms (fun j -> lo +. (step *. float_of_int j))

type policy = {
  name : string;
  decide : round:int -> x:Dm_linalg.Vec.t -> floor:float -> float array;
  observe :
    round:int ->
    x:Dm_linalg.Vec.t ->
    floor:float ->
    bids:float array ->
    reserves:float array ->
    outcome ->
    unit;
}

let fixed ~name ~reserves =
  let reserves = Array.copy reserves in
  {
    name;
    decide = (fun ~round:_ ~x:_ ~floor:_ -> reserves);
    observe =
      (fun ~round:_ ~x:_ ~floor:_ ~bids:_ ~reserves:_ _ -> ());
  }

type totals = { revenue : float; welfare : float; sales : int }

let check_checkpoints ~rounds cps =
  Array.iteri
    (fun i c ->
      if c < 1 || c > rounds then
        invalid_arg "Auction.run: checkpoint outside [1, rounds]";
      if i > 0 && cps.(i - 1) >= c then
        invalid_arg "Auction.run: checkpoints must be strictly increasing")
    cps

let run ?(checkpoints = [||]) policy ~rounds ~feature ~floor ~bids () =
  if rounds < 1 then invalid_arg "Auction.run: rounds must be >= 1";
  check_checkpoints ~rounds checkpoints;
  let marks = Array.make (Array.length checkpoints) 0. in
  let next_mark = ref 0 in
  let rev = ref 0. in
  let wel = ref 0. in
  let sales = ref 0 in
  for t = 0 to rounds - 1 do
    let x = feature t in
    let f = floor t in
    let b = bids t in
    let m = Array.length b in
    let raw = policy.decide ~round:t ~x ~floor:f in
    if Array.length raw <> m then
      invalid_arg "Auction.run: policy reserve vector length mismatch";
    let effective = Array.map (fun r -> Float.max f r) raw in
    let outcome = clear ~bids:b ~reserves:effective in
    rev := !rev +. revenue outcome;
    wel := !wel +. welfare ~bids:b outcome;
    (match outcome with Sale _ -> incr sales | No_sale -> ());
    policy.observe ~round:t ~x ~floor:f ~bids:b ~reserves:effective outcome;
    if
      !next_mark < Array.length checkpoints
      && t + 1 = checkpoints.(!next_mark)
    then begin
      marks.(!next_mark) <- !rev;
      incr next_mark
    end
  done;
  ({ revenue = !rev; welfare = !wel; sales = !sales }, marks)

(* One hindsight pass charging bidder [i] the reserve [reserve i]
   clamped to the round floor; the scratch buffer is reused across
   rounds (bidder counts are constant in every stream we evaluate). *)
let scan_revenue ~rounds ~floor ~bids ~reserve =
  let buf = ref [||] in
  let total = ref 0. in
  for t = 0 to rounds - 1 do
    let b = bids t in
    let m = Array.length b in
    if Array.length !buf <> m then buf := Array.make m 0.;
    let r = !buf in
    let f = floor t in
    for i = 0 to m - 1 do
      r.(i) <- Float.max f (reserve i)
    done;
    total := !total +. revenue (clear ~bids:b ~reserves:r)
  done;
  !total

let best_fixed_uniform ~grid ~rounds ~floor ~bids =
  if Array.length grid = 0 then
    invalid_arg "Auction.best_fixed_uniform: empty grid";
  if rounds < 1 then
    invalid_arg "Auction.best_fixed_uniform: rounds must be >= 1";
  let best_r = ref grid.(0) in
  let best_rev = ref neg_infinity in
  Array.iter
    (fun r ->
      let total = scan_revenue ~rounds ~floor ~bids ~reserve:(fun _ -> r) in
      if total > !best_rev then begin
        best_rev := total;
        best_r := r
      end)
    grid;
  (!best_r, !best_rev)

let best_fixed_vector ?(sweeps = 2) ~grid ~bidders ~rounds ~floor ~bids () =
  if sweeps < 0 then
    invalid_arg "Auction.best_fixed_vector: sweeps must be >= 0";
  if bidders < 1 then
    invalid_arg "Auction.best_fixed_vector: bidders must be >= 1";
  let uniform, uniform_rev = best_fixed_uniform ~grid ~rounds ~floor ~bids in
  let vector = Array.make bidders uniform in
  let best_rev = ref uniform_rev in
  let improved = ref true in
  let sweep = ref 0 in
  while !improved && !sweep < sweeps do
    improved := false;
    incr sweep;
    for i = 0 to bidders - 1 do
      let original = vector.(i) in
      let best_g = ref original in
      Array.iter
        (fun g ->
          if g <> original then begin
            vector.(i) <- g;
            let total =
              scan_revenue ~rounds ~floor ~bids ~reserve:(fun j -> vector.(j))
            in
            if total > !best_rev then begin
              best_rev := total;
              best_g := g;
              improved := true
            end
          end)
        grid;
      vector.(i) <- !best_g
    done
  done;
  (vector, !best_rev)
