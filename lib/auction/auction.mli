(** Eager second-price auctions with per-bidder personalized reserves.

    The multi-bidder front-end the ROADMAP calls for: instead of one
    posted price to one buyer, each round clears the bids of [m]
    competing buyers under a personalized reserve vector (Derakhshan,
    Golrezaei & Paes Leme, "Data-Driven Optimization of Personalized
    Reserve Prices", PAPERS.md).  The {e eager} rule filters first and
    auctions second:

    + every bidder whose bid falls below their own reserve is removed;
    + the highest surviving bid wins (ties break to the lowest bidder
      index);
    + the winner pays [max(own reserve, highest surviving competing
      bid)] — the second-price payment with the reserve as a floor.

    Eagerness matters: a high bidder filtered by a too-aggressive
    personal reserve hands the item to the {e next} survivor rather
    than cancelling the round, which is what makes per-bidder reserve
    vectors learnable coordinate-by-coordinate.

    The owners' compensation floor of the paper's data market enters
    as a common lower bound: {!run} clamps every policy's reserve
    vector to [max(floor_t, ·)] before clearing, so no policy — ever —
    sells below the privacy compensation owed to the data owners.

    Everything here is pure and deterministic; policies carry their
    own state and randomness.  [dm_auction] sits above [core]
    ([dm_market]) and below [experiments]; [core] never depends on
    it. *)

type outcome =
  | No_sale  (** every bidder fell below their personal reserve *)
  | Sale of {
      winner : int;  (** bidder index *)
      price : float;
          (** [max(winner's reserve, runner_up)] — what the winner
              pays *)
      runner_up : float option;
          (** highest surviving competing bid, if any survived *)
    }

val clear : bids:float array -> reserves:float array -> outcome
(** Clear one round.  O(m) single scan, no allocation beyond the
    result.  Bids must be finite and non-negative; reserves
    non-negative, with [+∞] allowed (bidder excluded outright) — so a
    sale price is always finite, non-negative, and at most the winning
    bid.  Raises [Invalid_argument] on empty or mismatched arrays or
    an out-of-domain entry. *)

val revenue : outcome -> float
(** The seller's revenue: the sale price, or 0 on [No_sale]. *)

val welfare : bids:float array -> outcome -> float
(** The winner's valuation (their bid, under truthful bidding), or 0
    on [No_sale]. *)

val grid : lo:float -> hi:float -> arms:int -> float array
(** [arms] evenly spaced reserve candidates from [lo] to [hi]
    inclusive (one point [lo] when [arms = 1]).  Raises
    [Invalid_argument] unless [arms ≥ 1] and [lo ≤ hi] are finite. *)

(** {1 Reserve policies} *)

type policy = {
  name : string;
  decide : round:int -> x:Dm_linalg.Vec.t -> floor:float -> float array;
      (** the per-bidder reserve vector for this round, chosen before
          the bids are revealed; entries below the floor are clamped
          up by {!run} *)
  observe :
    round:int ->
    x:Dm_linalg.Vec.t ->
    floor:float ->
    bids:float array ->
    reserves:float array ->
    outcome ->
    unit;
      (** feedback after clearing: the revealed bids, the effective
          (floor-clamped) reserves, and the outcome *)
}

val fixed : name:string -> reserves:float array -> policy
(** The constant-vector policy (feedback ignored) — evaluates a fixed
    personalized-reserve vector, e.g. the hindsight OPT; with an
    all-zero vector it degenerates to the floor-only baseline. *)

type totals = {
  revenue : float;  (** cumulative seller revenue *)
  welfare : float;  (** cumulative winner valuation *)
  sales : int;  (** rounds that cleared *)
}

val run :
  ?checkpoints:int array ->
  policy ->
  rounds:int ->
  feature:(int -> Dm_linalg.Vec.t) ->
  floor:(int -> float) ->
  bids:(int -> float array) ->
  unit ->
  totals * float array
(** Drive [policy] over a bid stream for [rounds] rounds: decide,
    clamp to the floor, clear, account, observe.  [checkpoints]
    (strictly increasing, in [1, rounds]) selects round counts at
    which the cumulative revenue is recorded; the returned array holds
    one entry per checkpoint.  Raises [Invalid_argument] on
    [rounds < 1], invalid checkpoints, or a [decide] whose vector
    length differs from the round's bid count. *)

(** {1 Hindsight benchmarks} *)

val best_fixed_uniform :
  grid:float array ->
  rounds:int ->
  floor:(int -> float) ->
  bids:(int -> float array) ->
  float * float
(** The best {e uniform} reserve in hindsight: scan every grid value
    [r], charging every bidder [max(floor_t, r)], and return
    [(r*, total revenue)] — the benchmark of SNIPPETS.md 1 & 3.
    Ties break to the lowest grid index. *)

val best_fixed_vector :
  ?sweeps:int ->
  grid:float array ->
  bidders:int ->
  rounds:int ->
  floor:(int -> float) ->
  bids:(int -> float array) ->
  unit ->
  float array * float
(** The best fixed {e personalized} reserve vector in hindsight,
    approximated by coordinate ascent over the grid: start from the
    {!best_fixed_uniform} vector, then repeatedly re-scan each
    bidder's coordinate holding the others fixed, up to [sweeps]
    (default 2) full passes or until a pass improves nothing.
    Returns [(vector, total revenue)] with revenue ≥ the uniform
    scan's.  (Exact maximization is NP-hard — Derakhshan et al. — so
    this is a lower bound on the true OPT; on streams whose bidders
    are exchangeable up to affinity it is tight in practice.) *)
