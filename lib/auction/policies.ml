module Rng = Dm_prob.Rng
module Exp_weights = Dm_ml.Exp_weights
module Ftpl = Dm_ml.Ftpl
module Mechanism = Dm_market.Mechanism

let check_grid who grid bidders =
  if Array.length grid = 0 then
    invalid_arg (Printf.sprintf "Policies.%s: empty grid" who);
  Array.iter
    (fun g ->
      if not (Float.is_finite g) || g < 0. then
        invalid_arg
          (Printf.sprintf
             "Policies.%s: grid entries must be finite and non-negative" who))
    grid;
  if bidders < 1 then
    invalid_arg (Printf.sprintf "Policies.%s: bidders must be >= 1" who)

(* Counterfactual full-information payoffs for bidder [i]: the round's
   revenue had only their reserve been [max floor g], every other
   bidder fixed at the played value. *)
let counterfactuals ~grid ~floor ~bids ~scratch ~i =
  let played = scratch.(i) in
  let payoffs =
    Array.map
      (fun g ->
        scratch.(i) <- Float.max floor g;
        Auction.revenue (Auction.clear ~bids ~reserves:scratch))
      grid
  in
  scratch.(i) <- played;
  payoffs

let ew ?(bandit = false) ?rate ~grid ~bidders ~payoff_bound ~horizon ~rng () =
  check_grid "ew" grid bidders;
  let arms = Array.length grid in
  let rate =
    match rate with
    | Some r -> r
    | None -> Exp_weights.default_rate ~arms ~horizon
  in
  let mix =
    if not bandit then 0.
    else
      Float.min 0.25
        (sqrt
           (float_of_int arms
           *. log (float_of_int arms +. 1.)
           /. float_of_int (max 1 horizon)))
  in
  let learners =
    Array.init bidders (fun _ ->
        Exp_weights.create ~mix ~arms ~payoff_bound ~rate ())
  in
  let last_arms = Array.make bidders 0 in
  let decide ~round:_ ~x:_ ~floor:_ =
    Array.init bidders (fun i ->
        let arm = Exp_weights.choose learners.(i) rng in
        last_arms.(i) <- arm;
        grid.(arm))
  in
  let observe ~round:_ ~x:_ ~floor ~bids ~reserves outcome =
    if bandit then
      let payoff = Auction.revenue outcome in
      Array.iteri
        (fun i learner ->
          Exp_weights.update_bandit learner ~arm:last_arms.(i) ~payoff)
        learners
    else
      let scratch = Array.copy reserves in
      Array.iteri
        (fun i learner ->
          let payoffs = counterfactuals ~grid ~floor ~bids ~scratch ~i in
          Exp_weights.update learner ~payoffs)
        learners
  in
  { Auction.name = (if bandit then "ew-bandit" else "ew"); decide; observe }

let ftpl ?(bandit = false) ?rate ?resamples ~grid ~bidders ~payoff_bound
    ~horizon ~rng () =
  check_grid "ftpl" grid bidders;
  let arms = Array.length grid in
  let rate =
    match rate with
    | Some r -> r
    | None -> Exp_weights.default_rate ~arms ~horizon
  in
  let learners =
    Array.init bidders (fun _ ->
        Ftpl.create ?resamples ~arms ~payoff_bound ~rate ~rng ())
  in
  let last_arms = Array.make bidders 0 in
  let decide ~round:_ ~x:_ ~floor:_ =
    Array.init bidders (fun i ->
        let arm =
          if bandit then Ftpl.choose_fresh learners.(i)
          else Ftpl.choose learners.(i)
        in
        last_arms.(i) <- arm;
        grid.(arm))
  in
  let observe ~round:_ ~x:_ ~floor ~bids ~reserves outcome =
    if bandit then
      let payoff = Auction.revenue outcome in
      Array.iteri
        (fun i learner ->
          Ftpl.update_bandit learner ~arm:last_arms.(i) ~payoff)
        learners
    else
      let scratch = Array.copy reserves in
      Array.iteri
        (fun i learner ->
          let payoffs = counterfactuals ~grid ~floor ~bids ~scratch ~i in
          Ftpl.update learner ~payoffs)
        learners
  in
  {
    Auction.name = (if bandit then "ftpl-bandit" else "ftpl");
    decide;
    observe;
  }

let ellipsoid ?(name = "ellipsoid") ~bidders ~mechanism () =
  if bidders < 1 then
    invalid_arg "Policies.ellipsoid: bidders must be >= 1";
  let pending = ref None in
  let decide ~round ~x ~floor =
    let decision = Mechanism.decide mechanism ~x ~reserve:floor in
    pending := Some (round, decision);
    match decision with
    | Mechanism.Skip -> Array.make bidders infinity
    | Mechanism.Post { price; _ } ->
        Array.make bidders (Float.max 0. price)
  in
  let observe ~round ~x ~floor:_ ~bids ~reserves:_ _outcome =
    match !pending with
    | Some (r, decision) when r = round ->
        pending := None;
        let accepted =
          match decision with
          | Mechanism.Skip -> false
          | Mechanism.Post { price; _ } ->
              Array.exists (fun b -> b >= price) bids
        in
        Mechanism.observe mechanism ~x decision ~accepted
    | _ -> invalid_arg "Policies.ellipsoid: observe without matching decide"
  in
  { Auction.name; decide; observe }
