(** Multi-tenant broker fleet: one shared group-commit journal.

    A fleet store multiplexes the event streams of many independent
    tenants (one paper-market broker each) into a single segmented
    journal of version-2 tenant-tagged records
    ({!Journal.encode_event_tagged}), with per-tenant snapshot
    directories ([tenant-%06d/]) beside the shared segments.  The
    point is fsync amortization: a solo journal pays one fsync per
    durable event (~160 µs — EXPERIMENTS.md), while the fleet seals
    and fsyncs whole cross-tenant batches, so the per-round durability
    cost divides by the batch size.

    Group-commit contract (DESIGN.md has the full statement):

    - every {!append} lands in one shared write batch; the batch is
      sealed, written and covered by {e one} fsync for {e all}
      tenants with records in it — there is no per-tenant barrier;
    - the batch commits when it reaches the [commit_bytes] write
      buffer (default 64 KiB), when the oldest unflushed append is
      [latency_appends] appends old,
      and at every {!sync}, snapshot, rotation and {!close} (the
      latency bound is counted in appends, not wall-clock time, so
      runs replay byte-identically);
    - a crash loses at most the suffix of records appended since the
      last commit — the {e same} global suffix for every tenant,
      never bytes below {!durable_offset};
    - snapshots keep the journal-first ordering of {!Store.sink}: the
      shared journal is committed before any tenant's snapshot is
      written. *)

val magic : string
(** The 8-byte shared-segment magic (["dm-grp1\n"]).  {!read_dir}
    also accepts {!Journal.magic} segments — a solo version-1 log
    reads back as a single-tenant fleet log (tenant [0]). *)

val tenant_dir : string -> int -> string
(** [tenant_dir dir tn] is the per-tenant snapshot directory
    [dir/tenant-%06d]. *)

type t

val create :
  ?segment_bytes:int ->
  ?commit_bytes:int ->
  ?latency_appends:int ->
  ?snapshot_every:int ->
  dir:string ->
  tenants:int ->
  unit ->
  t
(** Open a fleet store for [tenants ≥ 1] tenants rooted at [dir]
    (created if absent), every tenant starting at round 0.  Shared
    segments are named {!Journal.segment_name} of the {e global
    record sequence} of their first record and rotate past
    [segment_bytes] (default 64 MiB, minimum 4 KiB).
    [commit_bytes] (default 64 KiB, minimum 4 KiB) sizes the shared
    write buffer whose filling is the first commit trigger; a serving
    layer batching B large-dimension events should size it to hold the
    whole batch ([B ×] {!Journal.frame_bound}), otherwise buffer-full
    commits fire inside the batch and the latency bound never governs.
    [latency_appends] (default 4096, minimum 1) is the bounded-latency
    flush rule: a group commit runs once the oldest unflushed record
    is that many appends old.  [snapshot_every = k > 0] makes {!sink}
    snapshot a tenant after each of its rounds [t] with
    [(t+1) mod k = 0]. *)

val append : t -> tenant:int -> Dm_market.Broker.event -> unit
(** Append one tenant-tagged event to the shared batch, committing
    under the group-commit policy above.  Each tenant's events must
    arrive in strictly consecutive round order from 0, and [tenant]
    must be in range; anything else raises [Invalid_argument]. *)

val sink :
  t -> tenant:int -> mech:Dm_market.Mechanism.t -> Dm_market.Broker.event -> unit
(** [sink t ~tenant ~mech] (partially applied) is a [?journal] sink
    for that tenant's {!Dm_market.Broker.run}: {!append} plus the
    periodic per-tenant snapshots [snapshot_every] asks for. *)

val snapshot : t -> tenant:int -> Dm_market.Mechanism.t -> unit
(** Commit the shared journal (group barrier), then write the
    tenant's snapshot at its current next-round boundary. *)

val sync : t -> unit
(** Group-commit barrier: seal, write and fsync everything batched so
    far across all tenants. *)

val close : t -> unit
(** Commit and release; idempotent. *)

val abandon : t -> unit
(** Close the descriptor {e without} the final commit — the first
    half of {!simulate_crash}.  Idempotent. *)

val simulate_crash : t -> keep:float -> junk:string -> unit
(** Fault-injection hook, exactly {!Store.simulate_crash} on the
    shared active segment: abandon without the final commit, truncate
    at the durable watermark plus [keep] (clamped to [0, 1]) of the
    bytes beyond it, then append [junk] as torn-tail garbage.  Because
    the log is shared, the lost suffix is the same global suffix for
    every tenant. *)

val durable_offset : t -> int
(** Bytes of the active segment covered by the last group fsync. *)

val active_segment : t -> string
(** Path of the shared segment currently being written. *)

val appended : t -> int
(** Total records appended so far (the global sequence number of the
    next record). *)

val fsync_count : t -> int
(** Group fsyncs issued so far — the amortization numerator the bench
    stage reports against one-fsync-per-round solo journaling. *)

val next_round : t -> tenant:int -> int
(** The round the tenant's next appended event must carry. *)

type tail =
  | Clean
  | Torn of { segment : string; offset : int }
      (** the final shared segment lost a suffix from [offset] on *)

val read_dir :
  dir:string ->
  ((int * Dm_market.Broker.event) list * tail, string) result
(** Read every [(tenant, event)] record in global append order.
    Mirrors {!Journal.read_dir}: only the final segment may be torn;
    earlier corruption, a broken segment-name chain (names must equal
    the running record count), a round gap {e within any tenant's}
    subsequence, or an undecodable record yield [Error] with a
    [Fleet.read_dir: reason] message. *)

type recovery = {
  mechanism : Dm_market.Mechanism.t option;
      (** the tenant's recovered state; [None] when it has no valid
          snapshot and no [initial] was supplied *)
  next_round : int;  (** the tenant's first round not on disk *)
  snapshot_round : int;
      (** boundary the state was restored from; [0] from scratch *)
  replayed : int;  (** events applied on top of the snapshot *)
  events : Dm_market.Broker.event array;
      (** the tenant's events on disk, in round order *)
}

val recover :
  ?initial:(int -> Dm_market.Mechanism.t) ->
  dir:string ->
  tenants:int ->
  unit ->
  (recovery array * bool, string) result
(** Rebuild every tenant from [dir]: one pass over the shared log
    filtered by tenant id, then per tenant the newest valid snapshot
    plus a {!Store.replay_tail} of its rounds at or after it.
    [initial tn] supplies tenant [tn]'s round-0 state when it has no
    usable snapshot.  The [bool] reports whether a torn tail was
    discarded (shared, hence fleet-wide).  [Error] on journal
    corruption, a tenant id at or above [tenants], or any tenant
    whose replay cannot start from its snapshot round. *)

val compact :
  dir:string -> tenants:int -> (int, string) result
(** Delete the longest prefix of shared segments in which {e every}
    record is covered by its tenant's newest valid snapshot, keeping
    at least the final segment; returns how many were removed.
    Per-tenant rounds are consecutive in global order, so the deleted
    records are a round-prefix of each tenant and {!recover} after
    compaction yields the same states. *)

(** Fleet-level request batcher: accumulates pending tenant rounds so
    the serving layer can price a whole cross-tenant batch through one
    fused decide pass ([Dm_market.Mechanism.decide_batch]) and land its
    events in one journal group commit.  The flush rule mirrors the
    group-commit arming above, {e counted in scheduler rounds rather
    than appends}: a batch flushes when it reaches [capacity]
    (batch-full), or once the oldest pending request is
    [latency_rounds] rounds old (bounded latency).  Both triggers are
    deterministic functions of the round stream — no wall-clock — so
    batch boundaries, and everything downstream of them, replay
    byte-identically from a seed.  Requests come back in arrival
    order, preserving the per-tenant round order {!append} requires. *)
module Batcher : sig
  type 'req t

  val create : capacity:int -> latency_rounds:int -> 'req t
  (** Requires [capacity ≥ 1] and [latency_rounds ≥ 1].
      [capacity = 1] degenerates to unbatched serving: every [add]
      flushes its own request. *)

  val add : 'req t -> 'req -> 'req array option
  (** Enqueue one request and advance the round clock; [Some batch]
      (in arrival order) when this round armed either flush trigger. *)

  val tick : 'req t -> 'req array option
  (** Advance the round clock without a request — a scheduler round in
      which the tenant had nothing to serve — flushing when the
      bounded-latency trigger fires.  Keeps stragglers from waiting on
      an idle stream. *)

  val flush : 'req t -> 'req array option
  (** Drain whatever is pending (end of stream); [None] when empty. *)

  val pending : 'req t -> int
  (** Requests currently waiting. *)
end
