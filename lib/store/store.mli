(** Durable market state: journal + snapshots + crash recovery.

    A store is a directory holding a segmented event {!Journal} and a
    {!Snapshots} store of periodic binary mechanism images.  Attach
    {!sink} as a broker's [?journal] to persist every round; after a
    crash, {!recover} rebuilds the mechanism from the newest valid
    snapshot plus a replay of the journal tail.

    Crash-consistency contract (DESIGN.md has the full statement):

    - journal appends are buffered; segment rotation, every snapshot,
      {!sync} and {!close} flush+fsync, so a crash loses at most the
      suffix appended since the last of those barriers — which
      recovery tolerates as a torn tail;
    - the journal is fsync'd {e before} a snapshot is written, so a
      durable snapshot at round [r] implies durable journal coverage
      of rounds [< r];
    - snapshots land by atomic rename, so a crash mid-snapshot leaves
      the previous snapshot set intact;
    - CRC damage anywhere before the journal tail, or in every
      snapshot, makes recovery refuse with [Error] rather than
      misprice silently. *)

type t

val create :
  ?segment_bytes:int ->
  ?fsync_every_record:bool ->
  ?snapshot_every:int ->
  dir:string ->
  start:int ->
  unit ->
  t
(** Open a store rooted at [dir] (created if absent, one level deep)
    whose next journaled event is round [start].
    [snapshot_every = k > 0] snapshots the attached mechanism after
    every round [t] with [(t+1) mod k = 0] (default [0]: only
    explicit {!snapshot_now} calls).  [segment_bytes] and
    [fsync_every_record] pass through to
    {!Journal.create_writer}. *)

val dir : t -> string

val sink : t -> mech:Dm_market.Mechanism.t -> Dm_market.Broker.event -> unit
(** [sink t ~mech] (partially applied) is a [?journal] sink for
    {!Dm_market.Broker.run}/[run_sharded]: appends every event and
    takes the periodic snapshots of [mech] that [snapshot_every]
    asks for (journal fsync'd first — the contract above). *)

val snapshot_now : t -> Dm_market.Mechanism.t -> unit
(** Sync the journal, then snapshot [mech] at the current
    {!Journal.next_round} boundary. *)

val sync : t -> unit
(** Durability barrier: flush and fsync the active journal segment. *)

val close : t -> unit
(** Sync and release; idempotent. *)

val simulate_crash : t -> keep:float -> junk:string -> unit
(** Fault-injection hook for the recovery driver and tests: abandon
    the writer as a hard kill would (no final fsync), truncate the
    active segment at the durable watermark plus [keep] (clamped to
    [0, 1]) of the bytes written beyond it, then append the [junk]
    bytes as torn-tail garbage.  Bytes below {!Journal.durable_offset}
    are never touched — a real crash cannot un-fsync data.  The store
    counts as closed afterwards. *)

val replay_event :
  Dm_market.Mechanism.t -> Dm_market.Broker.event -> unit
(** Re-apply one journaled round to a mechanism: reconstructs the
    recorded decision ([Skip], or [Post] from [price_index]/[kind]/
    bounds) and feeds it through {!Dm_market.Mechanism.observe} with
    the recorded acceptance.  Replaying a [Baseline] event raises
    [Invalid_argument] — baselines carry no mechanism decision. *)

val replay_tail :
  Dm_market.Mechanism.t ->
  snapshot_round:int ->
  Dm_market.Broker.event array ->
  (int, string) result
(** Apply {!replay_event} to every event at or after
    [snapshot_round], in order, returning how many replayed.  The
    first [Baseline] event in range or failed replay yields [Error]
    with an unprefixed reason — {!recover} and {!Fleet.recover} add
    their own context. *)

type recovery = {
  mechanism : Dm_market.Mechanism.t option;
      (** the recovered state, positioned at [next_round]; [None]
          when the store has no valid snapshot and no [initial] was
          supplied *)
  next_round : int;  (** first round not yet on disk *)
  snapshot_round : int;  (** boundary the state was restored from;
                             [0] when replay started from scratch *)
  replayed : int;  (** journal events applied on top of the snapshot *)
  torn : bool;  (** whether a torn journal tail was discarded *)
  events : Dm_market.Broker.event array;
      (** every event on disk, in round order — the full audit trail
          (starts later than round 0 after {!compact}) *)
}

val recover :
  ?initial:(unit -> Dm_market.Mechanism.t) ->
  dir:string ->
  unit ->
  (recovery, string) result
(** Rebuild state from [dir]: read the journal (tolerating a torn
    tail in the final segment only), pick the newest snapshot that
    validates ({!Snapshots.newest}), and replay the events at or
    after its round.  With no usable snapshot, [initial] supplies
    the round-0 state to replay from (it is only called in that
    case); otherwise [mechanism] is [None] and only the audit fields
    are filled.  [Error] (with a [Module.function: reason] message)
    on pre-tail journal corruption, round gaps, a journal that
    starts after the round replay must begin from, or a
    non-replayable [Baseline] event in the replay range. *)

val compact : dir:string -> int
(** Delete journal segments entirely covered by the newest snapshot
    that validates ({!Snapshots.newest}) — those whose successor
    segment starts at or before its round — and return how many were
    removed.  The active (last) segment and all snapshots are kept,
    and corrupt snapshot files are ignored exactly as {!recover}
    ignores them, so {!recover} after compaction yields the same
    state even when the newest snapshot file is damaged. *)
