(** Durable store of periodic mechanism snapshots.

    Each snapshot is one file [snap-%012d.dms] — the number is the
    round boundary the state corresponds to (the mechanism has
    observed rounds [0 .. round-1]) — holding an 8-byte magic and one
    {!Frame}-framed {!Dm_market.Mechanism.snapshot_binary} payload.
    Writes are atomic: the bytes go to a temp file which is fsync'd
    and renamed into place (then the directory is fsync'd), so a
    crash leaves either the complete new snapshot or none — never a
    half-written one under the real name. *)

val magic : string
(** The 8-byte snapshot-file magic (["dm-snp3\n"]). *)

val file_name : int -> string
(** [snap-%012d.dms] for a round boundary. *)

val round_of : string -> int option
(** Inverse of {!file_name}; [None] for non-snapshot names. *)

val write : dir:string -> round:int -> Dm_market.Mechanism.t -> unit
(** Atomically persist the mechanism's state at [round]. *)

val rounds : dir:string -> int list
(** Round boundaries with a snapshot file present, ascending.  An
    absent directory reads as empty. *)

val load : dir:string -> round:int -> (Dm_market.Mechanism.t, string) result
(** Read and validate one snapshot (magic, CRC frame, then
    {!Dm_market.Mechanism.restore}). *)

val newest : dir:string -> (int * Dm_market.Mechanism.t) option
(** The newest snapshot that loads cleanly.  Corrupt or torn
    snapshot files are skipped in favour of older ones — recovery
    prefers a valid older state over refusing outright, since the
    journal replays the difference anyway. *)
