(* Slicing-by-16: sixteen 256-entry tables flattened into one array
   (table k for a byte processed k positions before the end of the
   16-byte chunk sits at [k * 256 + b]), so the hot loop folds sixteen
   input bytes per iteration with two 64-bit loads.  The CRC state is
   only 32 bits, so it folds into the first four bytes and the twelve
   remaining bytes contribute pure table lookups — halving the
   loop-carried dependency chain relative to slicing-by-8. *)
let table =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c)
     in
     let t = Array.make (16 * 256) 0 in
     Array.blit t0 0 t 0 256;
     for k = 1 to 15 do
       for b = 0 to 255 do
         let prev = t.(((k - 1) * 256) + b) in
         t.((k * 256) + b) <- t0.(prev land 0xff) lxor (prev lsr 8)
       done
     done;
     t)

let[@inline] fold16 t c v64 w64 =
  let lo0 = Int64.to_int (Int64.logand v64 0xFFFF_FFFFL) lxor c in
  let hi0 = Int64.to_int (Int64.shift_right_logical v64 32) in
  let lo1 = Int64.to_int (Int64.logand w64 0xFFFF_FFFFL) in
  let hi1 = Int64.to_int (Int64.shift_right_logical w64 32) in
  Array.unsafe_get t ((15 * 256) + (lo0 land 0xff))
  lxor Array.unsafe_get t ((14 * 256) + ((lo0 lsr 8) land 0xff))
  lxor Array.unsafe_get t ((13 * 256) + ((lo0 lsr 16) land 0xff))
  lxor Array.unsafe_get t ((12 * 256) + (lo0 lsr 24))
  lxor Array.unsafe_get t ((11 * 256) + (hi0 land 0xff))
  lxor Array.unsafe_get t ((10 * 256) + ((hi0 lsr 8) land 0xff))
  lxor Array.unsafe_get t ((9 * 256) + ((hi0 lsr 16) land 0xff))
  lxor Array.unsafe_get t ((8 * 256) + (hi0 lsr 24))
  lxor Array.unsafe_get t ((7 * 256) + (lo1 land 0xff))
  lxor Array.unsafe_get t ((6 * 256) + ((lo1 lsr 8) land 0xff))
  lxor Array.unsafe_get t ((5 * 256) + ((lo1 lsr 16) land 0xff))
  lxor Array.unsafe_get t ((4 * 256) + (lo1 lsr 24))
  lxor Array.unsafe_get t ((3 * 256) + (hi1 land 0xff))
  lxor Array.unsafe_get t ((2 * 256) + ((hi1 lsr 8) land 0xff))
  lxor Array.unsafe_get t ((1 * 256) + ((hi1 lsr 16) land 0xff))
  lxor Array.unsafe_get t (hi1 lsr 24)

let[@inline] fold1 t c b = Array.unsafe_get t ((c lxor b) land 0xff) lxor (c lsr 8)

let crc32 ?(init = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Frame.crc32: range out of bounds";
  let t = Lazy.force table in
  let c = ref (init lxor 0xFFFFFFFF) in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 16 do
    c := fold16 t !c (String.get_int64_le s !i) (String.get_int64_le s (!i + 8));
    i := !i + 16
  done;
  while !i < stop do
    c := fold1 t !c (Char.code (String.unsafe_get s !i));
    incr i
  done;
  !c lxor 0xFFFFFFFF

let crc32_bytes ?(init = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length s then
    invalid_arg "Frame.crc32_bytes: range out of bounds";
  let t = Lazy.force table in
  let c = ref (init lxor 0xFFFFFFFF) in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 16 do
    c := fold16 t !c (Bytes.get_int64_le s !i) (Bytes.get_int64_le s (!i + 8));
    i := !i + 16
  done;
  while !i < stop do
    c := fold1 t !c (Char.code (Bytes.unsafe_get s !i));
    incr i
  done;
  !c lxor 0xFFFFFFFF

(* One cache-hot pass over a batch of consecutive frames, filling in
   each CRC field.  The fold is the exact continuation of
   [crc32 length-bytes] then [crc32 ~init payload] with the
   intermediate finalize/init inversions cancelled, so the stored
   value is identical to the two-call chain. *)
let seal b ~stop =
  if stop < 0 || stop > Bytes.length b then
    invalid_arg "Frame.seal: range out of bounds";
  let t = Lazy.force table in
  let at = ref 0 in
  while !at < stop do
    if stop - !at < 8 then invalid_arg "Frame.seal: truncated frame";
    let len = Int32.to_int (Bytes.get_int32_le b !at) land 0xFFFF_FFFF in
    let frame_end = !at + 8 + len in
    if frame_end > stop then invalid_arg "Frame.seal: truncated frame";
    let c = ref 0xFFFFFFFF in
    for i = !at to !at + 3 do
      c := fold1 t !c (Char.code (Bytes.unsafe_get b i))
    done;
    let i = ref (!at + 8) in
    while frame_end - !i >= 16 do
      c := fold16 t !c (Bytes.get_int64_le b !i) (Bytes.get_int64_le b (!i + 8));
      i := !i + 16
    done;
    while !i < frame_end do
      c := fold1 t !c (Char.code (Bytes.unsafe_get b !i));
      incr i
    done;
    Bytes.set_int32_le b (!at + 4) (Int32.of_int (!c lxor 0xFFFFFFFF));
    at := frame_end
  done

(* The CRC runs over the length prefix then the payload: a flipped bit
   in the length field is caught by the very record it would
   re-frame. *)
let frame_crc payload =
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int (String.length payload));
  let c = crc32 (Bytes.unsafe_to_string hdr) ~pos:0 ~len:4 in
  crc32 ~init:c payload ~pos:0 ~len:(String.length payload)

let append buf payload =
  let len = String.length payload in
  Buffer.add_int32_le buf (Int32.of_int len);
  Buffer.add_int32_le buf (Int32.of_int (frame_crc payload));
  Buffer.add_string buf payload

let frame_bytes payload = 8 + String.length payload

type tail = Clean | Torn of int

let decode ?(pos = 0) src =
  let total = String.length src in
  if pos < 0 || pos > total then invalid_arg "Frame.decode: position out of bounds";
  let rec scan acc off =
    if off = total then Ok (List.rev acc, Clean)
    else if total - off < 8 then Ok (List.rev acc, Torn off)
    else
      let len = Int32.to_int (String.get_int32_le src off) land 0xFFFF_FFFF in
      if len > total - off - 8 then Ok (List.rev acc, Torn off)
      else
        let stored = Int32.to_int (String.get_int32_le src (off + 4)) land 0xFFFF_FFFF in
        let computed =
          let c = crc32 src ~pos:off ~len:4 in
          crc32 ~init:c src ~pos:(off + 8) ~len
        in
        if stored <> computed then
          if off + 8 + len = total then Ok (List.rev acc, Torn off)
          else
            Error
              (Printf.sprintf
                 "Frame.decode: CRC mismatch in the record at byte %d (before \
                  the tail)"
                 off)
        else scan (String.sub src (off + 8) len :: acc) (off + 8 + len)
  in
  scan [] pos
