module Mechanism = Dm_market.Mechanism

let magic = "dm-snp3\n"

let file_name round = Printf.sprintf "snap-%012d.dms" round

(* Any digit-run width, like [Journal.segment_start]: a round ≥ 10^12
   prints wider than the %012d pad and must still be found. *)
let round_of name =
  let n = String.length name in
  if
    n > 9
    && String.starts_with ~prefix:"snap-" name
    && String.ends_with ~suffix:".dms" name
  then
    let digits = String.sub name 5 (n - 9) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then
      int_of_string_opt digits
    else None
  else None

(* fsync on a directory fd publishes the rename itself; without it a
   crash can keep the old directory entry even though the file data
   is safe. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      let () = try Unix.fsync fd with Unix.Unix_error _ -> () in
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write ~dir ~round mech =
  if round < 0 then invalid_arg "Snapshots.write: negative round";
  let final = Filename.concat dir (file_name round) in
  let tmp = final ^ ".tmp" in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Frame.append buf (Mechanism.snapshot_binary mech);
  let oc = open_out_bin tmp in
  Buffer.output_buffer oc buf;
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  Sys.rename tmp final;
  fsync_dir dir

let rounds ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map round_of
    |> List.sort compare

let load ~dir ~round =
  let fail fmt = Printf.ksprintf (fun m -> Error ("Snapshots.load: " ^ m)) fmt in
  let path = Filename.concat dir (file_name round) in
  let name = file_name round in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> fail "%s" msg
  | content -> (
      if String.length content < String.length magic then
        fail "%s: shorter than its magic" name
      else if String.sub content 0 (String.length magic) <> magic then
        fail "%s: bad magic" name
      else
        match Frame.decode ~pos:(String.length magic) content with
        | Error msg -> fail "%s: %s" name msg
        | Ok ([ payload ], Frame.Clean) -> (
            match Mechanism.restore payload with
            | Ok m -> Ok m
            | Error msg -> fail "%s: %s" name msg)
        | Ok (_, Frame.Torn off) -> fail "%s: torn record at byte %d" name off
        | Ok (payloads, Frame.Clean) ->
            fail "%s: %d records where exactly one was expected" name
              (List.length payloads))

let newest ~dir =
  let rec pick = function
    | [] -> None
    | round :: older -> (
        match load ~dir ~round with
        | Ok m -> Some (round, m)
        | Error _ -> pick older)
  in
  pick (List.rev (rounds ~dir))
