(** Length-prefixed CRC32 record framing — the write-ahead-log layer
    under {!Journal} and {!Snapshots}.

    A record is [u32 length | u32 crc | payload], both integers
    little-endian; the CRC covers the 4 length bytes followed by the
    payload, so a corrupted length cannot silently re-frame the
    stream.  Decoding distinguishes the two damage classes a crash
    consistency contract cares about:

    - a {e torn tail} — the final record is truncated mid-frame or
      fails its CRC with nothing after it (the classic
      power-cut-mid-write) — is tolerated and reported as
      [Torn offset];
    - damage {e before} the tail — a record that fails its CRC while
      later bytes exist — is corruption, not a crash artifact, and
      decoding refuses with [Error]. *)

val crc32 : ?init:int -> string -> pos:int -> len:int -> int
(** IEEE CRC-32 (polynomial 0xEDB88320, reflected, slicing-by-16) of
    [len] bytes starting at [pos], as a non-negative int below 2³².
    Pass a previous result as [init] to continue a running checksum
    over concatenated chunks. *)

val crc32_bytes : ?init:int -> bytes -> pos:int -> len:int -> int
(** {!crc32} over a [bytes] buffer — the journal writer checksums its
    scratch frame in place without copying it to a string first. *)

val seal : bytes -> stop:int -> unit
(** Fill in the CRC field of every consecutive frame in [b.(0 ..
    stop)].  The journal writer encodes frames into its write batch
    with the CRC field left blank and seals the whole batch here in
    one pass: checksumming back to back keeps the slicing tables
    cache-hot, which measures several times faster than sealing each
    record as it is appended.  Raises [Invalid_argument] if the range
    does not hold whole frames. *)

val append : Buffer.t -> string -> unit
(** Append one framed record holding [payload]. *)

val frame_bytes : string -> int
(** On-disk size of a framed [payload]: its length plus the 8-byte
    header. *)

type tail =
  | Clean
  | Torn of int
      (** byte offset where the torn final record starts; every byte
          from there on was discarded *)

val decode : ?pos:int -> string -> (string list * tail, string) result
(** Decode consecutive records from byte [pos] (default 0) to the end
    of [src].  Returns the payloads in order plus the tail
    disposition.  [Error] (with the record's byte offset in the
    message) iff a CRC-invalid record is followed by further bytes —
    pre-tail corruption.  A record whose declared frame runs past the
    end of [src], or whose CRC fails with the frame ending exactly at
    the end, is the torn tail. *)
