module Serial = Dm_linalg.Serial
module Vec = Dm_linalg.Vec
module Broker = Dm_market.Broker

let magic = "dm-jrn1\n"

let segment_name start = Printf.sprintf "seg-%012d.dmj" start

(* Accepts any digit run, not just the %012d-padded width: a start
   offset at or above 10^12 widens the printed name to 13+ digits and
   a fixed-width parse would silently skip the segment —
   [int_of_string_opt] also rejects runs past [max_int]. *)
let segment_start name =
  let n = String.length name in
  if
    n > 8
    && String.starts_with ~prefix:"seg-" name
    && String.ends_with ~suffix:".dmj" name
  then
    let digits = String.sub name 4 (n - 8) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then
      int_of_string_opt digits
    else None
  else None

(* Event payload layout (all little-endian, version byte first):
   kind and acceptance as bytes, the float fields as raw IEEE-754 bit
   patterns, then the feature vector either dense (every coordinate)
   or as its sparse view (index/value pairs) when the density passes
   the [Vec.Sparse.of_dense] threshold — the same rule the cut
   kernels use, so long sparse-workload journals pay O(nnz) per
   round, not O(n).

   Version 2 is the multi-tenant tagging of the same layout: a 4-byte
   little-endian tenant id sits between the version byte and the round
   field, and everything after it is byte-for-byte the version-1 body.
   Solo journals keep writing version 1, so old logs and old readers
   are unaffected; the shared {!Fleet} journal writes version 2. *)
let version = 1

let tagged_version = 2

let kind_code = function
  | Broker.Skipped -> 0
  | Broker.Exploratory -> 1
  | Broker.Conservative -> 2
  | Broker.Baseline -> 3

let kind_of_code = function
  | 0 -> Some Broker.Skipped
  | 1 -> Some Broker.Exploratory
  | 2 -> Some Broker.Conservative
  | 3 -> Some Broker.Baseline
  | _ -> None

(* Upper bound on the framed size of an event: the 8-byte frame
   header, ~75 bytes of fixed fields (including the optional 4-byte
   tenant tag), and at worst 12 bytes per feature coordinate (sparse
   index + value). *)
let frame_bound (e : Broker.event) = 100 + (12 * Vec.dim e.Broker.x)

(* Encode one framed record ([length | crc | payload]) into [scratch]
   at offset [at] and return the frame size.  This is the journal hot
   path — one pass over a preallocated buffer, checksummed in place
   via {!Frame.crc32_bytes}, no intermediate copies.  The caller
   guarantees [Bytes.length scratch - at >= frame_bound e];
   [encode_event] extracts the payload from the same encoder, so the
   record layout exists exactly once.  [?tenant] switches the header
   to the tagged version-2 form. *)
let encode_frame ?tenant scratch ~at (e : Broker.event) =
  if e.Broker.t < 0 then invalid_arg "Journal.encode_event: negative round";
  let b = scratch in
  (* Fixed-offset straight-line stores for the constant-layout prefix
     — closure-free, so the hot path is just the primitive writes.
     [o] is the offset of the round field; only the header before it
     depends on the version. *)
  let o =
    match tenant with
    | None ->
        Bytes.unsafe_set b (at + 8) (Char.unsafe_chr version);
        at + 9
    | Some id ->
        if id < 0 || id > 0xFFFF_FFFF then
          invalid_arg "Journal.encode_event: tenant id outside [0, 2^32)";
        Bytes.unsafe_set b (at + 8) (Char.unsafe_chr tagged_version);
        Bytes.set_int32_le b (at + 9) (Int32.of_int id);
        at + 13
  in
  Bytes.set_int64_le b o (Int64.of_int e.Broker.t);
  Bytes.unsafe_set b (o + 8) (Char.unsafe_chr (kind_code e.Broker.kind));
  Bytes.unsafe_set b (o + 9) (Char.unsafe_chr (Bool.to_int e.Broker.accepted));
  Bytes.set_int64_le b (o + 10) (Int64.bits_of_float e.Broker.reserve);
  Bytes.set_int64_le b (o + 18) (Int64.bits_of_float e.Broker.price_index);
  Bytes.set_int64_le b (o + 26) (Int64.bits_of_float e.Broker.lower);
  Bytes.set_int64_le b (o + 34) (Int64.bits_of_float e.Broker.upper);
  let o =
    match e.Broker.posted with
    | None ->
        Bytes.unsafe_set b (o + 42) '\000';
        o + 43
    | Some p ->
        Bytes.unsafe_set b (o + 42) '\001';
        Bytes.set_int64_le b (o + 43) (Int64.bits_of_float p);
        o + 51
  in
  Bytes.set_int64_le b o (Int64.bits_of_float e.Broker.payment);
  let x = e.Broker.x in
  let dim = Vec.dim x in
  let stop =
    match Vec.Sparse.of_dense x with
    | Some sx ->
        Bytes.unsafe_set b (o + 8) '\001';
        Bytes.set_int32_le b (o + 9) (Int32.of_int dim);
        let nnz = Vec.Sparse.nnz sx in
        Bytes.set_int32_le b (o + 13) (Int32.of_int nnz);
        let idx = sx.Vec.Sparse.idx and value = sx.Vec.Sparse.value in
        let p = o + 17 in
        for k = 0 to nnz - 1 do
          Bytes.set_int32_le b
            (p + (4 * k))
            (Int32.of_int (Array.unsafe_get idx k))
        done;
        let p = p + (4 * nnz) in
        for k = 0 to nnz - 1 do
          Bytes.set_int64_le b
            (p + (8 * k))
            (Int64.bits_of_float (Array.unsafe_get value k))
        done;
        p + (8 * nnz)
    | None ->
        Bytes.unsafe_set b (o + 8) '\000';
        Bytes.set_int32_le b (o + 9) (Int32.of_int dim);
        let p = o + 13 in
        for i = 0 to dim - 1 do
          Bytes.set_int64_le b
            (p + (8 * i))
            (Int64.bits_of_float (Array.unsafe_get x i))
        done;
        p + (8 * dim)
  in
  let len = stop - at - 8 in
  Bytes.set_int32_le b at (Int32.of_int len);
  stop - at

let encode_event e =
  let scratch = Bytes.create (frame_bound e) in
  let total = encode_frame scratch ~at:0 e in
  Frame.seal scratch ~stop:total;
  Bytes.sub_string scratch 8 (total - 8)

let encode_event_tagged ~tenant e =
  let scratch = Bytes.create (frame_bound e) in
  let total = encode_frame ~tenant scratch ~at:0 e in
  Frame.seal scratch ~stop:total;
  Bytes.sub_string scratch 8 (total - 8)

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

(* Everything after the version-dependent header; shared between the
   solo and tenant-tagged decoders.  The sparse branch validates what
   the encoder guarantees — [nnz ≤ dim] and strictly increasing
   in-range indices — because a CRC-colliding corruption could
   otherwise alias distinct coordinates or write out of range. *)
let decode_body r =
  let t = Serial.take_u64 r in
  let kind_off = r.Serial.pos in
  match kind_of_code (Serial.take_u8 r) with
  | None -> fail "byte %d: bad round-kind code" kind_off
  | Some kind ->
      let accepted = Serial.take_u8 r <> 0 in
      let reserve = Serial.take_f64 r in
      let price_index = Serial.take_f64 r in
      let lower = Serial.take_f64 r in
      let upper = Serial.take_f64 r in
      let posted =
        if Serial.take_u8 r = 0 then None else Some (Serial.take_f64 r)
      in
      let payment = Serial.take_f64 r in
      let repr = Serial.take_u8 r in
      let dim_off = r.Serial.pos in
      let dim = Serial.take_u32 r in
      if dim < 1 then fail "byte %d: non-positive dimension" dim_off
      else
        let x =
          if repr = 0 then Ok (Array.init dim (fun _ -> Serial.take_f64 r))
          else begin
            let nnz_off = r.Serial.pos in
            let nnz = Serial.take_u32 r in
            if nnz > dim then
              fail "byte %d: sparse count %d exceeds dimension %d" nnz_off nnz
                dim
            else begin
              let idx_off = r.Serial.pos in
              let idx = Array.init nnz (fun _ -> Serial.take_u32 r) in
              let bad = ref (-1) in
              Array.iteri
                (fun k i ->
                  if !bad < 0 && (i >= dim || (k > 0 && i <= idx.(k - 1))) then
                    bad := k)
                idx;
              if !bad >= 0 then
                fail
                  "byte %d: sparse index %d out of range or not strictly \
                   increasing (dim %d)"
                  (idx_off + (4 * !bad))
                  idx.(!bad) dim
              else begin
                let value = Array.init nnz (fun _ -> Serial.take_f64 r) in
                let x = Vec.zeros dim in
                Array.iteri (fun k i -> x.(i) <- value.(k)) idx;
                Ok x
              end
            end
          end
        in
        Result.map
          (fun x ->
            {
              Broker.t;
              x;
              reserve;
              kind;
              price_index;
              lower;
              upper;
              posted;
              accepted;
              payment;
            })
          x

let decode_event payload =
  let r = Serial.reader payload in
  try
    let v = Serial.take_u8 r in
    if v <> version then fail "byte 0: unknown event version %d" v
    else decode_body r
  with Serial.Short off -> fail "truncated event payload at byte %d" off

let decode_event_tagged payload =
  let r = Serial.reader payload in
  try
    let v = Serial.take_u8 r in
    if v = version then Result.map (fun e -> (0, e)) (decode_body r)
    else if v = tagged_version then
      let tenant = Serial.take_u32 r in
      Result.map (fun e -> (tenant, e)) (decode_body r)
    else fail "byte 0: unknown event version %d" v
  with Serial.Short off -> fail "truncated event payload at byte %d" off

(* Rotation is the expensive barrier: it fsyncs a whole dirty segment
   (tens of milliseconds on a ~300 MB/s device), so the default
   segment is sized large enough that long-horizon runs rotate
   rarely.  Compaction granularity coarsens with it — callers that
   compact aggressively (the recovery driver, the tests) pass a small
   [segment_bytes] instead. *)
let default_segment_bytes = 64 * 1024 * 1024

let min_segment_bytes = 4 * 1024

type writer = {
  dir : string;
  segment_bytes : int;
  fsync_every_record : bool;
  mutable fd : Unix.file_descr;
  mutable path : string;
  mutable written : int;
  mutable durable : int;
  mutable next : int;
  mutable seg_events : int;
  mutable closed : bool;
  (* User-level write batch: frames accumulate in [batch] up to
     [batch_pos] and drain to the file descriptor in one write —
     per-event channel or syscall round trips cost more than the
     encoding itself (OCaml 5 takes the channel lock per call).
     Batched bytes are no less durable than channel-buffered ones:
     both are lost by a crash and both are covered by every fsync
     barrier. *)
  mutable batch : Bytes.t;
  mutable batch_pos : int;
}

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

let open_segment dir start =
  let path = Filename.concat dir (segment_name start) in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd (Bytes.of_string magic) 0 (String.length magic);
  (path, fd)

let drain w =
  if w.batch_pos > 0 then begin
    Frame.seal w.batch ~stop:w.batch_pos;
    write_all w.fd w.batch 0 w.batch_pos;
    w.batch_pos <- 0
  end

let flush_fsync w =
  drain w;
  Unix.fsync w.fd;
  w.durable <- w.written

let create_writer ?(segment_bytes = default_segment_bytes)
    ?(fsync_every_record = false) ~dir ~start () =
  if start < 0 then invalid_arg "Journal.create_writer: negative start round";
  let segment_bytes = max min_segment_bytes segment_bytes in
  let path, fd = open_segment dir start in
  {
    dir;
    segment_bytes;
    fsync_every_record;
    fd;
    path;
    written = String.length magic;
    durable = 0;
    next = start;
    seg_events = 0;
    closed = false;
    batch = Bytes.create (64 * 1024);
    batch_pos = 0;
  }

let check_open fname w =
  if w.closed then invalid_arg (fname ^ ": writer is closed")

let append w e =
  check_open "Journal.append" w;
  if e.Broker.t <> w.next then
    invalid_arg
      (Printf.sprintf "Journal.append: expected round %d, got round %d" w.next
         e.Broker.t);
  if w.written >= w.segment_bytes && w.seg_events > 0 then begin
    flush_fsync w;
    Unix.close w.fd;
    let path, fd = open_segment w.dir e.Broker.t in
    w.path <- path;
    w.fd <- fd;
    w.written <- String.length magic;
    w.durable <- 0;
    w.seg_events <- 0
  end;
  let bound = frame_bound e in
  if bound > Bytes.length w.batch - w.batch_pos then begin
    drain w;
    if bound > Bytes.length w.batch then w.batch <- Bytes.create bound
  end;
  let total = encode_frame w.batch ~at:w.batch_pos e in
  w.batch_pos <- w.batch_pos + total;
  w.written <- w.written + total;
  w.seg_events <- w.seg_events + 1;
  w.next <- w.next + 1;
  if w.fsync_every_record then flush_fsync w

let sync w =
  check_open "Journal.sync" w;
  flush_fsync w

let durable_offset w = w.durable

let active_segment w = w.path

let next_round w = w.next

let close w =
  if not w.closed then begin
    flush_fsync w;
    Unix.close w.fd;
    w.closed <- true
  end

let abandon w =
  if not w.closed then begin
    Unix.close w.fd;
    w.closed <- true
  end

type tail = Clean | Torn of { segment : string; offset : int }

let segments ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match segment_start name with
           | Some r -> Some (r, Filename.concat dir name)
           | None -> None)
    |> List.sort compare

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let read_dir ~dir =
  let fail fmt = Printf.ksprintf (fun m -> Error ("Journal.read_dir: " ^ m)) fmt in
  let segs = segments ~dir in
  let n_segs = List.length segs in
  let rec walk acc expected i = function
    | [] -> Ok (List.rev acc, Clean)
    | (start, path) :: rest -> (
        let is_last = i = n_segs - 1 in
        let name = Filename.basename path in
        let content = read_file path in
        (* A final segment whose magic is short or mangled is the
           rotation crash window: the header write itself tore, and
           nothing in the segment was ever covered by an fsync.  Treat
           the whole segment as the torn tail.  Anywhere earlier the
           same damage is corruption and refused. *)
        if
          String.length content < String.length magic
          || String.sub content 0 (String.length magic) <> magic
        then
          if is_last then Ok (List.rev acc, Torn { segment = path; offset = 0 })
          else fail "segment %s: bad or truncated magic before the final segment" name
        else
          match Frame.decode ~pos:(String.length magic) content with
          | Error msg -> fail "segment %s: %s" name msg
          | Ok (payloads, frame_tail) -> (
              let tail_info =
                match frame_tail with
                | Frame.Clean -> Ok Clean
                | Frame.Torn offset ->
                    if is_last then Ok (Torn { segment = path; offset })
                    else
                      fail
                        "segment %s: torn record at byte %d before the final \
                         segment"
                        name offset
              in
              match tail_info with
              | Error _ as e -> e
              | Ok tail -> (
                  let rec decode_all acc expected j = function
                    | [] -> Ok (acc, expected)
                    | p :: ps -> (
                        match decode_event p with
                        | Error msg -> fail "segment %s: record %d: %s" name j msg
                        | Ok e ->
                            let t = e.Broker.t in
                            if j = 0 && t <> start then
                              fail
                                "segment %s: first event is round %d but the \
                                 name says %d"
                                name t start
                            else if Option.is_some expected
                                    && t <> Option.get expected then
                              fail
                                "segment %s: round gap (expected %d, found %d)"
                                name (Option.get expected) t
                            else decode_all (e :: acc) (Some (t + 1)) (j + 1) ps)
                  in
                  match decode_all acc expected 0 payloads with
                  | Error _ as e -> e
                  | Ok (acc, expected) -> (
                      match tail with
                      | Clean -> walk acc expected (i + 1) rest
                      | Torn _ as torn ->
                          (* frame_tail torn implies is_last, so rest = [] *)
                          Ok (List.rev acc, torn))))
    )
  in
  walk [] None 0 segs
