module Broker = Dm_market.Broker
module Mechanism = Dm_market.Mechanism

type t = {
  dir : string;
  snapshot_every : int;
  writer : Journal.writer;
  mutable closed : bool;
}

let create ?segment_bytes ?fsync_every_record ?(snapshot_every = 0) ~dir ~start
    () =
  if snapshot_every < 0 then
    invalid_arg "Store.create: negative snapshot interval";
  (match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let writer =
    Journal.create_writer ?segment_bytes ?fsync_every_record ~dir ~start ()
  in
  { dir; snapshot_every; writer; closed = false }

let dir t = t.dir

let check_open fname t =
  if t.closed then invalid_arg (fname ^ ": store is closed")

let sink t ~mech e =
  check_open "Store.sink" t;
  Journal.append t.writer e;
  if t.snapshot_every > 0 && (e.Broker.t + 1) mod t.snapshot_every = 0 then begin
    (* Journal first, snapshot second: a durable snapshot at round r
       must imply durable journal coverage of every round below r,
       otherwise a crash could strand unreplayable rounds between the
       journal's end and the snapshot. *)
    Journal.sync t.writer;
    Snapshots.write ~dir:t.dir ~round:(e.Broker.t + 1) mech
  end

let snapshot_now t mech =
  check_open "Store.snapshot_now" t;
  Journal.sync t.writer;
  Snapshots.write ~dir:t.dir ~round:(Journal.next_round t.writer) mech

let sync t =
  check_open "Store.sync" t;
  Journal.sync t.writer

let close t =
  if not t.closed then begin
    Journal.close t.writer;
    t.closed <- true
  end

let simulate_crash t ~keep ~junk =
  check_open "Store.simulate_crash" t;
  let path = Journal.active_segment t.writer in
  let durable = Journal.durable_offset t.writer in
  Journal.abandon t.writer;
  t.closed <- true;
  let size = (Unix.stat path).Unix.st_size in
  let keep = Float.max 0. (Float.min 1. keep) in
  let offset =
    durable + int_of_float (keep *. float_of_int (size - durable))
  in
  let offset = min size (max durable offset) in
  if offset < size then Unix.truncate path offset;
  if junk <> "" then begin
    let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
    output_string oc junk;
    close_out oc
  end

let replay_event mech (e : Broker.event) =
  let observe decision =
    Mechanism.observe mech ~x:e.Broker.x decision ~accepted:e.Broker.accepted
  in
  match e.Broker.kind with
  | Broker.Skipped -> observe Mechanism.Skip
  | Broker.Exploratory | Broker.Conservative ->
      let kind =
        match e.Broker.kind with
        | Broker.Exploratory -> Mechanism.Exploratory
        | _ -> Mechanism.Conservative
      in
      observe
        (Mechanism.Post
           {
             price = e.Broker.price_index;
             kind;
             lower = e.Broker.lower;
             upper = e.Broker.upper;
           })
  | Broker.Baseline ->
      invalid_arg "Store.replay_event: baseline events carry no mechanism decision"

(* Replay every event at or after the snapshot boundary, stopping at
   the first non-replayable one; the caller prefixes the error with
   its own context ([Store.recover] here, per-tenant in
   [Fleet.recover]). *)
let replay_tail mech ~snapshot_round events =
  let replayed = ref 0 in
  let error = ref None in
  (try
     Array.iter
       (fun (e : Broker.event) ->
         if !error = None && e.Broker.t >= snapshot_round then begin
           if e.Broker.kind = Broker.Baseline then
             error :=
               Some
                 (Printf.sprintf
                    "round %d is a baseline event; only mechanism policies \
                     replay"
                    e.Broker.t)
           else begin
             replay_event mech e;
             incr replayed
           end
         end)
       events
   with Invalid_argument msg -> error := Some ("replay failed: " ^ msg));
  match !error with Some msg -> Error msg | None -> Ok !replayed

type recovery = {
  mechanism : Mechanism.t option;
  next_round : int;
  snapshot_round : int;
  replayed : int;
  torn : bool;
  events : Broker.event array;
}

let recover ?initial ~dir () =
  let fail fmt = Printf.ksprintf (fun m -> Error ("Store.recover: " ^ m)) fmt in
  match Journal.read_dir ~dir with
  | Error _ as e -> e
  | Ok (events, tail) -> (
      let events = Array.of_list events in
      let n = Array.length events in
      let torn = match tail with Journal.Torn _ -> true | Journal.Clean -> false in
      let first_t = if n = 0 then max_int else events.(0).Broker.t in
      let last_next = if n = 0 then 0 else events.(n - 1).Broker.t + 1 in
      let base =
        match Snapshots.newest ~dir with
        | Some (r, m) -> Ok (Some m, r)
        | None -> (
            match initial with
            | Some make -> Ok (Some (make ()), 0)
            | None -> Ok (None, 0))
      in
      match base with
      | Error _ as e -> e
      | Ok (mech, snapshot_round) -> (
          match mech with
          | None ->
              Ok
                {
                  mechanism = None;
                  next_round = max snapshot_round last_next;
                  snapshot_round;
                  replayed = 0;
                  torn;
                  events;
                }
          | Some m ->
              if n > 0 && first_t > snapshot_round && last_next > snapshot_round
              then
                fail
                  "journal starts at round %d but replay must begin at round \
                   %d (missing segments?)"
                  first_t snapshot_round
              else begin
                (* A journal that ends before the snapshot round has
                   nothing to replay — the snapshot is newer than every
                   durable event, so it wins outright. *)
                match replay_tail m ~snapshot_round events with
                | Error msg -> Error ("Store.recover: " ^ msg)
                | Ok replayed ->
                    Ok
                      {
                        mechanism = Some m;
                        next_round = max snapshot_round last_next;
                        snapshot_round;
                        replayed;
                        torn;
                        events;
                      }
              end))

(* Keyed off the newest snapshot that *validates*, not the newest file
   name: recovery falls back to an older snapshot when the newest is
   corrupt, and compaction must never delete the segments that
   fallback still needs to replay from. *)
let compact ~dir =
  match Snapshots.newest ~dir with
  | None -> 0
  | Some (newest, _) ->
      let rec go deleted = function
        | (_, path) :: ((next_start, _) :: _ as rest) when next_start <= newest
          ->
            Sys.remove path;
            go (deleted + 1) rest
        | _ -> deleted
      in
      go 0 (Journal.segments ~dir)
