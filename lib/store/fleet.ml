module Broker = Dm_market.Broker
module Mechanism = Dm_market.Mechanism

let magic = "dm-grp1\n"

let tenant_dir dir tenant =
  Filename.concat dir (Printf.sprintf "tenant-%06d" tenant)

(* Segments rotate far less often than a solo journal of the same
   per-tenant horizon (all tenants share one byte budget), so the
   default stays at the solo journal's 64 MiB. *)
let default_segment_bytes = 64 * 1024 * 1024

let min_segment_bytes = 4 * 1024

(* One group commit per write-buffer fill.  The default suits the
   paper-scale event sizes; serving layers batching large-dimension
   events size it so a whole decide batch fits in one commit (a single
   frame larger than the buffer otherwise forces a commit per append,
   defeating the latency bound). *)
let default_commit_bytes = 64 * 1024

let min_commit_bytes = 4 * 1024

type t = {
  dir : string;
  tenants : int;
  segment_bytes : int;
  latency_appends : int;
  snapshot_every : int;
  mutable fd : Unix.file_descr;
  mutable path : string;
  mutable written : int;
  mutable durable : int;
  (* Global record sequence: segment names carry the sequence number
     of their first record, the group analogue of the solo journal's
     first-event round. *)
  mutable seq : int;
  mutable seg_records : int;
  mutable batch : Bytes.t;
  mutable batch_pos : int;
  (* Appends not yet covered by a group fsync — the unit the
     bounded-latency flush rule counts in. *)
  mutable waiting : int;
  mutable fsyncs : int;
  mutable closed : bool;
  next : int array;
}

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

let open_segment dir seq =
  let path = Filename.concat dir (Journal.segment_name seq) in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  write_all fd (Bytes.of_string magic) 0 (String.length magic);
  (path, fd)

let mkdir_p dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let create ?(segment_bytes = default_segment_bytes)
    ?(commit_bytes = default_commit_bytes) ?(latency_appends = 4096)
    ?(snapshot_every = 0) ~dir ~tenants () =
  if tenants < 1 then invalid_arg "Fleet.create: need at least one tenant";
  if latency_appends < 1 then
    invalid_arg "Fleet.create: latency bound must be at least one append";
  if snapshot_every < 0 then
    invalid_arg "Fleet.create: negative snapshot interval";
  mkdir_p dir;
  let segment_bytes = max min_segment_bytes segment_bytes in
  let commit_bytes = max min_commit_bytes commit_bytes in
  let path, fd = open_segment dir 0 in
  {
    dir;
    tenants;
    segment_bytes;
    latency_appends;
    snapshot_every;
    fd;
    path;
    written = String.length magic;
    durable = 0;
    seq = 0;
    seg_records = 0;
    batch = Bytes.create commit_bytes;
    batch_pos = 0;
    waiting = 0;
    fsyncs = 0;
    closed = false;
    next = Array.make tenants 0;
  }

let check_open fname t =
  if t.closed then invalid_arg (fname ^ ": fleet store is closed")

(* The group-commit barrier: seal and write whatever every tenant has
   batched, then one fsync covers all of it.  A no-op when nothing is
   pending, so idle callers cannot inflate the fsync count. *)
let commit t =
  if t.batch_pos > 0 then begin
    Frame.seal t.batch ~stop:t.batch_pos;
    write_all t.fd t.batch 0 t.batch_pos;
    t.batch_pos <- 0
  end;
  if t.durable < t.written then begin
    Unix.fsync t.fd;
    t.fsyncs <- t.fsyncs + 1;
    t.durable <- t.written;
    t.waiting <- 0
  end

let append t ~tenant e =
  check_open "Fleet.append" t;
  if tenant < 0 || tenant >= t.tenants then
    invalid_arg
      (Printf.sprintf "Fleet.append: tenant %d outside [0, %d)" tenant
         t.tenants);
  if e.Broker.t <> t.next.(tenant) then
    invalid_arg
      (Printf.sprintf "Fleet.append: tenant %d expected round %d, got round %d"
         tenant
         t.next.(tenant)
         e.Broker.t);
  if t.written >= t.segment_bytes && t.seg_records > 0 then begin
    commit t;
    Unix.close t.fd;
    let path, fd = open_segment t.dir t.seq in
    t.path <- path;
    t.fd <- fd;
    t.written <- String.length magic;
    t.durable <- 0;
    t.seg_records <- 0
  end;
  let bound = Journal.frame_bound e in
  (* Batch-full flush: the write buffer filling is the first arm of
     the group-commit policy. *)
  if bound > Bytes.length t.batch - t.batch_pos then begin
    commit t;
    if bound > Bytes.length t.batch then t.batch <- Bytes.create bound
  end;
  let total = Journal.encode_frame ~tenant t.batch ~at:t.batch_pos e in
  t.batch_pos <- t.batch_pos + total;
  t.written <- t.written + total;
  t.seg_records <- t.seg_records + 1;
  t.seq <- t.seq + 1;
  t.next.(tenant) <- t.next.(tenant) + 1;
  t.waiting <- t.waiting + 1;
  (* Latency-bound flush: the oldest unflushed record is at most
     [latency_appends] appends old. *)
  if t.waiting >= t.latency_appends then commit t

let sync t =
  check_open "Fleet.sync" t;
  commit t

let snapshot t ~tenant mech =
  check_open "Fleet.snapshot" t;
  if tenant < 0 || tenant >= t.tenants then
    invalid_arg
      (Printf.sprintf "Fleet.snapshot: tenant %d outside [0, %d)" tenant
         t.tenants);
  (* Journal first, snapshot second — the same ordering invariant as
     {!Store.sink}: a durable snapshot at round r must imply durable
     journal coverage of every round below r, here through the shared
     group barrier. *)
  commit t;
  let td = tenant_dir t.dir tenant in
  mkdir_p td;
  Snapshots.write ~dir:td ~round:t.next.(tenant) mech

let sink t ~tenant ~mech e =
  append t ~tenant e;
  if t.snapshot_every > 0 && (e.Broker.t + 1) mod t.snapshot_every = 0 then
    snapshot t ~tenant mech

let close t =
  if not t.closed then begin
    commit t;
    Unix.close t.fd;
    t.closed <- true
  end

let abandon t =
  if not t.closed then begin
    Unix.close t.fd;
    t.closed <- true
  end

let simulate_crash t ~keep ~junk =
  check_open "Fleet.simulate_crash" t;
  let path = t.path in
  let durable = t.durable in
  abandon t;
  let size = (Unix.stat path).Unix.st_size in
  let keep = Float.max 0. (Float.min 1. keep) in
  let offset = durable + int_of_float (keep *. float_of_int (size - durable)) in
  let offset = min size (max durable offset) in
  if offset < size then Unix.truncate path offset;
  if junk <> "" then begin
    let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
    output_string oc junk;
    close_out oc
  end

let durable_offset t = t.durable

let active_segment t = t.path

let appended t = t.seq

let fsync_count t = t.fsyncs

let next_round t ~tenant =
  if tenant < 0 || tenant >= t.tenants then
    invalid_arg
      (Printf.sprintf "Fleet.next_round: tenant %d outside [0, %d)" tenant
         t.tenants);
  t.next.(tenant)

type tail = Clean | Torn of { segment : string; offset : int }

(* Per-segment read: [(first sequence number, path, tagged events)].
   Mirrors [Journal.read_dir] — torn tails tolerated only in the
   final segment — with the solo per-round chain replaced by a
   per-tenant one (each tenant's rounds must be consecutive in log
   order) and the segment-name chain checked against the running
   record count. *)
let read_segments ~dir =
  let fail fmt =
    Printf.ksprintf (fun m -> Error ("Fleet.read_dir: " ^ m)) fmt
  in
  let segs = Journal.segments ~dir in
  let n_segs = List.length segs in
  let next_round : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec walk acc seq_expected i = function
    | [] -> Ok (List.rev acc, Clean)
    | (start, path) :: rest -> (
        let is_last = i = n_segs - 1 in
        let name = Filename.basename path in
        let content = In_channel.with_open_bin path In_channel.input_all in
        (* A solo-journal magic is accepted too: a version-1 log is a
           valid single-tenant fleet log (every record reads as
           tenant 0 and its sequence numbers coincide with rounds). *)
        let magic_ok =
          String.length content >= String.length magic
          &&
          let m = String.sub content 0 (String.length magic) in
          String.equal m magic || String.equal m Journal.magic
        in
        if not magic_ok then
          if is_last then Ok (List.rev acc, Torn { segment = path; offset = 0 })
          else
            fail "segment %s: bad or truncated magic before the final segment"
              name
        else if
          match seq_expected with Some s -> start <> s | None -> false
        then
          fail
            "segment %s: starts at record %d where %d was expected (missing \
             segment?)"
            name start (Option.get seq_expected)
        else
          match Frame.decode ~pos:(String.length magic) content with
          | Error msg -> fail "segment %s: %s" name msg
          | Ok (payloads, frame_tail) -> (
              let tail_info =
                match frame_tail with
                | Frame.Clean -> Ok Clean
                | Frame.Torn offset ->
                    if is_last then Ok (Torn { segment = path; offset })
                    else
                      fail
                        "segment %s: torn record at byte %d before the final \
                         segment"
                        name offset
              in
              match tail_info with
              | Error _ as e -> e
              | Ok tail -> (
                  let rec decode_all evs j = function
                    | [] -> Ok (List.rev evs, j)
                    | p :: ps -> (
                        match Journal.decode_event_tagged p with
                        | Error msg ->
                            fail "segment %s: record %d: %s" name j msg
                        | Ok (tenant, e) -> (
                            let r = e.Broker.t in
                            match Hashtbl.find_opt next_round tenant with
                            | Some expect when r <> expect ->
                                fail
                                  "segment %s: record %d: tenant %d round gap \
                                   (expected %d, found %d)"
                                  name j tenant expect r
                            | _ ->
                                Hashtbl.replace next_round tenant (r + 1);
                                decode_all ((tenant, e) :: evs) (j + 1) ps))
                  in
                  match decode_all [] 0 payloads with
                  | Error _ as e -> e
                  | Ok (events, count) -> (
                      let acc = (start, path, events) :: acc in
                      match tail with
                      | Clean -> walk acc (Some (start + count)) (i + 1) rest
                      | Torn _ as torn ->
                          (* frame_tail torn implies is_last, so rest = [] *)
                          Ok (List.rev acc, torn)))))
  in
  walk [] None 0 segs

let read_dir ~dir =
  match read_segments ~dir with
  | Error _ as e -> e
  | Ok (segs, tail) ->
      Ok (List.concat_map (fun (_, _, evs) -> evs) segs, tail)

type recovery = {
  mechanism : Mechanism.t option;
  next_round : int;
  snapshot_round : int;
  replayed : int;
  events : Broker.event array;
}

let recover ?initial ~dir ~tenants () =
  let fail fmt =
    Printf.ksprintf (fun m -> Error ("Fleet.recover: " ^ m)) fmt
  in
  if tenants < 1 then invalid_arg "Fleet.recover: need at least one tenant";
  match read_dir ~dir with
  | Error _ as e -> e
  | Ok (tagged, tail) -> (
      let torn = match tail with Torn _ -> true | Clean -> false in
      let per = Array.make tenants [] in
      let stray = ref None in
      List.iter
        (fun (tn, e) ->
          if tn < 0 || tn >= tenants then begin
            if !stray = None then stray := Some tn
          end
          else per.(tn) <- e :: per.(tn))
        tagged;
      match !stray with
      | Some tn ->
          fail "journal names tenant %d but the fleet has %d tenant(s)" tn
            tenants
      | None -> (
          let recover_tenant tn =
            let events = Array.of_list (List.rev per.(tn)) in
            let n = Array.length events in
            let first_t = if n = 0 then max_int else events.(0).Broker.t in
            let last_next =
              if n = 0 then 0 else events.(n - 1).Broker.t + 1
            in
            let base =
              match Snapshots.newest ~dir:(tenant_dir dir tn) with
              | Some (r, m) -> (Some m, r)
              | None -> (
                  match initial with
                  | Some make -> (Some (make tn), 0)
                  | None -> (None, 0))
            in
            match base with
            | None, snapshot_round ->
                Ok
                  {
                    mechanism = None;
                    next_round = max snapshot_round last_next;
                    snapshot_round;
                    replayed = 0;
                    events;
                  }
            | Some m, snapshot_round ->
                if n > 0 && first_t > snapshot_round && last_next > snapshot_round
                then
                  fail
                    "tenant %d: journal starts at round %d but replay must \
                     begin at round %d (missing segments?)"
                    tn first_t snapshot_round
                else (
                  match Store.replay_tail m ~snapshot_round events with
                  | Error msg -> fail "tenant %d: %s" tn msg
                  | Ok replayed ->
                      Ok
                        {
                          mechanism = Some m;
                          next_round = max snapshot_round last_next;
                          snapshot_round;
                          replayed;
                          events;
                        })
          in
          let out = Array.make tenants None in
          let error = ref None in
          for tn = 0 to tenants - 1 do
            if !error = None then
              match recover_tenant tn with
              | Ok r -> out.(tn) <- Some r
              | Error msg -> error := Some msg
          done;
          match !error with
          | Some msg -> Error msg
          | None -> Ok (Array.map Option.get out, torn)))

let compact ~dir ~tenants =
  if tenants < 1 then invalid_arg "Fleet.compact: need at least one tenant";
  match read_segments ~dir with
  | Error _ as e -> e
  | Ok (segs, _tail) ->
      (* A record for tenant tn at round r is covered once tn has a
         valid snapshot at a round above r.  Per-tenant rounds are
         consecutive in global log order, so deleting a prefix of
         fully covered segments removes exactly a prefix of every
         tenant's rounds — recovery after compaction replays the same
         tail. *)
      let snaps =
        Array.init tenants (fun tn ->
            match Snapshots.newest ~dir:(tenant_dir dir tn) with
            | Some (r, _) -> r
            | None -> 0)
      in
      let covered (tn, e) =
        tn >= 0 && tn < tenants && e.Broker.t < snaps.(tn)
      in
      let rec go deleted = function
        | (_, path, events) :: (_ :: _ as rest)
          when List.for_all covered events ->
            Sys.remove path;
            go (deleted + 1) rest
        | _ -> Ok deleted
      in
      go 0 segs

module Batcher = struct
  type 'req t = {
    capacity : int;
    latency_rounds : int;
    pending : 'req Queue.t;
    mutable clock : int;
    mutable oldest : int;  (* clock value when the oldest pending request
                              was enqueued; meaningless while empty *)
  }

  let create ~capacity ~latency_rounds =
    if capacity < 1 then invalid_arg "Fleet.Batcher.create: capacity must be >= 1";
    if latency_rounds < 1 then
      invalid_arg "Fleet.Batcher.create: latency_rounds must be >= 1";
    {
      capacity;
      latency_rounds;
      pending = Queue.create ();
      clock = 0;
      oldest = 0;
    }

  let pending t = Queue.length t.pending

  let drain t =
    let b = Array.make (Queue.length t.pending) (Queue.peek t.pending) in
    let i = ref 0 in
    Queue.iter
      (fun r ->
        b.(!i) <- r;
        incr i)
      t.pending;
    Queue.clear t.pending;
    Some b

  (* The flush test mirrors [append]'s group-commit arming, counted in
     scheduler rounds instead of appends: fire on batch-full, or once
     the oldest pending request is [latency_rounds] rounds old.  Both
     inputs are deterministic functions of the round stream, so the
     flush schedule — and therefore the decide/journal batch boundaries
     — replays identically from a seed. *)
  let check t =
    if
      not (Queue.is_empty t.pending)
      && (Queue.length t.pending >= t.capacity
         || t.clock - t.oldest >= t.latency_rounds)
    then drain t
    else None

  let add t req =
    if Queue.is_empty t.pending then t.oldest <- t.clock;
    Queue.add req t.pending;
    t.clock <- t.clock + 1;
    check t

  let tick t =
    t.clock <- t.clock + 1;
    check t

  let flush t = if Queue.is_empty t.pending then None else drain t
end
