(** Append-only segmented journal of {!Dm_market.Broker.event}
    records.

    On disk a journal is a directory of segment files named
    [seg-%012d.dmj] — the number is the round of the segment's first
    event — each opening with an 8-byte magic and continuing as
    {!Frame}-framed event records.  Records never split across
    segments; the writer rotates to a fresh segment once the current
    one exceeds its byte budget.

    Durability contract: appends are buffered; {!sync} (also run on
    rotation and {!close}) flushes and fsyncs, after which every
    record appended so far survives a crash.  A crash may tear or
    lose any suffix written after the last sync — {!read_dir}
    tolerates exactly that (a torn tail in the {e final} segment) and
    refuses anything CRC-corrupt earlier, per {!Frame.decode}. *)

val magic : string
(** The 8-byte segment-file magic (["dm-jrn1\n"]). *)

val segment_name : int -> string
(** [seg-%012d.dmj] for a first-event round (wider than 12 digits when
    the round needs them). *)

val segment_start : string -> int option
(** Inverse of {!segment_name}; [None] for non-segment file names.
    Accepts any digit-run width — names above the [%012d] pad (first
    round ≥ 10¹²) must parse too, or recovery would silently skip the
    segment — and rejects runs that overflow [int]. *)

val encode_event : Dm_market.Broker.event -> string
(** Binary payload for one event.  The feature vector is stored
    through the {!Dm_linalg.Vec.Sparse} view when its density passes
    [Vec.Sparse.of_dense]'s threshold, dense otherwise; floats travel
    as IEEE-754 bit patterns, so decoding reproduces every field
    exactly (sparse storage normalizes [-0.] feature entries to
    [+0.], which every kernel treats identically — see DESIGN.md). *)

val decode_event : string -> (Dm_market.Broker.event, string) result
(** Inverse of {!encode_event}; [Error] messages carry the byte
    offset of the first problem.  A structurally valid but
    inconsistent sparse vector — duplicate, decreasing or
    out-of-range indices, or a count above the dimension — is
    refused the same way: a CRC collision must not alias
    coordinates silently.  Only version-1 (untagged) payloads
    decode here; tagged ones need {!decode_event_tagged}. *)

val encode_event_tagged :
  tenant:int -> Dm_market.Broker.event -> string
(** Version-2 payload: like {!encode_event} with a 4-byte tenant id
    (in [0, 2³²), else [Invalid_argument]) between the version byte
    and the event body — the record format of the shared
    {!Fleet} journal. *)

val decode_event_tagged :
  string -> (int * Dm_market.Broker.event, string) result
(** Decode either version: a version-2 payload yields its tenant id,
    a version-1 payload decodes as tenant [0] (so solo logs read back
    through the fleet path), and any other version byte is refused
    with the offset-bearing [Error] of {!decode_event}. *)

val frame_bound : Dm_market.Broker.event -> int
(** Upper bound on the framed ([length | crc | payload]) size of one
    event in either codec version — the scratch-buffer headroom
    {!encode_frame} requires. *)

val encode_frame : ?tenant:int -> Bytes.t -> at:int -> Dm_market.Broker.event -> int
(** [encode_frame ?tenant scratch ~at e] writes one {e unsealed}
    frame ([length | blank crc | payload]) into [scratch] at offset
    [at] and returns its size; the caller must guarantee
    [Bytes.length scratch - at >= frame_bound e] and later
    {!Frame.seal} the batch.  With [?tenant] the payload is the
    version-2 tagged form.  This is the batched-writer hot path
    shared by the solo writer and the group-commit {!Fleet}. *)

type writer

val create_writer :
  ?segment_bytes:int ->
  ?fsync_every_record:bool ->
  dir:string ->
  start:int ->
  unit ->
  writer
(** Open a writer whose first event will be round [start] (an
    existing segment of that name is truncated — its contents can
    only be a torn leftover of the same resumption point).
    [segment_bytes] (default 64 MiB, minimum 4 KiB) bounds a segment's
    size: a segment at or over budget rotates before the next append.
    [fsync_every_record] (default false) upgrades every append to a
    full flush+fsync — the slow, zero-loss mode the bench stage
    quantifies. *)

val append : writer -> Dm_market.Broker.event -> unit
(** Append one event.  Events must arrive in strictly consecutive
    round order starting at [start]; anything else raises
    [Invalid_argument] — a journal with round gaps is unreplayable. *)

val sync : writer -> unit
(** Flush buffered records and fsync the active segment. *)

val durable_offset : writer -> int
(** Bytes of the active segment guaranteed on disk (covered by the
    last fsync).  The fault-injection hook must not damage bytes
    below this watermark — a real crash cannot un-fsync them. *)

val active_segment : writer -> string
(** Path of the segment currently being written. *)

val next_round : writer -> int
(** The round the next appended event must carry. *)

val close : writer -> unit
(** Sync and close; idempotent. *)

val abandon : writer -> unit
(** Close the file descriptor {e without} the final fsync, leaving
    {!durable_offset} at its pre-abandon value — the first half of a
    simulated crash ({!Store.simulate_crash}).  Idempotent. *)

type tail =
  | Clean
  | Torn of { segment : string; offset : int }
      (** the final segment lost a suffix from [offset] on *)

val read_dir : dir:string -> (Dm_market.Broker.event list * tail, string) result
(** Read every event in round order.  Only the final segment (by
    name) may be torn; a torn or CRC-corrupt earlier segment, a bad
    magic on a non-empty file, a round gap between or within
    segments, or a segment whose first event disagrees with its file
    name all yield [Error] with a [Journal.read_dir: reason]
    message.  A final segment shorter than its 8-byte magic counts as
    torn (a crash can race segment creation).  An empty or absent
    directory reads as [([], Clean)]. *)

val segments : dir:string -> (int * string) list
(** The segment files of [dir] as [(first round, absolute path)],
    sorted by round.  Non-segment files are ignored. *)
