module Broker = Dm_market.Broker
module Mechanism = Dm_market.Mechanism
module Ellipsoid = Dm_market.Ellipsoid
module Model = Dm_market.Model
module Vec = Dm_linalg.Vec
module Pool = Dm_linalg.Pool
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Subgaussian = Dm_prob.Subgaussian

let default_dim = 16
let delta = 0.01
let full_rounds = 1_000_000
let warm_stride = 4

let scaled_rounds scale rounds =
  max 100 (int_of_float (Float.round (scale *. float_of_int rounds)))

type setup = {
  dim : int;
  rounds : int;
  model : Model.t;
  radius : float;
  epsilon : float;
  workload : int -> Vec.t * float;
  noise : int -> float;
}

(* The App-1 market shape (tilted non-negative θ* with ‖θ‖ = √(2n),
   unit-norm non-negative features, reserve q = Σᵢ x_i) but with the
   stream backed by per-round [Rng.split] children instead of a single
   sequential cursor: [workload]/[noise] replay round [t] from a copy
   of child [t], so they are pure in [t] and safe to call from any
   domain — the contract [Broker.run_sharded] needs to materialize
   shard prefixes in parallel. *)
let make_setup ?(dim = default_dim) ~seed ~rounds () =
  let root = Rng.create seed in
  let theta_rng = Rng.split root in
  let workload_root = Rng.split root in
  let noise_root = Rng.split root in
  let theta =
    let markup = Vec.map abs_float (Dist.normal_vec theta_rng ~dim) in
    let tilted = Vec.init dim (fun i -> 1. +. (3. *. markup.(i))) in
    Vec.scale (sqrt (2. *. float_of_int dim)) (Vec.normalize tilted)
  in
  let model = Model.linear ~theta in
  let radius = 2. *. sqrt (float_of_int dim) in
  let epsilon = float_of_int (dim * dim) /. float_of_int rounds in
  let sigma = Subgaussian.sigma_for_buffer ~delta ~horizon:rounds () in
  let workload_streams = Array.init rounds (fun _ -> Rng.split workload_root) in
  let noise_streams = Array.init rounds (fun _ -> Rng.split noise_root) in
  let workload t =
    let rng = Rng.copy workload_streams.(t) in
    let x = Vec.normalize (Vec.map abs_float (Dist.normal_vec rng ~dim)) in
    (x, Array.fold_left ( +. ) 0. x)
  in
  let noise t =
    Dist.normal (Rng.copy noise_streams.(t)) ~mean:0. ~std:sigma
  in
  { dim; rounds; model; radius; epsilon; workload; noise }

(* Same ε floor as [Noisy_query.mechanism]: below 2.5nδ the buffered
   cuts stall (EXPERIMENTS.md), so the uncertainty variants would
   explore forever at a stuck width. *)
let mechanism setup variant =
  let epsilon =
    Float.max setup.epsilon
      (2.5 *. float_of_int setup.dim *. variant.Mechanism.delta)
  in
  Mechanism.create
    (Mechanism.config ~variant ~epsilon ())
    (Ellipsoid.ball ~dim:setup.dim ~radius:setup.radius)

let variants =
  [
    ("pure", Mechanism.pure);
    ("uncertainty", Mechanism.with_uncertainty ~delta);
    ("reserve", Mechanism.with_reserve);
    ("reserve+unc", Mechanism.with_reserve_and_uncertainty ~delta);
  ]

let bits = Int64.bits_of_float

let floats_identical a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if bits x <> bits b.(i) then ok := false) a;
      !ok)

let series_identical (a : Broker.series) (b : Broker.series) =
  a.Broker.checkpoints = b.Broker.checkpoints
  && floats_identical a.Broker.cumulative_regret b.Broker.cumulative_regret
  && floats_identical a.Broker.cumulative_value b.Broker.cumulative_value
  && floats_identical a.Broker.regret_ratio b.Broker.regret_ratio

let max_ratio_drift (a : Broker.series) (b : Broker.series) =
  let worst = ref 0. in
  Array.iteri
    (fun i r ->
      let d = Float.abs (r -. b.Broker.regret_ratio.(i)) in
      if d > !worst then worst := d)
    a.Broker.regret_ratio;
  !worst

let report ?pool ?(scale = 1.) ?(seed = 42) ?(jobs = 1) ppf =
  let rounds = scaled_rounds scale full_rounds in
  let setup = make_setup ~seed ~rounds () in
  let go pool =
    let run_seq variant =
      Broker.run
        ~policy:(Broker.Ellipsoid_pricing (mechanism setup variant))
        ~model:setup.model ~noise:setup.noise ~workload:setup.workload
        ~rounds ()
    in
    let run_shard mode variant =
      Broker.run_sharded ?pool ~mode
        ~policy:(Broker.Ellipsoid_pricing (mechanism setup variant))
        ~model:setup.model ~noise:setup.noise ~workload:setup.workload
        ~rounds ()
    in
    let cells =
      List.map
        (fun (name, variant) ->
          let reference = run_seq variant in
          let exact = run_shard Broker.Exact variant in
          let warm =
            run_shard (Broker.Warm_start { stride = warm_stride }) variant
          in
          (name, reference, exact, warm))
        variants
    in
    let rows =
      List.map
        (fun (name, reference, exact, warm) ->
          [
            name;
            Table.fmt_g reference.Broker.total_regret;
            Table.fmt_pct reference.Broker.regret_ratio;
            (if
               series_identical reference.Broker.series exact.Broker.series
               && bits reference.Broker.total_regret
                  = bits exact.Broker.total_regret
               && bits reference.Broker.total_value
                  = bits exact.Broker.total_value
             then "bit-identical"
             else "MISMATCH");
            Printf.sprintf "%.2e"
              (max_ratio_drift reference.Broker.series warm.Broker.series);
            string_of_int reference.Broker.exploratory;
            string_of_int reference.Broker.skipped;
          ])
        cells
    in
    Table.print ppf
      ~title:
        (Printf.sprintf
           "Long horizon (n = %d, T = %d): sharded broker vs sequential \
            reference; exact merge verified per variant, warm-start \
            (stride %d) drift is max |Δ regret ratio|"
           setup.dim rounds warm_stride)
      ~header:
        [
          "variant"; "regret"; "ratio"; "exact merge"; "warm drift"; "expl";
          "skip";
        ]
      rows;
    List.iter
      (fun (name, reference, _, _) ->
        Format.fprintf ppf "%-12s %s@." name
          (Table.sparkline reference.Broker.series.Broker.regret_ratio))
      cells;
    let verified =
      List.length
        (List.filter
           (fun (_, reference, exact, _) ->
             series_identical reference.Broker.series exact.Broker.series)
           cells)
    in
    Format.fprintf ppf
      "Merge verification: %d/%d variants bit-identical to the sequential \
       reference in exact mode.@.@."
      verified (List.length variants)
  in
  match pool with
  | Some _ -> go pool
  | None -> (
      match Pool.get_default () with
      | Some _ -> go None (* run_sharded picks the default pool up *)
      | None when jobs > 1 -> Pool.with_pool ~jobs (fun p -> go (Some p))
      | None -> go None)
