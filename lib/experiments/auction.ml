module Bids = Dm_synth.Bids
module Rng = Dm_prob.Rng
module Engine = Dm_auction.Auction
module Policies = Dm_auction.Policies
module Ellipsoid = Dm_market.Ellipsoid
module Mechanism = Dm_market.Mechanism

(* Dimension 4 keeps the wrapped ellipsoid's exploratory budget
   (~20n²·log rounds) inside the horizon; the bidder axis, not the
   feature axis, is what this artifact sweeps. *)
let dim = 4
let delta = 0.01

(* Wide dispersion — σ a third of the typical common value, affinities
   in 1 ± 0.5 — is what makes reserves matter: under near-identical
   bids the runner-up already extracts the winner's value and every
   policy ties the floor-only baseline. *)
let sigma = 0.3
let affinity_spread = 0.5
let grid_arms = 17
let bidder_panels = [| 2; 8; 32 |]
let cell_seed seed salt = (seed * 1_000_003) + (salt * 7_919)

(* Policy slots; [n_policies] cells per panel plus one OPT cell. *)
let n_policies = 6

let policy_name = function
  | 0 -> "floor-only"
  | 1 -> "ew"
  | 2 -> "ew-bandit"
  | 3 -> "ftpl"
  | 4 -> "ftpl-bandit"
  | 5 -> "ellipsoid"
  | _ -> invalid_arg "Auction.policy_name: unknown slot"

type spec = { panel : int; slot : int option }
(* [None] is the panel's OPT scan. *)

type cell = {
  spec : spec;
  name : string;
  marks : float array;  (* cumulative revenue at T/4, T/2, T *)
  welfare : float;
  sales : int;
}

let stream ~seed ~rounds ~panel =
  let bidders = bidder_panels.(panel) in
  Bids.make ~affinity_spread
    ~seed:(cell_seed seed panel)
    ~dim ~bidders ~rounds ~noise:(Bids.Gaussian sigma) ()

let reserve_grid s =
  Engine.grid ~lo:0. ~hi:(Bids.payoff_bound s) ~arms:grid_arms

let checkpoints rounds = [| rounds / 4; rounds / 2; rounds |]

(* The worst-case √(log K / T) rate is calibrated to payoff gaps of
   order the bound; on these streams the gap between neighbouring grid
   reserves is ~2% of it, so the full-information learners need a
   proportionally hotter rate to concentrate within the horizon
   (Policies doc).  The bandit variants keep the default: their
   importance-weighted estimates are payoff_bound/p-sized spikes, and
   a hot rate locks them onto whichever arm spiked first. *)
let rate_boost = 24.

let make_policy ~seed ~rounds s spec slot =
  let bidders = Bids.bidders s in
  let grid = reserve_grid s in
  let payoff_bound = Bids.payoff_bound s in
  let rate =
    rate_boost *. Dm_ml.Exp_weights.default_rate ~arms:grid_arms ~horizon:rounds
  in
  let rng () =
    Rng.create (cell_seed seed (97 + (spec.panel * n_policies) + slot))
  in
  match slot with
  | 0 -> Engine.fixed ~name:"floor-only" ~reserves:(Array.make bidders 0.)
  | 1 ->
      Policies.ew ~rate ~grid ~bidders ~payoff_bound ~horizon:rounds
        ~rng:(rng ()) ()
  | 2 ->
      Policies.ew ~bandit:true ~grid ~bidders ~payoff_bound ~horizon:rounds
        ~rng:(rng ()) ()
  | 3 ->
      Policies.ftpl ~rate ~grid ~bidders ~payoff_bound ~horizon:rounds
        ~rng:(rng ()) ()
  | 4 ->
      Policies.ftpl ~bandit:true ~grid ~bidders ~payoff_bound ~horizon:rounds
        ~rng:(rng ()) ()
  | 5 ->
      let epsilon =
        Float.max 0.1 (2.5 *. float_of_int dim *. delta)
      in
      let radius = 1.5 *. sqrt (2. *. float_of_int dim) in
      let cfg =
        Mechanism.config
          ~variant:(Mechanism.with_reserve_and_uncertainty ~delta)
          ~epsilon ()
      in
      let mech = Mechanism.create cfg (Ellipsoid.ball ~dim ~radius) in
      Policies.ellipsoid ~bidders ~mechanism:mech ()
  | _ -> invalid_arg "Auction.make_policy: unknown slot"

let run_cell ~seed ~rounds spec =
  let s = stream ~seed ~rounds ~panel:spec.panel in
  let feature = Bids.feature s in
  let floor = Bids.floor s in
  let bids = Bids.bids s in
  let checkpoints = checkpoints rounds in
  match spec.slot with
  | Some slot ->
      let policy = make_policy ~seed ~rounds s spec slot in
      let totals, marks =
        Engine.run ~checkpoints policy ~rounds ~feature ~floor ~bids ()
      in
      {
        spec;
        name = policy_name slot;
        marks;
        welfare = totals.Engine.welfare;
        sales = totals.Engine.sales;
      }
  | None ->
      let grid = reserve_grid s in
      let vector, _ =
        Engine.best_fixed_vector ~grid ~bidders:(Bids.bidders s) ~rounds
          ~floor ~bids ()
      in
      let totals, marks =
        Engine.run ~checkpoints
          (Engine.fixed ~name:"opt" ~reserves:vector)
          ~rounds ~feature ~floor ~bids ()
      in
      {
        spec;
        name = "opt (fixed vector)";
        marks;
        welfare = totals.Engine.welfare;
        sales = totals.Engine.sales;
      }

let revenue_vs_opt ?pool ?(scale = 1.) ?(seed = 42) ?(jobs = 1) ppf =
  let rounds = max 400 (int_of_float (4_000. *. scale)) in
  let panels = Array.length bidder_panels in
  (* One OPT cell then the six policy cells, per panel. *)
  let specs =
    Array.init
      (panels * (n_policies + 1))
      (fun i ->
        let panel = i / (n_policies + 1) in
        let j = i mod (n_policies + 1) in
        { panel; slot = (if j = 0 then None else Some (j - 1)) })
  in
  let cells = Runner.map ?pool ~jobs (run_cell ~seed ~rounds) specs in
  let opt panel = cells.(panel * (n_policies + 1)) in
  let final c = c.marks.(Array.length c.marks - 1) in
  let row c =
    [
      string_of_int bidder_panels.(c.spec.panel);
      c.name;
      Printf.sprintf "%.1f" c.marks.(0);
      Printf.sprintf "%.1f" c.marks.(1);
      Printf.sprintf "%.1f" (final c);
      string_of_int c.sales;
      Printf.sprintf "%.1f" c.welfare;
      Printf.sprintf "%.1f%%" (100. *. final c /. final (opt c.spec.panel));
    ]
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "auction: revenue vs the best fixed personalized-reserve vector, %d \
          rounds, dim %d (grid %d arms, noise sigma %g, floor ratio 0.3)"
         rounds dim grid_arms sigma)
    ~header:
      [
        "bidders"; "policy"; "rev T/4"; "rev T/2"; "rev T"; "sales";
        "welfare"; "vs OPT";
      ]
    (Array.to_list (Array.map row cells));
  (* The check behind the summary line: full-information learners end
     within 5% of the hindsight OPT on every panel. *)
  let learner_slots = [ 1; 3 ] in
  let checks =
    List.filter_map
      (fun c ->
        match c.spec.slot with
        | Some slot when List.mem slot learner_slots ->
            Some (c, final c >= 0.95 *. final (opt c.spec.panel))
        | _ -> None)
      (Array.to_list cells)
  in
  List.iter
    (fun (c, ok) ->
      if not ok then
        Format.fprintf ppf "  %s at %d bidders ended at %.1f%% of OPT@."
          c.name bidder_panels.(c.spec.panel)
          (100. *. final c /. final (opt c.spec.panel)))
    checks;
  let won = List.length (List.filter snd checks) in
  let total = List.length checks in
  if won = total then
    Format.fprintf ppf
      "auction summary: %d/%d full-information learner runs within 5%% of \
       the hindsight OPT — OK@.@."
      won total
  else
    Format.fprintf ppf
      "auction summary: %d/%d full-information learner runs within 5%% of \
       the hindsight OPT — CHECK FAILED@.@."
      won total
