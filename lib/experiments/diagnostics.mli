(** Feature-stream diagnostics.

    The exploration cost of the ellipsoid method scales with the
    *effective rank* of the arriving feature stream (each independent
    direction needs ≈ n·log(w₀/ε) exploratory cuts — EXPERIMENTS.md
    notes 3 and 5).  This report quantifies that rank for the three
    applications via the PCA spectrum of a feature sample, explaining
    where each experiment's exploration budget goes. *)

val effective_rank : ?threshold:float -> Dm_linalg.Mat.t -> int
(** Number of leading principal components needed to reach
    [threshold] (default 0.99) of a sample matrix's total variance.
    Requires ≥ 2 rows. *)

val report : ?seed:int -> ?sample:int -> Format.formatter -> unit
(** Effective ranks of the App 1 (n = 20 and 100), App 2 (n = 55) and
    App 3 (n = 128, sparse) feature streams over a [sample]-row
    prefix (default 2,000), followed by a knowledge-set volume-decay
    table (App 1, n = 20) read through the incremental log-volume
    cache, with its drift against a fresh Cholesky recomputation. *)
