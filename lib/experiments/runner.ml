module Pool = Dm_linalg.Pool

let run_pooled pool f xs =
  let n = Array.length xs in
  let results = Array.make n None in
  (* chunk:1 makes chunk indices coincide with cell indices, so the
     pool's lowest-failing-chunk exception policy is exactly the old
     lowest-failing-cell policy.  [results] is race-free: index [i] is
     written by exactly one task body and read only after the barrier
     (which re-raises before the reads if any cell failed). *)
  Pool.parallel_for pool ~chunk:1 n (fun lo hi ->
      for i = lo to hi - 1 do
        results.(i) <- Some (f xs.(i))
      done);
  Array.map (function Some y -> y | None -> assert false) results

let map ?pool ?(jobs = 1) f xs =
  if jobs < 1 then invalid_arg "Runner.map: jobs must be positive";
  let n = Array.length xs in
  if n <= 1 then Array.map f xs
  else
    match pool with
    | Some p -> if Pool.size p > 1 then run_pooled p f xs else Array.map f xs
    | None -> (
        if jobs = 1 then Array.map f xs
        else
          match Pool.get_default () with
          | Some p when Pool.size p > 1 -> run_pooled p f xs
          | Some _ | None ->
              Pool.with_pool ~jobs:(min jobs n) (fun p -> run_pooled p f xs))

let render ?pool ?(jobs = 1) ppf cells =
  let chunks =
    map ?pool ~jobs
      (fun cell ->
        let buf = Buffer.create 4096 in
        let bppf = Format.formatter_of_buffer buf in
        cell bppf;
        Format.pp_print_flush bppf ();
        Buffer.contents buf)
      cells
  in
  (* Strings pass through the formatter as atomic tokens (no break
     hints are emitted between them), so the merged output is the
     exact concatenation of the per-cell buffers. *)
  Array.iter (Format.pp_print_string ppf) chunks;
  Format.pp_print_flush ppf ()
