module Adversarial = Dm_synth.Adversarial
module Subgaussian = Dm_prob.Subgaussian
module Dist = Dm_prob.Dist
module Ellipsoid = Dm_market.Ellipsoid
module Mechanism = Dm_market.Mechanism
module Adversary = Dm_market.Adversary
module Broker = Dm_market.Broker

(* Dimension 2 so both mechanisms actually reach the conservative
   phase within the bench-scale horizon (the Lemma 6/7 exploratory
   budget is ~20n²·log(..) rounds) — the families differ in *stream*
   misbehavior, not in dimensionality (fig5c_hd covers that axis). *)
let dim = 2
let delta = 0.01 (* the evaluation's fixed uncertainty buffer *)
let strategic_margin = 0.25
let strategic_flip = 0.5
(* Tail index 1.8: infinite variance, finite mean — squarely outside
   Eq. 4's sub-Gaussian class, yet decaying fast enough that paying a
   few δ more slack buys several times fewer tail dips (at α ≤ 1.5
   the tail decays so slowly that no finite shading helps and the
   penalty is unavoidable for every mechanism). *)
let heavy_tail_index = 1.8

(* Heavy-tail scale: typical draws span several δ, so the floor
   calibrated to sub-Gaussian noise keeps drawing value dips that
   each forfeit a whole sale — the component the robust variant's
   adaptive shading trades away for a slightly lower price. *)
let heavy_tail_scale = 5. *. delta

let cell_seed seed salt = (seed * 1_000_003) + (salt * 7_919)

(* All six families share the broker-side calibration: σ is what the
   paper's Eq. 5 buffer δ = 0.01 implies over this horizon, and the
   heavy-tailed laws reuse it as their scale — so the broker's δ is
   "right" under its sub-Gaussian assumption and wrong only because
   the tails (or the hidden vector, or the buyer) are. *)
let families ~rounds ~sigma =
  let b1 = rounds / 3 and b2 = 2 * rounds / 3 in
  let open Adversarial in
  [|
    ("paper", Static, Subgaussian (Dist.Gaussian sigma), Truthful);
    ("drift", Drift { speed = 1. }, Subgaussian (Dist.Gaussian sigma), Truthful);
    ( "switch",
      Switches { boundaries = [| b1; b2 |] },
      Subgaussian (Dist.Gaussian sigma),
      Truthful );
    ( "student-t",
      Static,
      Student_t { dof = heavy_tail_index; scale = heavy_tail_scale },
      Truthful );
    ( "pareto",
      Static,
      Pareto { alpha = heavy_tail_index; scale = heavy_tail_scale },
      Truthful );
    ( "strategic",
      Static,
      Subgaussian (Dist.Gaussian sigma),
      Strategic { margin = strategic_margin; flip_prob = strategic_flip } );
  |]

type spec = { fam : int; robust : bool }

type stats = {
  spec : spec;
  sold : int;
  expl : int;
  cons : int;
  skip : int;
  restarts : int;
  regret : float;
  probe_forfeit : float;
      (* market value forfeited by rejected robust probes — the stated
         paper-stream overhead budget *)
}

let run_cell ~seed ~rounds ~epsilon ~radius fams spec =
  let name, path, noise, buyer = fams.(spec.fam) in
  ignore name;
  let stream =
    Adversarial.make ~seed:(cell_seed seed spec.fam) ~dim ~rounds ~path ~noise
      ~buyer ()
  in
  let cfg =
    Mechanism.config
      ~variant:(Mechanism.with_reserve_and_uncertainty ~delta)
      ~epsilon ()
  in
  let ell = Ellipsoid.ball ~dim ~radius in
  let mech =
    if spec.robust then
      (* Trigger 16-in-62: systematic floor rejections (a stale or
         corrupted set) trip it within ~16 posted rounds, while the
         isolated dips a heavy tail throws at a *correct* set stay
         below it — and the shading loop thins them out further.
         Upward escapes ride the two-probe rule; probing every 96
         converged rounds keeps the paper-stream forfeit overhead
         under 2% of the horizon. *)
      Mechanism.create_robust
        (Mechanism.robust_config ~drift_window:62 ~drift_trigger:16
           ~explore_every:96 ~reinflate_radius:(2. *. radius) ())
        cfg ell
    else Mechanism.create cfg ell
  in
  let sold = ref 0 and regret = ref 0. and probe_forfeit = ref 0. in
  for t = 0 to rounds - 1 do
    let x = Adversarial.feature stream t in
    let q = Adversarial.reserve stream t in
    let v = Adversarial.market_value stream t in
    let d = Mechanism.decide mech ~x ~reserve:q in
    let reported =
      match d with
      | Mechanism.Skip -> false
      | Mechanism.Post { price; _ } ->
          Adversarial.respond stream ~round:t ~price
    in
    Mechanism.observe mech ~x d ~accepted:reported;
    if reported then incr sold;
    (* Eq. 1 with the *reported* decision executing the deal: a lie
       that kills a sale forfeits v, a lie that buys above value pays
       the broker more than v. *)
    (if q > v then ()
     else
       match d with
       | Mechanism.Skip -> regret := !regret +. v
       | Mechanism.Post { price; _ } ->
           regret := !regret +. (v -. if reported then price else 0.));
    match d with
    | Mechanism.Post { price; upper; _ }
      when price >= upper +. delta && not reported && q <= v ->
        probe_forfeit := !probe_forfeit +. v
    | _ -> ()
  done;
  {
    spec;
    sold = !sold;
    expl = Mechanism.exploratory_rounds mech;
    cons = Mechanism.conservative_rounds mech;
    skip = Mechanism.skipped_rounds mech;
    restarts = Mechanism.robust_restarts mech;
    regret = !regret;
    probe_forfeit = !probe_forfeit;
  }

let lower_bound_panel ppf ~rounds =
  let rounds = min rounds 2000 in
  let run allow =
    Adversary.run ~allow_conservative_cuts:allow ~dim:2 ~rounds ()
  in
  let guarded = run false and exposed = run true in
  let row name (o : Adversary.outcome) =
    [
      name;
      Printf.sprintf "%.3g" o.Adversary.width_e2_at_switch;
      string_of_int o.Adversary.exploratory_second_half;
      Printf.sprintf "%.2f" o.Adversary.result.Broker.total_regret;
    ]
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "stress lower bound: the Lemma-8 adversary (dim 2, %d rounds) — the \
          Ω(T) floor no robustness guard can beat when conservative prices \
          cut"
         rounds)
    ~header:
      [ "variant"; "width along e2 at switch"; "2nd-half exploratory"; "regret" ]
    [ row "guarded (paper)" guarded; row "conservative cuts allowed" exposed ]

let degradation ?pool ?(scale = 1.) ?(seed = 42) ?(jobs = 1) ppf =
  let rounds = max 400 (int_of_float (20_000. *. scale)) in
  let sigma = Subgaussian.sigma_for_buffer ~delta ~horizon:rounds () in
  (* Well above the 2nδ stall floor (EXPERIMENTS.md: δ-buffered cuts
     go shallow and the width freezes just above ε otherwise), so the
     mechanisms reach the conservative phase the drift detector needs. *)
  let epsilon = Float.max 0.1 (2.5 *. float_of_int dim *. delta) in
  let radius = sqrt (2. *. float_of_int dim) in
  let fams = families ~rounds ~sigma in
  let specs =
    Array.init
      (2 * Array.length fams)
      (fun i -> { fam = i / 2; robust = i land 1 = 1 })
  in
  let stats =
    Runner.map ?pool ~jobs (run_cell ~seed ~rounds ~epsilon ~radius fams) specs
  in
  let vanilla i = stats.(2 * i) and robust i = stats.((2 * i) + 1) in
  let row s =
    let fam_name, _, _, _ = fams.(s.spec.fam) in
    [
      fam_name;
      (if s.spec.robust then "robust" else "vanilla");
      string_of_int s.sold;
      string_of_int s.expl;
      string_of_int s.cons;
      string_of_int s.skip;
      (if s.spec.robust then string_of_int s.restarts else "-");
      Printf.sprintf "%.1f" s.regret;
      (if s.spec.robust then
         Printf.sprintf "%.2fx" (s.regret /. (vanilla s.spec.fam).regret)
       else "1.00x");
    ]
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "stress: regret degradation under adversarial streams, %d rounds, \
          dim %d (delta %g, epsilon %.3g, sigma %.2e)"
         rounds dim delta epsilon sigma)
    ~header:
      [
        "family"; "mechanism"; "sold"; "expl"; "cons"; "skip"; "restarts";
        "regret"; "vs vanilla";
      ]
    (Array.to_list (Array.map row stats));
  (* The checks behind the summary line. *)
  let misspecified = [ 1; 2; 3; 4 ] in
  let wins =
    List.filter (fun i -> (robust i).regret < (vanilla i).regret) misspecified
  in
  let vp = vanilla 0 and rp = robust 0 in
  let margin = rp.probe_forfeit +. (0.05 *. vp.regret) in
  let paper_ok = rp.regret <= vp.regret +. margin in
  Format.fprintf ppf
    "paper-stream overhead: robust %.1f vs vanilla %.1f — stated margin \
     %.1f (measured probe forfeits %.1f + 5%% of vanilla)@."
    rp.regret vp.regret margin rp.probe_forfeit;
  List.iter
    (fun i ->
      let fam_name, _, _, _ = fams.(i) in
      Format.fprintf ppf "  %-10s vanilla %10.1f  robust %10.1f  (%.2fx)@."
        fam_name (vanilla i).regret (robust i).regret
        ((robust i).regret /. (vanilla i).regret))
    misspecified;
  Format.fprintf ppf
    "strategic buyer (reported, unchecked): vanilla %.1f, robust %.1f, %d \
     restart(s)@."
    (vanilla 5).regret (robust 5).regret (robust 5).restarts;
  lower_bound_panel ppf ~rounds;
  if List.length wins = List.length misspecified && paper_ok then
    Format.fprintf ppf
      "stress summary: robust beat vanilla on %d/%d misspecified families \
       and stayed within the stated paper-stream margin — OK@.@."
      (List.length wins) (List.length misspecified)
  else
    Format.fprintf ppf
      "stress summary: robust won %d/%d misspecified families, paper-stream \
       margin %s — CHECK FAILED@.@."
      (List.length wins) (List.length misspecified)
      (if paper_ok then "held" else "exceeded")
