(** Ablations beyond the paper's tables, probing the design choices
    DESIGN.md calls out: the exploration threshold ε, the uncertainty
    buffer δ (including the regime below the ε ≥ 4nδ precondition),
    and the feature-aggregation granularity n of Sec. II-B.

    The sweeps take [jobs] (default 1, or an explicit [pool]) and fan
    their grid points out over that many domains via {!Runner}; output
    bytes never depend on either. *)

val epsilon_sweep :
  ?pool:Dm_linalg.Pool.t ->
  ?seed:int -> ?rounds:int -> ?jobs:int -> Format.formatter -> unit
(** Regret ratio of the reserve variant across a grid of thresholds ε
    (n = 20): too small buys precision it cannot amortize, too large
    leaves a permanent conservative gap. *)

val delta_sweep :
  ?pool:Dm_linalg.Pool.t ->
  ?seed:int -> ?rounds:int -> ?jobs:int -> Format.formatter -> unit
(** Regret ratio of the reserve+uncertainty variant as the buffer δ
    grows at fixed noise, with ε floored per the stall bound; shows
    the cost of over-buffering. *)

val aggregation_sweep :
  ?pool:Dm_linalg.Pool.t ->
  ?seed:int -> ?rounds:int -> ?jobs:int -> Format.formatter -> unit
(** Fixes a 200-owner market and varies the number of aggregation
    partitions n ∈ {1, 5, 20, 50}: finer features model value better
    but cost more exploration (the paper's granularity trade-off). *)

val feature_pipeline : ?seed:int -> ?rounds:int -> Format.formatter -> unit
(** Sec. II-B offers two dimensionality reductions for the raw
    compensation vector: sorted-partition aggregation (what the paper
    evaluates) and PCA.  This ablation prices the same market with
    both pipelines at equal n and compares regret ratios.  The PCA
    basis is fitted on a 500-round warm-up prefix of compensation
    vectors (the broker can always collect quotes before trading). *)

val ctr_trainer : ?seed:int -> Format.formatter -> unit
(** Why the paper names FTRL-Proximal for App 3: fit the same click
    stream with FTRL (L1-sparsifying) and with batch gradient-descent
    logistic regression (L2 only) at n = 64.  Both reach the same
    log-loss, but only FTRL's weight vector is sparse — the batch fit
    leaves the Fig. 5(c) dense case without any dimension reduction,
    and its exploration cost shows it. *)

val param_dist_sweep :
  ?pool:Dm_linalg.Pool.t ->
  ?seed:int -> ?rounds:int -> ?jobs:int -> Format.formatter -> unit
(** The paper draws query parameters "from either a multivariate
    normal ... or a uniform distribution" to validate adaptivity; this
    sweep runs the reserve variant under Gaussian, Uniform and Mixed
    parameter streams and shows the regret ratios agree. *)
