(** Crash-recovery artifact: kill a journaled market mid-stream,
    recover from disk, resume, and verify the regret series is
    bit-identical to an uninterrupted reference run.

    Per mechanism variant (the four of {!Longrun.variants}) the driver

    + runs the uninterrupted reference over the full horizon;
    + replays the same stream with a {!Dm_store.Store} attached
      (small segments, periodic snapshots) and hard-kills it at a
      seeded crash round — {!Dm_store.Store.simulate_crash} truncates
      the active segment at a seeded point past the durable watermark
      and appends seeded torn-tail junk;
    + probes the corruption contract: flips one byte in a pre-tail
      record, checks {!Dm_store.Store.recover} refuses with an
      [Error], and restores the byte;
    + recovers (newest snapshot + journal-tail replay), compacts,
      re-recovers, and checks compaction changed nothing;
    + resumes to the full horizon — journaled prefix rounds replay
      their recorded decisions, live rounds come from the recovered
      mechanism — and compares the final regret series bit-for-bit
      with the reference.

    Every quantity printed is a pure function of [seed] and [scale],
    so the output is byte-identical at any [jobs] value. *)

val full_rounds : int
(** The unscaled horizon (10⁵ rounds at n = 8). *)

val resume :
  name:string ->
  setup:Longrun.setup ->
  variant:Dm_market.Mechanism.variant ->
  mech:Dm_market.Mechanism.t ->
  events:Dm_market.Broker.event array ->
  prefix:int ->
  rounds:int ->
  Dm_market.Broker.result
(** Resume a recovered market over the full horizon through one
    {!Dm_market.Broker.run}: rounds below [prefix] replay the
    recorded decision of [events] (which must cover exactly the
    prefix, or the call fails), later rounds price live from [mech].
    Accumulation order matches an uninterrupted run exactly, so a
    correct recovery resumes bit-identically.  Shared by this driver
    and {!Fleet}. *)

val report :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float ->
  ?seed:int ->
  ?jobs:int ->
  Format.formatter ->
  unit
(** Run the four variant cells (in parallel under [jobs]/[pool],
    resolved exactly as in {!Longrun.report}) and print the
    verification table plus a summary line of the form
    ["… 4/4 variants bit-identical …"] that the CI smoke greps
    for. *)

val journal_overhead :
  ?seed:int -> ?reps:int -> rounds:int -> unit -> (string * float) list
(** Benchmark helper for the journal-overhead stage: time the
    {!Longrun} market (n = 16, pure variant) for [rounds] rounds with
    journaling off, journaling on without per-record fsync, and
    fsync-every-record (capped at [min rounds 2000] — it is orders of
    magnitude slower), returning [(name, ns-per-round)] pairs whose
    names carry the ["journal/"] prefix that
    {!Dm_bench.Record.critical_prefixes} watches.  Each mode reports
    its minimum over [reps] (default 3) interleaved passes — the
    standard defence against scheduler noise skewing the off/on
    ratio.  Timings cover the trading loop only (rotation and
    snapshot fsyncs included, the final close excluded). *)
