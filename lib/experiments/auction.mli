(** Revenue-vs-OPT for the auction front-end ({!Dm_auction}).

    Clears identical {!Dm_synth.Bids} streams — valuations correlated
    through the posted-price experiments' hidden vector — with every
    reserve policy on the same table: the floor-only baseline, the
    per-bidder exponential-weights and FTPL learners (full-information
    and bandit feedback), and the paper's ellipsoid mechanism wrapped
    as a uniform-reserve policy.  The benchmark is OPT, the best fixed
    personalized-reserve vector in hindsight on the same grid
    ({!Dm_auction.Auction.best_fixed_vector}); cumulative revenue is
    reported at T/4, T/2 and T for bidder panels of 2, 8 and 32.

    The closing summary line ("auction summary: ... OK") asserts that
    the full-information learners end within 5% of OPT's revenue on
    every panel — `make ci` greps it.  Bandit and ellipsoid rows are
    reported without a check: the bandit estimators pay an extra
    √K factor, and the posted-price mechanism only controls the
    uniform reserve. *)

val revenue_vs_opt :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float ->
  ?seed:int ->
  ?jobs:int ->
  Format.formatter ->
  unit
(** [revenue_vs_opt ppf] runs every (bidders × policy) cell plus one
    OPT scan per panel.  [scale] multiplies the 4,000-round horizon
    (floored at 400); cells fan out over [jobs] domains (or an
    explicit [pool]) via {!Runner} — each cell re-derives its stream
    and policy RNG from its own seed before dispatch, so the output is
    byte-identical whatever the worker count. *)
