module Broker = Dm_market.Broker
module Mechanism = Dm_market.Mechanism
module Noisy_query = Dm_apps.Noisy_query

let scaled_rounds scale rounds =
  max 100 (int_of_float (Float.round (scale *. float_of_int rounds)))

(* Roughly log-spaced checkpoints, always ending at [rounds]. *)
let checkpoints ~rounds ~count =
  let ratio = float_of_int rounds ** (1. /. float_of_int count) in
  let rec collect acc last x =
    if last >= rounds then List.rev acc
    else
      let next = min rounds (max (last + 1) (int_of_float (Float.round x))) in
      collect (next :: acc) next (x *. ratio)
  in
  Array.of_list (collect [] 0 1.)

let paper_settings = [ (1, 100); (20, 10_000); (40, 10_000); (60, 100_000); (80, 100_000); (100, 100_000) ]

let variants setup =
  let delta = setup.Noisy_query.delta in
  [
    ("pure", Mechanism.pure);
    ("uncertainty", Mechanism.with_uncertainty ~delta);
    ("reserve", Mechanism.with_reserve);
    ("reserve+unc", Mechanism.with_reserve_and_uncertainty ~delta);
  ]

(* The 2.5nδ stall floor (Noisy_query.effective_epsilon) must never be
   a silent substitution: name the variants it lifted. *)
let report_epsilon_floor ppf setup vs =
  match List.filter (fun (_, v) -> Noisy_query.epsilon_floored setup v) vs with
  | [] -> ()
  | (_, v0) :: _ as floored ->
      Format.fprintf ppf
        "epsilon floor: setup ε = %.3g lifted to 2.5nδ = %.3g for %s@."
        setup.Noisy_query.epsilon
        (Noisy_query.effective_epsilon setup v0)
        (String.concat ", " (List.map fst floored))

let fig4 ?pool ?(scale = 1.) ?(seed = 42) ?(jobs = 1) ppf =
  let panel (dim, rounds) ppf =
    let rounds = scaled_rounds scale rounds in
    let setup = Noisy_query.make ~seed ~dim ~rounds () in
    let cps = checkpoints ~rounds ~count:8 in
    let results =
      List.map
        (fun (name, v) -> (name, Noisy_query.run ~checkpoints:cps setup v))
        (variants setup)
    in
    let header = "t" :: List.map fst results in
    let rows =
      Array.to_list
        (Array.mapi
           (fun i t ->
             string_of_int t
             :: List.map
                  (fun (_, r) ->
                    Printf.sprintf "%.1f"
                      r.Broker.series.Broker.cumulative_regret.(i))
                  results)
           cps)
    in
    Table.print ppf
      ~title:
        (Printf.sprintf
           "Fig. 4 (n = %d, T = %d): cumulative regret, noisy linear query"
           dim rounds)
      ~header rows;
    report_epsilon_floor ppf setup (variants setup)
  in
  Runner.render ?pool ~jobs ppf
    (Array.of_list (List.map panel paper_settings))

let table1 ?(scale = 1.) ?(seed = 42) ppf =
  let fmt_ms (s : Dm_prob.Stats.summary) =
    Printf.sprintf "%.3f (%.3f)" s.Dm_prob.Stats.mean s.Dm_prob.Stats.std
  in
  let rows =
    List.map
      (fun (dim, rounds) ->
        let rounds = scaled_rounds scale rounds in
        let setup = Noisy_query.make ~seed ~dim ~rounds () in
        let r = Noisy_query.run setup Mechanism.with_reserve in
        [
          string_of_int dim;
          string_of_int rounds;
          fmt_ms r.Broker.market_value_stats;
          fmt_ms r.Broker.reserve_stats;
          fmt_ms r.Broker.posted_stats;
          fmt_ms r.Broker.regret_stats;
        ])
      paper_settings
  in
  Table.print ppf
    ~title:
      "Table I: per-round statistics, pricing of noisy linear query (version \
       with reserve price); cells are mean (std)"
    ~header:[ "n"; "T"; "market value"; "reserve"; "posted"; "regret" ]
    rows

let fig5a ?(scale = 1.) ?(seed = 42) ppf =
  let dim = 100 in
  let rounds = scaled_rounds scale 100_000 in
  let setup = Noisy_query.make ~seed ~dim ~rounds () in
  let cps = checkpoints ~rounds ~count:10 in
  let runs =
    List.map
      (fun (name, v) -> (name, Noisy_query.run ~checkpoints:cps setup v))
      (variants setup)
    @ [ ("risk-averse", Noisy_query.run_baseline ~checkpoints:cps setup) ]
  in
  let header = "t" :: List.map fst runs in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i t ->
           string_of_int t
           :: List.map
                (fun (_, r) ->
                  Table.fmt_pct r.Broker.series.Broker.regret_ratio.(i))
                runs)
         cps)
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Fig. 5(a) (n = %d, T = %d): regret ratios, noisy linear query" dim
         rounds)
    ~header rows;
  List.iter
    (fun (name, r) ->
      Format.fprintf ppf "%-12s %s@." name
        (Table.sparkline r.Broker.series.Broker.regret_ratio))
    runs;
  Format.fprintf ppf "@.";
  let final name =
    Table.fmt_pct (List.assoc name runs).Broker.regret_ratio
  in
  Format.fprintf ppf
    "Final ratios — pure %s, uncertainty %s, reserve %s, reserve+unc %s, \
     risk-averse %s@.(paper: 8.48%%, 11.19%%, 7.77%%, 9.87%%, 18.16%%)@.@."
    (final "pure") (final "uncertainty") (final "reserve")
    (final "reserve+unc") (final "risk-averse");
  report_epsilon_floor ppf setup (variants setup)

let coldstart ?pool ?(scale = 1.) ?(seed = 42) ?(seeds = 5) ?(jobs = 1) ppf =
  let dim = 20 in
  let rounds = scaled_rounds scale 10_000 in
  let reductions =
    (* One cell per market seed; each cell builds its own setup from a
       plain integer, so nothing mutable crosses domains. *)
    Array.to_list
      (Runner.map ?pool ~jobs
         (fun k ->
           let setup =
             Noisy_query.make ~seed:(seed + (100 * k)) ~dim ~rounds ()
           in
           let regret v = (Noisy_query.run setup v).Broker.total_regret in
           let delta = setup.Noisy_query.delta in
           let no_reserve = regret Mechanism.pure in
           let with_reserve = regret Mechanism.with_reserve in
           let unc = regret (Mechanism.with_uncertainty ~delta) in
           let both = regret (Mechanism.with_reserve_and_uncertainty ~delta) in
           ( 100. *. (1. -. (with_reserve /. no_reserve)),
             100. *. (1. -. (both /. unc)) ))
         (Array.init seeds Fun.id))
  in
  let mean sel =
    List.fold_left (fun acc r -> acc +. sel r) 0. reductions
    /. float_of_int seeds
  in
  let rows =
    List.mapi
      (fun k (a, b) ->
        [
          Printf.sprintf "market %d" (k + 1);
          Printf.sprintf "%.2f%%" a;
          Printf.sprintf "%.2f%%" b;
        ])
      reductions
    @ [
        [
          "mean";
          Printf.sprintf "%.2f%%" (mean fst);
          Printf.sprintf "%.2f%%" (mean snd);
        ];
      ]
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Cold start (n = %d, t = %d): regret reduction from the reserve \
          price (paper: 13.16%% without and 10.92%% with uncertainty)"
         dim rounds)
    ~header:[ "seed"; "reserve vs pure"; "reserve+unc vs unc" ]
    rows
