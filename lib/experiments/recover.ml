module Broker = Dm_market.Broker
module Mechanism = Dm_market.Mechanism
module Pool = Dm_linalg.Pool
module Rng = Dm_prob.Rng
module Store = Dm_store.Store
module Journal = Dm_store.Journal

let dim = 8
let full_rounds = 100_000

(* Store directories are flat (segments + snapshots, no subdirs), so
   one level of removal is all cleanup ever needs. *)
let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let flip_byte path ~offset =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd offset Unix.SEEK_SET);
      if Unix.read fd b 0 1 <> 1 then
        failwith "Recover.flip_byte: short read";
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd offset Unix.SEEK_SET);
      if Unix.write fd b 0 1 <> 1 then
        failwith "Recover.flip_byte: short write")

let ok_or_fail = function
  | Ok v -> v
  | Error msg -> failwith ("Recover.report: " ^ msg)

(* Resume over the full horizon through one [Broker.run], so every
   cumulative sum is accumulated in the reference's exact order: the
   journaled prefix replays its recorded decisions (the mechanism
   already holds their knowledge), live rounds price from the
   recovered state.  Shared with the [Fleet] driver, which resumes
   every tenant of the shared journal this way. *)
let resume ~name ~setup ~variant ~mech ~events:(events : Broker.event array)
    ~prefix ~rounds =
  if Array.length events <> prefix then
    failwith "Recover.resume: journal does not cover the recovered prefix";
  let t = ref 0 in
  let pending = ref None in
  let decide ~x ~reserve =
    let i = !t in
    incr t;
    if i < prefix then
      match events.(i).Broker.kind with
      | Broker.Skipped -> None
      | _ -> Some events.(i).Broker.price_index
    else
      let d = Mechanism.decide mech ~x ~reserve in
      match d with
      | Mechanism.Skip ->
          Mechanism.observe mech ~x d ~accepted:false;
          None
      | Mechanism.Post { price; _ } ->
          pending := Some d;
          Some price
  in
  let learn ~x ~price:_ ~accepted =
    match !pending with
    | Some d ->
        pending := None;
        Mechanism.observe mech ~x d ~accepted
    | None -> ()
  in
  Broker.run
    ~policy:
      (Broker.Custom
         {
           Broker.policy_name = "recovered " ^ name;
           decide;
           learn;
           uses_reserve = variant.Mechanism.use_reserve;
         })
    ~model:setup.Longrun.model ~noise:setup.Longrun.noise
    ~workload:setup.Longrun.workload ~rounds ()

(* One self-contained verification cell.  Everything below is a pure
   function of (seed, rounds, index, variant) — the cell touches only
   its own store directory, so the cells are safe on any domain and
   the rendered bytes cannot depend on the jobs value. *)
let verify_variant ~seed ~rounds index (name, variant) =
  let setup = Longrun.make_setup ~dim ~seed ~rounds () in
  let fresh () = Longrun.mechanism setup variant in
  let run ?journal ~policy ~rounds () =
    Broker.run ?journal ~policy ~model:setup.Longrun.model
      ~noise:setup.Longrun.noise ~workload:setup.Longrun.workload ~rounds ()
  in
  let reference = run ~policy:(Broker.Ellipsoid_pricing (fresh ())) ~rounds () in
  let frng = Rng.create (seed + (104729 * (index + 1))) in
  let crash_round =
    let base = (rounds * 3 / 5) + Rng.int frng 7 - 3 in
    max 1 (min (rounds - 1) base)
  in
  let dir =
    Filename.concat (Sys.getcwd ())
      (Printf.sprintf ".dm_store_tmp-%d-%d" (Unix.getpid ()) index)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* Deliberately tiny segments so rotation and compaction are
     exercised even at smoke scale. *)
  let snapshot_every = max 50 (rounds / 8) in
  let store =
    Store.create ~segment_bytes:4096 ~snapshot_every ~dir ~start:0 ()
  in
  let mech_j = fresh () in
  ignore
    (run
       ~journal:(Store.sink store ~mech:mech_j)
       ~policy:(Broker.Ellipsoid_pricing mech_j)
       ~rounds:crash_round ());
  let keep = Rng.float frng in
  let junk =
    String.init (1 + Rng.int frng 24) (fun _ -> Char.chr (Rng.int frng 256))
  in
  Store.simulate_crash store ~keep ~junk;
  (* Corruption probe: flip one byte inside the first record of the
     first segment — well before the tail — and check recovery refuses
     rather than repricing from damaged history.  Offset 18 = 8-byte
     magic + 8-byte frame header + 2 bytes into the payload. *)
  let first_seg = snd (List.hd (Journal.segments ~dir)) in
  flip_byte first_seg ~offset:18;
  let probe_rejected =
    match Store.recover ~dir () with
    | Error msg -> String.contains msg ':'
    | Ok _ -> false
  in
  flip_byte first_seg ~offset:18;
  let rec1 = ok_or_fail (Store.recover ~initial:fresh ~dir ()) in
  let mech1 = Option.get rec1.Store.mechanism in
  let state1 = Mechanism.snapshot_binary mech1 in
  let deleted = Store.compact ~dir in
  let rec2 = ok_or_fail (Store.recover ~initial:fresh ~dir ()) in
  let mech = Option.get rec2.Store.mechanism in
  let compact_ok =
    String.equal state1 (Mechanism.snapshot_binary mech)
    && rec2.Store.next_round = rec1.Store.next_round
  in
  let resumed =
    resume ~name ~setup ~variant ~mech ~events:rec1.Store.events
      ~prefix:rec1.Store.next_round ~rounds
  in
  let identical =
    Longrun.series_identical reference.Broker.series resumed.Broker.series
    && Longrun.bits reference.Broker.total_regret
       = Longrun.bits resumed.Broker.total_regret
    && Longrun.bits reference.Broker.total_value
       = Longrun.bits resumed.Broker.total_value
  in
  let row =
    [
      name;
      string_of_int crash_round;
      string_of_int rec1.Store.snapshot_round;
      string_of_int rec1.Store.replayed;
      (if rec1.Store.torn then "torn" else "clean");
      (if probe_rejected then "rejected" else "ACCEPTED");
      (if compact_ok then Printf.sprintf "ok (-%d seg)" deleted else "DRIFT");
      (if identical then "bit-identical" else "MISMATCH");
    ]
  in
  (row, identical)

let report ?pool ?(scale = 1.) ?(seed = 42) ?(jobs = 1) ppf =
  let rounds = Longrun.scaled_rounds scale full_rounds in
  let go pool =
    let cells =
      Array.of_list (List.mapi (fun i v -> (i, v)) Longrun.variants)
    in
    let results =
      Runner.map ?pool ~jobs
        (fun (i, v) -> verify_variant ~seed ~rounds i v)
        cells
    in
    let rows = Array.to_list (Array.map fst results) in
    Table.print ppf
      ~title:
        (Printf.sprintf
           "Crash recovery (n = %d, T = %d): journaled run killed at \
            crash@, recovered from newest snapshot + journal tail, \
            resumed to T; pre-tail byte flips must be rejected and \
            compaction must not change the recovered state"
           dim rounds)
      ~header:
        [
          "variant"; "crash@"; "snap@"; "replayed"; "tail"; "probe";
          "compaction"; "resume";
        ]
      rows;
    let ok_count =
      Array.fold_left (fun n (_, ok) -> if ok then n + 1 else n) 0 results
    in
    Format.fprintf ppf
      "Crash recovery: %d/%d variants bit-identical to the uninterrupted \
       reference after kill, recover and resume.@.@."
      ok_count (Array.length cells)
  in
  match pool with
  | Some _ -> go pool
  | None -> (
      match Pool.get_default () with
      | Some _ -> go None (* Runner.map picks the default pool up *)
      | None when jobs > 1 -> Pool.with_pool ~jobs (fun p -> go (Some p))
      | None -> go None)

let journal_overhead ?(seed = 42) ?(reps = 3) ~rounds () =
  if rounds < 1 then
    invalid_arg "Recover.journal_overhead: need at least one round";
  if reps < 1 then invalid_arg "Recover.journal_overhead: need at least one rep";
  let variant = snd (List.hd Longrun.variants) in
  let time_run ~tag ~rounds ~journaled ~fsync =
    let setup = Longrun.make_setup ~seed ~rounds () in
    let mech = Longrun.mechanism setup variant in
    let run ?journal () =
      ignore
        (Broker.run ?journal
           ~policy:(Broker.Ellipsoid_pricing mech)
           ~model:setup.Longrun.model ~noise:setup.Longrun.noise
           ~workload:setup.Longrun.workload ~rounds ())
    in
    if not journaled then begin
      let t0 = Unix.gettimeofday () in
      run ();
      let t1 = Unix.gettimeofday () in
      (t1 -. t0) *. 1e9 /. float_of_int rounds
    end
    else begin
      let dir =
        Filename.concat (Sys.getcwd ())
          (Printf.sprintf ".dm_store_bench-%d-%s" (Unix.getpid ()) tag)
      in
      rm_rf dir;
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          (* No periodic snapshots: the stage isolates the journal
             sink itself; snapshot cadence is a separate cost knob. *)
          let store =
            Store.create ~fsync_every_record:fsync ~snapshot_every:0 ~dir
              ~start:0 ()
          in
          let t0 = Unix.gettimeofday () in
          run ~journal:(Store.sink store ~mech) ();
          let t1 = Unix.gettimeofday () in
          Store.close store;
          (t1 -. t0) *. 1e9 /. float_of_int rounds)
    end
  in
  (* Interleaved min-of-reps: one pass per rep over all three modes,
     keeping each mode's best time, so a noisy neighbour perturbing
     one pass cannot skew the off/on ratio. *)
  let best = Array.make 3 infinity in
  for _ = 1 to reps do
    best.(0) <-
      Float.min best.(0)
        (time_run ~tag:"off" ~rounds ~journaled:false ~fsync:false);
    best.(1) <-
      Float.min best.(1)
        (time_run ~tag:"nofsync" ~rounds ~journaled:true ~fsync:false);
    best.(2) <-
      Float.min best.(2)
        (time_run ~tag:"fsync" ~rounds:(min rounds 2000) ~journaled:true
           ~fsync:true)
  done;
  [
    ("journal/longrun_off", best.(0));
    ("journal/longrun_nofsync", best.(1));
    ("journal/longrun_fsync", best.(2));
  ]
