module Broker = Dm_market.Broker
module Mechanism = Dm_market.Mechanism
module Pool = Dm_linalg.Pool
module Rng = Dm_prob.Rng
module Journal = Dm_store.Journal
module Fleet_store = Dm_store.Fleet

let dim = 4
let full_tenants = 1_000
let tenant_rounds = 240
let snapshot_every = 100

let scaled_tenants scale =
  max 8 (int_of_float (Float.round (scale *. float_of_int full_tenants)))

(* Fleet directories have per-tenant snapshot subdirectories, so
   cleanup recurses (unlike the flat [Recover.rm_rf]). *)
let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let ok_or_fail = function
  | Ok v -> v
  | Error msg -> failwith ("Fleet.report: " ^ msg)

(* Per-tenant market spec, derived from [Rng.split] children of the
   root stream *before* any dispatch, in tenant order — the standard
   contract that keeps every downstream phase a pure function of
   (seed, scale) whatever the jobs value. *)
let make_specs ~seed ~tenants =
  let root = Rng.create seed in
  let variants = Array.of_list Longrun.variants in
  let specs = Array.make tenants (0, variants.(0)) in
  for i = 0 to tenants - 1 do
    let child = Rng.split root in
    specs.(i) <-
      (Rng.int child 0x3FFF_FFFF, variants.(i mod Array.length variants))
  done;
  specs

let make_setup tseed = Longrun.make_setup ~dim ~seed:tseed ~rounds:tenant_rounds ()

type _ Effect.t += Journal_event : Broker.event -> unit Effect.t

(* Cooperative round-robin host: every tenant's [Broker.run] executes
   as a fiber that yields at its journal sink ([Journal_event]); the
   scheduler resumes fibers FIFO, so the ~10³ markets genuinely
   interleave round-by-round on one domain and the shared journal
   sees a deterministic round-robin global append order.  [emit i e]
   runs at perform time, i.e. in that global order. *)
let host ~emit (runs : (unit -> 'a) array) : 'a array =
  let open Effect.Deep in
  let n = Array.length runs in
  let out = Array.make n None in
  let runq = Queue.create () in
  let start i () =
    match_with
      (fun () -> out.(i) <- Some (runs.(i) ()))
      ()
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Journal_event e ->
                Some
                  (fun (k : (a, _) continuation) ->
                    emit i e;
                    Queue.add (fun () -> continue k ()) runq)
            | _ -> None);
      }
  in
  for i = 0 to n - 1 do
    Queue.add (start i) runq
  done;
  while not (Queue.is_empty runq) do
    (Queue.pop runq) ()
  done;
  Array.map Option.get out

(* One tenant's [Broker.run] as a host fiber: identical stream and
   policy to its solo reference, with the journal sink routed through
   the effect. *)
let tenant_run ~setup ~mech ~rounds () =
  Broker.run
    ~journal:(fun e -> Effect.perform (Journal_event e))
    ~policy:(Broker.Ellipsoid_pricing mech)
    ~model:setup.Longrun.model ~noise:setup.Longrun.noise
    ~workload:setup.Longrun.workload ~rounds ()

let result_identical (a : Broker.result) (b : Broker.result) =
  Longrun.series_identical a.Broker.series b.Broker.series
  && Longrun.bits a.Broker.total_regret = Longrun.bits b.Broker.total_regret
  && Longrun.bits a.Broker.total_value = Longrun.bits b.Broker.total_value

let report ?pool ?(scale = 1.) ?(seed = 42) ?(jobs = 1) ppf =
  let tenants = scaled_tenants scale in
  let specs = make_specs ~seed ~tenants in
  let frng = Rng.create (seed + 7919) in
  let crash_round =
    let base = (tenant_rounds * 3 / 5) + Rng.int frng 7 - 3 in
    max (snapshot_every + 1) (min (tenant_rounds - 1) base)
  in
  let keep = Rng.float frng in
  let junk =
    String.init (1 + Rng.int frng 24) (fun _ -> Char.chr (Rng.int frng 256))
  in
  let dir_of tag =
    Filename.concat (Sys.getcwd ())
      (Printf.sprintf ".dm_fleet_tmp-%d-%s" (Unix.getpid ()) tag)
  in
  let go pool =
    (* Phase 1 — solo references, one independent cell per tenant:
       the uninterrupted [Broker.run] result plus its version-1
       journal stream (for the on-disk round-trip check below). *)
    let refs =
      Runner.map ?pool ~jobs
        (fun (tseed, (_, variant)) ->
          let setup = make_setup tseed in
          let mech = Longrun.mechanism setup variant in
          let buf = Buffer.create 4096 in
          let res =
            Broker.run
              ~journal:(fun e -> Buffer.add_string buf (Journal.encode_event e))
              ~policy:(Broker.Ellipsoid_pricing mech)
              ~model:setup.Longrun.model ~noise:setup.Longrun.noise
              ~workload:setup.Longrun.workload ~rounds:tenant_rounds ()
          in
          (res, Buffer.contents buf))
        specs
    in
    (* Phase 2 — the live fleet: all tenants interleaved on the shared
       group-commit journal, then compared to their solo runs and the
       log read back and re-encoded against the solo streams. *)
    let dir_live = dir_of "live" in
    rm_rf dir_live;
    let live, fsyncs_live, appended_live =
      Fun.protect ~finally:(fun () -> rm_rf dir_live) @@ fun () ->
      let fleet =
        Fleet_store.create ~segment_bytes:(256 * 1024) ~latency_appends:2048
          ~snapshot_every ~dir:dir_live ~tenants ()
      in
      let mechs =
        Array.map
          (fun (tseed, (_, variant)) ->
            Longrun.mechanism (make_setup tseed) variant)
          specs
      in
      let runs =
        Array.mapi
          (fun i (tseed, _) ->
            tenant_run ~setup:(make_setup tseed) ~mech:mechs.(i)
              ~rounds:tenant_rounds)
          specs
      in
      let results =
        host
          ~emit:(fun i e -> Fleet_store.sink fleet ~tenant:i ~mech:mechs.(i) e)
          runs
      in
      Fleet_store.close fleet;
      let fsyncs = Fleet_store.fsync_count fleet in
      let appended = Fleet_store.appended fleet in
      let tagged, tail = ok_or_fail (Fleet_store.read_dir ~dir:dir_live) in
      let tail_clean = match tail with Fleet_store.Clean -> true | _ -> false in
      let streams = Array.init tenants (fun _ -> Buffer.create 4096) in
      List.iter
        (fun (tn, e) ->
          Buffer.add_string streams.(tn) (Journal.encode_event e))
        tagged;
      let per_tenant =
        Array.mapi
          (fun i res ->
            let live_ok = result_identical res (fst refs.(i)) in
            let log_ok =
              tail_clean
              && String.equal (Buffer.contents streams.(i)) (snd refs.(i))
            in
            (live_ok, log_ok))
          results
      in
      (per_tenant, fsyncs, appended)
    in
    (* Phase 3 — kill, recover, compact, resume: the fleet run again
       to a seeded crash round, hard-killed via [simulate_crash], all
       tenants recovered from the shared log + their own snapshots,
       compaction checked state-preserving, and every tenant resumed
       over the full horizon through [Recover.resume]. *)
    let dir_crash = dir_of "crash" in
    rm_rf dir_crash;
    let resume_ok, compact_all_ok, deleted_segs, snap_round0, replayed0 =
      Fun.protect ~finally:(fun () -> rm_rf dir_crash) @@ fun () ->
      (* Tiny segments and a tight latency bound (eight global rounds)
         so rotation, journal-tail replay beyond the last snapshot and
         compaction are all exercised even at smoke scale. *)
      let fleet =
        Fleet_store.create ~segment_bytes:(64 * 1024)
          ~latency_appends:(tenants * 8) ~snapshot_every ~dir:dir_crash
          ~tenants ()
      in
      let mechs =
        Array.map
          (fun (tseed, (_, variant)) ->
            Longrun.mechanism (make_setup tseed) variant)
          specs
      in
      let runs =
        Array.mapi
          (fun i (tseed, _) ->
            tenant_run ~setup:(make_setup tseed) ~mech:mechs.(i)
              ~rounds:crash_round)
          specs
      in
      ignore
        (host
           ~emit:(fun i e -> Fleet_store.sink fleet ~tenant:i ~mech:mechs.(i) e)
           runs);
      Fleet_store.simulate_crash fleet ~keep ~junk;
      let initial tn =
        let tseed, (_, variant) = specs.(tn) in
        Longrun.mechanism (make_setup tseed) variant
      in
      let rec1, _torn1 =
        ok_or_fail (Fleet_store.recover ~initial ~dir:dir_crash ~tenants ())
      in
      let states1 =
        Array.map
          (fun r ->
            Mechanism.snapshot_binary (Option.get r.Fleet_store.mechanism))
          rec1
      in
      let deleted =
        ok_or_fail (Fleet_store.compact ~dir:dir_crash ~tenants)
      in
      let rec2, _torn2 =
        ok_or_fail (Fleet_store.recover ~initial ~dir:dir_crash ~tenants ())
      in
      let compact_ok =
        Array.for_all2
          (fun (r1 : Fleet_store.recovery) (r2 : Fleet_store.recovery) ->
            r1.Fleet_store.next_round = r2.Fleet_store.next_round)
          rec1 rec2
        && Array.for_all2
             (fun s (r2 : Fleet_store.recovery) ->
               String.equal s
                 (Mechanism.snapshot_binary
                    (Option.get r2.Fleet_store.mechanism)))
             states1 rec2
      in
      (* Resume from the post-compaction state, but replay the prefix
         decisions from the pre-compaction audit trail — compaction
         deletes the journal head the snapshots already cover, so only
         [rec1] still holds every round from 0. *)
      let resumed =
        Runner.map ?pool ~jobs
          (fun tn ->
            let tseed, (name, variant) = specs.(tn) in
            let setup = make_setup tseed in
            Recover.resume ~name ~setup ~variant
              ~mech:(Option.get rec2.(tn).Fleet_store.mechanism)
              ~events:rec1.(tn).Fleet_store.events
              ~prefix:rec1.(tn).Fleet_store.next_round ~rounds:tenant_rounds)
          (Array.init tenants Fun.id)
      in
      let resume_ok =
        Array.mapi (fun i res -> result_identical res (fst refs.(i))) resumed
      in
      ( resume_ok,
        compact_ok,
        deleted,
        rec1.(0).Fleet_store.snapshot_round,
        rec1.(0).Fleet_store.replayed )
    in
    (* Per-variant aggregation for the table, plus the grep-able
       whole-fleet verdict. *)
    let n_variants = List.length Longrun.variants in
    let rows =
      List.mapi
        (fun vi (name, _) ->
          let count = ref 0 and live_n = ref 0 and log_n = ref 0 in
          let res_n = ref 0 in
          Array.iteri
            (fun i (l, g) ->
              if i mod n_variants = vi then begin
                incr count;
                if l then incr live_n;
                if g then incr log_n;
                if resume_ok.(i) then incr res_n
              end)
            live;
          [
            name;
            string_of_int !count;
            Printf.sprintf "%d/%d" !live_n !count;
            Printf.sprintf "%d/%d" !log_n !count;
            Printf.sprintf "%d/%d" !res_n !count;
          ])
        Longrun.variants
    in
    Table.print ppf
      ~title:
        (Printf.sprintf
           "Broker fleet (tenants = %d, n = %d, T = %d per tenant): live \
            run, shared-journal slice and kill@%d -> recover -> resume, \
            each vs the tenant's solo run"
           tenants dim tenant_rounds crash_round)
      ~header:[ "variant"; "tenants"; "live"; "journal"; "resume" ]
      rows;
    let per_fsync =
      if fsyncs_live = 0 then 0.
      else float_of_int appended_live /. float_of_int fsyncs_live
    in
    Format.fprintf ppf
      "Group commit: %d tenant-rounds, %d fsyncs (%.1f appends/fsync, %.2e \
       fsyncs per tenant-round vs 1.0 for per-tenant fsync journaling).@."
      appended_live fsyncs_live per_fsync
      (if appended_live = 0 then 0.
       else float_of_int fsyncs_live /. float_of_int appended_live);
    Format.fprintf ppf
      "Recovery: snapshot@%d + %d replayed for tenant 0; compaction %s \
       (-%d segment(s)).@."
      snap_round0 replayed0
      (if compact_all_ok then "state-preserving" else "DRIFTED")
      deleted_segs;
    let all_ok = ref 0 in
    Array.iteri
      (fun i (l, g) ->
        if l && g && resume_ok.(i) && compact_all_ok then incr all_ok)
      live;
    Format.fprintf ppf
      "Fleet: %d/%d tenants bit-identical to their solo runs, live and \
       after kill, recover and resume.@.@."
      !all_ok tenants
  in
  match pool with
  | Some _ -> go pool
  | None -> (
      match Pool.get_default () with
      | Some _ -> go None
      | None when jobs > 1 -> Pool.with_pool ~jobs (fun p -> go (Some p))
      | None -> go None)

let journal_amortization ?(seed = 42) ?(tenants = 64) ?(rounds = 300)
    ?(reps = 2) () =
  if tenants < 1 then
    invalid_arg "Fleet.journal_amortization: need at least one tenant";
  if rounds < 1 then
    invalid_arg "Fleet.journal_amortization: need at least one round";
  if reps < 1 then invalid_arg "Fleet.journal_amortization: need at least one rep";
  let specs = make_specs ~seed ~tenants in
  let one tag =
    let dir =
      Filename.concat (Sys.getcwd ())
        (Printf.sprintf ".dm_fleet_bench-%d-%s" (Unix.getpid ()) tag)
    in
    rm_rf dir;
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let setups =
      Array.map
        (fun (tseed, _) -> Longrun.make_setup ~dim ~seed:tseed ~rounds ())
        specs
    in
    let mechs =
      Array.mapi
        (fun i (_, (_, variant)) -> Longrun.mechanism setups.(i) variant)
        specs
    in
    let runs =
      Array.mapi (fun i _ -> tenant_run ~setup:setups.(i) ~mech:mechs.(i) ~rounds)
        specs
    in
    (* No periodic snapshots: like [Recover.journal_overhead], the
       stage isolates the journal path itself.  The final [sync] puts
       the closing group barrier inside the timed window, so the
       figure covers full durability of every round. *)
    let fleet = Fleet_store.create ~snapshot_every:0 ~dir ~tenants () in
    let t0 = Unix.gettimeofday () in
    ignore
      (host ~emit:(fun i e -> Fleet_store.append fleet ~tenant:i e) runs);
    Fleet_store.sync fleet;
    let t1 = Unix.gettimeofday () in
    let fsyncs = Fleet_store.fsync_count fleet in
    let appended = Fleet_store.appended fleet in
    Fleet_store.close fleet;
    ( (t1 -. t0) *. 1e9 /. float_of_int appended,
      float_of_int fsyncs /. float_of_int appended )
  in
  let best_ns = ref infinity in
  let rate = ref 0. in
  for r = 1 to reps do
    let ns, fr = one (string_of_int r) in
    if ns < !best_ns then best_ns := ns;
    rate := fr
  done;
  [
    ("journal/fleet_group", !best_ns);
    ("journal/fleet_fsyncs_per_kround", !rate *. 1000.);
  ]
