(** Long-horizon sharded-broker artifact: one 10⁶-round stream per
    mechanism variant, run three ways — the sequential
    {!Dm_market.Broker.run} reference, {!Dm_market.Broker.run_sharded}
    in exact mode (merge verified bit-for-bit against the reference,
    printed per variant), and warm-start mode (reported as the maximum
    regret-ratio drift).  The market is the App-1 shape at n = 16 with
    the stream generated from per-round {!Dm_prob.Rng.split} children,
    so shard prefixes materialize in parallel at any jobs value while
    the printed bytes never change. *)

val report :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float ->
  ?seed:int ->
  ?jobs:int ->
  Format.formatter ->
  unit
(** [scale] multiplies the 10⁶-round horizon (floored at 100);
    [jobs]/[pool] control shard dispatch exactly as in the other
    drivers (an explicit [pool] wins, else the installed default pool,
    else a transient pool of [jobs] domains).  Output bytes depend on
    neither. *)
