(** Long-horizon sharded-broker artifact: one 10⁶-round stream per
    mechanism variant, run three ways — the sequential
    {!Dm_market.Broker.run} reference, {!Dm_market.Broker.run_sharded}
    in exact mode (merge verified bit-for-bit against the reference,
    printed per variant), and warm-start mode (reported as the maximum
    regret-ratio drift).  The market is the App-1 shape at n = 16 with
    the stream generated from per-round {!Dm_prob.Rng.split} children,
    so shard prefixes materialize in parallel at any jobs value while
    the printed bytes never change.

    The market construction ({!make_setup}, {!mechanism}, {!variants})
    and the bit-identity helpers are exposed so other artifacts that
    need the same reproducible stream — notably
    {!Dm_experiments.Recover} — reuse them instead of forking the
    shape. *)

val default_dim : int
(** Feature dimension the artifact itself runs at (16). *)

val full_rounds : int
(** The unscaled horizon (10⁶ rounds). *)

val scaled_rounds : float -> int -> int
(** [scaled_rounds scale rounds] is the horizon after applying a
    [--scale] factor, floored at 100 rounds. *)

type setup = {
  dim : int;  (** feature dimension *)
  rounds : int;  (** horizon the streams were materialized for *)
  model : Dm_market.Model.t;  (** the linear market-value model *)
  radius : float;  (** initial ellipsoid ball radius *)
  epsilon : float;  (** target accuracy n²/T (before the δ floor) *)
  workload : int -> Dm_linalg.Vec.t * float;
      (** round [t]'s feature vector and reserve, pure in [t] *)
  noise : int -> float;  (** round [t]'s valuation noise, pure in [t] *)
}
(** One reproducible market: the App-1 shape (tilted non-negative
    θ-star with norm √(2n), unit-norm non-negative features, reserve
    q = Σᵢ xᵢ) with the stream backed by per-round
    {!Dm_prob.Rng.split} children, so [workload]/[noise] are pure in
    [t] and safe from any domain. *)

val make_setup : ?dim:int -> seed:int -> rounds:int -> unit -> setup
(** Materialize the market for a horizon.  [dim] defaults to
    {!default_dim}; everything downstream of [seed] is deterministic,
    so two calls with equal arguments replay the same stream. *)

val mechanism : setup -> Dm_market.Mechanism.variant -> Dm_market.Mechanism.t
(** A fresh mechanism for [setup]: ε floored at 2.5 n δ (below that
    the buffered-cut variants stall — EXPERIMENTS.md) over the ball
    of [setup.radius]. *)

val variants : (string * Dm_market.Mechanism.variant) list
(** The four paper variants (pure, uncertainty, reserve,
    reserve+uncertainty) with the artifact's δ = 0.01. *)

val bits : float -> int64
(** IEEE-754 bit pattern, for bit-identity comparisons. *)

val floats_identical : float array -> float array -> bool
(** Element-wise bit-pattern equality (NaN-safe). *)

val series_identical : Dm_market.Broker.series -> Dm_market.Broker.series -> bool
(** Bit-pattern equality of two regret series (checkpoints, cumulative
    regret and value, regret ratio). *)

val report :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float ->
  ?seed:int ->
  ?jobs:int ->
  Format.formatter ->
  unit
(** [scale] multiplies the 10⁶-round horizon (floored at 100);
    [jobs]/[pool] control shard dispatch exactly as in the other
    drivers (an explicit [pool] wins, else the installed default pool,
    else a transient pool of [jobs] domains).  Output bytes depend on
    neither. *)
