(** Regret degradation under adversarial valuation streams.

    Prices six {!Dm_synth.Adversarial} stream families — the paper's
    sub-Gaussian control, smooth drift, abrupt regime switches,
    Student-t and Pareto heavy tails, and a strategic in-margin liar —
    with both vanilla Algorithm 2 (reserve + uncertainty) and the
    misspecification-robust variant
    ({!Dm_market.Mechanism.create_robust}), on identical streams.
    The artifact records where the paper's regret guarantee actually
    breaks and where the robust variant recovers it, next to the
    {!Dm_market.Adversary} lower-bound rows showing what no guard can
    prevent.

    The closing summary line ("stress summary: ... OK") asserts that
    the robust variant is strictly better than vanilla on every
    misspecified non-strategic family and within the stated margin
    (measured probe forfeits + 5% of vanilla) on the paper's own
    stream — `make ci` greps it.  The strategic family is reported
    without a check: repeated in-margin lies can force the robust
    detector into restart cycles, which the table records honestly. *)

val degradation :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float ->
  ?seed:int ->
  ?jobs:int ->
  Format.formatter ->
  unit
(** [degradation ppf] runs all (family × mechanism) cells.  [scale]
    multiplies the 20,000-round horizon (floored at 400); cells fan
    out over [jobs] domains (or an explicit [pool]) via {!Runner},
    each cell's stream derived from its own seed before dispatch, so
    the output is byte-identical whatever the worker count. *)
