(** Experiment drivers for App 1 (noisy linear query; Sec. V-A):
    Fig. 4(a)–(f), Table I, Fig. 5(a), and the cold-start comparison.

    [scale] multiplies every horizon (floored at 100 rounds) so the
    bench harness can regenerate the figures' shapes quickly;
    [scale = 1.] is the paper's full setting.  [jobs] fans the
    independent grid cells out over that many domains via {!Runner}
    (default 1), or pass an explicit [pool]; output bytes depend on
    neither. *)

val checkpoints : rounds:int -> count:int -> int array
(** ≈[count] log-spaced report points ending exactly at [rounds];
    shared by the other experiment modules. *)

val fig4 :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float -> ?seed:int -> ?jobs:int -> Format.formatter -> unit
(** Cumulative regret of the four variants at log-spaced checkpoints,
    one panel per n ∈ {1, 20, 40, 60, 80, 100} (T as in the paper:
    10² for n = 1, 10⁴ for n ≤ 40, 10⁵ above).  One runner cell per
    panel. *)

val table1 : ?scale:float -> ?seed:int -> Format.formatter -> unit
(** Per-round mean (std) of market value, reserve price, posted price
    and regret under the version with reserve price — the paper's
    Table I. *)

val fig5a : ?scale:float -> ?seed:int -> Format.formatter -> unit
(** Regret ratios at n = 100 for the four variants and the risk-averse
    baseline, including the cold-start region t ≤ 100. *)

val coldstart :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float -> ?seed:int -> ?seeds:int -> ?jobs:int ->
  Format.formatter -> unit
(** The Sec. V-A cold-start claim at n = 20, t = 10⁴: percentage
    regret reduction of the reserve variants over their reserve-free
    counterparts, averaged over [seeds] independent markets
    (default 5).  One runner cell per market seed. *)
