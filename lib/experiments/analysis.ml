module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Ellipsoid = Dm_market.Ellipsoid
module Mechanism = Dm_market.Mechanism
module Model = Dm_market.Model
module Broker = Dm_market.Broker
module Regret = Dm_market.Regret
module Adversary = Dm_market.Adversary

let fig1 ppf =
  let reserve = 2. and market_value = 6. in
  let prices = Vec.init 13 (fun i -> float_of_int i *. 0.75) in
  let curve = Regret.single_round_curve ~reserve ~market_value ~prices in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i p ->
           [
             Printf.sprintf "%.2f" p;
             Printf.sprintf "%.2f" curve.(i);
             (if p < market_value then "sold, underpriced"
              else if p = market_value then "sold at value"
              else "rejected");
           ])
         prices)
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Fig. 1: single-round regret vs posted price (reserve %.1f, market \
          value %.1f)"
         reserve market_value)
    ~header:[ "posted price"; "regret"; "outcome" ]
    rows

let lemma8 ?(dim = 2) ?(rounds = 2000) ppf =
  let run allow = Adversary.run ~allow_conservative_cuts:allow ~dim ~rounds () in
  let guarded = run false and exposed = run true in
  let row name (o : Adversary.outcome) =
    [
      name;
      Printf.sprintf "%.3g" o.Adversary.width_e2_at_switch;
      string_of_int o.Adversary.exploratory_second_half;
      Printf.sprintf "%.2f" o.Adversary.result.Broker.total_regret;
    ]
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Lemma 8 / Fig. 6 adversary (dim %d, %d rounds): conservative cuts \
          let axis widths explode and force Ω(T) regret"
         dim rounds)
    ~header:
      [ "variant"; "width along e2 at switch"; "2nd-half exploratory"; "regret" ]
    [ row "guarded (paper)" guarded; row "conservative cuts allowed" exposed ]

let theorem3 ?(seed = 17) ppf =
  let rows =
    List.map
      (fun t ->
        let rng = Rng.create seed in
        let theta = [| Rng.uniform rng 0.5 1.5 |] in
        let model = Model.linear ~theta in
        let lt = log (float_of_int t) in
        let mech =
          Mechanism.create
            (Mechanism.config ~variant:Mechanism.pure
               ~epsilon:(lt /. log 2. /. float_of_int t)
               ())
            (Ellipsoid.ball ~dim:1 ~radius:2.)
        in
        let workload _ = ([| 1. |], 0.) in
        let r =
          Broker.run
            ~policy:(Broker.Ellipsoid_pricing mech)
            ~model
            ~noise:(fun _ -> 0.)
            ~workload ~rounds:t ()
        in
        [
          string_of_int t;
          Printf.sprintf "%.3f" r.Broker.total_regret;
          Printf.sprintf "%.3f" (r.Broker.total_regret /. lt);
        ])
      [ 100; 1_000; 10_000; 100_000 ]
  in
  Table.print ppf
    ~title:
      "Theorem 3: 1-D pure version — cumulative regret grows like log T \
       (regret / log T stays bounded)"
    ~header:[ "T"; "cumulative regret"; "regret / log T" ]
    rows

let lemma45_check ?(dim = 6) ?(rounds = 3_000) ?(seed = 31) ppf =
  let rng = Rng.create seed in
  let radius = 2. in
  let delta = 0.002 in
  let epsilon = 4. *. float_of_int dim *. delta (* the lemmas' ε ≥ 4nδ *) in
  let theta =
    Vec.scale 1.2 (Vec.normalize (Vec.map abs_float (Dist.normal_vec rng ~dim)))
  in
  let mech =
    Mechanism.create
      (Mechanism.config
         ~variant:(Mechanism.with_uncertainty ~delta)
         ~epsilon ())
      (Ellipsoid.ball ~dim ~radius)
  in
  let min_eig = ref infinity in
  let max_single_drop = ref 1. in
  let prev = ref (Dm_linalg.Eigen.smallest_eigenvalue
                    (Mechanism.ellipsoid mech).Ellipsoid.shape) in
  for _ = 1 to rounds do
    let x = Vec.normalize (Dist.normal_vec rng ~dim) in
    let v = Vec.dot x theta +. Dist.normal rng ~mean:0. ~std:(delta /. 3.) in
    ignore (Mechanism.step mech ~x ~reserve:neg_infinity ~market_index:v);
    let e = Dm_linalg.Eigen.smallest_eigenvalue
              (Mechanism.ellipsoid mech).Ellipsoid.shape in
    min_eig := Float.min !min_eig e;
    if e < !prev then max_single_drop := Float.min !max_single_drop (e /. !prev);
    prev := e
  done;
  let n = float_of_int dim in
  let s = 1. (* ‖x‖ = 1 *) in
  let tau = 1. /. (400. *. n *. n *. (s ** 4.)) in
  let floor_bound = tau *. tau *. n *. n /. ((n +. 1.) ** 2.) in
  (* Lemma 5 at the worst admissible α = −1/(2n). *)
  let lemma5_floor =
    n *. n *. ((1. -. (1. /. (2. *. n))) ** 2.) /. ((n +. 1.) ** 2.)
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Lemmas 4-5 empirical check (Algorithm 2*, n = %d, %d rounds, ε = \
          4nδ): smallest eigenvalue of the shape matrix"
         dim rounds)
    ~header:[ "quantity"; "observed"; "theoretical bound"; "holds" ]
    [
      [
        "min over run";
        Printf.sprintf "%.3e" !min_eig;
        Printf.sprintf ">= %.3e (τ²n²/(n+1)²)" floor_bound;
        (if !min_eig >= floor_bound then "yes" else "NO");
      ];
      [
        "worst single-cut shrink factor";
        Printf.sprintf "%.4f" !max_single_drop;
        Printf.sprintf ">= %.4f (n²(1−α)²/(n+1)², α = −1/2n)" lemma5_floor;
        (if !max_single_drop >= lemma5_floor -. 1e-9 then "yes" else "NO");
      ];
    ]

let theorem2 ?(scale = 1.) ?(seed = 43) ppf =
  let rounds = max 500 (int_of_float (scale *. 20_000.)) in
  let dim = 8 in
  let rng = Rng.create seed in
  let positive_unit rng =
    Vec.normalize (Vec.map abs_float (Dist.normal_vec rng ~dim))
  in
  let theta = Vec.scale 1.1 (positive_unit rng) in
  let markets =
    [
      ("log-linear", Model.log_linear ~theta, `Plain);
      ("log-log", Model.log_log ~theta, `Log_features);
      ("logistic", Model.logistic ~theta:(Vec.scale (-1.5) theta), `Plain);
      ( "kernelized",
        (let landmarks = Array.init 6 (fun _ -> positive_unit rng) in
         let map =
           Dm_ml.Kernel.landmark_map (Dm_ml.Kernel.Rbf { gamma = 1. }) ~landmarks
         in
         Model.kernelized ~map
           ~theta:
             (Vec.scale 0.5
                (Vec.normalize
                   (Vec.map abs_float (Dist.normal_vec rng ~dim:6))))),
        `Plain );
    ]
  in
  let cps = [| rounds / 100; rounds / 10; rounds |] in
  let rows =
    List.map
      (fun (name, model, feature_kind) ->
        let index_dim = Model.index_dim model in
        let mech =
          Mechanism.create
            (Mechanism.config ~variant:Mechanism.with_reserve
               ~epsilon:
                 (Float.max 0.01
                    (float_of_int (index_dim * index_dim) /. float_of_int rounds))
               ())
            (Ellipsoid.ball ~dim:index_dim ~radius:2.)
        in
        let wl_rng = Rng.create (seed + 1) in
        let workload _ =
          let x =
            match feature_kind with
            | `Plain -> positive_unit wl_rng
            | `Log_features ->
                (* log-log needs strictly positive features away from 0. *)
                Vec.map (fun v -> 0.5 +. v) (positive_unit wl_rng)
          in
          (x, 0.6 *. Model.value model x)
        in
        let r =
          Broker.run ~checkpoints:cps
            ~policy:(Broker.Ellipsoid_pricing mech)
            ~model
            ~noise:(fun _ -> 0.)
            ~workload ~rounds ()
        in
        name
        :: Array.to_list
             (Array.map Table.fmt_pct r.Broker.series.Broker.regret_ratio))
      markets
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Theorem 2 in practice: the adapted mechanism on the four non-linear \
          models (reserve at 60%% of value, T = %d)"
         rounds)
    ~header:
      ("model"
      :: Array.to_list (Array.map (Printf.sprintf "ratio at t=%d") cps))
    rows

let lemma2_check ?(samples = 2_000) ?(seed = 23) ppf =
  let rng = Rng.create seed in
  let worst = ref neg_infinity in
  let max_drift = ref 0. in
  let tested = ref 0 in
  while !tested < samples do
    let n = 2 + Rng.int rng 7 in
    let e = Ellipsoid.ball ~dim:n ~radius:Float.(max 0.5 (Rng.float rng *. 3.)) in
    let x = Dist.normal_vec rng ~dim:n in
    if Vec.norm2 x > 0.1 then begin
      let { Ellipsoid.mid; half_width; _ } = Ellipsoid.bounds e ~x in
      (* α uniform in the Lemma 2 range (−1/n, 0]. *)
      let alpha = -.Rng.float rng /. float_of_int n in
      let price = mid -. (alpha *. half_width) in
      match Ellipsoid.cut_below e ~x ~price with
      | Ellipsoid.Cut e' ->
          incr tested;
          let log_ratio =
            Ellipsoid.log_volume_factor e' -. Ellipsoid.log_volume_factor e
          in
          let nf = float_of_int n in
          let bound = -.(((1. +. (nf *. alpha)) ** 2.) /. (5. *. nf)) in
          worst := Float.max !worst (log_ratio -. bound);
          max_drift := Float.max !max_drift (Ellipsoid.volume_drift e')
      | Ellipsoid.Too_shallow | Ellipsoid.Empty -> ()
    end
  done;
  Table.print ppf
    ~title:"Lemma 2 empirical check: V(E')/V(E) ≤ exp(−(1+nα)²/5n)"
    ~header:
      [
        "cuts sampled";
        "max log-ratio minus log-bound (≤ 0 ⇒ holds)";
        "max incremental-volume drift";
      ]
    [
      [
        string_of_int !tested;
        Printf.sprintf "%.6f" !worst;
        Printf.sprintf "%.2e" !max_drift;
      ];
    ]
