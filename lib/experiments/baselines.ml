module Stats = Dm_prob.Stats
module Broker = Dm_market.Broker
module Mechanism = Dm_market.Mechanism
module Sgd_pricing = Dm_market.Sgd_pricing
module Noisy_query = Dm_apps.Noisy_query

let compare ?pool ?(scale = 1.) ?(seed = 42) ?(jobs = 1) ppf =
  let rounds = max 1_000 (int_of_float (scale *. 10_000.)) in
  let panel dim ppf =
      let setup = Noisy_query.make ~seed ~dim ~rounds () in
      let cps = App1.checkpoints ~rounds ~count:8 in
      let sgd =
        Sgd_pricing.create ~dim ~radius:setup.Noisy_query.radius ()
      in
      let run_sgd =
        Broker.run ~checkpoints:cps
          ~policy:(Broker.Custom (Sgd_pricing.policy sgd))
          ~model:setup.Noisy_query.model
          ~noise:(Noisy_query.noise setup)
          ~workload:(Noisy_query.workload setup)
          ~rounds ()
      in
      let runs =
        [
          ( "ellipsoid (reserve)",
            Noisy_query.run ~checkpoints:cps setup Mechanism.with_reserve );
          ("sgd (Amin et al.)", run_sgd);
          ("risk-averse", Noisy_query.run_baseline ~checkpoints:cps setup);
        ]
      in
      let header = "t" :: List.map fst runs in
      let rows =
        Array.to_list
          (Array.mapi
             (fun i t ->
               string_of_int t
               :: List.map
                    (fun (_, r) ->
                      Table.fmt_pct r.Broker.series.Broker.regret_ratio.(i))
                    runs)
             cps)
      in
      Table.print ppf
        ~title:
          (Printf.sprintf
             "Baselines (n = %d, T = %d): regret ratios, ellipsoid vs SGD \
              pricing vs risk-averse"
             dim rounds)
        ~header rows
  in
  Runner.render ?pool ~jobs ppf (Array.map panel [| 5; 20 |])

let seed_robustness ?pool ?(scale = 1.) ?(seed = 42) ?(seeds = 7) ?(jobs = 1) ppf =
  let dim = 20 in
  let rounds = max 1_000 (int_of_float (scale *. 10_000.)) in
  let names =
    [ "pure"; "uncertainty"; "reserve"; "reserve+unc"; "risk-averse" ]
  in
  (* One cell per market; the online accumulators merge in submission
     order so the Welford sums match the sequential run bit-for-bit. *)
  let per_seed =
    Runner.map ?pool ~jobs
      (fun k ->
        let setup =
          Noisy_query.make ~seed:(seed + (1000 * k)) ~dim ~rounds ()
        in
        let delta = setup.Noisy_query.delta in
        let ratio variant =
          (Noisy_query.run setup variant).Broker.regret_ratio
        in
        let pure = ratio Mechanism.pure in
        let unc = ratio (Mechanism.with_uncertainty ~delta) in
        let res = ratio Mechanism.with_reserve in
        let both = ratio (Mechanism.with_reserve_and_uncertainty ~delta) in
        let base = (Noisy_query.run_baseline setup).Broker.regret_ratio in
        [ pure; unc; res; both; base ])
      (Array.init seeds Fun.id)
  in
  let stats = List.map (fun n -> (n, Stats.online_create ())) names in
  let reserve_beats_pure = ref 0 in
  let both_beats_unc = ref 0 in
  let mech_beats_baseline = ref 0 in
  Array.iter
    (fun ratios ->
      List.iter2 (fun (_, o) v -> Stats.online_add o v) stats ratios;
      match ratios with
      | [ pure; unc; res; both; base ] ->
          if res < pure then incr reserve_beats_pure;
          if both < unc then incr both_beats_unc;
          if res < base then incr mech_beats_baseline
      | _ -> assert false)
    per_seed;
  let rows =
    List.map
      (fun (name, o) ->
        [
          name;
          Printf.sprintf "%.2f%% ± %.2f%%"
            (100. *. Stats.online_mean o)
            (100. *. Stats.online_std o);
        ])
      stats
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Seed robustness (n = %d, T = %d, %d markets): final regret ratios"
         dim rounds seeds)
    ~header:[ "policy"; "ratio (mean ± std)" ]
    rows;
  Format.fprintf ppf
    "Ordering stability over %d markets: reserve < pure in %d, reserve+unc < \
     uncertainty in %d, reserve < risk-averse in %d.@.@."
    seeds !reserve_beats_pure !both_beats_unc !mech_beats_baseline
