(** Baseline comparison beyond the paper's tables: the ellipsoid
    mechanism against the SGD contextual pricer of Amin et al.
    (NIPS'14, the O(T^{2/3})-regret predecessor the related-work
    section positions against) and the risk-averse reserve-poster, on
    the App-1 market. *)

val compare :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float -> ?seed:int -> ?jobs:int -> Format.formatter -> unit
(** Regret ratios at log-spaced checkpoints for n ∈ {5, 20} over
    T = 10⁴·scale rounds: the ellipsoid mechanism's ratio collapses
    while SGD's decays at its slower polynomial rate.  [jobs] runs one
    {!Runner} cell per dimension; output bytes never depend on it. *)

val seed_robustness :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float -> ?seed:int -> ?seeds:int -> ?jobs:int ->
  Format.formatter -> unit
(** The headline App-1 orderings over [seeds] (default 7) independent
    markets at n = 20: final regret ratios of the four variants and
    the risk-averse baseline as mean ± std, plus how often each
    paper-claimed ordering held — single-seed figures can flip
    orderings by luck; this table shows which conclusions are
    stable. *)
