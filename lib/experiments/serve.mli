(** Batched fleet serving: throughput and allocation of the fused
    cross-tenant decide path against unbatched round-at-a-time serving.

    The market is the fig5c_hd operating point made multi-tenant: all
    tenants of one fleet share a single orthonormal rank-k projection
    (rows orthonormalized Gaussian), every feature lies exactly in its
    rowspace (so [err = 0] and projected pricing is exact), and each
    tenant prices its own in-subspace θ* with the pure variant.
    Requests arrive round-robin across tenants; a
    {!Dm_store.Fleet.Batcher} with [capacity = latency_rounds = B]
    groups them, each flush prices the whole batch through one
    {!Dm_market.Mechanism.decide_batch} pass (one gather, one blocked
    batch projection, sequential rank-k decides), observes and appends
    every round in arrival order, and the shared group-commit journal
    ({!Dm_store.Fleet}) arms its latency bound at the same [B] — so
    the decide batch and the fsync batch coincide.

    Journaled events carry the rank-k projected statistic
    [u = P·x] ({!Dm_market.Mechanism.projected_feature}) rather than
    the raw n-dim feature: with [err = 0] the mechanism's evolution on
    [x] is bit-identical to a dense k-dim mechanism's on [u], so the
    compact record replays exactly while journal bandwidth stays
    independent of the ambient dimension — the byte throughput that
    would otherwise drown the fsync amortization at n = 4096.

    [B = 1] runs the pre-batching reference path (sequential
    {!Dm_market.Mechanism.decide}, group commit armed every append).
    Every batched config is then checked {e bit-identical} to it: the
    re-encoded tenant-tagged journal byte-for-byte and every tenant's
    final knowledge-set state (scale/center/shape digest).  Each
    config also runs a {!Dm_store.Fleet.recover} round-trip: a stride
    of tenants restores from on-disk snapshots to the served
    mechanisms' exact binary snapshots, and the rest rebuild from
    scratch — the recovery path replaying the k-dim log into dense
    k-dim mechanisms, which must land on the served fleet's exact
    ellipsoid bits.  Timing and minor-words-per-round columns are
    measured; identity columns are deterministic. *)

val report :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float ->
  ?seed:int ->
  ?jobs:int ->
  Format.formatter ->
  unit
(** [report ppf] sweeps batch size B ∈ {1, 8, 64, 256} × fleet size
    (B ≤ fleet size, so every batch holds distinct tenants) and prints
    per config: ns/round and rounds/s over the whole serving loop,
    decide-only ns/round, steady-state minor words per round for the
    decide+observe path (arena'd — expected a small dimension-
    independent constant) and for the whole loop, fsyncs per 10³
    rounds, the speedup over that fleet's B = 1 reference, and the
    identity/recovery verdicts.  Scale ≥ 0.5 prices at n = 4096,
    k = 32 (the fig5c_hd ambient dimension at exactly its planted
    rank — the acceptance operating point); smaller scales shrink
    the dimensions and fleet list for smoke runs.  Input generation
    fans out over [jobs]/[pool] via {!Runner.map}; the timed configs
    run sequentially.  The closing line
    ["serve summary: … OK"] is what `make ci` greps. *)

val microbench : ?scale:float -> ?seed:int -> unit -> (string * float) list
(** Benchmark helper for the bench harness's serve stage: one B = 64,
    64-tenant serving run at the scale-tier dimensions, returning
    [("serve/batch_decide B64 n<n> k<k>", decide ns per round)],
    [("serve/round_alloc minor_words", steady-state minor words per
    round of the decide+observe path)] and
    [("gc/serve_loop minor_words", minor words per round of the whole
    serving loop)] — the keys {!Dm_bench.Record.critical_prefixes}
    protects.  Fails if the recovery round-trip drifts. *)
