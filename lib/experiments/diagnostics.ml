module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Pca = Dm_ml.Pca
module Ellipsoid = Dm_market.Ellipsoid
module Mechanism = Dm_market.Mechanism
module Model = Dm_market.Model
module Noisy_query = Dm_apps.Noisy_query
module Rental = Dm_apps.Rental
module Impression = Dm_apps.Impression

let effective_rank ?(threshold = 0.99) sample =
  if threshold <= 0. || threshold > 1. then
    invalid_arg "Diagnostics.effective_rank: threshold in (0, 1]";
  let pca = Pca.fit sample in
  let ev = pca.Pca.explained_variance in
  let total = Vec.sum ev in
  if total <= 0. then 0
  else begin
    let acc = ref 0. and k = ref 0 in
    (try
       Array.iter
         (fun v ->
           acc := !acc +. v;
           incr k;
           if !acc >= threshold *. total then raise Exit)
         ev
     with Exit -> ());
    !k
  end

let matrix_of_stream stream ~rows =
  let n = min rows (Array.length stream) in
  let dim = Vec.dim stream.(0) in
  Mat.init n dim (fun i j -> stream.(i).(j))

(* Knowledge-set volume decay on the App-1 market, read through the
   O(1) incremental log-volume cache at log-spaced checkpoints; the
   drift column re-derives the volume from a fresh Cholesky log-det to
   show the cache stays faithful between resyncs. *)
let volume_decay ~seed ~rounds ppf =
  let dim = 20 in
  let nq = Noisy_query.make ~seed ~dim ~rounds () in
  let w = Noisy_query.workload nq in
  let mech =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.with_reserve
         ~epsilon:nq.Noisy_query.epsilon ())
      (Ellipsoid.ball ~dim ~radius:nq.Noisy_query.radius)
  in
  let theta = nq.Noisy_query.model.Model.theta in
  let checkpoints = App1.checkpoints ~rounds ~count:8 in
  let next = ref 0 in
  let rows = ref [] in
  for t = 1 to rounds do
    let x, reserve = w (t - 1) in
    ignore (Mechanism.step mech ~x ~reserve ~market_index:(Vec.dot x theta));
    if !next < Array.length checkpoints && t = checkpoints.(!next) then begin
      incr next;
      let e = Mechanism.ellipsoid mech in
      rows :=
        [
          string_of_int t;
          Printf.sprintf "%.3f" (Ellipsoid.log_volume_factor e);
          string_of_int (Mechanism.exploratory_rounds mech);
          Printf.sprintf "%.2e" (Ellipsoid.volume_drift e);
        ]
        :: !rows
    end
  done;
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Knowledge-set volume decay, App 1 reserve variant (n = %d): \
          incremental ½·log det A vs cuts spent"
         dim)
    ~header:[ "round"; "log-volume factor"; "exploratory cuts"; "cache drift" ]
    (List.rev !rows)

let report ?(seed = 42) ?(sample = 2_000) ppf =
  let rows = ref [] in
  let add name dim stream =
    let m = matrix_of_stream stream ~rows:sample in
    rows :=
      [
        name;
        string_of_int dim;
        string_of_int (effective_rank ~threshold:0.95 m);
        string_of_int (effective_rank ~threshold:0.99 m);
      ]
      :: !rows
  in
  List.iter
    (fun dim ->
      let nq = Noisy_query.make ~seed ~dim ~rounds:sample () in
      let w = Noisy_query.workload nq in
      add
        (Printf.sprintf "app 1: aggregated compensations (n = %d)" dim)
        dim
        (Array.init sample (fun t -> fst (w t))))
    [ 20; 100 ];
  let rental = Rental.make ~rows:(max sample 4_000) ~seed:7 () in
  add "app 2: encoded listings (n = 55)" 55
    (Array.init sample (fun i -> Mat.row rental.Rental.features i));
  let imp =
    Impression.make ~train_rounds:30_000 ~seed:3 ~dim:128 ~rounds:sample ()
  in
  add "app 3: hashed impressions (n = 128, sparse)" 128
    imp.Impression.sparse_stream;
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Feature-stream effective rank over %d rounds (components for 95%% / \
          99%% of variance) — the driver of exploration cost"
         sample)
    ~header:[ "stream"; "n"; "rank @95%"; "rank @99%" ]
    (List.rev !rows);
  volume_decay ~seed ~rounds:sample ppf
