module Broker = Dm_market.Broker
module Mechanism = Dm_market.Mechanism
module Rental = Dm_apps.Rental

let scaled_rows scale = max 2_000 (int_of_float (scale *. 74_111.))

let fig5b ?(scale = 1.) ?(seed = 7) ppf =
  let rows = scaled_rows scale in
  let setup = Rental.make ~rows ~seed () in
  Format.fprintf ppf
    "App 2 setup: %d listings, n = %d, OLS held-out MSE %.3f (paper 0.226), \
     ε = %.4f@.@."
    rows setup.Rental.dim setup.Rental.test_mse setup.Rental.epsilon;
  let cps = App1.checkpoints ~rounds:rows ~count:10 in
  let runs =
    ("pure", Rental.run ~checkpoints:cps ~ratio:0.0 setup Mechanism.pure)
    :: List.concat_map
         (fun ratio ->
           [
             ( Printf.sprintf "reserve %.1f" ratio,
               Rental.run ~checkpoints:cps ~ratio setup Mechanism.with_reserve
             );
             ( Printf.sprintf "risk-averse %.1f" ratio,
               Rental.run_baseline ~checkpoints:cps ~ratio setup );
           ])
         [ 0.4; 0.6; 0.8 ]
  in
  let header = "t" :: List.map fst runs in
  let rows_out =
    Array.to_list
      (Array.mapi
         (fun i t ->
           string_of_int t
           :: List.map
                (fun (_, r) ->
                  Table.fmt_pct r.Broker.series.Broker.regret_ratio.(i))
                runs)
         cps)
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Fig. 5(b) (n = 55, T = %d): regret ratios, accommodation rental \
          (log-linear model)"
         rows)
    ~header rows_out;
  List.iter
    (fun (name, r) ->
      Format.fprintf ppf "%-16s %s@." name
        (Table.sparkline r.Broker.series.Broker.regret_ratio))
    runs;
  Format.fprintf ppf
    "@.Paper finals: pure 4.57%%; reserve 0.4/0.6/0.8 → 4.01/3.83/3.79%%; \
     risk-averse → 23.40/17.00/9.33%%@.@."

let coldstart ?pool ?(scale = 1.) ?(seed = 7) ?(seeds = 5) ?(jobs = 1) ppf =
  let rows = max 2_000 (scaled_rows (scale /. 10.)) in
  (* The reserve's protection is structural in round 1 (the first
     exploratory price IS the reserve) and washes out as bisection
     noise dominates; report the fade. *)
  let horizons = [ 1; 10; 100; 1000 ] in
  let ratios = [ 0.4; 0.6; 0.8 ] in
  (* One cell per corpus seed, returning the (ratio, horizon) grid of
     regret ratios; the mean over corpora is merged in the caller's
     domain. *)
  let per_seed =
    Runner.map ?pool ~jobs
      (fun k ->
        let setup = Rental.make ~rows ~seed:(seed + (50 * k)) () in
        List.map
          (fun ratio ->
            let r =
              Rental.run
                ~checkpoints:(Array.of_list horizons)
                ~ratio setup Mechanism.with_reserve
            in
            List.mapi
              (fun i h -> ((ratio, h), r.Broker.series.Broker.regret_ratio.(i)))
              horizons)
          ratios)
      (Array.init seeds Fun.id)
  in
  let totals = Hashtbl.create 16 in
  Array.iter
    (List.iter
       (List.iter (fun (key, v) ->
            let prev =
              match Hashtbl.find_opt totals key with Some p -> p | None -> 0.
            in
            Hashtbl.replace totals key (prev +. v))))
    per_seed;
  let rows_out =
    List.map
      (fun ratio ->
        Printf.sprintf "%.1f" ratio
        :: List.map
             (fun h ->
               Table.fmt_pct (Hashtbl.find totals (ratio, h) /. float_of_int seeds))
             horizons)
      ratios
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "App 2 cold start: early regret ratios by reserve log-ratio \
          (mean over %d corpora of %d listings)"
         seeds rows)
    ~header:("log-ratio" :: List.map (Printf.sprintf "t = %d") horizons)
    rows_out
