(** Deterministic fork/join execution of independent experiment cells
    over OCaml 5 domains.

    The experiment grid — (figure × dimension × variant × seed) — is
    embarrassingly parallel: every cell derives its randomness from its
    own integer seed (or an {!Dm_prob.Rng} stream split off {e before}
    dispatch), touches no state outside its closure, and renders into
    its own buffer.  Results merge in submission order, so the output
    is byte-identical whatever the worker count — [~jobs:1] and
    [~jobs:8] produce the same bytes.

    Execution runs on a {!Dm_linalg.Pool}: an explicit [?pool], else
    the process default installed by {!Dm_linalg.Pool.set_default}
    (when [jobs > 1]), else a transient pool of [jobs] domains.  A
    cell dispatched onto the pool that itself calls a pooled [Mat]
    kernel runs that kernel inline — nesting never deadlocks and never
    changes results.

    Cells must be self-contained: no shared mutable state (including
    unforced [Lazy.t] values — force them before dispatch) may cross
    domains. *)

val map :
  ?pool:Dm_linalg.Pool.t -> ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ?pool ~jobs f xs] is [Array.map f xs] computed in parallel.
    With [?pool], the given pool is used and [jobs] is ignored; with
    [jobs = 1] (the default) the map is plain sequential [Array.map]
    and no domain is involved.  Results are returned in submission
    order regardless of completion order.  If any application of [f]
    raises, the exception of the lowest-index failing cell is
    re-raised after the join barrier.  Raises [Invalid_argument] if
    [jobs < 1]. *)

val render :
  ?pool:Dm_linalg.Pool.t ->
  ?jobs:int ->
  Format.formatter ->
  (Format.formatter -> unit) array ->
  unit
(** [render ?pool ~jobs ppf cells] runs every cell against its own
    [Buffer]-backed formatter via {!map}, then flushes the buffers to
    [ppf] in submission order — the parallel replacement for
    [Array.iter (fun cell -> cell ppf) cells]. *)
