(** Experiment driver for App 2 (accommodation rental; Sec. V-B):
    Fig. 5(b), plus the reserve-ratio cold-start slice. *)

val fig5b : ?scale:float -> ?seed:int -> Format.formatter -> unit
(** Regret ratios over the full corpus for the pure version, the
    reserve version at log-ratios {0.4, 0.6, 0.8}, and the risk-averse
    baselines (paper finals: 4.57 / 4.01 / 3.83 / 3.79%; baselines
    23.40 / 17.00 / 9.33%). *)

val coldstart :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float -> ?seed:int -> ?seeds:int -> ?jobs:int ->
  Format.formatter -> unit
(** Early-horizon (t ≤ 10³) regret ratios by reserve log-ratio,
    averaged over [seeds] corpora (default 5): the paper's claim that
    a reserve nearer the market value mitigates cold start more.
    [jobs] runs one {!Runner} cell per corpus seed; the output does
    not depend on it. *)
