(** Fig. 5(c) extension: pricing at n up to 16,384 through the rank-k
    projected ellipsoid (Sec. III-C1 discusses why the dense O(n²)
    round stops scaling; {!Dm_market.Mechanism.create_projected} is
    the low-rank answer).

    The market is synthetic: features concentrate near a planted
    32-dimensional subspace of R^n with a ~1e-3 isotropic tail, and
    θ* lies in that subspace with ‖θ*‖ = 0.9·R.  Each projected cell
    fits a rank-k basis with {!Dm_ml.Subspace.fit} on a training
    batch, budgets the tail as
    [err = 1.25 · max batch residual · R] (the true parameter vector
    is never consulted),
    floors ε at the 2.5·k·err stall bound (EXPERIMENTS.md), and prices
    the same stream the dense baseline sees.  Reported per cell: fit
    time, err, explained variance, decide/cut wall clock per round,
    exploratory rounds, cumulative regret, the
    {!Dm_market.Regret.projection_term} budget err·T, and — at
    n = 1024, where the dense baseline is feasible — the regret ratio
    against it.  The closing summary line ("all regret finite and
    projection-error column populated") is what `make ci` greps. *)

val fig5c_hd :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float ->
  ?seed:int ->
  ?jobs:int ->
  Format.formatter ->
  unit
(** [fig5c_hd ppf] sweeps n ∈ {1024, 4096, 16384} × k ∈ {16, 64, 256}
    plus the dense n = 1024 baseline; below [scale] 0.25 the k = 256
    column and the second subspace-iteration step are dropped so the
    bench harness stays fast.  [scale] multiplies the 2,000-round
    horizon (floored at 160); cells fan out over [jobs] domains (or an
    explicit [pool]) via {!Runner}.  The timing columns vary run to
    run (and contend when [jobs > 1]); every market column is
    byte-identical whatever the worker count. *)
