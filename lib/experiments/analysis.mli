(** Analytical reproductions: Fig. 1, the Lemma 8 / Fig. 6 adversary,
    Theorem 3's 1-D log-regret, and an empirical check of the Lemma 2
    volume-ratio bound. *)

val fig1 : Format.formatter -> unit
(** The single-round regret function against the posted price at a
    fixed reserve and market value — the piecewise, asymmetric shape
    of Fig. 1. *)

val lemma8 : ?dim:int -> ?rounds:int -> Format.formatter -> unit
(** Plays the adversarial sequence with and without the
    conservative-cut guard (defaults: dim 2, 2,000 rounds — larger
    horizons at dim 2 overflow the deliberately exploding axis
    widths).  The guarded run's regret stays logarithmic; the exposed
    run's grows linearly. *)

val theorem3 : ?seed:int -> Format.formatter -> unit
(** 1-D pure-version cumulative regret across horizons 10²..10⁵ with
    ε = log²T/T: the regret per log T stays bounded (O(log T)). *)

val lemma2_check : ?samples:int -> ?seed:int -> Format.formatter -> unit
(** Draws random cuts over random ellipsoids and reports the maximum
    observed ratio between the realized volume factor and the Lemma 2
    bound exp(−(1+nα)²/5n) (must stay ≤ 1), plus the worst drift of the
    O(1) incremental volume cache against a fresh Cholesky log-det. *)

val lemma45_check :
  ?dim:int -> ?rounds:int -> ?seed:int -> Format.formatter -> unit
(** Runs Algorithm 2* with ε ≥ 4nδ on a random market while tracking
    the smallest eigenvalue of the shape matrix: per Lemmas 4–5 it
    must never fall below τ²·n²/(n+1)² with τ = 1/(400n²S⁴), and each
    single cut may shrink it by at most the factor n²(1−α)²/(n+1)².
    Reports the observed floor against the theoretical one. *)

val theorem2 : ?scale:float -> ?seed:int -> Format.formatter -> unit
(** Theorem 2 in practice: the adapted mechanism on all four
    non-linear market-value models (log-linear, log-log, logistic,
    kernelized-with-landmarks) over synthetic markets — regret ratios
    fall with t for every link, showing the g/φ extension carries the
    guarantees. *)
