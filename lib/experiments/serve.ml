module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Broker = Dm_market.Broker
module Ellipsoid = Dm_market.Ellipsoid
module Mechanism = Dm_market.Mechanism
module Journal = Dm_store.Journal
module Fleet_store = Dm_store.Fleet
module Batcher = Dm_store.Fleet.Batcher

let radius = 2.
let theta_frac = 0.9
let epsilon = 0.1
let batch_sizes = [ 1; 8; 64; 256 ]

(* Scale tiers pick the market dimensions, not the horizon: the
   serving-path comparison is only meaningful when the projection
   kernel dominates the round, so full scale prices at n = 4096 with
   k = 32 — the fig5c_hd ambient dimension fitted at exactly its
   planted rank — and the smoke tiers shrink both together. *)
let dims scale =
  if scale >= 0.5 then (4_096, 32)
  else if scale >= 0.1 then (1_024, 32)
  else (256, 16)

let fleet_sizes scale = if scale >= 0.5 then [ 8; 64; 256 ] else [ 8; 64 ]
let scaled_total scale = max 256 (int_of_float (1_024. *. scale))

let cell_seed seed salt = (seed * 1_000_003) + (salt * 7_919)

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Modified Gram–Schmidt over Gaussian rows: the shared projection must
   have orthonormal rows so that in-rowspace features price exactly
   (P·Pᵀ = I makes xᵀθ* equal uᵀθ_P, hence err = 0 is legitimate). *)
let orthonormal_rows rng ~k ~n =
  let rows = Array.init k (fun _ -> Dist.normal_vec rng ~dim:n) in
  for i = 0 to k - 1 do
    for j = 0 to i - 1 do
      let c = Vec.dot rows.(i) rows.(j) in
      Vec.axpy (-.c) rows.(j) rows.(i)
    done;
    rows.(i) <- Vec.normalize rows.(i)
  done;
  Mat.init k n (fun i j -> rows.(i).(j))

type req = { tenant : int; t : int; x : Vec.t; v : float }

(* One fleet's inputs from a single sequential stream (so they are a
   pure function of (seed, tenants) whatever the jobs value): the
   shared orthonormal projection, one half-normal in-subspace θ* per
   tenant, and a round-robin request stream of unit in-subspace
   features with their realized market values. *)
let gen_inputs ~seed ~n ~k ~tenants ~total =
  let rng = Rng.create (cell_seed seed tenants) in
  let basis = orthonormal_rows rng ~k ~n in
  let thetas =
    Array.init tenants (fun _ ->
        let w = Vec.map Float.abs (Dist.normal_vec rng ~dim:k) in
        let t = Mat.project_t basis w in
        Vec.scale (theta_frac *. radius /. Vec.norm2 t) t)
  in
  let reqs =
    Array.init total (fun i ->
        let tenant = i mod tenants in
        let z = Vec.map Float.abs (Dist.normal_vec rng ~dim:k) in
        let x = Vec.normalize (Mat.project_t basis z) in
        { tenant; t = i / tenants; x; v = Vec.dot x thetas.(tenant) })
  in
  (basis, reqs)

let make_mech ~basis ~k _tn =
  Mechanism.create_projected
    (Mechanism.config ~variant:Mechanism.pure ~epsilon ())
    ~projection:basis ~err:0.
    (Ellipsoid.ball ~dim:k ~radius)

(* Journaled events carry [u = P·x], the mechanism's rank-k sufficient
   statistic ({!Mechanism.projected_feature}), not the raw feature:
   with err = 0 the state evolution on x is bit-identical to a dense
   k-dim mechanism's on u, so the k-dim record replays exactly — and
   journal bandwidth is decoupled from the ambient dimension (a 4096-dim
   frame is ~49 KB, its 64-dim statistic under 1 KB), which is what
   lets the group commit amortize fsyncs instead of drowning in
   per-round byte throughput.  [run_config] proves the sufficiency
   claim per run: it replays the log into fresh dense k-dim mechanisms
   and compares ellipsoid state bitwise against the served fleet. *)
let event_of (r : req) (d : Mechanism.decision) ~u ~accepted : Broker.event =
  match d with
  | Mechanism.Skip ->
      {
        Broker.t = r.t; x = u; reserve = 0.; kind = Broker.Skipped;
        price_index = Float.nan; lower = Float.nan; upper = Float.nan;
        posted = None; accepted = false; payment = 0.;
      }
  | Mechanism.Post { price; kind; lower; upper } ->
      let kind =
        match kind with
        | Mechanism.Exploratory -> Broker.Exploratory
        | Mechanism.Conservative -> Broker.Conservative
      in
      {
        Broker.t = r.t; x = u; reserve = 0.; kind; price_index = price;
        lower; upper; posted = Some price; accepted;
        payment = (if accepted then price else 0.);
      }

(* Bitwise digest of a mechanism's knowledge-set state (scale, center,
   shape): the cross-config identity unit.  A projected mechanism and
   the dense k-dim mechanism replayed from its journal digest equal iff
   their ellipsoids match bit-for-bit — and unlike [snapshot_binary]
   the digest does not re-serialize the shared k×n projection per
   tenant (~5 MB each at full scale). *)
let state_digest m =
  let e = Mechanism.ellipsoid m in
  let dim = Vec.dim e.Ellipsoid.center in
  let buf = Buffer.create (8 * (1 + dim + (dim * dim))) in
  Buffer.add_int64_le buf (Int64.bits_of_float e.Ellipsoid.scale);
  Array.iter
    (fun v -> Buffer.add_int64_le buf (Int64.bits_of_float v))
    e.Ellipsoid.center;
  for i = 0 to Mat.rows e.Ellipsoid.shape - 1 do
    for j = 0 to Mat.cols e.Ellipsoid.shape - 1 do
      Buffer.add_int64_le buf
        (Int64.bits_of_float (Mat.get e.Ellipsoid.shape i j))
    done
  done;
  Buffer.contents buf

type stats = {
  tenants : int;
  b : int;
  total : int;
  ns_round : float;
  decide_ns : float;
  mech_words : float;  (** minor words per round, decide+observe only *)
  loop_words : float;  (** minor words per round, whole serving loop *)
  fsyncs : int;
  journal : string;  (** the tagged log, re-encoded in global order *)
  snaps : string array;  (** final per-tenant knowledge-state digests *)
  recover_ok : bool;
      (** snapshotted tenants restore through {!Fleet_store.recover}
          to the served mechanisms' exact binary snapshots *)
  replay_ok : bool;
      (** scratch tenants, rebuilt by {!Fleet_store.recover} replaying
          the k-dim log into dense mechanisms, match the served fleet's
          ellipsoid state bitwise *)
}

(* One (fleet size, batch size) serving run.  B = 1 is the pre-batching
   reference path — plain sequential [Mechanism.decide] and a group
   commit armed every append — so the other columns' identity checks
   compare the fused kernel against genuine unbatched serving. *)
let run_config ~tag ~tenants ~k ~basis ~b (reqs : req array) =
  let dir =
    Filename.concat (Sys.getcwd ())
      (Printf.sprintf ".dm_serve_tmp-%d-%s" (Unix.getpid ()) tag)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* Size the group-commit buffer to hold a whole decide batch of
     k-dim frames, otherwise buffer-full commits fire inside the batch
     and [latency_appends = b] never governs the fsyncs. *)
  let commit_bytes = b * (128 + (12 * k)) in
  let fleet =
    Fleet_store.create ~commit_bytes ~latency_appends:b ~snapshot_every:0 ~dir
      ~tenants ()
  in
  let mechs = Array.init tenants (make_mech ~basis ~k) in
  let ctx = Mechanism.batch mechs.(0) in
  let batcher = Batcher.create ~capacity:b ~latency_rounds:b in
  let total = Array.length reqs in
  (* Arena warm-up excluded from the allocation figure: the first two
     cuts of each tenant allocate its ping-pong shape/center buffers,
     and the first two batches size the gather/scatter panels. *)
  let warmup = min total (max (2 * tenants) (2 * b)) in
  let served = ref 0 in
  let decide_s = ref 0. in
  let mech_w = ref 0. and measured = ref 0 in
  let acc_buf = Array.make (min b total) false in
  let flush batch =
    let nb = Array.length batch in
    let xs = Array.map (fun r -> r.x) batch in
    let ms = Array.map (fun r -> mechs.(r.tenant)) batch in
    let reserves = Array.make nb 0. in
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let ds =
      if b = 1 then
        Array.map (fun r -> Mechanism.decide mechs.(r.tenant) ~x:r.x ~reserve:0.) batch
      else Mechanism.decide_batch ctx ms ~xs ~reserves
    in
    decide_s := !decide_s +. (Unix.gettimeofday () -. t0);
    for i = 0 to nb - 1 do
      let r = batch.(i) in
      let d = ds.(i) in
      let accepted =
        match d with
        | Mechanism.Post { price; _ } -> price <= r.v
        | Mechanism.Skip -> false
      in
      acc_buf.(i) <- accepted;
      Mechanism.observe mechs.(r.tenant) ~x:r.x d ~accepted
    done;
    let w1 = Gc.minor_words () in
    if !served >= warmup then begin
      mech_w := !mech_w +. (w1 -. w0);
      measured := !measured + nb
    end;
    for i = 0 to nb - 1 do
      let r = batch.(i) in
      (* The decide above memoized this request's projection; copy it
         out before the next batch overwrites the mechanism's buffer. *)
      let u =
        match Mechanism.projected_feature mechs.(r.tenant) ~x:r.x with
        | Some u -> u
        | None -> Array.copy r.x
      in
      Fleet_store.append fleet ~tenant:r.tenant
        (event_of r ds.(i) ~u ~accepted:acc_buf.(i))
    done;
    served := !served + nb
  in
  let w_start = Gc.minor_words () in
  let t_start = Unix.gettimeofday () in
  Array.iter
    (fun r -> match Batcher.add batcher r with Some bt -> flush bt | None -> ())
    reqs;
  (match Batcher.flush batcher with Some bt -> flush bt | None -> ());
  Fleet_store.sync fleet;
  let loop_s = Unix.gettimeofday () -. t_start in
  let loop_w = Gc.minor_words () -. w_start in
  let fsyncs = Fleet_store.fsync_count fleet in
  (* Snapshot a stride of tenants (always including 0, never all): the
     snapshotted ones exercise the snapshot round-trip, and the rest
     recover from scratch — {!Fleet_store.recover} replaying the k-dim
     log into dense k-dim mechanisms, the production path for the
     sufficiency claim in [event_of]'s comment. *)
  let snap_stride = max 2 (tenants / 8) in
  for tn = 0 to tenants - 1 do
    if tn mod snap_stride = 0 then Fleet_store.snapshot fleet ~tenant:tn mechs.(tn)
  done;
  Fleet_store.close fleet;
  let snaps = Array.map state_digest mechs in
  let journal =
    match Fleet_store.read_dir ~dir with
    | Error msg -> failwith ("Serve.run_config: " ^ msg)
    | Ok (_, Fleet_store.Torn _) ->
        failwith "Serve.run_config: unexpected torn tail"
    | Ok (tagged, Fleet_store.Clean) ->
        let buf = Buffer.create 65_536 in
        List.iter
          (fun (tn, e) ->
            Buffer.add_string buf (string_of_int tn);
            Buffer.add_char buf '|';
            Buffer.add_string buf (Journal.encode_event e))
          tagged;
        Buffer.contents buf
  in
  let recover_ok, replay_ok =
    let dense _tn =
      Mechanism.create
        (Mechanism.config ~variant:Mechanism.pure ~epsilon ())
        (Ellipsoid.ball ~dim:k ~radius)
    in
    match Fleet_store.recover ~initial:dense ~dir ~tenants () with
    | Error _ -> (false, false)
    | Ok (recs, torn) when torn || Array.length recs <> tenants ->
        (false, false)
    | Ok (recs, _) ->
        let rec_ok = ref true and rep_ok = ref true in
        Array.iteri
          (fun tn (r : Fleet_store.recovery) ->
            match r.Fleet_store.mechanism with
            | None ->
                rec_ok := false;
                rep_ok := false
            | Some m ->
                if tn mod snap_stride = 0 then begin
                  if
                    r.Fleet_store.replayed <> 0
                    || not
                         (String.equal
                            (Mechanism.snapshot_binary m)
                            (Mechanism.snapshot_binary mechs.(tn)))
                  then rec_ok := false
                end
                else if
                  r.Fleet_store.replayed = 0
                  || not (String.equal (state_digest m) snaps.(tn))
                then rep_ok := false)
          recs;
        (!rec_ok, !rep_ok)
  in
  {
    tenants;
    b;
    total;
    ns_round = loop_s *. 1e9 /. float_of_int total;
    decide_ns = !decide_s *. 1e9 /. float_of_int total;
    mech_words =
      (if !measured = 0 then 0. else !mech_w /. float_of_int !measured);
    loop_words = loop_w /. float_of_int total;
    fsyncs;
    journal;
    snaps;
    recover_ok;
    replay_ok;
  }

let report ?pool ?(scale = 1.) ?(seed = 42) ?(jobs = 1) ppf =
  let n, k = dims scale in
  let total = scaled_total scale in
  let fleets = Array.of_list (fleet_sizes scale) in
  (* Input generation fans out over jobs (one independent cell per
     fleet size); the timed serving configs then run sequentially so
     the B columns of one fleet are comparable wall-clock. *)
  let inputs =
    Runner.map ?pool ~jobs
      (fun tenants ->
        let basis, reqs = gen_inputs ~seed ~n ~k ~tenants ~total in
        (tenants, basis, reqs))
      fleets
  in
  let results =
    Array.to_list inputs
    |> List.concat_map (fun (tenants, basis, reqs) ->
           List.filter (fun b -> b <= tenants) batch_sizes
           |> List.map (fun b ->
                  run_config
                    ~tag:(Printf.sprintf "T%d-B%d" tenants b)
                    ~tenants ~k ~basis ~b reqs))
  in
  let ref_of tenants =
    List.find (fun s -> s.tenants = tenants && s.b = 1) results
  in
  let identical s =
    let r = ref_of s.tenants in
    String.equal s.journal r.journal
    && Array.for_all2 String.equal s.snaps r.snaps
  in
  let rows =
    List.map
      (fun s ->
        let r = ref_of s.tenants in
        [
          string_of_int s.tenants;
          string_of_int s.b;
          Printf.sprintf "%.0f" s.ns_round;
          Printf.sprintf "%.0f" (1e9 /. s.ns_round);
          Printf.sprintf "%.0f" s.decide_ns;
          Printf.sprintf "%.1f" s.mech_words;
          Printf.sprintf "%.1f" s.loop_words;
          Printf.sprintf "%.1f"
            (float_of_int s.fsyncs *. 1_000. /. float_of_int s.total);
          Printf.sprintf "%.2fx" (r.ns_round /. s.ns_round);
          (if s.b = 1 then "ref" else if identical s then "yes" else "NO");
          (if s.recover_ok then "yes" else "NO");
          (if s.replay_ok then "yes" else "NO");
        ])
      results
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "serve: batched fleet serving at n = %d, k = %d, %d rounds per \
          config (journal records the rank-k projected statistic; \
          group-commit latency aligned to B; timing and alloc columns vary \
          run to run, identity columns are deterministic)"
         n k total)
    ~header:
      [
        "tenants"; "B"; "ns/round"; "rounds/s"; "decide ns/r"; "mech w/r";
        "loop w/r"; "fsync/kr"; "speedup"; "identical"; "recover"; "replay";
      ]
    rows;
  let batched = List.filter (fun s -> s.b > 1) results in
  let id_ok = List.filter identical batched |> List.length in
  let rec_ok =
    List.filter (fun s -> s.recover_ok && s.replay_ok) results |> List.length
  in
  (match
     List.fold_left
       (fun acc s ->
         if s.b = 64 then
           match acc with
           | Some (t0, _) when t0 > s.tenants -> acc
           | _ -> Some (s.tenants, (ref_of s.tenants).ns_round /. s.ns_round)
         else acc)
       None batched
   with
  | Some (t, sp) ->
      Format.fprintf ppf
        "B=64 speedup over unbatched serving: %.2fx at %d tenants (n = %d, \
         k = %d).@."
        sp t n k
  | None -> ());
  let all_ok = id_ok = List.length batched && rec_ok = List.length results in
  Format.fprintf ppf
    "serve summary: %d/%d batched configs bit-identical to B=1 and %d/%d \
     recover+replay round-trips state-preserving — %s@.@."
    id_ok (List.length batched) rec_ok (List.length results)
    (if all_ok then "OK" else "CHECK FAILED")

let microbench ?(scale = 1.) ?(seed = 42) () =
  let n, k = dims scale in
  let tenants = 64 in
  let total = scaled_total scale in
  let basis, reqs = gen_inputs ~seed ~n ~k ~tenants ~total in
  let s = run_config ~tag:"micro-B64" ~tenants ~k ~basis ~b:64 reqs in
  if not (s.recover_ok && s.replay_ok) then
    failwith "Serve.microbench: recovery drifted";
  [
    (Printf.sprintf "serve/batch_decide B64 n%d k%d" n k, s.decide_ns);
    ("serve/round_alloc minor_words", s.mech_words);
    ("gc/serve_loop minor_words", s.loop_words);
  ]
