module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Subspace = Dm_ml.Subspace
module Ellipsoid = Dm_market.Ellipsoid
module Mechanism = Dm_market.Mechanism
module Regret = Dm_market.Regret

(* Synthetic high-dimensional market: features live near a planted
   [planted_rank]-dimensional subspace of R^n (plus a small isotropic
   tail), and θ* lies exactly in that subspace.  The broker only knows
   the prior ball ‖θ*‖ ≤ radius, a training batch of features, and the
   per-round feature vector — everything it needs to fit the
   projection, budget the tail, and price in k dimensions. *)

let planted_rank = 32
let radius = 2.
let theta_frac = 0.9
let base_epsilon = 0.1
let safety = 1.25

(* Tail mass ~0.005 against a planted signal of norm ~√32: about 1e-3
   of the (unit-normalized) feature stays outside the planted
   subspace, so a k ≥ planted_rank fit earns an err budget small
   enough to keep the ε ≥ 2.5·k·err stall floor (EXPERIMENTS.md) below
   the initial price width even at k = 256. *)
let noise_scale n = 0.005 /. sqrt (float_of_int n)

let cell_seed seed n salt = (seed * 1_000_003) + (salt * 7_919) + n

type market = { basis : Mat.t; theta : Vec.t }

let make_market ~seed n =
  let rng = Rng.create (cell_seed seed n 0) in
  let rows =
    Array.init planted_rank (fun _ ->
        Vec.normalize (Dist.normal_vec rng ~dim:n))
  in
  let basis = Mat.init planted_rank n (fun i j -> rows.(i).(j)) in
  (* Half-normal planted coefficients (here and in [gen_feature]) keep
     the market value v = ⟨x, θ*⟩ positive — same tilt App 1 applies
     to its θ* — so cumulative regret reads like the paper's. *)
  let w = Vec.map Float.abs (Dist.normal_vec rng ~dim:planted_rank) in
  let theta = Mat.project_t basis w in
  let theta = Vec.scale (theta_frac *. radius /. Vec.norm2 theta) theta in
  { basis; theta }

let gen_feature mkt rng =
  let _, n = Mat.dims mkt.basis in
  let z = Vec.map Float.abs (Dist.normal_vec rng ~dim:planted_rank) in
  let x = Mat.project_t mkt.basis z in
  let g = Dist.normal_vec rng ~dim:n in
  Vec.axpy (noise_scale n) g x;
  Vec.normalize x

type spec = { n : int; k : int option }

type stats = {
  spec : spec;
  fit_s : float;
  err : float;
  explained : float;
  decide_ms : float;
  cut_ms : float;
  expl_rounds : int;
  regret : float;
  proj_term : float;
  misspec_max : float;
}

(* One market stream against one mechanism, timing the decide (bounds,
   plus the O(k·n) projection in projected mode) and observe (the cut)
   halves separately.  [theta_perp] is θ* − Pᵀ·P·θ*, so
   |⟨x, θ_perp⟩| is exactly the per-round index misspecification
   v − uᵀθ_P the err budget must dominate. *)
let run_stream ~rounds ~mkt ~theta_perp ~mech ~rng =
  let decide_t = ref 0. and cut_t = ref 0. in
  let regret = ref 0. and mis = ref 0. in
  for _ = 1 to rounds do
    let x = gen_feature mkt rng in
    let v = Vec.dot x mkt.theta in
    (match theta_perp with
    | Some tp -> mis := Float.max !mis (Float.abs (Vec.dot x tp))
    | None -> ());
    let t0 = Unix.gettimeofday () in
    let d = Mechanism.decide mech ~x ~reserve:neg_infinity in
    let t1 = Unix.gettimeofday () in
    let accepted =
      match d with
      | Mechanism.Post { price; _ } -> price <= v
      | Mechanism.Skip -> false
    in
    Mechanism.observe mech ~x d ~accepted;
    let t2 = Unix.gettimeofday () in
    decide_t := !decide_t +. (t1 -. t0);
    cut_t := !cut_t +. (t2 -. t1);
    regret :=
      !regret
      +.
      match d with
      | Mechanism.Post { price; _ } ->
          Regret.posted ~market_value:v ~price ()
      | Mechanism.Skip -> Regret.skipped ~reserve:neg_infinity ~market_value:v
  done;
  let ms t = 1_000. *. t /. float_of_int rounds in
  (ms !decide_t, ms !cut_t, !regret, !mis)

let run_cell ~seed ~rounds ~m_train ~iters spec =
  let mkt = make_market ~seed spec.n in
  let stream_rng = Rng.create (cell_seed seed spec.n 2) in
  match spec.k with
  | None ->
      let mech =
        Mechanism.create
          (Mechanism.config ~variant:Mechanism.pure ~epsilon:base_epsilon ())
          (Ellipsoid.ball ~dim:spec.n ~radius)
      in
      let decide_ms, cut_ms, regret, _ =
        run_stream ~rounds ~mkt ~theta_perp:None ~mech ~rng:stream_rng
      in
      {
        spec;
        fit_s = 0.;
        err = 0.;
        explained = 1.;
        decide_ms;
        cut_ms;
        expl_rounds = Mechanism.exploratory_rounds mech;
        regret;
        proj_term = 0.;
        misspec_max = 0.;
      }
  | Some k ->
      let train_rng = Rng.create (cell_seed seed spec.n 1) in
      let train_rows =
        Array.init m_train (fun _ -> gen_feature mkt train_rng)
      in
      let xtrain = Mat.init m_train spec.n (fun i j -> train_rows.(i).(j)) in
      let fit_rng = Rng.create (cell_seed seed spec.n (100 + k)) in
      let t0 = Unix.gettimeofday () in
      let sub = Subspace.fit ~iters ~rng:fit_rng ~components:k xtrain in
      let fit_s = Unix.gettimeofday () -. t0 in
      let p = sub.Subspace.components in
      (* The broker-side tail budget: worst training-batch mass outside
         the fitted subspace times the prior bound ‖θ*‖ ≤ radius, with
         a safety factor for unseen rounds — never peeks at θ*. *)
      let max_resid =
        Array.fold_left
          (fun acc row ->
            let back = Mat.project_t p (Mat.project p row) in
            Float.max acc (Vec.dist2 row back))
          0. train_rows
      in
      let err = safety *. max_resid *. radius in
      let theta_perp =
        Vec.sub mkt.theta (Mat.project_t p (Mat.project p mkt.theta))
      in
      let epsilon =
        Float.max base_epsilon (2.5 *. float_of_int k *. err)
      in
      let mech =
        Mechanism.create_projected
          (Mechanism.config ~variant:Mechanism.pure ~epsilon ())
          ~projection:p ~err
          (Ellipsoid.ball ~dim:k ~radius)
      in
      let decide_ms, cut_ms, regret, misspec_max =
        run_stream ~rounds ~mkt ~theta_perp:(Some theta_perp) ~mech
          ~rng:stream_rng
      in
      {
        spec;
        fit_s;
        err;
        explained = Subspace.explained_ratio sub;
        decide_ms;
        cut_ms;
        expl_rounds = Mechanism.exploratory_rounds mech;
        regret;
        proj_term = Regret.projection_term ~err ~rounds;
        misspec_max;
      }

let fig5c_hd ?pool ?(scale = 1.) ?(seed = 42) ?(jobs = 1) ppf =
  let rounds = max 160 (int_of_float (2_000. *. scale)) in
  let ks = if scale >= 0.25 then [ 16; 64; 256 ] else [ 16; 64 ] in
  let iters = if scale >= 0.25 then 2 else 1 in
  let m_train = max 192 (2 * List.fold_left max 0 ks) in
  let specs =
    Array.of_list
      ({ n = 1_024; k = None }
      :: List.concat_map
           (fun n -> List.map (fun k -> { n; k = Some k }) ks)
           [ 1_024; 4_096; 16_384 ])
  in
  let stats =
    Runner.map ?pool ~jobs (run_cell ~seed ~rounds ~m_train ~iters) specs
  in
  let dense_regret = stats.(0).regret in
  let row s =
    let str_k = match s.spec.k with None -> "dense" | Some k -> string_of_int k in
    let opt fmt v = match s.spec.k with None -> "-" | Some _ -> fmt v in
    [
      string_of_int s.spec.n;
      str_k;
      opt (Printf.sprintf "%.2f") s.fit_s;
      opt (Printf.sprintf "%.2e") s.err;
      opt Table.fmt_pct s.explained;
      Printf.sprintf "%.3f" s.decide_ms;
      Printf.sprintf "%.3f" s.cut_ms;
      string_of_int s.expl_rounds;
      Printf.sprintf "%.1f" s.regret;
      opt Table.fmt_g s.proj_term;
      (if s.spec.n <> 1_024 then "-"
       else
         match s.spec.k with
         | None -> "1.00x"
         | Some _ -> Printf.sprintf "%.2fx" (s.regret /. dense_regret));
    ]
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "fig5c_hd: rank-k projected ellipsoid pricing, %d rounds (planted \
          rank %d, radius %g, %d training rows; timing columns vary run to \
          run, market columns are jobs-independent)"
         rounds planted_rank radius m_train)
    ~header:
      [
        "n"; "k"; "fit s"; "proj err"; "expl var"; "decide ms/r"; "cut ms/r";
        "expl rounds"; "regret"; "err*T"; "vs dense";
      ]
    (Array.to_list (Array.map row stats));
  let projected =
    Array.to_list stats |> List.filter (fun s -> s.spec.k <> None)
  in
  let within =
    List.filter (fun s -> s.misspec_max <= s.err) projected |> List.length
  in
  Format.fprintf ppf
    "realized misspecification within the err budget in %d/%d projected \
     cells@."
    within (List.length projected);
  let ok s =
    Float.is_finite s.regret && Float.is_finite s.err && s.err >= 0.
  in
  let n_ok = List.filter ok projected |> List.length in
  if n_ok = List.length projected then
    Format.fprintf ppf
      "fig5c_hd summary: %d/%d projected cells — all regret finite and \
       projection-error column populated@.@."
      n_ok (List.length projected)
  else
    Format.fprintf ppf
      "fig5c_hd summary: %d/%d projected cells passed finiteness checks — \
       CHECK FAILED@.@."
      n_ok (List.length projected)
