(** Multi-tenant fleet artifact: ~10³ concurrent small markets on one
    shared group-commit journal ({!Dm_store.Fleet}), each verified
    bit-identical to its solo run.

    Per tenant (a {!Longrun.make_setup} market at n = 4, variant
    cycling through the four of {!Longrun.variants}, seed split off
    the root stream before dispatch) the driver

    + runs the uninterrupted solo reference and records its
      version-1 journal stream — these cells fan out over
      [jobs]/[pool] via {!Runner.map};
    + hosts {e all} tenants concurrently on one domain through an
      effects-based cooperative scheduler — every tenant's real
      [Broker.run] yields at its journal sink, so the shared journal
      sees a round-robin global append order — writing tenant-tagged
      records through {!Dm_store.Fleet.sink} with periodic per-tenant
      snapshots, and checks each tenant's live result {e and} its
      filtered, re-encoded slice of the shared log against the solo
      run;
    + repeats the hosted run to a seeded crash round, hard-kills it
      ({!Dm_store.Fleet.simulate_crash}), recovers every tenant from
      the shared log + its own snapshots, checks compaction is
      state-preserving, and resumes each tenant to the full horizon
      through {!Recover.resume} — again bit-identical.

    Everything printed is a pure function of (seed, scale), so the
    output is byte-identical at any [jobs] value. *)

val full_tenants : int
(** The unscaled fleet size (10³ tenants at scale 1). *)

val tenant_rounds : int
(** Per-tenant horizon (fixed — scale varies the tenant count, not
    the market length). *)

val scaled_tenants : float -> int
(** Tenant count at a given scale (floor 8, so the smoke scales still
    exercise a genuine multi-tenant interleave). *)

val report :
  ?pool:Dm_linalg.Pool.t ->
  ?scale:float ->
  ?seed:int ->
  ?jobs:int ->
  Format.formatter ->
  unit
(** Run the fleet verification and print the per-variant table, the
    group-commit amortization line (appends per fsync, fsyncs per
    tenant-round), and a summary line of the form
    ["Fleet: N/N tenants bit-identical …"] that the CI smoke greps
    for. *)

val journal_amortization :
  ?seed:int ->
  ?tenants:int ->
  ?rounds:int ->
  ?reps:int ->
  unit ->
  (string * float) list
(** Benchmark helper for the journal stage: time the hosted fleet
    (default 64 tenants) with the group-commit journal attached and
    full durability (closing barrier included), returning
    [("journal/fleet_group", ns per tenant-round)] — minimum over
    [reps] (default 2) passes — and
    [("journal/fleet_fsyncs_per_kround", group fsyncs per 10³
    tenant-rounds)], the amortization record the bench compares to
    the one-fsync-per-round ["journal/longrun_fsync"] baseline. *)
