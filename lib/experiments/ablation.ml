module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Dp = Dm_privacy.Dp
module Comp = Dm_privacy.Compensation
module Movielens = Dm_synth.Movielens
module Linear_query = Dm_synth.Linear_query
module Linreg = Dm_ml.Linreg
module Pca = Dm_ml.Pca
module Broker = Dm_market.Broker
module Mechanism = Dm_market.Mechanism
module Ellipsoid = Dm_market.Ellipsoid
module Model = Dm_market.Model
module Feature = Dm_market.Feature
module Noisy_query = Dm_apps.Noisy_query

(* Setups shared by several runner cells must have their lazy stream
   and noise tables forced before dispatch: a [Lazy.t] forced
   concurrently from two domains is a race. *)
let force_tables setup =
  let (_ : int -> Vec.t * float) = Noisy_query.workload setup in
  let (_ : int -> float) = Noisy_query.noise setup in
  ()

let custom_run setup variant ~epsilon =
  let mech =
    Mechanism.create
      (Mechanism.config ~variant ~epsilon ())
      (Ellipsoid.ball ~dim:setup.Noisy_query.dim ~radius:setup.Noisy_query.radius)
  in
  Broker.run
    ~policy:(Broker.Ellipsoid_pricing mech)
    ~model:setup.Noisy_query.model
    ~noise:(Noisy_query.noise setup)
    ~workload:(Noisy_query.workload setup)
    ~rounds:setup.Noisy_query.rounds ()

let epsilon_sweep ?pool ?(seed = 42) ?(rounds = 10_000) ?(jobs = 1) ppf =
  let dim = 20 in
  let setup = Noisy_query.make ~seed ~dim ~rounds () in
  force_tables setup;
  let base = setup.Noisy_query.epsilon in
  let rows =
    Array.to_list
      (Runner.map ?pool ~jobs
         (fun factor ->
           let epsilon = base *. factor in
           let r = custom_run setup Mechanism.with_reserve ~epsilon in
           [
             Printf.sprintf "%.4f (%gx n²/T)" epsilon factor;
             Table.fmt_pct r.Broker.regret_ratio;
             string_of_int r.Broker.exploratory;
           ])
         [| 0.1; 0.5; 1.; 5.; 25.; 125. |])
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Ablation: exploration threshold ε (n = %d, T = %d, version with \
          reserve)"
         dim rounds)
    ~header:[ "epsilon"; "regret ratio"; "exploratory rounds" ]
    rows

let delta_sweep ?pool ?(seed = 42) ?(rounds = 10_000) ?(jobs = 1) ppf =
  let dim = 20 in
  let setup = Noisy_query.make ~seed ~dim ~rounds () in
  force_tables setup;
  let rows =
    Array.to_list
      (Runner.map ?pool ~jobs
         (fun delta ->
           let variant = Mechanism.with_reserve_and_uncertainty ~delta in
           (* The same floor rule the application layer uses. *)
           let epsilon =
             Float.max setup.Noisy_query.epsilon
               (2.5 *. float_of_int dim *. delta)
           in
           let r = custom_run setup variant ~epsilon in
           [
             Printf.sprintf "%.3f" delta;
             Printf.sprintf "%.4f" epsilon;
             Table.fmt_pct r.Broker.regret_ratio;
             string_of_int r.Broker.exploratory;
           ])
         [| 0.; 0.005; 0.01; 0.05; 0.1 |])
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Ablation: uncertainty buffer δ at fixed noise (n = %d, T = %d, \
          reserve+uncertainty; ε floored at 2.5nδ)"
         dim rounds)
    ~header:[ "delta"; "epsilon"; "regret ratio"; "exploratory rounds" ]
    rows

let feature_pipeline ?(seed = 42) ?(rounds = 10_000) ppf =
  let owners = 200 and dim = 20 and warmup = 500 in
  let root = Rng.create seed in
  let corpus = Movielens.generate (Rng.split root) ~owners in
  let contracts = Movielens.contracts corpus in
  let data_ranges = Movielens.data_ranges corpus in
  let query_rng = Rng.split root in
  let w_rng = Rng.split root in
  (* Ground-truth value on the RAW compensation vector (cost-plus with
     a heterogeneous markup), so neither pipeline's features represent
     it exactly — the comparison includes each representation's
     misspecification. *)
  let w_star =
    Vec.init owners (fun _ ->
        1. +. (0.4 *. abs_float (Dist.normal w_rng ~mean:0. ~std:1.)))
  in
  let draw_compensations () =
    let query = Linear_query.draw query_rng ~dist:Linear_query.Mixed ~owners in
    Comp.per_owner ~contracts ~leakages:(Dp.leakage query ~data_ranges)
  in
  let comps = Array.init (warmup + rounds) (fun _ -> draw_compensations ()) in
  let values = Array.map (fun c -> Vec.dot w_star c) comps in
  let reserves = Array.map Vec.sum comps in
  (* Pipeline A: the paper's sorted-partition aggregation (raw money
     scale, no normalization — both pipelines share units). *)
  let encode_agg c = Feature.aggregate ~dim c in
  (* Pipeline B: PCA over a warm-up prefix; features are a bias plus
     the top dim−1 principal coordinates. *)
  let warm_matrix =
    let m = Mat.zeros warmup owners in
    for i = 0 to warmup - 1 do
      for j = 0 to owners - 1 do
        Mat.set m i j comps.(i).(j)
      done
    done;
    m
  in
  let pca = Pca.fit ~components:(dim - 1) warm_matrix in
  let encode_pca c = Vec.concat [| 1. |] (Pca.transform pca c) in
  let run name encode =
    (* Decompose the true value as (OLS fit on the warm-up) + residual
       so the broker faces v exactly; the residual rides through the
       per-round noise channel and the fitted residual scale sets the
       uncertainty buffer. *)
    let xs = Array.map encode comps in
    let warm_x =
      Mat.init warmup dim (fun i j -> xs.(i).(j))
    in
    let warm_y = Array.sub values 0 warmup in
    let fitted = Linreg.fit ~intercept:false warm_x warm_y in
    let theta = fitted.Linreg.weights in
    let residual_std = sqrt (Linreg.mse fitted warm_x warm_y) in
    let delta = 3. *. residual_std in
    let vbar = Dm_prob.Stats.mean warm_y in
    let epsilon =
      Float.max
        (vbar *. float_of_int (dim * dim) /. float_of_int rounds)
        (2.5 *. float_of_int dim *. delta)
    in
    let radius = 1.5 *. Float.max 1. (Vec.norm2 theta) in
    let model = Model.linear ~theta in
    let mech =
      Mechanism.create
        (Mechanism.config
           ~variant:(Mechanism.with_reserve_and_uncertainty ~delta)
           ~epsilon ())
        (Ellipsoid.ball ~dim ~radius)
    in
    let workload t = (xs.(warmup + t), reserves.(warmup + t)) in
    let noise t =
      values.(warmup + t) -. Vec.dot xs.(warmup + t) theta
    in
    let r =
      Broker.run
        ~policy:(Broker.Ellipsoid_pricing mech)
        ~model ~noise ~workload ~rounds ()
    in
    [
      name;
      Printf.sprintf "%.3f" residual_std;
      Table.fmt_pct r.Broker.regret_ratio;
      string_of_int r.Broker.exploratory;
      string_of_int r.Broker.accepted_rounds;
    ]
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Ablation: Sec. II-B feature pipelines at n = %d (%d owners, T = %d, \
          reserve+uncertainty with δ = 3·residual)"
         dim owners rounds)
    ~header:
      [ "pipeline"; "residual std"; "regret ratio"; "exploratory"; "sales" ]
    [ run "sorted aggregation (paper)" encode_agg; run "PCA (bias + 19 pcs)" encode_pca ]

let ctr_trainer ?(seed = 3) ppf =
  let dim = 64 and train_rounds = 20_000 and rounds = 15_000 in
  (* FTRL path: the App-3 pipeline as shipped. *)
  let imp = Dm_apps.Impression.make ~train_rounds ~seed ~dim ~rounds () in
  let ftrl_run =
    Dm_apps.Impression.run imp Dm_apps.Impression.Dense Mechanism.pure
  in
  (* Batch-GD path: same stream family, dense logistic fit, priced over
     the full (bias-augmented) coordinate set — no support to shrink
     to. *)
  let module Avazu = Dm_synth.Avazu in
  let module Hashing = Dm_ml.Hashing in
  let module Logreg = Dm_ml.Logreg in
  let root = Rng.create seed in
  let train_rng = Rng.split root in
  let price_rng = Rng.split root in
  let train = Avazu.generate train_rng ~rounds:train_rounds in
  let dense imp_ = Hashing.to_dense ~dim (Avazu.encode ~dim imp_) in
  let x_train =
    Mat.init train_rounds dim (fun i j -> (dense train.(i)).(j))
  in
  let labels = Array.map (fun i -> i.Avazu.clicked) train in
  let fitted =
    Logreg.fit
      ~params:{ Logreg.learning_rate = 0.5; l2 = 1e-4; iterations = 120 }
      x_train labels
  in
  let batch_loss = Logreg.log_loss fitted x_train labels in
  let theta_aug = Vec.concat fitted.Logreg.weights [| fitted.Logreg.bias |] in
  let batch_model = Model.logistic ~theta:theta_aug in
  let pricing = Avazu.generate price_rng ~rounds in
  let stream =
    Array.map (fun i -> Vec.concat (dense i) [| 1. |]) pricing
  in
  let mech =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.pure
         ~epsilon:
           (float_of_int ((dim + 1) * (dim + 1)) /. float_of_int rounds)
         ())
      (Ellipsoid.ball ~dim:(dim + 1)
         ~radius:(1.2 *. Float.max 1. (Vec.norm2 theta_aug)))
  in
  let batch_run =
    Broker.run
      ~policy:(Broker.Ellipsoid_pricing mech)
      ~model:batch_model
      ~noise:(fun _ -> 0.)
      ~workload:(fun t -> (stream.(t), 0.))
      ~rounds ()
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Ablation: CTR trainer for App 3 (n = %d, %d training rows, %d \
          pricing rounds, dense case)"
         dim train_rounds rounds)
    ~header:
      [ "trainer"; "log-loss"; "non-zeros"; "pricing dim"; "regret ratio";
        "exploratory" ]
    [
      [
        "FTRL-Proximal (paper)";
        Printf.sprintf "%.3f" imp.Dm_apps.Impression.train_log_loss;
        string_of_int imp.Dm_apps.Impression.theta_nonzeros;
        string_of_int imp.Dm_apps.Impression.dense_dim;
        Table.fmt_pct ftrl_run.Broker.regret_ratio;
        string_of_int ftrl_run.Broker.exploratory;
      ];
      [
        "batch GD (L2 only)";
        Printf.sprintf "%.3f" batch_loss;
        string_of_int (Logreg.nonzeros fitted);
        string_of_int (dim + 1);
        Table.fmt_pct batch_run.Broker.regret_ratio;
        string_of_int batch_run.Broker.exploratory;
      ];
    ]

let param_dist_sweep ?pool ?(seed = 42) ?(rounds = 10_000) ?(jobs = 1) ppf =
  let dim = 20 in
  let rows =
    Array.to_list
      (Runner.map ?pool ~jobs
         (fun (name, dist) ->
           let setup =
             Noisy_query.make ~param_dist:dist ~seed ~dim ~rounds ()
           in
           let r = Noisy_query.run setup Mechanism.with_reserve in
           [
             name;
             Table.fmt_pct r.Broker.regret_ratio;
             string_of_int r.Broker.exploratory;
             Table.fmt_pct
               (float_of_int r.Broker.accepted_rounds /. float_of_int rounds);
           ])
         [|
           ("gaussian N(0, I)", Linear_query.Gaussian);
           ("uniform [-1, 1]", Linear_query.Uniform);
           ("mixed", Linear_query.Mixed);
         |])
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Ablation: query-parameter distribution (n = %d, T = %d, version \
          with reserve) — the paper's adaptivity check"
         dim rounds)
    ~header:[ "parameter distribution"; "regret ratio"; "exploratory"; "sale rate" ]
    rows

let aggregation_sweep ?pool ?(seed = 42) ?(rounds = 10_000) ?(jobs = 1) ppf =
  let rows =
    Array.to_list
      (Runner.map ?pool ~jobs
         (fun dim ->
           let setup = Noisy_query.make ~owners:200 ~seed ~dim ~rounds () in
           let r = Noisy_query.run setup Mechanism.with_reserve in
           [
             string_of_int dim;
             Table.fmt_pct r.Broker.regret_ratio;
             string_of_int r.Broker.exploratory;
             Table.fmt_pct
               (r.Broker.reserve_stats.Dm_prob.Stats.mean
               /. r.Broker.market_value_stats.Dm_prob.Stats.mean);
           ])
         [| 1; 5; 20; 50 |])
  in
  Table.print ppf
    ~title:
      (Printf.sprintf
         "Ablation: compensation-aggregation granularity (200 owners, T = %d, \
          version with reserve)"
         rounds)
    ~header:[ "n (partitions)"; "regret ratio"; "exploratory"; "reserve/value" ]
    rows
