(** Section V-D: per-round online latency and memory overhead of the
    three applications.

    Latency is wall-clock per decide+observe round averaged over a
    warm run; memory is the GC live heap after materializing each
    application's pricing state.  The paper reports 0.115 ms / 151 MB
    (App 1, n = 100), 0.019 ms / 105 MB (App 2), and 3.509 ms sparse /
    0.024 ms dense (App 3, n = 1024) on a 2016 workstation running
    Python 2.7; magnitudes, not exact values, are the comparison
    target. *)

val report : ?rounds:int -> Format.formatter -> unit
(** Measure all configurations ([rounds] pricing rounds each, default
    2,000) and print the Sec. V-D table, followed by a volume-tracking
    sub-table comparing the O(1) incremental log-volume cache against
    a per-round Cholesky log-det at n ∈ \{20, 100, 256\}. *)
