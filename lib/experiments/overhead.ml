module Vec = Dm_linalg.Vec
module Chol = Dm_linalg.Chol
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Mechanism = Dm_market.Mechanism
module Ellipsoid = Dm_market.Ellipsoid
module Model = Dm_market.Model
module Noisy_query = Dm_apps.Noisy_query
module Rental = Dm_apps.Rental
module Impression = Dm_apps.Impression

let live_mb () =
  let s = Gc.stat () in
  float_of_int (s.Gc.live_words * (Sys.word_size / 8)) /. 1048576.

(* Average wall-clock of one decide+observe round over a stream, with
   the exploration threshold forced so that every round takes the
   requested branch: exploratory rounds pay the O(n²) Löwner–John
   update, conservative rounds only the O(n²) quadratic form. *)
let time_branch ~dim ~radius ~epsilon ~model ~stream ~reserves ~rounds =
  let mech =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.with_reserve ~epsilon ())
      (Ellipsoid.ball ~dim ~radius)
  in
  let n = Array.length stream in
  let theta = model.Model.theta in
  let t0 = Unix.gettimeofday () in
  for t = 0 to rounds - 1 do
    let x = stream.(t mod n) in
    let market_index = Vec.dot x theta in
    ignore (Mechanism.step mech ~x ~reserve:reserves.(t mod n) ~market_index)
  done;
  1000. *. (Unix.gettimeofday () -. t0) /. float_of_int rounds

let measure ~dim ~radius ~model ~stream ~reserves ~rounds =
  (* ε below any achievable width forces the exploratory branch; ε
     above any width forces the conservative one. *)
  let exploratory =
    time_branch ~dim ~radius ~epsilon:1e-12 ~model ~stream ~reserves ~rounds
  in
  let conservative =
    time_branch ~dim ~radius ~epsilon:1e12 ~model ~stream ~reserves ~rounds
  in
  (exploratory, conservative)

(* Average wall-clock of one central cut followed by a volume read, by
   volume path: the O(1) incremental cache versus a fresh O(n³)
   Cholesky log-det each round (what every analysis driver paid before
   the cache existed).  The Cholesky column runs far fewer rounds — at
   n = 256 one factorization already costs tens of ms. *)
let time_volume_read ~dim ~rounds mode =
  let rng = Rng.create (97 + dim) in
  let e = ref (Ellipsoid.ball ~dim ~radius:4.) in
  let sink = ref 0. in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    let x = Dist.normal_vec rng ~dim in
    let mid = (Ellipsoid.bounds !e ~x).Ellipsoid.mid in
    (match Ellipsoid.cut_below !e ~x ~price:mid with
    | Ellipsoid.Cut e' -> e := e'
    | Ellipsoid.Too_shallow | Ellipsoid.Empty -> ());
    sink :=
      !sink
      +.
      match mode with
      | `Incremental -> Ellipsoid.log_volume_factor !e
      | `Cholesky -> 0.5 *. Chol.log_det (!e).Ellipsoid.shape
  done;
  ignore !sink;
  1000. *. (Unix.gettimeofday () -. t0) /. float_of_int rounds

let volume_report ~rounds ppf =
  let rows =
    List.map
      (fun dim ->
        (* Enough rounds for a stable mean, scaled down at the dims
           where one round is already expensive. *)
        let incr_rounds = min rounds (if dim > 100 then 200 else 500) in
        let chol_rounds = 5 in
        let incr = time_volume_read ~dim ~rounds:incr_rounds `Incremental in
        let chol = time_volume_read ~dim ~rounds:chol_rounds `Cholesky in
        [
          string_of_int dim;
          Printf.sprintf "%.4f ms" incr;
          Printf.sprintf "%.4f ms" chol;
          Printf.sprintf "%.0fx" (chol /. Float.max incr 1e-9);
        ])
      [ 20; 100; 256 ]
  in
  Table.print ppf
    ~title:
      "volume tracking: cut + log-volume read per round, incremental O(1) \
       cache vs per-round Cholesky log-det"
    ~header:[ "dim"; "incremental"; "cholesky"; "speedup" ]
    rows

let report ?(rounds = 2_000) ppf =
  let rows = ref [] in
  let add name (expl, cons) mem_mb =
    rows :=
      [
        name;
        Printf.sprintf "%.4f ms" expl;
        Printf.sprintf "%.4f ms" cons;
        Printf.sprintf "%.1f MB" mem_mb;
      ]
      :: !rows
  in
  (* App 1: noisy linear query at n = 100. *)
  let nq = Noisy_query.make ~seed:42 ~dim:100 ~rounds:(max rounds 2_000) () in
  let workload = Noisy_query.workload nq in
  let stream = Array.init rounds (fun t -> fst (workload t)) in
  let reserves = Array.init rounds (fun t -> snd (workload t)) in
  Gc.compact ();
  let mem = live_mb () in
  add "noisy linear query (n = 100)"
    (measure ~dim:100 ~radius:nq.Noisy_query.radius ~model:nq.Noisy_query.model
       ~stream ~reserves ~rounds)
    mem;
  (* App 2: accommodation rental at n = 55. *)
  let rental = Rental.make ~rows:(max rounds 4_000) ~seed:7 () in
  let w2 = Rental.workload rental ~ratio:0.6 in
  let n2 = min rounds rental.Rental.rounds in
  let stream2 = Array.init n2 (fun t -> fst (w2 t)) in
  let reserves2 =
    Array.init n2 (fun t -> Model.index_of_price rental.Rental.model (snd (w2 t)))
  in
  Gc.compact ();
  let mem2 = live_mb () in
  add "accommodation rental (n = 55)"
    (measure ~dim:55 ~radius:rental.Rental.radius ~model:rental.Rental.model
       ~stream:stream2 ~reserves:reserves2 ~rounds)
    mem2;
  (* App 3: impression pricing at n = 1024, sparse and dense. *)
  let imp =
    Impression.make ~train_rounds:30_000 ~seed:3 ~dim:1024
      ~rounds:(min rounds 2_000) ()
  in
  let zero = Array.make (Array.length imp.Impression.sparse_stream) neg_infinity in
  Gc.compact ();
  let mem3 = live_mb () in
  add "impression sparse (n = 1024)"
    (measure ~dim:1024 ~radius:4.
       ~model:(Impression.model imp Impression.Sparse)
       ~stream:imp.Impression.sparse_stream ~reserves:zero ~rounds)
    mem3;
  Gc.compact ();
  let mem4 = live_mb () in
  add
    (Printf.sprintf "impression dense (n = %d)" imp.Impression.dense_dim)
    (measure ~dim:imp.Impression.dense_dim ~radius:4.
       ~model:(Impression.model imp Impression.Dense)
       ~stream:imp.Impression.dense_stream ~reserves:zero ~rounds)
    mem4;
  Table.print ppf
    ~title:
      "Sec. V-D: per-round online latency by branch, and live heap (paper: \
       0.115 ms/151 MB App 1; 0.019 ms/105 MB App 2; 3.509 ms sparse / 0.024 \
       ms dense, 75-106 MB App 3)"
    ~header:
      [ "configuration"; "exploratory round"; "conservative round"; "live heap" ]
    (List.rev !rows);
  volume_report ~rounds ppf
