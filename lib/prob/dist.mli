(** Samplers for the distributions the paper's evaluation draws from.

    Section V-A draws query weights from N(0, I) or U[−1, 1], Laplace
    noise scales from a log-uniform grid, and market-value uncertainty
    [δ_t] from a σ-sub-Gaussian law (normal, uniform, or Rademacher —
    all covered by Eq. 4 of the paper). *)

val normal : Rng.t -> mean:float -> std:float -> float
(** Gaussian sample by the Box–Muller transform (the spare variate is
    discarded so that consumption per call is deterministic).
    Requires [std ≥ 0]. *)

val normal_vec : Rng.t -> dim:int -> Dm_linalg.Vec.t
(** A standard normal vector N(0, Iₙ). *)

val uniform_vec : Rng.t -> dim:int -> lo:float -> hi:float -> Dm_linalg.Vec.t

val laplace : Rng.t -> scale:float -> float
(** Zero-mean Laplace sample via inverse CDF; [scale] is the diversity
    parameter b (variance 2b²).  This is the DP noise of App 1. *)

val rademacher : Rng.t -> float
(** ±1 with equal probability — a 1-sub-Gaussian example from the
    paper's Eq. 4 discussion. *)

val bernoulli : Rng.t -> p:float -> bool
(** Requires [0 ≤ p ≤ 1]. *)

val exponential : Rng.t -> rate:float -> float
(** Requires [rate > 0]. *)

val categorical : Rng.t -> weights:float array -> int
(** Index drawn proportionally to non-negative [weights] with a
    positive sum. *)

val zipf : Rng.t -> n:int -> s:float -> int
(** Zipf-distributed rank in [0, n-1] with exponent [s ≥ 0] — used to
    give the synthetic Avazu categorical fields the heavy-tailed
    popularity profile of real ad logs. *)

val student_t : Rng.t -> dof:float -> scale:float -> float
(** Student-t sample with [dof] degrees of freedom, multiplied by
    [scale] (Bailey's polar method; two uniforms per call, so
    consumption is deterministic).  Heavy-tailed: the variance is
    infinite at [dof ≤ 2], the mean at [dof ≤ 1] — the adversarial
    valuation streams use it to break the Eq. 4 sub-Gaussian
    assumption.  Scale-covariant by construction:
    [student_t ~scale:s] equals [s ·] the same-seed
    [student_t ~scale:1.] draw.  Requires [dof > 0] and [scale ≥ 0]. *)

val pareto : Rng.t -> alpha:float -> scale:float -> float
(** Pareto sample [x_m·u^{−1/α}] on [[scale, ∞)] with tail index
    [alpha] (inverse CDF, one uniform per call).  Requires
    [alpha > 0] and [scale ≥ 0]. *)

val symmetric_pareto : Rng.t -> alpha:float -> scale:float -> float
(** Zero-median two-sided Pareto excess [±(x − x_m)]: a fair sign
    times the overshoot of {!pareto} above its mode.  Two draws per
    call (sign first), deterministic consumption; same parameter
    requirements as {!pareto}. *)

type subgaussian =
  | Gaussian of float  (** [Gaussian σ] *)
  | Uniform_pm of float  (** uniform on [−a, a] *)
  | Scaled_rademacher of float  (** ±a *)
  | Degenerate  (** always 0 — the no-uncertainty setting *)

val subgaussian_sample : Rng.t -> subgaussian -> float

val subgaussian_sigma : subgaussian -> float
(** A σ such that the law satisfies the paper's Eq. 4 tail bound with
    C = 2. *)

val on_sphere : Rng.t -> dim:int -> radius:float -> Dm_linalg.Vec.t
(** Uniform on the radius-[radius] sphere in Rⁿ — how the evaluation
    draws the hidden weight vector θ* with ‖θ*‖ = √(2n). *)
