module Vec = Dm_linalg.Vec

let normal rng ~mean ~std =
  if std < 0. then invalid_arg "Dist.normal: negative std";
  (* Box–Muller; u1 is kept away from 0 so the log is finite. *)
  let u1 = 1. -. Rng.float rng in
  let u2 = Rng.float rng in
  mean +. (std *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let normal_vec rng ~dim = Vec.init dim (fun _ -> normal rng ~mean:0. ~std:1.)

let uniform_vec rng ~dim ~lo ~hi = Vec.init dim (fun _ -> Rng.uniform rng lo hi)

let laplace rng ~scale =
  if scale < 0. then invalid_arg "Dist.laplace: negative scale";
  let u = Rng.float rng -. 0.5 in
  let s = if u >= 0. then 1. else -1. in
  -.scale *. s *. log (1. -. (2. *. abs_float u))

let rademacher rng = if Rng.bool rng then 1. else -1.

let bernoulli rng ~p =
  if p < 0. || p > 1. then invalid_arg "Dist.bernoulli: p outside [0,1]";
  Rng.float rng < p

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  -.log (1. -. Rng.float rng) /. rate

let categorical rng ~weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Dist.categorical: weights must sum > 0";
  Array.iter
    (fun w -> if w < 0. then invalid_arg "Dist.categorical: negative weight")
    weights;
  let u = Rng.float rng *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  if s < 0. then invalid_arg "Dist.zipf: negative exponent";
  let weights =
    Array.init n (fun k -> (1. /. float_of_int (k + 1)) ** s)
  in
  categorical rng ~weights

let student_t rng ~dof ~scale =
  if dof <= 0. || not (Float.is_finite dof) then
    invalid_arg "Dist.student_t: dof must be finite and positive";
  if scale < 0. then invalid_arg "Dist.student_t: negative scale";
  (* Bailey's polar method: with u, v uniform on (0,1],
     √(ν·(u^{−2/ν} − 1))·cos(2πv) is Student-t with ν degrees of
     freedom.  Two uniforms per call, like Box–Muller above, so
     consumption per draw is deterministic. *)
  let u = 1. -. Rng.float rng in
  let v = Rng.float rng in
  scale
  *. sqrt (dof *. ((u ** (-2. /. dof)) -. 1.))
  *. cos (2. *. Float.pi *. v)

let pareto rng ~alpha ~scale =
  if alpha <= 0. || not (Float.is_finite alpha) then
    invalid_arg "Dist.pareto: alpha must be finite and positive";
  if scale < 0. then invalid_arg "Dist.pareto: negative scale";
  (* Inverse CDF: x_m·u^{−1/α} on [x_m, ∞); u is kept away from 0 so
     the draw is finite. *)
  let u = 1. -. Rng.float rng in
  scale *. (u ** (-1. /. alpha))

let symmetric_pareto rng ~alpha ~scale =
  (* Excess over the mode with a fair sign: s·(x − x_m) is zero-median
     with both tails Pareto-heavy — infinite variance at α ≤ 2,
     infinite mean of |·| at α ≤ 1.  The sign is drawn first so the
     two-draws-per-call consumption is deterministic. *)
  let s = if Rng.bool rng then 1. else -1. in
  let x = pareto rng ~alpha ~scale in
  s *. (x -. scale)

type subgaussian =
  | Gaussian of float
  | Uniform_pm of float
  | Scaled_rademacher of float
  | Degenerate

let subgaussian_sample rng = function
  | Gaussian sigma -> normal rng ~mean:0. ~std:sigma
  | Uniform_pm a -> Rng.uniform rng (-.a) a
  | Scaled_rademacher a -> a *. rademacher rng
  | Degenerate -> 0.

let subgaussian_sigma = function
  | Gaussian sigma -> sigma
  | Uniform_pm a -> a
  | Scaled_rademacher a -> a
  | Degenerate -> 0.

let on_sphere rng ~dim ~radius =
  if radius < 0. then invalid_arg "Dist.on_sphere: negative radius";
  let rec draw () =
    let v = normal_vec rng ~dim in
    if Vec.norm2 v > 1e-12 then v else draw ()
  in
  Vec.scale radius (Vec.normalize (draw ()))
