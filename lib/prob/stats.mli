(** Streaming and batch summary statistics.

    Table I of the paper reports per-round means and standard
    deviations of market value, reserve price, posted price, and
    regret; the broker accumulates those with Welford's numerically
    stable online algorithm so that 10⁵-round runs need no buffering. *)

type online
(** Mutable accumulator for count / mean / variance / extrema. *)

val online_create : unit -> online

val online_add : online -> float -> unit

val online_count : online -> int

val online_mean : online -> float
(** [nan] before the first observation. *)

val online_variance : online -> float
(** Unbiased (n−1) sample variance; [0.] with fewer than two
    observations. *)

val online_std : online -> float

val online_min : online -> float
(** [nan] before the first observation (not the [infinity] seed of the
    running minimum). *)

val online_max : online -> float
(** [nan] before the first observation (not the [neg_infinity] seed of
    the running maximum). *)

val online_sum : online -> float

val merge : online -> online -> online
(** [merge a b] is a fresh accumulator equivalent to feeding [a]'s
    stream then [b]'s stream into one accumulator (Chan et al.'s
    pairwise combine).  [count], [min], [max] are exact; [sum], [mean],
    and the variance agree with the sequential accumulator up to
    floating-point reassociation (not bit-for-bit).  Merging with an
    empty accumulator returns a copy of the other side, so the
    [infinity]/[neg_infinity] extrema seeds never contaminate the
    result.  Neither argument is mutated. *)

val mean : float array -> float
(** Raises [Invalid_argument] on empty input. *)

val std : float array -> float
(** Unbiased sample standard deviation; [0.] for fewer than two
    observations.  Raises [Invalid_argument] on empty input. *)

val quantile : float array -> float -> float
(** [quantile xs p] for p ∈ [0,1], linear interpolation between order
    statistics (type-7, the numpy default).  Raises [Invalid_argument]
    on empty input or p outside [0,1]. *)

val median : float array -> float

type summary = {
  count : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  sum : float;
}

val summarize : online -> summary
(** Snapshot of the accumulator; an empty accumulator yields
    [nan] mean/min/max rather than ±[infinity] extrema. *)

val pp_summary : Format.formatter -> summary -> unit
(** Prints ["n=0 (empty)"] for an empty summary instead of a row of
    NaNs. *)
