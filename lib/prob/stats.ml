type online = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;  (* sum of squared deviations (Welford) *)
  mutable min : float;
  mutable max : float;
  mutable sum : float;
}

let online_create () =
  { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; sum = 0. }

let online_add o x =
  o.count <- o.count + 1;
  let delta = x -. o.mean in
  o.mean <- o.mean +. (delta /. float_of_int o.count);
  o.m2 <- o.m2 +. (delta *. (x -. o.mean));
  if x < o.min then o.min <- x;
  if x > o.max then o.max <- x;
  o.sum <- o.sum +. x

let online_count o = o.count

let online_mean o = if o.count = 0 then nan else o.mean

let online_variance o =
  if o.count < 2 then 0. else o.m2 /. float_of_int (o.count - 1)

let online_std o = sqrt (online_variance o)

let online_min o = if o.count = 0 then nan else o.min

let online_max o = if o.count = 0 then nan else o.max

let online_sum o = o.sum

let merge a b =
  (* Chan et al.'s parallel Welford combine.  Either side empty returns
     a copy of the other so the ±inf extrema seeds and the 0 mean never
     leak into the merged moments. *)
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let ca = float_of_int a.count and cb = float_of_int b.count in
    let n = ca +. cb in
    let delta = b.mean -. a.mean in
    {
      count = a.count + b.count;
      mean = a.mean +. (delta *. (cb /. n));
      m2 = a.m2 +. b.m2 +. (delta *. delta *. ca *. cb /. n);
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      sum = a.sum +. b.sum;
    }
  end

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty input";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let std xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.std: empty input";
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let quantile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty input";
  if p < 0. || p > 1. then invalid_arg "Stats.quantile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5

type summary = {
  count : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  sum : float;
}

let summarize (o : online) =
  {
    count = o.count;
    mean = online_mean o;
    std = online_std o;
    min = online_min o;
    max = online_max o;
    sum = o.sum;
  }

let pp_summary ppf s =
  if s.count = 0 then Format.fprintf ppf "n=0 (empty)"
  else
    Format.fprintf ppf "n=%d mean=%.4f std=%.4f min=%.4f max=%.4f sum=%.4f"
      s.count s.mean s.std s.min s.max s.sum
