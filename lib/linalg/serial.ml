let add_u8 b v =
  if v < 0 || v > 0xff then invalid_arg "Serial.add_u8: byte out of range";
  Buffer.add_char b (Char.unsafe_chr v)

let add_u32 b v =
  if v < 0 || v > 0xFFFF_FFFF then
    invalid_arg "Serial.add_u32: value out of range";
  Buffer.add_int32_le b (Int32.of_int v)

let add_u64 b v =
  if v < 0 then invalid_arg "Serial.add_u64: negative value";
  Buffer.add_int64_le b (Int64.of_int v)

let add_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let add_f64s b a =
  add_u32 b (Array.length a);
  Array.iter (add_f64 b) a

type reader = { src : string; mutable pos : int }

exception Short of int

let reader ?(pos = 0) src =
  if pos < 0 || pos > String.length src then
    invalid_arg "Serial.reader: position out of range";
  { src; pos }

let remaining r = String.length r.src - r.pos

let need r n = if remaining r < n then raise (Short r.pos)

let take_u8 r =
  need r 1;
  let v = Char.code (String.unsafe_get r.src r.pos) in
  r.pos <- r.pos + 1;
  v

let take_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.src r.pos) land 0xFFFF_FFFF in
  r.pos <- r.pos + 4;
  v

let take_u64 r =
  need r 8;
  let v = String.get_int64_le r.src r.pos in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Short r.pos);
  r.pos <- r.pos + 8;
  Int64.to_int v

let take_f64 r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let take_f64s r =
  let start = r.pos in
  let n = take_u32 r in
  if n * 8 > remaining r then raise (Short start);
  Array.init n (fun _ -> take_f64 r)

let take_bytes r len =
  if len < 0 then invalid_arg "Serial.take_bytes: negative length";
  need r len;
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let expect r magic =
  let len = String.length magic in
  if remaining r < len then false
  else
    let ok = String.sub r.src r.pos len = magic in
    r.pos <- r.pos + len;
    ok
