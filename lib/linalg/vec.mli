(** Dense real vectors backed by unboxed [float array]s.

    All functions are total unless documented otherwise; dimension
    mismatches raise [Invalid_argument].  Vectors are mutable arrays:
    functions suffixed [_inplace] mutate their first argument, all
    others allocate fresh results. *)

type t = float array

val create : int -> float -> t
(** [create n x] is the [n]-vector with every component equal to [x]. *)

val zeros : int -> t
(** [zeros n] is the [n]-dimensional zero vector. *)

val ones : int -> t
(** [ones n] is the [n]-dimensional all-ones vector. *)

val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of R^n
    (zero-indexed).  Raises [Invalid_argument] if [i] is out of
    range. *)

val init : int -> (int -> float) -> t
(** [init n f] is the vector [(f 0, ..., f (n-1))]. *)

val dim : t -> int
(** [dim v] is the number of components of [v]. *)

val copy : t -> t
(** [copy v] is a fresh vector equal to [v]. *)

val of_list : float list -> t

val to_list : t -> float list

val get : t -> int -> float

val set : t -> int -> float -> unit

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** [map2 f u v] is the componentwise image [(f u_i v_i)_i]. *)

val iteri : (int -> float -> unit) -> t -> unit

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val dot : t -> t -> float
(** [dot u v] is the Euclidean inner product [Σ_i u_i v_i]. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t
(** [scale a v] is [a · v]. *)

val scale_inplace : float -> t -> unit
(** [scale_inplace a v] performs [v := a·v] in place — the same
    per-component product as {!scale}, so the two agree bit-for-bit. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y := a·x + y] in place. *)

val neg : t -> t

val sum : t -> float

val mean : t -> float
(** Arithmetic mean.  Raises [Invalid_argument] on the empty vector. *)

val norm2 : t -> float
(** Euclidean (L2) norm. *)

val norm1 : t -> float
(** L1 norm. *)

val norm_inf : t -> float
(** Maximum absolute component; [0.] on the empty vector. *)

val normalize : t -> t
(** [normalize v] is [v / ‖v‖₂].  Raises [Invalid_argument] on the
    zero vector (its direction is undefined). *)

val dist2 : t -> t -> float
(** Euclidean distance [‖u − v‖₂]. *)

val max_elt : t -> float
(** Largest component.  Raises [Invalid_argument] on the empty
    vector. *)

val min_elt : t -> float

val argmax : t -> int

val argmin : t -> int

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with absolute tolerance [tol]
    (default [1e-9]).  Vectors of different dimension are never
    approximately equal. *)

val concat : t -> t -> t

val slice : t -> pos:int -> len:int -> t

val sorted : t -> t
(** A fresh copy sorted in increasing order. *)

val pp : Format.formatter -> t -> unit
(** Prints as [[v0; v1; ...]] with 6 significant digits. *)

(** Read-only index/value views of sparse vectors, built once per round
    from a dense vector so the sparse-aware {!Mat} kernels
    ([matvec_sparse], [quad_sparse], [rank_one_rescale_sparse]) can
    skip the zero coordinates without rescanning.  Views alias nothing:
    the index and value arrays are freshly gathered copies, so later
    mutation of the source vector does not affect them. *)
module Sparse : sig
  type dense = t

  type t = private { dim : int; idx : int array; value : float array }
  (** [idx] holds the positions of the nonzero entries in increasing
      order; [value.(k)] is the entry at [idx.(k)].  Entries that are
      exactly [0.] (either sign) are never included. *)

  val default_max_density : float
  (** [0.125] — the same 8·nnz ≤ n rule the dense kernels use for
      their internal zero-skipping fast path. *)

  val of_dense : ?max_density:float -> dense -> t option
  (** Gather the nonzero entries of a dense vector, or [None] when
      more than [max_density] (default {!default_max_density}) of the
      coordinates are nonzero — the signal that the dense kernels will
      be at least as fast as the gathered ones.  Raises
      [Invalid_argument] if [max_density ≤ 0]. *)

  val gather : dense -> t
  (** Unconditional gather (no density threshold) — used for
      intermediate vectors whose support matters even when it is
      large, e.g. the ellipsoid cut direction [b = M·x/√(xᵀMx)]. *)

  val dim : t -> int

  val nnz : t -> int

  val density : t -> float
  (** [nnz / dim]; [0.] for the empty vector. *)

  val to_dense : t -> dense

  val dot_dense : t -> dense -> float
  (** [dot_dense s y] is [Σₖ value.(k)·y.(idx.(k))] in ascending index
      order — bit-identical to [Vec.dot (to_dense s) y] on finite data
      (the skipped terms are ±0 and the running sum is never −0, so
      dropping them is exact). *)
end
