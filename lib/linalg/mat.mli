(** Dense real matrices, stored row-major in a flat [float array].

    The flat layout keeps every element unboxed and makes the
    mat-vec/rank-one kernels that dominate the ellipsoid update cache
    friendly.  Dimension mismatches raise [Invalid_argument].

    The O(n²)/O(n³) kernels ([matvec], [matmul], [quad],
    [rank_one_update], [rank_one_rescale]) are cache-blocked and, once
    the row count reaches 512, fan row tiles over the default {!Pool}
    when one is installed (serial fallback below the threshold or
    without a pool).  Every output element is reduced in a fixed
    serial order regardless of scheduling, so results are
    bit-identical at any worker count. *)

type t = private { rows : int; cols : int; data : float array }
(** [data.(i*cols + j)] holds element (i, j). *)

val create : int -> int -> float -> t
(** [create r c x] is the [r×c] matrix filled with [x]. *)

val zeros : int -> int -> t

val identity : int -> t

val scaled_identity : int -> float -> t
(** [scaled_identity n a] is [a·Iₙ] — the initial ellipsoid shape
    [R²·I] in Algorithms 1 and 2. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] has element (i,j) equal to [f i j]. *)

val of_arrays : float array array -> t
(** Rows given as arrays; all rows must share one length.  Raises
    [Invalid_argument] on ragged input or zero rows. *)

val to_arrays : t -> float array array

val diag_of_vec : Vec.t -> t
(** Square matrix with the given diagonal and zeros elsewhere. *)

val rows : t -> int

val cols : t -> int

val dims : t -> int * int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

val diag : t -> Vec.t
(** Main diagonal (length [min rows cols]). *)

val trace : t -> float
(** Sum of the main diagonal of a square matrix. *)

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val scale_inplace : float -> t -> unit

val matvec : ?into:Vec.t -> t -> Vec.t -> Vec.t
(** [matvec a x] is [A·x].  [into], when given, receives the result
    (length [rows a], must not alias [x]). *)

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t a x] is [Aᵀ·x], without materializing the transpose.
    Row-major accumulation: each task owns a column range of the
    output and streams contiguous row segments, so the walk is
    cache-friendly at any [n].  Fans column tiles over the default
    {!Pool} at [cols ≥ 512]; every output element reduces over rows in
    ascending order with the exact [xᵢ = 0] skip, so the result is
    bit-identical at any worker count. *)

val project : ?into:Vec.t -> t -> Vec.t -> Vec.t
(** [project p x] is [P·x] for a tall-skinny [k×n] projection matrix —
    the same per-row ascending-column reduction as {!matvec} (so the
    two agree bit-for-bit on the same input), but with the pool gate
    firing on {e either} dimension: a [k ≪ 512] row batch still fans
    out once [n ≥ 512], which is where the rank-k projected pricing
    path spends its per-round flops.  [into], when given, receives the
    result (length [k], must not alias [x]). *)

val pack_rows : ?into:t -> Vec.t array -> t
(** [pack_rows vs] gathers [B ≥ 1] same-length vectors into the [B×n]
    row-major panel whose row [i] is [vs.(i)] — the batch-serving
    gather step.  [into], when given, receives the panel ([B×n]).
    Raises [Invalid_argument] on an empty or ragged batch. *)

val unpack_row : t -> int -> into:Vec.t -> unit
(** [unpack_row m i ~into] copies row [i] of [m] into the caller's
    buffer (length [cols m]) — the batch-serving scatter step, used to
    hand each mechanism its panel row without a fresh allocation. *)

val project_batch : ?into:t -> pt:t -> t -> t
(** [project_batch ~pt xs] is the [B×k] panel [X·Pᵀ] for a [B×n] batch
    panel [xs] and the projection {e transposed}, [pt = transpose p]
    ([n×k]) — hoisted by the caller so repeated batches pay the O(k·n)
    transpose once.  One blocked pass replaces [B] independent
    {!project} calls: the shared dimension is cache-blocked so a tile
    of [pt] is reused across every panel row, and the inner updates
    are independent rather than one serial accumulator chain.  Row [i]
    reduces over the shared dimension in ascending order with the
    exact zero-skip, so it is bit-identical to [project p (row xs i)]
    at any worker count and any batch size.  Fans panel rows over the
    default {!Pool} once either dimension of [xs] reaches 512.
    [into], when given, receives the result ([B×k], must alias neither
    operand). *)

val project_t : ?into:Vec.t -> t -> Vec.t -> Vec.t
(** [project_t p y] is [Pᵀ·y] for [p : k×n] and [y] of length [k] —
    the back-projection into index space.  Same blocked column-range
    body as {!matvec_t} (bit-identical to it on the same input),
    pooled at [n ≥ 512].  [into], when given, receives the result
    (length [n], must not alias [y]). *)

val matmul_tt : t -> t -> t
(** [matmul_tt a b] is [A·Bᵀ] for [a : p×n] and [b : q×n] — the
    tall-skinny batch product where both operands share the long
    dimension [n] and stream contiguously row-major (no transpose is
    materialized).  Each output element is one ascending-index dot
    product, fanned over rows of [a] through the default {!Pool} when
    either dimension of [a] reaches 512, so results are bit-identical
    at any worker count. *)

val matvec_sparse : t -> Vec.Sparse.t -> Vec.t
(** [matvec_sparse a sx] is [A·x] for a prebuilt sparse view of [x],
    touching only the [nnz] columns in the support: O(n·nnz).
    Bit-identical to [matvec a (Vec.Sparse.to_dense sx)] on finite
    data (same per-row reduction order; the skipped terms are exact
    ±0). *)

val quad_sparse : t -> Vec.Sparse.t -> float
(** [quad_sparse a sx] is the quadratic form [xᵀ·A·x] over the
    support × support block only: O(nnz²).  Bit-identical to
    [quad a (Vec.Sparse.to_dense sx)] on finite data, on both the
    serial and the pooled [quad] branches. *)

val rank_one_rescale_sparse :
  t -> beta:float -> b:Vec.Sparse.t -> factor:float -> scale:float -> float
(** [rank_one_rescale_sparse m ~beta ~b ~factor ~scale] is the
    scalar-scaled form of {!rank_one_rescale}: for an ellipsoid shape
    held as [A = scale·M] it applies [A' = factor·(A + beta·b_A·b_Aᵀ)]
    (where [b_A = √scale·b], [b] being the M-space unit direction) by
    mutating [M := M + beta·b·bᵀ] **in place** over the
    support × support block — O(nnz²) entries touched instead of the
    O(n²) of a fused dense rescale — and returning the new scalar
    [factor·scale] in O(1).  The update term keeps the exactly
    (i, j)-symmetric [beta·(bᵢ·bⱼ)] association of
    {!rank_one_rescale}, so [M] stays bit-exactly symmetric.  Serial
    by design: the touched block is far below the pool's profitable
    flop count. *)

val matmul : t -> t -> t

val outer : Vec.t -> Vec.t -> t
(** [outer u v] is the rank-one matrix [u·vᵀ]. *)

val rank_one_update : t -> float -> Vec.t -> unit
(** [rank_one_update a beta b] performs [A := A + beta·b·bᵀ] in place —
    the inner kernel of the Löwner–John ellipsoid update. *)

val rank_one_rescale :
  ?into:t -> t -> beta:float -> b:Vec.t -> factor:float -> t
(** [rank_one_rescale ?into a ~beta ~b ~factor] is the fused ellipsoid
    shape update [factor·(A + beta·b·bᵀ)] in one streaming pass — one
    read of [A] and one write instead of the
    copy/rank-one/scale/symmetrize pipeline.  The update term is
    associated as [beta·(bᵢ·bⱼ)], which is exactly symmetric in (i, j),
    so the result is bit-exactly symmetric whenever [A] is and needs no
    symmetrization.  [into], when given, supplies the destination
    buffer (same dimensions, and must not alias [a]); otherwise a fresh
    matrix is allocated.  Returns the destination. *)

val quad : t -> Vec.t -> float
(** [quad a x] is the quadratic form [xᵀ·A·x], computed in a single
    pass without allocating [A·x]. *)

val symmetrize_inplace : t -> unit
(** [A := (A + Aᵀ)/2]; used to contain floating-point drift in shape
    matrices that are symmetric by construction. *)

val is_symmetric : ?tol:float -> t -> bool

val max_abs : t -> float
(** Largest absolute entry; [0.] for an empty matrix. *)

val frobenius : t -> float

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
