type t = float array

let create n x =
  if n < 0 then invalid_arg "Vec.create: negative dimension";
  Array.make n x

let zeros n = create n 0.

let ones n = create n 1.

let basis n i =
  if i < 0 || i >= n then invalid_arg "Vec.basis: index out of range";
  let v = zeros n in
  v.(i) <- 1.;
  v

let init = Array.init

let dim = Array.length

let copy = Array.copy

let of_list = Array.of_list

let to_list = Array.to_list

let get (v : t) i = v.(i)

let set (v : t) i x = v.(i) <- x

let map = Array.map

let check_dims name u v =
  if Array.length u <> Array.length v then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length u) (Array.length v))

let map2 f u v =
  check_dims "map2" u v;
  Array.init (Array.length u) (fun i -> f u.(i) v.(i))

let iteri = Array.iteri

let fold = Array.fold_left

let dot u v =
  check_dims "dot" u v;
  let acc = ref 0. in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (u.(i) *. v.(i))
  done;
  !acc

let add u v = map2 ( +. ) u v

let sub u v = map2 ( -. ) u v

let scale a v = Array.map (fun x -> a *. x) v

let scale_inplace a (v : t) =
  for i = 0 to Array.length v - 1 do
    Array.unsafe_set v i (a *. Array.unsafe_get v i)
  done

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let neg v = scale (-1.) v

let sum v = Array.fold_left ( +. ) 0. v

let mean v =
  if Array.length v = 0 then invalid_arg "Vec.mean: empty vector";
  sum v /. float_of_int (Array.length v)

let norm2 v = sqrt (dot v v)

let norm1 v = Array.fold_left (fun acc x -> acc +. abs_float x) 0. v

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0. v

let normalize v =
  let n = norm2 v in
  if n <= 0. then invalid_arg "Vec.normalize: zero vector";
  scale (1. /. n) v

let dist2 u v = norm2 (sub u v)

let extremum name better v =
  if Array.length v = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector");
  let best = ref v.(0) in
  for i = 1 to Array.length v - 1 do
    if better v.(i) !best then best := v.(i)
  done;
  !best

let max_elt v = extremum "max_elt" ( > ) v

let min_elt v = extremum "min_elt" ( < ) v

let arg_extremum name better v =
  if Array.length v = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector");
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if better v.(i) v.(!best) then best := i
  done;
  !best

let argmax v = arg_extremum "argmax" ( > ) v

let argmin v = arg_extremum "argmin" ( < ) v

let approx_equal ?(tol = 1e-9) u v =
  Array.length u = Array.length v
  &&
  let ok = ref true in
  for i = 0 to Array.length u - 1 do
    if abs_float (u.(i) -. v.(i)) > tol then ok := false
  done;
  !ok

let concat = Array.append

let slice v ~pos ~len = Array.sub v pos len

let sorted v =
  let w = Array.copy v in
  Array.sort Float.compare w;
  w

let pp ppf v =
  Format.fprintf ppf "[@[<hov>";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%.6g" x)
    v;
  Format.fprintf ppf "@]]"

module Sparse = struct
  type dense = t

  type t = { dim : int; idx : int array; value : float array }

  let count_nonzeros (x : dense) =
    let nnz = ref 0 in
    for i = 0 to Array.length x - 1 do
      if Array.unsafe_get x i <> 0. then incr nnz
    done;
    !nnz

  let gather_support (x : dense) nnz =
    let idx = Array.make nnz 0 in
    let value = Array.make nnz 0. in
    let k = ref 0 in
    for i = 0 to Array.length x - 1 do
      let xi = Array.unsafe_get x i in
      if xi <> 0. then begin
        Array.unsafe_set idx !k i;
        Array.unsafe_set value !k xi;
        incr k
      end
    done;
    { dim = Array.length x; idx; value }

  let gather x = gather_support x (count_nonzeros x)

  let default_max_density = 0.125

  let of_dense ?(max_density = default_max_density) x =
    if not (max_density > 0.) then
      invalid_arg "Vec.Sparse.of_dense: max_density must be positive";
    let nnz = count_nonzeros x in
    if float_of_int nnz > max_density *. float_of_int (Array.length x) then None
    else Some (gather_support x nnz)

  let dim s = s.dim

  let nnz s = Array.length s.idx

  let density s =
    if s.dim = 0 then 0.
    else float_of_int (Array.length s.idx) /. float_of_int s.dim

  let to_dense s =
    let x = Array.make s.dim 0. in
    for k = 0 to Array.length s.idx - 1 do
      x.(s.idx.(k)) <- s.value.(k)
    done;
    x

  let dot_dense s (y : dense) =
    if s.dim <> Array.length y then
      invalid_arg "Vec.Sparse.dot_dense: dimension mismatch";
    (* Ascending-index accumulation with the exactly-zero terms of the
       dense dot skipped: the skipped terms are ±0 and the running sum
       is never −0, so this matches [Vec.dot] bit-for-bit on finite
       data. *)
    let acc = ref 0. in
    for k = 0 to Array.length s.idx - 1 do
      acc :=
        !acc
        +. (Array.unsafe_get s.value k
           *. Array.unsafe_get y (Array.unsafe_get s.idx k))
    done;
    !acc
end
