type job = {
  body : int -> int -> unit;
  chunk : int;
  n : int;
  nchunks : int;
  next : int Atomic.t;
  completed : int Atomic.t;
}

type t = {
  size : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  work_done : Condition.t;
  submit : Mutex.t;
  mutable job : job option;
  mutable generation : int;
  mutable error : (int * exn) option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

(* True on any domain currently executing a pool task (workers always,
   the submitter while it participates).  A nested [parallel_for]
   checks it and runs inline instead of re-entering the pool. *)
let in_task = Domain.DLS.new_key (fun () -> false)

let size t = t.size

(* Claim chunks until the counter is exhausted.  Exceptions are
   recorded (lowest chunk index wins) rather than propagated so the
   completion barrier always closes. *)
let run_chunks t job =
  let rec claim () =
    let c = Atomic.fetch_and_add job.next 1 in
    if c < job.nchunks then begin
      let lo = c * job.chunk in
      let hi = min job.n (lo + job.chunk) in
      (try job.body lo hi
       with e ->
         Mutex.lock t.mutex;
         (match t.error with
         | Some (c0, _) when c0 <= c -> ()
         | _ -> t.error <- Some (c, e));
         Mutex.unlock t.mutex);
      let finished = 1 + Atomic.fetch_and_add job.completed 1 in
      if finished = job.nchunks then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end;
      claim ()
    end
  in
  claim ()

let worker t () =
  Domain.DLS.set in_task true;
  let rec loop seen =
    Mutex.lock t.mutex;
    while t.generation = seen && not t.stop do
      Condition.wait t.has_work t.mutex
    done;
    let stop = t.stop in
    let generation = t.generation and job = t.job in
    Mutex.unlock t.mutex;
    if not stop then begin
      (* [job] can be [None] for a worker that slept through a whole
         submission: the generation advanced but the work is gone. *)
      (match job with Some j -> run_chunks t j | None -> ());
      loop generation
    end
  in
  loop 0

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be positive";
  let t =
    {
      size = jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      work_done = Condition.create ();
      submit = Mutex.create ();
      job = None;
      generation = 0;
      error = None;
      stop = false;
      workers = [||];
    }
  in
  if jobs > 1 then
    t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

let run_inline chunk n body =
  let lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + chunk) in
    body !lo hi;
    lo := hi
  done

let parallel_for t ?(chunk = 64) n body =
  if chunk < 1 then invalid_arg "Pool.parallel_for: chunk must be positive";
  if n > 0 then
    if t.size = 1 || n <= chunk || Domain.DLS.get in_task then
      run_inline chunk n body
    else begin
      Mutex.lock t.submit;
      let job =
        {
          body;
          chunk;
          n;
          nchunks = (n + chunk - 1) / chunk;
          next = Atomic.make 0;
          completed = Atomic.make 0;
        }
      in
      Mutex.lock t.mutex;
      t.error <- None;
      t.job <- Some job;
      t.generation <- t.generation + 1;
      Condition.broadcast t.has_work;
      Mutex.unlock t.mutex;
      Domain.DLS.set in_task true;
      run_chunks t job;
      Domain.DLS.set in_task false;
      Mutex.lock t.mutex;
      while Atomic.get job.completed < job.nchunks do
        Condition.wait t.work_done t.mutex
      done;
      t.job <- None;
      let error = t.error in
      t.error <- None;
      Mutex.unlock t.mutex;
      Mutex.unlock t.submit;
      match error with Some (_, e) -> raise e | None -> ()
    end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ~jobs f =
  let t = create ~jobs in
  match f t with
  | y ->
      shutdown t;
      y
  | exception e ->
      shutdown t;
      raise e

let default : t option Atomic.t = Atomic.make None

let set_default p = Atomic.set default p

let get_default () = Atomic.get default
