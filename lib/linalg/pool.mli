(** A persistent work-stealing pool of OCaml 5 domains for index-range
    tasks — the single domain-pool implementation of the codebase.

    The pool is spawned once ([create]) and reused across many
    [parallel_for] submissions: each submission partitions an index
    range into contiguous chunks that the caller and the worker
    domains claim through an atomic counter (work stealing), then
    joins a barrier before returning.  Chunk boundaries affect only
    scheduling, never results: a task body must write only to
    locations owned by its index range, so every interleaving computes
    the same values and callers stay byte-deterministic whatever the
    worker count.

    Nesting is safe and serial: a [parallel_for] issued from inside a
    pool task (including from an experiment cell that
    {!Dm_experiments.Runner} dispatched onto the pool) runs inline on
    the calling domain rather than re-entering the pool, so kernels
    that consult {!get_default} can be called from anywhere without
    deadlock. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs − 1] worker domains (the submitting
    domain is the [jobs]-th participant).  Raises [Invalid_argument]
    if [jobs < 1].  A pool of size 1 spawns nothing and runs every
    submission inline. *)

val size : t -> int
(** The [jobs] value the pool was created with. *)

val parallel_for : t -> ?chunk:int -> int -> (int -> int -> unit) -> unit
(** [parallel_for t ~chunk n body] runs [body lo hi] over contiguous
    sub-ranges of [0, n) of length ≤ [chunk] (default 64), in
    parallel.  Returns once every chunk has completed.  If any body
    raises, the exception of the lowest-index failing chunk is
    re-raised in the caller after the barrier.  Runs inline (serially,
    in index order) when the pool has size 1, when [n] is a single
    chunk, or when called from inside another pool task. *)

val shutdown : t -> unit
(** Joins the worker domains.  The pool must not be used afterwards;
    calling [shutdown] twice is harmless. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] creates a transient pool, applies [f], and
    shuts the pool down (also on exception). *)

val set_default : t option -> unit
(** Installs (or clears) the process-wide default pool consulted by
    the large-[n] kernels in {!Mat} and by
    {!Dm_experiments.Runner}.  Call once at startup, before any
    parallel work is submitted. *)

val get_default : unit -> t option
(** The pool installed by {!set_default}, if any. *)
