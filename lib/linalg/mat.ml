type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let zeros rows cols = create rows cols 0.

let scaled_identity n a =
  let m = zeros n n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- a
  done;
  m

let identity n = scaled_identity n 1.

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Mat.of_arrays: no rows";
  let cols = Array.length a.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows")
    a;
  init rows cols (fun i j -> a.(i).(j))

let to_arrays m =
  Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

let diag_of_vec v =
  let n = Array.length v in
  let m = zeros n n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- v.(i)
  done;
  m

let rows m = m.rows

let cols m = m.cols

let dims m = (m.rows, m.cols)

let get m i j = m.data.((i * m.cols) + j)

let set m i j x = m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }

let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> get m i j)

let diag m =
  let n = min m.rows m.cols in
  Array.init n (fun i -> get m i i)

let trace m =
  if m.rows <> m.cols then invalid_arg "Mat.trace: not square";
  let acc = ref 0. in
  for i = 0 to m.rows - 1 do
    acc := !acc +. get m i i
  done;
  !acc

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let elementwise name f a b =
  check_same name a b;
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = elementwise "add" ( +. ) a b

let sub a b = elementwise "sub" ( -. ) a b

let scale a m = { m with data = Array.map (fun x -> a *. x) m.data }

let scale_inplace a m =
  let data = m.data in
  for k = 0 to Array.length data - 1 do
    Array.unsafe_set data k (a *. Array.unsafe_get data k)
  done

(* The kernels below use unsafe accesses: dimensions are validated up
   front and every index is a product/sum of loop bounds derived from
   them.  They are the pricing hot path (Sec. III-C1's O(n²) budget)
   and run 10⁵ times per experiment at n up to 1024.

   Determinism contract: every kernel computes each output element
   with a fixed reduction order that does not depend on how the work
   is scheduled, so the tiled/pooled paths below are bit-identical to
   their serial counterparts at any worker count.  Row tiles fan out
   over the default {!Pool} once the row count reaches
   [parallel_threshold]; below it (or with no pool installed, or from
   inside another pool task) the same loop runs inline. *)

let parallel_threshold = 512

let row_chunk = 64

(* Column-range chunk for the transposed kernels ([matvec_t],
   [project_t]): each task owns a disjoint slice of the output vector,
   wide enough that the per-row inner loops amortize the task-claim
   cost and the streamed row segments stay contiguous. *)
let col_chunk = 512

let over_range ~gate ~chunk n body =
  match Pool.get_default () with
  | Some p when gate && Pool.size p > 1 -> Pool.parallel_for p ~chunk n body
  | _ -> body 0 n

let over_rows n body =
  over_range ~gate:(n >= parallel_threshold) ~chunk:row_chunk n body

(* Row-fan-out chunk for the tall-skinny kernels: with only k ≪ 512
   rows the standard [row_chunk] would put the whole matrix in one
   task, so shrink the chunk until roughly 16 tasks exist.  The chunk
   size never affects output bits — only which worker computes which
   rows. *)
let fan_chunk rows = max 1 (min row_chunk ((rows + 15) / 16))

(* Indices of the nonzero entries of [x], or [None] when [x] is dense
   enough that gathering would not pay.  Skipping an exactly-zero term
   never changes a row sum's bits for finite data: the skipped term is
   ±0, the running sum is never −0 (it starts at +0, and +0 + ±0 and
   x + (−x) both round to +0), and adding ±0 to such a sum is exact. *)
let sparse_support x =
  let n = Array.length x in
  let nnz = ref 0 in
  for j = 0 to n - 1 do
    if Array.unsafe_get x j <> 0. then incr nnz
  done;
  if !nnz * 8 > n then None
  else begin
    let idx = Array.make (max 1 !nnz) 0 in
    let k = ref 0 in
    for j = 0 to n - 1 do
      if Array.unsafe_get x j <> 0. then begin
        Array.unsafe_set idx !k j;
        incr k
      end
    done;
    Some (Array.sub idx 0 !nnz)
  end

(* Shared P·x body: each output row reduces in ascending column order
   (over the sparse support or all columns — exact either way, see
   [sparse_support]), so any [gate]/[chunk] yields the same bits.  [y]
   is fully overwritten; no pre-zeroing needed. *)
let matvec_into ~gate ~chunk y m x =
  let data = m.data in
  let cols = m.cols in
  match sparse_support x with
  | Some idx ->
      let nnz = Array.length idx in
      over_range ~gate ~chunk m.rows (fun lo hi ->
          for i = lo to hi - 1 do
            let base = i * cols in
            let acc = ref 0. in
            for k = 0 to nnz - 1 do
              let j = Array.unsafe_get idx k in
              acc :=
                !acc
                +. (Array.unsafe_get data (base + j) *. Array.unsafe_get x j)
            done;
            Array.unsafe_set y i !acc
          done)
  | None ->
      over_range ~gate ~chunk m.rows (fun lo hi ->
          for i = lo to hi - 1 do
            let base = i * cols in
            let acc = ref 0. in
            for j = 0 to cols - 1 do
              acc :=
                !acc
                +. (Array.unsafe_get data (base + j) *. Array.unsafe_get x j)
            done;
            Array.unsafe_set y i !acc
          done)

let matvec ?into m x =
  if Array.length x <> m.cols then
    invalid_arg "Mat.matvec: dimension mismatch";
  let y =
    match into with
    | None -> Array.make m.rows 0.
    | Some y ->
        if Array.length y <> m.rows then
          invalid_arg "Mat.matvec: into dimension mismatch";
        if y == x then invalid_arg "Mat.matvec: into aliases the input";
        y
  in
  matvec_into ~gate:(m.rows >= parallel_threshold) ~chunk:row_chunk y m x;
  y

let project ?into p x =
  if Array.length x <> p.cols then
    invalid_arg "Mat.project: dimension mismatch";
  let y =
    match into with
    | None -> Array.make p.rows 0.
    | Some y ->
        if Array.length y <> p.rows then
          invalid_arg "Mat.project: into dimension mismatch";
        if y == x then invalid_arg "Mat.project: into aliases the input";
        y
  in
  (* Unlike [matvec], the fan-out gate also fires on the column count:
     a tall-skinny k×n projection with k ≪ 512 still carries k·n ≥
     512·k flops worth of work once n ≥ 512. *)
  matvec_into
    ~gate:(p.rows >= parallel_threshold || p.cols >= parallel_threshold)
    ~chunk:(fan_chunk p.rows) y p x;
  y

let pack_rows ?into vs =
  let b = Array.length vs in
  if b = 0 then invalid_arg "Mat.pack_rows: no rows";
  let n = Array.length vs.(0) in
  Array.iter
    (fun v ->
      if Array.length v <> n then invalid_arg "Mat.pack_rows: ragged rows")
    vs;
  let panel =
    match into with
    | None -> zeros b n
    | Some p ->
        if p.rows <> b || p.cols <> n then
          invalid_arg "Mat.pack_rows: into dimension mismatch";
        p
  in
  for i = 0 to b - 1 do
    Array.blit vs.(i) 0 panel.data (i * n) n
  done;
  panel

let unpack_row m i ~into =
  if i < 0 || i >= m.rows then invalid_arg "Mat.unpack_row: row out of range";
  if Array.length into <> m.cols then
    invalid_arg "Mat.unpack_row: into dimension mismatch";
  Array.blit m.data (i * m.cols) into 0 m.cols

let project_batch ?into ~pt xs =
  if xs.cols <> pt.rows then invalid_arg "Mat.project_batch: dimension mismatch";
  let b = xs.rows and n = xs.cols and k = pt.cols in
  let u =
    match into with
    | None -> zeros b k
    | Some u ->
        if u.rows <> b || u.cols <> k then
          invalid_arg "Mat.project_batch: into dimension mismatch";
        if u.data == xs.data || u.data == pt.data then
          invalid_arg "Mat.project_batch: into aliases an input";
        u
  in
  let xdata = xs.data and tdata = pt.data and udata = u.data in
  (* U = X·Pᵀ as an i-l-j pass, blocked at three levels: an outer
     [row_chunk]-row block of the panel keeps its u rows cache-resident
     across the whole shared dimension (a large batch would otherwise
     re-stream the u panel once per Pᵀ tile), a [row_chunk]-row tile of
     Pᵀ is reused across every panel row of the block (the [matmul]
     body shape), and the shared dimension is register-blocked eight
     wide, so each u[i,j] load/store round-trip covers eight
     independent FMAs — throughput-bound, where the dot-per-element
     form ([matmul_tt], {!project}) is bound by the latency of one
     serial accumulator.  Each u[i,j] still reduces over l ascending
     (tiles ascend, the eight-wide sums are left-associated, l ascends
     within and across blocks), i.e. the same term sequence as
     {!project}'s row reduction with the factors commuted — float
     multiplication is exactly commutative.  A block all of whose x[l]
     are ±0 is skipped, and a partially-zero block keeps its ±0 terms:
     both are exact, by the [sparse_support] argument (the accumulator
     starts at +0 and can never round to −0, so adding a ±0 term never
     changes its bits) — so row i is bit-identical to [project p vs.(i)]
     at any worker count and any batch size. *)
  over_range
    ~gate:(b >= parallel_threshold || n >= parallel_threshold)
    ~chunk:(fan_chunk b) b
    (fun blo bhi ->
      Array.fill udata (blo * k) ((bhi - blo) * k) 0.;
      let ilo = ref blo in
      while !ilo < bhi do
        let ihi = min bhi (!ilo + row_chunk) in
        let llo = ref 0 in
        while !llo < n do
          let lhi = min n (!llo + row_chunk) in
          for i = !ilo to ihi - 1 do
            let xbase = i * n in
            let ubase = i * k in
            let l = ref !llo in
            while !l + 7 < lhi do
              let xb = xbase + !l in
              let xl0 = Array.unsafe_get xdata xb
              and xl1 = Array.unsafe_get xdata (xb + 1)
              and xl2 = Array.unsafe_get xdata (xb + 2)
              and xl3 = Array.unsafe_get xdata (xb + 3)
              and xl4 = Array.unsafe_get xdata (xb + 4)
              and xl5 = Array.unsafe_get xdata (xb + 5)
              and xl6 = Array.unsafe_get xdata (xb + 6)
              and xl7 = Array.unsafe_get xdata (xb + 7) in
              if
                xl0 <> 0. || xl1 <> 0. || xl2 <> 0. || xl3 <> 0. || xl4 <> 0.
                || xl5 <> 0. || xl6 <> 0. || xl7 <> 0.
              then begin
                let t0 = !l * k in
                let t1 = t0 + k in
                let t2 = t1 + k in
                let t3 = t2 + k in
                let t4 = t3 + k in
                let t5 = t4 + k in
                let t6 = t5 + k in
                let t7 = t6 + k in
                for j = 0 to k - 1 do
                  Array.unsafe_set udata (ubase + j)
                    (Array.unsafe_get udata (ubase + j)
                    +. (xl0 *. Array.unsafe_get tdata (t0 + j))
                    +. (xl1 *. Array.unsafe_get tdata (t1 + j))
                    +. (xl2 *. Array.unsafe_get tdata (t2 + j))
                    +. (xl3 *. Array.unsafe_get tdata (t3 + j))
                    +. (xl4 *. Array.unsafe_get tdata (t4 + j))
                    +. (xl5 *. Array.unsafe_get tdata (t5 + j))
                    +. (xl6 *. Array.unsafe_get tdata (t6 + j))
                    +. (xl7 *. Array.unsafe_get tdata (t7 + j)))
                done
              end;
              l := !l + 8
            done;
            while !l < lhi do
              let xl = Array.unsafe_get xdata (xbase + !l) in
              if xl <> 0. then begin
                let tbase = !l * k in
                for j = 0 to k - 1 do
                  Array.unsafe_set udata (ubase + j)
                    (Array.unsafe_get udata (ubase + j)
                    +. (xl *. Array.unsafe_get tdata (tbase + j)))
                done
              end;
              incr l
            done
          done;
          llo := lhi
        done;
        ilo := ihi
      done);
  u

(* Sparse-aware kernels over a prebuilt {!Vec.Sparse} view.  They are
   deliberately serial: their work is O(nnz·n) or O(nnz²), below the
   flop count where pool dispatch pays, and the pricing hot loop that
   calls them runs one round at a time anyway.  Reduction orders match
   the dense kernels' (ascending index within each output element, the
   exactly-zero terms skipped — exact for finite data, see
   [sparse_support]), so on the same input the sparse and dense
   kernels agree bit-for-bit. *)

let matvec_sparse m (sx : Vec.Sparse.t) =
  if sx.Vec.Sparse.dim <> m.cols then
    invalid_arg "Mat.matvec_sparse: dimension mismatch";
  let data = m.data in
  let cols = m.cols in
  let idx = sx.Vec.Sparse.idx and v = sx.Vec.Sparse.value in
  let nnz = Array.length idx in
  let y = Array.make m.rows 0. in
  over_rows m.rows (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * cols in
        let acc = ref 0. in
        for k = 0 to nnz - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get data (base + Array.unsafe_get idx k)
               *. Array.unsafe_get v k)
        done;
        Array.unsafe_set y i !acc
      done);
  y

let quad_sparse m (sx : Vec.Sparse.t) =
  if m.rows <> m.cols then invalid_arg "Mat.quad_sparse: not square";
  if sx.Vec.Sparse.dim <> m.rows then
    invalid_arg "Mat.quad_sparse: dimension mismatch";
  let data = m.data in
  let n = m.rows in
  let idx = sx.Vec.Sparse.idx and v = sx.Vec.Sparse.value in
  let nnz = Array.length idx in
  (* O(nnz²): only the support × support block contributes.  Outer and
     inner indices ascend, matching both the serial [quad] (which
     row-skips on xᵢ = 0 and adds exact ±0 terms for the zero columns)
     and its pooled matvec-then-dot branch. *)
  let acc = ref 0. in
  for a = 0 to nnz - 1 do
    let base = n * Array.unsafe_get idx a in
    let rowacc = ref 0. in
    for b = 0 to nnz - 1 do
      rowacc :=
        !rowacc
        +. (Array.unsafe_get data (base + Array.unsafe_get idx b)
           *. Array.unsafe_get v b)
    done;
    acc := !acc +. (Array.unsafe_get v a *. !rowacc)
  done;
  !acc

let rank_one_rescale_sparse m ~beta ~b ~factor ~scale =
  if m.rows <> m.cols then invalid_arg "Mat.rank_one_rescale_sparse: not square";
  if b.Vec.Sparse.dim <> m.rows then
    invalid_arg "Mat.rank_one_rescale_sparse: dimension mismatch";
  let data = m.data in
  let n = m.rows in
  let idx = b.Vec.Sparse.idx and v = b.Vec.Sparse.value in
  let nnz = Array.length idx in
  (* In the scalar-scaled representation A = scale·M, the ellipsoid
     update A' = factor·(A + beta·b_A·b_Aᵀ) with b_A = √scale·b is
     M := M + beta·b·bᵀ (touching only the support × support block —
     O(nnz²) entries instead of the O(n²) a fused dense rescale pays)
     and the O(1) scalar multiply returned to the caller.  The update
     term keeps {!rank_one_rescale}'s beta·(bᵢ·bⱼ) association, so M
     stays bit-exactly symmetric. *)
  for a = 0 to nnz - 1 do
    let base = n * Array.unsafe_get idx a in
    let bi = Array.unsafe_get v a in
    for c = 0 to nnz - 1 do
      let j = Array.unsafe_get idx c in
      Array.unsafe_set data (base + j)
        (Array.unsafe_get data (base + j)
        +. (beta *. (bi *. Array.unsafe_get v c)))
    done
  done;
  factor *. scale

(* Shared Pᵀ·x body: each task owns the column range [lo, hi) of the
   output and walks the rows in ascending order, streaming the
   contiguous row segment [base+lo, base+hi) — row-major accumulation,
   never a column-stride walk.  Every output element y[j] therefore
   reduces over i ascending with the exact xᵢ = 0 skip, independent of
   scheduling, matching the historical serial [matvec_t] bit-for-bit. *)
let tmatvec_into ~gate y m x =
  let data = m.data in
  let cols = m.cols and rows = m.rows in
  over_range ~gate ~chunk:col_chunk cols (fun lo hi ->
      Array.fill y lo (hi - lo) 0.;
      for i = 0 to rows - 1 do
        let xi = Array.unsafe_get x i in
        if xi <> 0. then begin
          let base = i * cols in
          for j = lo to hi - 1 do
            Array.unsafe_set y j
              (Array.unsafe_get y j +. (Array.unsafe_get data (base + j) *. xi))
          done
        end
      done)

let matvec_t m x =
  if Array.length x <> m.rows then
    invalid_arg "Mat.matvec_t: dimension mismatch";
  let y = Array.make m.cols 0. in
  tmatvec_into ~gate:(m.cols >= parallel_threshold) y m x;
  y

let project_t ?into p y =
  if Array.length y <> p.rows then
    invalid_arg "Mat.project_t: dimension mismatch";
  let out =
    match into with
    | None -> Array.make p.cols 0.
    | Some o ->
        if Array.length o <> p.cols then
          invalid_arg "Mat.project_t: into dimension mismatch";
        if o == y then invalid_arg "Mat.project_t: into aliases the input";
        o
  in
  tmatvec_into ~gate:(p.cols >= parallel_threshold) out p y;
  out

let matmul_tt a b =
  if a.cols <> b.cols then invalid_arg "Mat.matmul_tt: dimension mismatch";
  let n = a.cols and q = b.rows in
  let c = zeros a.rows q in
  let adata = a.data and bdata = b.data and cdata = c.data in
  (* c[i,j] = ⟨row i of a, row j of b⟩: both operands stream
     contiguously, and each output element is one ascending-index dot
     product — the fan-out over rows of [a] never changes the bits.
     The gate fires on either dimension of [a]: tall-skinny batches
     (few rows, n ≥ 512 shared dimension) and tall sample matrices
     (rows ≥ 512) both carry enough flops. *)
  over_range
    ~gate:(a.rows >= parallel_threshold || a.cols >= parallel_threshold)
    ~chunk:(fan_chunk a.rows) a.rows
    (fun ilo ihi ->
      for i = ilo to ihi - 1 do
        let abase = i * n in
        let cbase = i * q in
        for j = 0 to q - 1 do
          let bbase = j * n in
          let acc = ref 0. in
          for l = 0 to n - 1 do
            acc :=
              !acc
              +. (Array.unsafe_get adata (abase + l)
                 *. Array.unsafe_get bdata (bbase + l))
          done;
          Array.unsafe_set cdata (cbase + j) !acc
        done
      done);
  c

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: dimension mismatch";
  let c = zeros a.rows b.cols in
  let q = a.cols and p = b.cols in
  let adata = a.data and bdata = b.data and cdata = c.data in
  (* i-k-j with the k loop cache-blocked: a tile of [row_chunk] rows of
     [b] is reused across every row of the chunk.  Each c[i,j] still
     accumulates its k terms in ascending order (tiles are visited
     ascending, k ascending within a tile), so the result is
     bit-identical to the unblocked serial loop at any worker count. *)
  over_rows a.rows (fun ilo ihi ->
      let klo = ref 0 in
      while !klo < q do
        let khi = min q (!klo + row_chunk) in
        for i = ilo to ihi - 1 do
          let abase = i * q in
          let cbase = i * p in
          for k = !klo to khi - 1 do
            let aik = Array.unsafe_get adata (abase + k) in
            if aik <> 0. then begin
              let bbase = k * p in
              for j = 0 to p - 1 do
                Array.unsafe_set cdata (cbase + j)
                  (Array.unsafe_get cdata (cbase + j)
                  +. (aik *. Array.unsafe_get bdata (bbase + j)))
              done
            end
          done
        done;
        klo := khi
      done);
  c

let outer u v =
  init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))

let rank_one_update m beta b =
  if m.rows <> m.cols || Array.length b <> m.rows then
    invalid_arg "Mat.rank_one_update: dimension mismatch";
  let n = m.rows in
  let data = m.data in
  over_rows n (fun lo hi ->
      for i = lo to hi - 1 do
        let bi = beta *. Array.unsafe_get b i in
        if bi <> 0. then begin
          let base = i * n in
          for j = 0 to n - 1 do
            Array.unsafe_set data (base + j)
              (Array.unsafe_get data (base + j) +. (bi *. Array.unsafe_get b j))
          done
        end
      done)

let rank_one_rescale ?into m ~beta ~b ~factor =
  if m.rows <> m.cols || Array.length b <> m.rows then
    invalid_arg "Mat.rank_one_rescale: dimension mismatch";
  let n = m.rows in
  let dst =
    match into with
    | None -> zeros n n
    | Some d ->
        if d.rows <> n || d.cols <> n then
          invalid_arg "Mat.rank_one_rescale: into dimension mismatch";
        if d.data == m.data then
          invalid_arg "Mat.rank_one_rescale: into aliases the input";
        d
  in
  let src = m.data and out = dst.data in
  (* The update term is beta·(bᵢ·bⱼ), associated so that float
     multiplication's exact commutativity makes the output exactly
     symmetric whenever [m] is — no symmetrization pass needed. *)
  over_rows n (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * n in
        let bi = Array.unsafe_get b i in
        if bi <> 0. then
          for j = 0 to n - 1 do
            Array.unsafe_set out (base + j)
              (factor
              *. (Array.unsafe_get src (base + j)
                 +. (beta *. (bi *. Array.unsafe_get b j))))
          done
        else
          for j = 0 to n - 1 do
            Array.unsafe_set out (base + j)
              (factor *. Array.unsafe_get src (base + j))
          done
      done);
  dst

let quad m x =
  if m.rows <> m.cols || Array.length x <> m.rows then
    invalid_arg "Mat.quad: dimension mismatch";
  let n = m.rows in
  let pooled =
    n >= parallel_threshold
    &&
    match Pool.get_default () with Some p -> Pool.size p > 1 | None -> false
  in
  if pooled then begin
    (* y = m·x over the pool, then a serial dot in index order with the
       same xᵢ = 0 skip as the serial branch below: per-element
       reduction orders match, so both branches are bit-identical for
       finite data (the skipped ±0 terms are exact — see
       [sparse_support]). *)
    let y = matvec m x in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let xi = Array.unsafe_get x i in
      if xi <> 0. then acc := !acc +. (xi *. Array.unsafe_get y i)
    done;
    !acc
  end
  else begin
    let data = m.data in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let xi = Array.unsafe_get x i in
      if xi <> 0. then begin
        let base = i * n in
        let rowacc = ref 0. in
        for j = 0 to n - 1 do
          rowacc :=
            !rowacc
            +. (Array.unsafe_get data (base + j) *. Array.unsafe_get x j)
        done;
        acc := !acc +. (xi *. !rowacc)
      end
    done;
    !acc
  end

let symmetrize_inplace m =
  if m.rows <> m.cols then invalid_arg "Mat.symmetrize_inplace: not square";
  let n = m.rows in
  let data = m.data in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ij = (i * n) + j and ji = (j * n) + i in
      let avg =
        0.5 *. (Array.unsafe_get data ij +. Array.unsafe_get data ji)
      in
      Array.unsafe_set data ij avg;
      Array.unsafe_set data ji avg
    done
  done

let is_symmetric ?(tol = 1e-9) m =
  m.rows = m.cols
  &&
  let n = m.rows in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if abs_float (m.data.((i * n) + j) -. m.data.((j * n) + i)) > tol then
        ok := false
    done
  done;
  !ok

let max_abs m =
  Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0. m.data

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for k = 0 to Array.length a.data - 1 do
    if abs_float (a.data.(k) -. b.data.(k)) > tol then ok := false
  done;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "|@[<hov>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf "@ ";
      Format.fprintf ppf "%10.4g" (get m i j)
    done;
    Format.fprintf ppf "@]|"
  done;
  Format.fprintf ppf "@]"
