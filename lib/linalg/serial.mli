(** Little-endian binary serialization helpers.

    Shared by the binary (v3) ellipsoid/mechanism snapshots in
    [Dm_market] and the journal codec in [Dm_store]: writers append to
    a [Buffer.t], the reader is a mutable cursor over an immutable
    string.  Floats travel as their IEEE-754 bit patterns
    ([Int64.bits_of_float]), so every value — including NaN payloads
    and signed zeros — round-trips exactly. *)

val add_u8 : Buffer.t -> int -> unit
(** Append one byte.  Raises [Invalid_argument] outside [0, 255]. *)

val add_u32 : Buffer.t -> int -> unit
(** Append a 32-bit little-endian unsigned integer.  Raises
    [Invalid_argument] outside [0, 2³²). *)

val add_u64 : Buffer.t -> int -> unit
(** Append a 64-bit little-endian integer.  Raises [Invalid_argument]
    on negative input (the on-disk formats only store counts). *)

val add_f64 : Buffer.t -> float -> unit
(** Append the 8-byte IEEE-754 bit pattern of a float. *)

val add_f64s : Buffer.t -> float array -> unit
(** Append a [u32] length followed by each element as [add_f64]. *)

type reader = private { src : string; mutable pos : int }
(** A cursor into [src]; every [take_*] advances [pos]. *)

exception Short of int
(** Raised by the [take_*] readers when fewer bytes remain than the
    value needs; the payload is the cursor position where data ran
    out.  Callers that parse untrusted bytes catch it and map to a
    [result] carrying the offset. *)

val reader : ?pos:int -> string -> reader
(** Cursor over [src] starting at [pos] (default 0). *)

val remaining : reader -> int
(** Bytes left between the cursor and the end of [src]. *)

val take_u8 : reader -> int

val take_u32 : reader -> int

val take_u64 : reader -> int
(** Raises [Short] (positioned at the field start) when the stored
    value does not fit a non-negative OCaml [int] — the formats never
    write such values, so an oversized count is corruption. *)

val take_f64 : reader -> float

val take_f64s : reader -> float array
(** Inverse of {!add_f64s}; validates the length prefix against
    [remaining] before allocating. *)

val take_bytes : reader -> int -> string
(** The next [len] raw bytes.  Raises [Invalid_argument] on negative
    [len]. *)

val expect : reader -> string -> bool
(** Consume [String.length magic] bytes and report whether they equal
    [magic]; returns [false] (without raising) when too few remain. *)
