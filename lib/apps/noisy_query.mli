(** App 1: pricing noisy linear queries over personal data (Sec. V-A).

    End-to-end wiring of the paper's first evaluation: a MovieLens-
    style owner corpus, differential-privacy leakage quantification,
    tanh compensation contracts, compensation-aggregation features
    (‖x_t‖ = 1, so S = 1), reserve price [q_t = Σᵢ x_{t,i}], hidden
    weights with ‖θ*‖ = √(2n), initial knowledge ball of radius
    R = 2√n, uncertainty δ = 0.01 with σ = δ/(√(2 log 2)·log T), and
    threshold ε = log²T/T (n = 1) or n²/T.

    The weight vector is drawn like the query parameters but with
    non-negative components before scaling: the features are
    non-negative (aggregated compensations), so a sign-symmetric θ*
    would put the market value below the reserve almost always,
    contradicting the paper's stated guarantee that [v_t ≥ q_t] with
    high probability (see DESIGN.md §3). *)

type t = {
  dim : int;
  rounds : int;
  owners : int;
  model : Dm_market.Model.t;
  radius : float;  (** R = 2√n *)
  epsilon : float;
  delta : float;  (** the evaluation's fixed buffer, 0.01 *)
  sigma : float;  (** δ/(√(2 log 2)·log T) *)
  corpus : Dm_synth.Movielens.corpus;
  stream : (Dm_linalg.Vec.t * float) array Lazy.t;
      (** materialized (feature, reserve) rounds, shared across the
          four variants and the baseline so every policy faces the
          identical query sequence *)
  noise_table : float array Lazy.t;  (** the shared δ_t draws *)
}

val make :
  ?owners:int ->
  ?delta:float ->
  ?param_dist:Dm_synth.Linear_query.param_dist ->
  seed:int ->
  dim:int ->
  rounds:int ->
  unit ->
  t
(** Defaults: 500 owners, δ = 0.01, mixed query-parameter
    distribution. *)

val workload : t -> (int -> Dm_linalg.Vec.t * float)
(** The round-indexed stream of (normalized feature vector, reserve
    price).  Deterministic given the setup seed; query draw, leakage,
    compensation, aggregation and normalization all happen here. *)

val noise : t -> (int -> float)
(** The per-round uncertainty δ_t ~ N(0, σ). *)

val effective_epsilon : t -> Dm_market.Mechanism.variant -> float
(** The exploration threshold {!mechanism} actually runs with:
    [max ε 2.5nδ].  The floor exists because δ-buffered cuts stall
    once the ellipsoid width falls below 2nδ (EXPERIMENTS.md) — with
    the evaluation section's ε = n²/T the uncertainty variants would
    otherwise explore forever at a stuck width.  Equal to the setup's
    ε whenever the floor does not bind (in particular for the δ = 0
    variants). *)

val epsilon_floored : t -> Dm_market.Mechanism.variant -> bool
(** Whether the 2.5nδ stall floor overrides the setup's ε for this
    variant — drivers report it so the substitution is never
    silent. *)

val mechanism : t -> Dm_market.Mechanism.variant -> Dm_market.Mechanism.t
(** A fresh mechanism over the ball R = 2√n with
    [{!effective_epsilon} t variant] as the exploration threshold. *)

val run :
  ?record_rounds:bool ->
  ?checkpoints:int array ->
  t ->
  Dm_market.Mechanism.variant ->
  Dm_market.Broker.result
(** Simulate the full horizon for one algorithm variant. *)

val run_baseline :
  ?checkpoints:int array -> t -> Dm_market.Broker.result
(** The risk-averse baseline (posts the reserve every round). *)
