module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Subgaussian = Dm_prob.Subgaussian
module Dp = Dm_privacy.Dp
module Comp = Dm_privacy.Compensation
module Movielens = Dm_synth.Movielens
module Linear_query = Dm_synth.Linear_query
module Model = Dm_market.Model
module Mechanism = Dm_market.Mechanism
module Ellipsoid = Dm_market.Ellipsoid
module Feature = Dm_market.Feature
module Broker = Dm_market.Broker

type t = {
  dim : int;
  rounds : int;
  owners : int;
  model : Model.t;
  radius : float;
  epsilon : float;
  delta : float;
  sigma : float;
  corpus : Movielens.corpus;
  stream : (Vec.t * float) array Lazy.t;
  noise_table : float array Lazy.t;
}

let make ?(owners = 500) ?(delta = 0.01) ?(param_dist = Linear_query.Mixed)
    ~seed ~dim ~rounds () =
  if dim < 1 then invalid_arg "Noisy_query.make: dim must be >= 1";
  if rounds < 2 then invalid_arg "Noisy_query.make: need at least two rounds";
  if owners < dim then
    invalid_arg "Noisy_query.make: need at least dim owners to aggregate";
  let root = Rng.create seed in
  let corpus_rng = Rng.split root in
  let theta_rng = Rng.split root in
  let query_rng = Rng.split root in
  let noise_rng = Rng.split root in
  let corpus = Movielens.generate corpus_rng ~owners in
  (* Hidden weights scaled to ‖θ*‖ = √(2n), as in Section V-A.  The
     direction is the all-ones vector (whose weight profile prices a
     query at a multiple of its total compensation — cost-plus
     pricing) tilted by a non-negative random markup profile.  This
     realizes the paper's stated guarantee that the market value
     exceeds the reserve with high probability: a sign-symmetric draw
     over non-negative compensation features would violate it almost
     surely (DESIGN.md §3). *)
  let theta =
    let markup = Vec.map abs_float (Dist.normal_vec theta_rng ~dim) in
    let tilted = Vec.init dim (fun i -> 1. +. (3. *. markup.(i))) in
    Vec.scale (sqrt (2. *. float_of_int dim)) (Vec.normalize tilted)
  in
  let model = Model.linear ~theta in
  let radius = 2. *. sqrt (float_of_int dim) in
  let epsilon =
    let tf = float_of_int rounds in
    if dim = 1 then log tf /. log 2. /. tf
    else float_of_int (dim * dim) /. tf
  in
  let sigma = Subgaussian.sigma_for_buffer ~delta ~horizon:rounds () in
  let contracts = Movielens.contracts corpus in
  let data_ranges = Movielens.data_ranges corpus in
  let stream =
    lazy
      (Array.init rounds (fun _ ->
           let query = Linear_query.draw query_rng ~dist:param_dist ~owners in
           let leakages = Dp.leakage query ~data_ranges in
           let compensations = Comp.per_owner ~contracts ~leakages in
           Feature.of_compensations ~dim compensations))
  in
  let noise_table =
    lazy (Array.init rounds (fun _ -> Dist.normal noise_rng ~mean:0. ~std:sigma))
  in
  {
    dim;
    rounds;
    owners;
    model;
    radius;
    epsilon;
    delta;
    sigma;
    corpus;
    stream;
    noise_table;
  }

let workload t =
  let stream = Lazy.force t.stream in
  fun i -> stream.(i)

let noise t =
  let table = Lazy.force t.noise_table in
  fun i -> table.(i)

(* Buffered cuts stall once the width falls below 2nδ (the cut
   position α drops under −1/n and every update is a no-op), so with
   the evaluation section's ε = n²/T < 2nδ the uncertainty variants
   would explore forever at a stuck width.  Lemmas 4–7 assume
   ε ≥ 4nδ; flooring at 2.5nδ — safely above the stall bound, below
   the analysis's conservative 4nδ — reproduces the paper's reported
   mild uncertainty penalty (see EXPERIMENTS.md).  A no-op for the
   δ = 0 variants. *)
let effective_epsilon t variant =
  Float.max t.epsilon
    (2.5 *. float_of_int t.dim *. variant.Mechanism.delta)

let epsilon_floored t variant = effective_epsilon t variant > t.epsilon

let mechanism t variant =
  let epsilon = effective_epsilon t variant in
  (* In one dimension the paper starts from the interval [0, 2] (its
     Sec. V-A walkthrough: the first exploratory price is 1, exactly
     the reserve, so the reserve constraint has no effect at n = 1 —
     visible in Fig. 4(a)).  The general case uses the origin-centred
     ball of radius R = 2√n. *)
  let initial =
    if t.dim = 1 then
      let half = t.radius /. 2. in
      Ellipsoid.make
        ~center:[| half |]
        ~shape:(Dm_linalg.Mat.scaled_identity 1 (half *. half))
    else Ellipsoid.ball ~dim:t.dim ~radius:t.radius
  in
  Mechanism.create (Mechanism.config ~variant ~epsilon ()) initial

let run ?record_rounds ?checkpoints t variant =
  Broker.run ?record_rounds ?checkpoints
    ~policy:(Broker.Ellipsoid_pricing (mechanism t variant))
    ~model:t.model ~noise:(noise t) ~workload:(workload t) ~rounds:t.rounds ()

let run_baseline ?checkpoints t =
  Broker.run ?checkpoints ~policy:Broker.Risk_averse ~model:t.model
    ~noise:(noise t) ~workload:(workload t) ~rounds:t.rounds ()
