let posted ?reserve ~market_value ~price () =
  match reserve with
  | Some q when q > market_value -> 0.
  | Some _ | None ->
      if price <= market_value then market_value -. price else market_value

let skipped ~reserve ~market_value =
  if reserve > market_value then 0. else market_value

let revenue ~market_value ~price = if price <= market_value then price else 0.

let projection_term ~err ~rounds =
  if not (err >= 0.) || err = infinity then
    invalid_arg "Regret.projection_term: error bound must be finite and non-negative";
  if rounds < 0 then invalid_arg "Regret.projection_term: negative rounds";
  err *. float_of_int rounds

let single_round_curve ~reserve ~market_value ~prices =
  Dm_linalg.Vec.map
    (fun p -> posted ~reserve ~market_value ~price:p ())
    prices
