module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Chol = Dm_linalg.Chol
module Eigen = Dm_linalg.Eigen
module Serial = Dm_linalg.Serial

type t = {
  dim : int;
  center : Vec.t;
  shape : Mat.t;
  scale : float;
  mutable log_vol : float;
  mutable cuts_since_sync : int;
}

(* [log_vol] caches ½·log det A; NaN means "not yet computed" so that
   [make] (and deserialization) stay O(n²) — the O(n³) Cholesky runs
   lazily on the first [log_volume_factor] read.  Each cut advances the
   cache by a closed-form O(1) delta; after [resync_interval] deltas a
   read triggers a full recomputation to bound float drift.

   The true shape is A = scale·M with M in [shape].  Dense cut paths
   fold the Löwner–John [factor] into M and leave [scale] untouched, so
   any ellipsoid that never takes the sparse fast path has
   [scale = 1.] exactly and every formula below degenerates to the
   plain dense arithmetic bit-for-bit ([1.0 *. x], [x /. 1.0] and
   [sqrt 1.0 = 1.0] are all IEEE-exact).  The sparse fast path instead
   multiplies [scale] in O(1) and rank-one-updates only M's
   support × support block; [fold_scale] periodically folds the scalar
   back into M to bound its drift and dynamic range. *)
let resync_interval = 1000

(* The sparse path folds [scale] back into M (an O(n²) pass, amortized
   over [resync_interval] cuts by riding the same counter as the
   volume-cache resync) whenever the scalar leaves this range or the
   cut count crosses a resync boundary. *)
let scale_floor = 1e-9

let scale_ceil = 1e9

(* Below this dimension [bounds] skips the sparse-view attempt: the
   nonzero scan plus gather costs more than the O(n²) quadratic form
   it would save (measured: the ~20-dim fig5c dense-support round
   slows ~60% with the scan, while at n ≥ 64 the sparse form wins by
   orders of magnitude).  [cut_below]'s mutate path is not gated — a
   cut is O(n²) either way, so the scan there is noise. *)
let sparse_bounds_floor = 64

let make ~center ~shape =
  let n = Vec.dim center in
  let r, c = Mat.dims shape in
  if r <> n || c <> n then invalid_arg "Ellipsoid.make: dimension mismatch";
  if n < 1 then invalid_arg "Ellipsoid.make: empty dimension";
  if not (Mat.is_symmetric ~tol:(1e-6 *. (1. +. Mat.max_abs shape)) shape) then
    invalid_arg "Ellipsoid.make: shape not symmetric";
  let ok_diag = ref true in
  for i = 0 to n - 1 do
    if Mat.get shape i i <= 0. then ok_diag := false
  done;
  if not !ok_diag then
    invalid_arg "Ellipsoid.make: shape has a non-positive diagonal";
  { dim = n; center; shape; scale = 1.; log_vol = Float.nan; cuts_since_sync = 0 }

let ball ~dim ~radius =
  if radius <= 0. then invalid_arg "Ellipsoid.ball: radius must be positive";
  let t =
    make ~center:(Vec.zeros dim)
      ~shape:(Mat.scaled_identity dim (radius *. radius))
  in
  (* ½·log det(r²·I) = dim·log r, exactly, in O(n). *)
  t.log_vol <- float_of_int dim *. log radius;
  t

let of_box ~lo ~hi =
  let n = Vec.dim lo in
  if Vec.dim hi <> n then invalid_arg "Ellipsoid.of_box: dimension mismatch";
  let r2 = ref 0. in
  for i = 0 to n - 1 do
    if lo.(i) > hi.(i) then invalid_arg "Ellipsoid.of_box: empty box";
    r2 := !r2 +. Float.max (lo.(i) *. lo.(i)) (hi.(i) *. hi.(i))
  done;
  if !r2 <= 0. then invalid_arg "Ellipsoid.of_box: degenerate box";
  ball ~dim:n ~radius:(sqrt !r2)

let dim t = t.dim

let scale t = t.scale

type bounds = { lower : float; upper : float; mid : float; half_width : float }

let bounds t ~x =
  if Vec.dim x <> t.dim then invalid_arg "Ellipsoid.bounds: dimension mismatch";
  (* xᵀAx = scale·(xᵀMx); the gathered quadratic form is bit-identical
     to the dense one, so sparse streams get the O(nnz²) kernel with no
     observable difference. *)
  let qm =
    match
      if t.dim >= sparse_bounds_floor then Vec.Sparse.of_dense x else None
    with
    | Some sx -> Mat.quad_sparse t.shape sx
    | None -> Mat.quad t.shape x
  in
  let q = t.scale *. qm in
  let half_width = if q <= 0. then 0. else sqrt q in
  let mid = Vec.dot x t.center in
  { lower = mid -. half_width; upper = mid +. half_width; mid; half_width }

let width t ~x = 2. *. (bounds t ~x).half_width

let contains ?(slack = 1e-9) t point =
  if Vec.dim point <> t.dim then
    invalid_arg "Ellipsoid.contains: dimension mismatch";
  let d = Vec.sub point t.center in
  match Chol.solve t.shape d with
  | y -> Vec.dot d y /. t.scale <= 1. +. slack
  | exception Chol.Not_positive_definite _ -> false

type cut_result = Cut of t | Too_shallow | Empty

(* Deep/central/shallow cut keeping {θ | xᵀθ ≤ price}, following
   Grötschel–Lovász–Schrijver (the paper's Lines 14–21).  Valid for
   α ∈ (−1/n, 1); α ≤ −1/n cannot shrink the ellipsoid and α ≥ 1
   leaves (at most) a single point.

   The shape update A' = factor·(A − β·b·bᵀ) runs as one fused
   streaming pass ({!Mat.rank_one_rescale}), optionally into a
   caller-supplied buffer.  Because b = A·x/√(xᵀAx) satisfies
   bᵀA⁻¹b = 1, the determinant has the closed form
   det A' = factorⁿ·(1−β)·det A, giving an O(1) delta for the cached
   ½·log det (n = 1 contributes log((1−α)/2)).

   In the scalar-scaled representation A = s·M the same update reads
   A' = (factor·s)·(M − β·b̃·b̃ᵀ) with b̃ = M·x/√(xᵀMx) = b/√s: the
   factor multiplies the scalar in O(1) and the rank-one part touches
   only the support × support block of b̃ — the sparse fast path below,
   taken when the caller permits in-place mutation ([mutate]) and the
   cut direction is sparse enough to pay. *)
let cut_below_dense ?into ?b_into ?center_into t ~x ~price =
  let { mid; half_width; _ } = bounds t ~x in
  if half_width <= 0. then Too_shallow
  else begin
    let n = float_of_int t.dim in
    let alpha = (mid -. price) /. half_width in
    if alpha >= 1. then Empty
    else if alpha <= -1. /. n then Too_shallow
    else begin
      (* b = A·x / √(xᵀAx) = scale·(M·x) / √(xᵀAx).  The scratch
         buffer, when given, holds a transient the caller may recycle
         every cut: [b] is consumed by the rank-one update below and
         never retained by the returned ellipsoid. *)
      let b =
        match b_into with
        | None -> Vec.scale (t.scale /. half_width) (Mat.matvec t.shape x)
        | Some b ->
            if b == x then
              invalid_arg "Ellipsoid.cut_below: b_into aliases the direction";
            ignore (Mat.matvec ~into:b t.shape x);
            Vec.scale_inplace (t.scale /. half_width) b;
            b
      in
      (* The new center, by contrast, {e is} retained: [center_into]
         transfers ownership of the buffer to the returned ellipsoid,
         so the caller must ping-pong two buffers (and stop recycling
         any that escaped). *)
      let center =
        match center_into with
        | None -> Vec.copy t.center
        | Some c ->
            if Array.length c <> t.dim then
              invalid_arg "Ellipsoid.cut_below: center_into dimension mismatch";
            if c == t.center then
              invalid_arg "Ellipsoid.cut_below: center_into aliases the center";
            if c == b then
              invalid_arg "Ellipsoid.cut_below: center_into aliases b_into";
            Array.blit t.center 0 c 0 t.dim;
            c
      in
      Vec.axpy (-.(1. +. (n *. alpha)) /. (n +. 1.)) b center;
      let shape, dlog =
        if t.dim = 1 then begin
          (* Interval arithmetic: the kept interval has half-width
             r·(1−α)/2, so A scales by ((1−α)/2)². *)
          let f = (1. -. alpha) /. 2. in
          (Mat.rank_one_rescale ?into t.shape ~beta:0. ~b ~factor:(f *. f), log f)
        end
        else begin
          let beta =
            2. *. (1. +. (n *. alpha)) /. ((n +. 1.) *. (1. +. alpha))
          in
          let factor = n *. n *. (1. -. (alpha *. alpha)) /. ((n *. n) -. 1.) in
          (* Folding factor·(A − β·b·bᵀ) into M at fixed scale divides
             the rank-one coefficient by scale: M' = factor·(M − (β/s)·b·bᵀ). *)
          ( Mat.rank_one_rescale ?into t.shape
              ~beta:(-.(beta /. t.scale))
              ~b ~factor,
            0.5 *. ((n *. log factor) +. log1p (-.beta)) )
        end
      in
      Cut
        {
          t with
          center;
          shape;
          log_vol = t.log_vol +. dlog;
          cuts_since_sync = t.cuts_since_sync + 1;
        }
    end
  end

let cut_below_sparse t ~sx ~price =
  let m = Mat.matvec_sparse t.shape sx in
  (* xᵀMx as matvec-then-dot — the same reduction order as the pooled
     quadratic form, O(nnz) extra on top of the matvec we need anyway. *)
  let qm = Vec.Sparse.dot_dense sx m in
  let q = t.scale *. qm in
  if q <= 0. then Too_shallow
  else begin
    let half_width = sqrt q in
    let mid = Vec.Sparse.dot_dense sx t.center in
    let n = float_of_int t.dim in
    let alpha = (mid -. price) /. half_width in
    if alpha >= 1. then Empty
    else if alpha <= -1. /. n then Too_shallow
    else begin
      let beta = 2. *. (1. +. (n *. alpha)) /. ((n +. 1.) *. (1. +. alpha)) in
      let factor = n *. n *. (1. -. (alpha *. alpha)) /. ((n *. n) -. 1.) in
      (* b̃ = M·x / √(xᵀMx); the A-space direction is b = √scale·b̃. *)
      let btilde = Vec.scale (1. /. sqrt qm) m in
      let center = Vec.copy t.center in
      Vec.axpy
        (-.(1. +. (n *. alpha)) /. (n +. 1.) *. sqrt t.scale)
        btilde center;
      let sb = Vec.Sparse.gather btilde in
      let scale' =
        Mat.rank_one_rescale_sparse t.shape ~beta:(-.beta) ~b:sb ~factor
          ~scale:t.scale
      in
      let dlog = 0.5 *. ((n *. log factor) +. log1p (-.beta)) in
      let cuts = t.cuts_since_sync + 1 in
      let scale' =
        if
          scale' < scale_floor || scale' > scale_ceil
          || cuts mod resync_interval = 0
        then begin
          Mat.scale_inplace scale' t.shape;
          1.
        end
        else scale'
      in
      Cut
        {
          t with
          center;
          scale = scale';
          log_vol = t.log_vol +. dlog;
          cuts_since_sync = cuts;
        }
    end
  end

let cut_below ?into ?b_into ?center_into ?(mutate = false) t ~x ~price =
  if Vec.dim x <> t.dim then
    invalid_arg "Ellipsoid.cut_below: dimension mismatch";
  match if mutate && t.dim > 1 then Vec.Sparse.of_dense x else None with
  | Some sx -> cut_below_sparse t ~sx ~price
  | None -> cut_below_dense ?into ?b_into ?center_into t ~x ~price

let cut_above ?into ?b_into ?center_into ?neg_into ?mutate t ~x ~price =
  (* [-1. *. xᵢ] is exactly [Vec.neg], so the scratch path posts the
     same direction bits as the allocating one. *)
  let nx =
    match neg_into with
    | None -> Vec.neg x
    | Some nx ->
        if Array.length nx <> Array.length x then
          invalid_arg "Ellipsoid.cut_above: neg_into dimension mismatch";
        if nx == x then
          invalid_arg "Ellipsoid.cut_above: neg_into aliases the direction";
        for i = 0 to Array.length x - 1 do
          Array.unsafe_set nx i (-1. *. Array.unsafe_get x i)
        done;
        nx
  in
  cut_below ?into ?b_into ?center_into ?mutate t ~x:nx ~price:(-.price)

let apply t = function Cut t' -> t' | Too_shallow | Empty -> t

let alpha t ~x ~price =
  let { mid; half_width; _ } = bounds t ~x in
  if half_width <= 0. then invalid_arg "Ellipsoid.alpha: degenerate direction";
  (mid -. price) /. half_width

(* ½·log det A = ½·log det M + (n/2)·log scale; the scale term is only
   added when scale ≠ 1 so pure-dense histories reproduce the old
   bits exactly. *)
let half_log_det t =
  let lv = 0.5 *. Chol.log_det t.shape in
  if t.scale = 1. then lv
  else lv +. (0.5 *. float_of_int t.dim *. log t.scale)

let log_volume_factor t =
  if Float.is_nan t.log_vol || t.cuts_since_sync >= resync_interval then begin
    t.log_vol <- half_log_det t;
    t.cuts_since_sync <- 0
  end;
  t.log_vol

let volume_drift t =
  if Float.is_nan t.log_vol then 0.
  else abs_float (t.log_vol -. half_log_det t)

let axis_widths t =
  Vec.map
    (fun l -> sqrt (Float.max 0. (t.scale *. l)))
    (Eigen.eigenvalues t.shape)

let serialize t =
  let buf = Buffer.create (64 + (t.dim * (t.dim + 1) * 24)) in
  (* Scale-1 ellipsoids keep the v1 format byte-for-byte; a pending
     scalar upgrades the snapshot to v2 with one extra scale line. *)
  let v2 = t.scale <> 1. in
  Buffer.add_string buf (if v2 then "ellipsoid/2\n" else "ellipsoid/1\n");
  Buffer.add_string buf (string_of_int t.dim);
  Buffer.add_char buf '\n';
  if v2 then begin
    (* %h prints an exact hexadecimal literal that float_of_string
       parses back bit-for-bit. *)
    Buffer.add_string buf (Printf.sprintf "%h" t.scale);
    Buffer.add_char buf '\n'
  end;
  let add_float x = Buffer.add_string buf (Printf.sprintf "%h " x) in
  Array.iter add_float t.center;
  Buffer.add_char buf '\n';
  (* The flat row-major backing array streams rows straight into the
     buffer — no O(n²) to_arrays/concat intermediates. *)
  Array.iter add_float t.shape.Mat.data;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let deserialize text =
  let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let floats line =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
    |> List.map float_of_string_opt
  in
  (* Error messages carry the 1-based line number and, for float rows,
     the 1-based field index of the first offender, so a corrupt
     snapshot report names exactly where the damage is. *)
  let parse_row ~line_no ~what line =
    let parts = floats line in
    match
      List.find_index Option.is_none parts
    with
    | Some i ->
        fail "line %d (%s): malformed float literal at field %d" line_no what
          (i + 1)
    | None ->
        (* NaN slips through [make]'s symmetry and positive-diagonal
           checks (every NaN comparison is false), so finiteness must
           be rejected here. *)
        let a = Array.of_list (List.map Option.get parts) in
        (match Array.find_index (fun v -> not (Float.is_finite v)) a with
        | Some i ->
            fail "line %d (%s): non-finite entry at field %d" line_no what
              (i + 1)
        | None -> Ok a)
  in
  let build ~dim ~scale ~center:(center_no, center_line)
      ~shape:(shape_no, shape_line) =
    match parse_row ~line_no:center_no ~what:"center" center_line with
    | Error _ as e -> e
    | Ok center -> (
        match parse_row ~line_no:shape_no ~what:"shape" shape_line with
        | Error _ as e -> e
        | Ok flat ->
            if Array.length center <> dim then
              fail "line %d (center): %d entries where the dimension says %d"
                center_no (Array.length center) dim
            else if Array.length flat <> dim * dim then
              fail "line %d (shape): %d entries where the dimension says %d"
                shape_no (Array.length flat) (dim * dim)
            else
              let shape = Mat.init dim dim (fun i j -> flat.((i * dim) + j)) in
              (match make ~center ~shape with
              | e -> Ok { e with scale }
              | exception Invalid_argument msg ->
                  fail "line %d (shape): %s" shape_no msg))
  in
  match String.split_on_char '\n' text with
  | header :: dim_line :: rest -> (
      let version =
        match String.trim header with
        | "ellipsoid/1" -> Some 1
        | "ellipsoid/2" -> Some 2
        | _ -> None
      in
      match version with
      | None -> fail "line 1: unknown header (want ellipsoid/1 or ellipsoid/2)"
      | Some version -> (
          match int_of_string_opt (String.trim dim_line) with
          | None -> fail "line 2: malformed dimension"
          | Some dim when dim < 1 -> fail "line 2: non-positive dimension"
          | Some dim -> (
              match (version, rest) with
              | 1, center_line :: shape_line :: _ ->
                  build ~dim ~scale:1. ~center:(3, center_line)
                    ~shape:(4, shape_line)
              | 2, scale_line :: center_line :: shape_line :: _ -> (
                  match float_of_string_opt (String.trim scale_line) with
                  | Some s when Float.is_finite s && s > 0. ->
                      build ~dim ~scale:s ~center:(4, center_line)
                        ~shape:(5, shape_line)
                  | Some _ -> fail "line 3: non-finite or non-positive scale"
                  | None -> fail "line 3: malformed scale")
              | 1, _ -> fail "truncated snapshot (4 lines expected)"
              | _ -> fail "truncated snapshot (5 lines expected)")))
  | _ -> fail "truncated snapshot (header and dimension lines expected)"

let binary_magic = "dm-ell/3"

let serialize_binary t =
  let buf = Buffer.create (40 + (8 * t.dim * (t.dim + 1))) in
  Buffer.add_string buf binary_magic;
  Serial.add_u32 buf t.dim;
  Serial.add_f64 buf t.scale;
  Serial.add_u32 buf t.cuts_since_sync;
  (* The raw bit pattern, so the NaN "cache unset" sentinel survives. *)
  Serial.add_f64 buf t.log_vol;
  Array.iter (Serial.add_f64 buf) t.center;
  Array.iter (Serial.add_f64 buf) t.shape.Mat.data;
  Buffer.contents buf

(* A u32 dimension larger than this would overflow [dim * dim * 8]
   allocations; no real snapshot comes close. *)
let max_binary_dim = 1 lsl 20

let deserialize_binary ?(pos = 0) s =
  let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let r = Serial.reader ~pos s in
  try
    if not (Serial.expect r binary_magic) then
      fail "byte %d: bad magic (want %s)" pos binary_magic
    else
      let at = r.Serial.pos in
      let dim = Serial.take_u32 r in
      if dim < 1 then fail "byte %d: non-positive dimension" at
      else if dim > max_binary_dim then fail "byte %d: implausible dimension" at
      else
        let at = r.Serial.pos in
        let scale = Serial.take_f64 r in
        if not (Float.is_finite scale && scale > 0.) then
          fail "byte %d: non-finite or non-positive scale" at
        else
          let cuts_since_sync = Serial.take_u32 r in
          let at = r.Serial.pos in
          let log_vol = Serial.take_f64 r in
          if Float.is_finite log_vol || Float.is_nan log_vol then
            let read_row ~what n =
              let off = r.Serial.pos in
              let a = Array.init n (fun _ -> Serial.take_f64 r) in
              match Array.find_index (fun v -> not (Float.is_finite v)) a with
              | Some i ->
                  Error
                    (Printf.sprintf "byte %d: non-finite %s entry at index %d"
                       (off + (8 * i)) what i)
              | None -> Ok a
            in
            match read_row ~what:"center" dim with
            | Error _ as e -> e
            | Ok center -> (
                let shape_off = r.Serial.pos in
                match read_row ~what:"shape" (dim * dim) with
                | Error _ as e -> e
                | Ok flat -> (
                    let shape =
                      Mat.init dim dim (fun i j -> flat.((i * dim) + j))
                    in
                    match make ~center ~shape with
                    | e ->
                        e.log_vol <- log_vol;
                        e.cuts_since_sync <- cuts_since_sync;
                        Ok { e with scale }
                    | exception Invalid_argument msg ->
                        fail "byte %d (shape): %s" shape_off msg))
          else fail "byte %d: infinite log-volume cache" at
  with Serial.Short off -> fail "truncated at byte %d" off

let pp ppf t =
  if t.scale = 1. then
    Format.fprintf ppf "@[<v>ellipsoid dim=%d@,center=%a@,shape=@,%a@]" t.dim
      Vec.pp t.center Mat.pp t.shape
  else
    Format.fprintf ppf
      "@[<v>ellipsoid dim=%d@,center=%a@,scale=%.6g@,shape=@,%a@]" t.dim
      Vec.pp t.center t.scale Mat.pp t.shape
