(** The ellipsoid-based posted-price mechanisms (Algorithms 1, 1°, 2, 2°
    — the paper writes 1* and 2* for the reserve-free variants).

    One implementation covers the paper's four variants, selected by a
    {!variant} value:

    - [pure]                          — Algorithm 1* ("the pure version")
    - [with_reserve]                  — Algorithm 1  ("with reserve price")
    - [with_uncertainty δ]            — Algorithm 2* ("with uncertainty")
    - [with_reserve_and_uncertainty δ]— Algorithm 2  ("with reserve price
                                        and uncertainty")

    All prices here live in *index space* (the scalar [φ(x)ᵀθ]); the
    {!Broker} maps them through the model link.  Per round the
    mechanism

    + computes the market-value bounds [p̲, p̄] from the ellipsoid
      (Lines 5–7);
    + skips the round when the reserve exceeds every possible market
      value, [q ≥ p̄ + δ] (Lines 8–10) — a certain no-deal;
    + posts the exploratory price [max(q, (p̲+p̄)/2)] when the width
      [p̄ − p̲] exceeds the threshold ε, otherwise the conservative
      price [max(q, p̲ − δ)] (Lines 12–13 / 26–27);
    + on exploratory feedback, cuts the ellipsoid at the *effective*
      price [p+δ] (rejection, keep below) or [p−δ] (acceptance, keep
      above), with the α-range guards of Lines 16 / 22.  Conservative
      prices never cut (Line 28) — allowing them to do so admits the
      Lemma-8 adversary with Ω(T) regret, which the
      [allow_conservative_cuts] switch exists to demonstrate.

    The per-round cost is two mat-vecs and a rank-one update, O(n²)
    time, and the state is one n×n matrix plus one n-vector, O(n²)
    space (Section III-C1). *)

type variant = { use_reserve : bool; delta : float }

val pure : variant

val with_reserve : variant

val with_uncertainty : delta:float -> variant
(** Requires [delta ≥ 0] and finite (NaN and infinity are rejected). *)

val with_reserve_and_uncertainty : delta:float -> variant

val variant_name : variant -> string
(** The evaluation-section names: "pure version", "with reserve
    price", … *)

type config = {
  variant : variant;
  epsilon : float;  (** exploration threshold, finite and > 0 *)
  allow_conservative_cuts : bool;
      (** Lemma-8 footgun; [false] in every paper variant *)
  sparse_cuts : bool;
      (** permit the in-place scalar-scaled sparse cut path
          ({!Ellipsoid.cut_below}'s [mutate]) when the feature vector
          is sparse enough — default [true].  Decisions and accept/
          reject outcomes are identical either way; posted prices and
          log-volumes agree to ≤1e-9 relative (DESIGN.md).  Set
          [false] to force the bit-exact dense reference path. *)
}

val config :
  ?allow_conservative_cuts:bool ->
  ?sparse_cuts:bool ->
  variant:variant ->
  epsilon:float ->
  unit ->
  config

type t
(** Mutable mechanism state: the current ellipsoid plus round
    counters. *)

val create : config -> Ellipsoid.t -> t

val create_projected :
  config -> projection:Dm_linalg.Mat.t -> err:float -> Ellipsoid.t -> t
(** [create_projected cfg ~projection:p ~err ell] runs the mechanism in
    rank-k projected coordinates: [p] is a [k×n] matrix with
    orthonormal rows (a {!Dm_ml.Subspace}/PCA component basis — not
    validated here), [ell] the {e k-dimensional} knowledge ellipsoid
    over [θ_P = P·θ*], and [err] a finite non-negative bound on the
    unobserved tail [sup_x |x_⊥ᵀθ*|] ([x_⊥ = x − Pᵀ·P·x]).

    Per round the feature vector is projected once ([u = P·x], O(k·n)
    through the pooled {!Dm_linalg.Mat.project} kernel, memoized
    between {!decide} and {!observe} on the same physical [x]) and
    every bound, price and cut runs in the k-dim space — O(k²) per cut
    instead of O(n²).  The tail bound widens every guard exactly like
    the paper's valuation uncertainty: the effective buffer is
    [δ + err], so cuts never discard θ_P and the regret pays at most
    [err] extra per round ({!Regret.projection_term}).  With [p] the
    identity and [err = 0] the trajectory is bit-identical to the
    dense mechanism.

    Raises [Invalid_argument] when the ellipsoid dimension differs
    from the projection rank, or on a NaN/infinite/negative [err]. *)

val projection : t -> (Dm_linalg.Mat.t * float) option
(** The projection matrix and error bound of a {!create_projected}
    mechanism; [None] for a dense one. *)

val ellipsoid : t -> Ellipsoid.t
(** The current knowledge set.  Reading it marks its shape matrix as
    escaped, so the next cut allocates a fresh buffer instead of
    recycling it — callers may therefore retain the returned ellipsoid
    across future [observe] calls.  (Between reads, [observe]
    ping-pongs the two most recent shape buffers and never allocates.) *)

val config_of : t -> config

type kind = Exploratory | Conservative

type decision =
  | Skip  (** certain no-deal: reserve ≥ p̄ + δ; nothing is posted *)
  | Post of {
      price : float;  (** index-space posted price *)
      kind : kind;
      lower : float;  (** p̲ at decision time *)
      upper : float;  (** p̄ at decision time *)
    }

val decide : t -> x:Dm_linalg.Vec.t -> reserve:float -> decision
(** Price the query with (index-space) feature vector [x] and reserve
    [reserve].  Ignores [reserve] in the no-reserve variants (pass
    [neg_infinity] or anything else).  Does not mutate state.  Raises
    [Invalid_argument] on non-finite features or a NaN reserve —
    either would silently poison the knowledge set. *)

val observe : t -> x:Dm_linalg.Vec.t -> decision -> accepted:bool -> unit
(** Incorporate the buyer's response to a {!decide} outcome.  [Skip]
    decisions and conservative posts leave the ellipsoid unchanged
    (unless [allow_conservative_cuts]).  In projected mode, passing
    the same physical [x] as the preceding {!decide} (what {!step}
    does) reuses its cached projection; the array must not be mutated
    between the two calls. *)

val step : t -> x:Dm_linalg.Vec.t -> reserve:float -> market_index:float -> decision * bool
(** Convenience: decide, resolve acceptance ([price ≤ market_index]),
    observe, and return the decision with the acceptance flag. *)

val exploratory_rounds : t -> int
(** How many exploratory prices were posted so far — the Tₑ of
    Lemma 6/7, bounded by [20n²·log(20RS²(n+1)/ε)]. *)

val conservative_rounds : t -> int

val skipped_rounds : t -> int

val te_upper_bound : radius:float -> feature_bound:float -> dim:int -> epsilon:float -> float
(** The Lemma 6/7 bound [20n²·log(20·R·S²·(n+1)/ε)] on exploratory
    rounds. *)

val snapshot : t -> string
(** Text snapshot of the full mechanism state — configuration,
    counters and knowledge set — exact across a round-trip, so a
    broker process can restart mid-stream without losing what it
    learned.  A dense mechanism emits the original ["mechanism/1"]
    layout byte-for-byte; a projected one upgrades to ["mechanism/2"],
    which inserts a ["proj k n err"] line and one line of row-major
    hex-float projection entries between the state line and the
    ellipsoid. *)

val binary_magic : string
(** The 8-byte magic (["dm-mech3"]) opening a dense binary snapshot. *)

val binary_magic_v4 : string
(** The 8-byte magic (["dm-mech4"]) opening a projected binary
    snapshot: the v3 layout with [k], [n] (u32 each), the error bound
    and the row-major projection entries inserted between the counters
    and the ellipsoid. *)

val snapshot_binary : t -> string
(** Compact binary snapshot: {!binary_magic} (dense) or
    {!binary_magic_v4} (projected), the configuration and counters as
    little-endian fields, the projection block when projected, then
    the ellipsoid's {!Ellipsoid.serialize_binary} image.  Unlike the
    text format it records [sparse_cuts] and the ellipsoid's
    scalar/volume-cache state, so a round-trip reproduces the
    mechanism field-for-field — this is what the [Dm_store] snapshot
    files hold.  Dense mechanisms emit the v3 bytes unchanged. *)

val restore : string -> (t, string) result
(** Inverse of {!snapshot} and {!snapshot_binary} — the format is
    sniffed from the leading magic.  [Error] on any malformed input,
    including non-finite floats (NaN ε/δ, projection entries or
    ellipsoid entries), a NaN/infinite/negative projection error
    bound, a projection rank that disagrees with the ellipsoid
    dimension, and negative round counters — a corrupted snapshot
    never yields a mechanism that misprices silently.  Messages are
    prefixed ["Mechanism.restore: "] and name the offending line and
    field (text) or byte offset (binary).  The text format predates
    [sparse_cuts], which it does not record; text-restored mechanisms
    get the default ([true]). *)
