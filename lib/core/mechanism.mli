(** The ellipsoid-based posted-price mechanisms (Algorithms 1, 1°, 2, 2°
    — the paper writes 1* and 2* for the reserve-free variants).

    One implementation covers the paper's four variants, selected by a
    {!variant} value:

    - [pure]                          — Algorithm 1* ("the pure version")
    - [with_reserve]                  — Algorithm 1  ("with reserve price")
    - [with_uncertainty δ]            — Algorithm 2* ("with uncertainty")
    - [with_reserve_and_uncertainty δ]— Algorithm 2  ("with reserve price
                                        and uncertainty")

    All prices here live in *index space* (the scalar [φ(x)ᵀθ]); the
    {!Broker} maps them through the model link.  Per round the
    mechanism

    + computes the market-value bounds [p̲, p̄] from the ellipsoid
      (Lines 5–7);
    + skips the round when the reserve exceeds every possible market
      value, [q ≥ p̄ + δ] (Lines 8–10) — a certain no-deal;
    + posts the exploratory price [max(q, (p̲+p̄)/2)] when the width
      [p̄ − p̲] exceeds the threshold ε, otherwise the conservative
      price [max(q, p̲ − δ)] (Lines 12–13 / 26–27);
    + on exploratory feedback, cuts the ellipsoid at the *effective*
      price [p+δ] (rejection, keep below) or [p−δ] (acceptance, keep
      above), with the α-range guards of Lines 16 / 22.  Conservative
      prices never cut (Line 28) — allowing them to do so admits the
      Lemma-8 adversary with Ω(T) regret, which the
      [allow_conservative_cuts] switch exists to demonstrate.

    The per-round cost is two mat-vecs and a rank-one update, O(n²)
    time, and the state is one n×n matrix plus one n-vector, O(n²)
    space (Section III-C1). *)

type variant = { use_reserve : bool; delta : float }

val pure : variant

val with_reserve : variant

val with_uncertainty : delta:float -> variant
(** Requires [delta ≥ 0] and finite (NaN and infinity are rejected). *)

val with_reserve_and_uncertainty : delta:float -> variant

val variant_name : variant -> string
(** The evaluation-section names: "pure version", "with reserve
    price", … *)

type config = {
  variant : variant;
  epsilon : float;  (** exploration threshold, finite and > 0 *)
  allow_conservative_cuts : bool;
      (** Lemma-8 footgun; [false] in every paper variant *)
  sparse_cuts : bool;
      (** permit the in-place scalar-scaled sparse cut path
          ({!Ellipsoid.cut_below}'s [mutate]) when the feature vector
          is sparse enough — default [true].  Decisions and accept/
          reject outcomes are identical either way; posted prices and
          log-volumes agree to ≤1e-9 relative (DESIGN.md).  Set
          [false] to force the bit-exact dense reference path. *)
}

val config :
  ?allow_conservative_cuts:bool ->
  ?sparse_cuts:bool ->
  variant:variant ->
  epsilon:float ->
  unit ->
  config

type t
(** Mutable mechanism state: the current ellipsoid plus round
    counters. *)

val create : config -> Ellipsoid.t -> t

val create_projected :
  config -> projection:Dm_linalg.Mat.t -> err:float -> Ellipsoid.t -> t
(** [create_projected cfg ~projection:p ~err ell] runs the mechanism in
    rank-k projected coordinates: [p] is a [k×n] matrix with
    orthonormal rows (a {!Dm_ml.Subspace}/PCA component basis — not
    validated here), [ell] the {e k-dimensional} knowledge ellipsoid
    over [θ_P = P·θ*], and [err] a finite non-negative bound on the
    unobserved tail [sup_x |x_⊥ᵀθ*|] ([x_⊥ = x − Pᵀ·P·x]).

    Per round the feature vector is projected once ([u = P·x], O(k·n)
    through the pooled {!Dm_linalg.Mat.project} kernel, memoized
    between {!decide} and {!observe} on the same physical [x]) and
    every bound, price and cut runs in the k-dim space — O(k²) per cut
    instead of O(n²).  The tail bound widens every guard exactly like
    the paper's valuation uncertainty: the effective buffer is
    [δ + err], so cuts never discard θ_P and the regret pays at most
    [err] extra per round ({!Regret.projection_term}).  With [p] the
    identity and [err = 0] the trajectory is bit-identical to the
    dense mechanism.

    Raises [Invalid_argument] when the ellipsoid dimension differs
    from the projection rank, or on a NaN/infinite/negative [err]. *)

type robust_config = {
  explore_every : int;
      (** post a probe after this many consecutive conservative
          rounds *)
  drift_window : int;  (** sliding window length, in posted rounds *)
  drift_trigger : int;
      (** contradictions within the window that trigger a restart *)
  reinflate_radius : float;
      (** radius of the restarted knowledge ball; pass [2R] to
          guarantee any ‖θ‖ ≤ R is recaptured *)
}

val robust_config :
  ?drift_window:int ->
  ?drift_trigger:int ->
  explore_every:int ->
  reinflate_radius:float ->
  unit ->
  robust_config
(** Validated constructor (defaults: window 32, trigger 4).  Requires
    [explore_every ≥ 1], [1 ≤ drift_window ≤ 62],
    [1 ≤ drift_trigger ≤ drift_window] and a finite
    [reinflate_radius > 0]. *)

val create_robust : robust_config -> config -> Ellipsoid.t -> t
(** A misspecification-robust (dense) variant for streams that break
    the paper's model — shifting hidden vector, heavy tails, strategic
    responses ([Dm_synth.Adversarial]-style).  Two additions over
    {!create}:

    + {e periodic explore rounds}: after [explore_every] consecutive
      conservative rounds the next post is a probe at
      [p̄ + δ + ε/4] instead of the conservative floor.  Under the
      paper's model the buyer rejects it and both cut positions fall
      outside the knowledge set, so the probe never corrupts the
      ellipsoid — it only forfeits that round's sale.  The ε/4 gap
      makes the probe sensitive to market values sitting only a
      fraction of the exploration threshold above the set — upward
      drift, or a set that heavy-tailed exploration noise carved low;
    + {e drift-triggered restarts}: every posted round contributes a
      bit to a sliding window — set when the response contradicts the
      knowledge set under |noise| ≤ δ (an acceptance at or above
      [p̄ + δ], i.e. the probe sold, or a rejection at or below
      [p̲ − δ], the conservative floor refused).  When
      [drift_trigger] bits are set within [drift_window] posted
      rounds, {e or two consecutive probes sell} (a probe acceptance
      is far stronger evidence than a floor rejection, and probes are
      too sparse for the window to accumulate them), the ellipsoid is
      re-inflated to a ball of radius [reinflate_radius] at the
      current center (clipped to half the radius, so any θ with
      ‖θ‖ ≤ [reinflate_radius]/2 is recaptured) and the detector
      state clears.  The two triggers re-inflate differently: the
      rejection window proves global staleness and uses the full
      radius, while a probe streak only proves the market value sits a
      fraction of ε above the set, so it re-inflates a small ball
      (max(8ε, radius/4)) around the current center — a cheap local
      re-learn that recenters closer on every repeat;
    + {e adaptive floor shading}: rejections of the conservative floor
      price itself walk an online discount up (ε/16 per rejection,
      −ε/256 per floor sale, clamped to [0, ε]) and the floor posts at
      [p̲ − δ − shade].  Valuation noise whose lower tail outruns the
      sub-Gaussian δ makes floor rejections — each forfeiting a whole
      sale — far too frequent; trading a slightly lower price for
      sell-through is the distribution-free play, and the equilibrium
      keeps floor rejections near a 6% rate.  On a model-matching
      stream floor rejections stay (T-horizon-)rare, so the shade
      decays to and stays at 0 and prices are unchanged.

    On a stationary stream matching the paper's model the trajectory
    between probes is identical to {!create}'s, contradictions have
    vanishing probability, and the extra regret is one forfeited sale
    per [explore_every] converged rounds.  The Lemma 6/7 exploratory
    bound no longer applies: probes count as exploratory rounds and
    each restart re-opens the exploration phase. *)

val projection : t -> (Dm_linalg.Mat.t * float) option
(** The projection matrix and error bound of a {!create_projected}
    mechanism; [None] for a dense one. *)

val robust_config_of : t -> robust_config option
(** The robust configuration of a {!create_robust} mechanism; [None]
    for a vanilla one. *)

val robust_restarts : t -> int
(** How many drift-triggered restarts have fired (0 for a vanilla
    mechanism). *)

val robust_drift_level : t -> int
(** Contradictions currently set in the sliding window (0 for a
    vanilla mechanism); reaches [drift_trigger] only transiently —
    the triggering round restarts and clears the window. *)

val robust_shade : t -> float
(** The current adaptive discount below the conservative floor (0 for
    a vanilla mechanism, and 0 on streams matching the model). *)

val ellipsoid : t -> Ellipsoid.t
(** The current knowledge set.  Reading it marks its shape matrix and
    center as escaped, so the next cut allocates fresh buffers instead
    of recycling them — callers may therefore retain the returned
    ellipsoid across future [observe] calls.  (Between reads, [observe]
    ping-pongs the two most recent shape and center buffers and never
    allocates.) *)

val projected_feature : t -> x:Dm_linalg.Vec.t -> Dm_linalg.Vec.t option
(** [projected_feature t ~x] is a fresh copy of the memoized rank-k
    projection [u = P·x] of {e physically} this feature vector, as
    last computed by {!decide} or {!decide_batch}; [None] for a dense
    mechanism or when the memo holds a different vector.  [u] is the
    mechanism's sufficient statistic: with [err = 0] every bound, cut
    and price is computed from [u] alone and the effective δ is
    exactly the variant's δ, so the state evolution on [x] is
    bit-identical to a dense [k]-dimensional mechanism's on [u] — a
    serving layer may therefore journal [u] in place of the raw
    feature and replay against dense [k]-dim state (the serve
    artifact's journal does exactly this, decoupling journal bandwidth
    from the ambient dimension). *)

val config_of : t -> config

type kind = Exploratory | Conservative

type decision =
  | Skip  (** certain no-deal: reserve ≥ p̄ + δ; nothing is posted *)
  | Post of {
      price : float;  (** index-space posted price *)
      kind : kind;
      lower : float;  (** p̲ at decision time *)
      upper : float;  (** p̄ at decision time *)
    }

val decide : t -> x:Dm_linalg.Vec.t -> reserve:float -> decision
(** Price the query with (index-space) feature vector [x] and reserve
    [reserve].  Ignores [reserve] in the no-reserve variants (pass
    [neg_infinity] or anything else).  Does not mutate state.  Raises
    [Invalid_argument] on non-finite features or a NaN reserve —
    either would silently poison the knowledge set. *)

type batch
(** A cross-tenant batch-serving context: hoists the per-fleet
    constants of {!decide_batch} — the transposed shared projection the
    blocked batch kernel streams, and the gather/scatter panels (sized
    on first use and re-sized only when the batch size changes, so a
    steady-state flush allocates nothing). *)

val batch : t -> batch
(** [batch t] is a serving context for the fleet [t] belongs to, built
    from any representative member: projected mechanisms must share
    [t]'s projection {e physically} (the same [Dm_linalg.Mat.t]); a
    dense representative yields a context for dense fleets. *)

val decide_batch :
  batch ->
  t array ->
  xs:Dm_linalg.Vec.t array ->
  reserves:float array ->
  decision array
(** [decide_batch ctx mechs ~xs ~reserves] prices [B] pending requests,
    request [i] against [mechs.(i)]: the projected path gathers the
    feature vectors into a [B×n] panel, batch-projects them against the
    shared [P] in one blocked {!Dm_linalg.Mat.project_batch} pass, then
    runs the per-request rank-k {!decide} sequentially in arrival
    order with each mechanism's projection memo seeded from its panel
    row — so decisions (and the cuts and snapshots of the {!observe}s
    that follow) are bit-identical to serving the same requests one at
    a time.  The dense path is a plain {!decide} loop.  Like {!decide}
    it never mutates knowledge state; the caller resolves acceptances
    and calls {!observe} per request afterwards, in the same order.

    Raises [Invalid_argument] on an empty batch, mismatched array
    lengths, a mechanism whose projection is not physically the
    context's (or a projected mechanism under a dense context), a
    duplicate mechanism in the batch (its second decision would not
    see the first round's observe), and the per-request {!decide}
    errors. *)

val observe : t -> x:Dm_linalg.Vec.t -> decision -> accepted:bool -> unit
(** Incorporate the buyer's response to a {!decide} outcome.  [Skip]
    decisions and conservative posts leave the ellipsoid unchanged
    (unless [allow_conservative_cuts]).  In projected mode, passing
    the same physical [x] as the preceding {!decide} (what {!step}
    does) reuses its cached projection; the array must not be mutated
    between the two calls. *)

val step : t -> x:Dm_linalg.Vec.t -> reserve:float -> market_index:float -> decision * bool
(** Convenience: decide, resolve acceptance ([price ≤ market_index]),
    observe, and return the decision with the acceptance flag. *)

val exploratory_rounds : t -> int
(** How many exploratory prices were posted so far — the Tₑ of
    Lemma 6/7, bounded by [20n²·log(20RS²(n+1)/ε)]. *)

val conservative_rounds : t -> int

val skipped_rounds : t -> int

val te_upper_bound : radius:float -> feature_bound:float -> dim:int -> epsilon:float -> float
(** The Lemma 6/7 bound [20n²·log(20·R·S²·(n+1)/ε)] on exploratory
    rounds. *)

val snapshot : t -> string
(** Text snapshot of the full mechanism state — configuration,
    counters and knowledge set — exact across a round-trip, so a
    broker process can restart mid-stream without losing what it
    learned.  A dense mechanism emits the original ["mechanism/1"]
    layout byte-for-byte; a projected one upgrades to ["mechanism/2"],
    which inserts a ["proj k n err"] line and one line of row-major
    hex-float projection entries between the state line and the
    ellipsoid; a robust one upgrades to ["mechanism/3"], which instead
    inserts one ["robust ..."] line carrying the {!robust_config} and
    the live drift-detector state. *)

val binary_magic : string
(** The 8-byte magic (["dm-mech3"]) opening a dense binary snapshot. *)

val binary_magic_v4 : string
(** The 8-byte magic (["dm-mech4"]) opening a projected binary
    snapshot: the v3 layout with [k], [n] (u32 each), the error bound
    and the row-major projection entries inserted between the counters
    and the ellipsoid. *)

val binary_magic_v5 : string
(** The 8-byte magic (["dm-mech5"]) opening a robust binary snapshot:
    the v3 layout with the {!robust_config} fields and the live
    drift-detector state inserted between the counters and the
    ellipsoid. *)

val snapshot_binary : t -> string
(** Compact binary snapshot: {!binary_magic} (dense) or
    {!binary_magic_v4} (projected), the configuration and counters as
    little-endian fields, the projection block when projected, then
    the ellipsoid's {!Ellipsoid.serialize_binary} image.  Unlike the
    text format it records [sparse_cuts] and the ellipsoid's
    scalar/volume-cache state, so a round-trip reproduces the
    mechanism field-for-field — this is what the [Dm_store] snapshot
    files hold.  Dense mechanisms emit the v3 bytes unchanged. *)

val restore : string -> (t, string) result
(** Inverse of {!snapshot} and {!snapshot_binary} — the format is
    sniffed from the leading magic.  [Error] on any malformed input,
    including non-finite floats (NaN ε/δ, projection entries or
    ellipsoid entries), a NaN/infinite/negative projection error
    bound, a projection rank that disagrees with the ellipsoid
    dimension, and negative round counters — a corrupted snapshot
    never yields a mechanism that misprices silently.  Messages are
    prefixed ["Mechanism.restore: "] and name the offending line and
    field (text) or byte offset (binary).  The text format predates
    [sparse_cuts], which it does not record; text-restored mechanisms
    get the default ([true]). *)
