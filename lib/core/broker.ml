module Vec = Dm_linalg.Vec
module Pool = Dm_linalg.Pool
module Stats = Dm_prob.Stats

type custom_policy = {
  policy_name : string;
  decide : x:Vec.t -> reserve:float -> float option;
  learn : x:Vec.t -> price:float -> accepted:bool -> unit;
  uses_reserve : bool;
}

type policy =
  | Ellipsoid_pricing of Mechanism.t
  | Risk_averse
  | Custom of custom_policy

type kind = Exploratory | Conservative | Skipped | Baseline

type event = {
  t : int;
  x : Vec.t;
  reserve : float;
  kind : kind;
  price_index : float;
  lower : float;
  upper : float;
  posted : float option;
  accepted : bool;
  payment : float;
}

(* Shared audit triple for rounds run without a journal sink, so the
   no-journal hot path allocates nothing extra per round. *)
let no_audit = (Float.nan, Float.nan, Float.nan)

type round = {
  index : int;
  reserve : float;
  market_value : float;
  posted : float option;
  kind : kind;
  accepted : bool;
  revenue : float;
  regret : float;
}

type series = {
  checkpoints : int array;
  cumulative_regret : float array;
  cumulative_value : float array;
  regret_ratio : float array;
}

type result = {
  rounds : int;
  total_regret : float;
  total_value : float;
  total_revenue : float;
  regret_ratio : float;
  series : series;
  market_value_stats : Stats.summary;
  reserve_stats : Stats.summary;
  posted_stats : Stats.summary;
  regret_stats : Stats.summary;
  exploratory : int;
  conservative : int;
  skipped : int;
  accepted_rounds : int;
  logs : round array option;
}

let default_checkpoints ~rounds =
  if rounds < 1 then invalid_arg "Broker.default_checkpoints: empty horizon";
  let target = 200 in
  let ratio = (float_of_int rounds) ** (1. /. float_of_int target) in
  let rec collect acc last x =
    if last >= rounds then List.rev acc
    else
      let next = max (last + 1) (int_of_float (Float.round x)) in
      let next = min next rounds in
      collect (next :: acc) next (x *. ratio)
  in
  Array.of_list (collect [ 1 ] 1 ratio)

let uses_reserve = function
  | Risk_averse -> true
  | Ellipsoid_pricing m -> (Mechanism.config_of m).Mechanism.variant.use_reserve
  | Custom c -> c.uses_reserve

(* The checkpoint-consumption loops assume strictly increasing 1-based
   rounds; a malformed array would silently drop checkpoints and leave
   zeroed series entries. *)
let resolve_checkpoints ~fname ~rounds = function
  | Some c ->
      Array.iteri
        (fun i cp ->
          if cp < 1 || cp > rounds then
            invalid_arg (fname ^ ": checkpoint outside [1, rounds]");
          if i > 0 && cp <= c.(i - 1) then
            invalid_arg (fname ^ ": checkpoints must be strictly increasing"))
        c;
      c
  | None -> default_checkpoints ~rounds

let run ?checkpoints ?(record_rounds = false) ?journal ~policy ~model ~noise
    ~workload ~rounds () =
  if rounds < 1 then invalid_arg "Broker.run: need at least one round";
  let journaling = Option.is_some journal in
  let checkpoints =
    resolve_checkpoints ~fname:"Broker.run" ~rounds checkpoints
  in
  let n_checks = Array.length checkpoints in
  let cum_regret_at = Array.make n_checks 0. in
  let cum_value_at = Array.make n_checks 0. in
  let ratio_at = Array.make n_checks 0. in
  let next_check = ref 0 in
  let mv_stats = Stats.online_create () in
  let rs_stats = Stats.online_create () in
  let post_stats = Stats.online_create () in
  let regret_stats = Stats.online_create () in
  let cum_regret = ref 0. in
  let cum_value = ref 0. in
  let cum_revenue = ref 0. in
  let exploratory = ref 0 in
  let conservative = ref 0 in
  let skipped = ref 0 in
  let accepted_rounds = ref 0 in
  let logs = if record_rounds then Some (ref []) else None in
  let with_reserve = uses_reserve policy in
  let theta = model.Model.theta in
  let link = model.Model.link in
  for t = 0 to rounds - 1 do
    let x_raw, q_value = workload t in
    let phi = Model.feature_map model x_raw in
    let delta_t = noise t in
    let market_index = Vec.dot phi theta +. delta_t in
    let market_value = link.Model.g market_index in
    let posted, kind, accepted, audit =
      match policy with
      | Risk_averse ->
          let audit =
            if journaling then (link.Model.g_inv q_value, Float.nan, Float.nan)
            else no_audit
          in
          (Some q_value, Baseline, q_value <= market_value, audit)
      | Custom c -> (
          let reserve_index = link.Model.g_inv q_value in
          match c.decide ~x:phi ~reserve:reserve_index with
          | None -> (None, Skipped, false, no_audit)
          | Some price ->
              let accepted = price <= market_index in
              c.learn ~x:phi ~price ~accepted;
              let audit =
                if journaling then (price, Float.nan, Float.nan) else no_audit
              in
              (Some (link.Model.g price), Baseline, accepted, audit))
      | Ellipsoid_pricing mech ->
          let reserve_index = link.Model.g_inv q_value in
          let decision = Mechanism.decide mech ~x:phi ~reserve:reserve_index in
          let accepted =
            match decision with
            | Mechanism.Skip -> false
            | Mechanism.Post { price; _ } -> price <= market_index
          in
          Mechanism.observe mech ~x:phi decision ~accepted;
          let posted, kind, audit =
            match decision with
            | Mechanism.Skip -> (None, Skipped, no_audit)
            | Mechanism.Post { price; kind = mkind; lower; upper } ->
                let kind =
                  match mkind with
                  | Mechanism.Exploratory -> Exploratory
                  | Mechanism.Conservative -> Conservative
                in
                let audit =
                  if journaling then (price, lower, upper) else no_audit
                in
                (Some (link.Model.g price), kind, audit)
          in
          (posted, kind, accepted, audit)
    in
    let regret =
      match posted with
      | None -> Regret.skipped ~reserve:q_value ~market_value
      | Some p ->
          if with_reserve then
            Regret.posted ~reserve:q_value ~market_value ~price:p ()
          else Regret.posted ~market_value ~price:p ()
    in
    let revenue =
      match posted with
      | Some p when accepted -> p
      | Some _ | None -> 0.
    in
    (match kind with
    | Exploratory -> incr exploratory
    | Conservative -> incr conservative
    | Skipped -> incr skipped
    | Baseline -> ());
    if accepted then incr accepted_rounds;
    cum_regret := !cum_regret +. regret;
    cum_value := !cum_value +. market_value;
    cum_revenue := !cum_revenue +. revenue;
    Stats.online_add mv_stats market_value;
    Stats.online_add rs_stats q_value;
    (match posted with Some p -> Stats.online_add post_stats p | None -> ());
    Stats.online_add regret_stats regret;
    (match journal with
    | Some sink ->
        let price_index, lower, upper = audit in
        sink
          {
            t;
            x = phi;
            reserve = q_value;
            kind;
            price_index;
            lower;
            upper;
            posted;
            accepted;
            payment = revenue;
          }
    | None -> ());
    (match logs with
    | Some cell ->
        cell :=
          {
            index = t;
            reserve = q_value;
            market_value;
            posted;
            kind;
            accepted;
            revenue;
            regret;
          }
          :: !cell
    | None -> ());
    while !next_check < n_checks && checkpoints.(!next_check) = t + 1 do
      cum_regret_at.(!next_check) <- !cum_regret;
      cum_value_at.(!next_check) <- !cum_value;
      ratio_at.(!next_check) <-
        (if !cum_value > 0. then !cum_regret /. !cum_value else 0.);
      incr next_check
    done
  done;
  {
    rounds;
    total_regret = !cum_regret;
    total_value = !cum_value;
    total_revenue = !cum_revenue;
    regret_ratio =
      (if !cum_value > 0. then !cum_regret /. !cum_value else 0.);
    series =
      {
        checkpoints;
        cumulative_regret = cum_regret_at;
        cumulative_value = cum_value_at;
        regret_ratio = ratio_at;
      };
    market_value_stats = Stats.summarize mv_stats;
    reserve_stats = Stats.summarize rs_stats;
    posted_stats = Stats.summarize post_stats;
    regret_stats = Stats.summarize regret_stats;
    exploratory = !exploratory;
    conservative = !conservative;
    skipped = !skipped;
    accepted_rounds = !accepted_rounds;
    logs = Option.map (fun cell -> Array.of_list (List.rev !cell)) logs;
  }

type shard_mode = Exact | Warm_start of { stride : int }

(* Kind codes for the per-round scratch arrays of [run_sharded]: a
   [kind] is stored as an int so the array is unboxed. *)
let code_skip = 0
and code_exploratory = 1
and code_conservative = 2
and code_baseline = 3

let kind_of_code = function
  | 0 -> Skipped
  | 1 -> Exploratory
  | 2 -> Conservative
  | _ -> Baseline

let run_sharded ?checkpoints ?(record_rounds = false) ?journal ?(mode = Exact)
    ?(shards = 8) ?pool ~policy ~model ~noise ~workload ~rounds () =
  if rounds < 1 then invalid_arg "Broker.run_sharded: need at least one round";
  let journaling = Option.is_some journal in
  if shards < 1 then invalid_arg "Broker.run_sharded: need at least one shard";
  (match mode with
  | Warm_start { stride } when stride < 1 ->
      invalid_arg "Broker.run_sharded: warm-start stride must be positive"
  | Warm_start _ | Exact -> ());
  (match policy with
  | Custom _ ->
      invalid_arg
        "Broker.run_sharded: Custom policies carry opaque learner state that \
         cannot be snapshotted across shard boundaries"
  | Risk_averse | Ellipsoid_pricing _ -> ());
  let checkpoints =
    resolve_checkpoints ~fname:"Broker.run_sharded" ~rounds checkpoints
  in
  (* The shard count is decoupled from the pool size so the output is
     byte-identical whatever [--jobs] is in force (the repo-wide
     determinism contract); it only changes which boundary states
     warm-start replays from and how the per-shard Stats accumulators
     associate. *)
  let shards = min shards rounds in
  let bounds = Array.init (shards + 1) (fun k -> k * rounds / shards) in
  let pool = match pool with Some _ as p -> p | None -> Pool.get_default () in
  let pfor ?chunk n body =
    match pool with
    | Some p -> Pool.parallel_for p ?chunk n body
    | None -> if n > 0 then body 0 n
  in
  let theta = model.Model.theta in
  let link = model.Model.link in
  let with_reserve = uses_reserve policy in
  let need_reserve_index =
    match policy with Ellipsoid_pricing _ -> true | _ -> false
  in
  (* Phase A: materialize every round's inputs in parallel.  Requires
     [workload]/[noise] to be pure functions of [t] (see the mli). *)
  let phi = Array.make rounds theta in
  let reserve_v = Array.make rounds 0. in
  let reserve_ix = Array.make rounds 0. in
  let market_ix = Array.make rounds 0. in
  let market_v = Array.make rounds 0. in
  pfor rounds (fun lo hi ->
      for t = lo to hi - 1 do
        let x_raw, q_value = workload t in
        let p = Model.feature_map model x_raw in
        phi.(t) <- p;
        reserve_v.(t) <- q_value;
        if need_reserve_index then reserve_ix.(t) <- link.Model.g_inv q_value;
        let mi = Vec.dot p theta +. noise t in
        market_ix.(t) <- mi;
        market_v.(t) <- link.Model.g mi
      done);
  (* Phase B: the pricing decisions.  Risk-averse is stateless, so it
     shards trivially; the ellipsoid mechanism replays sequentially in
     exact mode, or per shard from boundary snapshots in warm-start
     mode. *)
  let kindc = Array.make rounds code_skip in
  let posted = Array.make rounds 0. in
  let accepted = Array.make rounds false in
  (* Per-round audit fields (index-space price and decision-time
     bounds) are only materialized when a journal sink is installed. *)
  let pix = if journaling then Array.make rounds Float.nan else [||] in
  let low_b = if journaling then Array.make rounds Float.nan else [||] in
  let up_b = if journaling then Array.make rounds Float.nan else [||] in
  (match policy with
  | Custom _ -> assert false (* rejected above *)
  | Risk_averse ->
      pfor rounds (fun lo hi ->
          for t = lo to hi - 1 do
            kindc.(t) <- code_baseline;
            posted.(t) <- reserve_v.(t);
            accepted.(t) <- reserve_v.(t) <= market_v.(t);
            if journaling then pix.(t) <- link.Model.g_inv reserve_v.(t)
          done)
  | Ellipsoid_pricing mech ->
      let replay m lo hi =
        for t = lo to hi - 1 do
          let decision = Mechanism.decide m ~x:phi.(t) ~reserve:reserve_ix.(t) in
          let acc =
            match decision with
            | Mechanism.Skip -> false
            | Mechanism.Post { price; _ } -> price <= market_ix.(t)
          in
          Mechanism.observe m ~x:phi.(t) decision ~accepted:acc;
          accepted.(t) <- acc;
          match decision with
          | Mechanism.Skip -> kindc.(t) <- code_skip
          | Mechanism.Post { price; kind; lower; upper } ->
              kindc.(t) <-
                (match kind with
                | Mechanism.Exploratory -> code_exploratory
                | Mechanism.Conservative -> code_conservative);
              posted.(t) <- link.Model.g price;
              if journaling then begin
                pix.(t) <- price;
                low_b.(t) <- lower;
                up_b.(t) <- upper
              end
        done
      in
      (match mode with
      | Exact -> replay mech 0 rounds
      | Warm_start { stride } ->
          let snaps = Array.make shards (Mechanism.snapshot mech) in
          (* Skeleton pass: walk the stream once on the caller's
             mechanism, observing every [stride]-th round, and snapshot
             the state at each shard boundary.  Rounds past the last
             boundary cannot influence any snapshot, so stop there. *)
          let skeleton_end = bounds.(shards - 1) in
          let next_shard = ref 1 in
          for t = 0 to skeleton_end - 1 do
            while !next_shard < shards && bounds.(!next_shard) = t do
              snaps.(!next_shard) <- Mechanism.snapshot mech;
              incr next_shard
            done;
            if t mod stride = 0 then begin
              let decision =
                Mechanism.decide mech ~x:phi.(t) ~reserve:reserve_ix.(t)
              in
              let acc =
                match decision with
                | Mechanism.Skip -> false
                | Mechanism.Post { price; _ } -> price <= market_ix.(t)
              in
              Mechanism.observe mech ~x:phi.(t) decision ~accepted:acc
            end
          done;
          while !next_shard < shards do
            snaps.(!next_shard) <- Mechanism.snapshot mech;
            incr next_shard
          done;
          pfor ~chunk:1 shards (fun klo khi ->
              for k = klo to khi - 1 do
                let m =
                  match Mechanism.restore snaps.(k) with
                  | Ok m -> m
                  | Error e ->
                      failwith
                        ("Broker.run_sharded: snapshot round-trip failed: " ^ e)
                in
                replay m bounds.(k) bounds.(k + 1)
              done)));
  (* Phase C: per-shard accounting — regret/revenue per round, plus a
     private Stats accumulator and counter set per shard. *)
  let regret = Array.make rounds 0. in
  let revenue = Array.make rounds 0. in
  let mv_st = Array.init shards (fun _ -> Stats.online_create ()) in
  let rs_st = Array.init shards (fun _ -> Stats.online_create ()) in
  let post_st = Array.init shards (fun _ -> Stats.online_create ()) in
  let reg_st = Array.init shards (fun _ -> Stats.online_create ()) in
  let expl = Array.make shards 0 in
  let cons = Array.make shards 0 in
  let skip = Array.make shards 0 in
  let acc_rounds = Array.make shards 0 in
  let logs =
    if record_rounds then
      Some
        (Array.make rounds
           {
             index = 0;
             reserve = 0.;
             market_value = 0.;
             posted = None;
             kind = Skipped;
             accepted = false;
             revenue = 0.;
             regret = 0.;
           })
    else None
  in
  pfor ~chunk:1 shards (fun klo khi ->
      for k = klo to khi - 1 do
        for t = bounds.(k) to bounds.(k + 1) - 1 do
          let q_value = reserve_v.(t) and market_value = market_v.(t) in
          let posted_opt =
            if kindc.(t) = code_skip then None else Some posted.(t)
          in
          let r =
            match posted_opt with
            | None -> Regret.skipped ~reserve:q_value ~market_value
            | Some p ->
                if with_reserve then
                  Regret.posted ~reserve:q_value ~market_value ~price:p ()
                else Regret.posted ~market_value ~price:p ()
          in
          let rev =
            match posted_opt with Some p when accepted.(t) -> p | _ -> 0.
          in
          regret.(t) <- r;
          revenue.(t) <- rev;
          if kindc.(t) = code_exploratory then expl.(k) <- expl.(k) + 1
          else if kindc.(t) = code_conservative then cons.(k) <- cons.(k) + 1
          else if kindc.(t) = code_skip then skip.(k) <- skip.(k) + 1;
          if accepted.(t) then acc_rounds.(k) <- acc_rounds.(k) + 1;
          Stats.online_add mv_st.(k) market_value;
          Stats.online_add rs_st.(k) q_value;
          (match posted_opt with
          | Some p -> Stats.online_add post_st.(k) p
          | None -> ());
          Stats.online_add reg_st.(k) r;
          match logs with
          | Some arr ->
              arr.(t) <-
                {
                  index = t;
                  reserve = q_value;
                  market_value;
                  posted = posted_opt;
                  kind = kind_of_code kindc.(t);
                  accepted = accepted.(t);
                  revenue = rev;
                  regret = r;
                }
          | None -> ()
        done
      done);
  (* Journal emission happens once per round, in round order, exactly
     as [run] would — so a sink observes an identical event stream
     from either entry point (Custom is rejected above). *)
  (match journal with
  | Some sink ->
      for t = 0 to rounds - 1 do
        let posted_opt =
          if kindc.(t) = code_skip then None else Some posted.(t)
        in
        sink
          {
            t;
            x = phi.(t);
            reserve = reserve_v.(t);
            kind = kind_of_code kindc.(t);
            price_index = pix.(t);
            lower = low_b.(t);
            upper = up_b.(t);
            posted = posted_opt;
            accepted = accepted.(t);
            payment = revenue.(t);
          }
      done
  | None -> ());
  (* Phase D: ordered merge.  The series and totals re-walk the
     per-round arrays sequentially so every float addition happens in
     the same order as [run] — merging per-shard partial sums instead
     would drift by reassociation ulps and break the byte-identity
     contract.  The Stats moments go through [Stats.merge], which is
     where the documented mean/std tolerance comes from. *)
  let n_checks = Array.length checkpoints in
  let cum_regret_at = Array.make n_checks 0. in
  let cum_value_at = Array.make n_checks 0. in
  let ratio_at = Array.make n_checks 0. in
  let next_check = ref 0 in
  let cum_regret = ref 0. in
  let cum_value = ref 0. in
  let cum_revenue = ref 0. in
  for t = 0 to rounds - 1 do
    cum_regret := !cum_regret +. regret.(t);
    cum_value := !cum_value +. market_v.(t);
    cum_revenue := !cum_revenue +. revenue.(t);
    while !next_check < n_checks && checkpoints.(!next_check) = t + 1 do
      cum_regret_at.(!next_check) <- !cum_regret;
      cum_value_at.(!next_check) <- !cum_value;
      ratio_at.(!next_check) <-
        (if !cum_value > 0. then !cum_regret /. !cum_value else 0.);
      incr next_check
    done
  done;
  let merged st =
    Stats.summarize (Array.fold_left Stats.merge (Stats.online_create ()) st)
  in
  let total = Array.fold_left ( + ) 0 in
  {
    rounds;
    total_regret = !cum_regret;
    total_value = !cum_value;
    total_revenue = !cum_revenue;
    regret_ratio = (if !cum_value > 0. then !cum_regret /. !cum_value else 0.);
    series =
      {
        checkpoints;
        cumulative_regret = cum_regret_at;
        cumulative_value = cum_value_at;
        regret_ratio = ratio_at;
      };
    market_value_stats = merged mv_st;
    reserve_stats = merged rs_st;
    posted_stats = merged post_st;
    regret_stats = merged reg_st;
    exploratory = total expl;
    conservative = total cons;
    skipped = total skip;
    accepted_rounds = total acc_rounds;
    logs;
  }
