(** Ellipsoidal knowledge sets with Löwner–John cut updates.

    The data broker's knowledge about the hidden weight vector θ* is
    an ellipsoid [E = {θ | (θ−c)ᵀA⁻¹(θ−c) ≤ 1}] (Definition 1 of the
    paper).  Each round's feedback adds the halfspace
    [{θ | xᵀθ ≤ p}] (rejection) or [{θ | xᵀθ ≥ p}] (acceptance), and
    the knowledge set is replaced by the minimum-volume (Löwner–John)
    ellipsoid of the truncated body, using the deep/central/shallow
    cut formulas of Grötschel–Lovász–Schrijver.

    The cut position is the signed parameter
    [α = (xᵀc − p) / √(xᵀAx)] measured in the ‖·‖_{A⁻¹} norm:
    α = 0 is a central cut, α ∈ (0, 1) a deep cut (less than half
    kept), α ∈ (−1/n, 0) a shallow cut, and for α ≤ −1/n the
    Löwner–John ellipsoid of the truncation is the ellipsoid itself,
    so the update is a no-op.

    The general update is singular at n = 1, where the ellipsoid
    degenerates to an interval; that case is handled by exact interval
    arithmetic (Theorem 3's setting). *)

type t = private {
  dim : int;
  center : Dm_linalg.Vec.t;
  shape : Dm_linalg.Mat.t;
      (** symmetric positive definite [M]; the true shape is
          [A = scale·M] *)
  scale : float;
      (** positive scalar [s] of the representation [A = s·M].  Every
          dense cut folds its Löwner–John factor into [shape] and
          leaves [scale] at exactly [1.], reproducing the plain dense
          arithmetic bit-for-bit; only the in-place sparse cut path
          accumulates factors here (and periodically folds them back
          into [shape] — see {!cut_below}). *)
  mutable log_vol : float;
      (** cached [½·log det A]; NaN until first computed.  Maintained
          incrementally across cuts — read it through
          {!log_volume_factor}, which also resynchronizes it. *)
  mutable cuts_since_sync : int;
      (** closed-form volume deltas accumulated since the cache was
          last computed from a full Cholesky factorization *)
}

val make : center:Dm_linalg.Vec.t -> shape:Dm_linalg.Mat.t -> t
(** Validates dimensions and symmetry (loose tolerance); positive
    definiteness is the caller's responsibility (checked cheaply via
    the diagonal). *)

val ball : dim:int -> radius:float -> t
(** The initial knowledge set of Algorithms 1–2:
    [A₁ = R²·I, c₁ = 0].  Requires [radius > 0]. *)

val of_box : lo:Dm_linalg.Vec.t -> hi:Dm_linalg.Vec.t -> t
(** The paper's enclosing ball of the initial box
    [K₁ = {θ | ℓᵢ ≤ θᵢ ≤ uᵢ}]: a ball of radius
    [R = √(Σᵢ max(ℓᵢ², uᵢ²))] centred at the origin. *)

val dim : t -> int

val scale : t -> float
(** The scalar [s] of the representation [A = s·M] — exactly [1.]
    unless the sparse in-place cut path has run since the last
    fold-in.  Exposed for tests and analysis. *)

type bounds = {
  lower : float;  (** [p̲ = min_{θ∈E} xᵀθ = xᵀc − √(xᵀAx)] *)
  upper : float;  (** [p̄ = max_{θ∈E} xᵀθ = xᵀc + √(xᵀAx)] *)
  mid : float;  (** [xᵀc], the bisection price *)
  half_width : float;  (** [√(xᵀAx)] *)
}

val bounds : t -> x:Dm_linalg.Vec.t -> bounds
(** Market-value bounds along direction [x] — Lines 5–7 of
    Algorithm 1.  Cost: one O(n²) quadratic form and one O(n) dot
    product. *)

val width : t -> x:Dm_linalg.Vec.t -> float
(** [p̄ − p̲ = 2√(xᵀAx)], the quantity compared with the threshold ε. *)

val contains : ?slack:float -> t -> Dm_linalg.Vec.t -> bool
(** Whether a point lies in the ellipsoid, with multiplicative [slack]
    (default 1e-9) on the quadratic form — the invariant that θ* is
    never lost. *)

type cut_result =
  | Cut of t  (** Löwner–John ellipsoid of the kept region *)
  | Too_shallow  (** α ≤ −1/n: no volume reduction is possible *)
  | Empty  (** α ≥ 1: the kept region has empty interior *)

val cut_below :
  ?into:Dm_linalg.Mat.t ->
  ?b_into:Dm_linalg.Vec.t ->
  ?center_into:Dm_linalg.Vec.t ->
  ?mutate:bool ->
  t ->
  x:Dm_linalg.Vec.t ->
  price:float ->
  cut_result
(** Keep [{θ | xᵀθ ≤ price}] — the rejection update (the buyer's
    refusal proves the market value, hence [xᵀθ*], is below the
    effective price).  [into], when given, receives the new shape
    matrix instead of a fresh allocation (it must have the right
    dimensions and must not be this ellipsoid's own shape; it is only
    written when the result is [Cut]).  The update runs as one fused
    streaming pass and its exact (i, j)-symmetric term association
    keeps the shape bit-exactly symmetric, so no symmetrization pass
    is needed.

    The dense path's two per-cut vector allocations take scratch
    buffers with different ownership rules (both length [dim],
    bit-identical results either way).  [b_into] holds the cut
    direction [b = A·x/√(xᵀAx)], a transient consumed by the rank-one
    update — the caller may recycle it on every cut (it must not alias
    [x]).  [center_into] receives the {e new center}, which the
    returned [Cut] retains: ownership transfers, so a caller must
    ping-pong two center buffers (passing the one the current
    ellipsoid does {e not} hold) and abandon both the moment an
    ellipsoid escapes to other code — exactly the shape-buffer
    discipline of [Mechanism.ellipsoid].  It must not alias the
    current center or [b_into].  The sparse in-place path ignores
    both buffers.

    [mutate] (default [false]) permits the sparse fast path: when the
    cut direction [x] passes {!Dm_linalg.Vec.Sparse.of_dense}'s
    density threshold (and [dim > 1]), the Löwner–John factor is
    multiplied into [scale] in O(1) and [shape] is rank-one-updated
    {b in place} over the cut direction's support — O(nnz·n + nnz²)
    per cut instead of O(n²).  The input ellipsoid's shape buffer is
    then consumed (the returned [Cut] aliases it); callers detect this
    by physical equality of the shape fields and must not reuse the
    input otherwise.  The scalar is folded back into [shape]
    (an O(n²) pass, and [scale] returns to [1.]) whenever it leaves
    [[1e-9, 1e9]] or the cut count crosses a 1000-cut resync boundary.
    With [mutate:false], or a dense direction, the allocating dense
    path runs and [scale] is preserved — results agree with the dense
    representation exactly on cut decisions and to ≤1e-9 relative on
    prices and log-volume (see DESIGN.md's tolerance contract). *)

val cut_above :
  ?into:Dm_linalg.Mat.t ->
  ?b_into:Dm_linalg.Vec.t ->
  ?center_into:Dm_linalg.Vec.t ->
  ?neg_into:Dm_linalg.Vec.t ->
  ?mutate:bool ->
  t ->
  x:Dm_linalg.Vec.t ->
  price:float ->
  cut_result
(** Keep [{θ | xᵀθ ≥ price}] — the acceptance update.  Implemented by
    reflecting [x ↦ −x, price ↦ −price] into {!cut_below} ([mutate]
    and the scratch buffers pass through).  [neg_into], when given,
    receives the negated direction instead of a fresh allocation
    (length [dim x], must not alias [x]; transient, recyclable every
    cut like [b_into]). *)

val apply : t -> cut_result -> t
(** The new knowledge set: the cut ellipsoid if one was produced, the
    old one otherwise (both degenerate outcomes leave the set
    unchanged, as Lines 18–19 / 24–25 of Algorithm 2 do). *)

val alpha : t -> x:Dm_linalg.Vec.t -> price:float -> float
(** The signed cut-position parameter of a below-cut at [price];
    exposed for analysis and tests. *)

val log_volume_factor : t -> float
(** [log(V(E)/Vₙ) = ½·log det A] — the volume in log space up to the
    unit-ball constant.  O(1) amortized: each cut advances a cached
    value by the closed-form delta
    [½·(n·log factor + log(1−β))] (the cut direction satisfies
    [bᵀA⁻¹b = 1], so [det A' = factorⁿ·(1−β)·det A]); a full O(n³)
    Cholesky recomputation runs on the first read and again after
    every 1000 accumulated deltas to bound float drift. *)

val volume_drift : t -> float
(** [|cached − ½·log det A|]: the accumulated float drift of the
    incremental volume cache against a fresh O(n³) Cholesky
    recomputation ([0.] while the cache is unset).  Analysis only. *)

val axis_widths : t -> Dm_linalg.Vec.t
(** The semi-axis widths [√γᵢ(A)] in decreasing order (Jacobi
    eigendecomposition; analysis only). *)

val serialize : t -> string
(** Text snapshot (hexadecimal float literals, so the round-trip is
    exact bit-for-bit).  Stable format, versioned header: an
    ellipsoid with [scale = 1.] emits the original ["ellipsoid/1"]
    layout byte-for-byte; a pending sparse-path scalar upgrades the
    snapshot to ["ellipsoid/2"], which inserts one extra scale line
    after the dimension. *)

val deserialize : string -> (t, string) result
(** Inverse of {!serialize}; accepts both snapshot versions.  [Error]
    describes the first problem found (bad header, wrong counts,
    malformed, non-finite or non-positive scale, malformed or
    non-finite numbers, asymmetric or non-positive shape) and names
    the offending line — and, for float rows, the field index — so
    corrupt-snapshot reports are actionable.  NaN and infinite
    entries are rejected explicitly — NaN would otherwise slip
    through the symmetry and positive-diagonal checks. *)

val binary_magic : string
(** The 8-byte magic (["dm-ell/3"]) opening a binary snapshot. *)

val serialize_binary : t -> string
(** Compact binary (v3) snapshot: {!binary_magic}, then
    little-endian [dim], [scale], [cuts_since_sync], the raw
    [log_vol] bit pattern, and the center and flat row-major shape as
    IEEE-754 bit patterns ({!Dm_linalg.Serial}).  Unlike the text
    formats it also preserves [scale = 1.] vs. v2 upgrades uniformly
    and the incremental-volume cache state, so a binary round-trip
    reproduces the ellipsoid record field-for-field. *)

val deserialize_binary : ?pos:int -> string -> (t, string) result
(** Inverse of {!serialize_binary}, starting at byte [pos]
    (default 0); trailing bytes are ignored.  [Error] messages carry
    the absolute byte offset of the first problem.  Validation
    matches {!deserialize} (finite entries, positive scale, [make]'s
    symmetry and diagonal checks); the log-volume field may be NaN
    (the "cache unset" sentinel) but not infinite. *)

val pp : Format.formatter -> t -> unit
