(** The data broker's trading loop (Fig. 2 of the paper).

    [run] plays [rounds] rounds of posted-price trading between a
    pricing policy and a stream of buyers whose willingness to pay
    follows a {!Model.t} with per-round uncertainty: in round [t] the
    workload yields a query feature vector and a (value-space) reserve
    price, the policy posts a price (or skips), the buyer accepts iff
    the price does not exceed the realized market value, and the
    broker accounts revenue and regret (Eq. 1/7).

    Two policies are built in: the paper's ellipsoid mechanism (all
    four variants) and the risk-averse baseline of Section V that
    posts the reserve price every round. *)

type custom_policy = {
  policy_name : string;
  decide : x:Dm_linalg.Vec.t -> reserve:float -> float option;
      (** index-space price to post, or [None] to skip the round *)
  learn : x:Dm_linalg.Vec.t -> price:float -> accepted:bool -> unit;
      (** feedback after a posted round (never called on skips) *)
  uses_reserve : bool;
      (** whether regret should honour the reserve (Eq. 1 vs Eq. 7) *)
}
(** A pluggable pricing policy — how comparison baselines (e.g. the
    SGD pricer of {!Sgd_pricing}) enter the same trading loop. *)

type policy =
  | Ellipsoid_pricing of Mechanism.t
  | Risk_averse
      (** post the reserve price itself each round — sells whenever a
          sale is possible at all, never learns *)
  | Custom of custom_policy

type kind = Exploratory | Conservative | Skipped | Baseline

type event = {
  t : int;  (** 0-based round number *)
  x : Dm_linalg.Vec.t;  (** index-space feature vector φ(x) *)
  reserve : float;  (** value space *)
  kind : kind;
  price_index : float;
      (** index-space posted price — what the policy's decision said
          before the link map; NaN on skipped rounds *)
  lower : float;  (** knowledge-set bound p̲ at decision time; NaN when
                      the policy exposes none (skips, baselines) *)
  upper : float;  (** p̄ at decision time; NaN likewise *)
  posted : float option;  (** value space; [None] for skips *)
  accepted : bool;
  payment : float;  (** value space; [0.] unless accepted *)
}
(** One round of the trading loop as seen by a [?journal] sink — the
    durable audit record: which query arrived, what was posted and
    why (the decision-time bounds), and how the buyer responded.
    Everything a mechanism needs to replay the round
    ([x], [price_index], [kind], [lower]/[upper], [accepted]) is
    included; the realized market value deliberately is not — a real
    broker never observes it, and in simulation it is a pure function
    of the round. *)

type round = {
  index : int;  (** 0-based round number *)
  reserve : float;  (** value space *)
  market_value : float;  (** realized, value space *)
  posted : float option;  (** value space; [None] for skips *)
  kind : kind;
  accepted : bool;
  revenue : float;
  regret : float;
}

type series = {
  checkpoints : int array;  (** 1-based round counts, increasing *)
  cumulative_regret : float array;
  cumulative_value : float array;
  regret_ratio : float array;
      (** Σregret / Σmarket-value at each checkpoint — the paper's
          headline metric *)
}

type result = {
  rounds : int;
  total_regret : float;
  total_value : float;
  total_revenue : float;
  regret_ratio : float;
  series : series;
  market_value_stats : Dm_prob.Stats.summary;
  reserve_stats : Dm_prob.Stats.summary;
  posted_stats : Dm_prob.Stats.summary;  (** over posted rounds only *)
  regret_stats : Dm_prob.Stats.summary;  (** per-round, all rounds *)
  exploratory : int;
  conservative : int;
  skipped : int;
  accepted_rounds : int;
  logs : round array option;  (** present iff [record_rounds] *)
}

val default_checkpoints : rounds:int -> int array
(** ≈200 geometrically spaced checkpoints ending at [rounds]. *)

val run :
  ?checkpoints:int array ->
  ?record_rounds:bool ->
  ?journal:(event -> unit) ->
  policy:policy ->
  model:Model.t ->
  noise:(int -> float) ->
  workload:(int -> Dm_linalg.Vec.t * float) ->
  rounds:int ->
  unit ->
  result
(** [workload t] returns the round-[t] raw feature vector (before the
    model's φ) and the value-space reserve price.  [noise t] is the
    index-space uncertainty δ_t.  Regret uses Eq. 1 when the policy
    honours reserve prices (reserve variants and the baseline) and
    Eq. 7 otherwise.  [record_rounds] (default false) materializes
    per-round logs — leave it off for 10⁵-round sweeps.
    [checkpoints], when given, must be strictly increasing 1-based
    round counts within [1, rounds]; anything else raises
    [Invalid_argument] rather than silently dropping entries.

    [journal], when given, receives one {!event} per round, in round
    order, after the policy has observed the buyer's response — this
    is where [Dm_store] attaches its durable journal.  The sink never
    influences pricing, accounting or randomness, so a run's result
    is byte-identical with or without it. *)

type shard_mode =
  | Exact
      (** Inputs are precomputed in parallel; the mechanism still walks
          the stream once sequentially, so the result — series, totals,
          counters, logs — is byte-identical to {!run}. *)
  | Warm_start of { stride : int }
      (** A sequential skeleton pass observes only every [stride]-th
          round and snapshots the mechanism at each shard boundary
          ({!Mechanism.snapshot}); every shard then replays its full
          range in parallel from the restored boundary state.  Shard 0
          (and every shard at [stride = 1], where the skeleton is the
          full walk) reproduces {!run} exactly; later shards drift by
          whatever the skeleton's skipped observations would have
          taught the ellipsoid.  Requires [stride ≥ 1]. *)

val run_sharded :
  ?checkpoints:int array ->
  ?record_rounds:bool ->
  ?journal:(event -> unit) ->
  ?mode:shard_mode ->
  ?shards:int ->
  ?pool:Dm_linalg.Pool.t ->
  policy:policy ->
  model:Model.t ->
  noise:(int -> float) ->
  workload:(int -> Dm_linalg.Vec.t * float) ->
  rounds:int ->
  unit ->
  result
(** Shard-parallel variant of {!run} for single long-horizon streams:
    the horizon is split into [shards] contiguous shards (default 8,
    clamped to [rounds]) dispatched over [pool] (default
    {!Dm_linalg.Pool.get_default}; sequential when no pool is
    installed).  Input materialization and per-round accounting always
    run shard-parallel; the mechanism pass follows [mode] (default
    {!Exact}).  Per-shard partial results are merged in shard order:
    counters by integer addition, the four Stats accumulators through
    {!Dm_prob.Stats.merge} (count/min/max exact, mean/std within
    floating-point reassociation tolerance of {!run}), and the series,
    totals and ratio by a sequential re-walk of the per-round arrays so
    that in exact mode [series], [total_*], [regret_ratio], counters
    and [logs] are bit-for-bit equal to {!run} at any [shards], [pool]
    or jobs value.

    Requirements beyond {!run}: [workload], [noise] and the model's
    feature map must be pure functions of [t] that are safe to call
    from any domain (derive per-round values from pre-split
    {!Dm_prob.Rng} streams or materialized tables, never from a shared
    mutable cursor, and force any lazy backing store first).  [Custom]
    policies raise [Invalid_argument]: their learner state is opaque,
    so it cannot be snapshotted across shard boundaries.  In exact mode
    a caller-supplied mechanism finishes in the same state as after
    {!run}; in warm-start mode it is left in the skeleton's
    intermediate state, which callers should treat as unspecified.
    [shards] is deliberately independent of the pool size so output
    never varies with [--jobs]; it raises [Invalid_argument] when
    [< 1].

    [journal] behaves as in {!run}: events are emitted sequentially
    in round order (after the mechanism pass, from the merged
    per-round arrays), and in exact mode the event stream is
    bit-identical to the one {!run} would emit. *)
