module Vec = Dm_linalg.Vec

type outcome = {
  result : Broker.result;
  exploratory_second_half : int;
  width_e2_at_switch : float;
}

let run ?(epsilon = 1e-3) ?(radius = 1.) ~allow_conservative_cuts ~dim ~rounds
    () =
  if dim < 2 then invalid_arg "Adversary.run: need dim >= 2";
  if rounds < 2 then invalid_arg "Adversary.run: need at least two rounds";
  (* Hidden weights: only the attacked coordinates matter; kept well
     inside the radius-R ball.  θ₁ = 0 keeps the first-half bisection
     target at the origin so the adversary's reserve (the broker's own
     middle price) never saturates against the shrinking width in
     floating point — cuts continue for the whole first half, as the
     exact-arithmetic Lemma 8 argument assumes. *)
  let theta = Vec.zeros dim in
  theta.(1) <- 0.4 *. radius;
  let model = Model.linear ~theta in
  let cfg =
    Mechanism.config ~allow_conservative_cuts
      ~variant:Mechanism.with_reserve ~epsilon ()
  in
  let mech = Mechanism.create cfg (Ellipsoid.ball ~dim ~radius) in
  let e1 = Vec.basis dim 0 in
  let e2 = Vec.basis dim 1 in
  let half = rounds / 2 in
  let width_at_switch = ref nan in
  let exploratory_at_switch = ref 0 in
  (* The adversary is adaptive: the first-half reserve tracks the
     broker's own current middle price along e₁, pinning every posted
     price to a central cut position (Lemma 8's construction). *)
  let workload t =
    if t < half then begin
      (* With cuts allowed, every central cut inflates the off-axis
         widths by n/√(n²−1) — at dim 2 that is (2/√3) per cut, which
         drives the e₂ width toward float max geometrically.  Detect
         the divergence on the representative off-axis direction e₂
         and stop, instead of silently emitting inf/nan regret
         rows.  (Whether overflow ever arrives depends on the
         headroom above [radius]; at radius 1 the squared e₁ width
         underflows first and the widths freeze finite.) *)
      let w2 = Ellipsoid.width (Mechanism.ellipsoid mech) ~x:e2 in
      if not (Float.is_finite w2) then
        invalid_arg
          (Printf.sprintf
             "Adversary.run: ellipsoid diverged at round %d (width along e2 \
              is no longer finite); conservative cuts inflate off-axis \
              widths geometrically — shorten the horizon"
             t);
      let b = Ellipsoid.bounds (Mechanism.ellipsoid mech) ~x:e1 in
      (e1, b.Ellipsoid.mid)
    end
    else begin
      if t = half then begin
        width_at_switch := Ellipsoid.width (Mechanism.ellipsoid mech) ~x:e2;
        exploratory_at_switch := Mechanism.exploratory_rounds mech
      end;
      (e2, 0.)
    end
  in
  let result =
    Broker.run
      ~policy:(Broker.Ellipsoid_pricing mech)
      ~model
      ~noise:(fun _ -> 0.)
      ~workload ~rounds ()
  in
  {
    result;
    exploratory_second_half =
      Mechanism.exploratory_rounds mech - !exploratory_at_switch;
    width_e2_at_switch = !width_at_switch;
  }
