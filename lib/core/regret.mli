(** Regret accounting (Eq. 1 and Eq. 7 of the paper).

    All quantities are in value space (money).  With a reserve price
    [q] the per-round regret is

    {v
      R_t = 0                      if q > v
            v − p·1{p ≤ v}         otherwise           (Eq. 1)
    v}

    — when even the adversary could not have sold (the reserve exceeds
    the market value), nobody loses anything.  Without a reserve the
    regret is [R'_t = v − p·1{p ≤ v}] (Eq. 7).  Lemma 1 (the reserve
    can only lower the single-round regret) holds by construction and
    is property-tested. *)

val posted : ?reserve:float -> market_value:float -> price:float -> unit -> float
(** Regret of posting [price] against [market_value]; the sale happens
    iff [price ≤ market_value].  Omitting [reserve] gives Eq. 7. *)

val skipped : reserve:float -> market_value:float -> float
(** Regret of a certain-no-deal skip (Lines 8–10): zero when the
    reserve exceeds the market value, otherwise the full foregone
    value (the adversary would have sold at [market_value]). *)

val revenue : market_value:float -> price:float -> float
(** The broker's revenue: [price] if the sale happens, else 0. *)

val projection_term : err:float -> rounds:int -> float
(** [projection_term ~err ~rounds] is [err·rounds] — the additive
    misspecification budget of the rank-k projected mechanism
    ({!Mechanism.create_projected}).  Each round the observable index
    [uᵀθ_P] sits within [err] of the true [xᵀθ*], so pricing through
    the projection can lose at most [err] per round on top of the
    dense regret bound; the total projected-mode guarantee is
    [dense regret + projection_term].  Raises [Invalid_argument] on a
    NaN/infinite/negative [err] or negative [rounds]. *)

val single_round_curve :
  reserve:float ->
  market_value:float ->
  prices:Dm_linalg.Vec.t ->
  Dm_linalg.Vec.t
(** The Fig. 1 regret-vs-posted-price curve: Eq. 1 evaluated at each
    candidate price (the piecewise, highly asymmetric shape — linearly
    falling below the market value, jumping to the full value just
    above it). *)
