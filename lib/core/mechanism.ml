module Serial = Dm_linalg.Serial

type variant = { use_reserve : bool; delta : float }

let check_delta delta =
  (* [not (delta >= 0.)] rather than [delta < 0.]: NaN answers false to
     both comparisons, so the former also rejects it. *)
  if not (delta >= 0.) || delta = infinity then
    invalid_arg "Mechanism: uncertainty buffer must be finite and non-negative"

let pure = { use_reserve = false; delta = 0. }

let with_reserve = { use_reserve = true; delta = 0. }

let with_uncertainty ~delta =
  check_delta delta;
  { use_reserve = false; delta }

let with_reserve_and_uncertainty ~delta =
  check_delta delta;
  { use_reserve = true; delta }

let variant_name = function
  | { use_reserve = false; delta = 0. } -> "pure version"
  | { use_reserve = false; _ } -> "with uncertainty"
  | { use_reserve = true; delta = 0. } -> "with reserve price"
  | { use_reserve = true; _ } -> "with reserve price and uncertainty"

type config = {
  variant : variant;
  epsilon : float;
  allow_conservative_cuts : bool;
  sparse_cuts : bool;
}

let config ?(allow_conservative_cuts = false) ?(sparse_cuts = true) ~variant
    ~epsilon () =
  if not (epsilon > 0.) || epsilon = infinity then
    invalid_arg "Mechanism.config: epsilon must be finite and positive";
  check_delta variant.delta;
  { variant; epsilon; allow_conservative_cuts; sparse_cuts }

type robust_config = {
  explore_every : int;
  drift_window : int;
  drift_trigger : int;
  reinflate_radius : float;
}

(* The drift window is a bitmask over the last [drift_window] posted
   rounds (LSB = most recent), so it must fit a native int. *)
let max_drift_window = 62

let robust_config ?(drift_window = 32) ?(drift_trigger = 4) ~explore_every
    ~reinflate_radius () =
  if explore_every < 1 then
    invalid_arg "Mechanism.robust_config: explore_every must be >= 1";
  if drift_window < 1 || drift_window > max_drift_window then
    invalid_arg
      (Printf.sprintf "Mechanism.robust_config: drift_window outside [1,%d]"
         max_drift_window);
  if drift_trigger < 1 || drift_trigger > drift_window then
    invalid_arg
      "Mechanism.robust_config: drift_trigger outside [1,drift_window]";
  if not (reinflate_radius > 0.) || reinflate_radius = infinity then
    invalid_arg
      "Mechanism.robust_config: reinflate_radius must be finite and positive";
  { explore_every; drift_window; drift_trigger; reinflate_radius }

(* Two consecutive accepted probes force a restart regardless of the
   window count: a probe acceptance is far stronger evidence than a
   floor rejection (v landed ε past the whole knowledge set, not just
   δ below it), and probes are too sparse for the window to ever
   accumulate [drift_trigger] of them. *)
let probe_streak_trigger = 2

type robust_state = {
  rcfg : robust_config;
  mutable since_explore : int;
      (* conservative rounds since the last exploratory post *)
  mutable recent : int;
      (* contradiction bits over the last [drift_window] posted rounds *)
  mutable filled : int;
  mutable probe_streak : int;  (* consecutive accepted probes *)
  mutable shade : float;
      (* price shading below the conservative floor, adapted online
         from floor rejections — the distribution-free answer to
         valuation noise whose lower tail outruns the sub-Gaussian δ *)
  mutable restarts : int;
}

type t = {
  cfg : config;
  robust : robust_state option;
  proj : (Dm_linalg.Mat.t * float) option;
      (* rank-k mode: the k×n orthonormal-row projection P and the
         index-space misspecification bound err ≥ sup_x |x_⊥ᵀθ*| *)
  mutable ell : Ellipsoid.t;
  mutable exploratory : int;
  mutable conservative : int;
  mutable skipped : int;
  mutable spare : Dm_linalg.Mat.t option;
      (* retired shape buffer, reused as the next cut's destination *)
  mutable spare_center : Dm_linalg.Vec.t option;
      (* retired center buffer, ping-ponged with the live one by the
         dense cut path under the same escape rule as [spare] *)
  mutable exposed : bool;
      (* the current ellipsoid escaped through [ellipsoid]: its shape
         and center may be retained by the caller, so neither must be
         recycled *)
  u_buf : Dm_linalg.Vec.t;
      (* projected mode: the k-buffer P·x lands in; [[||]] when dense *)
  b_buf : Dm_linalg.Vec.t;
  neg_buf : Dm_linalg.Vec.t;
      (* transient cut scratch (direction b, negated direction): a cut
         consumes them without retaining either, so they are safe to
         recycle even while [exposed] *)
  mutable memo_x : Dm_linalg.Vec.t;
  mutable memo_u : Dm_linalg.Vec.t;
      (* projected mode only: the (x, P·x) pair from the last [decide],
         keyed by physical equality ([memo_x == x]; empty = no memo,
         which the length guard distinguishes from a genuine [[||]]
         input since empty arrays share one representation) so
         [observe] reuses the k-vector instead of paying the O(k·n)
         projection twice per round.  Two flat fields rather than an
         option pair, so storing a memo allocates nothing. *)
}

let no_memo : Dm_linalg.Vec.t = [||]

let create cfg ell =
  let d = Ellipsoid.dim ell in
  {
    cfg;
    robust = None;
    proj = None;
    ell;
    exploratory = 0;
    conservative = 0;
    skipped = 0;
    spare = None;
    spare_center = None;
    exposed = false;
    u_buf = no_memo;
    b_buf = Dm_linalg.Vec.zeros d;
    neg_buf = Dm_linalg.Vec.zeros d;
    memo_x = no_memo;
    memo_u = no_memo;
  }

let check_err err =
  if not (err >= 0.) || err = infinity then
    invalid_arg "Mechanism: projection error bound must be finite and non-negative"

let create_projected cfg ~projection ~err ell =
  check_err err;
  let k = Dm_linalg.Mat.rows projection in
  if k < 1 then invalid_arg "Mechanism.create_projected: empty projection";
  if Ellipsoid.dim ell <> k then
    invalid_arg
      (Printf.sprintf
         "Mechanism.create_projected: ellipsoid dim %d does not match \
          projection rank %d"
         (Ellipsoid.dim ell) k);
  { (create cfg ell) with
    proj = Some (projection, err);
    u_buf = Dm_linalg.Vec.zeros k;
  }

let fresh_robust_state rcfg =
  {
    rcfg;
    since_explore = 0;
    recent = 0;
    filled = 0;
    probe_streak = 0;
    shade = 0.;
    restarts = 0;
  }

let create_robust rcfg cfg ell =
  { (create cfg ell) with robust = Some (fresh_robust_state rcfg) }

let projection t = t.proj

let robust_config_of t = Option.map (fun rs -> rs.rcfg) t.robust

let robust_restarts t =
  match t.robust with None -> 0 | Some rs -> rs.restarts

let popcount =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0

let robust_drift_level t =
  match t.robust with None -> 0 | Some rs -> popcount rs.recent

let robust_shade t =
  match t.robust with None -> 0. | Some rs -> rs.shade

(* In projected mode every price guard widens by the misspecification
   bound: the observable index is uᵀθ_P = xᵀθ* − x_⊥ᵀθ*, so treating
   the unobserved tail exactly like the paper's valuation noise δ keeps
   every cut sound (Algorithm 2's argument verbatim with δ := δ+err). *)
let effective_delta t =
  match t.proj with
  | None -> t.cfg.variant.delta
  | Some (_, err) -> t.cfg.variant.delta +. err

let project_feature t x =
  match t.proj with
  | None -> x
  | Some (p, _) ->
      if t.memo_x == x && Array.length x > 0 then t.memo_u
      else begin
        let u = Dm_linalg.Mat.project ~into:t.u_buf p x in
        t.memo_x <- x;
        t.memo_u <- u;
        u
      end

let ellipsoid t =
  t.exposed <- true;
  t.ell

let projected_feature t ~x =
  match t.proj with
  | None -> None
  | Some _ ->
      if t.memo_x == x && Array.length x > 0 then Some (Array.copy t.memo_u)
      else None

let config_of t = t.cfg

type kind = Exploratory | Conservative

type decision =
  | Skip
  | Post of { price : float; kind : kind; lower : float; upper : float }

(* Direct float-array loop: [Array.for_all Float.is_finite] would box
   every element, putting O(n) minor words on the steady-state decide
   path the arena is meant to keep allocation-free. *)
let check_finite_vec name (x : Dm_linalg.Vec.t) =
  let n = Array.length x in
  let i = ref 0 in
  while
    !i < n
    &&
    let v = Array.unsafe_get x !i in
    v -. v = 0.
  do
    incr i
  done;
  if !i < n then invalid_arg (name ^ ": non-finite feature vector")

let decide t ~x ~reserve =
  check_finite_vec "Mechanism.decide" x;
  let { variant = { use_reserve; delta = _ }; epsilon; _ } = t.cfg in
  let delta = effective_delta t in
  (* A NaN reserve would silently disable both the skip test and the
     price floor; −∞ (no reserve) and +∞ (unsellable) are fine. *)
  if use_reserve && Float.is_nan reserve then
    invalid_arg "Mechanism.decide: NaN reserve";
  let q = if use_reserve then reserve else neg_infinity in
  let u = project_feature t x in
  let { Ellipsoid.lower; upper; mid; half_width } = Ellipsoid.bounds t.ell ~x:u in
  if use_reserve && q >= upper +. delta then Skip
  else if 2. *. half_width > epsilon then
    Post { price = Float.max q mid; kind = Exploratory; lower; upper }
  else
    let probe_due =
      match t.robust with
      | Some rs -> rs.since_explore >= rs.rcfg.explore_every
      | None -> false
    in
    if probe_due then
      (* Periodic explore round: price just above the knowledge set's
         upper bound.  Under the paper's model the buyer rejects and
         both cut positions fall outside the ellipsoid (no-op), so the
         probe only costs the round's sale; an acceptance proves the
         market value sits above the set — upward drift, or a set that
         heavy-tailed exploration noise carved too low — and feeds the
         drift statistic in [observe].  The ε/4 gap keeps the probe
         sensitive to biases well below the exploration threshold
         while staying clear of the p̄ + δ model boundary. *)
      Post
        { price = Float.max q (upper +. delta +. (0.25 *. epsilon));
          kind = Exploratory; lower; upper }
    else
      (* The robust variant shades the conservative floor by the
         current adaptive discount: under valuation noise whose lower
         tail outruns the sub-Gaussian δ, the floor itself draws
         rejections that each forfeit a whole sale, and trading a
         slightly lower price for a much higher sell-through is the
         distribution-free play.  [shade] stays 0 on a stream matching
         the model (see [robust_observe]). *)
      let shade =
        match t.robust with Some rs -> rs.shade | None -> 0.
      in
      Post
        { price = Float.max q (lower -. delta -. shade); kind = Conservative;
          lower; upper }

(* Cross-tenant batch serving.  The context hoists everything that is
   per-fleet rather than per-round: the transposed projection the
   blocked batch kernel streams, and the gather/scatter panels (sized
   to the batch on first use, re-sized only when the batch size
   changes, so a steady-state flush allocates nothing). *)
type batch = {
  bpt : (Dm_linalg.Mat.t * Dm_linalg.Mat.t) option;
      (* projected fleet: the shared P (compared physically against
         each served mechanism) and its transpose; None = dense fleet *)
  mutable xs_panel : Dm_linalg.Mat.t;  (* B×n gather panel *)
  mutable u_panel : Dm_linalg.Mat.t;  (* B×k projected panel *)
}

let batch t =
  match t.proj with
  | None ->
      {
        bpt = None;
        xs_panel = Dm_linalg.Mat.zeros 0 0;
        u_panel = Dm_linalg.Mat.zeros 0 0;
      }
  | Some (p, _) ->
      {
        bpt = Some (p, Dm_linalg.Mat.transpose p);
        xs_panel = Dm_linalg.Mat.zeros 0 (Dm_linalg.Mat.cols p);
        u_panel = Dm_linalg.Mat.zeros 0 (Dm_linalg.Mat.rows p);
      }

let decide_batch ctx mechs ~xs ~reserves =
  let b = Array.length mechs in
  if b = 0 then invalid_arg "Mechanism.decide_batch: empty batch";
  if Array.length xs <> b || Array.length reserves <> b then
    invalid_arg "Mechanism.decide_batch: batch length mismatch";
  (* Each mechanism may appear at most once per batch: projections are
     state-independent, but a repeated mechanism would have its second
     decision computed against pre-observe state — not what a B=1
     interleaving of decide/observe rounds produces. *)
  for i = 0 to b - 1 do
    for j = i + 1 to b - 1 do
      if mechs.(i) == mechs.(j) then
        invalid_arg "Mechanism.decide_batch: duplicate mechanism in batch"
    done
  done;
  match ctx.bpt with
  | None ->
      Array.iter
        (fun m ->
          match m.proj with
          | Some _ ->
              invalid_arg
                "Mechanism.decide_batch: dense context serving a projected \
                 mechanism"
          | None -> ())
        mechs;
      Array.init b (fun i -> decide mechs.(i) ~x:xs.(i) ~reserve:reserves.(i))
  | Some (p, pt) ->
      Array.iter
        (fun m ->
          match m.proj with
          | Some (p', _) when p' == p -> ()
          | _ ->
              invalid_arg
                "Mechanism.decide_batch: mechanism does not share the batch \
                 projection")
        mechs;
      if Dm_linalg.Mat.rows ctx.xs_panel <> b then begin
        ctx.xs_panel <-
          Dm_linalg.Mat.zeros b (Dm_linalg.Mat.cols ctx.xs_panel);
        ctx.u_panel <- Dm_linalg.Mat.zeros b (Dm_linalg.Mat.cols ctx.u_panel)
      end;
      ignore (Dm_linalg.Mat.pack_rows ~into:ctx.xs_panel xs);
      ignore (Dm_linalg.Mat.project_batch ~into:ctx.u_panel ~pt ctx.xs_panel);
      Array.init b (fun i ->
          let m = mechs.(i) in
          (* Seed the projection memo from the panel row, then run the
             ordinary per-request decide: [project_feature] hits the
             memo, so the decision takes the rank-k path with the
             batch-computed (bit-identical) projection. *)
          Dm_linalg.Mat.unpack_row ctx.u_panel i ~into:m.u_buf;
          m.memo_x <- xs.(i);
          m.memo_u <- m.u_buf;
          match decide m ~x:xs.(i) ~reserve:reserves.(i) with
          | d -> d
          | exception e ->
              (* never leave a memo seeded from an input [decide]
                 rejected *)
              m.memo_x <- no_memo;
              raise e)

(* Re-inflate the knowledge set: a fresh ball of radius [radius] at
   the current center, clipped to ‖c‖ ≤ reinflate_radius/2 so a
   full-radius restart is guaranteed to recapture any θ* with
   ‖θ*‖ ≤ reinflate_radius/2 wherever the stale set wandered —
   callers tracking ‖θ*‖ ≤ R pass [reinflate_radius = 2R]. *)
let robust_restart t rs ~radius =
  let r = rs.rcfg.reinflate_radius in
  let c = t.ell.Ellipsoid.center in
  let nrm = Dm_linalg.Vec.norm2 c in
  let center =
    if nrm <= r /. 2. then Array.copy c
    else Dm_linalg.Vec.scale (r /. 2. /. nrm) c
  in
  let shape =
    Dm_linalg.Mat.scaled_identity (Ellipsoid.dim t.ell) (radius *. radius)
  in
  t.ell <- Ellipsoid.make ~center ~shape;
  t.spare <- None;
  t.spare_center <- None;
  t.exposed <- false;
  t.memo_x <- no_memo;
  t.memo_u <- no_memo;
  rs.since_explore <- 0;
  rs.recent <- 0;
  rs.filled <- 0;
  rs.probe_streak <- 0;
  rs.shade <- 0.;
  rs.restarts <- rs.restarts + 1

(* The drift statistic: a posted round contradicts the knowledge set
   when the response lands outside what any θ in the set could produce
   under |noise| ≤ δ — an acceptance at or above p̄+δ (the probe), or a
   rejection at or below p̲−δ (the conservative floor).  Enough
   contradictions inside the sliding window trigger a restart. *)
let robust_observe t rs ~kind ~accepted ~price ~lower ~upper =
  (match kind with
  | Exploratory -> rs.since_explore <- 0
  | Conservative -> rs.since_explore <- rs.since_explore + 1);
  let delta = effective_delta t in
  let is_probe = price >= upper +. delta in
  let at_floor = price <= lower -. delta in
  let contradiction = (accepted && is_probe) || ((not accepted) && at_floor) in
  if is_probe then
    rs.probe_streak <- (if accepted then rs.probe_streak + 1 else 0);
  (* Adapt the floor shading from floor-round outcomes only (a price
     dominated by the reserve says nothing about the floor).  The
     asymmetric steps put the equilibrium rejection rate near
     down/(up+down) ≈ 6%: on a model-matching stream floor rejections
     are (T-horizon-)rare and the shade decays to 0, while a heavy
     lower tail walks it up until rejections are rare again. *)
  (match kind with
  | Conservative when at_floor ->
      let epsilon = t.cfg.epsilon in
      rs.shade <-
        (if accepted then Float.max 0. (rs.shade -. (epsilon /. 256.))
         else Float.min epsilon (rs.shade +. (epsilon /. 16.)))
  | Conservative | Exploratory -> ());
  let mask = (1 lsl rs.rcfg.drift_window) - 1 in
  rs.recent <- ((rs.recent lsl 1) lor Bool.to_int contradiction) land mask;
  rs.filled <- min rs.rcfg.drift_window (rs.filled + 1);
  (* Two restart tiers, picked by what the evidence proves.  A window
     full of floor rejections means the set is globally stale (a
     regime switch can move θ* anywhere) — re-inflate to the full
     configured radius.  A probe streak only proves the market value
     sits a fraction of ε {e above} the set: the truth is nearby, so a
     small ball around the current center relearns it in a handful of
     cheap near-truth cuts instead of a full exploration phase.  If
     the small ball still misses, the probes fire again and the next
     soft restart recenters closer — and a badly stale set falls back
     to the rejection window anyway. *)
  let r = rs.rcfg.reinflate_radius in
  if popcount rs.recent >= rs.rcfg.drift_trigger then
    robust_restart t rs ~radius:r
  else if rs.probe_streak >= probe_streak_trigger then
    robust_restart t rs
      ~radius:(Float.min r (Float.max (8. *. t.cfg.epsilon) (r /. 4.)))

let observe t ~x decision ~accepted =
  let { allow_conservative_cuts; _ } = t.cfg in
  let delta = effective_delta t in
  match decision with
  | Skip -> t.skipped <- t.skipped + 1
  | Post { price; kind; lower; upper } ->
      let cuts =
        match kind with
        | Exploratory ->
            t.exploratory <- t.exploratory + 1;
            true
        | Conservative ->
            t.conservative <- t.conservative + 1;
            allow_conservative_cuts
      in
      if cuts then begin
        (* Ping-pong the shape and center buffer pairs: the outgoing
           ellipsoid's matrix and center become the next cut's
           destinations — unless a caller holds a reference to them
           (see [ellipsoid]), in which case the cut allocates fresh and
           the exposed buffers are dropped.  The transient scratch
           ([b_buf], [neg_buf]) is never retained by a cut, so it is
           recycled unconditionally.  The in-place sparse path
           ([mutate]) may instead consume the current shape buffer
           outright; it is only permitted while no caller can observe
           the mutation. *)
        let into = if t.exposed then None else t.spare in
        let center_into = if t.exposed then None else t.spare_center in
        let mutate = t.cfg.sparse_cuts && not t.exposed in
        let u = project_feature t x in
        let result =
          if accepted then
            (* p ≤ v = φ(x)ᵀθ* + δ_t  ⇒  φ(x)ᵀθ* ≥ p − δ *)
            Ellipsoid.cut_above ?into ~b_into:t.b_buf ?center_into
              ~neg_into:t.neg_buf ~mutate t.ell ~x:u ~price:(price -. delta)
          else
            (* p > v  ⇒  φ(x)ᵀθ* ≤ p + δ *)
            Ellipsoid.cut_below ?into ~b_into:t.b_buf ?center_into ~mutate t.ell
              ~x:u ~price:(price +. delta)
        in
        match result with
        | Ellipsoid.Cut ell' ->
            if ell'.Ellipsoid.shape == t.ell.Ellipsoid.shape then begin
              (* Sparse in-place cut: the shape buffer carried over, so
                 the spare/exposed bookkeeping is untouched — but the
                 center is a fresh copy, so the old one retires.  The
                 sparse path never runs while [exposed]. *)
              t.spare_center <- Some t.ell.Ellipsoid.center;
              t.ell <- ell'
            end
            else begin
              t.spare <-
                (if t.exposed then None else Some t.ell.Ellipsoid.shape);
              t.spare_center <-
                (if t.exposed then None else Some t.ell.Ellipsoid.center);
              t.exposed <- false;
              t.ell <- ell'
            end
        | Ellipsoid.Too_shallow | Ellipsoid.Empty -> ()
      end;
      (match t.robust with
      | Some rs -> robust_observe t rs ~kind ~accepted ~price ~lower ~upper
      | None -> ())

let step t ~x ~reserve ~market_index =
  let decision = decide t ~x ~reserve in
  let accepted =
    match decision with
    | Skip -> false
    | Post { price; _ } -> price <= market_index
  in
  observe t ~x decision ~accepted;
  (decision, accepted)

let exploratory_rounds t = t.exploratory

let conservative_rounds t = t.conservative

let skipped_rounds t = t.skipped

let state_line t =
  Printf.sprintf "%b %h %b %h %d %d %d" t.cfg.variant.use_reserve
    t.cfg.variant.delta t.cfg.allow_conservative_cuts t.cfg.epsilon
    t.exploratory t.conservative t.skipped

let snapshot t =
  match (t.robust, t.proj) with
  | Some rs, _ ->
      (* v3 inserts the robust block between the state line and the
         ellipsoid: configuration, then the live drift-detector state
         (the contradiction bitmask prints as a decimal int). *)
      Printf.sprintf "mechanism/3\n%s\nrobust %d %d %d %h %d %d %d %d %h %d\n%s"
        (state_line t) rs.rcfg.explore_every rs.rcfg.drift_window
        rs.rcfg.drift_trigger rs.rcfg.reinflate_radius rs.since_explore
        rs.recent rs.filled rs.probe_streak rs.shade rs.restarts
        (Ellipsoid.serialize t.ell)
  | None, None ->
      Printf.sprintf "mechanism/1\n%s\n%s" (state_line t)
        (Ellipsoid.serialize t.ell)
  | None, Some (p, err) ->
      (* v2 inserts the projection block between the state line and the
         ellipsoid: one "proj k n err" line, then the row-major entries
         as hex float literals on one line (exact round-trip). *)
      let rows = Dm_linalg.Mat.rows p and cols = Dm_linalg.Mat.cols p in
      let buf = Buffer.create (64 + (24 * rows * cols)) in
      Buffer.add_string buf "mechanism/2\n";
      Buffer.add_string buf (state_line t);
      Printf.bprintf buf "\nproj %d %d %h\n" rows cols err;
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ' ';
          Printf.bprintf buf "%h" v)
        p.Dm_linalg.Mat.data;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Ellipsoid.serialize t.ell);
      Buffer.contents buf

let binary_magic = "dm-mech3"

let binary_magic_v4 = "dm-mech4"

let binary_magic_v5 = "dm-mech5"

(* Same ceiling as the binary ellipsoid codec: a forged dimension must
   not trigger a huge allocation before the length check. *)
let max_proj_dim = 1 lsl 20

let snapshot_binary t =
  let buf =
    Buffer.create (64 + (8 * Ellipsoid.dim t.ell * (Ellipsoid.dim t.ell + 1)))
  in
  Buffer.add_string buf
    (match (t.robust, t.proj) with
    | Some _, _ -> binary_magic_v5
    | None, None -> binary_magic
    | None, Some _ -> binary_magic_v4);
  Serial.add_u8 buf (Bool.to_int t.cfg.variant.use_reserve);
  Serial.add_f64 buf t.cfg.variant.delta;
  Serial.add_u8 buf (Bool.to_int t.cfg.allow_conservative_cuts);
  Serial.add_u8 buf (Bool.to_int t.cfg.sparse_cuts);
  Serial.add_f64 buf t.cfg.epsilon;
  Serial.add_u64 buf t.exploratory;
  Serial.add_u64 buf t.conservative;
  Serial.add_u64 buf t.skipped;
  (match t.robust with
  | None -> ()
  | Some rs ->
      Serial.add_u32 buf rs.rcfg.explore_every;
      Serial.add_u32 buf rs.rcfg.drift_window;
      Serial.add_u32 buf rs.rcfg.drift_trigger;
      Serial.add_f64 buf rs.rcfg.reinflate_radius;
      Serial.add_u64 buf rs.since_explore;
      Serial.add_u64 buf rs.recent;
      Serial.add_u32 buf rs.filled;
      Serial.add_u32 buf rs.probe_streak;
      Serial.add_f64 buf rs.shade;
      Serial.add_u64 buf rs.restarts);
  (match t.proj with
  | None -> ()
  | Some (p, err) ->
      Serial.add_u32 buf (Dm_linalg.Mat.rows p);
      Serial.add_u32 buf (Dm_linalg.Mat.cols p);
      Serial.add_f64 buf err;
      Array.iter (Serial.add_f64 buf) p.Dm_linalg.Mat.data);
  Buffer.add_string buf (Ellipsoid.serialize_binary t.ell);
  Buffer.contents buf

(* Every [restore] error is prefixed "Mechanism.restore: " and names
   the offending line (text format) or absolute byte offset (binary),
   so corrupt-snapshot reports surfaced by crash recovery are
   actionable without hexdumping the file. *)
let fail fmt = Printf.ksprintf (fun m -> Error ("Mechanism.restore: " ^ m)) fmt

exception Restore_failure of string

(* Shared robust-block validation for both snapshot formats; the error
   message is unprefixed so each caller can name the location. *)
let robust_state_of_fields ~explore_every ~drift_window ~drift_trigger
    ~reinflate_radius ~since_explore ~recent ~filled ~probe_streak ~shade
    ~restarts =
  match
    robust_config ~drift_window ~drift_trigger ~explore_every
      ~reinflate_radius ()
  with
  | exception Invalid_argument msg -> Error msg
  | rcfg ->
      if since_explore < 0 then Error "negative since_explore"
      else if recent < 0 || recent land lnot ((1 lsl drift_window) - 1) <> 0
      then Error "contradiction bits outside the drift window"
      else if filled < 0 || filled > drift_window then
        Error "window fill outside [0, drift_window]"
      else if probe_streak < 0 || probe_streak >= probe_streak_trigger then
        Error "probe streak outside [0, probe_streak_trigger)"
      else if not (Float.is_finite shade) || shade < 0. then
        Error "shade must be finite and non-negative"
      else if restarts < 0 then Error "negative restart counter"
      else
        Ok { rcfg; since_explore; recent; filled; probe_streak; shade; restarts }

(* Shared final assembly: validate the config, match the projection
   rank against the ellipsoid dimension, build the mechanism. *)
let assemble ~use_reserve ~delta ~allow ~sparse_cuts ~epsilon ~proj ~robust ~ell
    ~exploratory ~conservative ~skipped =
  match proj with
  | Some (p, _) when Ellipsoid.dim ell <> Dm_linalg.Mat.rows p ->
      fail "ellipsoid dim %d does not match projection rank %d"
        (Ellipsoid.dim ell) (Dm_linalg.Mat.rows p)
  | _ -> (
      match
        config ~allow_conservative_cuts:allow ?sparse_cuts
          ~variant:{ use_reserve; delta } ~epsilon ()
      with
      | exception Invalid_argument msg -> fail "%s" msg
      | cfg ->
          let d = Ellipsoid.dim ell in
          Ok
            {
              cfg;
              robust;
              proj;
              ell;
              exploratory;
              conservative;
              skipped;
              spare = None;
              spare_center = None;
              exposed = false;
              u_buf =
                (match proj with
                | Some _ -> Dm_linalg.Vec.zeros d
                | None -> no_memo);
              b_buf = Dm_linalg.Vec.zeros d;
              neg_buf = Dm_linalg.Vec.zeros d;
              memo_x = no_memo;
              memo_u = no_memo;
            })

let restore_binary ~projected ~robust text =
  let failf fmt = Printf.ksprintf (fun m -> raise (Restore_failure m)) fmt in
  let r = Serial.reader ~pos:(String.length binary_magic) text in
  let flag what =
    let off = r.Serial.pos in
    match Serial.take_u8 r with
    | 0 -> false
    | 1 -> true
    | b -> failf "byte %d: bad %s flag (%d)" off what b
  in
  try
    let use_reserve = flag "use_reserve" in
    let delta = Serial.take_f64 r in
    let allow = flag "allow_conservative_cuts" in
    let sparse_cuts = flag "sparse_cuts" in
    let epsilon = Serial.take_f64 r in
    let exploratory = Serial.take_u64 r in
    let conservative = Serial.take_u64 r in
    let skipped = Serial.take_u64 r in
    let robust =
      if not robust then None
      else begin
        let off = r.Serial.pos in
        let explore_every = Serial.take_u32 r in
        let drift_window = Serial.take_u32 r in
        let drift_trigger = Serial.take_u32 r in
        let reinflate_radius = Serial.take_f64 r in
        let since_explore = Serial.take_u64 r in
        let recent = Serial.take_u64 r in
        let filled = Serial.take_u32 r in
        let probe_streak = Serial.take_u32 r in
        let shade = Serial.take_f64 r in
        let restarts = Serial.take_u64 r in
        match
          robust_state_of_fields ~explore_every ~drift_window ~drift_trigger
            ~reinflate_radius ~since_explore ~recent ~filled ~probe_streak
            ~shade ~restarts
        with
        | Ok rs -> Some rs
        | Error msg -> failf "byte %d: %s" off msg
      end
    in
    let proj =
      if not projected then None
      else begin
        let off = r.Serial.pos in
        let rows = Serial.take_u32 r in
        let cols = Serial.take_u32 r in
        if rows < 1 || rows > max_proj_dim then
          failf "byte %d: bad projection rank (%d)" off rows;
        if cols < 1 || cols > max_proj_dim then
          failf "byte %d: bad projection dim (%d)" off cols;
        let erroff = r.Serial.pos in
        let err = Serial.take_f64 r in
        if not (err >= 0.) || err = infinity then
          failf "byte %d: projection error bound must be finite and \
                 non-negative"
            erroff;
        if Serial.remaining r < 8 * rows * cols then
          raise (Serial.Short r.Serial.pos);
        let dataoff = r.Serial.pos in
        (* [Mat.init] fills row-major ascending, matching the writer. *)
        let p = Dm_linalg.Mat.init rows cols (fun _ _ -> Serial.take_f64 r) in
        if not (Array.for_all Float.is_finite p.Dm_linalg.Mat.data) then
          failf "byte %d: non-finite projection entry" dataoff;
        Some (p, err)
      end
    in
    match Ellipsoid.deserialize_binary ~pos:r.Serial.pos text with
    | Error msg -> fail "ellipsoid: %s" msg
    | Ok ell ->
        assemble ~use_reserve ~delta ~allow ~sparse_cuts:(Some sparse_cuts)
          ~epsilon ~proj ~robust ~ell ~exploratory ~conservative ~skipped
  with
  | Restore_failure m -> Error ("Mechanism.restore: " ^ m)
  | Serial.Short off -> fail "truncated at byte %d" off

let cut_line s =
  match String.index_opt s '\n' with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

(* "proj k n err" plus one line of k·n hex float literals. *)
let parse_text_projection rest =
  match cut_line rest with
  | None -> fail "line 3: truncated projection header"
  | Some (header, rest) -> (
      match
        Scanf.sscanf header "proj %d %d %h" (fun k n err -> (k, n, err))
      with
      | exception Scanf.Scan_failure msg ->
          fail "line 3: bad projection header: %s" msg
      | exception Failure msg -> fail "line 3: bad projection header: %s" msg
      | exception End_of_file -> fail "line 3: bad projection header"
      | k, n, err -> (
          if k < 1 || k > max_proj_dim then
            fail "line 3: bad projection rank (%d)" k
          else if n < 1 || n > max_proj_dim then
            fail "line 3: bad projection dim (%d)" n
          else if not (err >= 0.) || err = infinity then
            fail
              "line 3: projection error bound must be finite and non-negative"
          else
            match cut_line rest with
            | None -> fail "line 4: truncated projection entries"
            | Some (entries, rest) -> (
                let fields =
                  String.split_on_char ' ' entries
                  |> List.filter (fun s -> s <> "")
                in
                if List.length fields <> k * n then
                  fail "line 4: want %d projection entries, got %d" (k * n)
                    (List.length fields)
                else
                  match
                    List.map
                      (fun s ->
                        match float_of_string_opt s with
                        | Some v when Float.is_finite v -> v
                        | _ -> raise (Restore_failure "line 4: bad entry"))
                      fields
                  with
                  | exception Restore_failure m -> fail "%s" m
                  | values ->
                      let a = Array.of_list values in
                      let p =
                        Dm_linalg.Mat.init k n (fun i j -> a.((i * n) + j))
                      in
                      Ok ((p, err), rest))))

(* "robust ee dw dt rr se recent filled probes shade restarts" —
   configuration plus live drift-detector state on one line. *)
let parse_text_robust rest =
  match cut_line rest with
  | None -> fail "line 3: truncated robust line"
  | Some (line, rest) -> (
      match
        Scanf.sscanf line "robust %d %d %d %h %d %d %d %d %h %d"
          (fun ee dw dt rr se rc fl ps sh rst ->
            (ee, dw, dt, rr, se, rc, fl, ps, sh, rst))
      with
      | exception Scanf.Scan_failure msg -> fail "line 3: bad robust line: %s" msg
      | exception Failure msg -> fail "line 3: bad robust line: %s" msg
      | exception End_of_file -> fail "line 3: bad robust line"
      | ee, dw, dt, rr, se, rc, fl, ps, sh, rst -> (
          match
            robust_state_of_fields ~explore_every:ee ~drift_window:dw
              ~drift_trigger:dt ~reinflate_radius:rr ~since_explore:se
              ~recent:rc ~filled:fl ~probe_streak:ps ~shade:sh ~restarts:rst
          with
          | Error msg -> fail "line 3: %s" msg
          | Ok rs -> Ok (rs, rest)))

let restore_text text =
  match cut_line text with
  | None -> fail "line 1: truncated snapshot"
  | Some (header, rest) -> (
      let version =
        match header with
        | "mechanism/1" -> Some 1
        | "mechanism/2" -> Some 2
        | "mechanism/3" -> Some 3
        | _ -> None
      in
      match version with
      | None ->
          fail "line 1: unknown header (want mechanism/1, mechanism/2 or \
                mechanism/3)"
      | Some version -> (
          match cut_line rest with
          | None -> fail "line 2: truncated snapshot"
          | Some (state_line, rest) -> (
              match
                Scanf.sscanf state_line "%B %h %B %h %d %d %d"
                  (fun use_reserve delta allow epsilon e c s ->
                    (use_reserve, delta, allow, epsilon, e, c, s))
              with
              | exception Scanf.Scan_failure msg ->
                  fail "line 2: bad state line: %s" msg
              | exception Failure msg -> fail "line 2: bad state line: %s" msg
              | _, _, _, _, e, _, _ when e < 0 ->
                  fail "line 2: negative exploratory counter (field 5)"
              | _, _, _, _, _, c, _ when c < 0 ->
                  fail "line 2: negative conservative counter (field 6)"
              | _, _, _, _, _, _, s when s < 0 ->
                  fail "line 2: negative skipped counter (field 7)"
              | use_reserve, delta, allow, epsilon, e, c, s -> (
                  let sections =
                    match version with
                    | 1 -> Ok (None, None, rest)
                    | 2 -> (
                        match parse_text_projection rest with
                        | Error msg -> Error msg
                        | Ok (pe, rest) -> Ok (Some pe, None, rest))
                    | _ -> (
                        match parse_text_robust rest with
                        | Error msg -> Error msg
                        | Ok (rs, rest) -> Ok (None, Some rs, rest))
                  in
                  match sections with
                  | Error msg -> Error msg
                  | Ok (proj, robust, ell_text) -> (
                      match Ellipsoid.deserialize ell_text with
                      | Error msg -> fail "ellipsoid section: %s" msg
                      | Ok ell ->
                          assemble ~use_reserve ~delta ~allow ~sparse_cuts:None
                            ~epsilon ~proj ~robust ~ell ~exploratory:e
                            ~conservative:c ~skipped:s)))))

let restore text =
  let starts_with magic =
    let m = String.length magic in
    String.length text >= m && String.sub text 0 m = magic
  in
  if starts_with binary_magic then
    restore_binary ~projected:false ~robust:false text
  else if starts_with binary_magic_v4 then
    restore_binary ~projected:true ~robust:false text
  else if starts_with binary_magic_v5 then
    restore_binary ~projected:false ~robust:true text
  else restore_text text

let te_upper_bound ~radius ~feature_bound ~dim ~epsilon =
  if radius <= 0. || feature_bound <= 0. || dim < 1 || epsilon <= 0. then
    invalid_arg "Mechanism.te_upper_bound: invalid parameters";
  let n = float_of_int dim in
  20. *. n *. n
  *. log (20. *. radius *. feature_bound *. feature_bound *. (n +. 1.) /. epsilon)
