module Serial = Dm_linalg.Serial

type variant = { use_reserve : bool; delta : float }

let check_delta delta =
  (* [not (delta >= 0.)] rather than [delta < 0.]: NaN answers false to
     both comparisons, so the former also rejects it. *)
  if not (delta >= 0.) || delta = infinity then
    invalid_arg "Mechanism: uncertainty buffer must be finite and non-negative"

let pure = { use_reserve = false; delta = 0. }

let with_reserve = { use_reserve = true; delta = 0. }

let with_uncertainty ~delta =
  check_delta delta;
  { use_reserve = false; delta }

let with_reserve_and_uncertainty ~delta =
  check_delta delta;
  { use_reserve = true; delta }

let variant_name = function
  | { use_reserve = false; delta = 0. } -> "pure version"
  | { use_reserve = false; _ } -> "with uncertainty"
  | { use_reserve = true; delta = 0. } -> "with reserve price"
  | { use_reserve = true; _ } -> "with reserve price and uncertainty"

type config = {
  variant : variant;
  epsilon : float;
  allow_conservative_cuts : bool;
  sparse_cuts : bool;
}

let config ?(allow_conservative_cuts = false) ?(sparse_cuts = true) ~variant
    ~epsilon () =
  if not (epsilon > 0.) || epsilon = infinity then
    invalid_arg "Mechanism.config: epsilon must be finite and positive";
  check_delta variant.delta;
  { variant; epsilon; allow_conservative_cuts; sparse_cuts }

type t = {
  cfg : config;
  mutable ell : Ellipsoid.t;
  mutable exploratory : int;
  mutable conservative : int;
  mutable skipped : int;
  mutable spare : Dm_linalg.Mat.t option;
      (* retired shape buffer, reused as the next cut's destination *)
  mutable exposed : bool;
      (* the current ellipsoid escaped through [ellipsoid]: its shape
         may be retained by the caller, so it must not be recycled *)
}

let create cfg ell =
  {
    cfg;
    ell;
    exploratory = 0;
    conservative = 0;
    skipped = 0;
    spare = None;
    exposed = false;
  }

let ellipsoid t =
  t.exposed <- true;
  t.ell

let config_of t = t.cfg

type kind = Exploratory | Conservative

type decision =
  | Skip
  | Post of { price : float; kind : kind; lower : float; upper : float }

let check_finite_vec name x =
  if not (Array.for_all Float.is_finite x) then
    invalid_arg (name ^ ": non-finite feature vector")

let decide t ~x ~reserve =
  check_finite_vec "Mechanism.decide" x;
  let { variant = { use_reserve; delta }; epsilon; _ } = t.cfg in
  (* A NaN reserve would silently disable both the skip test and the
     price floor; −∞ (no reserve) and +∞ (unsellable) are fine. *)
  if use_reserve && Float.is_nan reserve then
    invalid_arg "Mechanism.decide: NaN reserve";
  let q = if use_reserve then reserve else neg_infinity in
  let { Ellipsoid.lower; upper; mid; half_width } = Ellipsoid.bounds t.ell ~x in
  if use_reserve && q >= upper +. delta then Skip
  else if 2. *. half_width > epsilon then
    Post { price = Float.max q mid; kind = Exploratory; lower; upper }
  else
    Post { price = Float.max q (lower -. delta); kind = Conservative; lower; upper }

let observe t ~x decision ~accepted =
  let { variant = { delta; _ }; allow_conservative_cuts; _ } = t.cfg in
  match decision with
  | Skip -> t.skipped <- t.skipped + 1
  | Post { price; kind; _ } ->
      let cuts =
        match kind with
        | Exploratory ->
            t.exploratory <- t.exploratory + 1;
            true
        | Conservative ->
            t.conservative <- t.conservative + 1;
            allow_conservative_cuts
      in
      if cuts then begin
        (* Ping-pong the two shape buffers: the outgoing ellipsoid's
           matrix becomes the next cut's destination — unless a caller
           holds a reference to it (see [ellipsoid]), in which case the
           cut allocates fresh and the exposed buffer is dropped.  The
           in-place sparse path ([mutate]) may instead consume the
           current shape buffer outright; it is only permitted while no
           caller can observe the mutation. *)
        let into = if t.exposed then None else t.spare in
        let mutate = t.cfg.sparse_cuts && not t.exposed in
        let result =
          if accepted then
            (* p ≤ v = φ(x)ᵀθ* + δ_t  ⇒  φ(x)ᵀθ* ≥ p − δ *)
            Ellipsoid.cut_above ?into ~mutate t.ell ~x ~price:(price -. delta)
          else
            (* p > v  ⇒  φ(x)ᵀθ* ≤ p + δ *)
            Ellipsoid.cut_below ?into ~mutate t.ell ~x ~price:(price +. delta)
        in
        match result with
        | Ellipsoid.Cut ell' ->
            if ell'.Ellipsoid.shape == t.ell.Ellipsoid.shape then
              (* Sparse in-place cut: the shape buffer carried over, so
                 the spare/exposed bookkeeping is untouched. *)
              t.ell <- ell'
            else begin
              t.spare <-
                (if t.exposed then None else Some t.ell.Ellipsoid.shape);
              t.exposed <- false;
              t.ell <- ell'
            end
        | Ellipsoid.Too_shallow | Ellipsoid.Empty -> ()
      end

let step t ~x ~reserve ~market_index =
  let decision = decide t ~x ~reserve in
  let accepted =
    match decision with
    | Skip -> false
    | Post { price; _ } -> price <= market_index
  in
  observe t ~x decision ~accepted;
  (decision, accepted)

let exploratory_rounds t = t.exploratory

let conservative_rounds t = t.conservative

let skipped_rounds t = t.skipped

let snapshot t =
  Printf.sprintf "mechanism/1\n%b %h %b %h %d %d %d\n%s"
    t.cfg.variant.use_reserve t.cfg.variant.delta
    t.cfg.allow_conservative_cuts t.cfg.epsilon t.exploratory t.conservative
    t.skipped (Ellipsoid.serialize t.ell)

let binary_magic = "dm-mech3"

let snapshot_binary t =
  let buf = Buffer.create (64 + (8 * Ellipsoid.dim t.ell * (Ellipsoid.dim t.ell + 1))) in
  Buffer.add_string buf binary_magic;
  Serial.add_u8 buf (Bool.to_int t.cfg.variant.use_reserve);
  Serial.add_f64 buf t.cfg.variant.delta;
  Serial.add_u8 buf (Bool.to_int t.cfg.allow_conservative_cuts);
  Serial.add_u8 buf (Bool.to_int t.cfg.sparse_cuts);
  Serial.add_f64 buf t.cfg.epsilon;
  Serial.add_u64 buf t.exploratory;
  Serial.add_u64 buf t.conservative;
  Serial.add_u64 buf t.skipped;
  Buffer.add_string buf (Ellipsoid.serialize_binary t.ell);
  Buffer.contents buf

(* Every [restore] error is prefixed "Mechanism.restore: " and names
   the offending line (text format) or absolute byte offset (binary),
   so corrupt-snapshot reports surfaced by crash recovery are
   actionable without hexdumping the file. *)
let fail fmt = Printf.ksprintf (fun m -> Error ("Mechanism.restore: " ^ m)) fmt

exception Restore_failure of string

let restore_binary text =
  let failf fmt = Printf.ksprintf (fun m -> raise (Restore_failure m)) fmt in
  let r = Serial.reader ~pos:(String.length binary_magic) text in
  let flag what =
    let off = r.Serial.pos in
    match Serial.take_u8 r with
    | 0 -> false
    | 1 -> true
    | b -> failf "byte %d: bad %s flag (%d)" off what b
  in
  try
    let use_reserve = flag "use_reserve" in
    let delta = Serial.take_f64 r in
    let allow = flag "allow_conservative_cuts" in
    let sparse_cuts = flag "sparse_cuts" in
    let epsilon = Serial.take_f64 r in
    let exploratory = Serial.take_u64 r in
    let conservative = Serial.take_u64 r in
    let skipped = Serial.take_u64 r in
    match Ellipsoid.deserialize_binary ~pos:r.Serial.pos text with
    | Error msg -> fail "ellipsoid: %s" msg
    | Ok ell -> (
        match
          config ~allow_conservative_cuts:allow ~sparse_cuts
            ~variant:{ use_reserve; delta } ~epsilon ()
        with
        | exception Invalid_argument msg -> fail "%s" msg
        | cfg ->
            Ok
              {
                cfg;
                ell;
                exploratory;
                conservative;
                skipped;
                spare = None;
                exposed = false;
              })
  with
  | Restore_failure m -> Error ("Mechanism.restore: " ^ m)
  | Serial.Short off -> fail "truncated at byte %d" off

let restore_text text =
  match String.index_opt text '\n' with
  | None -> fail "line 1: truncated snapshot"
  | Some i -> (
      if String.sub text 0 i <> "mechanism/1" then
        fail "line 1: unknown header (want mechanism/1)"
      else
        let rest = String.sub text (i + 1) (String.length text - i - 1) in
        match String.index_opt rest '\n' with
        | None -> fail "line 2: truncated snapshot"
        | Some j -> (
            let state_line = String.sub rest 0 j in
            let ell_text = String.sub rest (j + 1) (String.length rest - j - 1) in
            match
              Scanf.sscanf state_line "%B %h %B %h %d %d %d"
                (fun use_reserve delta allow epsilon e c s ->
                  (use_reserve, delta, allow, epsilon, e, c, s))
            with
            | exception Scanf.Scan_failure msg ->
                fail "line 2: bad state line: %s" msg
            | exception Failure msg -> fail "line 2: bad state line: %s" msg
            | _, _, _, _, e, _, _ when e < 0 ->
                fail "line 2: negative exploratory counter (field 5)"
            | _, _, _, _, _, c, _ when c < 0 ->
                fail "line 2: negative conservative counter (field 6)"
            | _, _, _, _, _, _, s when s < 0 ->
                fail "line 2: negative skipped counter (field 7)"
            | use_reserve, delta, allow, epsilon, e, c, s -> (
                match Ellipsoid.deserialize ell_text with
                | Error msg -> fail "ellipsoid section at line 3: %s" msg
                | Ok ell -> (
                    match
                      config ~allow_conservative_cuts:allow
                        ~variant:{ use_reserve; delta } ~epsilon ()
                    with
                    | exception Invalid_argument msg -> fail "line 2: %s" msg
                    | cfg ->
                        Ok
                          {
                            cfg;
                            ell;
                            exploratory = e;
                            conservative = c;
                            skipped = s;
                            spare = None;
                            exposed = false;
                          }))))

let restore text =
  let m = String.length binary_magic in
  if String.length text >= m && String.sub text 0 m = binary_magic then
    restore_binary text
  else restore_text text

let te_upper_bound ~radius ~feature_bound ~dim ~epsilon =
  if radius <= 0. || feature_bound <= 0. || dim < 1 || epsilon <= 0. then
    invalid_arg "Mechanism.te_upper_bound: invalid parameters";
  let n = float_of_int dim in
  20. *. n *. n
  *. log (20. *. radius *. feature_bound *. feature_bound *. (n +. 1.) /. epsilon)
