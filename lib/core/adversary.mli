(** The Lemma-8 adversary: why conservative prices must not cut.

    The adversary sends queries along the first coordinate for the
    first half of the horizon with the reserve price pinned to the
    current middle price, then switches to the second coordinate with
    no reserve.  If the broker (wrongly) refines the ellipsoid on
    conservative feedback, the first half keeps halving the width
    along e₁ while every other axis *expands* by n/√(n²−1) per cut;
    by mid-horizon the width along e₂ is exponentially large and the
    second half needs Ω(T) exploratory rounds — Ω(T) worst-case
    regret.  With the guard in place (Line 24 / 28 of the
    algorithms), the same sequence costs only O(log) exploratory
    rounds. *)

type outcome = {
  result : Broker.result;
  exploratory_second_half : int;
      (** exploratory rounds spent after the coordinate switch *)
  width_e2_at_switch : float;
      (** the ellipsoid's width along e₂ when the adversary switches *)
}

val run :
  ?epsilon:float ->
  ?radius:float ->
  allow_conservative_cuts:bool ->
  dim:int ->
  rounds:int ->
  unit ->
  outcome
(** Play the adversarial sequence against Algorithm 1 (with reserve,
    no uncertainty) for [rounds] rounds in dimension [dim ≥ 2].
    Defaults: [radius = 1] (the Lemma-8 normalization R = S = 1) and
    [epsilon = 1e-3].

    With [allow_conservative_cuts:true] the off-axis widths grow by
    n/√(n²−1) per first-half cut, so the width along e₂ climbs
    geometrically toward float max.  The run probes that width every
    first-half round and raises [Invalid_argument "Adversary.run:
    ..."] the moment it stops being finite, instead of returning
    inf/nan regret rows — at dim 2 a radius of 1e100 diverges after
    ~870 cuts.  At the default radius the overflow never arrives: the
    squared width along the attacked axis e₁ underflows to zero first
    (~920 cuts at dim 2) and every width freezes where it stands, so
    long unit-radius horizons complete with a finite (saturated)
    blow-up rather than raising. *)
