(** Discretized exponential-weights over a finite action grid.

    The multiplicative-weights learner behind the personalized-reserve
    auction policies (Derakhshan, Golrezaei & Paes Leme, "Data-Driven
    Optimization of Personalized Reserve Prices", PAPERS.md): each
    action is one point of a discretized reserve grid, each round
    reveals a payoff per action in [0, payoff_bound], and the learner
    samples an action with probability proportional to
    [(1 + rate)^(V_j / payoff_bound)] where [V_j] is the cumulative
    payoff of action [j].  Against any stationary stream the expected
    regret to the best fixed action is O(√(T·log K)·payoff_bound) at
    the {!default_rate}.

    Two feedback modes share the state: {!update} takes the full
    payoff vector (the broker can evaluate every reserve against the
    revealed bids), while {!update_bandit} takes only the chosen
    action's payoff and applies the EXP3 importance-weighted estimate
    — construct bandit learners with a positive [mix] so the sampling
    distribution keeps every action's probability bounded away from 0.

    All randomness flows through the caller's {!Dm_prob.Rng}; one
    {!choose} consumes exactly one draw, so trajectories replay
    bit-for-bit from a seed. *)

type t

val create : ?mix:float -> arms:int -> payoff_bound:float -> rate:float -> unit -> t
(** Fresh learner over [arms] actions with payoffs in
    [0, payoff_bound].  [mix ∈ \[0, 1\]] (default 0) blends the
    exponential-weights distribution with the uniform one:
    [(1 − mix)·p + mix/K] — the EXP3 exploration floor required for
    unbiased bandit estimates.  Raises [Invalid_argument] unless
    [arms ≥ 1], [payoff_bound] is finite and positive, [rate] is
    finite and positive, and [mix] lies in [0, 1]. *)

val default_rate : arms:int -> horizon:int -> float
(** The theory-suggested learning rate [√(log K / T)] (floored at a
    small positive constant), balancing the regret bound at
    O(√(T·log K)).  Requires [arms ≥ 1] and [horizon ≥ 1]. *)

val arms : t -> int

val probabilities : t -> float array
(** The current sampling distribution (mix included); a fresh array.
    Computed in log space, so it stays finite at any cumulative
    payoff. *)

val choose : t -> Dm_prob.Rng.t -> int
(** Sample an action from {!probabilities} — exactly one [Rng] draw. *)

val update : t -> payoffs:float array -> unit
(** Full-information step: add the revealed payoff of every action to
    its cumulative total.  Raises [Invalid_argument] on a length
    mismatch or a payoff outside [0, payoff_bound]. *)

val update_bandit : t -> arm:int -> payoff:float -> unit
(** Bandit step: credit [payoff / p(arm)] to the chosen action only,
    where [p] is the current sampling distribution — the EXP3
    unbiased estimator of the full payoff vector.  Raises
    [Invalid_argument] on an out-of-range arm or payoff. *)

val cumulative : t -> float array
(** Per-action cumulative (full-information) or estimated (bandit)
    payoffs; a fresh array. *)

val best_arm : t -> int
(** The action with the highest cumulative payoff — the best fixed
    action in hindsight under full information (ties break to the
    lowest index). *)
