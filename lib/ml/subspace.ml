module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Eigen = Dm_linalg.Eigen
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist

type t = {
  mean : Vec.t;
  components : Mat.t;
  explained_variance : Vec.t;
  total_variance : float;
}

(* The iterate matrices are k×d with d up to 16,384; the O(k²·d)
   Gram–Schmidt pass below works on the flat row-major [Mat.data]
   array directly (the type is private, fields readable) so the inner
   loops stay allocation free. *)

let row_dot data d a b =
  let abase = a * d and bbase = b * d in
  let acc = ref 0. in
  for j = 0 to d - 1 do
    acc := !acc +. (data.(abase + j) *. data.(bbase + j))
  done;
  !acc

(* Modified Gram–Schmidt over the rows of [q], in place, ascending,
   with the "twice is enough" re-orthogonalization rule: a sweep that
   cancels most of a row's mass leaves a residual whose direction is
   dominated by rounding noise, so it gets a second sweep before we
   trust it.  A row that still degenerates (numerically in the span of
   its predecessors) is replaced by a fresh Gaussian draw and
   re-orthogonalized, so the result always has exactly [k] orthonormal
   rows. *)
let orthonormalize_rows ~rng q =
  let k = Mat.rows q and d = Mat.cols q in
  let data = (q : Mat.t).Mat.data in
  for i = 0 to k - 1 do
    let base = i * d in
    let sweep () =
      for r = 0 to i - 1 do
        let c = row_dot data d i r in
        if c <> 0. then begin
          let rbase = r * d in
          for j = 0 to d - 1 do
            data.(base + j) <- data.(base + j) -. (c *. data.(rbase + j))
          done
        end
      done;
      sqrt (row_dot data d i i)
    in
    let attempts = ref 0 in
    let rec fix () =
      let before = sqrt (row_dot data d i i) in
      let after = sweep () in
      let after = if after < 0.5 *. before then sweep () else after in
      if after > 1e-150 && after > 1e-10 *. before then
        for j = 0 to d - 1 do
          data.(base + j) <- data.(base + j) /. after
        done
      else begin
        incr attempts;
        if !attempts > 8 then
          invalid_arg "Subspace.fit: cannot orthonormalize iterate";
        for j = 0 to d - 1 do
          data.(base + j) <- Dist.normal rng ~mean:0. ~std:1.
        done;
        fix ()
      end
    in
    fix ()
  done

let fit ?(iters = 2) ~rng ~components:k x =
  let rows, cols = Mat.dims x in
  if rows < 2 then invalid_arg "Subspace.fit: need at least 2 rows";
  if iters < 0 then invalid_arg "Subspace.fit: negative iteration count";
  let k = min (max k 1) cols in
  let mean = Vec.init cols (fun j -> Vec.mean (Mat.col x j)) in
  let xc = Mat.init rows cols (fun i j -> Mat.get x i j -. Vec.get mean j) in
  let denom = 1. /. float_of_int (rows - 1) in
  let total_variance =
    let acc = ref 0. in
    Array.iter (fun v -> acc := !acc +. (v *. v)) (xc : Mat.t).Mat.data;
    !acc *. denom
  in
  (* Randomized subspace iteration (Halko–Martinsson–Tropp): iterate
     Q ← orth(rows of Qᵀ-image under XcᵀXc) without ever forming the
     d×d covariance — only the tall-skinny products W = Xc·Qᵀ (m×k)
     and Z = Wᵀ·Xc (k×d), both through the pooled kernels. *)
  let q = Mat.init k cols (fun _ _ -> Dist.normal rng ~mean:0. ~std:1.) in
  orthonormalize_rows ~rng q;
  let qdata = (q : Mat.t).Mat.data in
  for _ = 1 to iters do
    let w = Mat.matmul_tt xc q in
    for r = 0 to k - 1 do
      let zr = Mat.project_t xc (Mat.col w r) in
      Array.blit zr 0 qdata (r * cols) cols
    done;
    orthonormalize_rows ~rng q
  done;
  (* Rayleigh–Ritz on the captured subspace: the restriction of the
     sample covariance to span(Q) is B = WᵀW/(m−1), a k×k symmetric
     matrix the Jacobi solver handles in O(k³). *)
  let w = Mat.matmul_tt xc q in
  let wt = Mat.transpose w in
  let b = Mat.scale denom (Mat.matmul_tt wt wt) in
  Mat.symmetrize_inplace b;
  let { Eigen.eigenvalues; eigenvectors } = Eigen.decompose b in
  let components = Mat.zeros k cols in
  let cdata = (components : Mat.t).Mat.data in
  for i = 0 to k - 1 do
    let row = Mat.project_t q (Mat.col eigenvectors i) in
    Array.blit row 0 cdata (i * cols) cols
  done;
  {
    mean;
    components;
    explained_variance = Vec.init k (fun i -> Vec.get eigenvalues i);
    total_variance;
  }

let transform ?into t sample =
  Mat.project ?into t.components (Vec.sub sample t.mean)

let residual_norm t sample =
  let c = Vec.sub sample t.mean in
  let u = Mat.project t.components c in
  let back = Mat.project_t t.components u in
  Vec.dist2 c back

let explained_ratio t =
  if t.total_variance <= 0. then 1.
  else
    Float.min 1.
      (Float.max 0. (Vec.sum t.explained_variance /. t.total_variance))
