(** Principal Components Analysis.

    Section II-B names PCA as the celebrated dimensionality-reduction
    option when the raw privacy-compensation vector (one entry per
    data owner) is prohibitively high-dimensional.  The fit
    diagonalizes the sample covariance with the Jacobi eigensolver. *)

type t = {
  mean : Dm_linalg.Vec.t;
  components : Dm_linalg.Mat.t;
      (** [k × d]; row [i] is the i-th principal direction *)
  explained_variance : Dm_linalg.Vec.t;  (** descending eigenvalues, length k *)
  total_variance : float;  (** trace of the sample covariance *)
}

val fit : ?components:int -> Dm_linalg.Mat.t -> t
(** [fit ~components:k x] learns the top-[k] directions of the rows of
    [x] (default: all).  Requires at least 2 rows; [k] is clamped to
    the feature dimension. *)

val transform : ?into:Dm_linalg.Vec.t -> t -> Dm_linalg.Vec.t -> Dm_linalg.Vec.t
(** Project a (centered internally) sample onto the components —
    {!Dm_linalg.Mat.project} under the hood.  [into], when given,
    receives the k-vector result, so hot paths that transform per
    round stop allocating. *)

val transform_all : t -> Dm_linalg.Mat.t -> Dm_linalg.Mat.t
(** Transform every row of a sample matrix in one pooled tall-skinny
    product ({!Dm_linalg.Mat.matmul_tt} on the centered rows) —
    bit-identical to calling {!transform} row by row, at any worker
    count. *)

val reconstruct : t -> Dm_linalg.Vec.t -> Dm_linalg.Vec.t
(** Map a projection back to the original space (lossy if k < d). *)

val explained_ratio : t -> float
(** Fraction of total variance captured by the kept components, in
    [0, 1].  Meaningful only when the fit kept fewer than all
    components of a full-rank covariance. *)
