module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Eigen = Dm_linalg.Eigen

type t = {
  mean : Vec.t;
  components : Mat.t;
  explained_variance : Vec.t;
  total_variance : float;
}

let fit ?components x =
  let rows, cols = Mat.dims x in
  if rows < 2 then invalid_arg "Pca.fit: need at least 2 rows";
  let k = match components with None -> cols | Some k -> min (max k 1) cols in
  let mean = Vec.init cols (fun j -> Vec.mean (Mat.col x j)) in
  (* Sample covariance (n−1 denominator). *)
  let cov = Mat.zeros cols cols in
  for i = 0 to rows - 1 do
    let centered = Vec.sub (Mat.row x i) mean in
    Mat.rank_one_update cov (1. /. float_of_int (rows - 1)) centered
  done;
  let { Eigen.eigenvalues; eigenvectors } = Eigen.decompose cov in
  let components = Mat.init k cols (fun i j -> Mat.get eigenvectors j i) in
  {
    mean;
    components;
    explained_variance = Vec.slice eigenvalues ~pos:0 ~len:k;
    total_variance = Mat.trace cov;
  }

let transform ?into t sample =
  Mat.project ?into t.components (Vec.sub sample t.mean)

let transform_all t x =
  let rows, cols = Mat.dims x in
  if cols <> Vec.dim t.mean then
    invalid_arg "Pca.transform_all: dimension mismatch";
  (* One pooled tall-skinny product Xc·Cᵀ instead of a matvec per row;
     each output element keeps the ascending-feature reduction order of
     [transform], so the batch and per-sample paths agree
     bit-for-bit. *)
  let centered =
    Mat.init rows cols (fun i j -> Mat.get x i j -. Vec.get t.mean j)
  in
  Mat.matmul_tt centered t.components

let reconstruct t projection =
  Vec.add (Mat.matvec_t t.components projection) t.mean

let explained_ratio t =
  if t.total_variance <= 0. then 1.
  else
    Float.min 1. (Float.max 0. (Vec.sum t.explained_variance /. t.total_variance))
