module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist

type t = {
  arms : int;
  bound : float;
  scale : float;  (* perturbation mean: payoff_bound / rate *)
  resamples : int;
  hallucinations : float array;
  cumulative : float array;
  rng : Rng.t;  (* fresh perturbations + bandit probability estimates *)
}

let perturbation rng ~scale = scale *. Dist.exponential rng ~rate:1.

let create ?(resamples = 32) ~arms ~payoff_bound ~rate ~rng () =
  if arms < 1 then invalid_arg "Ftpl.create: arms must be >= 1";
  if not (Float.is_finite payoff_bound) || payoff_bound <= 0. then
    invalid_arg "Ftpl.create: payoff_bound must be finite and positive";
  if not (Float.is_finite rate) || rate <= 0. then
    invalid_arg "Ftpl.create: rate must be finite and positive";
  if resamples < 1 then invalid_arg "Ftpl.create: resamples must be >= 1";
  let scale = payoff_bound /. rate in
  let hallucinations =
    Array.init arms (fun _ -> perturbation rng ~scale)
  in
  {
    arms;
    bound = payoff_bound;
    scale;
    resamples;
    hallucinations;
    cumulative = Array.make arms 0.;
    rng = Rng.split rng;
  }

let arms t = t.arms

(* Leader of [V + noise] with deterministic lowest-index tie-breaking
   (strict > keeps the earliest maximizer). *)
let leader t noise =
  let best = ref 0 in
  let score j = t.cumulative.(j) +. noise j in
  let best_score = ref (score 0) in
  for j = 1 to t.arms - 1 do
    let s = score j in
    if s > !best_score then begin
      best := j;
      best_score := s
    end
  done;
  !best

let choose t = leader t (fun j -> t.hallucinations.(j))

let choose_fresh t =
  let noise = Array.init t.arms (fun _ -> perturbation t.rng ~scale:t.scale) in
  leader t (fun j -> noise.(j))

let check_payoff who t v =
  if not (Float.is_finite v) || v < 0. || v > t.bound then
    invalid_arg (Printf.sprintf "Ftpl.%s: payoff outside [0, %g]" who t.bound)

let update t ~payoffs =
  if Array.length payoffs <> t.arms then
    invalid_arg "Ftpl.update: payoff vector length mismatch";
  Array.iter (check_payoff "update" t) payoffs;
  for j = 0 to t.arms - 1 do
    t.cumulative.(j) <- t.cumulative.(j) +. payoffs.(j)
  done

let update_bandit t ~arm ~payoff =
  if arm < 0 || arm >= t.arms then
    invalid_arg "Ftpl.update_bandit: arm out of range";
  check_payoff "update_bandit" t payoff;
  let hits = ref 0 in
  for _ = 1 to t.resamples do
    if choose_fresh t = arm then incr hits
  done;
  let m = float_of_int t.resamples in
  let p = Float.max (float_of_int !hits /. m) (1. /. (2. *. m)) in
  t.cumulative.(arm) <- t.cumulative.(arm) +. (payoff /. p)

let cumulative t = Array.copy t.cumulative

let best_arm t =
  let best = ref 0 in
  for j = 1 to t.arms - 1 do
    if t.cumulative.(j) > t.cumulative.(!best) then best := j
  done;
  !best
