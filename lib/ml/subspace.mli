(** Randomized subspace iteration for the top-k principal directions.

    {!Pca.fit} diagonalizes the full d×d sample covariance with the
    O(d³) Jacobi solver, which is unusable at the d = 16,384 the
    high-dimensional pricing path targets.  This module never forms
    the covariance: it iterates a k×d orthonormal row basis Q under
    the data — W = Xc·Qᵀ and Z = Wᵀ·Xc, both tall-skinny products
    running through the pooled {!Dm_linalg.Mat.matmul_tt} /
    {!Dm_linalg.Mat.project_t} kernels — and finishes with a k×k
    Rayleigh–Ritz eigenproblem (Halko–Martinsson–Tropp).  Total cost
    O(iters·(m·k·d + k²·d) + k³) for m samples, against Jacobi's
    O(d³) per sweep.

    All randomness (the Gaussian start basis, degenerate-row rescue
    draws) flows through the caller's {!Dm_prob.Rng} stream, so fits
    replay bit-for-bit from a seed. *)

type t = {
  mean : Dm_linalg.Vec.t;  (** column means of the fitted sample *)
  components : Dm_linalg.Mat.t;
      (** [k × d]; orthonormal rows, row [i] is the i-th estimated
          principal direction *)
  explained_variance : Dm_linalg.Vec.t;
      (** descending Rayleigh–Ritz eigenvalues, length k — estimates
          of the top-k sample-covariance eigenvalues *)
  total_variance : float;  (** trace of the sample covariance *)
}

val fit : ?iters:int -> rng:Dm_prob.Rng.t -> components:int -> Dm_linalg.Mat.t -> t
(** [fit ~rng ~components:k x] estimates the top-[k] principal
    directions of the rows of [x] ([k] clamped to the feature
    dimension, at least 1).  [iters] (default 2) is the number of
    subspace-iteration power steps; accuracy improves geometrically in
    the spectral-gap ratio per step, and 2 suffices when the kept
    spectrum dominates the tail.  Requires at least 2 rows; raises
    [Invalid_argument] otherwise. *)

val transform : ?into:Dm_linalg.Vec.t -> t -> Dm_linalg.Vec.t -> Dm_linalg.Vec.t
(** Project a sample (centered internally) onto the components —
    {!Dm_linalg.Mat.project} under the hood.  [into], when given,
    receives the k-vector result without allocating. *)

val residual_norm : t -> Dm_linalg.Vec.t -> float
(** [residual_norm t x] is [‖c − Pᵀ·P·c‖₂] for [c = x − mean] — the
    reconstruction error of one sample, i.e. the mass outside the
    fitted subspace.  This is the per-sample quantity the projected
    pricing path turns into its misspecification budget. *)

val explained_ratio : t -> float
(** Fraction of total variance captured by the kept components, in
    [0, 1] (same convention as {!Pca.explained_ratio}). *)
