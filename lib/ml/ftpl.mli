(** Follow-the-perturbed-leader over a finite action grid.

    The second discretized-reserve learner of the auction front-end
    (SNIPPETS.md 3's evaluation protocol): each action's cumulative
    payoff is hallucinated upward by a one-shot random perturbation
    drawn at creation, and the learner deterministically plays the
    perturbed leader.  Perturbations are exponential with mean
    [payoff_bound / rate], so the {!Exp_weights.default_rate} gives
    the O(√(T·log K)·payoff_bound) regret trade-off.

    Feedback modes:

    - full information ({!choose} + {!update}): the perturbation is
      frozen at creation, so the whole trajectory is a pure function
      of (seed, payoff stream) — the classic "be the perturbed leader"
      protocol;
    - bandit ({!choose_fresh} + {!update_bandit}): the perturbation is
      redrawn on every choice, and the chosen action's payoff is
      importance-weighted by a Monte-Carlo estimate of its selection
      probability (resampling fresh perturbations against the current
      totals — geometric-resampling style).  The estimate is floored
      at [1/(2·resamples)], which bounds the variance at the price of
      a small bias on rarely-chosen actions.

    All randomness comes from the [rng] captured at creation
    ({!Dm_prob.Rng.split} a child for each learner); draw counts per
    call are fixed, so trajectories replay bit-for-bit. *)

type t

val create :
  ?resamples:int ->
  arms:int ->
  payoff_bound:float ->
  rate:float ->
  rng:Dm_prob.Rng.t ->
  unit ->
  t
(** Fresh learner: draws the [arms] one-shot perturbations from [rng]
    immediately and keeps a split child for {!choose_fresh} and the
    bandit probability estimates.  [resamples] (default 32) sets the
    Monte-Carlo sample count of {!update_bandit}.  Raises
    [Invalid_argument] unless [arms ≥ 1], [payoff_bound] is finite
    and positive, [rate] is finite and positive, and
    [resamples ≥ 1]. *)

val arms : t -> int

val choose : t -> int
(** The perturbed leader under the frozen creation-time perturbation:
    [argmax_j (hallucination_j + V_j)], ties to the lowest index.
    Pure — no randomness is consumed. *)

val choose_fresh : t -> int
(** The perturbed leader under a freshly drawn perturbation ([arms]
    exponential draws) — the per-round randomization the bandit
    variant needs. *)

val update : t -> payoffs:float array -> unit
(** Full-information step; same contract as
    {!Exp_weights.update}. *)

val update_bandit : t -> arm:int -> payoff:float -> unit
(** Bandit step: estimate [p(arm)] by replaying [resamples] fresh
    perturbations against the current totals, then credit
    [payoff / max(p̂, 1/(2·resamples))] to the chosen action.
    Consumes [resamples·arms] draws.  Raises
    [Invalid_argument] on an out-of-range arm or payoff. *)

val cumulative : t -> float array
(** Per-action cumulative (or bandit-estimated) payoffs; a fresh
    array. *)

val best_arm : t -> int
(** Highest cumulative payoff, ties to the lowest index. *)
