module Rng = Dm_prob.Rng

type t = {
  arms : int;
  bound : float;
  rate : float;
  mix : float;
  cumulative : float array;
}

let create ?(mix = 0.) ~arms ~payoff_bound ~rate () =
  if arms < 1 then invalid_arg "Exp_weights.create: arms must be >= 1";
  if not (Float.is_finite payoff_bound) || payoff_bound <= 0. then
    invalid_arg "Exp_weights.create: payoff_bound must be finite and positive";
  if not (Float.is_finite rate) || rate <= 0. then
    invalid_arg "Exp_weights.create: rate must be finite and positive";
  if not (Float.is_finite mix) || mix < 0. || mix > 1. then
    invalid_arg "Exp_weights.create: mix outside [0, 1]";
  { arms; bound = payoff_bound; rate; mix; cumulative = Array.make arms 0. }

let default_rate ~arms ~horizon =
  if arms < 1 then invalid_arg "Exp_weights.default_rate: arms must be >= 1";
  if horizon < 1 then
    invalid_arg "Exp_weights.default_rate: horizon must be >= 1";
  Float.max 1e-3
    (sqrt (log (float_of_int (max 2 arms)) /. float_of_int horizon))

let arms t = t.arms

(* Weights (1 + rate)^(V_j / h) computed in log space with the max
   shifted out, so the normalization never overflows whatever the
   cumulative payoffs. *)
let probabilities t =
  let k = t.arms in
  let log_base = log1p t.rate /. t.bound in
  let m = Array.fold_left Float.max neg_infinity t.cumulative in
  let w = Array.map (fun v -> exp ((v -. m) *. log_base)) t.cumulative in
  let z = Array.fold_left ( +. ) 0. w in
  let u = t.mix /. float_of_int k in
  Array.map (fun wi -> ((1. -. t.mix) *. wi /. z) +. u) w

let choose t rng =
  let p = probabilities t in
  let u = Rng.float rng in
  let acc = ref 0. and arm = ref (t.arms - 1) in
  (try
     for j = 0 to t.arms - 1 do
       acc := !acc +. p.(j);
       if u < !acc then begin
         arm := j;
         raise Exit
       end
     done
   with Exit -> ());
  !arm

let check_payoff who t v =
  if not (Float.is_finite v) || v < 0. || v > t.bound then
    invalid_arg
      (Printf.sprintf "Exp_weights.%s: payoff outside [0, %g]" who t.bound)

let update t ~payoffs =
  if Array.length payoffs <> t.arms then
    invalid_arg "Exp_weights.update: payoff vector length mismatch";
  Array.iter (check_payoff "update" t) payoffs;
  for j = 0 to t.arms - 1 do
    t.cumulative.(j) <- t.cumulative.(j) +. payoffs.(j)
  done

let update_bandit t ~arm ~payoff =
  if arm < 0 || arm >= t.arms then
    invalid_arg "Exp_weights.update_bandit: arm out of range";
  check_payoff "update_bandit" t payoff;
  let p = (probabilities t).(arm) in
  t.cumulative.(arm) <- t.cumulative.(arm) +. (payoff /. p)

let cumulative t = Array.copy t.cumulative

let best_arm t =
  let best = ref 0 in
  for j = 1 to t.arms - 1 do
    if t.cumulative.(j) > t.cumulative.(!best) then best := j
  done;
  !best
