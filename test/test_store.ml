(* Unit and property tests for the dm_store durability layer: frame
   codec, journal writer/reader, snapshot store, crash recovery and
   the cross-format snapshot equivalence the recovery path relies
   on. *)

module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Mechanism = Dm_market.Mechanism
module Broker = Dm_market.Broker
module Frame = Dm_store.Frame
module Journal = Dm_store.Journal
module Snapshots = Dm_store.Snapshots
module Store = Dm_store.Store
module Fleet_store = Dm_store.Fleet
module Longrun = Dm_experiments.Longrun
module Recover = Dm_experiments.Recover
module Fleet = Dm_experiments.Fleet

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prop name count arb f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(Test_env.qcheck_count count) arb f)

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Fleet stores nest per-tenant snapshot directories inside [dir]. *)
let rec rm_rf_rec dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf_rec p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Scratch stores live under the build sandbox's cwd, never /tmp. *)
let dir_counter = ref 0

let with_dir f =
  incr dir_counter;
  let dir =
    Filename.concat (Sys.getcwd ())
      (Printf.sprintf ".dm_store_test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Like [with_dir], but the directory may hold tenant subdirectories
   and [Fleet.create] makes it itself. *)
let with_fleet_dir f =
  incr dir_counter;
  let dir =
    Filename.concat (Sys.getcwd ())
      (Printf.sprintf ".dm_fleet_test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf_rec dir;
  Fun.protect ~finally:(fun () -> rm_rf_rec dir) (fun () -> f dir)

let flip_byte path ~offset =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd offset Unix.SEEK_SET);
      if Unix.read fd b 0 1 <> 1 then failwith "flip_byte: short read";
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd offset Unix.SEEK_SET);
      if Unix.write fd b 0 1 <> 1 then failwith "flip_byte: short write")

let ok_or_fail = function Ok v -> v | Error msg -> Alcotest.fail msg

let fbits = Int64.bits_of_float

let event_equal (a : Broker.event) (b : Broker.event) =
  let obits = function None -> None | Some v -> Some (fbits v) in
  let vec_bits v = Array.init (Vec.dim v) (fun i -> fbits (Vec.get v i)) in
  a.Broker.t = b.Broker.t && a.kind = b.kind && a.accepted = b.accepted
  && fbits a.reserve = fbits b.reserve
  && fbits a.price_index = fbits b.price_index
  && fbits a.lower = fbits b.lower
  && fbits a.upper = fbits b.upper
  && obits a.posted = obits b.posted
  && fbits a.payment = fbits b.payment
  && vec_bits a.x = vec_bits b.x

(* A random but semantically shaped event; sparse-ish feature vectors
   (75% zeros) exercise the Vec.Sparse storage path, dense ones the
   float loop.  Non-zero entries stay away from -0., which sparse
   storage normalizes to +0. by design. *)
let gen_event ?dim rng ~t =
  let dim = match dim with Some d -> d | None -> 1 + Rng.int rng 40 in
  let sparse_ish = Rng.int rng 2 = 0 in
  let x =
    Vec.init dim (fun _ ->
        if sparse_ish && Rng.int rng 4 <> 0 then 0.
        else ((Rng.float rng -. 0.5) *. 8.) +. 0.001)
  in
  let kind =
    match Rng.int rng 4 with
    | 0 -> Broker.Exploratory
    | 1 -> Broker.Conservative
    | 2 -> Broker.Skipped
    | _ -> Broker.Baseline
  in
  let price = 0.25 +. Rng.float rng in
  match kind with
  | Broker.Skipped ->
      { Broker.t; x; reserve = Rng.float rng; kind; price_index = nan;
        lower = nan; upper = nan; posted = None; accepted = false; payment = 0. }
  | Broker.Baseline ->
      let accepted = Rng.int rng 2 = 0 in
      { Broker.t; x; reserve = price; kind; price_index = nan; lower = nan;
        upper = nan; posted = Some price; accepted;
        payment = (if accepted then price else 0.) }
  | _ ->
      let accepted = Rng.int rng 2 = 0 in
      { Broker.t; x; reserve = Rng.float rng; kind;
        price_index = Rng.float rng; lower = -.Rng.float rng;
        upper = 1. +. Rng.float rng; posted = Some price; accepted;
        payment = (if accepted then price else 0.) }

(* ------------------------------------------------------------------ *)
(* Frame: CRC32 framing                                                *)
(* ------------------------------------------------------------------ *)

let frame_string payloads =
  let buf = Buffer.create 256 in
  List.iter (Frame.append buf) payloads;
  Buffer.contents buf

(* Record end offsets: [e1; e2; ...; total]. *)
let frame_ends payloads =
  List.rev
    (List.fold_left
       (fun acc p ->
         let prev = match acc with [] -> 0 | e :: _ -> e in
         (prev + Frame.frame_bytes p) :: acc)
       [] payloads)

let firstn n l = List.filteri (fun i _ -> i < n) l

let prop_roundtrip =
  prop "framed records round-trip cleanly" 300
    QCheck.(small_list (string_of_size Gen.(int_range 0 48)))
    (fun payloads ->
      match Frame.decode (frame_string payloads) with
      | Ok (ps, Frame.Clean) -> ps = payloads
      | Ok (_, Frame.Torn _) -> QCheck.Test.fail_report "torn on clean input"
      | Error m -> QCheck.Test.fail_reportf "decode: %s" m)

let prop_truncation =
  prop "truncation yields the longest valid prefix" 500
    QCheck.(pair (small_list (string_of_size Gen.(int_range 0 32))) small_nat)
    (fun (payloads, cut_seed) ->
      let src = frame_string payloads in
      let cut = cut_seed mod (String.length src + 1) in
      let ends = frame_ends payloads in
      let expect_n = List.length (List.filter (fun e -> e <= cut) ends) in
      let boundary = cut = 0 || List.mem cut ends in
      let torn_at =
        List.fold_left (fun acc e -> if e <= cut then e else acc) 0 ends
      in
      match Frame.decode (String.sub src 0 cut) with
      | Ok (ps, tail) ->
          ps = firstn expect_n payloads
          && (match tail with
             | Frame.Clean -> boundary
             | Frame.Torn off -> (not boundary) && off = torn_at)
      | Error m -> QCheck.Test.fail_reportf "decode: %s" m)

let prop_corruption =
  prop "bit flips before the tail never pass as clean" 500
    QCheck.(
      triple
        (small_list (string_of_size Gen.(int_range 0 32)))
        small_nat small_nat)
    (fun (extra, pos_seed, bit_seed) ->
      (* Two fixed records up front guarantee a non-tail target. *)
      let payloads = "alpha-payload" :: "beta-payload" :: extra in
      let src = frame_string payloads in
      let ends = frame_ends payloads in
      let last_start = List.nth ends (List.length ends - 2) in
      let pos = pos_seed mod last_start in
      let corrupted = Bytes.of_string src in
      Bytes.set corrupted pos
        (Char.chr (Char.code (Bytes.get corrupted pos) lxor (1 lsl (bit_seed mod 8))));
      (* index of the record holding the flipped byte *)
      let corrupt_idx = List.length (List.filter (fun e -> e <= pos) ends) in
      match Frame.decode (Bytes.to_string corrupted) with
      | Error _ -> true
      | Ok (ps, tail) ->
          (* A flipped length field can masquerade as a torn tail, but
             only by discarding everything from the damaged record on —
             never by altering or inventing a payload. *)
          tail <> Frame.Clean
          && List.length ps <= corrupt_idx
          && ps = firstn (List.length ps) payloads)

let test_seal_matches_append () =
  let payloads =
    [ ""; "x"; String.init 16 Char.chr;
      String.init 41 (fun i -> Char.chr (i * 3 land 0xff)); "0123456789abcdef0" ]
  in
  let reference = frame_string payloads in
  (* Encode the same frames with blank CRCs, then seal the batch. *)
  let b = Bytes.make (String.length reference) '\000' in
  let at = ref 0 in
  List.iter
    (fun p ->
      Bytes.set_int32_le b !at (Int32.of_int (String.length p));
      Bytes.blit_string p 0 b (!at + 8) (String.length p);
      at := !at + 8 + String.length p)
    payloads;
  Frame.seal b ~stop:!at;
  check_bool "sealed batch = per-record framing" true
    (String.equal (Bytes.to_string b) reference);
  (match Frame.decode (Bytes.to_string b) with
  | Ok (ps, Frame.Clean) -> check_bool "decodes cleanly" true (ps = payloads)
  | _ -> Alcotest.fail "sealed batch did not decode cleanly");
  Alcotest.check_raises "mid-frame stop refused"
    (Invalid_argument "Frame.seal: truncated frame") (fun () ->
      Frame.seal b ~stop:(!at - 1))

(* ------------------------------------------------------------------ *)
(* Journal: event codec and segmented writer/reader                    *)
(* ------------------------------------------------------------------ *)

let prop_event_codec =
  prop "event codec round-trips every field bit-for-bit" 300
    QCheck.(pair (int_range 0 100_000) (int_range 0 10_000))
    (fun (seed, t) ->
      let e = gen_event (Rng.create seed) ~t in
      match Journal.decode_event (Journal.encode_event e) with
      | Ok e' -> event_equal e e'
      | Error m -> QCheck.Test.fail_reportf "decode_event: %s" m)

let tagged_dims = [| 1; 2; 8; 128 |]

let prop_tagged_codec =
  prop "tenant-tagged codec round-trips at n in {1, 2, 8, 128}" 200
    QCheck.(triple (int_range 0 100_000) (int_range 0 10_000) (int_range 0 3))
    (fun (seed, t, di) ->
      let rng = Rng.create seed in
      let e = gen_event ~dim:tagged_dims.(di) rng ~t in
      let tenant =
        match Rng.int rng 4 with
        | 0 -> 0
        | 1 -> 0xFFFF_FFFF (* the 2^32 - 1 header-field ceiling *)
        | _ -> Rng.int rng 1_000_000
      in
      match
        Journal.decode_event_tagged (Journal.encode_event_tagged ~tenant e)
      with
      | Ok (tn, e') -> tn = tenant && event_equal e e'
      | Error m -> QCheck.Test.fail_reportf "decode_event_tagged: %s" m)

let test_tagged_decoder_reads_v1 () =
  let e = gen_event (Rng.create 3) ~t:12 in
  match Journal.decode_event_tagged (Journal.encode_event e) with
  | Ok (0, e') -> check_bool "tenant 0, same bits" true (event_equal e e')
  | Ok (tn, _) -> Alcotest.failf "v1 payload decoded as tenant %d" tn
  | Error m -> Alcotest.fail m

let test_unknown_version_refused () =
  let e = gen_event (Rng.create 4) ~t:0 in
  let p = Bytes.of_string (Journal.encode_event e) in
  Bytes.set p 0 '\003';
  let p = Bytes.to_string p in
  (match Journal.decode_event p with
  | Error m ->
      check_bool "v1 decoder names offset and version" true
        (contains m "byte 0" && contains m "version 3")
  | Ok _ -> Alcotest.fail "version 3 accepted by decode_event");
  (match Journal.decode_event_tagged p with
  | Error m ->
      check_bool "tagged decoder names offset and version" true
        (contains m "byte 0" && contains m "version 3")
  | Ok _ -> Alcotest.fail "version 3 accepted by decode_event_tagged");
  (* the v1-only decoder must also refuse tagged payloads, not read
     the tenant id as the round field *)
  match Journal.decode_event (Journal.encode_event_tagged ~tenant:1 e) with
  | Error m -> check_bool "v1 decoder refuses v2" true (contains m "version 2")
  | Ok _ -> Alcotest.fail "decode_event read a tagged payload"

(* A hand-built version-1 payload with a sparse vector whose index
   run we control.  Fixed prefix: version (1) + round (8) + kind (1)
   + accepted (1) + four f64 fields (32) + posted=None flag (1) +
   payment (8) + sparse-repr flag (1) + dim (4) put the nnz count at
   byte 57 and the index run at byte 61. *)
let sparse_payload ~dim ~idx =
  let b = Buffer.create 128 in
  let f64 v = Buffer.add_int64_le b (Int64.bits_of_float v) in
  let u32 v = Buffer.add_int32_le b (Int32.of_int v) in
  Buffer.add_char b '\001' (* version 1 *);
  Buffer.add_int64_le b 5L (* round *);
  Buffer.add_char b '\001' (* Exploratory *);
  Buffer.add_char b '\000' (* accepted = false *);
  f64 0.25 (* reserve *);
  f64 0.5 (* price_index *);
  f64 (-0.5) (* lower *);
  f64 1.5 (* upper *);
  Buffer.add_char b '\000' (* posted = None *);
  f64 0. (* payment *);
  Buffer.add_char b '\001' (* sparse repr *);
  u32 dim;
  u32 (Array.length idx);
  Array.iter u32 idx;
  Array.iter (fun _ -> f64 1.0) idx;
  Buffer.contents b

let test_sparse_validation () =
  (* well-formed control: strictly increasing in-range indices *)
  (match Journal.decode_event (sparse_payload ~dim:8 ~idx:[| 0; 4; 7 |]) with
  | Ok e ->
      check_int "dim" 8 (Vec.dim e.Broker.x);
      List.iter
        (fun i -> check_bool "coordinate set" true (Vec.get e.Broker.x i = 1.0))
        [ 0; 4; 7 ]
  | Error m -> Alcotest.fail m);
  let refused name payload ~at ~needle =
    match Journal.decode_event payload with
    | Ok _ -> Alcotest.failf "%s accepted" name
    | Error m ->
        check_bool
          (name ^ " names byte offset")
          true
          (contains m (Printf.sprintf "byte %d" at) && contains m needle)
  in
  refused "nnz > dim"
    (sparse_payload ~dim:2 ~idx:[| 0; 1; 1 |])
    ~at:57 ~needle:"exceeds dimension";
  refused "out-of-range index"
    (sparse_payload ~dim:8 ~idx:[| 2; 9 |])
    ~at:65 ~needle:"out of range";
  refused "duplicate index"
    (sparse_payload ~dim:8 ~idx:[| 3; 3 |])
    ~at:65 ~needle:"strictly increasing";
  refused "unsorted indices"
    (sparse_payload ~dim:8 ~idx:[| 5; 2 |])
    ~at:65 ~needle:"strictly increasing";
  (* the tagged decoder shares the body validation *)
  match Journal.decode_event_tagged (sparse_payload ~dim:8 ~idx:[| 5; 2 |]) with
  | Ok _ -> Alcotest.fail "tagged decoder accepted unsorted indices"
  | Error m -> check_bool "tagged decoder refuses too" true (contains m "byte")

let test_segment_start_boundary () =
  let big = 1_000_000_000_000 (* 10^12 widens past the %012d pad *) in
  check_bool "10^12 round-trips" true
    (Journal.segment_start (Journal.segment_name big) = Some big);
  check_bool "padded names still parse" true
    (Journal.segment_start "seg-000000000042.dmj" = Some 42);
  check_bool "int_of_string overflow rejected" true
    (Journal.segment_start "seg-99999999999999999999.dmj" = None);
  check_bool "non-digit run rejected" true
    (Journal.segment_start "seg-0000000000ab.dmj" = None);
  check_bool "empty digit run rejected" true
    (Journal.segment_start "seg-.dmj" = None);
  (* a writer rotated past the boundary must be found by the reader *)
  with_dir @@ fun dir ->
  let rng = Rng.create 31 in
  let events = List.init 5 (fun i -> gen_event rng ~t:(big + i)) in
  let w = Journal.create_writer ~dir ~start:big () in
  List.iter (Journal.append w) events;
  Journal.close w;
  match Journal.read_dir ~dir with
  | Ok (es, Journal.Clean) ->
      check_int "13-digit segment read back" 5 (List.length es);
      check_bool "rounds preserved" true
        (List.for_all2 (fun a b -> a.Broker.t = b.Broker.t) events es)
  | Ok (_, Journal.Torn _) -> Alcotest.fail "unexpected torn tail"
  | Error m -> Alcotest.fail m

let write_journal ~dir ~seed ~n =
  let rng = Rng.create seed in
  let events = List.init n (fun t -> gen_event rng ~t) in
  let w = Journal.create_writer ~segment_bytes:4096 ~dir ~start:0 () in
  List.iter (Journal.append w) events;
  (events, w)

let test_writer_rotation_roundtrip () =
  with_dir @@ fun dir ->
  let n = 300 in
  let events, w = write_journal ~dir ~seed:99 ~n in
  check_int "next_round" n (Journal.next_round w);
  (try
     Journal.append w (List.hd events);
     Alcotest.fail "round gap accepted"
   with Invalid_argument _ -> ());
  Journal.close w;
  check_bool "rotation produced several segments" true
    (List.length (Journal.segments ~dir) > 1);
  match Journal.read_dir ~dir with
  | Ok (es, Journal.Clean) ->
      check_int "event count" n (List.length es);
      List.iter2
        (fun a b -> check_bool "event bits" true (event_equal a b))
        events es
  | Ok (_, Journal.Torn _) -> Alcotest.fail "unexpected torn tail"
  | Error m -> Alcotest.fail m

let test_torn_tail_tolerated () =
  with_dir @@ fun dir ->
  let n = 120 in
  let _, w = write_journal ~dir ~seed:7 ~n in
  Journal.close w;
  let segs = Journal.segments ~dir in
  let last = snd (List.nth segs (List.length segs - 1)) in
  let size = (Unix.stat last).Unix.st_size in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 last in
  output_string oc "\x01garbage-after-crash";
  close_out oc;
  (match Journal.read_dir ~dir with
  | Ok (es, Journal.Torn { segment; offset }) ->
      check_int "all events intact" n (List.length es);
      check_bool "torn in the final segment" true (String.equal segment last);
      check_int "torn exactly at the durable size" size offset
  | Ok (_, Journal.Clean) -> Alcotest.fail "trailing garbage read as clean"
  | Error m -> Alcotest.fail m);
  (* cutting into the final record loses it but stays recoverable *)
  Unix.truncate last (size - 3);
  match Journal.read_dir ~dir with
  | Ok (es, Journal.Torn _) -> check_int "one event lost" (n - 1) (List.length es)
  | Ok (_, Journal.Clean) -> Alcotest.fail "truncation read as clean"
  | Error m -> Alcotest.fail m

let test_pretail_corruption_refused () =
  with_dir @@ fun dir ->
  let n = 120 in
  let _, w = write_journal ~dir ~seed:13 ~n in
  Journal.close w;
  let segs = Journal.segments ~dir in
  check_bool "multiple segments" true (List.length segs >= 2);
  let first = snd (List.hd segs) in
  (* One flipped payload byte well before the tail: offset 18 is magic
     (8) + frame header (8) + 2 bytes into the first record. *)
  flip_byte first ~offset:18;
  (match Journal.read_dir ~dir with
  | Error m -> check_bool "names Journal.read_dir" true (contains m "Journal.read_dir")
  | Ok _ -> Alcotest.fail "pre-tail corruption accepted");
  flip_byte first ~offset:18;
  (* a mangled magic before the final segment is corruption too *)
  flip_byte first ~offset:0;
  (match Journal.read_dir ~dir with
  | Error m -> check_bool "magic named" true (contains m "magic")
  | Ok _ -> Alcotest.fail "bad pre-tail magic accepted");
  flip_byte first ~offset:0;
  (* ...but on the final segment it is the rotation crash window *)
  let last = snd (List.nth segs (List.length segs - 1)) in
  flip_byte last ~offset:0;
  match Journal.read_dir ~dir with
  | Ok (es, Journal.Torn { segment; offset }) ->
      check_bool "final segment dropped whole" true
        (String.equal segment last && offset = 0);
      check_bool "earlier segments kept" true
        (List.length es > 0 && List.length es < n)
  | Ok (_, Journal.Clean) -> Alcotest.fail "mangled final magic read as clean"
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Snapshots: atomic store, corrupt files skipped                      *)
(* ------------------------------------------------------------------ *)

(* Drive a mechanism over the Longrun stream; the market index is a
   pure function of the round so every mechanism sees the same
   buyers. *)
let drive setup mech t =
  let x, reserve = setup.Longrun.workload t in
  let market =
    (1.2 *. Vec.sum x /. float_of_int setup.Longrun.dim) +. setup.Longrun.noise t
  in
  let d, _ = Mechanism.step mech ~x ~reserve ~market_index:market in
  match d with
  | Mechanism.Skip -> Int64.min_int
  | Mechanism.Post { price; _ } -> fbits price

let test_snapshots_newest_skips_corrupt () =
  with_dir @@ fun dir ->
  let setup = Longrun.make_setup ~dim:4 ~seed:11 ~rounds:200 () in
  let mech = Longrun.mechanism setup (snd (List.nth Longrun.variants 2)) in
  for t = 0 to 99 do ignore (drive setup mech t) done;
  Snapshots.write ~dir ~round:100 mech;
  let b100 = Mechanism.snapshot_binary mech in
  for t = 100 to 199 do ignore (drive setup mech t) done;
  Snapshots.write ~dir ~round:200 mech;
  let b200 = Mechanism.snapshot_binary mech in
  check_bool "both rounds listed" true (Snapshots.rounds ~dir = [ 100; 200 ]);
  (match Snapshots.newest ~dir with
  | Some (200, m) ->
      check_bool "newest state exact" true
        (String.equal b200 (Mechanism.snapshot_binary m))
  | _ -> Alcotest.fail "newest did not pick round 200");
  (* damage the newest snapshot mid-payload: load refuses, newest
     falls back to the older valid one *)
  let snap200 = Filename.concat dir (Snapshots.file_name 200) in
  flip_byte snap200 ~offset:((Unix.stat snap200).Unix.st_size / 2);
  (match Snapshots.load ~dir ~round:200 with
  | Error m -> check_bool "load names a reason" true (contains m ":")
  | Ok _ -> Alcotest.fail "corrupt snapshot loaded");
  match Snapshots.newest ~dir with
  | Some (100, m) ->
      check_bool "fallback state exact" true
        (String.equal b100 (Mechanism.snapshot_binary m))
  | _ -> Alcotest.fail "newest did not fall back to round 100"

(* ------------------------------------------------------------------ *)
(* Snapshot cross-format equivalence (text v1/v2 vs binary v3)         *)
(* ------------------------------------------------------------------ *)

(* Restore the same mechanism from its text and binary snapshots and
   drive all three over 1000 further rounds of the same dense stream:
   every posted price must match bit-for-bit.  (The text format does
   not record [sparse_cuts], so the streams here are dense — the App-1
   shape — where the flag cannot influence a price.) *)
let cross_format ~dim ~variant_idx () =
  let prefix = 200 and extra = 1000 in
  let setup = Longrun.make_setup ~dim ~seed:(31 + dim) ~rounds:(prefix + extra) () in
  let variant = snd (List.nth Longrun.variants variant_idx) in
  let mech = Longrun.mechanism setup variant in
  for t = 0 to prefix - 1 do ignore (drive setup mech t) done;
  let m_text = ok_or_fail (Mechanism.restore (Mechanism.snapshot mech)) in
  let m_bin = ok_or_fail (Mechanism.restore (Mechanism.snapshot_binary mech)) in
  let run m = Array.init extra (fun i -> drive setup m (prefix + i)) in
  let p0 = run mech in
  let p_text = run m_text in
  let p_bin = run m_bin in
  check_bool "text restore prices bit-identical" true (p0 = p_text);
  check_bool "binary restore prices bit-identical" true (p0 = p_bin)

let test_restore_error_names_position () =
  match Mechanism.restore "dm-mechanism-snapshot v9000\nnonsense" with
  | Ok _ -> Alcotest.fail "garbage restored"
  | Error m -> check_bool "prefixed" true (contains m "Mechanism.restore")

(* ------------------------------------------------------------------ *)
(* Store: crash, recovery, compaction                                  *)
(* ------------------------------------------------------------------ *)

let test_store_crash_recover_compact () =
  with_dir @@ fun dir ->
  let rounds = 400 and crash = 250 in
  let setup = Longrun.make_setup ~dim:4 ~seed:17 ~rounds () in
  let variant = snd (List.hd Longrun.variants) in
  let store = Store.create ~segment_bytes:4096 ~snapshot_every:64 ~dir ~start:0 () in
  let mech = Longrun.mechanism setup variant in
  ignore
    (Broker.run
       ~journal:(Store.sink store ~mech)
       ~policy:(Broker.Ellipsoid_pricing mech) ~model:setup.Longrun.model
       ~noise:setup.Longrun.noise ~workload:setup.Longrun.workload
       ~rounds:crash ());
  Store.simulate_crash store ~keep:0.5 ~junk:"torn-tail-garbage";
  let fresh () = Longrun.mechanism setup variant in
  let rec1 = ok_or_fail (Store.recover ~initial:fresh ~dir ()) in
  check_bool "recovered from a snapshot" true (rec1.Store.snapshot_round > 0);
  check_bool "journal covers the prefix" true
    (Array.length rec1.Store.events = rec1.Store.next_round);
  check_bool "prefix within the crash point" true (rec1.Store.next_round <= crash);
  check_bool "prefix reaches the snapshot" true
    (rec1.Store.next_round >= rec1.Store.snapshot_round);
  (* pre-tail byte flip: recovery must refuse, not reprice *)
  let first_seg = snd (List.hd (Journal.segments ~dir)) in
  flip_byte first_seg ~offset:18;
  (match Store.recover ~dir () with
  | Error m -> check_bool "Module.function: reason" true (contains m ":")
  | Ok _ -> Alcotest.fail "recover accepted pre-tail corruption");
  flip_byte first_seg ~offset:18;
  let state1 = Mechanism.snapshot_binary (Option.get rec1.Store.mechanism) in
  let deleted = Store.compact ~dir in
  check_bool "compaction removed covered segments" true (deleted >= 1);
  let rec2 = ok_or_fail (Store.recover ~initial:fresh ~dir ()) in
  check_bool "compaction preserves the recovered state" true
    (rec2.Store.next_round = rec1.Store.next_round
    && String.equal state1 (Mechanism.snapshot_binary (Option.get rec2.Store.mechanism)))

(* Regression: [Store.compact] used to key its coverage decision off
   the newest snapshot *file name* rather than the newest snapshot
   that validates.  With the newest snapshot corrupted, recovery falls
   back to an older one — but compaction had already deleted the
   segments that fallback needs to replay from, stranding the store. *)
let test_store_compact_corrupt_newest_snapshot () =
  with_dir @@ fun dir ->
  let rounds = 400 in
  let setup = Longrun.make_setup ~dim:4 ~seed:19 ~rounds () in
  let variant = snd (List.hd Longrun.variants) in
  let store =
    Store.create ~segment_bytes:4096 ~snapshot_every:64 ~dir ~start:0 ()
  in
  let mech = Longrun.mechanism setup variant in
  ignore
    (Broker.run
       ~journal:(Store.sink store ~mech)
       ~policy:(Broker.Ellipsoid_pricing mech) ~model:setup.Longrun.model
       ~noise:setup.Longrun.noise ~workload:setup.Longrun.workload ~rounds ());
  Store.close store;
  let snaps = Snapshots.rounds ~dir in
  check_bool "several snapshots on disk" true (List.length snaps >= 2);
  let newest = List.fold_left max 0 snaps in
  let snap = Filename.concat dir (Snapshots.file_name newest) in
  flip_byte snap ~offset:((Unix.stat snap).Unix.st_size / 2);
  let before = ok_or_fail (Store.recover ~dir ()) in
  check_bool "recovery fell back below the corrupt newest" true
    (before.Store.snapshot_round > 0 && before.Store.snapshot_round < newest);
  let state_before =
    Mechanism.snapshot_binary (Option.get before.Store.mechanism)
  in
  ignore (Store.compact ~dir);
  let after = ok_or_fail (Store.recover ~dir ()) in
  check_bool "compaction kept the fallback's replay segments" true
    (after.Store.next_round = before.Store.next_round
    && after.Store.snapshot_round = before.Store.snapshot_round
    && String.equal state_before
         (Mechanism.snapshot_binary (Option.get after.Store.mechanism)))

let test_sharded_journal_identity () =
  let rounds = 400 in
  let setup = Longrun.make_setup ~dim:8 ~seed:23 ~rounds () in
  let variant = snd (List.nth Longrun.variants 3) in
  let collect run_fn =
    let buf = Buffer.create (1 lsl 16) in
    let mech = Longrun.mechanism setup variant in
    ignore
      (run_fn
         ~journal:(fun e -> Buffer.add_string buf (Journal.encode_event e))
         ~policy:(Broker.Ellipsoid_pricing mech));
    Buffer.contents buf
  in
  let sequential =
    collect (fun ~journal ~policy ->
        Broker.run ~journal ~policy ~model:setup.Longrun.model
          ~noise:setup.Longrun.noise ~workload:setup.Longrun.workload ~rounds ())
  in
  let sharded =
    collect (fun ~journal ~policy ->
        Broker.run_sharded ~journal ~mode:Broker.Exact ~shards:5 ~policy
          ~model:setup.Longrun.model ~noise:setup.Longrun.noise
          ~workload:setup.Longrun.workload ~rounds ())
  in
  check_bool "sharded journal stream bit-identical" true
    (String.equal sequential sharded)

(* ------------------------------------------------------------------ *)
(* Fleet: shared group-commit journal                                  *)
(* ------------------------------------------------------------------ *)

let test_fleet_interleaved_roundtrip () =
  with_fleet_dir @@ fun dir ->
  let tenants = 3 in
  let rng = Rng.create 77 in
  let fleet = Fleet_store.create ~segment_bytes:4096 ~dir ~tenants () in
  let rounds = Array.make tenants 0 in
  let all = ref [] in
  for _ = 1 to 300 do
    let tn = Rng.int rng tenants in
    let e = gen_event rng ~t:rounds.(tn) in
    Fleet_store.append fleet ~tenant:tn e;
    rounds.(tn) <- rounds.(tn) + 1;
    all := (tn, e) :: !all
  done;
  let all = List.rev !all in
  (* round-order and range violations are refused before any write *)
  (try
     Fleet_store.append fleet ~tenant:0 (gen_event rng ~t:0);
     Alcotest.fail "per-tenant round gap accepted"
   with Invalid_argument _ -> ());
  (try
     Fleet_store.append fleet ~tenant:tenants (gen_event rng ~t:0);
     Alcotest.fail "out-of-range tenant accepted"
   with Invalid_argument _ -> ());
  Fleet_store.close fleet;
  check_bool "rotation produced several shared segments" true
    (List.length (Journal.segments ~dir) > 1);
  match Fleet_store.read_dir ~dir with
  | Ok (got, Fleet_store.Clean) ->
      check_int "record count" (List.length all) (List.length got);
      List.iter2
        (fun (tn, e) (tn', e') ->
          check_int "tenant tag" tn tn';
          check_bool "event bits" true (event_equal e e'))
        all got
  | Ok (_, Fleet_store.Torn _) -> Alcotest.fail "unexpected torn tail"
  | Error m -> Alcotest.fail m

let test_fleet_latency_bound () =
  with_fleet_dir @@ fun dir ->
  let fleet = Fleet_store.create ~latency_appends:8 ~dir ~tenants:1 () in
  let rng = Rng.create 5 in
  for t = 0 to 6 do
    Fleet_store.append fleet ~tenant:0 (gen_event ~dim:4 rng ~t)
  done;
  check_int "no group commit below the latency bound" 0
    (Fleet_store.fsync_count fleet);
  check_int "nothing durable yet" 0 (Fleet_store.durable_offset fleet);
  Fleet_store.append fleet ~tenant:0 (gen_event ~dim:4 rng ~t:7);
  check_int "one group fsync at the bound" 1 (Fleet_store.fsync_count fleet);
  check_bool "batch durable after the commit" true
    (Fleet_store.durable_offset fleet > 0);
  for t = 8 to 14 do
    Fleet_store.append fleet ~tenant:0 (gen_event ~dim:4 rng ~t)
  done;
  check_int "no further fsync below the next bound" 1
    (Fleet_store.fsync_count fleet);
  Fleet_store.sync fleet;
  check_int "explicit sync is a group barrier" 2 (Fleet_store.fsync_count fleet);
  check_int "fifteen records appended" 15 (Fleet_store.appended fleet);
  Fleet_store.close fleet

(* Crash property: whatever [keep]/[junk] does to the torn tail, the
   surviving records are a prefix of the global append order — the
   same suffix is lost for every tenant — and everything covered by
   the last group fsync survives. *)
let prop_fleet_crash_prefix =
  prop "fleet crash loses one shared global suffix" 15
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (seed, crash_seed) ->
      with_fleet_dir @@ fun dir ->
      let rng = Rng.create seed in
      let tenants = 1 + Rng.int rng 3 in
      let total = 40 + Rng.int rng 80 in
      let sync_at = Rng.int rng total in
      let fleet =
        Fleet_store.create
          ~latency_appends:(1 + Rng.int rng 16)
          ~dir ~tenants ()
      in
      let rounds = Array.make tenants 0 in
      let all = ref [] in
      let synced = ref 0 in
      for k = 0 to total - 1 do
        let tn = Rng.int rng tenants in
        let e = gen_event rng ~t:rounds.(tn) in
        Fleet_store.append fleet ~tenant:tn e;
        rounds.(tn) <- rounds.(tn) + 1;
        all := (tn, e) :: !all;
        if k = sync_at then begin
          Fleet_store.sync fleet;
          synced := Fleet_store.appended fleet
        end
      done;
      let all = List.rev !all in
      let crng = Rng.create crash_seed in
      let junk =
        String.init (1 + Rng.int crng 24) (fun _ -> Char.chr (Rng.int crng 256))
      in
      Fleet_store.simulate_crash fleet ~keep:(Rng.float crng) ~junk;
      match Fleet_store.read_dir ~dir with
      | Error m -> QCheck.Test.fail_reportf "read_dir after crash: %s" m
      | Ok (got, _tail) ->
          let k = List.length got in
          if k < !synced then
            QCheck.Test.fail_reportf "lost fsync'd records (%d < %d)" k !synced
          else
            List.for_all2
              (fun (tn, e) (tn', e') -> tn = tn' && event_equal e e')
              (firstn k all) got)

let test_fleet_driver_smoke () =
  let out = render (fun ppf -> Fleet.report ~scale:0.01 ~jobs:1 ppf) in
  check_bool "all tenants bit-identical" true
    (contains out "10/10 tenants bit-identical");
  check_bool "group-commit amortization reported" true
    (contains out "fsyncs per tenant-round")

let test_fleet_driver_jobs_independent () =
  let out jobs = render (fun ppf -> Fleet.report ~scale:0.01 ~jobs ppf) in
  check_bool "bytes identical across jobs" true (String.equal (out 1) (out 2))

let test_fleet_amortization_shape () =
  let entries = Fleet.journal_amortization ~seed:3 ~tenants:8 ~rounds:40 ~reps:1 () in
  check_bool "expected names" true
    (List.map fst entries
    = [ "journal/fleet_group"; "journal/fleet_fsyncs_per_kround" ]);
  let ns = List.assoc "journal/fleet_group" entries in
  check_bool "ns positive and finite" true (ns > 0. && Float.is_finite ns);
  let per_kround = List.assoc "journal/fleet_fsyncs_per_kround" entries in
  check_bool "group commit beats one fsync per round" true
    (per_kround > 0. && per_kround < 1000.)

(* ------------------------------------------------------------------ *)
(* Request batcher                                                     *)
(* ------------------------------------------------------------------ *)

module Batcher = Fleet_store.Batcher

let test_batcher_flush_rules () =
  (* Batch-full: exactly the [capacity]-th add flushes, in arrival
     order, with the latency trigger far away. *)
  let b = Batcher.create ~capacity:3 ~latency_rounds:100 in
  check_bool "first add pends" true (Batcher.add b 1 = None);
  check_bool "second add pends" true (Batcher.add b 2 = None);
  check_int "two pending" 2 (Batcher.pending b);
  (match Batcher.add b 3 with
  | Some batch -> check_bool "capacity flush in order" true (batch = [| 1; 2; 3 |])
  | None -> Alcotest.fail "capacity trigger did not fire");
  check_int "drained" 0 (Batcher.pending b);
  (* Bounded latency: a lone request flushes once it is exactly
     [latency_rounds] rounds old — its own add counts as a round, so
     with L = 4 the third tick fires, not the second. *)
  let b = Batcher.create ~capacity:100 ~latency_rounds:4 in
  check_bool "add pends" true (Batcher.add b 7 = None);
  check_bool "tick 2 pends" true (Batcher.tick b = None);
  check_bool "tick 3 pends" true (Batcher.tick b = None);
  (match Batcher.tick b with
  | Some batch -> check_bool "latency flush" true (batch = [| 7 |])
  | None -> Alcotest.fail "latency trigger did not fire");
  (* An empty batcher never flushes on ticks, however many pass. *)
  for _ = 1 to 10 do
    check_bool "idle tick" true (Batcher.tick b = None)
  done;
  (* Adds advance the same round clock as ticks: two adds then two
     ticks age the oldest request to L = 4. *)
  let b = Batcher.create ~capacity:100 ~latency_rounds:4 in
  check_bool "add a" true (Batcher.add b 10 = None);
  check_bool "add b" true (Batcher.add b 11 = None);
  check_bool "tick 3" true (Batcher.tick b = None);
  (match Batcher.tick b with
  | Some batch -> check_bool "mixed-clock flush" true (batch = [| 10; 11 |])
  | None -> Alcotest.fail "mixed add/tick latency trigger did not fire");
  (* flush drains whatever pends and reports an empty queue as None. *)
  let b = Batcher.create ~capacity:3 ~latency_rounds:100 in
  check_bool "nothing to flush" true (Batcher.flush b = None);
  ignore (Batcher.add b 1);
  check_bool "flush drains" true (Batcher.flush b = Some [| 1 |]);
  check_bool "flush idempotent" true (Batcher.flush b = None)

let test_batcher_degenerate_and_validation () =
  (* capacity = 1 is unbatched serving: every add flushes itself. *)
  let b = Batcher.create ~capacity:1 ~latency_rounds:100 in
  for i = 1 to 5 do
    check_bool "capacity-1 add flushes" true (Batcher.add b i = Some [| i |])
  done;
  (* latency_rounds = 1 degenerates the same way. *)
  let b = Batcher.create ~capacity:100 ~latency_rounds:1 in
  check_bool "latency-1 add flushes" true (Batcher.add b 9 = Some [| 9 |]);
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Fleet.Batcher.create: capacity must be >= 1") (fun () ->
      ignore (Batcher.create ~capacity:0 ~latency_rounds:1));
  Alcotest.check_raises "zero latency"
    (Invalid_argument "Fleet.Batcher.create: latency_rounds must be >= 1")
    (fun () -> ignore (Batcher.create ~capacity:1 ~latency_rounds:0))

(* Any add/tick stream: batches concatenate to exactly the adds in
   arrival order, never exceed capacity, and no request waits more
   than latency_rounds rounds from its add to its flush. *)
let prop_batcher_stream =
  prop "batcher preserves order, capacity and latency bounds" 100
    QCheck.(
      triple (int_range 1 8) (int_range 1 10) (small_list (option unit)))
    (fun (capacity, latency_rounds, ops) ->
      let b = Batcher.create ~capacity ~latency_rounds in
      let next = ref 0 in
      let added = ref [] in
      let flushed = ref [] in
      let age = Hashtbl.create 16 in
      let round = ref 0 in
      let ok = ref true in
      let take = function
        | None -> ()
        | Some batch ->
            if Array.length batch > capacity then ok := false;
            Array.iter
              (fun r ->
                flushed := r :: !flushed;
                (match Hashtbl.find_opt age r with
                | Some born when !round - born > latency_rounds -> ok := false
                | Some _ -> ()
                | None -> ok := false);
                Hashtbl.remove age r)
              batch
      in
      List.iter
        (fun op ->
          incr round;
          match op with
          | Some () ->
              let r = !next in
              incr next;
              added := r :: !added;
              Hashtbl.replace age r (!round - 1);
              take (Batcher.add b r)
          | None -> take (Batcher.tick b))
        ops;
      take (Batcher.flush b);
      !ok && List.rev !flushed = List.rev !added && Batcher.pending b = 0)

(* ------------------------------------------------------------------ *)
(* Recover driver                                                      *)
(* ------------------------------------------------------------------ *)

let test_recover_driver_smoke () =
  let out = render (fun ppf -> Recover.report ~scale:0.01 ~seed:5 ~jobs:1 ppf) in
  check_bool "all variants bit-identical" true
    (contains out "4/4 variants bit-identical");
  check_bool "corruption probe rejected" true (contains out "rejected");
  check_bool "compaction verified" true (contains out "ok (-")

let test_recover_driver_jobs_independent () =
  let out jobs = render (fun ppf -> Recover.report ~scale:0.01 ~seed:5 ~jobs ppf) in
  check_bool "bytes identical across jobs" true (String.equal (out 1) (out 2))

let test_journal_overhead_shape () =
  let entries = Recover.journal_overhead ~seed:3 ~reps:1 ~rounds:300 () in
  check_int "three modes" 3 (List.length entries);
  check_bool "expected names" true
    (List.map fst entries
    = [ "journal/longrun_off"; "journal/longrun_nofsync"; "journal/longrun_fsync" ]);
  List.iter
    (fun (name, ns) ->
      check_bool (name ^ " positive and finite") true (ns > 0. && Float.is_finite ns))
    entries

(* ------------------------------------------------------------------ *)

let () = Test_env.install_pool_from_env ()

let () =
  Alcotest.run "dm_store"
    [
      ( "frame",
        [
          prop_roundtrip;
          prop_truncation;
          prop_corruption;
          Alcotest.test_case "batch seal = per-record framing" `Quick
            test_seal_matches_append;
        ] );
      ( "journal",
        [
          prop_event_codec;
          prop_tagged_codec;
          Alcotest.test_case "tagged decoder reads v1 as tenant 0" `Quick
            test_tagged_decoder_reads_v1;
          Alcotest.test_case "unknown versions refused" `Quick
            test_unknown_version_refused;
          Alcotest.test_case "malformed sparse payloads refused" `Quick
            test_sparse_validation;
          Alcotest.test_case "segment names past 12 digits" `Quick
            test_segment_start_boundary;
          Alcotest.test_case "writer rotation round-trip" `Quick
            test_writer_rotation_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Quick test_torn_tail_tolerated;
          Alcotest.test_case "pre-tail corruption refused" `Quick
            test_pretail_corruption_refused;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "newest skips corrupt files" `Quick
            test_snapshots_newest_skips_corrupt;
          Alcotest.test_case "restore error names position" `Quick
            test_restore_error_names_position;
          Alcotest.test_case "cross-format prices, n = 1" `Quick
            (cross_format ~dim:1 ~variant_idx:0);
          Alcotest.test_case "cross-format prices, n = 2" `Quick
            (cross_format ~dim:2 ~variant_idx:1);
          Alcotest.test_case "cross-format prices, n = 8" `Quick
            (cross_format ~dim:8 ~variant_idx:2);
          Alcotest.test_case "cross-format prices, n = 128" `Slow
            (cross_format ~dim:128 ~variant_idx:3);
        ] );
      ( "store",
        [
          Alcotest.test_case "crash, recover, compact" `Quick
            test_store_crash_recover_compact;
          Alcotest.test_case "compact with corrupt newest snapshot" `Quick
            test_store_compact_corrupt_newest_snapshot;
          Alcotest.test_case "sharded journal bit-identity" `Quick
            test_sharded_journal_identity;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "interleaved round-trip with rotation" `Quick
            test_fleet_interleaved_roundtrip;
          Alcotest.test_case "latency-bound group commit" `Quick
            test_fleet_latency_bound;
          prop_fleet_crash_prefix;
          Alcotest.test_case "driver smoke (tiny)" `Slow test_fleet_driver_smoke;
          Alcotest.test_case "driver jobs-independent bytes" `Slow
            test_fleet_driver_jobs_independent;
          Alcotest.test_case "amortization shape" `Slow
            test_fleet_amortization_shape;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "flush rules" `Quick test_batcher_flush_rules;
          Alcotest.test_case "degenerate capacities and validation" `Quick
            test_batcher_degenerate_and_validation;
          prop_batcher_stream;
        ] );
      ( "recover driver",
        [
          Alcotest.test_case "smoke (tiny)" `Slow test_recover_driver_smoke;
          Alcotest.test_case "jobs-independent bytes" `Slow
            test_recover_driver_jobs_independent;
          Alcotest.test_case "journal overhead shape" `Slow
            test_journal_overhead_shape;
        ] );
    ]
