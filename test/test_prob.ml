(* Unit and property tests for the dm_prob substrate. *)

module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Stats = Dm_prob.Stats
module Subgaussian = Dm_prob.Subgaussian

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prop name count arb f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(Test_env.qcheck_count count) arb f)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  check_bool "different seeds differ" true !differs

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.float a);
  let b = Rng.copy a in
  check_float "copy replays" (Rng.float a) (Rng.float b)

let test_rng_split_independence () =
  let a = Rng.create 9 in
  let child = Rng.split a in
  (* Child and parent produce different streams. *)
  check_bool "independent" true (Rng.bits64 child <> Rng.bits64 a)

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    check_bool "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_int_range () =
  let rng = Rng.create 5 in
  let counts = Array.make 7 0 in
  for _ = 1 to 7000 do
    let k = Rng.int rng 7 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      check_bool (Printf.sprintf "bucket %d roughly uniform" i) true
        (c > 700 && c < 1300))
    counts;
  Alcotest.check_raises "non-positive bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_shuffle () =
  let rng = Rng.create 3 in
  let a = Array.init 10 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_bool "permutation" true (sorted = Array.init 10 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Dist                                                                *)
(* ------------------------------------------------------------------ *)

let moments f n rng =
  let xs = Array.init n (fun _ -> f rng) in
  (Stats.mean xs, Stats.std xs)

let test_normal_moments () =
  let rng = Rng.create 11 in
  let m, s = moments (fun r -> Dist.normal r ~mean:2. ~std:3.) 50_000 rng in
  check_bool "mean near 2" true (abs_float (m -. 2.) < 0.1);
  check_bool "std near 3" true (abs_float (s -. 3.) < 0.1)

let test_laplace_moments () =
  let rng = Rng.create 12 in
  let m, s = moments (fun r -> Dist.laplace r ~scale:1.5) 50_000 rng in
  check_bool "mean near 0" true (abs_float m < 0.05);
  (* Laplace(b) has std b·√2. *)
  check_bool "std near 1.5·√2" true (abs_float (s -. (1.5 *. sqrt 2.)) < 0.1)

let test_rademacher () =
  let rng = Rng.create 13 in
  let xs = Array.init 10_000 (fun _ -> Dist.rademacher rng) in
  Array.iter (fun x -> check_bool "pm one" true (x = 1. || x = -1.)) xs;
  check_bool "balanced" true (abs_float (Stats.mean xs) < 0.05)

let test_bernoulli () =
  let rng = Rng.create 14 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Dist.bernoulli rng ~p:0.3 then incr hits
  done;
  check_bool "p respected" true (abs_float ((float_of_int !hits /. 10_000.) -. 0.3) < 0.03);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Dist.bernoulli: p outside [0,1]") (fun () ->
      ignore (Dist.bernoulli rng ~p:1.5))

let test_exponential () =
  let rng = Rng.create 15 in
  let m, _ = moments (fun r -> Dist.exponential r ~rate:2.) 50_000 rng in
  check_bool "mean near 1/2" true (abs_float (m -. 0.5) < 0.02)

let test_categorical () =
  let rng = Rng.create 16 in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let k = Dist.categorical rng ~weights:[| 1.; 2.; 7. |] in
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "heaviest wins" true (counts.(2) > counts.(1) && counts.(1) > counts.(0));
  check_bool "ratios respected" true
    (abs_float ((float_of_int counts.(2) /. 10_000.) -. 0.7) < 0.03)

let test_zipf () =
  let rng = Rng.create 17 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let k = Dist.zipf rng ~n:10 ~s:1.2 in
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "rank 0 most popular" true
    (counts.(0) > counts.(4) && counts.(4) > counts.(9))

let test_on_sphere () =
  let rng = Rng.create 18 in
  for _ = 1 to 50 do
    let v = Dist.on_sphere rng ~dim:7 ~radius:3. in
    check_bool "radius" true (abs_float (Dm_linalg.Vec.norm2 v -. 3.) < 1e-9)
  done

let test_subgaussian_kinds () =
  let rng = Rng.create 19 in
  check_float "degenerate" 0. (Dist.subgaussian_sample rng Dist.Degenerate);
  check_float "degenerate sigma" 0. (Dist.subgaussian_sigma Dist.Degenerate);
  let u = Dist.subgaussian_sample rng (Dist.Uniform_pm 0.5) in
  check_bool "uniform bounded" true (abs_float u <= 0.5);
  let r = Dist.subgaussian_sample rng (Dist.Scaled_rademacher 0.25) in
  check_bool "rademacher scaled" true (abs_float r = 0.25)

let dist_props =
  [
    prop "normal_vec has requested dim" 50 QCheck.(int_range 1 30) (fun n ->
        let rng = Rng.create n in
        Dm_linalg.Vec.dim (Dist.normal_vec rng ~dim:n) = n);
    prop "uniform_vec respects bounds" 50 QCheck.(int_range 1 30) (fun n ->
        let rng = Rng.create n in
        let v = Dist.uniform_vec rng ~dim:n ~lo:(-1.) ~hi:1. in
        Array.for_all (fun x -> x >= -1. && x < 1.) v);
    prop "laplace median is 0-ish per sample sign balance" 20
      QCheck.(int_range 1 1000)
      (fun seed ->
        let rng = Rng.create seed in
        let pos = ref 0 in
        for _ = 1 to 200 do
          if Dist.laplace rng ~scale:1. > 0. then incr pos
        done;
        !pos > 50 && !pos < 150);
  ]

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_online_matches_batch () =
  let xs = [| 1.; 4.; 2.; 8.; 5.; 7. |] in
  let o = Stats.online_create () in
  Array.iter (Stats.online_add o) xs;
  check_float "mean" (Stats.mean xs) (Stats.online_mean o);
  check_bool "std" true (abs_float (Stats.std xs -. Stats.online_std o) < 1e-9);
  check_int "count" 6 (Stats.online_count o);
  check_float "min" 1. (Stats.online_min o);
  check_float "max" 8. (Stats.online_max o);
  check_float "sum" 27. (Stats.online_sum o)

let test_online_empty () =
  let o = Stats.online_create () in
  check_bool "mean nan" true (Float.is_nan (Stats.online_mean o));
  check_float "variance zero" 0. (Stats.online_variance o);
  (* Regression: these used to leak the ±infinity accumulator seeds. *)
  check_bool "min nan" true (Float.is_nan (Stats.online_min o));
  check_bool "max nan" true (Float.is_nan (Stats.online_max o));
  let s = Stats.summarize o in
  check_bool "summary min nan" true (Float.is_nan s.Stats.min);
  check_bool "summary max nan" true (Float.is_nan s.Stats.max);
  check_bool "summary pretty-prints as empty" true
    (Format.asprintf "%a" Stats.pp_summary s = "n=0 (empty)")

let test_quantiles () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "median interp" 2.5 (Stats.median xs);
  check_float "q0" 1. (Stats.quantile xs 0.);
  check_float "q1" 4. (Stats.quantile xs 1.);
  check_float "q25" 1.75 (Stats.quantile xs 0.25);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.quantile: empty input")
    (fun () -> ignore (Stats.quantile [||] 0.5))

let test_summary () =
  let o = Stats.online_create () in
  List.iter (Stats.online_add o) [ 1.; 2.; 3. ];
  let s = Stats.summarize o in
  check_int "count" 3 s.Stats.count;
  check_float "mean" 2. s.Stats.mean;
  check_float "sum" 6. s.Stats.sum

let test_merge_empty () =
  (* PR 1 fixed the ±inf extrema seeds leaking out of empty
     accumulators; merging must not reintroduce them. *)
  let feed xs =
    let o = Stats.online_create () in
    List.iter (Stats.online_add o) xs;
    o
  in
  let both_empty = Stats.merge (Stats.online_create ()) (Stats.online_create ()) in
  check_int "empty+empty count" 0 (Stats.online_count both_empty);
  check_bool "empty+empty min nan" true
    (Float.is_nan (Stats.online_min both_empty));
  check_bool "empty+empty max nan" true
    (Float.is_nan (Stats.online_max both_empty));
  let left = Stats.merge (Stats.online_create ()) (feed [ 2.; 4. ]) in
  check_int "empty+x count" 2 (Stats.online_count left);
  check_float "empty+x mean" 3. (Stats.online_mean left);
  check_float "empty+x min" 2. (Stats.online_min left);
  check_float "empty+x max" 4. (Stats.online_max left);
  let right = Stats.merge (feed [ 2.; 4. ]) (Stats.online_create ()) in
  check_float "x+empty mean" 3. (Stats.online_mean right);
  check_float "x+empty sum" 6. (Stats.online_sum right);
  (* merge must not mutate its arguments *)
  let a = feed [ 1. ] and b = feed [ 5. ] in
  ignore (Stats.merge a b);
  check_int "left untouched" 1 (Stats.online_count a);
  check_float "right untouched" 5. (Stats.online_mean b)

let stats_props =
  [
    prop "merge matches the concatenated stream" 300
      QCheck.(
        pair
          (array_of_size (QCheck.Gen.int_range 0 60) (float_range (-100.) 100.))
          (array_of_size (QCheck.Gen.int_range 0 60) (float_range (-100.) 100.)))
      (fun (xs, ys) ->
        let feed arr =
          let o = Stats.online_create () in
          Array.iter (Stats.online_add o) arr;
          o
        in
        let merged = Stats.merge (feed xs) (feed ys) in
        let whole = feed (Array.append xs ys) in
        let close a b =
          (Float.is_nan a && Float.is_nan b) || abs_float (a -. b) < 1e-6
        in
        Stats.online_count merged = Stats.online_count whole
        && close (Stats.online_mean merged) (Stats.online_mean whole)
        && close (Stats.online_std merged) (Stats.online_std whole)
        && close (Stats.online_sum merged) (Stats.online_sum whole)
        (* extrema are exact, including the empty-side NaN case *)
        && (let mn = Stats.online_min merged and wn = Stats.online_min whole in
            (Float.is_nan mn && Float.is_nan wn) || mn = wn)
        && (let mx = Stats.online_max merged and wx = Stats.online_max whole in
            (Float.is_nan mx && Float.is_nan wx) || mx = wx));
    prop "online mean equals batch mean" 100
      QCheck.(array_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.))
      (fun xs ->
        let o = Stats.online_create () in
        Array.iter (Stats.online_add o) xs;
        abs_float (Stats.online_mean o -. Stats.mean xs) < 1e-6);
    prop "online std equals batch std" 100
      QCheck.(array_of_size (QCheck.Gen.int_range 2 50) (float_range (-100.) 100.))
      (fun xs ->
        let o = Stats.online_create () in
        Array.iter (Stats.online_add o) xs;
        abs_float (Stats.online_std o -. Stats.std xs) < 1e-6);
    prop "quantile is monotone in p" 100
      QCheck.(array_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.))
      (fun xs ->
        Stats.quantile xs 0.2 <= Stats.quantile xs 0.8 +. 1e-9);
    prop "median between min and max" 100
      QCheck.(array_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.))
      (fun xs ->
        let m = Stats.median xs in
        let sorted = Dm_linalg.Vec.sorted xs in
        m >= sorted.(0) -. 1e-9 && m <= sorted.(Array.length xs - 1) +. 1e-9);
  ]

(* ------------------------------------------------------------------ *)
(* Subgaussian                                                         *)
(* ------------------------------------------------------------------ *)

let test_buffer_formula () =
  (* δ = √(2 log 2)·σ·log T, the paper's choice with C = 2. *)
  let sigma = 0.5 and horizon = 1000 in
  let expected = sqrt (2. *. log 2.) *. sigma *. log 1000. in
  check_float "buffer" expected (Subgaussian.buffer ~sigma ~horizon ())

let test_buffer_sigma_roundtrip () =
  let delta = 0.01 and horizon = 100_000 in
  let sigma = Subgaussian.sigma_for_buffer ~delta ~horizon () in
  check_bool "roundtrip" true
    (abs_float (Subgaussian.buffer ~sigma ~horizon () -. delta) < 1e-12)

let test_tail_bound () =
  check_float "zero sigma, positive z" 0.
    (Subgaussian.tail_bound ~sigma:0. ~z:1. ());
  check_float "capped at 1" 1. (Subgaussian.tail_bound ~sigma:10. ~z:0. ());
  let b1 = Subgaussian.tail_bound ~sigma:1. ~z:1. () in
  let b2 = Subgaussian.tail_bound ~sigma:1. ~z:2. () in
  check_bool "decreasing in z" true (b2 < b1)

let test_union_bound () =
  (* Eq. 6: for T >= 8, miss probability <= 1/T. *)
  List.iter
    (fun t ->
      check_bool
        (Printf.sprintf "T=%d miss <= 1/T" t)
        true
        (Subgaussian.union_miss_probability ~horizon:t <= 1. /. float_of_int t))
    [ 8; 100; 10_000 ]

let test_default_threshold () =
  (* Multi-dimensional: ε = n²/T, floored at 4nδ with δ = n/T. *)
  let eps = Subgaussian.default_threshold ~dim:10 ~horizon:1000 in
  check_bool "at least n^2/T" true (eps >= 0.1 -. 1e-12);
  check_bool "at least 4n·(n/T)" true (eps >= 0.4 -. 1e-12);
  (* One-dimensional: log₂T/T vs 4δ. *)
  let eps1 = Subgaussian.default_threshold ~dim:1 ~horizon:100 in
  check_bool "1-d value" true
    (abs_float (eps1 -. (log 100. /. log 2. /. 100.)) < 1e-12)

let subgaussian_props =
  [
    prop "buffer monotone in horizon" 50 QCheck.(int_range 2 100_000) (fun t ->
        Subgaussian.buffer ~sigma:1. ~horizon:(t + 1) ()
        >= Subgaussian.buffer ~sigma:1. ~horizon:t ());
    prop "buffer linear in sigma" 50 QCheck.(float_range 0. 10.) (fun s ->
        let b1 = Subgaussian.buffer ~sigma:s ~horizon:100 () in
        let b2 = Subgaussian.buffer ~sigma:(2. *. s) ~horizon:100 () in
        abs_float (b2 -. (2. *. b1)) < 1e-9);
    prop "empirical tail within bound (uniform and rademacher)" 20
      QCheck.(int_range 1 500)
      (fun seed ->
        (* Both laws are a-sub-Gaussian with σ = a (Eq. 4 discussion);
           the buffer computed from that σ must dominate their
           empirical tails. *)
        let rng = Rng.create seed in
        let check law =
          let sigma = Dist.subgaussian_sigma law in
          let z = 1.5 *. sigma in
          let bound = Subgaussian.tail_bound ~sigma ~z () in
          let exceed = ref 0 in
          for _ = 1 to 1000 do
            if abs_float (Dist.subgaussian_sample rng law) > z then incr exceed
          done;
          float_of_int !exceed /. 1000. <= bound +. 0.05
        in
        check (Dist.Uniform_pm 0.7) && check (Dist.Scaled_rademacher 0.7));
    prop "quantiles stay within the data range" 100
      QCheck.(
        pair
          (array_of_size (QCheck.Gen.int_range 1 40) (float_range (-50.) 50.))
          (float_range 0. 1.))
      (fun (xs, p) ->
        let q = Stats.quantile xs p in
        let sorted = Dm_linalg.Vec.sorted xs in
        q >= sorted.(0) -. 1e-9
        && q <= sorted.(Array.length xs - 1) +. 1e-9);
    prop "empirical tail within bound (gaussian)" 20 QCheck.(int_range 1 500)
      (fun seed ->
        let rng = Rng.create seed in
        let sigma = 1. in
        let z = 2. in
        let n = 2000 in
        let exceed = ref 0 in
        for _ = 1 to n do
          if abs_float (Dist.normal rng ~mean:0. ~std:sigma) > z then
            incr exceed
        done;
        let empirical = float_of_int !exceed /. float_of_int n in
        (* Eq. 4 bound with C = 2 plus sampling slack. *)
        empirical <= Subgaussian.tail_bound ~sigma ~z () +. 0.05);
  ]

(* ------------------------------------------------------------------ *)

let () = Test_env.install_pool_from_env ()

let () =
  Alcotest.run "dm_prob"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split_independence;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int uniformity" `Quick test_rng_int_range;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle;
        ] );
      ( "dist",
        [
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "laplace moments" `Quick test_laplace_moments;
          Alcotest.test_case "rademacher" `Quick test_rademacher;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli;
          Alcotest.test_case "exponential" `Quick test_exponential;
          Alcotest.test_case "categorical" `Quick test_categorical;
          Alcotest.test_case "zipf" `Quick test_zipf;
          Alcotest.test_case "on sphere" `Quick test_on_sphere;
          Alcotest.test_case "subgaussian kinds" `Quick test_subgaussian_kinds;
        ]
        @ dist_props );
      ( "stats",
        [
          Alcotest.test_case "online vs batch" `Quick test_online_matches_batch;
          Alcotest.test_case "online empty" `Quick test_online_empty;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "merge empty cases" `Quick test_merge_empty;
        ]
        @ stats_props );
      ( "subgaussian",
        [
          Alcotest.test_case "buffer formula" `Quick test_buffer_formula;
          Alcotest.test_case "buffer/sigma roundtrip" `Quick
            test_buffer_sigma_roundtrip;
          Alcotest.test_case "tail bound" `Quick test_tail_bound;
          Alcotest.test_case "union bound" `Quick test_union_bound;
          Alcotest.test_case "default threshold" `Quick test_default_threshold;
        ]
        @ subgaussian_props );
    ]
