(* Unit tests for the perf-record parsing and regression-delta logic
   behind bench/compare.exe (library [Dm_bench_record]).  Fixture
   records are built inline so the threshold flag is exercised both
   ways without touching the filesystem. *)

module Record = Dm_bench_record.Record

let check_bool msg expected actual = Alcotest.(check bool) msg expected actual
let check_int msg expected actual = Alcotest.(check int) msg expected actual

(* A minimal dm-bench/1 record with one stage-1 artifact, one live
   stage-2 kernel and one skipped (null) kernel. *)
let fixture ~stamp ~fig4 ~matvec =
  Printf.sprintf
    {|{
  "schema": "dm-bench/1",
  "stamp": "%s",
  "scale": 0.05,
  "stage1_wall_clock_s": [
    { "artifact": "fig4", "seconds": %g },
    { "artifact": "longrun", "seconds": 2.0 }
  ],
  "stage2_ns_per_call": [
    { "benchmark": "kernel matvec n1024", "ns": %g },
    { "benchmark": "volume log_det n100", "ns": null }
  ]
}|}
    stamp fig4 matvec

let parse_exn src =
  match Record.of_string src with
  | Ok r -> r
  | Error msg -> Alcotest.failf "expected a record, got: %s" msg

let render f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let v = f ppf in
  Format.pp_print_flush ppf ();
  (v, Buffer.contents buf)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_parse () =
  let r = parse_exn (fixture ~stamp:"20260806-120000" ~fig4:1.5 ~matvec:800.) in
  Alcotest.(check string) "stamp" "20260806-120000" r.Record.stamp;
  check_int "stage1 entries" 2 (List.length r.Record.stage1);
  check_bool "stage1 value" true
    (List.assoc "fig4" r.Record.stage1 = 1.5);
  check_int "stage2 entries" 2 (List.length r.Record.stage2);
  check_bool "null ns parses to None" true
    (List.assoc "volume log_det n100" r.Record.stage2 = None)

let test_parse_errors () =
  let is_error = function Error _ -> true | Ok _ -> false in
  check_bool "truncated input" true (is_error (Record.of_string "{"));
  check_bool "non-object input" true (is_error (Record.of_string "42 43"));
  check_bool "wrong schema" true
    (is_error (Record.of_string {|{ "schema": "dm-bench/9" }|}));
  check_bool "missing schema" true (is_error (Record.of_string {|{ "a": 1 }|}));
  check_bool "missing file" true
    (is_error (Record.load "/nonexistent/BENCH.json"))

let compare_fixtures ~threshold ~old_ns ~new_ns =
  let old_rec = parse_exn (fixture ~stamp:"old" ~fig4:1.0 ~matvec:old_ns) in
  let new_rec = parse_exn (fixture ~stamp:"new" ~fig4:1.0 ~matvec:new_ns) in
  render (fun ppf -> Record.compare_records ppf ~threshold old_rec new_rec)

let test_regression_flagged () =
  (* +50% on one kernel past a +25% threshold: exactly one regression,
     and the table says so. *)
  let total, out = compare_fixtures ~threshold:0.25 ~old_ns:800. ~new_ns:1200. in
  check_int "one regression" 1 total;
  check_bool "verdict printed" true (contains out "REGRESSION");
  check_bool "header names both stamps" true
    (contains out "old (old) vs new (new)")

let test_regression_not_flagged () =
  (* The same +50% under a +60% threshold passes clean. *)
  let total, out = compare_fixtures ~threshold:0.6 ~old_ns:800. ~new_ns:1200. in
  check_int "no regressions" 0 total;
  check_bool "no verdict" true (not (contains out "REGRESSION"));
  (* Exactly at the threshold is not a regression (strict >). *)
  let total, _ = compare_fixtures ~threshold:0.5 ~old_ns:800. ~new_ns:1200. in
  check_int "boundary not flagged" 0 total

let test_improvement () =
  let total, out = compare_fixtures ~threshold:0.25 ~old_ns:800. ~new_ns:400. in
  check_int "no regressions" 0 total;
  check_bool "marked improved" true (contains out "improved")

let test_new_and_removed_entries () =
  (* Disjoint benchmark sets: everything is "new" or "removed", and
     neither ever counts as a regression. *)
  let old_rec =
    parse_exn
      {|{ "schema": "dm-bench/1", "stamp": "old",
          "stage1_wall_clock_s": [ { "artifact": "fig4", "seconds": 1.0 } ],
          "stage2_ns_per_call": [] }|}
  in
  let new_rec =
    parse_exn
      {|{ "schema": "dm-bench/1", "stamp": "new",
          "stage1_wall_clock_s": [ { "artifact": "fig5", "seconds": 99.0 } ],
          "stage2_ns_per_call": [] }|}
  in
  let total, out =
    render (fun ppf -> Record.compare_records ppf ~threshold:0.25 old_rec new_rec)
  in
  check_int "no regressions" 0 total;
  check_bool "new listed" true (contains out "new");
  check_bool "removed listed" true (contains out "removed")

let test_critical_removal_flagged () =
  (* Dropping a critical sparse_cut kernel from the matrix is itself a
     regression; dropping a non-critical one still is not. *)
  check_bool "prefix list names sparse_cut" true
    (List.mem "pricing/sparse_cut" Record.critical_prefixes);
  check_bool "is_critical matches" true
    (Record.is_critical "pricing/sparse_cut n1024 nnz23");
  check_bool "is_critical covers serve" true
    (Record.is_critical "serve/batch_decide B64 n4096 k32");
  check_bool "is_critical covers gc" true
    (Record.is_critical "gc/serve_loop minor_words");
  check_bool "is_critical rejects others" true
    (not (Record.is_critical "pricing/fig1 regret curve"));
  let old_rec =
    parse_exn
      {|{ "schema": "dm-bench/1", "stamp": "old",
          "stage1_wall_clock_s": [],
          "stage2_ns_per_call": [
            { "benchmark": "pricing/sparse_cut n1024 nnz23", "ns": 50e3 },
            { "benchmark": "pricing/fig1 regret curve", "ns": 900.0 } ] }|}
  in
  let new_rec =
    parse_exn
      {|{ "schema": "dm-bench/1", "stamp": "new",
          "stage1_wall_clock_s": [],
          "stage2_ns_per_call": [] }|}
  in
  let total, out =
    render (fun ppf -> Record.compare_records ppf ~threshold:0.25 old_rec new_rec)
  in
  check_int "only the critical removal counts" 1 total;
  check_bool "flagged as removed regression" true
    (contains out "REGRESSION (removed)");
  (* A critical kernel that is present but slower still goes through
     the ordinary threshold logic. *)
  let fast =
    parse_exn
      {|{ "schema": "dm-bench/1", "stamp": "new2",
          "stage1_wall_clock_s": [],
          "stage2_ns_per_call": [
            { "benchmark": "pricing/sparse_cut n1024 nnz23", "ns": 55e3 },
            { "benchmark": "pricing/fig1 regret curve", "ns": 900.0 } ] }|}
  in
  let total, _ =
    render (fun ppf -> Record.compare_records ppf ~threshold:0.25 old_rec fast)
  in
  check_int "within threshold: clean" 0 total

let test_null_kernel_never_flagged () =
  (* A kernel that was skipped (null) on either side cannot regress. *)
  let old_rec =
    parse_exn
      {|{ "schema": "dm-bench/1", "stamp": "old",
          "stage1_wall_clock_s": [],
          "stage2_ns_per_call": [ { "benchmark": "k", "ns": null } ] }|}
  in
  let new_rec =
    parse_exn
      {|{ "schema": "dm-bench/1", "stamp": "new",
          "stage1_wall_clock_s": [],
          "stage2_ns_per_call": [ { "benchmark": "k", "ns": 1e9 } ] }|}
  in
  let total, out =
    render (fun ppf -> Record.compare_records ppf ~threshold:0.25 old_rec new_rec)
  in
  check_int "no regressions" 0 total;
  (* Its columns render a stable "n/a" — a skipped estimate must never
     read as a number or a bare dash. *)
  check_bool "null side renders n/a" true (contains out "n/a")

let test_one_sided_renders_na () =
  (* A key present only in the new record: old value and delta are both
     "n/a", and the row is "new", not a regression. *)
  let old_rec =
    parse_exn
      {|{ "schema": "dm-bench/1", "stamp": "old",
          "stage1_wall_clock_s": [],
          "stage2_ns_per_call": [] }|}
  in
  let new_rec =
    parse_exn
      {|{ "schema": "dm-bench/1", "stamp": "new",
          "stage1_wall_clock_s": [],
          "stage2_ns_per_call": [
            { "benchmark": "serve/batch_decide B64 n4096 k32", "ns": 7e4 } ] }|}
  in
  let total, out =
    render (fun ppf -> Record.compare_records ppf ~threshold:0.25 old_rec new_rec)
  in
  check_int "new key is not a regression" 0 total;
  check_bool "new verdict" true (contains out "new");
  check_bool "missing old renders n/a" true (contains out "n/a");
  (* And the symmetric removal direction: the serve/ key is critical,
     so dropping it flags, with n/a in the vacated columns. *)
  let total, out =
    render (fun ppf -> Record.compare_records ppf ~threshold:0.25 new_rec old_rec)
  in
  check_int "critical serve removal flags" 1 total;
  check_bool "removal renders n/a" true (contains out "n/a")

let () = Test_env.install_pool_from_env ()

let () =
  Alcotest.run "dm_bench"
    [
      ( "record",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "compare",
        [
          Alcotest.test_case "regression flagged" `Quick test_regression_flagged;
          Alcotest.test_case "regression not flagged" `Quick
            test_regression_not_flagged;
          Alcotest.test_case "improvement" `Quick test_improvement;
          Alcotest.test_case "new and removed entries" `Quick
            test_new_and_removed_entries;
          Alcotest.test_case "critical removal flagged" `Quick
            test_critical_removal_flagged;
          Alcotest.test_case "null kernel never flagged" `Quick
            test_null_kernel_never_flagged;
          Alcotest.test_case "one-sided keys render n/a" `Quick
            test_one_sided_renders_na;
        ] );
    ]
