(* Unit and property tests for the dm_synth dataset simulators. *)

module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Rng = Dm_prob.Rng
module Stats = Dm_prob.Stats
module Dp = Dm_privacy.Dp
module Comp = Dm_privacy.Compensation
module Movielens = Dm_synth.Movielens
module Linear_query = Dm_synth.Linear_query
module Airbnb = Dm_synth.Airbnb
module Avazu = Dm_synth.Avazu
module Bids = Dm_synth.Bids
module Linreg = Dm_ml.Linreg
module Ftrl = Dm_ml.Ftrl
module Split = Dm_ml.Split

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prop name count arb f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(Test_env.qcheck_count count) arb f)

(* ------------------------------------------------------------------ *)
(* Movielens                                                           *)
(* ------------------------------------------------------------------ *)

let test_movielens_shapes () =
  let rng = Rng.create 1 in
  let c = Movielens.generate rng ~owners:200 in
  check_int "owner count" 200 (Movielens.owner_count c);
  check_int "data vector" 200 (Vec.dim (Movielens.data_vector c));
  check_int "ranges" 200 (Vec.dim (Movielens.data_ranges c));
  check_int "contracts" 200 (Array.length (Movielens.contracts c))

let test_movielens_ranges () =
  let rng = Rng.create 2 in
  let c = Movielens.generate rng ~owners:500 in
  Array.iter
    (fun o ->
      check_bool "rating in scale" true
        (o.Movielens.mean_rating >= 0.5 && o.Movielens.mean_rating <= 5.0);
      check_bool "has ratings" true (o.Movielens.num_ratings >= 5))
    c.Movielens.owners;
  Array.iter
    (fun d -> check_bool "range = 4.5" true (abs_float (d -. 4.5) < 1e-9))
    (Movielens.data_ranges c)

let test_movielens_determinism () =
  let c1 = Movielens.generate (Rng.create 7) ~owners:50 in
  let c2 = Movielens.generate (Rng.create 7) ~owners:50 in
  check_bool "same corpus from same seed" true
    (Vec.approx_equal (Movielens.data_vector c1) (Movielens.data_vector c2))

let test_movielens_heterogeneous () =
  let rng = Rng.create 3 in
  let c = Movielens.generate rng ~owners:1000 in
  check_bool "mean ratings vary" true
    (Stats.std (Movielens.data_vector c) > 0.2);
  (* Contract caps differ between owners. *)
  let caps = Array.map Comp.cap (Movielens.contracts c) in
  check_bool "caps vary" true (Stats.std caps > 0.05)

(* ------------------------------------------------------------------ *)
(* Linear_query                                                        *)
(* ------------------------------------------------------------------ *)

let test_query_noise_grid () =
  let g = Linear_query.noise_variance_grid in
  check_int "nine variances" 9 (Array.length g);
  check_bool "covers 1e-4..1e4" true (g.(0) = 1e-4 && g.(8) = 1e4);
  (* Every drawn query's scale must come from the grid. *)
  let rng = Rng.create 4 in
  for _ = 1 to 200 do
    let q = Linear_query.draw rng ~dist:Linear_query.Mixed ~owners:10 in
    let v = 2. *. q.Dp.noise_scale *. q.Dp.noise_scale in
    check_bool "variance on grid" true
      (Array.exists (fun gv -> abs_float (gv -. v) < 1e-9 *. gv) g)
  done

let test_query_stream () =
  let rng = Rng.create 5 in
  let qs = Linear_query.stream rng ~dist:Linear_query.Gaussian ~owners:20 ~rounds:50 in
  check_int "rounds" 50 (Array.length qs);
  Array.iter (fun q -> check_int "owners" 20 (Dp.owner_count q)) qs

let test_query_uniform_bounds () =
  let rng = Rng.create 6 in
  for _ = 1 to 100 do
    let q = Linear_query.draw rng ~dist:Linear_query.Uniform ~owners:15 in
    check_bool "weights in [-1,1)" true
      (Array.for_all (fun w -> w >= -1. && w < 1.) q.Dp.weights)
  done

(* ------------------------------------------------------------------ *)
(* Airbnb                                                              *)
(* ------------------------------------------------------------------ *)

let airbnb_corpus = lazy (Airbnb.generate (Rng.create 10) ~rows:4000)

let test_airbnb_schema () =
  let records = Lazy.force airbnb_corpus in
  Array.iter
    (fun r ->
      check_bool "city known" true (Array.mem r.Airbnb.city Airbnb.cities);
      check_bool "accommodates" true
        (r.Airbnb.accommodates >= 1 && r.Airbnb.accommodates <= 17);
      check_bool "review score" true
        (r.Airbnb.review_score >= 20. && r.Airbnb.review_score <= 100.);
      check_bool "response rate" true
        (r.Airbnb.host_response_rate >= 0. && r.Airbnb.host_response_rate <= 1.);
      check_int "amenity flags" (Array.length Airbnb.amenity_names)
        (Array.length r.Airbnb.amenities);
      check_bool "log price plausible" true
        (r.Airbnb.log_price > 1.5 && r.Airbnb.log_price < 9.))
    records

let test_airbnb_encoding_dim () =
  let records = Lazy.force airbnb_corpus in
  let enc = Airbnb.fit_encoder records in
  check_int "n = 55" 55 Airbnb.feature_dim;
  Array.iter
    (fun r ->
      let x = Airbnb.encode enc r in
      check_int "dim" 55 (Vec.dim x);
      check_bool "bias" true (x.(0) = 1.);
      check_bool "all finite" true (Array.for_all Float.is_finite x))
    records

let test_airbnb_design_matrix () =
  let records = Lazy.force airbnb_corpus in
  let enc = Airbnb.fit_encoder records in
  let m = Airbnb.design_matrix enc records in
  check_int "rows" (Array.length records) (Mat.rows m);
  check_int "cols" 55 (Mat.cols m);
  check_bool "row matches encode" true
    (Vec.approx_equal (Mat.row m 42) (Airbnb.encode enc records.(42)))

let test_airbnb_ols_fit_quality () =
  (* The paper's OLS on the real corpus reaches test MSE 0.226; our
     hedonic ground truth has residual std 0.42, so a good fit must
     land near MSE ≈ 0.18 and far below the total variance. *)
  let records = Lazy.force airbnb_corpus in
  let enc = Airbnb.fit_encoder records in
  let { Split.train; test } =
    Split.random (Rng.create 11) ~test_fraction:0.2 records
  in
  let model = Linreg.fit ~intercept:false (Airbnb.design_matrix enc train) (Airbnb.targets train) in
  let test_mse = Linreg.mse model (Airbnb.design_matrix enc test) (Airbnb.targets test) in
  let variance =
    let s = Stats.std (Airbnb.targets test) in
    s *. s
  in
  check_bool "test mse below 0.35" true (test_mse < 0.35);
  check_bool "explains most variance" true (test_mse < 0.6 *. variance)

let test_airbnb_feature_norm_bound () =
  let records = Lazy.force airbnb_corpus in
  let enc = Airbnb.fit_encoder records in
  let s = Airbnb.max_feature_norm enc records in
  check_bool "bounded" true (s > 1. && s < sqrt 55.)

(* ------------------------------------------------------------------ *)
(* Avazu                                                               *)
(* ------------------------------------------------------------------ *)

let avazu_corpus = lazy (Avazu.generate (Rng.create 20) ~rounds:30_000)

let test_avazu_schema () =
  let imps = Lazy.force avazu_corpus in
  Array.iter
    (fun imp ->
      check_int "nine fields" 9 (List.length imp.Avazu.fields);
      List.iter
        (fun (f, _) ->
          check_bool "known field" true (Array.mem f Avazu.field_names))
        imp.Avazu.fields)
    imps

let test_avazu_base_rate () =
  let imps = Lazy.force avazu_corpus in
  let clicks =
    Array.fold_left (fun acc i -> if i.Avazu.clicked then acc + 1 else acc) 0 imps
  in
  let rate = float_of_int clicks /. float_of_int (Array.length imps) in
  check_bool "ctr near 17%" true (rate > 0.10 && rate < 0.25)

let test_avazu_true_ctr_range () =
  let imps = Lazy.force avazu_corpus in
  Array.iter
    (fun imp ->
      let p = Avazu.true_ctr imp in
      check_bool "prob" true (p > 0. && p < 1.))
    imps

let test_avazu_encoding () =
  let imps = Lazy.force avazu_corpus in
  let imp = imps.(0) in
  let fs = Avazu.encode ~dim:128 imp in
  check_bool "nonempty" true (fs <> []);
  check_bool "in range" true
    (List.for_all (fun f -> f.Dm_ml.Hashing.index < 128 && f.Dm_ml.Hashing.index >= 0) fs);
  (* Same impression encodes identically (pure function). *)
  check_bool "deterministic" true (Avazu.encode ~dim:128 imp = fs)

let test_avazu_ftrl_sparsity () =
  (* FTRL on the synthetic stream recovers a sparse weight vector, the
     property the paper reports (21 non-zeros at n=128, 23 at n=1024). *)
  let imps = Lazy.force avazu_corpus in
  let dim = 128 in
  let examples =
    Array.map (fun i -> (Avazu.encode ~dim i, i.Avazu.clicked)) imps
  in
  let m =
    Ftrl.create ~params:{ Ftrl.alpha = 0.1; beta = 1.; l1 = 20.; l2 = 1. } ~dim ()
  in
  Ftrl.train m examples ~epochs:2;
  let nz = Ftrl.nonzeros m in
  check_bool "sparse but informative" true (nz >= 3 && nz <= 80);
  (* Base-rate entropy of this stream is ≈0.510 and the Bayes loss
     ≈0.487; a trained model must land between them. *)
  let loss = Ftrl.log_loss m examples in
  check_bool "beats constant predictor" true (loss < 0.505);
  check_bool "not below Bayes" true (loss > 0.484)

(* ------------------------------------------------------------------ *)
(* Adversarial valuation streams                                       *)
(* ------------------------------------------------------------------ *)

module Adversarial = Dm_synth.Adversarial

let adv_rounds = 40

let adv_make ?(path = Adversarial.Static)
    ?(noise = Adversarial.Subgaussian (Dm_prob.Dist.Gaussian 0.02))
    ?(buyer = Adversarial.Truthful) seed =
  Adversarial.make ~seed ~dim:3 ~rounds:adv_rounds ~path ~noise ~buyer ()

let adversarial_props =
  [
    prop "streams replay bit-for-bit from the seed" 10
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let mk () =
          adv_make seed
            ~path:(Adversarial.Drift { speed = 0.7 })
            ~noise:(Adversarial.Student_t { dof = 2.5; scale = 0.05 })
            ~buyer:(Adversarial.Strategic { margin = 0.1; flip_prob = 0.5 })
        in
        let a = mk () and b = mk () in
        let rounds_equal i =
          Adversarial.theta a i = Adversarial.theta b i
          && Adversarial.feature a i = Adversarial.feature b i
          && Adversarial.reserve a i = Adversarial.reserve b i
          && Adversarial.noise_term a i = Adversarial.noise_term b i
          &&
          let p = Adversarial.market_value a i in
          List.for_all
            (fun price ->
              Adversarial.respond a ~round:i ~price
              = Adversarial.respond b ~round:i ~price)
            [ p -. 0.05; p; p +. 0.05 ]
        in
        List.for_all rounds_equal (List.init adv_rounds Fun.id));
    prop "regime switches land exactly on the boundaries" 10
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let boundaries = [| 11; 19; 30 |] in
        let s = adv_make seed ~path:(Adversarial.Switches { boundaries }) in
        List.for_all
          (fun t ->
            let same = Adversarial.theta s t == Adversarial.theta s (t - 1) in
            if Array.mem t boundaries then not same else same)
          (List.init (adv_rounds - 1) (fun i -> i + 1)));
    prop "heavy-tailed draws are finite, the Pareto arm one-sided" 10
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let t_arm =
          adv_make seed ~noise:(Adversarial.Student_t { dof = 1.8; scale = 0.05 })
        in
        let p_arm =
          adv_make seed ~noise:(Adversarial.Pareto { alpha = 1.8; scale = 0.05 })
        in
        List.for_all
          (fun i ->
            Float.is_finite (Adversarial.noise_term t_arm i)
            && Adversarial.noise_term p_arm i <= -0.05)
          (List.init adv_rounds Fun.id));
    prop "heavy-tailed draws are scale-covariant" 10
      QCheck.(int_range 1 10_000)
      (fun seed ->
        (* Both samplers multiply a scale-free draw by [scale], and
           doubling a float is exact, so covariance holds bit-for-bit. *)
        let covariant mk =
          let s1 = adv_make seed ~noise:(mk 0.05) in
          let s2 = adv_make seed ~noise:(mk 0.1) in
          List.for_all
            (fun i ->
              Adversarial.noise_term s2 i = 2. *. Adversarial.noise_term s1 i)
            (List.init adv_rounds Fun.id)
        in
        covariant (fun scale -> Adversarial.Student_t { dof = 2.5; scale })
        && covariant (fun scale -> Adversarial.Pareto { alpha = 2.5; scale }));
    prop "strategic lies stay inside the haggling margin" 10
      QCheck.(pair (int_range 1 10_000) (float_range 0.001 2.))
      (fun (seed, eta) ->
        let margin = 0.1 in
        let s =
          adv_make seed
            ~buyer:(Adversarial.Strategic { margin; flip_prob = 1. })
        in
        List.for_all
          (fun i ->
            let v = Adversarial.market_value s i in
            List.for_all
              (fun price ->
                Adversarial.respond s ~round:i ~price
                = Adversarial.truthful_accept s ~round:i ~price)
              [ v -. margin -. eta; v +. margin +. eta ])
          (List.init adv_rounds Fun.id));
  ]

let synth_props =
  [
    prop "airbnb determinism" 5 QCheck.(int_range 1 100) (fun seed ->
        let a = Airbnb.generate (Rng.create seed) ~rows:20 in
        let b = Airbnb.generate (Rng.create seed) ~rows:20 in
        Array.for_all2
          (fun r1 r2 -> r1.Airbnb.log_price = r2.Airbnb.log_price)
          a b);
    prop "avazu determinism" 5 QCheck.(int_range 1 100) (fun seed ->
        let a = Avazu.generate (Rng.create seed) ~rounds:20 in
        let b = Avazu.generate (Rng.create seed) ~rounds:20 in
        Array.for_all2 (fun i1 i2 -> i1 = i2) a b);
    prop "city premium shows up in generated prices" 3
      QCheck.(int_range 200 400)
      (fun seed ->
        let records = Airbnb.generate (Rng.create seed) ~rows:6000 in
        let mean_log city =
          let xs =
            Array.of_list
              (List.filter_map
                 (fun r ->
                   if r.Airbnb.city = city then Some r.Airbnb.log_price
                   else None)
                 (Array.to_list records))
          in
          Stats.mean xs
        in
        mean_log "SF" > mean_log "Chicago");
  ]

(* ------------------------------------------------------------------ *)
(* Bids                                                                *)
(* ------------------------------------------------------------------ *)

let bids_make ?(bidders = 4) ?(rounds = 30) seed =
  Bids.make ~affinity_spread:0.4 ~seed ~dim:3 ~bidders ~rounds
    ~noise:(Bids.Gaussian 0.25) ()

let test_bids_shapes () =
  let s = bids_make 11 in
  check_int "dim" 3 (Bids.dim s);
  check_int "bidders" 4 (Bids.bidders s);
  check_int "rounds" 30 (Bids.rounds s);
  check_int "bid vector width" 4 (Array.length (Bids.bids s 0));
  let x = Bids.feature s 5 in
  check_bool "feature is unit" true (abs_float (Vec.norm2 x -. 1.) < 1e-9);
  check_bool "feature is non-negative" true
    (List.for_all (fun v -> v >= 0.) (Vec.to_list x));
  check_bool "common value is the anchor product" true
    (abs_float (Bids.common_value s 5 -. Vec.dot x (Bids.theta s)) < 1e-12);
  check_bool "floor is 0.3 of the common value (default ratio)" true
    (let s = Bids.make ~seed:11 ~dim:3 ~bidders:2 ~rounds:5
               ~noise:(Bids.Gaussian 0.1) () in
     abs_float (Bids.floor s 2 -. (0.3 *. Bids.common_value s 2)) < 1e-12)

let test_bids_validation () =
  let make ?(dim = 3) ?(bidders = 2) ?(rounds = 5) ?(spread = 0.2)
      ?(noise = Bids.Gaussian 0.1) () =
    Bids.make ~affinity_spread:spread ~seed:1 ~dim ~bidders ~rounds ~noise ()
  in
  let raises f =
    match f () with _ -> false | exception Invalid_argument _ -> true
  in
  check_bool "dim >= 1" true (raises (fun () -> make ~dim:0 ()));
  check_bool "bidders >= 1" true (raises (fun () -> make ~bidders:0 ()));
  check_bool "rounds >= 1" true (raises (fun () -> make ~rounds:0 ()));
  check_bool "spread < 1" true (raises (fun () -> make ~spread:1. ()));
  check_bool "sigma >= 0" true
    (raises (fun () -> make ~noise:(Bids.Gaussian (-0.1)) ()));
  check_bool "student-t dof > 0" true
    (raises (fun () ->
         make ~noise:(Bids.Student_t { dof = 0.; scale = 1. }) ()))

let bids_props =
  [
    prop "streams replay bit-for-bit from a seed" 20
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let a = bids_make seed and b = bids_make seed in
        List.for_all
          (fun t -> Bids.bids a t = Bids.bids b t && Bids.floor a t = Bids.floor b t)
          (List.init 30 Fun.id)
        && List.for_all
             (fun i -> Bids.affinity a i = Bids.affinity b i)
             (List.init 4 Fun.id));
    prop "adding bidders never perturbs existing ones" 20
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let small = bids_make ~bidders:3 seed in
        let large = bids_make ~bidders:6 seed in
        List.for_all
          (fun t ->
            let b3 = Bids.bids small t and b6 = Bids.bids large t in
            List.for_all (fun i -> b3.(i) = b6.(i)) (List.init 3 Fun.id))
          (List.init 30 Fun.id)
        && List.for_all
             (fun i -> Bids.affinity small i = Bids.affinity large i)
             (List.init 3 Fun.id));
    prop "bids are non-negative and below the payoff bound" 20
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let s = bids_make seed in
        let h = Bids.payoff_bound s in
        h >= 1e-9
        && List.for_all
             (fun t ->
               Array.for_all (fun b -> b >= 0. && b <= h) (Bids.bids s t))
             (List.init 30 Fun.id));
    prop "affinities stay inside 1 +/- spread" 20
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let s = bids_make seed in
        List.for_all
          (fun i ->
            let a = Bids.affinity s i in
            a >= 0.6 && a <= 1.4)
          (List.init 4 Fun.id));
  ]

(* ------------------------------------------------------------------ *)

let () = Test_env.install_pool_from_env ()

let () =
  Alcotest.run "dm_synth"
    [
      ( "movielens",
        [
          Alcotest.test_case "shapes" `Quick test_movielens_shapes;
          Alcotest.test_case "value ranges" `Quick test_movielens_ranges;
          Alcotest.test_case "determinism" `Quick test_movielens_determinism;
          Alcotest.test_case "heterogeneity" `Quick test_movielens_heterogeneous;
        ] );
      ( "linear_query",
        [
          Alcotest.test_case "noise grid" `Quick test_query_noise_grid;
          Alcotest.test_case "stream" `Quick test_query_stream;
          Alcotest.test_case "uniform bounds" `Quick test_query_uniform_bounds;
        ] );
      ( "airbnb",
        [
          Alcotest.test_case "schema" `Quick test_airbnb_schema;
          Alcotest.test_case "encoding dim" `Quick test_airbnb_encoding_dim;
          Alcotest.test_case "design matrix" `Quick test_airbnb_design_matrix;
          Alcotest.test_case "ols fit quality" `Slow test_airbnb_ols_fit_quality;
          Alcotest.test_case "feature norm bound" `Quick test_airbnb_feature_norm_bound;
        ] );
      ( "avazu",
        [
          Alcotest.test_case "schema" `Quick test_avazu_schema;
          Alcotest.test_case "base rate" `Quick test_avazu_base_rate;
          Alcotest.test_case "true ctr range" `Quick test_avazu_true_ctr_range;
          Alcotest.test_case "encoding" `Quick test_avazu_encoding;
          Alcotest.test_case "ftrl sparsity" `Slow test_avazu_ftrl_sparsity;
        ] );
      ("adversarial", adversarial_props);
      ( "bids",
        [
          Alcotest.test_case "shapes" `Quick test_bids_shapes;
          Alcotest.test_case "validation" `Quick test_bids_validation;
        ]
        @ bids_props );
      ("properties", synth_props);
    ]
