(* Unit and property tests for the dm_market core library. *)

module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Ellipsoid = Dm_market.Ellipsoid
module Model = Dm_market.Model
module Mechanism = Dm_market.Mechanism
module Regret = Dm_market.Regret
module Feature = Dm_market.Feature
module Broker = Dm_market.Broker
module Adversary = Dm_market.Adversary

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let prop name count arb f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(Test_env.qcheck_count count) arb f)

(* ------------------------------------------------------------------ *)
(* Ellipsoid: construction and bounds                                  *)
(* ------------------------------------------------------------------ *)

let test_ball () =
  let e = Ellipsoid.ball ~dim:3 ~radius:2. in
  check_int "dim" 3 (Ellipsoid.dim e);
  let b = Ellipsoid.bounds e ~x:(Vec.basis 3 0) in
  check_float "lower" (-2.) b.Ellipsoid.lower;
  check_float "upper" 2. b.Ellipsoid.upper;
  check_float "mid" 0. b.Ellipsoid.mid;
  check_float "width" 4. (Ellipsoid.width e ~x:(Vec.basis 3 0))

let test_of_box () =
  (* K₁ = [−1,2] × [−3,1] → R = √(4 + 9) = √13. *)
  let e = Ellipsoid.of_box ~lo:[| -1.; -3. |] ~hi:[| 2.; 1. |] in
  check_float "radius via width" (2. *. sqrt 13.)
    (Ellipsoid.width e ~x:(Vec.basis 2 0));
  check_bool "contains the box corners" true
    (Ellipsoid.contains e [| 2.; 1. |] && Ellipsoid.contains e [| -1.; -3. |])

let test_bounds_direction () =
  let e = Ellipsoid.ball ~dim:2 ~radius:1. in
  (* Along (3,4)/5 scaled by 5: width = 2·‖x‖·R = 10. *)
  let b = Ellipsoid.bounds e ~x:[| 3.; 4. |] in
  check_float "half width = ‖x‖R" 5. b.Ellipsoid.half_width

let test_contains () =
  let e = Ellipsoid.ball ~dim:2 ~radius:1. in
  check_bool "center" true (Ellipsoid.contains e [| 0.; 0. |]);
  check_bool "boundary" true (Ellipsoid.contains e [| 1.; 0. |]);
  check_bool "outside" false (Ellipsoid.contains e [| 1.1; 0. |])

(* ------------------------------------------------------------------ *)
(* Ellipsoid: cuts                                                     *)
(* ------------------------------------------------------------------ *)

let test_central_cut_closed_form () =
  (* Central cut of the unit ball along e₁ keeps {θ₁ ≤ 0}; the GLS
     Löwner–John ellipsoid has center −e₁/(n+1) and axis widths
     n/(n+1) along e₁, n/√(n²−1) elsewhere. *)
  let n = 3 in
  let e = Ellipsoid.ball ~dim:n ~radius:1. in
  let x = Vec.basis n 0 in
  match Ellipsoid.cut_below e ~x ~price:0. with
  | Ellipsoid.Cut e' ->
      let nf = float_of_int n in
      check_float_loose "center shifts to −1/(n+1)"
        (-1. /. (nf +. 1.))
        (Vec.get e'.Ellipsoid.center 0);
      let b = Ellipsoid.bounds e' ~x in
      check_float_loose "half width along cut = n/(n+1)" (nf /. (nf +. 1.))
        b.Ellipsoid.half_width;
      let b2 = Ellipsoid.bounds e' ~x:(Vec.basis n 1) in
      check_float_loose "half width across cut = n/√(n²−1)"
        (nf /. sqrt ((nf *. nf) -. 1.))
        b2.Ellipsoid.half_width
  | _ -> Alcotest.fail "central cut must produce an ellipsoid"

let test_cut_shallow_noop () =
  let e = Ellipsoid.ball ~dim:3 ~radius:1. in
  let x = Vec.basis 3 0 in
  (* A cut keeping almost everything (price close to the max) has
     α ≤ −1/n and cannot shrink the Löwner–John ellipsoid. *)
  check_bool "too shallow" true
    (match Ellipsoid.cut_below e ~x ~price:0.99 with
    | Ellipsoid.Too_shallow -> true
    | _ -> false)

let test_cut_empty () =
  let e = Ellipsoid.ball ~dim:3 ~radius:1. in
  let x = Vec.basis 3 0 in
  check_bool "empty below" true
    (match Ellipsoid.cut_below e ~x ~price:(-1.5) with
    | Ellipsoid.Empty -> true
    | _ -> false);
  check_bool "apply keeps old on empty" true
    (Ellipsoid.apply e (Ellipsoid.cut_below e ~x ~price:(-1.5)) == e)

let test_cut_above_is_reflection () =
  let e = Ellipsoid.ball ~dim:2 ~radius:2. in
  let x = [| 0.6; -0.8 |] in
  let price = 0.4 in
  let above = Ellipsoid.cut_above e ~x ~price in
  let below_reflected = Ellipsoid.cut_below e ~x:(Vec.neg x) ~price:(-.price) in
  match (above, below_reflected) with
  | Ellipsoid.Cut a, Ellipsoid.Cut b ->
      check_bool "same center" true
        (Vec.approx_equal a.Ellipsoid.center b.Ellipsoid.center);
      check_bool "same shape" true
        (Mat.approx_equal a.Ellipsoid.shape b.Ellipsoid.shape)
  | _ -> Alcotest.fail "both cuts must succeed"

let test_cut_one_dimensional () =
  (* n = 1 must behave as exact interval bisection. *)
  let e = Ellipsoid.ball ~dim:1 ~radius:2. in
  let x = [| 1. |] in
  match Ellipsoid.cut_below e ~x ~price:0. with
  | Ellipsoid.Cut e' ->
      (* Kept interval [−2, 0]: center −1, half width 1. *)
      check_float_loose "center" (-1.) (Vec.get e'.Ellipsoid.center 0);
      let b = Ellipsoid.bounds e' ~x in
      check_float_loose "half width" 1. b.Ellipsoid.half_width;
      check_float_loose "lower endpoint preserved" (-2.) b.Ellipsoid.lower
  | _ -> Alcotest.fail "1-d cut must succeed"

let test_cut_one_dimensional_deep () =
  let e = Ellipsoid.ball ~dim:1 ~radius:2. in
  let x = [| 1. |] in
  (* Keep [−2, −1]: α = 0.5 (deep). *)
  match Ellipsoid.cut_below e ~x ~price:(-1.) with
  | Ellipsoid.Cut e' ->
      check_float_loose "center" (-1.5) (Vec.get e'.Ellipsoid.center 0);
      check_float_loose "half width" 0.5 (Ellipsoid.bounds e' ~x).Ellipsoid.half_width
  | _ -> Alcotest.fail "deep 1-d cut must succeed"

let test_lemma2_volume_ratio () =
  (* Lemma 2: V(E')/V(E) ≤ exp(−(1+nα)²/(5n)) for α ∈ [−1/n, 0]. *)
  let n = 4 in
  let e = Ellipsoid.ball ~dim:n ~radius:1. in
  let x = Vec.normalize [| 1.; 2.; -1.; 0.5 |] in
  List.iter
    (fun alpha ->
      let price = -.alpha (* mid = 0, half width = 1 ⇒ α = −price *) in
      match Ellipsoid.cut_below e ~x ~price with
      | Ellipsoid.Cut e' ->
          let log_ratio =
            Ellipsoid.log_volume_factor e' -. Ellipsoid.log_volume_factor e
          in
          let nf = float_of_int n in
          let bound = -.(((1. +. (nf *. alpha)) ** 2.) /. (5. *. nf)) in
          check_bool
            (Printf.sprintf "volume ratio bound at alpha=%.3f" alpha)
            true (log_ratio <= bound +. 1e-9)
      | _ -> Alcotest.fail "cut must succeed")
    [ -0.24; -0.1; 0.; 0.2; 0.5 ]

let spd_dir_gen =
  QCheck.(
    make
      ~print:Print.(pair (array float) float)
      Gen.(
        pair
          (array_size (return 4) (float_range (-1.) 1.))
          (float_range (-0.9) 0.9)))

(* A random non-degenerate ellipsoid: SPD shape M·Mᵀ + I/2, random
   center — exercises the cut formulas away from the ball special
   case. *)
let random_ellipsoid seed ~dim =
  let rng = Rng.create seed in
  let m = Mat.init dim dim (fun _ _ -> Dist.normal rng ~mean:0. ~std:1.) in
  let shape = Mat.matmul m (Mat.transpose m) in
  for i = 0 to dim - 1 do
    Mat.set shape i i (Mat.get shape i i +. 0.5)
  done;
  let center = Dist.normal_vec rng ~dim in
  Ellipsoid.make ~center ~shape

(* Drive a chain of random accepted cuts through [e], returning the
   final ellipsoid and the worst observed gap between the incremental
   log-volume cache and a fresh ½·log det recomputation. *)
let cut_chain ~seed ~cuts e0 =
  let rng = Rng.create seed in
  let dim = Ellipsoid.dim e0 in
  let e = ref e0 and worst = ref 0. in
  for t = 1 to cuts do
    let x = Dist.normal_vec rng ~dim in
    if Vec.norm2 x > 0.1 then begin
      let b = Ellipsoid.bounds !e ~x in
      let alpha = -0.2 +. (Rng.float rng *. 0.9) in
      let price = b.Ellipsoid.mid -. (alpha *. b.Ellipsoid.half_width) in
      let result =
        if t mod 3 = 0 then Ellipsoid.cut_above !e ~x ~price
        else Ellipsoid.cut_below !e ~x ~price
      in
      match result with
      | Ellipsoid.Cut e' ->
          e := e';
          ignore (Ellipsoid.log_volume_factor e');
          worst := Float.max !worst (Ellipsoid.volume_drift e')
      | Ellipsoid.Too_shallow | Ellipsoid.Empty -> ()
    end
  done;
  (!e, !worst)

let test_volume_resync_boundary () =
  (* A fresh ball has an exact closed-form log-volume factor. *)
  let e0 = Ellipsoid.ball ~dim:8 ~radius:4. in
  check_float "ball closed form" (8. *. log 4.) (Ellipsoid.log_volume_factor e0);
  check_float "ball drift" 0. (Ellipsoid.volume_drift e0);
  (* 1,200 accepted-or-rejected cuts cross the 1,000-cut resync
     boundary; the cache must agree with Cholesky on both sides. *)
  let e, worst = cut_chain ~seed:5 ~cuts:1_200 e0 in
  check_bool "drift across resync ≤ 1e-9" true (worst <= 1e-9);
  check_bool "final drift ≤ 1e-9" true (Ellipsoid.volume_drift e <= 1e-9)

let test_cut_into_buffer () =
  let e = random_ellipsoid 17 ~dim:5 in
  let rng = Rng.create 18 in
  let x = Dist.normal_vec rng ~dim:5 in
  let price = (Ellipsoid.bounds e ~x).Ellipsoid.mid in
  let into = Mat.zeros 5 5 in
  match (Ellipsoid.cut_below e ~x ~price, Ellipsoid.cut_below ~into e ~x ~price) with
  | Ellipsoid.Cut fresh, Ellipsoid.Cut reused ->
      check_bool "into receives the result" true
        (reused.Ellipsoid.shape == into);
      let same = ref true in
      for i = 0 to 4 do
        for j = 0 to 4 do
          if
            not
              (Int64.equal
                 (Int64.bits_of_float (Mat.get fresh.Ellipsoid.shape i j))
                 (Int64.bits_of_float (Mat.get reused.Ellipsoid.shape i j)))
          then same := false
        done
      done;
      check_bool "buffered cut bit-identical" true !same;
      check_float "same log volume"
        (Ellipsoid.log_volume_factor fresh)
        (Ellipsoid.log_volume_factor reused)
  | _ -> Alcotest.fail "both cuts must succeed"

let volume_cache_props =
  [
    (* 50 sequences × 20 cuts = 10³ random cuts checked against the
       O(n³) reference. *)
    prop "incremental log-volume matches Cholesky within 1e-9" 50
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let dim = 1 + (seed mod 6) in
        let e0 =
          if seed mod 2 = 0 then Ellipsoid.ball ~dim ~radius:2.
          else random_ellipsoid seed ~dim
        in
        let _, worst = cut_chain ~seed:(seed + 1) ~cuts:20 e0 in
        worst <= 1e-9);
  ]

let general_ellipsoid_props =
  [
    prop "general cuts keep the kept halfspace" 100
      QCheck.(pair (int_range 1 500) (float_range (-0.3) 0.8))
      (fun (seed, alpha) ->
        let dim = 5 in
        let e = random_ellipsoid seed ~dim in
        let rng = Rng.create (seed + 1) in
        let x = Dist.normal_vec rng ~dim in
        QCheck.assume (Vec.norm2 x > 0.1);
        let b = Ellipsoid.bounds e ~x in
        let price = b.Ellipsoid.mid -. (alpha *. b.Ellipsoid.half_width) in
        match Ellipsoid.cut_below e ~x ~price with
        | Ellipsoid.Cut e' ->
            let ok = ref true in
            for _ = 1 to 40 do
              (* Rejection sampling inside the original ellipsoid. *)
              let p =
                Vec.add e.Ellipsoid.center
                  (Vec.scale (Rng.float rng *. 3.) (Dist.normal_vec rng ~dim))
              in
              if Ellipsoid.contains e p && Vec.dot x p <= price then
                if not (Ellipsoid.contains ~slack:1e-6 e' p) then ok := false
            done;
            !ok
        | Ellipsoid.Too_shallow -> alpha <= 1. /. float_of_int dim +. 1e-9
        | Ellipsoid.Empty -> alpha >= 1. -. 1e-9);
    prop "general cut volume never increases" 100
      QCheck.(pair (int_range 1 500) (float_range (-0.15) 0.8))
      (fun (seed, alpha) ->
        let dim = 5 in
        let e = random_ellipsoid seed ~dim in
        let rng = Rng.create (seed + 2) in
        let x = Dist.normal_vec rng ~dim in
        QCheck.assume (Vec.norm2 x > 0.1);
        let b = Ellipsoid.bounds e ~x in
        let price = b.Ellipsoid.mid -. (alpha *. b.Ellipsoid.half_width) in
        match Ellipsoid.cut_below e ~x ~price with
        | Ellipsoid.Cut e' ->
            Ellipsoid.log_volume_factor e'
            <= Ellipsoid.log_volume_factor e +. 1e-9
        | Ellipsoid.Too_shallow | Ellipsoid.Empty -> true);
    prop "bounds bracket every member point" 100 QCheck.(int_range 1 500)
      (fun seed ->
        let dim = 4 in
        let e = random_ellipsoid seed ~dim in
        let rng = Rng.create (seed + 3) in
        let x = Dist.normal_vec rng ~dim in
        QCheck.assume (Vec.norm2 x > 0.1);
        let b = Ellipsoid.bounds e ~x in
        let ok = ref true in
        for _ = 1 to 60 do
          let p =
            Vec.add e.Ellipsoid.center
              (Vec.scale (Rng.float rng *. 3.) (Dist.normal_vec rng ~dim))
          in
          if Ellipsoid.contains e p then begin
            let z = Vec.dot x p in
            if z < b.Ellipsoid.lower -. 1e-6 || z > b.Ellipsoid.upper +. 1e-6
            then ok := false
          end
        done;
        !ok);
  ]

let ellipsoid_props =
  general_ellipsoid_props
  @ [
    prop "membership agrees with the explicit-inverse definition" 100
      QCheck.(int_range 1 500)
      (fun seed ->
        (* Definition 1 via an independent code path: LU-inverted
           quadratic form vs the Cholesky-solve in contains. *)
        let dim = 4 in
        let e = random_ellipsoid seed ~dim in
        let inv = Dm_linalg.Lu.inverse e.Ellipsoid.shape in
        let rng = Rng.create (seed + 9) in
        let ok = ref true in
        for _ = 1 to 50 do
          let p =
            Vec.add e.Ellipsoid.center
              (Vec.scale (Rng.float rng *. 4.) (Dist.normal_vec rng ~dim))
          in
          let d = Vec.sub p e.Ellipsoid.center in
          let q = Mat.quad inv d in
          (* Skip near-boundary points where the two code paths may
             legitimately disagree by rounding. *)
          if abs_float (q -. 1.) > 1e-6 then
            if Ellipsoid.contains e p <> (q <= 1.) then ok := false
        done;
        !ok);
    prop "cuts preserve points in the kept halfspace" 300 spd_dir_gen
      (fun (x, alpha) ->
        QCheck.assume (Vec.norm2 x > 0.1);
        let e = Ellipsoid.ball ~dim:4 ~radius:2. in
        let b = Ellipsoid.bounds e ~x in
        let price = b.Ellipsoid.mid -. (alpha *. b.Ellipsoid.half_width) in
        match Ellipsoid.cut_below e ~x ~price with
        | Ellipsoid.Cut e' ->
            (* Any point of the original ellipsoid with xᵀθ ≤ price must
               stay inside the Löwner–John ellipsoid: sample a few. *)
            let rng = Rng.create 99 in
            let ok = ref true in
            for _ = 1 to 50 do
              let p = Dist.on_sphere rng ~dim:4 ~radius:(Rng.float rng *. 2.) in
              if Ellipsoid.contains e p && Vec.dot x p <= price then
                if not (Ellipsoid.contains ~slack:1e-6 e' p) then ok := false
            done;
            !ok
        | Ellipsoid.Too_shallow -> alpha <= 1. /. 4. +. 1e-9
        | Ellipsoid.Empty -> false);
    prop "cut volume never increases" 200 spd_dir_gen (fun (x, alpha) ->
        QCheck.assume (Vec.norm2 x > 0.1);
        let e = Ellipsoid.ball ~dim:4 ~radius:2. in
        let b = Ellipsoid.bounds e ~x in
        let price = b.Ellipsoid.mid -. (alpha *. b.Ellipsoid.half_width) in
        match Ellipsoid.cut_below e ~x ~price with
        | Ellipsoid.Cut e' ->
            Ellipsoid.log_volume_factor e' <= Ellipsoid.log_volume_factor e +. 1e-9
        | Ellipsoid.Too_shallow | Ellipsoid.Empty -> true);
    prop "cut shapes stay symmetric positive definite" 200 spd_dir_gen
      (fun (x, alpha) ->
        QCheck.assume (Vec.norm2 x > 0.1);
        let e = Ellipsoid.ball ~dim:4 ~radius:2. in
        let b = Ellipsoid.bounds e ~x in
        let price = b.Ellipsoid.mid -. (alpha *. b.Ellipsoid.half_width) in
        match Ellipsoid.cut_below e ~x ~price with
        | Ellipsoid.Cut e' ->
            Mat.is_symmetric ~tol:1e-9 e'.Ellipsoid.shape
            && Dm_linalg.Chol.is_positive_definite e'.Ellipsoid.shape
        | Ellipsoid.Too_shallow | Ellipsoid.Empty -> true);
  ]

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let test_links () =
  let check_roundtrip link z =
    let y = link.Model.g z in
    check_bool
      (Printf.sprintf "%s roundtrip at %.2f" link.Model.name z)
      true
      (abs_float (link.Model.g_inv y -. z) < 1e-9)
  in
  List.iter (check_roundtrip Model.identity_link) [ -3.; 0.; 2.5 ];
  List.iter (check_roundtrip Model.exp_link) [ -3.; 0.; 2.5 ];
  List.iter (check_roundtrip Model.sigmoid_link) [ -3.; 0.; 2.5 ];
  check_bool "exp g_inv of 0 is −inf" true
    (Model.exp_link.Model.g_inv 0. = neg_infinity);
  check_bool "sigmoid g_inv clamps" true
    (Model.sigmoid_link.Model.g_inv 1.5 = infinity)

let test_model_values () =
  let theta = [| 1.; -2. |] in
  let x = [| 3.; 1. |] in
  check_float "linear" 1. (Model.value (Model.linear ~theta) x);
  check_float "log-linear" (exp 1.) (Model.value (Model.log_linear ~theta) x);
  check_float "logistic" (1. /. (1. +. exp (-1.)))
    (Model.value (Model.logistic ~theta) x);
  (* log-log: log v = θ₁·log x₁ + θ₂·log x₂ *)
  check_float "log-log" (exp (log 3. -. (2. *. log 1.)))
    (Model.value (Model.log_log ~theta) x);
  check_float "linear with noise" 1.5
    (Model.value ~noise:0.5 (Model.linear ~theta) x)

let test_log_log_guard () =
  let m = Model.log_log ~theta:[| 1. |] in
  check_bool "rejects non-positive features" true
    (match Model.value m [| 0. |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_kernelized_model () =
  let landmarks = [| [| 0.; 0. |]; [| 1.; 0. |] |] in
  let map = Dm_ml.Kernel.landmark_map (Dm_ml.Kernel.Rbf { gamma = 1. }) ~landmarks in
  let m = Model.kernelized ~map ~theta:[| 1.; 1. |] in
  check_int "index dim = landmarks" 2 (Model.index_dim m);
  check_float "value at landmark" (1. +. exp (-1.)) (Model.value m [| 0.; 0. |]);
  check_bool "wrong theta size rejected" true
    (match Model.kernelized ~map ~theta:[| 1. |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Regret                                                              *)
(* ------------------------------------------------------------------ *)

let test_regret_cases () =
  (* Reserve above value: no regret regardless of the price. *)
  check_float "q > v" 0.
    (Regret.posted ~reserve:5. ~market_value:4. ~price:10. ());
  (* Sale: regret is the money left on the table. *)
  check_float "underpriced sale" 1.
    (Regret.posted ~reserve:1. ~market_value:4. ~price:3. ());
  (* No sale with a sellable query: full value lost. *)
  check_float "overpriced" 4.
    (Regret.posted ~reserve:1. ~market_value:4. ~price:4.5 ());
  (* Eq. 7 (no reserve). *)
  check_float "pure version regret" 1.
    (Regret.posted ~market_value:4. ~price:3. ());
  check_float "skip with q > v" 0. (Regret.skipped ~reserve:5. ~market_value:4.);
  check_float "skip with q <= v" 4. (Regret.skipped ~reserve:2. ~market_value:4.);
  check_float "revenue on sale" 3. (Regret.revenue ~market_value:4. ~price:3.);
  check_float "revenue on no sale" 0. (Regret.revenue ~market_value:4. ~price:5.)

let test_fig1_shape () =
  (* Fig. 1: regret falls linearly to 0 as the price rises to the
     market value, then jumps to the full value. *)
  let prices = Vec.init 101 (fun i -> float_of_int i /. 10.) in
  let curve = Regret.single_round_curve ~reserve:2. ~market_value:6. ~prices in
  check_float "at price 2 (reserve)" 4. curve.(20);
  check_float "at the market value" 0. curve.(60);
  check_float "just above jumps to v" 6. curve.(61);
  check_float "far above still v" 6. curve.(100)

let regret_props =
  [
    prop "lemma 1: reserve never increases single-round regret" 500
      QCheck.(triple (float_range 0. 10.) (float_range 0. 10.) (float_range 0. 10.))
      (fun (q, v, p') ->
        (* Posted price with reserve is max(q, p'); Lemma 1 compares the
           two regret notions on the same underlying price p'. *)
        let with_reserve =
          Regret.posted ~reserve:q ~market_value:v ~price:(Float.max q p') ()
        in
        let without = Regret.posted ~market_value:v ~price:p' () in
        with_reserve <= without +. 1e-12);
    prop "regret is non-negative" 300
      QCheck.(triple (float_range 0. 10.) (float_range 0. 10.) (float_range 0. 10.))
      (fun (q, v, p) ->
        Regret.posted ~reserve:q ~market_value:v ~price:p () >= 0.
        && Regret.posted ~market_value:v ~price:p () >= 0.);
  ]

(* ------------------------------------------------------------------ *)
(* Feature                                                             *)
(* ------------------------------------------------------------------ *)

let test_aggregate () =
  let comps = [| 5.; 1.; 3.; 2.; 4.; 6. |] in
  (* Sorted: 1 2 3 4 5 6; 3 partitions of 2: (3, 7, 11). *)
  let f = Feature.aggregate ~dim:3 comps in
  check_bool "partition sums" true (Vec.approx_equal f [| 3.; 7.; 11. |]);
  (* dim 1 is the total compensation. *)
  check_bool "total" true
    (Vec.approx_equal (Feature.aggregate ~dim:1 comps) [| 21. |]);
  (* dim = m keeps the sorted individual compensations. *)
  check_bool "identity" true
    (Vec.approx_equal (Feature.aggregate ~dim:6 comps) [| 1.; 2.; 3.; 4.; 5.; 6. |])

let test_aggregate_uneven () =
  let comps = [| 1.; 2.; 3.; 4.; 5. |] in
  let f = Feature.aggregate ~dim:2 comps in
  (* Boundaries at ⌊k·5/2⌋: [0,2) and [2,5) → sums 3 and 12. *)
  check_bool "uneven split" true (Vec.approx_equal f [| 3.; 12. |]);
  check_float "mass preserved" (Vec.sum comps) (Vec.sum f)

let test_of_compensations () =
  let comps = [| 2.; 2.; 2.; 2. |] in
  let x, reserve = Feature.of_compensations ~dim:2 comps in
  check_float "unit norm" 1. (Vec.norm2 x);
  check_float "reserve = Σ features" (Vec.sum x) reserve;
  (* All-equal compensations: features (4,4) → normalized (1/√2,1/√2). *)
  check_bool "values" true (Vec.approx_equal x [| 1. /. sqrt 2.; 1. /. sqrt 2. |])

let feature_props =
  [
    prop "aggregation preserves total compensation" 200
      QCheck.(array_of_size (QCheck.Gen.int_range 1 40) (float_range 0. 10.))
      (fun comps ->
        let dim = 1 + (Array.length comps / 3) in
        let f = Feature.aggregate ~dim comps in
        abs_float (Vec.sum f -. Vec.sum comps) < 1e-9);
    prop "aggregated features are sorted increasingly ... per partition sums of sorted data" 200
      QCheck.(array_of_size (QCheck.Gen.int_range 4 40) (float_range 0. 10.))
      (fun comps ->
        (* With equal partition sizes the partition sums of sorted data
           are non-decreasing. *)
        let m = Array.length comps in
        let dim = max 1 (m / 4) in
        if m mod dim = 0 then begin
          let f = Feature.aggregate ~dim comps in
          let ok = ref true in
          for i = 0 to dim - 2 do
            if f.(i) > f.(i + 1) +. 1e-9 then ok := false
          done;
          !ok
        end
        else true);
    prop "normalized features have unit norm" 200
      QCheck.(array_of_size (QCheck.Gen.int_range 1 40) (float_range 0.01 10.))
      (fun comps ->
        let x, _ = Feature.of_compensations ~dim:1 comps in
        abs_float (Vec.norm2 x -. 1.) < 1e-9);
  ]

(* ------------------------------------------------------------------ *)
(* Mechanism                                                           *)
(* ------------------------------------------------------------------ *)

let mk_mech ?(allow = false) ~variant ~epsilon ~dim ~radius () =
  Mechanism.create
    (Mechanism.config ~allow_conservative_cuts:allow ~variant ~epsilon ())
    (Ellipsoid.ball ~dim ~radius)

let test_variant_names () =
  Alcotest.(check string) "pure" "pure version" (Mechanism.variant_name Mechanism.pure);
  Alcotest.(check string) "reserve" "with reserve price"
    (Mechanism.variant_name Mechanism.with_reserve);
  Alcotest.(check string) "uncertainty" "with uncertainty"
    (Mechanism.variant_name (Mechanism.with_uncertainty ~delta:0.1));
  Alcotest.(check string) "both" "with reserve price and uncertainty"
    (Mechanism.variant_name (Mechanism.with_reserve_and_uncertainty ~delta:0.1))

let test_mechanism_skip () =
  let m = mk_mech ~variant:Mechanism.with_reserve ~epsilon:0.01 ~dim:2 ~radius:1. () in
  let x = Vec.basis 2 0 in
  (* p̄ = 1; a reserve above it forces a certain no-deal. *)
  check_bool "skip" true
    (match Mechanism.decide m ~x ~reserve:1.5 with
    | Mechanism.Skip -> true
    | _ -> false);
  (* The pure variant never skips. *)
  let p = mk_mech ~variant:Mechanism.pure ~epsilon:0.01 ~dim:2 ~radius:1. () in
  check_bool "pure never skips" true
    (match Mechanism.decide p ~x ~reserve:1.5 with
    | Mechanism.Post _ -> true
    | _ -> false)

let test_mechanism_reserve_floor () =
  let m = mk_mech ~variant:Mechanism.with_reserve ~epsilon:0.01 ~dim:2 ~radius:1. () in
  let x = Vec.basis 2 0 in
  (* mid = 0 < reserve = 0.5 < p̄ = 1: exploratory price is the reserve. *)
  match Mechanism.decide m ~x ~reserve:0.5 with
  | Mechanism.Post { price; kind = Mechanism.Exploratory; _ } ->
      check_float "price = reserve" 0.5 price
  | _ -> Alcotest.fail "expected exploratory post"

let test_mechanism_exploratory_mid () =
  let m = mk_mech ~variant:Mechanism.pure ~epsilon:0.01 ~dim:2 ~radius:1. () in
  let x = Vec.basis 2 0 in
  match Mechanism.decide m ~x ~reserve:neg_infinity with
  | Mechanism.Post { price; kind = Mechanism.Exploratory; lower; upper } ->
      check_float "mid price" ((lower +. upper) /. 2.) price;
      check_float "mid of ball is 0" 0. price
  | _ -> Alcotest.fail "expected exploratory post"

let test_mechanism_conservative_no_cut () =
  (* Once the width is below ε, conservative prices must leave the
     ellipsoid untouched. *)
  let m = mk_mech ~variant:Mechanism.pure ~epsilon:10. ~dim:2 ~radius:1. () in
  let x = Vec.basis 2 0 in
  let before = Mechanism.ellipsoid m in
  let d = Mechanism.decide m ~x ~reserve:neg_infinity in
  (match d with
  | Mechanism.Post { kind = Mechanism.Conservative; price; _ } ->
      check_float "conservative = p̲" (-1.) price
  | _ -> Alcotest.fail "expected conservative (width 2 < ε 10)");
  Mechanism.observe m ~x d ~accepted:true;
  check_bool "unchanged" true (Mechanism.ellipsoid m == before);
  check_int "counted" 1 (Mechanism.conservative_rounds m)

let test_mechanism_exploratory_cut_shrinks () =
  let m = mk_mech ~variant:Mechanism.pure ~epsilon:0.01 ~dim:3 ~radius:2. () in
  let x = Vec.normalize [| 1.; 1.; 0. |] in
  let w0 = Ellipsoid.width (Mechanism.ellipsoid m) ~x in
  let d = Mechanism.decide m ~x ~reserve:neg_infinity in
  Mechanism.observe m ~x d ~accepted:false;
  let w1 = Ellipsoid.width (Mechanism.ellipsoid m) ~x in
  check_bool "width shrinks along the cut" true (w1 < w0);
  check_int "exploratory counted" 1 (Mechanism.exploratory_rounds m)

let test_mechanism_uncertainty_buffer () =
  (* With buffer δ, a rejected exploratory price cuts at p + δ: the
     retained region must include every θ with xᵀθ ≤ p + δ. *)
  let delta = 0.2 in
  let m =
    mk_mech ~variant:(Mechanism.with_uncertainty ~delta) ~epsilon:0.01 ~dim:2
      ~radius:1. ()
  in
  let x = Vec.basis 2 0 in
  let d = Mechanism.decide m ~x ~reserve:neg_infinity in
  (match d with
  | Mechanism.Post { price; _ } -> check_float "mid" 0. price
  | _ -> Alcotest.fail "post expected");
  Mechanism.observe m ~x d ~accepted:false;
  let b = Ellipsoid.bounds (Mechanism.ellipsoid m) ~x in
  (* The new upper bound must not fall below p + δ = 0.2. *)
  check_bool "buffered cut" true (b.Ellipsoid.upper >= delta -. 1e-9)

let test_mechanism_conservative_with_delta () =
  let delta = 0.1 in
  let m =
    mk_mech ~variant:(Mechanism.with_uncertainty ~delta) ~epsilon:10. ~dim:2
      ~radius:1. ()
  in
  let x = Vec.basis 2 0 in
  match Mechanism.decide m ~x ~reserve:neg_infinity with
  | Mechanism.Post { price; kind = Mechanism.Conservative; _ } ->
      check_float "p̲ − δ" (-1.1) price
  | _ -> Alcotest.fail "expected conservative"

let test_mechanism_ellipsoid_escape () =
  (* The mechanism ping-pongs two shape buffers to avoid allocating a
     fresh n×n matrix per cut; an ellipsoid handed out by [ellipsoid]
     must never be overwritten by later steps. *)
  let m = mk_mech ~variant:Mechanism.pure ~epsilon:1e-9 ~dim:4 ~radius:2. () in
  let rng = Rng.create 31 in
  let step () =
    let x = Vec.normalize (Dist.normal_vec rng ~dim:4) in
    let d = Mechanism.decide m ~x ~reserve:neg_infinity in
    Mechanism.observe m ~x d ~accepted:(Rng.bool rng)
  in
  for _ = 1 to 5 do
    step ()
  done;
  let seen = Mechanism.ellipsoid m in
  let snapshot = Mat.copy seen.Ellipsoid.shape in
  let vol = Ellipsoid.log_volume_factor seen in
  for _ = 1 to 20 do
    step ()
  done;
  check_bool "escaped shape untouched" true
    (Mat.approx_equal ~tol:0. snapshot seen.Ellipsoid.shape);
  check_float "escaped volume untouched" vol (Ellipsoid.log_volume_factor seen);
  check_bool "mechanism moved on" true
    (not
       (Mat.approx_equal ~tol:0. snapshot
          (Mechanism.ellipsoid m).Ellipsoid.shape))

let test_te_upper_bound () =
  let b = Mechanism.te_upper_bound ~radius:2. ~feature_bound:1. ~dim:5 ~epsilon:0.1 in
  check_float_loose "formula" (20. *. 25. *. log (20. *. 2. *. 1. *. 6. /. 0.1)) b

let test_mechanism_rejects_poisoned_input () =
  let m = mk_mech ~variant:Mechanism.with_reserve ~epsilon:0.1 ~dim:2 ~radius:1. () in
  check_bool "nan feature" true
    (match Mechanism.decide m ~x:[| nan; 0. |] ~reserve:0.1 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "infinite feature" true
    (match Mechanism.decide m ~x:[| infinity; 0. |] ~reserve:0.1 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "nan reserve" true
    (match Mechanism.decide m ~x:[| 1.; 0. |] ~reserve:nan with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* Infinite reserves are legitimate sentinels. *)
  check_bool "+inf reserve skips" true
    (match Mechanism.decide m ~x:[| 1.; 0. |] ~reserve:infinity with
    | Mechanism.Skip -> true
    | _ -> false);
  check_bool "-inf reserve prices" true
    (match Mechanism.decide m ~x:[| 1.; 0. |] ~reserve:neg_infinity with
    | Mechanism.Post _ -> true
    | _ -> false)

(* Failure injection: a buyer who answers at random (lying about her
   valuation) must not corrupt the mechanism numerically — the
   knowledge set can become wrong, but it must stay a finite, positive
   definite ellipsoid and prices must stay finite. *)
let test_mechanism_survives_lying_buyer () =
  let dim = 5 in
  let m = mk_mech ~variant:Mechanism.with_reserve ~epsilon:0.01 ~dim ~radius:2. () in
  let rng = Rng.create 71 in
  for _ = 1 to 2000 do
    let x = Vec.normalize (Dist.normal_vec rng ~dim) in
    let d = Mechanism.decide m ~x ~reserve:(Rng.uniform rng (-1.) 1.) in
    (match d with
    | Mechanism.Post { price; _ } ->
        check_bool "finite price" true (Float.is_finite price)
    | Mechanism.Skip -> ());
    Mechanism.observe m ~x d ~accepted:(Rng.bool rng)
  done;
  let e = Mechanism.ellipsoid m in
  check_bool "shape stays finite" true
    (Array.for_all Float.is_finite (Mat.to_arrays e.Ellipsoid.shape |> Array.to_list |> Array.concat));
  check_bool "shape stays positive definite" true
    (Dm_linalg.Chol.is_positive_definite e.Ellipsoid.shape);
  check_bool "center stays finite" true
    (Array.for_all Float.is_finite e.Ellipsoid.center)

(* Containment: the mechanism must never exclude θ* under noiseless
   feedback — the central invariant of the whole construction. *)
let containment_run ~variant ~use_reserve_prices seed =
  let dim = 4 in
  let radius = 2. in
  let rng = Rng.create seed in
  let theta = Dist.on_sphere rng ~dim ~radius:(radius /. 2.) in
  let m = mk_mech ~variant ~epsilon:0.05 ~dim ~radius () in
  let ok = ref true in
  for _ = 1 to 300 do
    let x = Vec.normalize (Dist.normal_vec rng ~dim) in
    let v = Vec.dot x theta in
    let reserve =
      if use_reserve_prices then v *. Rng.uniform rng 0.3 0.9 else neg_infinity
    in
    let d = Mechanism.decide m ~x ~reserve in
    let accepted =
      match d with Mechanism.Skip -> false | Mechanism.Post { price; _ } -> price <= v
    in
    Mechanism.observe m ~x d ~accepted;
    if not (Ellipsoid.contains ~slack:1e-6 (Mechanism.ellipsoid m) theta) then
      ok := false
  done;
  !ok

let mechanism_props =
  [
    prop "theta* containment (pure)" 20 QCheck.(int_range 1 1000) (fun seed ->
        containment_run ~variant:Mechanism.pure ~use_reserve_prices:false seed);
    prop "theta* containment (with reserve)" 20 QCheck.(int_range 1 1000)
      (fun seed ->
        containment_run ~variant:Mechanism.with_reserve
          ~use_reserve_prices:true seed);
    prop "theta* containment (uncertainty, noiseless)" 10
      QCheck.(int_range 1 1000)
      (fun seed ->
        containment_run
          ~variant:(Mechanism.with_uncertainty ~delta:0.05)
          ~use_reserve_prices:false seed);
    prop "reserve variants never post below the reserve" 50
      QCheck.(int_range 1 1000)
      (fun seed ->
        let rng = Rng.create seed in
        let m =
          mk_mech ~variant:Mechanism.with_reserve ~epsilon:0.05 ~dim:3
            ~radius:1. ()
        in
        let ok = ref true in
        for _ = 1 to 50 do
          let x = Vec.normalize (Dist.normal_vec rng ~dim:3) in
          let reserve = Rng.uniform rng (-0.5) 0.5 in
          (match Mechanism.decide m ~x ~reserve with
          | Mechanism.Skip -> ()
          | Mechanism.Post { price; _ } ->
              if price < reserve -. 1e-12 then ok := false);
          let d = Mechanism.decide m ~x ~reserve in
          Mechanism.observe m ~x d ~accepted:(Rng.bool rng)
        done;
        !ok);
    prop "exploratory rounds respect the Lemma 6/7 bound" 5
      QCheck.(int_range 1 100)
      (fun seed ->
        let dim = 3 and radius = 2. and epsilon = 0.05 in
        let rng = Rng.create seed in
        let theta = Dist.on_sphere rng ~dim ~radius:1. in
        let m = mk_mech ~variant:Mechanism.pure ~epsilon ~dim ~radius () in
        for _ = 1 to 2000 do
          let x = Vec.normalize (Dist.normal_vec rng ~dim) in
          ignore (Mechanism.step m ~x ~reserve:neg_infinity ~market_index:(Vec.dot x theta))
        done;
        float_of_int (Mechanism.exploratory_rounds m)
        <= Mechanism.te_upper_bound ~radius ~feature_bound:1. ~dim ~epsilon);
  ]

(* ------------------------------------------------------------------ *)
(* Broker end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

(* App-1-style market: non-negative unit features (aggregated privacy
   compensations are non-negative), non-negative hidden weights scaled
   to ‖θ*‖ = √(2n), reserve = Σᵢ xᵢ — the paper's Section V-A setup,
   under which the market value exceeds the reserve with high
   probability. *)
let positive_unit rng ~dim =
  Vec.normalize (Vec.map abs_float (Dist.normal_vec rng ~dim))

let linear_market ~seed ~dim ~rounds ~variant () =
  let rng = Rng.create seed in
  let theta =
    Vec.scale (sqrt (2. *. float_of_int dim)) (positive_unit rng ~dim)
  in
  let model = Model.linear ~theta in
  let radius = 2. *. sqrt (float_of_int dim) in
  let epsilon = Dm_prob.Subgaussian.default_threshold ~dim ~horizon:rounds in
  let mech =
    Mechanism.create
      (Mechanism.config ~variant ~epsilon ())
      (Ellipsoid.ball ~dim ~radius)
  in
  let workload_rng = Rng.create (seed + 1) in
  let workload _ =
    let x = positive_unit workload_rng ~dim in
    (x, Vec.sum x)
  in
  Broker.run
    ~policy:(Broker.Ellipsoid_pricing mech)
    ~model
    ~noise:(fun _ -> 0.)
    ~workload ~rounds ()

let test_broker_regret_sublinear () =
  let r = linear_market ~seed:5 ~dim:5 ~rounds:3000 ~variant:Mechanism.with_reserve () in
  (* Regret ratio must collapse well below the risk-averse level. *)
  check_bool "low regret ratio" true (r.Broker.regret_ratio < 0.10);
  (* And the tail must be flat: the last 10% of rounds contribute a
     disproportionately small share of the regret. *)
  let s = r.Broker.series in
  let n = Array.length s.Broker.checkpoints in
  let near_end =
    (* cumulative regret at ~90% of the horizon *)
    let idx = ref 0 in
    Array.iteri
      (fun i c -> if c <= 9 * r.Broker.rounds / 10 then idx := i)
      s.Broker.checkpoints;
    s.Broker.cumulative_regret.(!idx)
  in
  let total = s.Broker.cumulative_regret.(n - 1) in
  check_bool "flat tail" true (total -. near_end < 0.25 *. total +. 1e-9)

let test_broker_reserve_beats_pure_early () =
  (* The cold-start claim: with few rounds the reserve variant's
     regret ratio is lower than the pure variant's. *)
  let with_r = linear_market ~seed:8 ~dim:10 ~rounds:150 ~variant:Mechanism.with_reserve () in
  let pure = linear_market ~seed:8 ~dim:10 ~rounds:150 ~variant:Mechanism.pure () in
  check_bool "cold start mitigated" true
    (with_r.Broker.regret_ratio < pure.Broker.regret_ratio)

let test_broker_risk_averse () =
  let dim = 4 in
  let rng = Rng.create 17 in
  let theta =
    Vec.scale (sqrt (2. *. float_of_int dim)) (positive_unit rng ~dim)
  in
  let model = Model.linear ~theta in
  let workload_rng = Rng.create 18 in
  let workload _ =
    let x = positive_unit workload_rng ~dim in
    (x, Vec.sum x)
  in
  let run policy =
    Broker.run ~policy ~model ~noise:(fun _ -> 0.) ~workload ~rounds:2000 ()
  in
  let baseline = run Broker.Risk_averse in
  let mech =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.with_reserve
         ~epsilon:(Dm_prob.Subgaussian.default_threshold ~dim ~horizon:2000)
         ())
      (Ellipsoid.ball ~dim ~radius:(2. *. sqrt (float_of_int dim)))
  in
  let ours = run (Broker.Ellipsoid_pricing mech) in
  check_bool "baseline sells whenever possible" true
    (baseline.Broker.accepted_rounds >= ours.Broker.accepted_rounds);
  check_bool "our ratio beats the baseline" true
    (ours.Broker.regret_ratio < baseline.Broker.regret_ratio)

let test_broker_round_logs () =
  let dim = 2 in
  let theta = [| 1.; 1. |] in
  let model = Model.linear ~theta in
  let mech =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.with_reserve ~epsilon:0.05 ())
      (Ellipsoid.ball ~dim ~radius:2.)
  in
  let workload _ = (Vec.normalize [| 1.; 1. |], 0.5) in
  let r =
    Broker.run ~record_rounds:true
      ~policy:(Broker.Ellipsoid_pricing mech)
      ~model
      ~noise:(fun _ -> 0.)
      ~workload ~rounds:10 ()
  in
  match r.Broker.logs with
  | None -> Alcotest.fail "logs requested"
  | Some logs ->
      check_int "one log per round" 10 (Array.length logs);
      Array.iteri
        (fun i l ->
          check_int "ordered" i l.Broker.index;
          check_bool "regret non-negative" true (l.Broker.regret >= 0.))
        logs

let test_broker_conservation () =
  (* Noiseless accounting identity: in every round with q ≤ v,
     regret + revenue = v (Eq. 1 plus the revenue rule); rounds with
     q > v contribute nothing to either.  So over a run,
     total_regret + total_revenue = Σ_{rounds with q ≤ v} v. *)
  let dim = 6 in
  let rng = Rng.create 41 in
  let theta =
    Vec.scale (sqrt 12.) (positive_unit rng ~dim)
  in
  let model = Model.linear ~theta in
  let wl_rng = Rng.create 42 in
  let rounds = 800 in
  let stream =
    Array.init rounds (fun _ ->
        let x = positive_unit wl_rng ~dim in
        (* Reserves straddle the market value so both regret branches
           occur. *)
        (x, Vec.dot x theta *. Rng.uniform wl_rng 0.7 1.2))
  in
  let mech =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.with_reserve ~epsilon:0.05 ())
      (Ellipsoid.ball ~dim ~radius:(2. *. sqrt 6.))
  in
  let r =
    Broker.run
      ~policy:(Broker.Ellipsoid_pricing mech)
      ~model
      ~noise:(fun _ -> 0.)
      ~workload:(fun t -> stream.(t))
      ~rounds ()
  in
  let sellable =
    Array.fold_left
      (fun acc (x, q) ->
        let v = Vec.dot x theta in
        if q <= v then acc +. v else acc)
      0. stream
  in
  check_bool "regret + revenue = sellable value" true
    (abs_float (r.Broker.total_regret +. r.Broker.total_revenue -. sellable)
    < 1e-6 *. sellable)

let test_broker_checkpoints () =
  let c = Broker.default_checkpoints ~rounds:100_000 in
  check_bool "starts at 1" true (c.(0) = 1);
  check_bool "ends at rounds" true (c.(Array.length c - 1) = 100_000);
  let sorted = Array.copy c in
  Array.sort compare sorted;
  check_bool "strictly increasing" true (sorted = c);
  check_bool "reasonable count" true (Array.length c <= 220)

let test_broker_edge_cases () =
  let model = Model.linear ~theta:[| 1. |] in
  let mech () =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.with_reserve ~epsilon:0.1 ())
      (Ellipsoid.ball ~dim:1 ~radius:2.)
  in
  (* A single round works and produces one checkpoint. *)
  let r1 =
    Broker.run
      ~policy:(Broker.Ellipsoid_pricing (mech ()))
      ~model
      ~noise:(fun _ -> 0.)
      ~workload:(fun _ -> ([| 1. |], 0.5))
      ~rounds:1 ()
  in
  check_int "one checkpoint" 1 (Array.length r1.Broker.series.Broker.checkpoints);
  check_int "round counted" 1
    (r1.Broker.exploratory + r1.Broker.conservative + r1.Broker.skipped);
  (* A reserve permanently above the market value: the baseline never
     sells and never regrets (Eq. 1's first branch). *)
  let r2 =
    Broker.run ~policy:Broker.Risk_averse ~model
      ~noise:(fun _ -> 0.)
      ~workload:(fun _ -> ([| 1. |], 5.))
      ~rounds:50 ()
  in
  check_int "no sales" 0 r2.Broker.accepted_rounds;
  check_float "no regret" 0. r2.Broker.total_regret;
  check_float "no revenue" 0. r2.Broker.total_revenue;
  (* Custom checkpoints are respected verbatim. *)
  let cps = [| 2; 7; 30 |] in
  let r3 =
    Broker.run ~checkpoints:cps
      ~policy:(Broker.Ellipsoid_pricing (mech ()))
      ~model
      ~noise:(fun _ -> 0.)
      ~workload:(fun _ -> ([| 1. |], 0.5))
      ~rounds:30 ()
  in
  check_bool "verbatim checkpoints" true (r3.Broker.series.Broker.checkpoints = cps);
  check_bool "cumulative values increase" true
    (r3.Broker.series.Broker.cumulative_value.(0)
    < r3.Broker.series.Broker.cumulative_value.(2))

let test_broker_checkpoint_validation () =
  let model = Model.linear ~theta:[| 1. |] in
  let run cps =
    Broker.run ~checkpoints:cps ~policy:Broker.Risk_averse ~model
      ~noise:(fun _ -> 0.)
      ~workload:(fun _ -> ([| 1. |], 0.5))
      ~rounds:10 ()
  in
  let expect_invalid name cps =
    check_bool name true
      (match run cps with
      | exception Invalid_argument msg ->
          String.length msg >= 10 && String.sub msg 0 10 = "Broker.run"
      | _ -> false)
  in
  expect_invalid "unsorted" [| 5; 2 |];
  expect_invalid "duplicate" [| 2; 2; 7 |];
  expect_invalid "zero" [| 0; 5 |];
  expect_invalid "beyond horizon" [| 2; 11 |];
  (* The inclusive bounds themselves are fine. *)
  check_int "bounds accepted" 2
    (Array.length (run [| 1; 10 |]).Broker.series.Broker.checkpoints)

(* ------------------------------------------------------------------ *)
(* Sharded broker                                                      *)
(* ------------------------------------------------------------------ *)

module Pool = Dm_linalg.Pool
module Stats = Dm_prob.Stats

(* A table-backed market: all per-round inputs are materialized from
   the seed up front, so [workload] and [noise] are pure in [t] and
   safe to call from any domain — the [run_sharded] contract (the
   stateful-cursor [linear_market] above deliberately is not).
   Reserves straddle the market value so skip rounds occur too. *)
let sharded_market ~seed ~dim ~rounds =
  let rng = Rng.create seed in
  let theta =
    Vec.scale (sqrt (2. *. float_of_int dim)) (positive_unit rng ~dim)
  in
  let model = Model.linear ~theta in
  let wl_rng = Rng.create (seed + 1) in
  let stream =
    Array.init rounds (fun _ ->
        let x = positive_unit wl_rng ~dim in
        (x, Vec.dot x theta *. Rng.uniform wl_rng 0.6 1.15))
  in
  let noise_rng = Rng.create (seed + 2) in
  let noise_table =
    Array.init rounds (fun _ -> Dist.normal noise_rng ~mean:0. ~std:0.005)
  in
  (model, (fun t -> stream.(t)), (fun t -> noise_table.(t)))

let shard_variants =
  [|
    Mechanism.pure;
    Mechanism.with_uncertainty ~delta:0.01;
    Mechanism.with_reserve;
    Mechanism.with_reserve_and_uncertainty ~delta:0.01;
  |]

let shard_mech ~dim ~rounds variant =
  let epsilon = Dm_prob.Subgaussian.default_threshold ~dim ~horizon:rounds in
  Mechanism.create
    (Mechanism.config ~variant ~epsilon ())
    (Ellipsoid.ball ~dim ~radius:(2. *. sqrt (float_of_int dim)))

let bits = Int64.bits_of_float

let floats_eq a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> bits x = bits y) a b

let series_eq (a : Broker.series) (b : Broker.series) =
  a.Broker.checkpoints = b.Broker.checkpoints
  && floats_eq a.Broker.cumulative_regret b.Broker.cumulative_regret
  && floats_eq a.Broker.cumulative_value b.Broker.cumulative_value
  && floats_eq a.Broker.regret_ratio b.Broker.regret_ratio

let results_bit_identical (a : Broker.result) (b : Broker.result) =
  series_eq a.Broker.series b.Broker.series
  && bits a.Broker.total_regret = bits b.Broker.total_regret
  && bits a.Broker.total_value = bits b.Broker.total_value
  && bits a.Broker.total_revenue = bits b.Broker.total_revenue
  && bits a.Broker.regret_ratio = bits b.Broker.regret_ratio
  && a.Broker.exploratory = b.Broker.exploratory
  && a.Broker.conservative = b.Broker.conservative
  && a.Broker.skipped = b.Broker.skipped
  && a.Broker.accepted_rounds = b.Broker.accepted_rounds

(* Merged Stats go through [Stats.merge]: count exact, extrema exact
   up to the NaN-when-empty convention, moments within reassociation
   tolerance. *)
let summaries_close (a : Stats.summary) (b : Stats.summary) =
  let close x y =
    (Float.is_nan x && Float.is_nan y) || abs_float (x -. y) < 1e-7
  in
  let exact x y = (Float.is_nan x && Float.is_nan y) || bits x = bits y in
  a.Stats.count = b.Stats.count
  && close a.Stats.mean b.Stats.mean
  && close a.Stats.std b.Stats.std
  && close a.Stats.sum b.Stats.sum
  && exact a.Stats.min b.Stats.min
  && exact a.Stats.max b.Stats.max

let sharded_props =
  [
    prop "exact mode byte-identical to run (rounds × shards × variant × jobs)"
      18
      QCheck.(
        quad (int_range 0 9999) (int_range 1 260) (int_range 0 3)
          (int_range 0 2))
      (fun (seed, rounds, vi, ji) ->
        let jobs = [| 1; 2; 4 |].(ji) in
        let shards = 1 + (seed mod 5) in
        let dim = 2 + (seed mod 3) in
        let variant = shard_variants.(vi) in
        let model, workload, noise = sharded_market ~seed ~dim ~rounds in
        let reference =
          Broker.run ~record_rounds:true
            ~policy:(Broker.Ellipsoid_pricing (shard_mech ~dim ~rounds variant))
            ~model ~noise ~workload ~rounds ()
        in
        let sharded =
          Pool.with_pool ~jobs (fun pool ->
              Broker.run_sharded ~record_rounds:true ~pool ~shards
                ~policy:
                  (Broker.Ellipsoid_pricing (shard_mech ~dim ~rounds variant))
                ~model ~noise ~workload ~rounds ())
        in
        results_bit_identical reference sharded
        && reference.Broker.logs = sharded.Broker.logs
        && summaries_close reference.Broker.market_value_stats
             sharded.Broker.market_value_stats
        && summaries_close reference.Broker.reserve_stats
             sharded.Broker.reserve_stats
        && summaries_close reference.Broker.posted_stats
             sharded.Broker.posted_stats
        && summaries_close reference.Broker.regret_stats
             sharded.Broker.regret_stats);
    prop "warm start at stride 1 equals exact mode" 12
      QCheck.(pair (int_range 0 9999) (int_range 1 200))
      (fun (seed, rounds) ->
        let dim = 3 in
        let shards = 1 + (seed mod 6) in
        let variant = shard_variants.(seed mod 4) in
        let model, workload, noise = sharded_market ~seed ~dim ~rounds in
        let go mode =
          Broker.run_sharded ~mode ~shards
            ~policy:(Broker.Ellipsoid_pricing (shard_mech ~dim ~rounds variant))
            ~model ~noise ~workload ~rounds ()
        in
        results_bit_identical (go Broker.Exact)
          (go (Broker.Warm_start { stride = 1 })));
  ]

let test_sharded_edge_cases () =
  let dim = 2 in
  let rounds_max = 100 in
  let model, workload, noise = sharded_market ~seed:77 ~dim ~rounds:rounds_max in
  let mech () = shard_mech ~dim ~rounds:rounds_max Mechanism.with_reserve in
  let run_ref ?checkpoints rounds =
    Broker.run ?checkpoints
      ~policy:(Broker.Ellipsoid_pricing (mech ()))
      ~model ~noise ~workload ~rounds ()
  in
  let run_sh ?checkpoints ?mode ?shards rounds =
    Broker.run_sharded ?checkpoints ?mode ?shards
      ~policy:(Broker.Ellipsoid_pricing (mech ()))
      ~model ~noise ~workload ~rounds ()
  in
  (* rounds = 1: the shard count clamps to the horizon. *)
  check_bool "single round identical" true
    (results_bit_identical (run_ref 1) (run_sh 1));
  check_int "rounds=1 default checkpoints" 1
    (Array.length (Broker.default_checkpoints ~rounds:1));
  (* More shards than rounds. *)
  check_bool "shards > rounds" true
    (results_bit_identical (run_ref 3) (run_sh ~shards:64 3));
  (* Horizon shorter than the ≈200-point checkpoint target. *)
  check_int "rounds=5 default checkpoints" 5
    (Array.length (Broker.default_checkpoints ~rounds:5));
  check_bool "rounds below checkpoint target" true
    (results_bit_identical (run_ref 5) (run_sh ~shards:2 5));
  (* Checkpoints landing exactly on the shard boundaries (t = 25, 50,
     75 with 4 shards over 100 rounds) and just after them. *)
  let cps = [| 1; 25; 26; 50; 75; 76; 100 |] in
  check_bool "checkpoint on shard boundary" true
    (results_bit_identical
       (run_ref ~checkpoints:cps 100)
       (run_sh ~checkpoints:cps ~shards:4 100));
  (* Risk-averse shards trivially (stateless), in either mode. *)
  let base_ref =
    Broker.run ~policy:Broker.Risk_averse ~model ~noise ~workload ~rounds:100 ()
  in
  check_bool "risk-averse sharded" true
    (results_bit_identical base_ref
       (Broker.run_sharded ~policy:Broker.Risk_averse ~shards:7 ~model ~noise
          ~workload ~rounds:100 ()));
  check_bool "risk-averse warm start" true
    (results_bit_identical base_ref
       (Broker.run_sharded
          ~mode:(Broker.Warm_start { stride = 3 })
          ~policy:Broker.Risk_averse ~shards:7 ~model ~noise ~workload
          ~rounds:100 ()));
  (* In exact mode a caller-supplied mechanism ends in the same state
     as after the sequential run. *)
  let m1 = mech () and m2 = mech () in
  ignore
    (Broker.run
       ~policy:(Broker.Ellipsoid_pricing m1)
       ~model ~noise ~workload ~rounds:100 ());
  ignore
    (Broker.run_sharded
       ~policy:(Broker.Ellipsoid_pricing m2)
       ~shards:4 ~model ~noise ~workload ~rounds:100 ());
  check_bool "mechanism state parity" true
    (Mechanism.snapshot m1 = Mechanism.snapshot m2);
  (* Rejections: Custom policies, non-positive shards/stride, and
     malformed checkpoints under the run_sharded error prefix. *)
  let expect_invalid name f =
    check_bool name true
      (match f () with
      | exception Invalid_argument msg ->
          String.length msg >= 18
          && String.sub msg 0 18 = "Broker.run_sharded"
      | _ -> false)
  in
  let custom =
    {
      Broker.policy_name = "noop";
      decide = (fun ~x:_ ~reserve:_ -> None);
      learn = (fun ~x:_ ~price:_ ~accepted:_ -> ());
      uses_reserve = true;
    }
  in
  expect_invalid "custom policy rejected" (fun () ->
      Broker.run_sharded ~policy:(Broker.Custom custom) ~model ~noise ~workload
        ~rounds:10 ());
  expect_invalid "zero shards rejected" (fun () -> run_sh ~shards:0 10);
  expect_invalid "zero stride rejected" (fun () ->
      run_sh ~mode:(Broker.Warm_start { stride = 0 }) 10);
  expect_invalid "unsorted checkpoints rejected" (fun () ->
      run_sh ~checkpoints:[| 5; 2 |] 10);
  expect_invalid "checkpoint beyond horizon rejected" (fun () ->
      run_sh ~checkpoints:[| 2; 11 |] 10)

let test_warm_start_tolerance () =
  (* 10⁵-round smoke: warm-start replays from strided boundary
     snapshots, so shard 0's checkpoints stay bit-identical and the
     tail ratios drift only within tolerance. *)
  let dim = 8 and rounds = 100_000 in
  let shards = 8 in
  let model, workload, noise = sharded_market ~seed:123 ~dim ~rounds in
  let variant = Mechanism.with_reserve in
  let reference =
    Broker.run
      ~policy:(Broker.Ellipsoid_pricing (shard_mech ~dim ~rounds variant))
      ~model ~noise ~workload ~rounds ()
  in
  let warm =
    Pool.with_pool ~jobs:2 (fun pool ->
        Broker.run_sharded ~pool ~shards
          ~mode:(Broker.Warm_start { stride = 4 })
          ~policy:(Broker.Ellipsoid_pricing (shard_mech ~dim ~rounds variant))
          ~model ~noise ~workload ~rounds ())
  in
  let cps = reference.Broker.series.Broker.checkpoints in
  let first_boundary = rounds / shards in
  Array.iteri
    (fun i cp ->
      if cp <= first_boundary then
        check_bool
          (Printf.sprintf "shard-0 prefix identical at t=%d" cp)
          true
          (bits reference.Broker.series.Broker.cumulative_regret.(i)
          = bits warm.Broker.series.Broker.cumulative_regret.(i)))
    cps;
  let drift = ref 0. in
  Array.iteri
    (fun i r ->
      let d = abs_float (r -. warm.Broker.series.Broker.regret_ratio.(i)) in
      if d > !drift then drift := d)
    reference.Broker.series.Broker.regret_ratio;
  (* Measured ≈5.2e-2 at stride 4 on this setup; the bound leaves a 2×
     margin without hiding a gross warm-start bug. *)
  check_bool
    (Printf.sprintf "ratio drift %.2e within tolerance" !drift)
    true (!drift < 0.1);
  (* The cumulative market value is mechanism-independent, so it never
     drifts at all. *)
  check_bool "market value identical" true
    (floats_eq reference.Broker.series.Broker.cumulative_value
       warm.Broker.series.Broker.cumulative_value)

let test_broker_log_linear_consistency () =
  (* Under the log-linear model the broker's value-space accounting
     must match exp of the index space. *)
  let theta = [| 0.5; 0.25 |] in
  let model = Model.log_linear ~theta in
  let mech =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.with_reserve ~epsilon:0.05 ())
      (Ellipsoid.ball ~dim:2 ~radius:1.)
  in
  let x = Vec.normalize [| 1.; 2. |] in
  let v = exp (Vec.dot x theta) in
  let workload _ = (x, 0.5 *. v) in
  let r =
    Broker.run ~record_rounds:true
      ~policy:(Broker.Ellipsoid_pricing mech)
      ~model
      ~noise:(fun _ -> 0.)
      ~workload ~rounds:30 ()
  in
  check_bool "market value is exp(index)" true
    (abs_float (r.Broker.market_value_stats.Dm_prob.Stats.mean -. v) < 1e-9);
  (* Eventually the conservative price approaches v from below and
     every deal closes. *)
  match r.Broker.logs with
  | Some logs ->
      let last = logs.(Array.length logs - 1) in
      check_bool "late rounds sell" true last.Broker.accepted;
      check_bool "late regret small" true (last.Broker.regret < 0.2 *. v)
  | None -> Alcotest.fail "logs requested"

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let test_ellipsoid_serialization_roundtrip () =
  (* Run some cuts so the state is non-trivial, then round-trip. *)
  let e = ref (Ellipsoid.ball ~dim:4 ~radius:2.) in
  let rng = Rng.create 61 in
  for _ = 1 to 20 do
    let x = Vec.normalize (Dist.normal_vec rng ~dim:4) in
    let b = Ellipsoid.bounds !e ~x in
    e := Ellipsoid.apply !e (Ellipsoid.cut_below !e ~x ~price:b.Ellipsoid.mid)
  done;
  match Ellipsoid.deserialize (Ellipsoid.serialize !e) with
  | Error msg -> Alcotest.fail msg
  | Ok e' ->
      check_bool "center exact" true
        (Array.for_all2 ( = ) !e.Ellipsoid.center e'.Ellipsoid.center);
      check_bool "shape exact" true
        (Mat.approx_equal ~tol:0. !e.Ellipsoid.shape e'.Ellipsoid.shape)

let test_ellipsoid_deserialize_errors () =
  let expect_error text =
    match Ellipsoid.deserialize text with Error _ -> true | Ok _ -> false
  in
  check_bool "bad header" true (expect_error "nope/1\n2\n0x0p+0 0x0p+0\n");
  check_bool "truncated" true (expect_error "ellipsoid/1\n2");
  check_bool "bad dim" true (expect_error "ellipsoid/1\nzz\na\nb\n");
  check_bool "length mismatch" true
    (expect_error "ellipsoid/1\n2\n0x1p+0\n0x1p+0 0x0p+0 0x0p+0 0x1p+0\n");
  check_bool "bad float" true
    (expect_error "ellipsoid/1\n1\nnot-a-float\n0x1p+0\n")

let test_mechanism_snapshot_roundtrip () =
  let mech =
    mk_mech
      ~variant:(Mechanism.with_reserve_and_uncertainty ~delta:0.03)
      ~epsilon:0.2 ~dim:3 ~radius:1.5 ()
  in
  let rng = Rng.create 62 in
  for _ = 1 to 30 do
    let x = Vec.normalize (Dist.normal_vec rng ~dim:3) in
    ignore
      (Mechanism.step mech ~x ~reserve:(Rng.uniform rng 0. 0.5)
         ~market_index:(Rng.uniform rng (-1.) 1.))
  done;
  match Mechanism.restore (Mechanism.snapshot mech) with
  | Error msg -> Alcotest.fail msg
  | Ok mech' ->
      check_int "exploratory counter" (Mechanism.exploratory_rounds mech)
        (Mechanism.exploratory_rounds mech');
      check_int "conservative counter" (Mechanism.conservative_rounds mech)
        (Mechanism.conservative_rounds mech');
      check_int "skip counter" (Mechanism.skipped_rounds mech)
        (Mechanism.skipped_rounds mech');
      let cfg = Mechanism.config_of mech and cfg' = Mechanism.config_of mech' in
      check_bool "config preserved" true (cfg = cfg');
      (* The restored mechanism prices identically. *)
      let x = Vec.normalize [| 1.; 2.; -0.5 |] in
      check_bool "same decision" true
        (Mechanism.decide mech ~x ~reserve:0.1
        = Mechanism.decide mech' ~x ~reserve:0.1)

let test_mechanism_restore_errors () =
  check_bool "garbage rejected" true
    (match Mechanism.restore "garbage" with Error _ -> true | Ok _ -> false);
  check_bool "bad state line rejected" true
    (match Mechanism.restore "mechanism/1\nnot numbers\nellipsoid/1\n" with
    | Error _ -> true
    | Ok _ -> false)

let test_non_finite_rejected () =
  (* NaN sails through the symmetry and positive-diagonal checks
     (every NaN comparison is false), so deserializers must reject
     non-finite literals explicitly. *)
  let expect_error text =
    match Ellipsoid.deserialize text with Error _ -> true | Ok _ -> false
  in
  check_bool "nan center" true
    (expect_error "ellipsoid/1\n2\nnan 0x0p+0\n0x1p+0 0x0p+0 0x0p+0 0x1p+0\n");
  check_bool "inf shape entry" true
    (expect_error "ellipsoid/1\n2\n0x0p+0 0x0p+0\ninf 0x0p+0 0x0p+0 0x1p+0\n");
  check_bool "negative-infinity center" true
    (expect_error "ellipsoid/1\n1\n-infinity\n0x1p+0\n");
  let ell = Ellipsoid.serialize (Ellipsoid.ball ~dim:1 ~radius:1.) in
  let reject state =
    match Mechanism.restore (Printf.sprintf "mechanism/1\n%s\n%s" state ell) with
    | Error _ -> true
    | Ok _ -> false
  in
  check_bool "nan delta" true (reject "true nan false 0x1p-3 0 0 0");
  check_bool "nan epsilon" true (reject "false 0x0p+0 false nan 0 0 0");
  check_bool "infinite epsilon" true
    (reject "false 0x0p+0 false infinity 0 0 0");
  check_bool "negative counter" true (reject "false 0x0p+0 false 0x1p-3 -1 0 0");
  check_bool "nan delta at construction" true
    (match Mechanism.with_uncertainty ~delta:nan with
    | exception Invalid_argument _ -> true
    | _ -> false)

let random_ellipsoid seed dim cuts =
  let e = ref (Ellipsoid.ball ~dim ~radius:2.) in
  let rng = Rng.create seed in
  for _ = 1 to cuts do
    let x = Vec.normalize (Dist.normal_vec rng ~dim) in
    let b = Ellipsoid.bounds !e ~x in
    e := Ellipsoid.apply !e (Ellipsoid.cut_below !e ~x ~price:b.Ellipsoid.mid)
  done;
  !e

let serialization_props =
  [
    prop "ellipsoid serialize/deserialize is bit-for-bit" 50
      QCheck.(triple (0 -- 1000) (1 -- 5) (0 -- 25))
      (fun (seed, dim, cuts) ->
        let e = random_ellipsoid seed dim cuts in
        match Ellipsoid.deserialize (Ellipsoid.serialize e) with
        | Error _ -> false
        | Ok e' -> Ellipsoid.serialize e' = Ellipsoid.serialize e);
    prop "mechanism snapshot/restore is bit-for-bit" 50
      QCheck.(quad (0 -- 1000) (1 -- 4) (0 -- 40) bool)
      (fun (seed, dim, steps, with_delta) ->
        let variant =
          if with_delta then Mechanism.with_reserve_and_uncertainty ~delta:0.03
          else Mechanism.with_reserve
        in
        let mech =
          Mechanism.create
            (Mechanism.config ~variant ~epsilon:0.2 ())
            (Ellipsoid.ball ~dim ~radius:1.5)
        in
        let rng = Rng.create seed in
        for _ = 1 to steps do
          let x = Vec.normalize (Dist.normal_vec rng ~dim) in
          ignore
            (Mechanism.step mech ~x
               ~reserve:(Rng.uniform rng 0. 0.5)
               ~market_index:(Rng.uniform rng (-1.) 1.))
        done;
        (* Snapshot equality covers config, counters, and every
           ellipsoid bit at once. *)
        match Mechanism.restore (Mechanism.snapshot mech) with
        | Error _ -> false
        | Ok mech' -> Mechanism.snapshot mech' = Mechanism.snapshot mech);
  ]

(* ------------------------------------------------------------------ *)
(* Projected mode                                                      *)
(* ------------------------------------------------------------------ *)

(* With P = I and err = 0 the projected mechanism must replay the
   dense one bit-for-bit: each row of I·x reduces to a sum of exact
   zeros around the single 1·x_i term, and a running IEEE sum that is
   +0 passes the next addend through unchanged, so u carries x's exact
   bits and every bound, price, and cut coincides. *)

let decisions_bit_equal a b =
  match (a, b) with
  | Mechanism.Skip, Mechanism.Skip -> true
  | ( Mechanism.Post { price = p; kind = k; lower = l; upper = u },
      Mechanism.Post { price = p'; kind = k'; lower = l'; upper = u' } ) ->
      k = k'
      && Int64.equal (Int64.bits_of_float p) (Int64.bits_of_float p')
      && Int64.equal (Int64.bits_of_float l) (Int64.bits_of_float l')
      && Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float u')
  | _ -> false

let run_identity_projection_vs_dense ~dim ~rounds ~seed =
  let cfg =
    Mechanism.config
      ~variant:(Mechanism.with_reserve_and_uncertainty ~delta:0.03)
      ~epsilon:0.2 ()
  in
  let dense = Mechanism.create cfg (Ellipsoid.ball ~dim ~radius:1.5) in
  let projected =
    Mechanism.create_projected cfg ~projection:(Mat.identity dim) ~err:0.
      (Ellipsoid.ball ~dim ~radius:1.5)
  in
  let rng = Rng.create seed in
  let ok = ref true in
  for _ = 1 to rounds do
    let x = Vec.normalize (Dist.normal_vec rng ~dim) in
    let reserve = Rng.uniform rng 0. 0.5 in
    let market_index = Rng.uniform rng (-1.) 1. in
    let d, acc = Mechanism.step dense ~x ~reserve ~market_index in
    let d', acc' = Mechanism.step projected ~x ~reserve ~market_index in
    if not (decisions_bit_equal d d' && acc = acc') then ok := false
  done;
  !ok
  && Mechanism.exploratory_rounds dense
     = Mechanism.exploratory_rounds projected
  && Mechanism.conservative_rounds dense
     = Mechanism.conservative_rounds projected
  && Mechanism.skipped_rounds dense = Mechanism.skipped_rounds projected

let test_projected_identity_matches_dense () =
  List.iter
    (fun dim ->
      check_bool
        (Printf.sprintf "identity projection bit-identical at dim %d" dim)
        true
        (run_identity_projection_vs_dense ~dim ~rounds:60 ~seed:(70 + dim)))
    [ 1; 2; 8; 128 ]

(* A k = 2 basis inside R^4 with orthonormal rows, exact in floats. *)
let p24 =
  let s = 1. /. sqrt 2. in
  Mat.init 2 4 (fun i j ->
      match (i, j) with
      | 0, 0 -> 1.
      | 1, 2 | 1, 3 -> s
      | _ -> 0.)

let projected_mech_after ~steps ~seed =
  let mech =
    Mechanism.create_projected
      (Mechanism.config
         ~variant:(Mechanism.with_reserve_and_uncertainty ~delta:0.01)
         ~epsilon:0.2 ())
      ~projection:p24 ~err:0.05
      (Ellipsoid.ball ~dim:2 ~radius:1.5)
  in
  let rng = Rng.create seed in
  for _ = 1 to steps do
    let x = Vec.normalize (Dist.normal_vec rng ~dim:4) in
    ignore
      (Mechanism.step mech ~x ~reserve:(Rng.uniform rng 0. 0.5)
         ~market_index:(Rng.uniform rng (-1.) 1.))
  done;
  mech

let test_projected_snapshot_roundtrip () =
  let mech = projected_mech_after ~steps:25 ~seed:77 in
  let text = Mechanism.snapshot mech in
  check_bool "v2 text header" true
    (String.length text > 12 && String.sub text 0 12 = "mechanism/2\n");
  let bin = Mechanism.snapshot_binary mech in
  check_bool "v4 binary magic" true
    (String.length bin > 8 && String.sub bin 0 8 = Mechanism.binary_magic_v4);
  let from_text =
    match Mechanism.restore text with
    | Error msg -> Alcotest.fail msg
    | Ok m -> m
  in
  let from_bin =
    match Mechanism.restore bin with
    | Error msg -> Alcotest.fail msg
    | Ok m -> m
  in
  check_bool "text snapshot stable" true (Mechanism.snapshot from_text = text);
  check_bool "binary snapshot stable" true
    (Mechanism.snapshot_binary from_bin = bin);
  check_bool "binary and text restore agree" true
    (Mechanism.snapshot from_bin = text);
  (match Mechanism.projection from_text with
  | None -> Alcotest.fail "restored mechanism lost its projection"
  | Some (p, err) ->
      check_bool "projection entries exact" true
        (Mat.approx_equal ~tol:0. p p24);
      check_float "err bound exact" 0.05 err);
  (* Restored mechanisms continue the trajectory bit-for-bit. *)
  let rng = Rng.create 78 and rng' = Rng.create 78 in
  let continue mech rng =
    let x = Vec.normalize (Dist.normal_vec rng ~dim:4) in
    Mechanism.step mech ~x ~reserve:(Rng.uniform rng 0. 0.5)
      ~market_index:(Rng.uniform rng (-1.) 1.)
  in
  for _ = 1 to 10 do
    let d, acc = continue mech rng in
    let d', acc' = continue from_bin rng' in
    check_bool "continuation identical" true
      (decisions_bit_equal d d' && acc = acc')
  done

let test_projected_restore_errors () =
  let state = "false 0x0p+0 false 0x1p-3 0 0 0" in
  let ell dim = Ellipsoid.serialize (Ellipsoid.ball ~dim ~radius:1.) in
  let entries8 =
    "0x1p+0 0x0p+0 0x0p+0 0x0p+0 0x0p+0 0x1p+0 0x0p+0 0x0p+0"
  in
  let reject name text =
    match Mechanism.restore text with
    | Error msg ->
        check_bool (name ^ " message prefixed") true
          (String.length msg >= 19
          && String.sub msg 0 19 = "Mechanism.restore: ")
    | Ok _ -> Alcotest.failf "%s: corrupt snapshot accepted" name
  in
  let snap ?(proj = "proj 2 4 0x0p+0") ?(entries = entries8) ?(edim = 2) () =
    Printf.sprintf "mechanism/2\n%s\n%s\n%s\n%s" state proj entries (ell edim)
  in
  (match Mechanism.restore (snap ()) with
  | Error msg -> Alcotest.fail msg
  | Ok _ -> ());
  reject "rank/ellipsoid mismatch" (snap ~edim:3 ());
  reject "zero rank" (snap ~proj:"proj 0 4 0x0p+0" ());
  reject "negative err" (snap ~proj:"proj 2 4 -0x1p-3" ());
  reject "infinite err" (snap ~proj:"proj 2 4 inf" ());
  reject "nan err" (snap ~proj:"proj 2 4 nan" ());
  reject "non-finite entry"
    (snap ~entries:(entries8 ^ " nan") ~proj:"proj 3 3 0x0p+0" ~edim:3 ());
  reject "entry count mismatch"
    (snap ~entries:"0x1p+0 0x0p+0 0x0p+0 0x0p+0 0x0p+0 0x1p+0 0x0p+0" ());
  reject "truncated header" "mechanism/2\nfalse 0x0p+0 false 0x1p-3 0 0 0";
  (* Binary: cut a valid v4 snapshot mid-projection-block. *)
  let bin = Mechanism.snapshot_binary (projected_mech_after ~steps:5 ~seed:79) in
  reject "truncated binary" (String.sub bin 0 (String.length bin / 2));
  reject "binary bad rank"
    (let b = Bytes.of_string bin in
     (* The rank u32 sits after magic(8), three u8 flags, two f64s and
        three u64 counters = byte 51. *)
     Bytes.set_int32_le b 51 0l;
     Bytes.to_string b)

let projected_props =
  [
    prop "projected snapshot/restore is bit-for-bit" 40
      QCheck.(triple (0 -- 1000) (1 -- 3) (0 -- 30))
      (fun (seed, k, steps) ->
        let n = k + 2 in
        let rng = Rng.create seed in
        (* Restore validates finiteness, not orthonormality, so any
           finite projection must round-trip exactly. *)
        let p = Mat.init k n (fun _ _ -> Dist.normal rng ~mean:0. ~std:1.) in
        let mech =
          Mechanism.create_projected
            (Mechanism.config ~variant:Mechanism.with_reserve ~epsilon:0.2 ())
            ~projection:p
            ~err:(Rng.uniform rng 0. 0.1)
            (Ellipsoid.ball ~dim:k ~radius:1.5)
        in
        for _ = 1 to steps do
          let x = Vec.normalize (Dist.normal_vec rng ~dim:n) in
          ignore
            (Mechanism.step mech ~x
               ~reserve:(Rng.uniform rng 0. 0.5)
               ~market_index:(Rng.uniform rng (-1.) 1.))
        done;
        let text = Mechanism.snapshot mech in
        let bin = Mechanism.snapshot_binary mech in
        match (Mechanism.restore text, Mechanism.restore bin) with
        | Ok a, Ok b ->
            Mechanism.snapshot a = text && Mechanism.snapshot_binary b = bin
        | _ -> false);
    prop "identity projection is bit-identical to dense" 20
      QCheck.(pair (0 -- 1000) (1 -- 8))
      (fun (seed, dim) ->
        (* Clamped: the int shrinker can step below the range. *)
        let dim = max dim 1 and seed = abs seed in
        run_identity_projection_vs_dense ~dim ~rounds:30 ~seed);
  ]

(* ------------------------------------------------------------------ *)
(* Cross-tenant batched decide                                         *)
(* ------------------------------------------------------------------ *)

(* A fleet of B tenants served round-batched against a clone fleet
   served one request at a time: every decision must carry identical
   bits round by round, and the final states identical snapshot
   bytes — the contract the batched serving path rests on.  The
   axis-subset projection (the first k rows of I_n) has exactly
   orthonormal rows at every dimension. *)
let axis_projection ~k ~n = Mat.init k n (fun i j -> if i = j then 1. else 0.)

let vec_bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let run_batch_vs_sequential ~projected ~dim ~b ~rounds ~seed =
  let cfg =
    Mechanism.config
      ~variant:(Mechanism.with_reserve_and_uncertainty ~delta:0.02)
      ~epsilon:0.2 ()
  in
  let k = if projected then max 1 ((dim + 1) / 2) else dim in
  let p = axis_projection ~k ~n:dim in
  let make () =
    if projected then
      Mechanism.create_projected cfg ~projection:p ~err:0.
        (Ellipsoid.ball ~dim:k ~radius:1.5)
    else Mechanism.create cfg (Ellipsoid.ball ~dim ~radius:1.5)
  in
  let batched = Array.init b (fun _ -> make ()) in
  let sequential = Array.init b (fun _ -> make ()) in
  let ctx = Mechanism.batch batched.(0) in
  let rng = Rng.create seed in
  let ok = ref true in
  for _ = 1 to rounds do
    let xs = Array.init b (fun _ -> Vec.normalize (Dist.normal_vec rng ~dim)) in
    let reserves = Array.init b (fun _ -> Rng.uniform rng 0. 0.3) in
    let markets = Array.init b (fun _ -> Rng.uniform rng (-1.) 1.) in
    let ds = Mechanism.decide_batch ctx batched ~xs ~reserves in
    for i = 0 to b - 1 do
      let d' =
        Mechanism.decide sequential.(i) ~x:xs.(i) ~reserve:reserves.(i)
      in
      if not (decisions_bit_equal ds.(i) d') then ok := false;
      let accepted =
        match ds.(i) with
        | Mechanism.Skip -> false
        | Mechanism.Post { price; _ } -> price <= markets.(i)
      in
      Mechanism.observe batched.(i) ~x:xs.(i) ds.(i) ~accepted;
      Mechanism.observe sequential.(i) ~x:xs.(i) d' ~accepted
    done
  done;
  !ok
  && Array.for_all2
       (fun a s -> Mechanism.snapshot_binary a = Mechanism.snapshot_binary s)
       batched sequential

let test_batch_matches_sequential () =
  List.iter
    (fun projected ->
      List.iter
        (fun dim ->
          List.iter
            (fun b ->
              let rounds = if dim >= 128 then 3 else 8 in
              check_bool
                (Printf.sprintf "%s dim=%d b=%d"
                   (if projected then "projected" else "dense")
                   dim b)
                true
                (run_batch_vs_sequential ~projected ~dim ~b ~rounds
                   ~seed:(dim + (7 * b) + if projected then 1000 else 0)))
            [ 1; 3; 64 ])
        [ 1; 2; 8; 128 ])
    [ true; false ]

let test_batch_decide_validation () =
  let cfg = Mechanism.config ~variant:Mechanism.pure ~epsilon:0.1 () in
  let p = axis_projection ~k:2 ~n:4 in
  let mk () =
    Mechanism.create_projected cfg ~projection:p ~err:0.
      (Ellipsoid.ball ~dim:2 ~radius:1.)
  in
  let m1 = mk () and m2 = mk () in
  let ctx = Mechanism.batch m1 in
  let rng = Rng.create 5 in
  let xs = Array.init 2 (fun _ -> Vec.normalize (Dist.normal_vec rng ~dim:4)) in
  Alcotest.check_raises "empty batch"
    (Invalid_argument "Mechanism.decide_batch: empty batch") (fun () ->
      ignore (Mechanism.decide_batch ctx [||] ~xs:[||] ~reserves:[||]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Mechanism.decide_batch: batch length mismatch")
    (fun () ->
      ignore (Mechanism.decide_batch ctx [| m1; m2 |] ~xs ~reserves:[| 0. |]));
  Alcotest.check_raises "duplicate mechanism"
    (Invalid_argument "Mechanism.decide_batch: duplicate mechanism in batch")
    (fun () ->
      ignore
        (Mechanism.decide_batch ctx [| m1; m1 |] ~xs ~reserves:[| 0.; 0. |]));
  (* A same-shape but physically distinct projection is foreign. *)
  let foreign =
    Mechanism.create_projected cfg
      ~projection:(axis_projection ~k:2 ~n:4)
      ~err:0.
      (Ellipsoid.ball ~dim:2 ~radius:1.)
  in
  Alcotest.check_raises "foreign projection"
    (Invalid_argument
       "Mechanism.decide_batch: mechanism does not share the batch projection")
    (fun () ->
      ignore
        (Mechanism.decide_batch ctx [| m1; foreign |] ~xs
           ~reserves:[| 0.; 0. |]));
  let dense = Mechanism.create cfg (Ellipsoid.ball ~dim:4 ~radius:1.) in
  let dctx = Mechanism.batch dense in
  Alcotest.check_raises "projected under dense context"
    (Invalid_argument
       "Mechanism.decide_batch: dense context serving a projected mechanism")
    (fun () ->
      ignore
        (Mechanism.decide_batch dctx [| m1 |] ~xs:[| xs.(0) |]
           ~reserves:[| 0. |]));
  (* A rejected per-request decide must clear the memo it seeded. *)
  let bad = [| Float.nan; 0.; 0.; 0. |] in
  (try ignore (Mechanism.decide_batch ctx [| m1 |] ~xs:[| bad |] ~reserves:[| 0. |])
   with Invalid_argument _ -> ());
  check_bool "memo cleared after rejected decide" true
    (Mechanism.projected_feature m1 ~x:bad = None)

(* [projected_feature] only answers for physically the vector the memo
   was seeded from, and each call hands out an independent copy. *)
let test_projected_feature_memo () =
  let cfg = Mechanism.config ~variant:Mechanism.pure ~epsilon:0.1 () in
  let p = axis_projection ~k:2 ~n:4 in
  let m =
    Mechanism.create_projected cfg ~projection:p ~err:0.
      (Ellipsoid.ball ~dim:2 ~radius:1.)
  in
  let rng = Rng.create 11 in
  let x = Vec.normalize (Dist.normal_vec rng ~dim:4) in
  check_bool "no memo before decide" true
    (Mechanism.projected_feature m ~x = None);
  ignore (Mechanism.decide m ~x ~reserve:0.);
  (match Mechanism.projected_feature m ~x with
  | None -> Alcotest.fail "memo missing after decide"
  | Some u ->
      check_bool "u = P·x bits" true (vec_bits_equal u (Mat.project p x));
      (* Mutating the handed-out copy must not poison the memo. *)
      u.(0) <- 42.;
      (match Mechanism.projected_feature m ~x with
      | None -> Alcotest.fail "memo lost"
      | Some u' ->
          check_bool "fresh copy each call" true
            (vec_bits_equal u' (Mat.project p x))));
  (* An equal-valued but physically different vector misses. *)
  check_bool "physical equality required" true
    (Mechanism.projected_feature m ~x:(Array.copy x) = None);
  let dense = Mechanism.create cfg (Ellipsoid.ball ~dim:4 ~radius:1.) in
  ignore (Mechanism.decide dense ~x ~reserve:0.);
  check_bool "dense mechanism has no projected feature" true
    (Mechanism.projected_feature dense ~x = None)

(* The arena'd decide/observe path recycles cut buffers, but an
   ellipsoid escaped through [Mechanism.ellipsoid] must keep its exact
   bits across any number of later batched rounds and observes. *)
let test_batch_escape_safety () =
  let dim = 6 and b = 3 in
  let cfg =
    Mechanism.config ~variant:(Mechanism.with_reserve_and_uncertainty ~delta:0.02)
      ~epsilon:0.2 ()
  in
  let p = axis_projection ~k:3 ~n:dim in
  let fleet =
    Array.init b (fun _ ->
        Mechanism.create_projected cfg ~projection:p ~err:0.
          (Ellipsoid.ball ~dim:3 ~radius:1.5))
  in
  let ctx = Mechanism.batch fleet.(0) in
  let rng = Rng.create 23 in
  let serve_round () =
    let xs = Array.init b (fun _ -> Vec.normalize (Dist.normal_vec rng ~dim)) in
    let reserves = Array.init b (fun _ -> Rng.uniform rng 0. 0.3) in
    let markets = Array.init b (fun _ -> Rng.uniform rng (-1.) 1.) in
    let ds = Mechanism.decide_batch ctx fleet ~xs ~reserves in
    Array.iteri
      (fun i d ->
        let accepted =
          match d with
          | Mechanism.Skip -> false
          | Mechanism.Post { price; _ } -> price <= markets.(i)
        in
        Mechanism.observe fleet.(i) ~x:xs.(i) d ~accepted)
      ds
  in
  for _ = 1 to 4 do
    serve_round ()
  done;
  let escaped = Array.map Mechanism.ellipsoid fleet in
  let frozen =
    Array.map
      (fun e ->
        ( Array.copy e.Ellipsoid.center,
          Mat.copy e.Ellipsoid.shape,
          e.Ellipsoid.scale ))
      escaped
  in
  for _ = 1 to 12 do
    serve_round ()
  done;
  Array.iteri
    (fun i e ->
      let c, s, sc = frozen.(i) in
      check_bool "escaped center bits stable" true
        (vec_bits_equal e.Ellipsoid.center c);
      check_bool "escaped scale stable" true
        (Int64.equal
           (Int64.bits_of_float e.Ellipsoid.scale)
           (Int64.bits_of_float sc));
      let rows = Mat.rows e.Ellipsoid.shape in
      let stable = ref true in
      for r = 0 to rows - 1 do
        if not (vec_bits_equal (Mat.row e.Ellipsoid.shape r) (Mat.row s r))
        then stable := false
      done;
      check_bool "escaped shape bits stable" true !stable)
    escaped

let batch_decide_props =
  [
    prop "batched decisions and states bit-match sequential" 25
      QCheck.(
        quad (0 -- 1000) (1 -- 10) (1 -- 8) bool)
      (fun (seed, dim, b, projected) ->
        let dim = max 1 dim and b = max 1 b and seed = abs seed in
        run_batch_vs_sequential ~projected ~dim ~b ~rounds:6 ~seed);
  ]

(* ------------------------------------------------------------------ *)
(* Scalar-scaled sparse cut path vs the dense reference                *)
(* ------------------------------------------------------------------ *)

(* The tolerance contract (DESIGN.md): across the same cut sequence
   the scaled/sparse path and the dense reference agree exactly on cut
   decisions and accept/reject outcomes, and to ≤ 1e-9 relative on
   prices, log-volume and axis widths.  Bit-exact agreement on the
   floats is impossible in general — the dense path folds each
   Löwner–John factor into the matrix entries while the sparse path
   accumulates them in one scalar, and float multiplication does not
   re-associate — so the suite checks decisions exactly and magnitudes
   relatively.

   The relative agreement is per-sequence and holds on bounded cut
   counts: the two paths' last-ulp differences are amplified
   exponentially by the cut dynamics (the same divergence any float
   reassociation shows on a chaotic map — measured ~1.4×/cut at
   dim 8, far slower at dim 128), so the corpus keeps sequences to
   ~100 cuts at small dims, where the observed gap is ≤ 1e-10 with a
   ≥ 30× margin to the 1e-9 contract. *)
let rel_close a b =
  abs_float (a -. b) <= 1e-9 *. (1. +. Float.max (abs_float a) (abs_float b))

(* A random cut direction sparse enough for the in-place path at
   dim ≥ 8; at dims 1–2 no vector passes the 0.125 density threshold,
   so the same sequence exercises the "sparse path never fires" side
   of the contract (where agreement must be bit-exact). *)
let sparse_dir rng ~dim =
  let nnz = max 1 (dim / 11) in
  let x = Vec.zeros dim in
  for _ = 1 to nnz do
    x.(Rng.int rng dim) <- Dist.normal rng ~mean:0. ~std:1.
  done;
  x

(* Drive the same random cut sequence through a dense-reference
   ellipsoid and a [mutate:true] one; check the contract at every
   step.  Returns an error description, or None if all agree. *)
let equivalence_run ~seed ~dim ~cuts =
  let rng = Rng.create seed in
  let dense = ref (Ellipsoid.ball ~dim ~radius:4.) in
  let scaled = ref (Ellipsoid.ball ~dim ~radius:4.) in
  let failure = ref None in
  let fail fmt = Printf.ksprintf (fun s -> failure := Some s) fmt in
  let t = ref 0 in
  while !failure = None && !t < cuts do
    incr t;
    let x = sparse_dir rng ~dim in
    if Vec.norm2 x > 1e-6 then begin
      let bd = Ellipsoid.bounds !dense ~x in
      let bs = Ellipsoid.bounds !scaled ~x in
      if not (rel_close bd.Ellipsoid.lower bs.Ellipsoid.lower) then
        fail "cut %d: lower bounds diverge" !t
      else if not (rel_close bd.Ellipsoid.upper bs.Ellipsoid.upper) then
        fail "cut %d: upper bounds diverge" !t
      else begin
        let alpha = -0.2 +. (Rng.float rng *. 0.9) in
        let price =
          bd.Ellipsoid.mid -. (alpha *. bd.Ellipsoid.half_width)
        in
        let rd, rs =
          if !t mod 3 = 0 then
            ( Ellipsoid.cut_above !dense ~x ~price,
              Ellipsoid.cut_above ~mutate:true !scaled ~x ~price )
          else
            ( Ellipsoid.cut_below !dense ~x ~price,
              Ellipsoid.cut_below ~mutate:true !scaled ~x ~price )
        in
        match (rd, rs) with
        | Ellipsoid.Cut ed, Ellipsoid.Cut es ->
            dense := ed;
            scaled := es;
            if
              not
                (rel_close
                   (Ellipsoid.log_volume_factor ed)
                   (Ellipsoid.log_volume_factor es))
            then fail "cut %d: log volumes diverge" !t
            else if Ellipsoid.volume_drift es > 1e-9 then
              fail "cut %d: scaled volume cache drifted" !t
        | Ellipsoid.Too_shallow, Ellipsoid.Too_shallow
        | Ellipsoid.Empty, Ellipsoid.Empty ->
            ()
        | _ -> fail "cut %d: cut decisions diverge" !t
      end
    end
  done;
  (match !failure with
  | Some _ -> ()
  | None ->
      let wd = Ellipsoid.axis_widths !dense in
      let ws = Ellipsoid.axis_widths !scaled in
      for i = 0 to dim - 1 do
        if !failure = None && not (rel_close wd.(i) ws.(i)) then
          fail "axis width %d diverges" i
      done);
  !failure

let test_equivalence_across_dims () =
  List.iter
    (fun (dim, cuts) ->
      match equivalence_run ~seed:(100 + dim) ~dim ~cuts with
      | None -> ()
      | Some msg -> Alcotest.fail (Printf.sprintf "dim %d: %s" dim msg))
    [ (1, 200); (2, 200); (8, 100); (128, 40) ]

let test_inplace_contract () =
  (* The sparse path consumes the input's shape buffer (physical
     equality of the shape fields signals it); the dense path must
     leave the input untouched. *)
  let dim = 16 in
  let e = Ellipsoid.ball ~dim ~radius:4. in
  let rng = Rng.create 41 in
  let x = sparse_dir rng ~dim in
  let price = (Ellipsoid.bounds e ~x).Ellipsoid.mid in
  (match Ellipsoid.cut_below ~mutate:true e ~x ~price with
  | Ellipsoid.Cut e' ->
      check_bool "sparse cut reuses the shape buffer" true
        (e'.Ellipsoid.shape == e.Ellipsoid.shape);
      check_bool "scale moved off 1" true (Ellipsoid.scale e' <> 1.)
  | _ -> Alcotest.fail "sparse cut must succeed");
  let e2 = Ellipsoid.ball ~dim ~radius:4. in
  let before = Mat.copy e2.Ellipsoid.shape in
  (match Ellipsoid.cut_below e2 ~x ~price with
  | Ellipsoid.Cut e' ->
      check_bool "dense cut allocates" true
        (not (e'.Ellipsoid.shape == e2.Ellipsoid.shape));
      check_bool "input untouched" true
        (Mat.approx_equal ~tol:0. before e2.Ellipsoid.shape);
      check_float "dense cut keeps scale 1" 1. (Ellipsoid.scale e')
  | _ -> Alcotest.fail "dense cut must succeed");
  (* A dense direction falls back to the allocating path even under
     [mutate]. *)
  let xd = Vec.normalize (Dist.normal_vec rng ~dim) in
  let e3 = Ellipsoid.ball ~dim ~radius:4. in
  match
    Ellipsoid.cut_below ~mutate:true e3 ~x:xd
      ~price:(Ellipsoid.bounds e3 ~x:xd).Ellipsoid.mid
  with
  | Ellipsoid.Cut e' ->
      check_bool "dense direction allocates" true
        (not (e'.Ellipsoid.shape == e3.Ellipsoid.shape))
  | _ -> Alcotest.fail "dense-direction cut must succeed"

let test_scaled_serialization () =
  (* scale = 1 keeps the v1 byte format; a pending scalar upgrades to
     ellipsoid/2, and both round-trip bit-for-bit. *)
  let dim = 16 in
  let e1 = Ellipsoid.ball ~dim ~radius:4. in
  check_bool "v1 header at scale 1" true
    (String.length (Ellipsoid.serialize e1) > 11
    && String.sub (Ellipsoid.serialize e1) 0 11 = "ellipsoid/1");
  let rng = Rng.create 43 in
  let e = ref e1 in
  for _ = 1 to 5 do
    let x = sparse_dir rng ~dim in
    if Vec.norm2 x > 1e-6 then begin
      let price = (Ellipsoid.bounds !e ~x).Ellipsoid.mid in
      e := Ellipsoid.apply !e (Ellipsoid.cut_below ~mutate:true !e ~x ~price)
    end
  done;
  check_bool "scale moved off 1" true (Ellipsoid.scale !e <> 1.);
  let text = Ellipsoid.serialize !e in
  check_bool "v2 header once scaled" true
    (String.sub text 0 11 = "ellipsoid/2");
  (match Ellipsoid.deserialize text with
  | Error msg -> Alcotest.fail msg
  | Ok e' ->
      check_bool "v2 round-trip is bit-for-bit" true
        (Ellipsoid.serialize e' = text);
      check_bool "scale preserved" true
        (Ellipsoid.scale e' = Ellipsoid.scale !e));
  let expect_error t' =
    match Ellipsoid.deserialize t' with Error _ -> true | Ok _ -> false
  in
  check_bool "v2 bad scale" true
    (expect_error "ellipsoid/2\n1\nnan\n0x0p+0\n0x1p+0\n");
  check_bool "v2 non-positive scale" true
    (expect_error "ellipsoid/2\n1\n-0x1p+0\n0x0p+0\n0x1p+0\n");
  check_bool "v2 truncated" true (expect_error "ellipsoid/2\n1\n0x1p+0\n")

(* A mechanism on the sparse path vs the forced-dense reference: same
   decisions and counters, prices within the contract. *)
let mechanism_equivalence ~seed ~dim ~rounds =
  let mk sparse_cuts =
    Mechanism.create
      (Mechanism.config ~sparse_cuts ~variant:Mechanism.with_reserve
         ~epsilon:0.5 ())
      (Ellipsoid.ball ~dim ~radius:4.)
  in
  let reference = mk false and fast = mk true in
  let rng = Rng.create seed in
  let ok = ref true in
  for _ = 1 to rounds do
    let x = sparse_dir rng ~dim in
    let reserve = Rng.uniform rng 0. 0.3 in
    let market_index = Rng.uniform rng (-2.) 2. in
    let dr = Mechanism.decide reference ~x ~reserve in
    let df = Mechanism.decide fast ~x ~reserve in
    (match (dr, df) with
    | Mechanism.Skip, Mechanism.Skip -> ()
    | ( Mechanism.Post { price = pr; kind = kr; _ },
        Mechanism.Post { price = pf; kind = kf; _ } ) ->
        if kr <> kf || not (rel_close pr pf) then ok := false
    | _ -> ok := false);
    (* Resolve acceptance from the reference price so both mechanisms
       see the same buyer response even if prices differ in the last
       ulp. *)
    let accepted =
      match dr with
      | Mechanism.Skip -> false
      | Mechanism.Post { price; _ } -> price <= market_index
    in
    Mechanism.observe reference ~x dr ~accepted;
    Mechanism.observe fast ~x df ~accepted
  done;
  !ok
  && Mechanism.exploratory_rounds reference = Mechanism.exploratory_rounds fast
  && Mechanism.conservative_rounds reference
     = Mechanism.conservative_rounds fast
  && Mechanism.skipped_rounds reference = Mechanism.skipped_rounds fast

let test_mechanism_sparse_escape_safety () =
  (* Reading the ellipsoid must protect it from the in-place sparse
     path: the escaped snapshot stays bit-identical while the
     mechanism keeps cutting sparse directions. *)
  let dim = 32 in
  let mech =
    Mechanism.create
      (Mechanism.config ~variant:Mechanism.pure ~epsilon:0.01 ())
      (Ellipsoid.ball ~dim ~radius:4.)
  in
  let rng = Rng.create 47 in
  let step () =
    let x = sparse_dir rng ~dim in
    if Vec.norm2 x > 1e-6 then
      ignore
        (Mechanism.step mech ~x ~reserve:neg_infinity
           ~market_index:(Rng.uniform rng (-2.) 2.))
  in
  for _ = 1 to 10 do
    step ()
  done;
  let seen = Mechanism.ellipsoid mech in
  let snapshot = Ellipsoid.serialize seen in
  for _ = 1 to 10 do
    step ()
  done;
  check_bool "escaped ellipsoid unchanged under sparse cuts" true
    (Ellipsoid.serialize seen = snapshot);
  check_bool "mechanism kept learning" true
    (not (Mechanism.ellipsoid mech == seen))

let sparse_equivalence_props =
  [
    prop "scaled/sparse cuts match the dense reference" 25
      QCheck.(pair (int_range 1 1000) (int_range 0 2))
      (fun (seed, which) ->
        let dim = [| 2; 8; 128 |].(which) in
        let cuts = if dim >= 64 then 15 else 80 in
        equivalence_run ~seed ~dim ~cuts = None);
    prop "mechanism decisions/counters match the dense reference" 15
      QCheck.(pair (int_range 1 1000) bool)
      (fun (seed, big) ->
        let dim = if big then 64 else 8 in
        mechanism_equivalence ~seed ~dim ~rounds:60);
  ]

(* ------------------------------------------------------------------ *)
(* Arbitrage                                                           *)
(* ------------------------------------------------------------------ *)

module Arbitrage = Dm_market.Arbitrage

let test_arbitrage_canonical () =
  (* Li et al.: c/v is arbitrage-free, c/v² is not. *)
  let grid = Array.init 12 (fun i -> 0.01 *. (2. ** float_of_int i)) in
  check_bool "inverse variance is AF" true
    (Arbitrage.is_arbitrage_free_on ~grid (Arbitrage.inverse_variance ~c:3.));
  check_bool "inverse variance squared is not" false
    (Arbitrage.is_arbitrage_free_on ~grid
       (Arbitrage.inverse_variance_squared ~c:3.));
  (* The violation is the textbook one: averaging two noisy copies. *)
  let t = Arbitrage.inverse_variance_squared ~c:1. in
  check_bool "explicit violation" true
    (Arbitrage.violates t ~target:1. ~components:[ 2.; 2. ])

let test_arbitrage_capped () =
  let grid = Array.init 12 (fun i -> 0.01 *. (2. ** float_of_int i)) in
  check_bool "capping preserves AF" true
    (Arbitrage.is_arbitrage_free_on ~grid
       (Arbitrage.capped ~cap:5. (Arbitrage.inverse_variance ~c:3.)))

let test_arbitrage_validation () =
  let t = Arbitrage.inverse_variance ~c:1. in
  check_bool "non-positive variance rejected" true
    (match Arbitrage.violates t ~target:0. ~components:[ 1. ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "empty components rejected" true
    (match Arbitrage.violates t ~target:1. ~components:[] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let arbitrage_props =
  [
    prop "c/v never violated by random bundles" 200
      QCheck.(triple (float_range 0.1 10.) (float_range 0.1 10.) (float_range 0.1 10.))
      (fun (target, v1, v2) ->
        not
          (Arbitrage.violates
             (Arbitrage.inverse_variance ~c:2.)
             ~target ~components:[ v1; v2 ]));
    prop "averaging two equal copies exposes superlinear tariffs" 100
      QCheck.(float_range 0.1 10.)
      (fun v ->
        (* p(v) = v^{-2}: buying two answers at 2v costs half of one at v. *)
        Arbitrage.violates
          (Arbitrage.inverse_variance_squared ~c:1.)
          ~target:v
          ~components:[ 2. *. v; 2. *. v ]);
  ]

(* ------------------------------------------------------------------ *)
(* SGD pricing baseline                                                *)
(* ------------------------------------------------------------------ *)

module Sgd_pricing = Dm_market.Sgd_pricing

let test_sgd_learns_simple_market () =
  let dim = 4 in
  let rng = Rng.create 33 in
  let theta =
    Vec.scale 2. (Vec.normalize (Vec.map abs_float (Dist.normal_vec rng ~dim)))
  in
  let model = Model.linear ~theta in
  let sgd = Sgd_pricing.create ~dim ~radius:2. () in
  let wl_rng = Rng.create 34 in
  let workload _ =
    let x = Vec.normalize (Vec.map abs_float (Dist.normal_vec wl_rng ~dim)) in
    (x, 0.5 *. Vec.dot x theta)
  in
  let r =
    Broker.run
      ~policy:(Broker.Custom (Sgd_pricing.policy sgd))
      ~model
      ~noise:(fun _ -> 0.)
      ~workload ~rounds:4000 ()
  in
  (* The estimate moves toward θ* and the ratio beats posting 0. *)
  check_bool "estimate approaches theta" true
    (Vec.dist2 (Sgd_pricing.estimate sgd) theta < Vec.norm2 theta);
  check_bool "regret ratio below risk-averse floor" true
    (r.Broker.regret_ratio < 0.5);
  check_int "saw every round" 4000 (Sgd_pricing.rounds_seen sgd)

let test_sgd_respects_reserve () =
  let sgd = Sgd_pricing.create ~dim:2 ~radius:1. () in
  let p = Sgd_pricing.policy sgd in
  (match p.Broker.decide ~x:[| 1.; 0. |] ~reserve:0.7 with
  | Some price -> check_bool "floored at reserve" true (price >= 0.7)
  | None -> Alcotest.fail "sgd never skips");
  let free = Sgd_pricing.create ~use_reserve:false ~dim:2 ~radius:1. () in
  let pf = Sgd_pricing.policy free in
  match pf.Broker.decide ~x:[| 1.; 0. |] ~reserve:0.7 with
  | Some price -> check_bool "ignores reserve" true (price < 0.7)
  | None -> Alcotest.fail "sgd never skips"

let test_sgd_validation () =
  check_bool "bad dim" true
    (match Sgd_pricing.create ~dim:0 ~radius:1. () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "bad radius" true
    (match Sgd_pricing.create ~dim:2 ~radius:0. () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_sgd_projection () =
  (* Hammer the learner with accepts along one direction: the estimate
     must stay inside the radius ball. *)
  let sgd = Sgd_pricing.create ~learning_rate:10. ~dim:2 ~radius:1. () in
  let p = Sgd_pricing.policy sgd in
  for _ = 1 to 500 do
    (match p.Broker.decide ~x:[| 1.; 0. |] ~reserve:neg_infinity with
    | Some price ->
        p.Broker.learn ~x:[| 1.; 0. |] ~price:(price +. 10.) ~accepted:true
    | None -> ())
  done;
  check_bool "projected onto ball" true
    (Vec.norm2 (Sgd_pricing.estimate sgd) <= 1. +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Adversary (Lemma 8)                                                 *)
(* ------------------------------------------------------------------ *)

let test_adversary_blowup () =
  let rounds = 2000 and dim = 2 in
  let guarded = Adversary.run ~allow_conservative_cuts:false ~dim ~rounds () in
  let exposed = Adversary.run ~allow_conservative_cuts:true ~dim ~rounds () in
  (* Conservative cuts let the e₂ width explode... *)
  check_bool "width explodes when cuts allowed" true
    (exposed.Adversary.width_e2_at_switch
    > 10. *. guarded.Adversary.width_e2_at_switch);
  (* ...which costs Ω(T) exploratory rounds after the switch... *)
  check_bool "second-half exploration blows up" true
    (exposed.Adversary.exploratory_second_half
    > 4 * guarded.Adversary.exploratory_second_half);
  (* ...and strictly more cumulative regret. *)
  check_bool "regret blows up" true
    (exposed.Adversary.result.Broker.total_regret
    > 2. *. guarded.Adversary.result.Broker.total_regret)

(* Conservative cuts inflate the off-axis widths by (2/√3) each at
   dim 2; with enough headroom between the starting width and float
   max the e₂ width leaves float range mid-run.  The run must detect
   that and raise, not return inf/nan regret rows.  (At radius 1 the
   squared e₁ width underflows to zero first — after ~920 cuts — and
   the widths silently freeze, so the blow-up test above still
   completes; a large radius moves the overflow in front of the
   underflow.) *)
let test_adversary_divergence_detected () =
  let rounds = 2000 and dim = 2 and radius = 1e100 in
  (match
     Adversary.run ~radius ~allow_conservative_cuts:true ~dim ~rounds ()
   with
  | _ -> Alcotest.fail "divergent adversary run returned a result"
  | exception Invalid_argument m ->
      check_bool "names Adversary.run" true
        (String.length m >= 14 && String.sub m 0 14 = "Adversary.run:"));
  let guarded =
    Adversary.run ~radius ~allow_conservative_cuts:false ~dim ~rounds ()
  in
  check_bool "guarded run stays finite at the same radius" true
    (Float.is_finite guarded.Adversary.width_e2_at_switch
    && Float.is_finite guarded.Adversary.result.Broker.total_regret)

(* ------------------------------------------------------------------ *)
(* Robust mechanism: snapshots across a regime switch                  *)
(* ------------------------------------------------------------------ *)

module Adversarial = Dm_synth.Adversarial

(* A stream whose hidden vector jumps at round 60 under heavy-tailed
   noise: by round 70 the robust detector state (window bits, shade,
   possibly a restart) is live, which is exactly what a snapshot must
   carry across a broker restart. *)
let robust_stream seed =
  Adversarial.make ~seed ~dim:3 ~rounds:160
    ~path:(Adversarial.Switches { boundaries = [| 60 |] })
    ~noise:(Adversarial.Student_t { dof = 2.5; scale = 0.05 })
    ~buyer:Adversarial.Truthful ()

let robust_mech () =
  (* ε is deliberately coarse so the conservative phase — where the
     probe cadence, window bits and floor shading all live — arrives
     within a few dozen rounds of the 160-round horizon. *)
  Mechanism.create_robust
    (Mechanism.robust_config ~drift_window:32 ~drift_trigger:8
       ~explore_every:12 ~reinflate_radius:7. ())
    (Mechanism.config
       ~variant:(Mechanism.with_reserve_and_uncertainty ~delta:0.01)
       ~epsilon:0.8 ())
    (Ellipsoid.ball ~dim:3 ~radius:3.5)

(* Price rounds [from, until) against the buyer's reported decisions,
   returning the decision transcript. *)
let drive mech stream ~from ~until =
  let buf = Buffer.create 256 in
  for i = from to until - 1 do
    let x = Adversarial.feature stream i in
    let d = Mechanism.decide mech ~x ~reserve:(Adversarial.reserve stream i) in
    (match d with
    | Mechanism.Skip -> Buffer.add_string buf "skip\n"
    | Mechanism.Post { price; _ } ->
        Buffer.add_string buf (Printf.sprintf "%h\n" price);
        Mechanism.observe mech ~x d
          ~accepted:(Adversarial.respond stream ~round:i ~price))
  done;
  Buffer.contents buf

let test_robust_snapshot_resume_midswitch () =
  let s = robust_stream 17 in
  let mech = robust_mech () in
  ignore (drive mech s ~from:0 ~until:70);
  check_bool "detector state is live at the checkpoint" true
    (Mechanism.robust_drift_level mech > 0
    || Mechanism.robust_shade mech > 0.
    || Mechanism.robust_restarts mech > 0);
  let text = Mechanism.snapshot mech in
  let bin = Mechanism.snapshot_binary mech in
  let from_text =
    match Mechanism.restore text with Ok m -> m | Error e -> Alcotest.fail e
  in
  let from_bin =
    match Mechanism.restore bin with Ok m -> m | Error e -> Alcotest.fail e
  in
  check_bool "binary restore reproduces the text snapshot" true
    (Mechanism.snapshot from_bin = text);
  (* Resuming through the rest of the horizon must replay the original
     run bit-for-bit: same prices, same final state. *)
  let tail = drive mech s ~from:70 ~until:160 in
  check_string "text-restored resume" tail (drive from_text s ~from:70 ~until:160);
  check_string "binary-restored resume" tail (drive from_bin s ~from:70 ~until:160);
  check_bool "final text state identical" true
    (Mechanism.snapshot from_text = Mechanism.snapshot mech);
  check_bool "final binary state identical" true
    (Mechanism.snapshot_binary from_bin = Mechanism.snapshot_binary mech)

(* Field positions in the text "robust ..." line:
   robust ee dw dt radius since_explore recent filled probe_streak
   shade restarts. *)
let tamper_robust_field text ~index ~value =
  String.concat "\n"
    (List.map
       (fun line ->
         if String.length line >= 7 && String.sub line 0 7 = "robust " then begin
           let fields = String.split_on_char ' ' line in
           String.concat " "
             (List.mapi (fun i f -> if i = index then value else f) fields)
         end
         else line)
       (String.split_on_char '\n' text))

let test_robust_restore_errors () =
  let text = Mechanism.snapshot (robust_mech ()) in
  let rejects name corrupted =
    match Mechanism.restore corrupted with
    | Error msg ->
        check_bool (name ^ " message prefixed") true
          (String.length msg >= 19
          && String.sub msg 0 19 = "Mechanism.restore: ")
    | Ok _ -> Alcotest.failf "%s: corrupt robust snapshot accepted" name
  in
  rejects "negative shade" (tamper_robust_field text ~index:9 ~value:"-0x1p-4");
  rejects "nan shade" (tamper_robust_field text ~index:9 ~value:"nan");
  rejects "negative restart counter"
    (tamper_robust_field text ~index:10 ~value:"-1");
  rejects "zero probe cadence" (tamper_robust_field text ~index:1 ~value:"0");
  rejects "trigger above window"
    (tamper_robust_field text ~index:3 ~value:"63");
  let bin = Mechanism.snapshot_binary (robust_mech ()) in
  rejects "truncated binary" (String.sub bin 0 (String.length bin - 5))

let robust_props =
  [
    prop "robust snapshot/restore is bit-for-bit" 30
      QCheck.(pair (0 -- 1000) (0 -- 80))
      (fun (seed, steps) ->
        let s = robust_stream seed in
        let mech = robust_mech () in
        ignore (drive mech s ~from:0 ~until:steps);
        match
          ( Mechanism.restore (Mechanism.snapshot mech),
            Mechanism.restore (Mechanism.snapshot_binary mech) )
        with
        | Ok a, Ok b ->
            Mechanism.snapshot a = Mechanism.snapshot mech
            && Mechanism.snapshot_binary b = Mechanism.snapshot_binary mech
        | _ -> false);
  ]

(* ------------------------------------------------------------------ *)

let () = Test_env.install_pool_from_env ()

let () =
  Alcotest.run "dm_market"
    [
      ( "ellipsoid",
        [
          Alcotest.test_case "ball" `Quick test_ball;
          Alcotest.test_case "of box" `Quick test_of_box;
          Alcotest.test_case "bounds direction" `Quick test_bounds_direction;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "central cut closed form" `Quick
            test_central_cut_closed_form;
          Alcotest.test_case "shallow cut no-op" `Quick test_cut_shallow_noop;
          Alcotest.test_case "empty cut" `Quick test_cut_empty;
          Alcotest.test_case "cut above = reflection" `Quick
            test_cut_above_is_reflection;
          Alcotest.test_case "1-d bisection" `Quick test_cut_one_dimensional;
          Alcotest.test_case "1-d deep cut" `Quick test_cut_one_dimensional_deep;
          Alcotest.test_case "lemma 2 volume ratio" `Quick test_lemma2_volume_ratio;
          Alcotest.test_case "volume cache resync boundary" `Slow
            test_volume_resync_boundary;
          Alcotest.test_case "cut into caller buffer" `Quick test_cut_into_buffer;
        ]
        @ volume_cache_props @ ellipsoid_props );
      ( "model",
        [
          Alcotest.test_case "links" `Quick test_links;
          Alcotest.test_case "values" `Quick test_model_values;
          Alcotest.test_case "log-log guard" `Quick test_log_log_guard;
          Alcotest.test_case "kernelized" `Quick test_kernelized_model;
        ]
        @ [
            prop "every link is strictly increasing" 200
              QCheck.(pair (float_range (-4.) 4.) (float_range 0.01 2.))
              (fun (z, step) ->
                List.for_all
                  (fun link ->
                    link.Model.g (z +. step) > link.Model.g z)
                  [ Model.identity_link; Model.exp_link; Model.sigmoid_link ]);
            prop "g_inv . g = id on the working range" 200
              QCheck.(float_range (-4.) 4.)
              (fun z ->
                List.for_all
                  (fun link ->
                    abs_float (link.Model.g_inv (link.Model.g z) -. z) < 1e-6)
                  [ Model.identity_link; Model.exp_link; Model.sigmoid_link ]);
            prop "market value monotone in the index (all links)" 100
              QCheck.(pair (float_range (-2.) 2.) (float_range 0.01 1.))
              (fun (noise, bump) ->
                let theta = [| 1.; 0.5 |] in
                let x = [| 0.4; 0.6 |] in
                List.for_all
                  (fun mk ->
                    let m = mk ~theta in
                    Model.value ~noise:(noise +. bump) m x
                    > Model.value ~noise m x)
                  [ Model.linear; Model.log_linear; Model.logistic ]);
          ] );
      ( "regret",
        [
          Alcotest.test_case "cases" `Quick test_regret_cases;
          Alcotest.test_case "fig 1 shape" `Quick test_fig1_shape;
        ]
        @ regret_props );
      ( "feature",
        [
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "uneven partitions" `Quick test_aggregate_uneven;
          Alcotest.test_case "of compensations" `Quick test_of_compensations;
        ]
        @ feature_props );
      ( "mechanism",
        [
          Alcotest.test_case "variant names" `Quick test_variant_names;
          Alcotest.test_case "skip condition" `Quick test_mechanism_skip;
          Alcotest.test_case "reserve floor" `Quick test_mechanism_reserve_floor;
          Alcotest.test_case "exploratory mid" `Quick test_mechanism_exploratory_mid;
          Alcotest.test_case "conservative never cuts" `Quick
            test_mechanism_conservative_no_cut;
          Alcotest.test_case "exploratory cut shrinks" `Quick
            test_mechanism_exploratory_cut_shrinks;
          Alcotest.test_case "uncertainty buffer" `Quick
            test_mechanism_uncertainty_buffer;
          Alcotest.test_case "conservative with delta" `Quick
            test_mechanism_conservative_with_delta;
          Alcotest.test_case "ellipsoid accessor escape safety" `Quick
            test_mechanism_ellipsoid_escape;
          Alcotest.test_case "te bound formula" `Quick test_te_upper_bound;
          Alcotest.test_case "rejects poisoned input" `Quick
            test_mechanism_rejects_poisoned_input;
          Alcotest.test_case "survives a lying buyer" `Quick
            test_mechanism_survives_lying_buyer;
        ]
        @ mechanism_props );
      ( "broker",
        [
          Alcotest.test_case "sublinear regret" `Quick test_broker_regret_sublinear;
          Alcotest.test_case "reserve mitigates cold start" `Quick
            test_broker_reserve_beats_pure_early;
          Alcotest.test_case "beats risk-averse baseline" `Quick
            test_broker_risk_averse;
          Alcotest.test_case "round logs" `Quick test_broker_round_logs;
          Alcotest.test_case "conservation identity" `Quick
            test_broker_conservation;
          Alcotest.test_case "checkpoints" `Quick test_broker_checkpoints;
          Alcotest.test_case "edge cases" `Quick test_broker_edge_cases;
          Alcotest.test_case "checkpoint validation" `Quick
            test_broker_checkpoint_validation;
          Alcotest.test_case "log-linear consistency" `Quick
            test_broker_log_linear_consistency;
        ] );
      ( "sharded broker",
        [
          Alcotest.test_case "edge cases" `Quick test_sharded_edge_cases;
          Alcotest.test_case "warm-start tolerance at 1e5 rounds" `Slow
            test_warm_start_tolerance;
        ]
        @ sharded_props );
      ( "serialization",
        [
          Alcotest.test_case "ellipsoid roundtrip" `Quick
            test_ellipsoid_serialization_roundtrip;
          Alcotest.test_case "ellipsoid error cases" `Quick
            test_ellipsoid_deserialize_errors;
          Alcotest.test_case "mechanism snapshot roundtrip" `Quick
            test_mechanism_snapshot_roundtrip;
          Alcotest.test_case "mechanism restore errors" `Quick
            test_mechanism_restore_errors;
          Alcotest.test_case "non-finite rejected" `Quick
            test_non_finite_rejected;
        ]
        @ serialization_props );
      ( "projected",
        [
          Alcotest.test_case "identity projection matches dense" `Quick
            test_projected_identity_matches_dense;
          Alcotest.test_case "snapshot roundtrip (text + binary)" `Quick
            test_projected_snapshot_roundtrip;
          Alcotest.test_case "restore rejects corrupt projections" `Quick
            test_projected_restore_errors;
        ]
        @ projected_props );
      ( "batched decide",
        [
          Alcotest.test_case "bit-matches sequential across dims/batches"
            `Quick test_batch_matches_sequential;
          Alcotest.test_case "validation" `Quick test_batch_decide_validation;
          Alcotest.test_case "projected_feature memo" `Quick
            test_projected_feature_memo;
          Alcotest.test_case "escaped ellipsoid safe under batched serving"
            `Quick test_batch_escape_safety;
        ]
        @ batch_decide_props );
      ( "sparse cuts",
        [
          Alcotest.test_case "equivalence across dims {1,2,8,128}" `Quick
            test_equivalence_across_dims;
          Alcotest.test_case "in-place mutation contract" `Quick
            test_inplace_contract;
          Alcotest.test_case "scaled serialization (ellipsoid/2)" `Quick
            test_scaled_serialization;
          Alcotest.test_case "escaped ellipsoid safe under sparse cuts" `Quick
            test_mechanism_sparse_escape_safety;
        ]
        @ sparse_equivalence_props );
      ( "robust",
        [
          Alcotest.test_case "snapshot resume across a switch" `Quick
            test_robust_snapshot_resume_midswitch;
          Alcotest.test_case "restore validation" `Quick
            test_robust_restore_errors;
        ]
        @ robust_props );
      ( "arbitrage",
        [
          Alcotest.test_case "canonical tariffs" `Quick test_arbitrage_canonical;
          Alcotest.test_case "capping" `Quick test_arbitrage_capped;
          Alcotest.test_case "validation" `Quick test_arbitrage_validation;
        ]
        @ arbitrage_props );
      ( "sgd_pricing",
        [
          Alcotest.test_case "learns a simple market" `Quick
            test_sgd_learns_simple_market;
          Alcotest.test_case "respects the reserve" `Quick test_sgd_respects_reserve;
          Alcotest.test_case "validation" `Quick test_sgd_validation;
          Alcotest.test_case "ball projection" `Quick test_sgd_projection;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "lemma 8 blow-up" `Slow test_adversary_blowup;
          Alcotest.test_case "divergence detected, not inf/nan" `Slow
            test_adversary_divergence_detected;
        ] );
    ]
