(** Shared per-process setup for the test executables. *)

val install_pool_from_env : unit -> unit
(** Reads [BENCH_JOBS]; at values above 1 installs a
    {!Dm_linalg.Pool} of that many domains as the process-wide default
    (shut down at exit) so the suites exercise the same pooled code
    paths as the bench harness.  Unset, unparsable or ≤ 1 values leave
    the default pool uninstalled. *)
