(** Shared per-process setup for the test executables. *)

val qcheck_count : int -> int
(** [qcheck_count base] is the per-property case count: [base]
    multiplied by the [QCHECK_COUNT] environment variable when it
    parses as an integer ≥ 1 (a stress knob for soak runs — e.g.
    [QCHECK_COUNT=50 dune runtest]), and [base] unchanged when the
    variable is unset, unparsable or < 1. *)

val install_pool_from_env : unit -> unit
(** Reads [BENCH_JOBS]; at values above 1 installs a
    {!Dm_linalg.Pool} of that many domains as the process-wide default
    (shut down at exit) so the suites exercise the same pooled code
    paths as the bench harness.  Unset, unparsable or ≤ 1 values leave
    the default pool uninstalled. *)
