(* Shared per-process test setup.

   The CI workflow runs the whole suite twice, at BENCH_JOBS=1 and
   BENCH_JOBS=4, so every byte-determinism property is exercised both
   with and without a default domain pool installed.  Each test
   executable calls [install_pool_from_env] before [Alcotest.run]. *)

let qcheck_count base =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | None -> base
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some m when m >= 1 -> base * m
      | _ -> base)

let install_pool_from_env () =
  match Sys.getenv_opt "BENCH_JOBS" with
  | None -> ()
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some jobs when jobs > 1 ->
          let pool = Dm_linalg.Pool.create ~jobs in
          Dm_linalg.Pool.set_default (Some pool);
          at_exit (fun () -> Dm_linalg.Pool.shutdown pool)
      | _ -> ())
